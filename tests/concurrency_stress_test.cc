// Concurrency stress for the storage layer and the parallel query path.
//
// The first half hammers BufferPool and Column from raw std::threads —
// real OS-level concurrency, not the morsel scheduler — and then checks
// that a quiescent kFull audit is clean: pins balanced, page table and
// frames agreeing, no duplicate disk reads for racing fetchers of one
// page. The second half is the engine-level determinism contract: every
// query returns byte-identical rows (and cold runs read identical byte
// counts) at any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "audit/audit.h"
#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "colstore/column.h"
#include "core/col_backends.h"
#include "core/cstore_backend.h"
#include "core/query.h"
#include "core/store.h"
#include "exec/thread_pool.h"
#include "serve/request.h"
#include "serve/service.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/simulated_disk.h"

namespace swan {
namespace {

using audit::AuditLevel;

std::vector<uint8_t> PatternPage(uint8_t fill) {
  return std::vector<uint8_t>(storage::kPageSize, fill);
}

// Deterministic per-thread page sequence (splitmix-style mixer).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

TEST(ConcurrencyStressTest, BufferPoolHammerThenCleanAudit) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  constexpr uint32_t kFiles = 4;
  constexpr uint32_t kPages = 16;
  std::vector<uint32_t> files;
  for (uint32_t f = 0; f < kFiles; ++f) {
    files.push_back(disk.CreateFile());
    for (uint32_t p = 0; p < kPages; ++p) {
      disk.AppendPage(files.back(),
                      PatternPage(static_cast<uint8_t>(f * 31 + p)).data());
    }
  }

  // Capacity far below the working set forces constant eviction while
  // other threads hold pins.
  storage::BufferPool pool(&disk, /*capacity_pages=*/12);  // swan-lint: allow(node-disk)
  constexpr int kThreads = 8;
  constexpr int kFetchesPerThread = 2000;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFetchesPerThread; ++i) {
        const uint64_t r = Mix(static_cast<uint64_t>(t) * 1000003 + i);
        const uint32_t f = static_cast<uint32_t>(r % kFiles);
        const uint32_t p = static_cast<uint32_t>((r >> 8) % kPages);
        storage::PageGuard guard = pool.Fetch({files[f], p});
        const uint8_t expected = static_cast<uint8_t>(f * 31 + p);
        if (!guard.valid() || guard.data()[0] != expected ||
            guard.data()[storage::kPageSize - 1] != expected) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiescent now: no pin may be outstanding and every invariant the full
  // audit walks (frame<->map agreement, LRU membership, capacity) holds.
  EXPECT_TRUE(audit::Audit(pool, AuditLevel::kFull).ok());
  EXPECT_TRUE(audit::Audit(disk, AuditLevel::kFull).ok());
  EXPECT_LE(pool.resident_pages(), pool.capacity_pages());
}

TEST(ConcurrencyStressTest, RacingFetchersOfOnePageShareOneRead) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  disk.AppendPage(f, PatternPage(0x5a).data());
  storage::BufferPool pool(&disk, 8);  // swan-lint: allow(node-disk)

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        storage::PageGuard guard = pool.Fetch({f, 0});
        if (guard.data()[17] != 0x5a) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // The page never left the pool, so exactly one disk read happened:
  // concurrent fetchers of an in-flight page wait instead of re-reading.
  EXPECT_EQ(disk.total_reads(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_TRUE(audit::Audit(pool, AuditLevel::kFull).ok());
}

TEST(ConcurrencyStressTest, ConcurrentColumnGetLoadsOnce) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 64);  // swan-lint: allow(node-disk)
  colstore::Column column(&pool, &disk);
  std::vector<uint64_t> values(50000);
  for (uint64_t i = 0; i < values.size(); ++i) values[i] = i * 7 + 3;
  column.Build(values);
  column.DropCache();
  pool.Clear();
  disk.ResetStats();

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const std::vector<uint64_t>& got = column.Get();
      if (got.size() != values.size() || got[123] != 123 * 7 + 3 ||
          got.back() != (values.size() - 1) * 7 + 3) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // The load mutex serializes first access: the column streamed from disk
  // exactly once, not once per thread.
  EXPECT_EQ(disk.total_bytes_read(), column.disk_bytes());
  EXPECT_TRUE(column.Get() == values);
}

// Engine-level determinism: identical rows and identical cold-run I/O
// bytes at every thread count, across all storage schemes touched by the
// parallel fan-out (triple-store chunked scans, vertical and C-Store
// per-property sub-plans).
TEST(ConcurrencyStressTest, QueriesBitIdenticalAcrossThreadCounts) {
  bench_support::BartonConfig config;
  config.target_triples = 20000;
  const auto barton = bench_support::GenerateBarton(config);
  const rdf::Dataset& data = barton.dataset;
  const core::QueryContext ctx = bench_support::MakeBartonContext(data, 28);

  core::ColTripleBackend triple(data, rdf::TripleOrder::kPSO);
  core::ColVerticalBackend vertical(data);
  core::CStoreBackend cstore(data, ctx.interesting_properties());
  std::vector<core::Backend*> backends = {&triple, &vertical, &cstore};

  exec::SetThreads(1);
  std::vector<std::vector<core::QueryResult>> ref(backends.size());
  std::vector<std::vector<uint64_t>> ref_bytes(backends.size());
  for (size_t b = 0; b < backends.size(); ++b) {
    for (core::QueryId id : core::AllQueries()) {
      if (!backends[b]->Supports(id)) {
        ref[b].emplace_back();
        ref_bytes[b].push_back(0);
        continue;
      }
      ref[b].push_back(backends[b]->Run(id, ctx));
      ref_bytes[b].push_back(
          bench_support::MeasureCold(backends[b], id, ctx, 1).bytes_read);
    }
  }

  for (int t : {2, 4, 8}) {
    exec::SetThreads(t);
    for (size_t b = 0; b < backends.size(); ++b) {
      size_t q = 0;
      for (core::QueryId id : core::AllQueries()) {
        if (!backends[b]->Supports(id)) {
          ++q;
          continue;
        }
        const core::QueryResult rows = backends[b]->Run(id, ctx);
        EXPECT_TRUE(ref[b][q].SameRows(rows))
            << backends[b]->name() << " " << ToString(id) << " at " << t
            << " threads";
        EXPECT_EQ(
            bench_support::MeasureCold(backends[b], id, ctx, 1).bytes_read,
            ref_bytes[b][q])
            << backends[b]->name() << " " << ToString(id) << " at " << t
            << " threads";
        ++q;
      }
    }
  }
  exec::SetThreads(1);
}

// Serving-layer concurrency: real client threads submit through their own
// sessions while the workers are already running (live dispatch, not the
// submit-all-then-start replay protocol). Every completion's rows must
// still match the serially precomputed answer for that query — the
// turnstile serializes backend access, so concurrency in submission,
// cache and metrics bookkeeping never changes results. TSan-clean.
TEST(ConcurrencyStressTest, ConcurrentClientsThroughTheQueryService) {
  bench_support::BartonConfig config;
  config.target_triples = 8000;
  const auto barton = bench_support::GenerateBarton(config);
  const core::QueryContext ctx =
      bench_support::MakeBartonContext(barton.dataset, 28);

  struct Client {
    const char* label;
    core::QueryId bench;
    const char* sparql;
  };
  const std::vector<Client> clients = {
      {"c1", core::QueryId::kQ1,
       "SELECT ?s WHERE { ?s <type> <Text> } LIMIT 50"},
      {"c2", core::QueryId::kQ2,
       "SELECT ?s ?o WHERE { ?s <origin> ?o } LIMIT 50"},
      {"c3", core::QueryId::kQ5,
       "SELECT ?s WHERE { ?s <language> <language/iso639-2b/fre> } "
       "LIMIT 50"},
      {"c4", core::QueryId::kQ6,
       "SELECT ?s ?o WHERE { ?s <records> ?o . ?o <type> <Text> } "
       "LIMIT 50"},
  };

  // Serial reference answers, one per (client, kind).
  std::vector<serve::ResultPayload> bench_expected;
  std::vector<serve::ResultPayload> sparql_expected;
  {
    auto store = core::RdfStore::Open(barton.dataset, core::StoreOptions{});
    serve::ServiceOptions options;
    options.workers = 1;
    options.cache_bytes = 0;
    serve::QueryService serial(store.get(), ctx, options);
    serve::Session* session = serial.OpenSession("ref").value();
    for (const Client& client : clients) {
      serve::Request bench;
      bench.kind = serve::Request::Kind::kBench;
      bench.bench_id = client.bench;
      ASSERT_TRUE(serial.Submit(session, bench).ok());
      serve::Request sparql;
      sparql.kind = serve::Request::Kind::kSparql;
      sparql.text = client.sparql;
      ASSERT_TRUE(serial.Submit(session, sparql).ok());
    }
    serial.Start();
    serial.Drain();
    const auto done = serial.TakeCompletions();
    ASSERT_EQ(done.size(), clients.size() * 2);
    for (size_t i = 0; i < clients.size(); ++i) {
      ASSERT_TRUE(done[2 * i].status.ok());
      ASSERT_TRUE(done[2 * i + 1].status.ok());
      bench_expected.push_back(done[2 * i].result);
      sparql_expected.push_back(done[2 * i + 1].result);
    }
    serial.Stop();
  }

  auto store = core::RdfStore::Open(barton.dataset, core::StoreOptions{});
  serve::QueryService service(store.get(), ctx, {});
  std::vector<serve::Session*> sessions;
  for (const Client& client : clients) {
    sessions.push_back(service.OpenSession(client.label).value());
  }
  service.Start();  // live dispatch: workers race the submitting clients

  constexpr int kRequestsPerClient = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < clients.size(); ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        serve::Request request;
        if (i % 2 == 0) {
          request.kind = serve::Request::Kind::kBench;
          request.bench_id = clients[c].bench;
        } else {
          request.kind = serve::Request::Kind::kSparql;
          request.text = clients[c].sparql;
        }
        for (;;) {  // Overloaded is transient backpressure: retry
          const auto submitted = service.Submit(sessions[c], request);
          if (submitted.ok()) break;
          if (submitted.status().code() != StatusCode::kOverloaded) {
            failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  service.Drain();
  const auto completions = service.TakeCompletions();
  ASSERT_EQ(completions.size(), clients.size() * kRequestsPerClient);

  for (const serve::Completion& completion : completions) {
    ASSERT_TRUE(completion.status.ok()) << completion.status.ToString();
    size_t c = clients.size();
    for (size_t i = 0; i < clients.size(); ++i) {
      if (completion.session_id == sessions[i]->id()) c = i;
    }
    ASSERT_LT(c, clients.size()) << completion.session_id;
    const serve::ResultPayload& expected =
        completion.kind == serve::Request::Kind::kBench ? bench_expected[c]
                                                        : sparql_expected[c];
    EXPECT_TRUE(completion.result == expected)
        << clients[c].label << " rows diverged under live concurrency";
  }

  // Quiescent: cache accounting and store invariants must audit clean.
  EXPECT_TRUE(store->Audit(AuditLevel::kQuick).ok());
  service.Stop();
}

// Scale-out serving under live dispatch: sessions gain node affinity when
// the store is sharded (session seq mod node count picks the gather
// node), so concurrent clients spread their coordinators across the
// topology. Results must still match the single-node serial answers —
// affinity moves *where* the gather runs, never *what* it returns — and
// every query-log record must carry its node dimension. TSan-clean.
TEST(ConcurrencyStressTest, NodeAffinitySessionsUnderLiveDispatch) {
  bench_support::BartonConfig config;
  config.target_triples = 8000;
  const auto barton = bench_support::GenerateBarton(config);
  const core::QueryContext ctx =
      bench_support::MakeBartonContext(barton.dataset, 28);

  const std::vector<core::QueryId> queries = {
      core::QueryId::kQ1, core::QueryId::kQ2, core::QueryId::kQ5,
      core::QueryId::kQ6};

  // Single-node serial reference answers.
  std::vector<serve::ResultPayload> expected;
  {
    auto store = core::RdfStore::Open(barton.dataset, core::StoreOptions{});
    serve::ServiceOptions options;
    options.workers = 1;
    options.cache_bytes = 0;
    serve::QueryService serial(store.get(), ctx, options);
    serve::Session* session = serial.OpenSession("ref").value();
    for (core::QueryId id : queries) {
      serve::Request request;
      request.kind = serve::Request::Kind::kBench;
      request.bench_id = id;
      ASSERT_TRUE(serial.Submit(session, request).ok());
    }
    serial.Start();
    serial.Drain();
    for (const serve::Completion& done : serial.TakeCompletions()) {
      ASSERT_TRUE(done.status.ok());
      expected.push_back(done.result);
    }
    ASSERT_EQ(expected.size(), queries.size());
    serial.Stop();
  }

  constexpr int kNodes = 4;
  core::StoreOptions store_options;
  store_options.nodes = kNodes;
  auto store = core::RdfStore::Open(barton.dataset, store_options);
  serve::QueryService service(store.get(), ctx, {});
  // More sessions than nodes, so the affinity mapping wraps around.
  constexpr int kSessions = 6;
  std::vector<serve::Session*> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(
        service.OpenSession("affinity-" + std::to_string(s)).value());
  }
  service.Start();  // live dispatch: workers race the submitting clients

  constexpr int kRequestsPerClient = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        serve::Request request;
        request.kind = serve::Request::Kind::kBench;
        request.bench_id = queries[(s + i) % queries.size()];
        for (;;) {
          const auto submitted = service.Submit(sessions[s], request);
          if (submitted.ok()) break;
          if (submitted.status().code() != StatusCode::kOverloaded) {
            failures.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  service.Drain();

  const auto completions = service.TakeCompletions();
  ASSERT_EQ(completions.size(),
            static_cast<size_t>(kSessions) * kRequestsPerClient);
  for (const serve::Completion& completion : completions) {
    ASSERT_TRUE(completion.status.ok()) << completion.status.ToString();
    int s = -1;
    for (int i = 0; i < kSessions; ++i) {
      if (completion.session_id == sessions[i]->id()) s = i;
    }
    ASSERT_GE(s, 0) << completion.session_id;
    // Recovering which query this session submitted at this point is not
    // possible from the completion alone; match against whichever
    // reference payload it equals (each query's answer is distinct). Row
    // order is bag semantics across node counts — the gather concatenates
    // per-node partials — so compare sorted.
    serve::ResultPayload got = completion.result;
    std::sort(got.rows.begin(), got.rows.end());
    bool matched = false;
    for (serve::ResultPayload ref : expected) {
      std::sort(ref.rows.begin(), ref.rows.end());
      if (got == ref) matched = true;
    }
    EXPECT_TRUE(matched) << "session " << completion.session_id
                         << " returned rows that match no single-node "
                            "reference answer";
  }

  // Every record carries the scale-out dimension, and the affinity
  // mapping actually spread the coordinators over multiple nodes.
  std::vector<bool> seen_node(kNodes, false);
  for (const obs::QueryLogRecord& record :
       service.telemetry().LogSnapshot()) {
    EXPECT_EQ(record.nodes, kNodes);
    ASSERT_GE(record.node, 0);
    ASSERT_LT(record.node, kNodes);
    seen_node[static_cast<size_t>(record.node)] = true;
  }
  int distinct_nodes = 0;
  for (const bool seen : seen_node) distinct_nodes += seen ? 1 : 0;
  EXPECT_GE(distinct_nodes, 2)
      << "six sessions over four nodes must gather on at least two nodes";

  EXPECT_TRUE(store->Audit(AuditLevel::kQuick).ok());
  service.Stop();
}

// The turnstile replay contract extended across the topology: with the
// submit-all-then-start protocol, the completion stream — dispatch
// indices, per-session order, rows, snapshot versions — is byte-identical
// at 1, 2, and 8 workers, on a 1-node and a 4-node store alike. Worker
// count is real host concurrency; node count moves coordinators and
// charges the modeled network. Neither may change what clients observe:
// the raw stream (including row order) is byte-identical across worker
// counts, and the canonical stream (rows sorted within each completion —
// the gather concatenates per-node partials, so cross-node row order is
// bag semantics, exactly like the bench equivalence gate) is
// byte-identical across the whole workers x nodes grid.
TEST(ConcurrencyStressTest, TurnstileStreamByteIdenticalAcrossWorkersAndNodes) {
  bench_support::BartonConfig config;
  config.target_triples = 8000;
  const auto barton = bench_support::GenerateBarton(config);
  const core::QueryContext ctx =
      bench_support::MakeBartonContext(barton.dataset, 28);

  const std::vector<core::QueryId> queries = {
      core::QueryId::kQ1, core::QueryId::kQ2, core::QueryId::kQ5,
      core::QueryId::kQ6};
  const rdf::Triple fresh{977001, 977002, 977003};

  struct Streams {
    std::string raw;        // rows in returned order
    std::string canonical;  // rows sorted within each completion
  };

  // Serialize the observable completion stream. The result cache is
  // disabled for the run: its keys are per-gather-node by design, so hit
  // patterns are node-count-dependent — everything else must not be.
  const auto stream_for = [&](int workers, int nodes) {
    core::StoreOptions store_options;
    store_options.nodes = nodes;
    auto store = core::RdfStore::Open(barton.dataset, store_options);
    serve::ServiceOptions options;
    options.workers = workers;
    options.cache_bytes = 0;
    serve::QueryService service(store.get(), ctx, options);
    std::vector<serve::Session*> sessions;
    for (int s = 0; s < 3; ++s) {
      sessions.push_back(
          service.OpenSession("turnstile-" + std::to_string(s)).value());
    }
    // A read/write mix: queries interleaved with an insert and a delete,
    // so snapshot versions advance mid-stream.
    for (int round = 0; round < 3; ++round) {
      for (size_t s = 0; s < sessions.size(); ++s) {
        serve::Request request;
        request.kind = serve::Request::Kind::kBench;
        request.bench_id = queries[(round + s) % queries.size()];
        EXPECT_TRUE(service.Submit(sessions[s], request).ok());
      }
      if (round == 0) {
        serve::Request insert;
        insert.kind = serve::Request::Kind::kInsert;
        insert.triple = fresh;
        EXPECT_TRUE(service.Submit(sessions[0], insert).ok());
      }
      if (round == 1) {
        serve::Request erase;
        erase.kind = serve::Request::Kind::kDelete;
        erase.triple = fresh;
        EXPECT_TRUE(service.Submit(sessions[1], erase).ok());
      }
    }
    service.Start();
    service.Drain();
    Streams streams;
    for (const serve::Completion& done : service.TakeCompletions()) {
      EXPECT_TRUE(done.status.ok()) << done.status.ToString();
      std::string head = std::to_string(done.dispatch_index) + "|" +
                         done.session_id + "|" + ToString(done.kind) + "|v" +
                         std::to_string(done.snapshot_version) + "|";
      for (const std::string& name : done.result.column_names) {
        head += name + ",";
      }
      const auto render = [](const std::vector<std::vector<uint64_t>>& rows) {
        std::string out;
        for (const auto& row : rows) {
          for (const uint64_t v : row) out += std::to_string(v) + ":";
          out += ";";
        }
        return out;
      };
      std::vector<std::vector<uint64_t>> sorted_rows = done.result.rows;
      std::sort(sorted_rows.begin(), sorted_rows.end());
      streams.raw += head + render(done.result.rows) + "\n";
      streams.canonical += head + render(sorted_rows) + "\n";
    }
    service.Stop();
    return streams;
  };

  const Streams reference = stream_for(/*workers=*/1, /*nodes=*/1);
  ASSERT_FALSE(reference.raw.empty());
  for (const int nodes : {1, 4}) {
    std::string raw_at_one_worker;
    for (const int workers : {1, 2, 8}) {
      const Streams streams = stream_for(workers, nodes);
      if (workers == 1) raw_at_one_worker = streams.raw;
      EXPECT_EQ(streams.raw, raw_at_one_worker)
          << "raw completion stream diverged at " << workers
          << " worker(s) x " << nodes << " node(s)";
      EXPECT_EQ(streams.canonical, reference.canonical)
          << "canonical completion stream diverged at " << workers
          << " worker(s) x " << nodes << " node(s)";
    }
  }
}

}  // namespace
}  // namespace swan
