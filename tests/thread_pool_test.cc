#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace swan::exec {
namespace {

// Every test restores the single-threaded default so later tests (and the
// rest of the suite) see the pre-parallel engine.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { SetThreads(1); }
};

TEST_F(ThreadPoolTest, ThreadsDefaultsToOne) {
  EXPECT_EQ(Threads(), 1);
  EXPECT_GE(HardwareConcurrency(), 1);
}

TEST_F(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  SetThreads(4);
  const uint64_t n = 100003;  // deliberately not a multiple of the grain
  std::vector<std::atomic<uint32_t>> hits(n);
  ParallelFor(n, 1024, [&](uint64_t begin, uint64_t end, uint64_t) {
    for (uint64_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST_F(ThreadPoolTest, ChunksIndexRangesInOrder) {
  SetThreads(4);
  const uint64_t n = 10000, grain = 512;
  const uint64_t chunks = (n + grain - 1) / grain;
  std::vector<std::pair<uint64_t, uint64_t>> ranges(chunks);
  ParallelFor(n, grain, [&](uint64_t begin, uint64_t end, uint64_t chunk) {
    ranges[chunk] = {begin, end};
  });
  for (uint64_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(ranges[c].first, c * grain);
    EXPECT_EQ(ranges[c].second, std::min(n, (c + 1) * grain));
  }
}

TEST_F(ThreadPoolTest, SingleThreadRunsInlineWithoutTaskContext) {
  SetThreads(1);
  const std::thread::id caller = std::this_thread::get_id();
  uint64_t calls = 0;
  ParallelFor(5000, 100, [&](uint64_t, uint64_t, uint64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(CurrentTask(), nullptr);
    ++calls;  // safe: inline execution is sequential
  });
  EXPECT_EQ(calls, 50u);
}

TEST_F(ThreadPoolTest, SingleChunkRunsInlineEvenWhenParallel) {
  SetThreads(8);
  const std::thread::id caller = std::this_thread::get_id();
  ParallelFor(100, 1024, [&](uint64_t begin, uint64_t end, uint64_t chunk) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(CurrentTask(), nullptr);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    EXPECT_EQ(chunk, 0u);
  });
}

TEST_F(ThreadPoolTest, LaneIsChunkModuloThreads) {
  // The determinism contract: whatever OS thread steals a chunk, the chunk
  // is accounted to lane chunk % Threads().
  const int threads = 3;
  SetThreads(threads);
  const uint64_t n = 64 * 100, grain = 100;
  std::vector<int> lanes(n / grain, -1);
  ParallelFor(n, grain, [&](uint64_t, uint64_t, uint64_t chunk) {
    TaskContext* task = CurrentTask();
    ASSERT_NE(task, nullptr);
    lanes[chunk] = task->lane;
  });
  for (uint64_t c = 0; c < lanes.size(); ++c) {
    EXPECT_EQ(lanes[c], static_cast<int>(c % threads)) << "chunk " << c;
  }
}

TEST_F(ThreadPoolTest, NestedParallelForRunsInline) {
  SetThreads(4);
  std::atomic<uint64_t> total{0};
  ParallelFor(8, 1, [&](uint64_t, uint64_t, uint64_t outer_chunk) {
    TaskContext* outer = CurrentTask();
    ParallelFor(1000, 10, [&](uint64_t begin, uint64_t end, uint64_t) {
      // Inner chunks run sequentially in the enclosing task's context.
      EXPECT_EQ(CurrentTask(), outer);
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    (void)outer_chunk;
  });
  EXPECT_EQ(total.load(), 8 * 1000u);
}

TEST_F(ThreadPoolTest, FirstExceptionPropagatesAndPoolStaysUsable) {
  SetThreads(4);
  EXPECT_THROW(
      ParallelFor(1000, 10,
                  [&](uint64_t begin, uint64_t, uint64_t) {
                    if (begin == 500) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must have drained cleanly: later regions run normally.
  std::atomic<uint64_t> sum{0};
  ParallelFor(1000, 10, [&](uint64_t begin, uint64_t end, uint64_t) {
    for (uint64_t i = begin; i < end; ++i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), 999u * 1000 / 2);
}

TEST_F(ThreadPoolTest, ShardsForRespectsMinimumShardSize) {
  SetThreads(8);
  EXPECT_EQ(ShardsFor(100, 1000), 1u);      // too small to split
  EXPECT_EQ(ShardsFor(4000, 1000), 4u);     // capacity-limited by size
  EXPECT_EQ(ShardsFor(1 << 20, 1000), 8u);  // capped at Threads()
  SetThreads(1);
  EXPECT_EQ(ShardsFor(1 << 20, 1000), 1u);
}

TEST_F(ThreadPoolTest, LaneCpuLedgerAccruesPerLane) {
  SetThreads(2);
  const std::vector<double> before = LaneCpuSnapshot();
  std::atomic<uint64_t> sink{0};  // defeats dead-code elimination
  ParallelFor(1 << 18, 1 << 12, [&](uint64_t begin, uint64_t end, uint64_t) {
    uint64_t acc = 0;
    for (uint64_t i = begin; i < end; ++i) acc += i * i;
    sink.fetch_add(acc, std::memory_order_relaxed);
  });
  const std::vector<double> after = LaneCpuSnapshot();
  ASSERT_GE(after.size(), 2u);
  double before_sum = std::accumulate(before.begin(), before.end(), 0.0);
  double after_sum = std::accumulate(after.begin(), after.end(), 0.0);
  // Both lanes ran chunks (64 chunks alternate lanes 0/1), so the ledger
  // must have grown and must be monotone per lane.
  EXPECT_GT(after_sum, before_sum);
  for (size_t i = 0; i < before.size() && i < after.size(); ++i) {
    EXPECT_GE(after[i], before[i]);
  }
}

TEST_F(ThreadPoolTest, SetThreadsReconfiguresRepeatedly) {
  for (int t : {1, 4, 2, 8, 1, 3}) {
    SetThreads(t);
    EXPECT_EQ(Threads(), t < 1 ? 1 : t);
    std::atomic<uint64_t> count{0};
    ParallelFor(997, 16, [&](uint64_t begin, uint64_t end, uint64_t) {
      count.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 997u);
  }
}

}  // namespace
}  // namespace swan::exec
