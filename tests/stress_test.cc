// Stress tests: correctness under severe buffer-pool pressure (constant
// eviction), long mixed workloads against shadow models, and interleaved
// iterators holding pins.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "colstore/column.h"
#include "common/random.h"
#include "core/row_backends.h"
#include "rowstore/bplus_tree.h"
#include "storage/buffer_pool.h"

namespace swan {
namespace {

TEST(BufferPoolStressTest, RandomAccessMatchesShadowModel) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t file = disk.CreateFile();
  constexpr int kPages = 200;
  for (int p = 0; p < kPages; ++p) {
    std::vector<uint8_t> page(storage::kPageSize,
                              static_cast<uint8_t>(p * 7 + 1));
    disk.AppendPage(file, page.data());
  }
  storage::BufferPool pool(&disk, 16);  // swan-lint: allow(node-disk)

  Rng rng(4);
  for (int round = 0; round < 20000; ++round) {
    const uint32_t p = static_cast<uint32_t>(rng.Uniform(kPages));
    storage::PageGuard guard = pool.Fetch({file, p});
    ASSERT_EQ(guard.data()[rng.Uniform(storage::kPageSize)],
              static_cast<uint8_t>(p * 7 + 1));
  }
  EXPECT_LE(pool.resident_pages(), 16u);
  EXPECT_GT(pool.hits(), 0u);
  EXPECT_GT(pool.misses(), 16u);  // evictions happened
  // No guards are live, so the pool's accounting must be spotless.
  const auto report = audit::Audit(pool, audit::AuditLevel::kFull);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(BufferPoolStressTest, ManyConcurrentPinsUpToCapacity) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t file = disk.CreateFile();
  for (int p = 0; p < 64; ++p) {
    std::vector<uint8_t> page(storage::kPageSize, static_cast<uint8_t>(p));
    disk.AppendPage(file, page.data());
  }
  storage::BufferPool pool(&disk, 32);  // swan-lint: allow(node-disk)
  std::vector<storage::PageGuard> pins;
  for (uint32_t p = 0; p < 31; ++p) pins.push_back(pool.Fetch({file, p}));
  // One frame left: repeated fetches of distinct pages must recycle it.
  for (uint32_t p = 31; p < 64; ++p) {
    storage::PageGuard guard = pool.Fetch({file, p});
    EXPECT_EQ(guard.data()[0], static_cast<uint8_t>(p));
  }
  // All pinned pages still intact.
  for (uint32_t p = 0; p < 31; ++p) {
    EXPECT_EQ(pins[p].data()[0], static_cast<uint8_t>(p));
  }
}

TEST(BPlusTreeStressTest, TinyPoolFullScanAndLookups) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 8);  // pathologically small  // swan-lint: allow(node-disk)
  rowstore::BPlusTree<2> tree(&pool, &disk);
  std::vector<std::array<uint64_t, 2>> keys;
  for (uint64_t i = 0; i < 60000; ++i) keys.push_back({i, i * 3});
  tree.BulkLoad(keys);

  uint64_t count = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key()[1], it.key()[0] * 3);
    ++count;
  }
  EXPECT_EQ(count, 60000u);
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t k = rng.Uniform(60000);
    EXPECT_TRUE(tree.Contains({k, k * 3}));
    EXPECT_FALSE(tree.Contains({k, k * 3 + 1}));
  }
}

TEST(BPlusTreeStressTest, InterleavedIteratorsUnderEviction) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 12);  // swan-lint: allow(node-disk)
  rowstore::BPlusTree<2> tree(&pool, &disk);
  std::vector<std::array<uint64_t, 2>> keys;
  for (uint64_t i = 0; i < 20000; ++i) keys.push_back({i, 0});
  tree.BulkLoad(keys);

  // Four iterators advanced round-robin, each pinning its current leaf
  // while the others force evictions around it.
  auto a = tree.Begin();
  auto b = tree.Seek({5000, 0});
  auto c = tree.Seek({10000, 0});
  auto d = tree.Seek({15000, 0});
  for (int step = 0; step < 4000; ++step) {
    ASSERT_TRUE(a.Valid() && b.Valid() && c.Valid() && d.Valid());
    ASSERT_EQ(a.key()[0], static_cast<uint64_t>(step));
    ASSERT_EQ(b.key()[0], static_cast<uint64_t>(5000 + step));
    ASSERT_EQ(c.key()[0], static_cast<uint64_t>(10000 + step));
    ASSERT_EQ(d.key()[0], static_cast<uint64_t>(15000 + step));
    a.Next();
    b.Next();
    c.Next();
    d.Next();
  }
}

TEST(BPlusTreeStressTest, MixedInsertAndScanAgainstShadowSet) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 64);  // swan-lint: allow(node-disk)
  rowstore::BPlusTree<3> tree(&pool, &disk);
  tree.BulkLoad({});
  std::set<std::array<uint64_t, 3>> shadow;
  Rng rng(8);
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 500; ++i) {
      const std::array<uint64_t, 3> key{rng.Uniform(300), rng.Uniform(300),
                                        rng.Uniform(4)};
      EXPECT_EQ(tree.Insert(key), shadow.insert(key).second);
    }
    // Periodic full verification.
    auto expected = shadow.begin();
    for (auto it = tree.Begin(); it.Valid(); it.Next()) {
      ASSERT_NE(expected, shadow.end());
      ASSERT_EQ(it.key(), *expected);
      ++expected;
    }
    ASSERT_EQ(expected, shadow.end());
    // Every mutation batch must leave the tree structurally sound.
    const auto report = audit::Audit(tree, audit::AuditLevel::kFull);
    ASSERT_TRUE(report.ok()) << "round " << round << "\n"
                             << report.ToString();
  }
}

TEST(ColumnStressTest, CompressedColumnsUnderTinyPool) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 8);  // swan-lint: allow(node-disk)
  Rng rng(10);
  for (auto codec : {colstore::ColumnCodec::kRaw, colstore::ColumnCodec::kRle,
                     colstore::ColumnCodec::kDelta,
                     colstore::ColumnCodec::kAuto}) {
    std::vector<uint64_t> values(50000);
    for (auto& v : values) v = rng.Uniform(100);
    std::sort(values.begin(), values.end());
    colstore::Column col(&pool, &disk, codec);
    col.Build(values);
    for (int round = 0; round < 3; ++round) {
      col.DropCache();
      pool.Clear();
      ASSERT_EQ(col.Get(), values) << ToString(codec);
    }
    colstore::ColumnAuditOptions opts;
    opts.label = std::string("stress.") + ToString(codec);
    opts.expect_sorted = true;
    audit::AuditReport report;
    col.AuditInto(audit::AuditLevel::kFull, opts, &report);
    EXPECT_TRUE(report.ok()) << report.ToString();
  }
}

TEST(BackendStressTest, RowBackendCorrectUnderMinimalPool) {
  bench_support::BartonConfig config;
  // Large enough that one clustered tree (~300 leaf pages) dwarfs the
  // 64-page pool, so scans genuinely thrash.
  config.target_triples = 100000;
  const auto barton = bench_support::GenerateBarton(config);
  const auto ctx = bench_support::MakeBartonContext(barton.dataset, 28);

  core::RowTripleBackend roomy(barton.dataset,
                               rowstore::TripleRelation::PsoConfig(),
                               storage::DiskConfig(), 1 << 15);
  core::RowTripleBackend cramped(barton.dataset,
                                 rowstore::TripleRelation::PsoConfig(),
                                 storage::DiskConfig(), 64);
  for (core::QueryId id : core::AllQueries()) {
    core::QueryResult a = roomy.Run(id, ctx);
    core::QueryResult b = cramped.Run(id, ctx);
    EXPECT_TRUE(a.SameRows(b)) << ToString(id);
  }
  // Same answers, but the cramped pool re-reads evicted pages: the roomy
  // pool reads every page at most once across the whole workload.
  EXPECT_GT(cramped.disk()->total_bytes_read(),
            2 * roomy.disk()->total_bytes_read());
}

}  // namespace
}  // namespace swan
