// Insert support across all writable backends: visibility in queries and
// pattern matches, duplicate rejection, schema growth in the vertical
// scheme, and cross-backend equivalence after a mixed insert workload.
// Also the store's write-path contract consumed by the serving layer:
// the snapshot version bumps exactly once per successful write, column
// deletes (delta cancellation / base tombstones) behave, and a cached
// result is never served after a write touching its property.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/audit.h"
#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "core/col_backends.h"
#include "core/cstore_backend.h"
#include "core/reference_backend.h"
#include "core/row_backends.h"
#include "core/store.h"
#include "serve/request.h"
#include "serve/service.h"

namespace swan::core {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_support::BartonConfig config;
    config.target_triples = 5000;
    barton_ = bench_support::GenerateBarton(config);
  }

  std::vector<std::unique_ptr<Backend>> WritableBackends() {
    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(std::make_unique<ColTripleBackend>(
        barton_.dataset, rdf::TripleOrder::kPSO));
    backends.push_back(std::make_unique<ColTripleBackend>(
        barton_.dataset, rdf::TripleOrder::kSPO));
    backends.push_back(std::make_unique<ColVerticalBackend>(barton_.dataset));
    backends.push_back(std::make_unique<RowTripleBackend>(
        barton_.dataset, rowstore::TripleRelation::PsoConfig()));
    backends.push_back(std::make_unique<RowVerticalBackend>(barton_.dataset));
    backends.push_back(std::make_unique<ReferenceBackend>(barton_.dataset));
    return backends;
  }

  bench_support::BartonDataset barton_;
};

TEST_F(UpdateTest, InsertedTripleVisibleInMatch) {
  // New subject with an existing property and object.
  const uint64_t s = barton_.dataset.dict().Intern("<new-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  for (auto& backend : WritableBackends()) {
    EXPECT_TRUE(backend->Insert({s, type, text}).ok()) << backend->name();
    rdf::TriplePattern pattern;
    pattern.subject = s;
    const auto matches = backend->Match(pattern);
    ASSERT_EQ(matches.size(), 1u) << backend->name();
    EXPECT_EQ(matches[0].object, text) << backend->name();
  }
}

TEST_F(UpdateTest, InsertedTripleVisibleInBenchmarkQuery) {
  const uint64_t s = barton_.dataset.dict().Intern("<another-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  const auto ctx = bench_support::MakeBartonContext(barton_.dataset, 28);
  for (auto& backend : WritableBackends()) {
    const QueryResult before = backend->Run(QueryId::kQ1, ctx);
    uint64_t text_count_before = 0;
    for (const auto& row : before.rows) {
      if (row[0] == text) text_count_before = row[1];
    }
    ASSERT_TRUE(backend->Insert({s, type, text}).ok());
    const QueryResult after = backend->Run(QueryId::kQ1, ctx);
    uint64_t text_count_after = 0;
    for (const auto& row : after.rows) {
      if (row[0] == text) text_count_after = row[1];
    }
    EXPECT_EQ(text_count_after, text_count_before + 1) << backend->name();
  }
}

TEST_F(UpdateTest, DuplicateInsertRejected) {
  const rdf::Triple existing = barton_.dataset.triples().front();
  for (auto& backend : WritableBackends()) {
    const Status st = backend->Insert(existing);
    EXPECT_EQ(st.code(), StatusCode::kAlreadyExists) << backend->name();
  }
}

TEST_F(UpdateTest, DuplicateOfUnmergedDeltaRejected) {
  const uint64_t s = barton_.dataset.dict().Intern("<delta-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  ColVerticalBackend backend(barton_.dataset);
  ASSERT_TRUE(backend.Insert({s, type, text}).ok());
  EXPECT_EQ(backend.Insert({s, type, text}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(UpdateTest, CStoreIsReadOnly) {
  const auto ctx = bench_support::MakeBartonContext(barton_.dataset, 28);
  CStoreBackend cstore(barton_.dataset, ctx.interesting_properties());
  EXPECT_EQ(cstore.Insert({1, 2, 3}).code(), StatusCode::kUnimplemented);
}

TEST_F(UpdateTest, NewPropertyCreatesPartition) {
  const uint64_t s = barton_.dataset.dict().Intern("<subject-np>");
  const uint64_t p = barton_.dataset.dict().Intern("<brand-new-property>");
  const uint64_t o = barton_.dataset.dict().Intern("\"value\"");

  ColVerticalBackend col(barton_.dataset);
  EXPECT_EQ(col.partitions_created(), 0u);
  ASSERT_TRUE(col.Insert({s, p, o}).ok());
  EXPECT_EQ(col.partitions_created(), 1u);

  RowVerticalBackend row(barton_.dataset);
  ASSERT_TRUE(row.Insert({s, p, o}).ok());
  EXPECT_EQ(row.relation().partitions_created(), 1u);
  rdf::TriplePattern pattern;
  pattern.property = p;
  EXPECT_EQ(row.Match(pattern).size(), 1u);
  EXPECT_EQ(col.Match(pattern).size(), 1u);
}

TEST_F(UpdateTest, ColumnBackendMergesOnNextRun) {
  const uint64_t s = barton_.dataset.dict().Intern("<merge-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  const auto ctx = bench_support::MakeBartonContext(barton_.dataset, 28);

  ColTripleBackend backend(barton_.dataset, rdf::TripleOrder::kPSO);
  ASSERT_TRUE(backend.Insert({s, type, text}).ok());
  EXPECT_EQ(backend.delta_size(), 1u);
  EXPECT_EQ(backend.merge_count(), 0u);
  backend.Run(QueryId::kQ1, ctx);
  EXPECT_EQ(backend.delta_size(), 0u);
  EXPECT_EQ(backend.merge_count(), 1u);
  // A second run does not merge again.
  backend.Run(QueryId::kQ1, ctx);
  EXPECT_EQ(backend.merge_count(), 1u);
}

TEST_F(UpdateTest, AllBackendsAgreeAfterMixedInsertWorkload) {
  // Build the insert batch first (interning mutates the dictionary, so all
  // ids must exist before contexts/backends snapshot dict_size).
  std::vector<rdf::Triple> batch;
  {
    auto& dict = barton_.dataset.dict();
    const uint64_t type = *dict.Find("<type>");
    const uint64_t text = *dict.Find("<Text>");
    const uint64_t fresh_p = dict.Intern("<post-load-property>");
    for (int i = 0; i < 50; ++i) {
      const uint64_t s =
          dict.Intern("<post-load-subject-" + std::to_string(i) + ">");
      batch.push_back({s, type, text});
      batch.push_back({s, fresh_p, dict.Intern("\"v" + std::to_string(i % 7) +
                                               "\"")});
    }
  }

  auto backends = WritableBackends();
  for (auto& backend : backends) {
    for (const rdf::Triple& t : batch) {
      ASSERT_TRUE(backend->Insert(t).ok()) << backend->name();
    }
  }
  const auto ctx = bench_support::MakeBartonContext(barton_.dataset, 28);
  std::vector<Backend*> raw;
  for (auto& b : backends) raw.push_back(b.get());
  bench_support::VerifyBackendsAgree(raw, AllQueries(), ctx);

  // After the whole mutation workload, every backend's physical structures
  // must still satisfy their invariants.
  for (auto& backend : backends) {
    const auto report = backend->Audit(audit::AuditLevel::kFull);
    EXPECT_TRUE(report.ok()) << backend->name() << "\n" << report.ToString();
  }
}

TEST_F(UpdateTest, SnapshotVersionBumpsExactlyOncePerSuccessfulWrite) {
  auto store = RdfStore::Open(barton_.dataset, StoreOptions{});
  EXPECT_EQ(store->snapshot_version(), 1u);

  const uint64_t s = barton_.dataset.dict().Intern("<version-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  ASSERT_TRUE(store->Insert({s, type, text}).ok());
  EXPECT_EQ(store->snapshot_version(), 2u);

  // Failed writes must not advance the version: a version bump without a
  // state change would invalidate cached results for nothing, and a state
  // change without a bump would serve stale ones.
  EXPECT_EQ(store->Insert({s, type, text}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(store->snapshot_version(), 2u);

  ASSERT_TRUE(store->Delete({s, type, text}).ok());
  EXPECT_EQ(store->snapshot_version(), 3u);
  EXPECT_EQ(store->Delete({s, type, text}).code(), StatusCode::kNotFound);
  EXPECT_EQ(store->snapshot_version(), 3u);
}

TEST_F(UpdateTest, ColumnDeleteSemantics) {
  const uint64_t s = barton_.dataset.dict().Intern("<delete-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  const auto ctx = bench_support::MakeBartonContext(barton_.dataset, 28);

  std::vector<std::unique_ptr<Backend>> backends;
  backends.push_back(std::make_unique<ColTripleBackend>(
      barton_.dataset, rdf::TripleOrder::kPSO));
  backends.push_back(std::make_unique<ColVerticalBackend>(barton_.dataset));
  for (auto& backend : backends) {
    // Deleting an unmerged insert cancels the delta entry directly.
    ASSERT_TRUE(backend->Insert({s, type, text}).ok()) << backend->name();
    ASSERT_TRUE(backend->Delete({s, type, text}).ok()) << backend->name();
    rdf::TriplePattern fresh;
    fresh.subject = s;
    EXPECT_TRUE(backend->Match(fresh).empty()) << backend->name();
    EXPECT_EQ(backend->Delete({s, type, text}).code(), StatusCode::kNotFound)
        << backend->name();

    // Deleting a base row tombstones it: invisible to queries, duplicate
    // delete rejected, and a re-insert cancels the tombstone.
    const rdf::Triple existing = barton_.dataset.triples().front();
    rdf::TriplePattern bound;
    bound.subject = existing.subject;
    bound.property = existing.property;
    bound.object = existing.object;
    ASSERT_EQ(backend->Match(bound).size(), 1u) << backend->name();
    ASSERT_TRUE(backend->Delete(existing).ok()) << backend->name();
    EXPECT_TRUE(backend->Match(bound).empty()) << backend->name();
    EXPECT_EQ(backend->Delete(existing).code(), StatusCode::kNotFound)
        << backend->name();
    ASSERT_TRUE(backend->Insert(existing).ok()) << backend->name();
    EXPECT_EQ(backend->Match(bound).size(), 1u) << backend->name();

    // The merge path (triggered by a benchmark run) drops tombstoned base
    // rows physically; structures must still audit clean afterwards.
    ASSERT_TRUE(backend->Delete(existing).ok()) << backend->name();
    backend->Run(QueryId::kQ1, ctx);
    EXPECT_TRUE(backend->Match(bound).empty()) << backend->name();
    const auto report = backend->Audit(audit::AuditLevel::kFull);
    EXPECT_TRUE(report.ok()) << backend->name() << "\n" << report.ToString();
    ASSERT_TRUE(backend->Insert(existing).ok()) << backend->name();
  }
}

// Regression for the serving layer's coherence contract: a result cached
// by the query service must never be served after a delete (or insert)
// touching its property — the write bumps the snapshot version, which
// both misses the cache by key construction and eagerly invalidates.
TEST_F(UpdateTest, CachedResultNeverServedAfterWriteTouchingItsProperty) {
  const uint64_t origin = *barton_.dataset.dict().Find("<origin>");
  rdf::Triple victim{0, 0, 0};
  for (const rdf::Triple& t : barton_.dataset.triples()) {
    if (t.property == origin) {
      victim = t;
      break;
    }
  }
  ASSERT_NE(victim.property, 0u);

  auto store = RdfStore::Open(barton_.dataset, StoreOptions{});
  serve::QueryService service(store.get(), std::nullopt, {});
  serve::Session* session = service.OpenSession("client").value();

  serve::Request query;
  query.kind = serve::Request::Kind::kSparql;
  query.text = "SELECT ?s ?o WHERE { ?s <origin> ?o }";
  ASSERT_TRUE(service.Submit(session, query).ok());
  ASSERT_TRUE(service.Submit(session, query).ok());  // second → cache hit
  service.Start();
  service.Drain();
  const auto before = service.TakeCompletions();
  ASSERT_EQ(before.size(), 2u);
  ASSERT_TRUE(before[0].status.ok()) << before[0].status.ToString();
  EXPECT_FALSE(before[0].cache_hit);
  EXPECT_TRUE(before[1].cache_hit);
  const size_t rows_before = before[0].result.rows.size();
  ASSERT_GT(rows_before, 0u);

  serve::Request del;
  del.kind = serve::Request::Kind::kDelete;
  del.triple = victim;
  ASSERT_TRUE(service.Submit(session, del).ok());
  ASSERT_TRUE(service.Submit(session, query).ok());
  service.Drain();
  const auto after = service.TakeCompletions();
  ASSERT_EQ(after.size(), 2u);
  ASSERT_TRUE(after[0].status.ok()) << after[0].status.ToString();
  const serve::Completion& requery = after[1];
  ASSERT_TRUE(requery.status.ok());
  // Not a cache hit, and the rows reflect the delete.
  EXPECT_FALSE(requery.cache_hit);
  EXPECT_EQ(requery.result.rows.size(), rows_before - 1);

  // Same guarantee for an insert touching the property: re-inserting the
  // victim invalidates again and the re-executed query sees it back.
  serve::Request ins;
  ins.kind = serve::Request::Kind::kInsert;
  ins.triple = victim;
  ASSERT_TRUE(service.Submit(session, ins).ok());
  ASSERT_TRUE(service.Submit(session, query).ok());
  service.Drain();
  const auto restored = service.TakeCompletions();
  ASSERT_EQ(restored.size(), 2u);
  ASSERT_TRUE(restored[1].status.ok());
  EXPECT_FALSE(restored[1].cache_hit);
  EXPECT_EQ(restored[1].result.rows.size(), rows_before);
  service.Stop();
}

}  // namespace
}  // namespace swan::core
