// Insert support across all writable backends: visibility in queries and
// pattern matches, duplicate rejection, schema growth in the vertical
// scheme, and cross-backend equivalence after a mixed insert workload.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/audit.h"
#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "core/col_backends.h"
#include "core/cstore_backend.h"
#include "core/reference_backend.h"
#include "core/row_backends.h"

namespace swan::core {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_support::BartonConfig config;
    config.target_triples = 5000;
    barton_ = bench_support::GenerateBarton(config);
  }

  std::vector<std::unique_ptr<Backend>> WritableBackends() {
    std::vector<std::unique_ptr<Backend>> backends;
    backends.push_back(std::make_unique<ColTripleBackend>(
        barton_.dataset, rdf::TripleOrder::kPSO));
    backends.push_back(std::make_unique<ColTripleBackend>(
        barton_.dataset, rdf::TripleOrder::kSPO));
    backends.push_back(std::make_unique<ColVerticalBackend>(barton_.dataset));
    backends.push_back(std::make_unique<RowTripleBackend>(
        barton_.dataset, rowstore::TripleRelation::PsoConfig()));
    backends.push_back(std::make_unique<RowVerticalBackend>(barton_.dataset));
    backends.push_back(std::make_unique<ReferenceBackend>(barton_.dataset));
    return backends;
  }

  bench_support::BartonDataset barton_;
};

TEST_F(UpdateTest, InsertedTripleVisibleInMatch) {
  // New subject with an existing property and object.
  const uint64_t s = barton_.dataset.dict().Intern("<new-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  for (auto& backend : WritableBackends()) {
    EXPECT_TRUE(backend->Insert({s, type, text}).ok()) << backend->name();
    rdf::TriplePattern pattern;
    pattern.subject = s;
    const auto matches = backend->Match(pattern);
    ASSERT_EQ(matches.size(), 1u) << backend->name();
    EXPECT_EQ(matches[0].object, text) << backend->name();
  }
}

TEST_F(UpdateTest, InsertedTripleVisibleInBenchmarkQuery) {
  const uint64_t s = barton_.dataset.dict().Intern("<another-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  const auto ctx = bench_support::MakeBartonContext(barton_.dataset, 28);
  for (auto& backend : WritableBackends()) {
    const QueryResult before = backend->Run(QueryId::kQ1, ctx);
    uint64_t text_count_before = 0;
    for (const auto& row : before.rows) {
      if (row[0] == text) text_count_before = row[1];
    }
    ASSERT_TRUE(backend->Insert({s, type, text}).ok());
    const QueryResult after = backend->Run(QueryId::kQ1, ctx);
    uint64_t text_count_after = 0;
    for (const auto& row : after.rows) {
      if (row[0] == text) text_count_after = row[1];
    }
    EXPECT_EQ(text_count_after, text_count_before + 1) << backend->name();
  }
}

TEST_F(UpdateTest, DuplicateInsertRejected) {
  const rdf::Triple existing = barton_.dataset.triples().front();
  for (auto& backend : WritableBackends()) {
    const Status st = backend->Insert(existing);
    EXPECT_EQ(st.code(), StatusCode::kAlreadyExists) << backend->name();
  }
}

TEST_F(UpdateTest, DuplicateOfUnmergedDeltaRejected) {
  const uint64_t s = barton_.dataset.dict().Intern("<delta-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  ColVerticalBackend backend(barton_.dataset);
  ASSERT_TRUE(backend.Insert({s, type, text}).ok());
  EXPECT_EQ(backend.Insert({s, type, text}).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(UpdateTest, CStoreIsReadOnly) {
  const auto ctx = bench_support::MakeBartonContext(barton_.dataset, 28);
  CStoreBackend cstore(barton_.dataset, ctx.interesting_properties());
  EXPECT_EQ(cstore.Insert({1, 2, 3}).code(), StatusCode::kUnimplemented);
}

TEST_F(UpdateTest, NewPropertyCreatesPartition) {
  const uint64_t s = barton_.dataset.dict().Intern("<subject-np>");
  const uint64_t p = barton_.dataset.dict().Intern("<brand-new-property>");
  const uint64_t o = barton_.dataset.dict().Intern("\"value\"");

  ColVerticalBackend col(barton_.dataset);
  EXPECT_EQ(col.partitions_created(), 0u);
  ASSERT_TRUE(col.Insert({s, p, o}).ok());
  EXPECT_EQ(col.partitions_created(), 1u);

  RowVerticalBackend row(barton_.dataset);
  ASSERT_TRUE(row.Insert({s, p, o}).ok());
  EXPECT_EQ(row.relation().partitions_created(), 1u);
  rdf::TriplePattern pattern;
  pattern.property = p;
  EXPECT_EQ(row.Match(pattern).size(), 1u);
  EXPECT_EQ(col.Match(pattern).size(), 1u);
}

TEST_F(UpdateTest, ColumnBackendMergesOnNextRun) {
  const uint64_t s = barton_.dataset.dict().Intern("<merge-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  const auto ctx = bench_support::MakeBartonContext(barton_.dataset, 28);

  ColTripleBackend backend(barton_.dataset, rdf::TripleOrder::kPSO);
  ASSERT_TRUE(backend.Insert({s, type, text}).ok());
  EXPECT_EQ(backend.delta_size(), 1u);
  EXPECT_EQ(backend.merge_count(), 0u);
  backend.Run(QueryId::kQ1, ctx);
  EXPECT_EQ(backend.delta_size(), 0u);
  EXPECT_EQ(backend.merge_count(), 1u);
  // A second run does not merge again.
  backend.Run(QueryId::kQ1, ctx);
  EXPECT_EQ(backend.merge_count(), 1u);
}

TEST_F(UpdateTest, AllBackendsAgreeAfterMixedInsertWorkload) {
  // Build the insert batch first (interning mutates the dictionary, so all
  // ids must exist before contexts/backends snapshot dict_size).
  std::vector<rdf::Triple> batch;
  {
    auto& dict = barton_.dataset.dict();
    const uint64_t type = *dict.Find("<type>");
    const uint64_t text = *dict.Find("<Text>");
    const uint64_t fresh_p = dict.Intern("<post-load-property>");
    for (int i = 0; i < 50; ++i) {
      const uint64_t s =
          dict.Intern("<post-load-subject-" + std::to_string(i) + ">");
      batch.push_back({s, type, text});
      batch.push_back({s, fresh_p, dict.Intern("\"v" + std::to_string(i % 7) +
                                               "\"")});
    }
  }

  auto backends = WritableBackends();
  for (auto& backend : backends) {
    for (const rdf::Triple& t : batch) {
      ASSERT_TRUE(backend->Insert(t).ok()) << backend->name();
    }
  }
  const auto ctx = bench_support::MakeBartonContext(barton_.dataset, 28);
  std::vector<Backend*> raw;
  for (auto& b : backends) raw.push_back(b.get());
  bench_support::VerifyBackendsAgree(raw, AllQueries(), ctx);

  // After the whole mutation workload, every backend's physical structures
  // must still satisfy their invariants.
  for (auto& backend : backends) {
    const auto report = backend->Audit(audit::AuditLevel::kFull);
    EXPECT_TRUE(report.ok()) << backend->name() << "\n" << report.ToString();
  }
}

}  // namespace
}  // namespace swan::core
