#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/random.h"
#include "rowstore/bplus_tree.h"

namespace swan::rowstore {
namespace {

using Tree2 = BPlusTree<2>;
using Tree3 = BPlusTree<3>;

struct TreeFixture {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool{&disk, 1 << 14};  // swan-lint: allow(node-disk)
};

std::vector<Tree3::Key> SequentialKeys(uint64_t n) {
  std::vector<Tree3::Key> keys;
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) keys.push_back({i, i * 2, i * 3});
  return keys;
}

TEST(BPlusTreeTest, EmptyTreeIteratesNothing) {
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  tree.BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.Contains({1, 2, 3}));
}

TEST(BPlusTreeTest, SingleKey) {
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  const Tree3::Key k{7, 8, 9};
  tree.BulkLoad(std::span<const Tree3::Key>(&k, 1));
  EXPECT_TRUE(tree.Contains(k));
  EXPECT_FALSE(tree.Contains({7, 8, 10}));
  auto it = tree.Begin();
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), k);
  it.Next();
  EXPECT_FALSE(it.Valid());
}

class BulkLoadSizeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BulkLoadSizeTest, FullScanReturnsAllKeysInOrder) {
  const uint64_t n = GetParam();
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  const auto keys = SequentialKeys(n);
  tree.BulkLoad(keys);
  EXPECT_EQ(tree.size(), n);

  uint64_t count = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key(), keys[count]);
    ++count;
  }
  EXPECT_EQ(count, n);
}

TEST_P(BulkLoadSizeTest, ContainsEveryLoadedKeyAndNoOthers) {
  const uint64_t n = GetParam();
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  const auto keys = SequentialKeys(n);
  tree.BulkLoad(keys);
  for (uint64_t i = 0; i < n; i += 7) {
    EXPECT_TRUE(tree.Contains(keys[i]));
    EXPECT_FALSE(tree.Contains({i, i * 2, i * 3 + 1}));
  }
}

TEST_P(BulkLoadSizeTest, SeekFindsLowerBound) {
  const uint64_t n = GetParam();
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  tree.BulkLoad(SequentialKeys(n));
  // Seek between keys i and i+1.
  for (uint64_t i = 0; i + 1 < n; i += std::max<uint64_t>(1, n / 13)) {
    auto it = tree.Seek({i, i * 2, i * 3 + 1});
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key()[0], i + 1);
  }
  // Seek past the end.
  EXPECT_FALSE(tree.Seek({n, 0, 0}).Valid());
}

// Exercise single-leaf, multi-leaf, and multi-level shapes (leaf capacity
// for W=3 is 339, internal 290).
INSTANTIATE_TEST_SUITE_P(Shapes, BulkLoadSizeTest,
                         ::testing::Values(1, 10, 340, 341, 5000, 120000));

TEST(BPlusTreeTest, HeightGrowsLogarithmically) {
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  tree.BulkLoad(SequentialKeys(200000));
  EXPECT_GE(tree.height(), 2);
  EXPECT_LE(tree.height(), 4);
}

TEST(BPlusTreeTest, BulkLoadedLeavesAreSequentialOnDisk) {
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  tree.BulkLoad(SequentialKeys(50000));
  f.pool.Clear();
  f.disk.ResetStats();
  uint64_t count = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) ++count;
  EXPECT_EQ(count, 50000u);
  // A full scan must be nearly seek-free: descent plus one long run.
  EXPECT_LE(f.disk.total_seeks(), 8u);
}

TEST(BPlusTreeTest, InsertIntoEmptyTree) {
  TreeFixture f;
  Tree2 tree(&f.pool, &f.disk);
  EXPECT_TRUE(tree.Insert({5, 6}));
  EXPECT_FALSE(tree.Insert({5, 6}));
  EXPECT_TRUE(tree.Contains({5, 6}));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTreeTest, InsertManyRandomKeysSplitsCorrectly) {
  TreeFixture f;
  Tree2 tree(&f.pool, &f.disk);
  tree.BulkLoad({});
  Rng rng(77);
  std::set<std::array<uint64_t, 2>> reference;
  for (int i = 0; i < 20000; ++i) {
    const std::array<uint64_t, 2> key{rng.Uniform(5000), rng.Uniform(5000)};
    const bool fresh = reference.insert(key).second;
    EXPECT_EQ(tree.Insert(key), fresh);
  }
  EXPECT_EQ(tree.size(), reference.size());
  // Iteration order must equal the reference set's order.
  auto expected = reference.begin();
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    ASSERT_NE(expected, reference.end());
    EXPECT_EQ(it.key(), *expected);
    ++expected;
  }
  EXPECT_EQ(expected, reference.end());
}

TEST(BPlusTreeTest, InsertAscendingTriggersRightmostSplits) {
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  tree.BulkLoad({});
  for (uint64_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(tree.Insert({i, 0, 0}));
  }
  EXPECT_EQ(tree.size(), 3000u);
  EXPECT_GE(tree.height(), 2);
  uint64_t expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key()[0], expected++);
  }
  EXPECT_EQ(expected, 3000u);
}

TEST(BPlusTreeTest, InsertDescendingTriggersLeftmostSplits) {
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  tree.BulkLoad({});
  for (uint64_t i = 3000; i-- > 0;) {
    ASSERT_TRUE(tree.Insert({i, 0, 0}));
  }
  uint64_t expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key()[0], expected++);
  }
  EXPECT_EQ(expected, 3000u);
}

TEST(BPlusTreeTest, InsertAfterBulkLoad) {
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  std::vector<Tree3::Key> keys;
  for (uint64_t i = 0; i < 1000; ++i) keys.push_back({i * 2, 0, 0});
  tree.BulkLoad(keys);
  // Fill the odd gaps.
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert({i * 2 + 1, 0, 0}));
  }
  EXPECT_EQ(tree.size(), 2000u);
  uint64_t expected = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key()[0], expected++);
  }
}

TEST(BPlusTreeTest, CountPrefixCountsRange) {
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  std::vector<Tree3::Key> keys;
  for (uint64_t p = 0; p < 10; ++p) {
    for (uint64_t s = 0; s < 20; ++s) keys.push_back({p, s, p + s});
  }
  std::sort(keys.begin(), keys.end());
  tree.BulkLoad(keys);
  const uint64_t prefix_value = 4;
  EXPECT_EQ(tree.CountPrefix(std::span<const uint64_t>(&prefix_value, 1)),
            20u);
  EXPECT_EQ(tree.CountPrefix({}), 200u);
  const uint64_t two[] = {4, 7};
  EXPECT_EQ(tree.CountPrefix(two), 1u);
}

TEST(BPlusTreeTest, ColdScanChargesDiskTime) {
  TreeFixture f;
  Tree3 tree(&f.pool, &f.disk);
  tree.BulkLoad(SequentialKeys(50000));
  f.pool.Clear();
  f.disk.ResetStats();
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
  }
  EXPECT_GT(f.disk.clock().now(), 0.0);
  EXPECT_GT(f.disk.total_bytes_read(), 50000 * 24u);

  // Hot rescan: everything cached, no further disk traffic.
  const uint64_t bytes_after_cold = f.disk.total_bytes_read();
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
  }
  EXPECT_EQ(f.disk.total_bytes_read(), bytes_after_cold);
}

TEST(BPlusTreeTest, Width2And3Coexist) {
  TreeFixture f;
  Tree2 t2(&f.pool, &f.disk);
  Tree3 t3(&f.pool, &f.disk);
  std::vector<Tree2::Key> k2 = {{1, 2}, {3, 4}};
  std::vector<Tree3::Key> k3 = {{1, 2, 3}, {4, 5, 6}};
  t2.BulkLoad(k2);
  t3.BulkLoad(k3);
  EXPECT_TRUE(t2.Contains({3, 4}));
  EXPECT_TRUE(t3.Contains({4, 5, 6}));
  EXPECT_FALSE(t3.Contains({3, 4, 0}));
}

}  // namespace
}  // namespace swan::rowstore
