#include <gtest/gtest.h>

#include <vector>

#include "cstore/cstore_engine.h"

namespace swan::cstore {
namespace {

struct CStoreFixture {
  storage::SimulatedDisk disk{CStoreEngine::RecommendedDiskConfig(390.0)};  // swan-lint: allow(node-disk)
  storage::BufferPool pool{&disk, 1 << 12};  // swan-lint: allow(node-disk)
};

// Tiny graph with ids assigned manually:
//  properties: type=1 language=2 origin=3 records=4 point=5 encoding=6 other=7
//  objects:    Text=20 Date=21 fre=22 DLC=23 end=24 enc=25
//  subjects:   30..39
constexpr CStoreConstants kConstants = {
    /*type=*/1,   /*text=*/20, /*language=*/2, /*french=*/22,
    /*origin=*/3, /*dlc=*/23,  /*records=*/4,  /*point=*/5,
    /*end=*/24,   /*encoding=*/6, /*dict_size=*/64};

std::vector<rdf::Triple> Graph() {
  return {
      {30, 1, 20},  // s30 type Text
      {30, 2, 22},  // s30 language fre
      {30, 3, 23},  // s30 origin DLC
      {30, 4, 31},  // s30 records s31
      {30, 5, 24},  // s30 point end
      {30, 6, 25},  // s30 encoding enc
      {31, 1, 21},  // s31 type Date
      {32, 1, 20},  // s32 type Text
      {33, 7, 40},  // excluded property 7
  };
}

std::vector<uint64_t> LoadedProperties() { return {1, 2, 3, 4, 5, 6}; }

TEST(CStoreEngineTest, LoadsOnlyRequestedProperties) {
  CStoreFixture f;
  CStoreEngine engine(&f.pool, &f.disk);
  engine.Load(Graph(), LoadedProperties());
  EXPECT_TRUE(engine.HasProperty(1));
  EXPECT_FALSE(engine.HasProperty(7));
  EXPECT_EQ(engine.properties().size(), 6u);
}

TEST(CStoreEngineTest, Q1CountsTypeObjects) {
  CStoreFixture f;
  CStoreEngine engine(&f.pool, &f.disk);
  engine.Load(Graph(), LoadedProperties());
  const auto rows = engine.Q1(kConstants);
  ASSERT_EQ(rows.size(), 2u);
  // Ordered by object id: Text=20 (2 subjects), Date=21 (1 subject).
  EXPECT_EQ(rows[0], (std::vector<uint64_t>{20, 2}));
  EXPECT_EQ(rows[1], (std::vector<uint64_t>{21, 1}));
}

TEST(CStoreEngineTest, Q2CountsPerProperty) {
  CStoreFixture f;
  CStoreEngine engine(&f.pool, &f.disk);
  engine.Load(Graph(), LoadedProperties());
  const auto rows = engine.Q2(kConstants);
  // A = {30, 32}; per property counts of their triples.
  // type: both -> 2; language/origin/records/point/encoding: s30 -> 1 each.
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    if (row[0] == 1) {
      EXPECT_EQ(row[1], 2u);
    } else {
      EXPECT_EQ(row[1], 1u);
    }
  }
}

TEST(CStoreEngineTest, Q5FollowsRecords) {
  CStoreFixture f;
  CStoreEngine engine(&f.pool, &f.disk);
  engine.Load(Graph(), LoadedProperties());
  const auto rows = engine.Q5(kConstants);
  // s30 (origin DLC) records -> s31 whose type Date != Text.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<uint64_t>{30, 21}));
}

TEST(CStoreEngineTest, Q7JoinsPointEncodingType) {
  CStoreFixture f;
  CStoreEngine engine(&f.pool, &f.disk);
  engine.Load(Graph(), LoadedProperties());
  const auto rows = engine.Q7(kConstants);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<uint64_t>{30, 25, 20}));
}

TEST(CStoreEngineTest, DropCachesForcesReread) {
  CStoreFixture f;
  CStoreEngine engine(&f.pool, &f.disk);
  engine.Load(Graph(), LoadedProperties());
  engine.Q1(kConstants);
  engine.DropCaches();
  f.pool.Clear();
  f.disk.ResetStats();
  engine.Q1(kConstants);
  EXPECT_GT(f.disk.total_bytes_read(), 0u);
}

TEST(CStoreEngineTest, PoorIoUtilizationUnderForcedSeeks) {
  // Same data read through the C-Store disk profile at two bandwidths:
  // quadrupling the bandwidth must improve virtual read time by far less
  // than 4x (the paper's machine A vs B observation).
  std::vector<rdf::Triple> triples;
  for (uint64_t i = 0; i < 200000; ++i) triples.push_back({i, 1, i % 97});

  CStoreConstants constants = kConstants;
  constants.dict_size = 128;  // objects reach id 96 in this graph
  auto cold_seconds = [&](double bandwidth) {
    storage::SimulatedDisk disk(CStoreEngine::RecommendedDiskConfig(bandwidth));  // swan-lint: allow(node-disk)
    storage::BufferPool pool(&disk, 1 << 12);  // swan-lint: allow(node-disk)
    CStoreEngine engine(&pool, &disk);
    std::vector<uint64_t> props = {1};
    engine.Load(triples, props);
    engine.DropCaches();
    pool.Clear();
    disk.ResetStats();
    engine.Q1(constants);
    return disk.clock().now();
  };
  const double slow = cold_seconds(100.0);
  const double fast = cold_seconds(390.0);
  EXPECT_LT(fast, slow);
  EXPECT_GT(fast / slow, 0.55);  // nowhere near the 4x bandwidth ratio
}

}  // namespace
}  // namespace swan::cstore
