// Invariant (death) tests: misuse of the storage APIs must abort loudly
// via SWAN_CHECK rather than corrupt data silently.

#include <gtest/gtest.h>

#include <vector>

#include "colstore/column.h"
#include "colstore/compression.h"
#include "common/table_printer.h"
#include "dict/dictionary.h"
#include "rowstore/bplus_tree.h"
#include "rowstore/sorted_table.h"

namespace swan {
namespace {

using ::testing::KilledBySignal;

TEST(InvariantDeathTest, ColumnBuildTwiceAborts) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 16);  // swan-lint: allow(node-disk)
  colstore::Column col(&pool, &disk);
  const std::vector<uint64_t> values = {1, 2, 3};
  col.Build(values);
  EXPECT_DEATH(col.Build(values), "Build called twice");
}

TEST(InvariantDeathTest, ColumnGetBeforeBuildAborts) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 16);  // swan-lint: allow(node-disk)
  colstore::Column col(&pool, &disk);
  EXPECT_DEATH(col.Get(), "before Build");
}

TEST(InvariantDeathTest, BulkLoadOnNonEmptyTreeAborts) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 64);  // swan-lint: allow(node-disk)
  rowstore::BPlusTree<2> tree(&pool, &disk);
  const std::vector<rowstore::BPlusTree<2>::Key> keys = {{1, 2}};
  tree.BulkLoad(keys);
  EXPECT_DEATH(tree.BulkLoad(keys), "non-empty tree");
}

TEST(InvariantDeathTest, TablePrinterRowWidthMismatchAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(InvariantDeathTest, SortedTableSizeMismatchAborts) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 16);  // swan-lint: allow(node-disk)
  rowstore::SortedTable table(&pool, &disk, 3);
  const std::vector<uint64_t> flat = {1, 2, 3, 4};  // not a multiple of 3
  EXPECT_DEATH(table.BulkLoad(flat, 2), "");
}

TEST(InvariantDeathTest, DictionaryLookupOutOfRangeAborts) {
  dict::Dictionary dict;
  dict.Intern("<a>");
  EXPECT_DEATH(dict.Lookup(99), "out of range");
}

TEST(InvariantDeathTest, CorruptCompressedBufferAborts) {
  std::vector<uint8_t> corrupt = {/*tag=*/99, 0, 0};
  EXPECT_DEATH(colstore::DecompressU64(corrupt, 1), "unknown column codec");
}

TEST(InvariantDeathTest, TruncatedCompressedBufferAborts) {
  const std::vector<uint64_t> values = {1, 2, 3, 4, 5};
  auto encoded = colstore::CompressU64(values, colstore::ColumnCodec::kRle);
  encoded.resize(encoded.size() / 2);
  EXPECT_DEATH(colstore::DecompressU64(encoded, values.size()), "corrupt");
}

TEST(InvariantDeathTest, ReadPastEndOfDiskFileAborts) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  uint8_t buf[storage::kPageSize] = {};
  disk.AppendPage(f, buf);
  EXPECT_DEATH((void)disk.ReadPage({f, 5}, buf, nullptr), "past end");
}

}  // namespace
}  // namespace swan
