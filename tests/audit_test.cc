// The auditors audited: each corruption class the walkers claim to detect
// is seeded into a real structure and must surface as a finding of the
// right class — and clean stores must audit clean, before and after a
// query workload. Four corruption families are exercised:
//   1. silent media corruption (byte flip without checksum update)
//   2. logical corruption behind a valid checksum (reordered keys/values)
//   3. broken dictionary bijection (an id mapped to two terms)
//   4. resource-accounting drift (a leaked buffer-pool pin)

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "colstore/column.h"
#include "core/col_backends.h"
#include "core/cstore_backend.h"
#include "core/property_table_backend.h"
#include "core/row_backends.h"
#include "core/store.h"
#include "dict/dictionary.h"
#include "rowstore/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/simulated_disk.h"

namespace swan {
namespace {

using audit::AuditLevel;
using audit::FindingClass;

// --- corruption class 1: silent media corruption -------------------------

TEST(DiskChecksumTest, ReadPageReportsSilentCorruption) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t file = disk.CreateFile();
  std::vector<uint8_t> page(storage::kPageSize, 0xAB);
  disk.AppendPage(file, page.data());

  alignas(8) uint8_t buf[storage::kPageSize];
  ASSERT_TRUE(disk.ReadPage({file, 0}, buf, nullptr).ok());
  ASSERT_TRUE(disk.VerifyFile(file).ok());

  disk.CorruptPageForTesting({file, 0}, 17, 0x01);
  const Status st = disk.ReadPage({file, 0}, buf, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(disk.VerifyPage({file, 0}).code(), StatusCode::kCorruption);
  EXPECT_EQ(disk.VerifyFile(file).code(), StatusCode::kCorruption);
  // The bytes are still delivered for forensics, flip included.
  EXPECT_EQ(buf[17], 0xAB ^ 0x01);

  // Flipping the same bit back restores a clean page.
  disk.CorruptPageForTesting({file, 0}, 17, 0x01);
  EXPECT_TRUE(disk.ReadPage({file, 0}, buf, nullptr).ok());
}

TEST(DiskChecksumTest, DiskAuditSweepsEveryPage) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t file = disk.CreateFile();
  std::vector<uint8_t> page(storage::kPageSize, 0x5C);
  for (int p = 0; p < 10; ++p) disk.AppendPage(file, page.data());

  EXPECT_TRUE(audit::Audit(disk, AuditLevel::kFull).ok());
  disk.CorruptPageForTesting({file, 3}, 100, 0xFF);
  disk.CorruptPageForTesting({file, 7}, 200, 0xFF);

  // kQuick never touches page payloads, so it stays clean by design.
  EXPECT_TRUE(audit::Audit(disk, AuditLevel::kQuick).ok());
  const auto report = audit::Audit(disk, AuditLevel::kFull);
  EXPECT_EQ(report.CountClass(FindingClass::kChecksum), 2u)
      << report.ToString();
}

TEST(BufferPoolChecksumTest, TryFetchSurfacesCorruptionAsStatus) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t file = disk.CreateFile();
  std::vector<uint8_t> page(storage::kPageSize, 0x11);
  disk.AppendPage(file, page.data());
  storage::BufferPool pool(&disk, 8);  // swan-lint: allow(node-disk)

  disk.CorruptPageForTesting({file, 0}, 0, 0x80);
  storage::PageGuard guard;
  EXPECT_EQ(pool.TryFetch({file, 0}, &guard).code(), StatusCode::kCorruption);
  EXPECT_FALSE(guard.valid());
  // The failed fetch must not leak its frame pin.
  EXPECT_TRUE(audit::Audit(pool, AuditLevel::kFull).ok());
}

TEST(BufferPoolChecksumDeathTest, FetchAbortsOnCorruptPage) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t file = disk.CreateFile();
  std::vector<uint8_t> page(storage::kPageSize, 0x22);
  disk.AppendPage(file, page.data());
  storage::BufferPool pool(&disk, 8);  // swan-lint: allow(node-disk)
  disk.CorruptPageForTesting({file, 0}, 9, 0x04);
  EXPECT_DEATH((void)pool.Fetch({file, 0}), "checksum mismatch");
}

// --- B+tree: checksum and structural corruption ---------------------------

using Tree3 = rowstore::BPlusTree<3>;

Tree3 BuildTree(storage::BufferPool* pool, storage::SimulatedDisk* disk,
                uint64_t keys) {
  Tree3 tree(pool, disk);
  std::vector<Tree3::Key> sorted;
  for (uint64_t i = 0; i < keys; ++i) sorted.push_back({i, i * 2, i % 5});
  tree.BulkLoad(sorted);
  return tree;
}

TEST(BPlusTreeAuditTest, ByteFlippedPageIsAChecksumFinding) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 1 << 10);  // swan-lint: allow(node-disk)
  Tree3 tree = BuildTree(&pool, &disk, 2000);
  ASSERT_GT(tree.page_count(), 3u);  // multi-page: leaves + a root
  ASSERT_TRUE(audit::Audit(tree, AuditLevel::kFull).ok());

  // Bulk load writes leaves first: page 0 is the leftmost leaf.
  disk.CorruptPageForTesting({tree.file_id(), 0}, 1000, 0xFF);
  pool.Clear();  // the audit must see the disk image, not a cached copy

  const auto report = audit::Audit(tree, AuditLevel::kFull);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountClass(FindingClass::kChecksum), 1u)
      << report.ToString();
}

TEST(BPlusTreeAuditTest, ReorderedLeafKeysAreAStructuralFinding) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 1 << 10);  // swan-lint: allow(node-disk)
  Tree3 tree = BuildTree(&pool, &disk, 2000);
  ASSERT_TRUE(audit::Audit(tree, AuditLevel::kFull).ok());

  // Swap the first two keys of the leftmost leaf and rewrite the page
  // through the legitimate write path, so its checksum is valid and only
  // the *logical* invariant (key order) is broken.
  alignas(8) uint8_t page[storage::kPageSize];
  ASSERT_TRUE(disk.ReadPage({tree.file_id(), 0}, page, nullptr).ok());
  uint16_t is_leaf;
  std::memcpy(&is_leaf, page, sizeof(is_leaf));
  ASSERT_EQ(is_leaf, 1u);
  alignas(8) uint8_t key[Tree3::kKeyBytes];
  uint8_t* first = page + Tree3::kHeaderSize;
  uint8_t* second = first + Tree3::kKeyBytes;
  std::memcpy(key, first, Tree3::kKeyBytes);
  std::memcpy(first, second, Tree3::kKeyBytes);
  std::memcpy(second, key, Tree3::kKeyBytes);
  disk.WritePage({tree.file_id(), 0}, page);
  pool.Clear();

  const auto report = audit::Audit(tree, AuditLevel::kFull);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountClass(FindingClass::kBPlusTree), 1u)
      << report.ToString();
  EXPECT_EQ(report.CountClass(FindingClass::kChecksum), 0u)
      << "valid checksum over corrupt logic must not be misclassified:\n"
      << report.ToString();
}

TEST(BPlusTreeAuditTest, BrokenLeafChainIsDetected) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 1 << 10);  // swan-lint: allow(node-disk)
  Tree3 tree = BuildTree(&pool, &disk, 2000);

  // Truncate the leftmost leaf's next pointer: scans would silently stop
  // after one page while point lookups keep working.
  alignas(8) uint8_t page[storage::kPageSize];
  ASSERT_TRUE(disk.ReadPage({tree.file_id(), 0}, page, nullptr).ok());
  const uint32_t invalid = rowstore::kInvalidPage;
  std::memcpy(page + 4, &invalid, sizeof(invalid));
  disk.WritePage({tree.file_id(), 0}, page);
  pool.Clear();

  const auto report = audit::Audit(tree, AuditLevel::kFull);
  EXPECT_GE(report.CountClass(FindingClass::kBPlusTree), 1u)
      << report.ToString();
}

// --- column store: sortedness and id-range corruption ---------------------

TEST(ColumnAuditTest, ShuffledSortedColumnIsAColumnFinding) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 64);  // swan-lint: allow(node-disk)
  colstore::Column col(&pool, &disk, colstore::ColumnCodec::kRaw);
  std::vector<uint64_t> values(5000);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i;
  col.Build(values);

  colstore::ColumnAuditOptions opts;
  opts.label = "test.sorted";
  opts.expect_sorted = true;
  audit::AuditReport clean;
  col.AuditInto(AuditLevel::kFull, opts, &clean);
  ASSERT_TRUE(clean.ok()) << clean.ToString();

  // Swap the first two values on disk through the legitimate write path:
  // the checksum is valid, but the declared sort order no longer holds.
  alignas(8) uint8_t page[storage::kPageSize];
  ASSERT_TRUE(disk.ReadPage({col.file_id(), 0}, page, nullptr).ok());
  uint64_t a, b;
  std::memcpy(&a, page, sizeof(a));
  std::memcpy(&b, page + 8, sizeof(b));
  ASSERT_NE(a, b);
  std::memcpy(page, &b, sizeof(b));
  std::memcpy(page + 8, &a, sizeof(a));
  disk.WritePage({col.file_id(), 0}, page);
  col.DropCache();
  pool.Clear();

  audit::AuditReport report;
  col.AuditInto(AuditLevel::kFull, opts, &report);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountClass(FindingClass::kColumn), 1u)
      << report.ToString();
  EXPECT_EQ(report.CountClass(FindingClass::kChecksum), 0u)
      << report.ToString();
}

TEST(ColumnAuditTest, DictionaryCodeOutOfRangeIsAColumnFinding) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 64);  // swan-lint: allow(node-disk)
  colstore::Column col(&pool, &disk, colstore::ColumnCodec::kRaw);
  std::vector<uint64_t> values = {3, 1, 4, 1, 5, 9, 2, 6};
  col.Build(values);

  colstore::ColumnAuditOptions opts;
  opts.label = "test.range";
  opts.max_valid_id = 10;  // all values < 10: clean
  audit::AuditReport clean;
  col.AuditInto(AuditLevel::kFull, opts, &clean);
  ASSERT_TRUE(clean.ok()) << clean.ToString();

  // Plant an id no dictionary of size 10 could ever have issued.
  alignas(8) uint8_t page[storage::kPageSize];
  ASSERT_TRUE(disk.ReadPage({col.file_id(), 0}, page, nullptr).ok());
  const uint64_t bogus = 1u << 20;
  std::memcpy(page + 4 * 8, &bogus, sizeof(bogus));
  disk.WritePage({col.file_id(), 0}, page);
  col.DropCache();
  pool.Clear();

  audit::AuditReport report;
  col.AuditInto(AuditLevel::kFull, opts, &report);
  EXPECT_GE(report.CountClass(FindingClass::kColumn), 1u)
      << report.ToString();
}

TEST(ColumnAuditTest, ChecksumFailureOnCompressedColumnDoesNotAbort) {
  // A corrupt page under a compressed column must become a kChecksum
  // finding — the auditor must not attempt to decode the damaged bytes
  // (DecompressU64 aborts on malformed input by design).
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 64);  // swan-lint: allow(node-disk)
  colstore::Column col(&pool, &disk, colstore::ColumnCodec::kRle);
  std::vector<uint64_t> values(5000, 7);
  col.Build(values);

  disk.CorruptPageForTesting({col.file_id(), 0}, 3, 0xFF);
  col.DropCache();
  pool.Clear();

  colstore::ColumnAuditOptions opts;
  opts.label = "test.rle";
  audit::AuditReport report;
  col.AuditInto(AuditLevel::kFull, opts, &report);
  EXPECT_GE(report.CountClass(FindingClass::kChecksum), 1u)
      << report.ToString();
}

// --- corruption class 3: dictionary bijection ------------------------------

TEST(DictionaryAuditTest, DuplicateIdBreaksTheBijection) {
  dict::Dictionary dict;
  const uint64_t a = dict.Intern("<a>");
  dict.Intern("<b>");
  dict.Intern("<c>");
  ASSERT_TRUE(audit::Audit(dict, AuditLevel::kFull).ok());

  // Repoint <b>'s index entry at <a>'s id: two terms now claim one id and
  // <b>'s own id has no index entry left.
  dict.TestOnlyCorruptId("<b>", a);

  // The structural half (index/terms size agreement) still holds...
  EXPECT_TRUE(audit::Audit(dict, AuditLevel::kQuick).ok());
  // ...but the full bijection walk must notice.
  const auto report = audit::Audit(dict, AuditLevel::kFull);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountClass(FindingClass::kDictionary), 1u)
      << report.ToString();
}

// --- corruption class 4: buffer-pool pin accounting ------------------------

TEST(BufferPoolAuditTest, LeakedPinIsDetectedAndReleaseClearsIt) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t file = disk.CreateFile();
  std::vector<uint8_t> page(storage::kPageSize, 0x33);
  for (int p = 0; p < 4; ++p) disk.AppendPage(file, page.data());
  storage::BufferPool pool(&disk, 8);  // swan-lint: allow(node-disk)

  {
    storage::PageGuard leak = pool.Fetch({file, 2});
    const auto report = audit::Audit(pool, AuditLevel::kQuick);
    EXPECT_FALSE(report.ok());
    EXPECT_GE(report.CountClass(FindingClass::kBufferPool), 1u)
        << report.ToString();
  }
  // Guard released: the same audit is clean again.
  EXPECT_TRUE(audit::Audit(pool, AuditLevel::kFull).ok());
}

// --- clean stores audit clean ----------------------------------------------

TEST(CleanStoreAuditTest, AllBackendsAuditCleanAfterBuildAndQueries) {
  bench_support::BartonConfig config;
  config.target_triples = 5000;
  const auto barton = bench_support::GenerateBarton(config);
  const auto ctx = bench_support::MakeBartonContext(barton.dataset, 28);

  std::vector<std::unique_ptr<core::Backend>> backends;
  backends.push_back(std::make_unique<core::ColTripleBackend>(
      barton.dataset, rdf::TripleOrder::kPSO));
  backends.push_back(
      std::make_unique<core::ColVerticalBackend>(barton.dataset));
  backends.push_back(std::make_unique<core::RowTripleBackend>(
      barton.dataset, rowstore::TripleRelation::SpoConfig()));
  backends.push_back(std::make_unique<core::RowVerticalBackend>(barton.dataset));
  backends.push_back(
      std::make_unique<core::PropertyTableBackend>(barton.dataset, 4));
  backends.push_back(std::make_unique<core::CStoreBackend>(
      barton.dataset, ctx.interesting_properties()));

  for (auto& backend : backends) {
    // Clean both before and after the full query workload.
    auto before = backend->Audit(AuditLevel::kFull);
    EXPECT_TRUE(before.ok()) << backend->name() << "\n" << before.ToString();
    for (core::QueryId id : core::AllQueries()) {
      if (backend->Supports(id)) backend->Run(id, ctx);
    }
    auto after = backend->Audit(AuditLevel::kFull);
    EXPECT_TRUE(after.ok()) << backend->name() << "\n" << after.ToString();
  }
}

TEST(CleanStoreAuditTest, RdfStoreAuditCoversDictionary) {
  bench_support::BartonConfig config;
  config.target_triples = 2000;
  auto barton = bench_support::GenerateBarton(config);

  core::StoreOptions options;
  options.scheme = core::StorageScheme::kVerticalPartitioned;
  options.engine = core::EngineKind::kColumnStore;
  auto store = core::RdfStore::Open(barton.dataset, options);
  ASSERT_TRUE(store->Audit(AuditLevel::kFull).ok());

  // A dictionary corruption is invisible to the backend walkers but must
  // surface through the store-level audit.
  const std::string victim(barton.dataset.dict().Lookup(1));
  barton.dataset.dict().TestOnlyCorruptId(victim, 0);
  const auto report = store->Audit(AuditLevel::kFull);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.CountClass(FindingClass::kDictionary), 1u)
      << report.ToString();
}

}  // namespace
}  // namespace swan
