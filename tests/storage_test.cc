#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "exec/thread_pool.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/paged_file.h"
#include "storage/simulated_disk.h"

namespace swan::storage {
namespace {

std::vector<uint8_t> PatternPage(uint8_t fill) {
  return std::vector<uint8_t>(kPageSize, fill);
}

TEST(SimulatedDiskTest, RoundTripsPages) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  disk.AppendPage(f, PatternPage(0xAB).data());
  disk.AppendPage(f, PatternPage(0xCD).data());
  uint8_t buf[kPageSize];
  ASSERT_TRUE(disk.ReadPage({f, 1}, buf, nullptr).ok());
  EXPECT_EQ(buf[0], 0xCD);
  ASSERT_TRUE(disk.ReadPage({f, 0}, buf, nullptr).ok());
  EXPECT_EQ(buf[100], 0xAB);
  EXPECT_EQ(disk.PageCount(f), 2u);
}

TEST(SimulatedDiskTest, WritePageOverwrites) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  disk.AppendPage(f, PatternPage(0x11).data());
  disk.WritePage({f, 0}, PatternPage(0x22).data());
  uint8_t buf[kPageSize];
  ASSERT_TRUE(disk.ReadPage({f, 0}, buf, nullptr).ok());
  EXPECT_EQ(buf[0], 0x22);
}

TEST(SimulatedDiskTest, ChargesBandwidthTime) {
  DiskConfig config;
  config.bandwidth_mb_per_s = 8.0;  // 1 page = 1.024 ms
  config.seek_latency_ms = 0.0;
  SimulatedDisk disk(config);  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  for (int i = 0; i < 10; ++i) disk.AppendPage(f, PatternPage(0).data());
  uint8_t buf[kPageSize];
  for (uint32_t p = 0; p < 10; ++p) {
    ASSERT_TRUE(disk.ReadPage({f, p}, buf, nullptr).ok());
  }
  EXPECT_NEAR(disk.clock().now(), 10 * kPageSize / 8e6, 1e-9);
  EXPECT_EQ(disk.total_bytes_read(), 10 * kPageSize);
}

TEST(SimulatedDiskTest, SequentialReadsSkipSeeks) {
  DiskConfig config;
  config.seek_latency_ms = 10.0;
  SimulatedDisk disk(config);  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  for (int i = 0; i < 5; ++i) disk.AppendPage(f, PatternPage(0).data());
  uint8_t buf[kPageSize];
  for (uint32_t p = 0; p < 5; ++p) {
    ASSERT_TRUE(disk.ReadPage({f, p}, buf, nullptr).ok());
  }
  EXPECT_EQ(disk.total_seeks(), 1u);  // only the initial positioning
}

TEST(SimulatedDiskTest, RandomReadsPaySeeks) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  for (int i = 0; i < 10; ++i) disk.AppendPage(f, PatternPage(0).data());
  uint8_t buf[kPageSize];
  ASSERT_TRUE(disk.ReadPage({f, 9}, buf, nullptr).ok());
  ASSERT_TRUE(disk.ReadPage({f, 0}, buf, nullptr).ok());
  ASSERT_TRUE(disk.ReadPage({f, 5}, buf, nullptr).ok());
  EXPECT_EQ(disk.total_seeks(), 3u);
}

TEST(SimulatedDiskTest, ForcedSeekIntervalLimitsRunLength) {
  DiskConfig config;
  config.forced_seek_interval_pages = 2;
  SimulatedDisk disk(config);  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  for (int i = 0; i < 8; ++i) disk.AppendPage(f, PatternPage(0).data());
  uint8_t buf[kPageSize];
  for (uint32_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(disk.ReadPage({f, p}, buf, nullptr).ok());
  }
  // Seek at page 0, then every 2 sequential pages: 0,2,4,6 -> 4 seeks.
  EXPECT_EQ(disk.total_seeks(), 4u);
}

TEST(SimulatedDiskTest, TraceRecordsCumulativeBytes) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  for (int i = 0; i < 4; ++i) disk.AppendPage(f, PatternPage(0).data());
  disk.StartTrace();
  uint8_t buf[kPageSize];
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(disk.ReadPage({f, p}, buf, nullptr).ok());
  }
  const auto trace = disk.StopTrace();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.back().cumulative_bytes, 4 * kPageSize);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].virtual_seconds, trace[i - 1].virtual_seconds);
  }
}

TEST(SimulatedDiskTest, TraceTagsParallelReadsWithLanes) {
  constexpr int kWidth = 4;
  constexpr uint32_t kPages = 64;
  swan::exec::SetThreads(kWidth);
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  for (uint32_t i = 0; i < kPages; ++i) {
    disk.AppendPage(f, PatternPage(static_cast<uint8_t>(i)).data());
  }
  disk.StartTrace();
  swan::exec::ParallelFor(kPages, 1, [&](uint64_t b, uint64_t e, uint64_t) {
    uint8_t buf[kPageSize];
    for (uint64_t p = b; p < e; ++p) {
      ASSERT_TRUE(
          disk.ReadPage({f, static_cast<uint32_t>(p)}, buf,
                        swan::exec::CurrentTask())
              .ok());
    }
  });
  const auto trace = disk.StopTrace();
  swan::exec::SetThreads(1);

  ASSERT_EQ(trace.size(), kPages);
  for (const IoTracePoint& point : trace) {
    EXPECT_GE(point.lane, 0);
    EXPECT_LT(point.lane, kWidth);
  }
  // The trace is appended under the disk mutex in read order, so the byte
  // count is strictly increasing; the virtual clock (serial accrual plus
  // the slowest lane) never moves backwards regardless of interleaving.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].cumulative_bytes, trace[i - 1].cumulative_bytes);
    EXPECT_GE(trace[i].virtual_seconds, trace[i - 1].virtual_seconds);
  }
}

TEST(SimulatedDiskTest, ResetStatsClearsCounters) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  disk.AppendPage(f, PatternPage(0).data());
  uint8_t buf[kPageSize];
  ASSERT_TRUE(disk.ReadPage({f, 0}, buf, nullptr).ok());
  disk.ResetStats();
  EXPECT_EQ(disk.total_bytes_read(), 0u);
  EXPECT_EQ(disk.total_seeks(), 0u);
  EXPECT_DOUBLE_EQ(disk.clock().now(), 0.0);
}

TEST(BufferPoolTest, MissThenHit) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  disk.AppendPage(f, PatternPage(0x5A).data());
  BufferPool pool(&disk, 16);  // swan-lint: allow(node-disk)
  {
    PageGuard g = pool.Fetch({f, 0});
    EXPECT_EQ(g.data()[0], 0x5A);
  }
  EXPECT_EQ(pool.misses(), 1u);
  { PageGuard g = pool.Fetch({f, 0}); }
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(disk.total_reads(), 1u);  // second fetch served from memory
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  for (int i = 0; i < 20; ++i) disk.AppendPage(f, PatternPage(i).data());
  BufferPool pool(&disk, 8);  // swan-lint: allow(node-disk)
  for (uint32_t p = 0; p < 20; ++p) {
    PageGuard g = pool.Fetch({f, p});
  }
  EXPECT_EQ(pool.resident_pages(), 8u);
  // Pages 12..19 are resident; page 0 was evicted -> refetch misses.
  const uint64_t misses_before = pool.misses();
  { PageGuard g = pool.Fetch({f, 0}); }
  EXPECT_EQ(pool.misses(), misses_before + 1);
  // Page 19 is still resident -> hit.
  const uint64_t hits_before = pool.hits();
  { PageGuard g = pool.Fetch({f, 19}); }
  EXPECT_EQ(pool.hits(), hits_before + 1);
}

TEST(BufferPoolTest, PinnedPagesSurviveEvictionPressure) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  for (int i = 0; i < 20; ++i) disk.AppendPage(f, PatternPage(i).data());
  BufferPool pool(&disk, 8);  // swan-lint: allow(node-disk)
  PageGuard pinned = pool.Fetch({f, 0});
  for (uint32_t p = 1; p < 20; ++p) {
    PageGuard g = pool.Fetch({f, p});
  }
  // The pinned page's bytes must still be valid.
  EXPECT_EQ(pinned.data()[0], 0);
  const uint64_t hits_before = pool.hits();
  PageGuard again = pool.Fetch({f, 0});
  EXPECT_EQ(pool.hits(), hits_before + 1);
}

TEST(BufferPoolTest, ClearForcesColdReads) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  disk.AppendPage(f, PatternPage(1).data());
  BufferPool pool(&disk, 16);  // swan-lint: allow(node-disk)
  { PageGuard g = pool.Fetch({f, 0}); }
  pool.Clear();
  { PageGuard g = pool.Fetch({f, 0}); }
  EXPECT_EQ(disk.total_reads(), 2u);
}

TEST(BufferPoolTest, WriteThroughUpdatesCacheAndDisk) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  const uint32_t f = disk.CreateFile();
  disk.AppendPage(f, PatternPage(1).data());
  BufferPool pool(&disk, 16);  // swan-lint: allow(node-disk)
  { PageGuard g = pool.Fetch({f, 0}); }
  pool.WriteThrough({f, 0}, PatternPage(9).data());
  {
    PageGuard g = pool.Fetch({f, 0});
    EXPECT_EQ(g.data()[0], 9);
  }
  uint8_t buf[kPageSize];
  ASSERT_TRUE(disk.ReadPage({f, 0}, buf, nullptr).ok());
  EXPECT_EQ(buf[0], 9);
}

TEST(PagedFileTest, U64RoundTrip) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  PagedFile file(&disk);
  U64FileWriter writer(&file);
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 3000; ++i) {
    values.push_back(i * 7 + 1);
    writer.Append(i * 7 + 1);
  }
  writer.Finish();
  BufferPool pool(&disk, 16);  // swan-lint: allow(node-disk)
  std::vector<uint64_t> back;
  ReadU64File(&pool, file, 3000, &back);
  EXPECT_EQ(back, values);
}

TEST(PagedFileTest, PartialLastPageIsPadded) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  PagedFile file(&disk);
  U64FileWriter writer(&file);
  writer.Append(42);
  writer.Finish();
  EXPECT_EQ(file.page_count(), 1u);
  BufferPool pool(&disk, 16);  // swan-lint: allow(node-disk)
  std::vector<uint64_t> back;
  ReadU64File(&pool, file, 1, &back);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], 42u);
}

TEST(PagedFileTest, EmptyFileReadsEmpty) {
  SimulatedDisk disk;  // swan-lint: allow(node-disk)
  PagedFile file(&disk);
  U64FileWriter writer(&file);
  writer.Finish();
  BufferPool pool(&disk, 16);  // swan-lint: allow(node-disk)
  std::vector<uint64_t> back{1, 2, 3};
  ReadU64File(&pool, file, 0, &back);
  EXPECT_TRUE(back.empty());
}

TEST(PageIdTest, PackedIsUnique) {
  PageId a{1, 2}, b{2, 1};
  EXPECT_NE(a.Packed(), b.Packed());
  EXPECT_FALSE(a == b);
  EXPECT_TRUE((PageId{1, 2} == PageId{1, 2}));
}

}  // namespace
}  // namespace swan::storage
