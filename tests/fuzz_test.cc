// Differential fuzzing: randomized graphs, patterns, and malformed inputs.
// Optimized backends are compared against the naive reference; parsers
// must reject garbage gracefully (Status, never a crash).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "common/random.h"
#include "core/col_backends.h"
#include "core/property_table_backend.h"
#include "core/reference_backend.h"
#include "core/row_backends.h"
#include "rdf/ntriples.h"
#include "sparql/sparql.h"

namespace swan {
namespace {

// A random graph that always carries the benchmark vocabulary, so the
// fixed queries are well-defined on it.
rdf::Dataset RandomVocabGraph(uint64_t seed, int triples) {
  Rng rng(seed);
  rdf::Dataset data;
  const std::vector<std::string> properties = {
      "<type>", "<language>", "<origin>",  "<records>", "<Point>",
      "<Encoding>", "<p0>",   "<p1>",      "<p2>",      "<p3>"};
  const std::vector<std::string> objects = {
      "<Text>",
      "<Date>",
      "<language/iso639-2b/fre>",
      "<info:marcorg/DLC>",
      "\"end\"",
      "\"start\"",
      "<enc0>",
      "\"lit0\"",
      "\"lit1\""};
  auto subject = [&](uint64_t i) {
    return "<s" + std::to_string(i) + ">";
  };
  const uint64_t num_subjects = 1 + rng.Uniform(40);
  for (int i = 0; i < triples; ++i) {
    const std::string& p = properties[rng.Uniform(properties.size())];
    std::string o;
    if (p == "<records>" || rng.Chance(0.2)) {
      o = subject(rng.Uniform(num_subjects));  // subject-object overlap
    } else {
      o = objects[rng.Uniform(objects.size())];
    }
    data.Add(subject(rng.Uniform(num_subjects)), p, o);
  }
  // Guarantee the vocabulary resolves even if sampling missed a term.
  data.Add("<conferences>", "<p0>", "\"lit0\"");
  data.Add("<s0>", "<type>", "<Text>");
  data.Add("<s0>", "<language>", "<language/iso639-2b/fre>");
  data.Add("<s0>", "<origin>", "<info:marcorg/DLC>");
  data.Add("<s0>", "<records>", "<s1>");
  data.Add("<s0>", "<Point>", "\"end\"");
  data.Add("<s0>", "<Encoding>", "<enc0>");
  return data;
}

core::QueryContext ContextFor(const rdf::Dataset& data) {
  auto vocab = core::Vocabulary::Resolve(data);
  EXPECT_TRUE(vocab.ok());
  return core::QueryContext(vocab.value(), data.DistinctProperties(),
                            data.dict().size(),
                            data.DistinctProperties().size());
}

class GraphFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphFuzzTest, AllBackendsMatchReferenceOnRandomGraphs) {
  const rdf::Dataset data = RandomVocabGraph(GetParam(), 600);
  const core::QueryContext ctx = ContextFor(data);

  core::ReferenceBackend reference(data);
  std::vector<std::unique_ptr<core::Backend>> backends;
  backends.push_back(
      std::make_unique<core::ColTripleBackend>(data, rdf::TripleOrder::kSPO));
  backends.push_back(
      std::make_unique<core::ColTripleBackend>(data, rdf::TripleOrder::kPSO));
  backends.push_back(std::make_unique<core::ColVerticalBackend>(data));
  backends.push_back(std::make_unique<core::RowTripleBackend>(
      data, rowstore::TripleRelation::SpoConfig()));
  backends.push_back(std::make_unique<core::RowVerticalBackend>(data));
  backends.push_back(std::make_unique<core::PropertyTableBackend>(data, 4));

  for (core::QueryId id : core::AllQueries()) {
    core::QueryResult expected = reference.Run(id, ctx);
    for (auto& backend : backends) {
      core::QueryResult got = backend->Run(id, ctx);
      EXPECT_TRUE(expected.SameRows(got))
          << backend->name() << " diverges on " << ToString(id) << " (seed "
          << GetParam() << ")";
    }
  }

  // The full query workload must leave every backend audit-clean.
  for (auto& backend : backends) {
    const auto report = backend->Audit(audit::AuditLevel::kFull);
    EXPECT_TRUE(report.ok()) << backend->name() << " (seed " << GetParam()
                             << ")\n" << report.ToString();
  }
}

TEST_P(GraphFuzzTest, RandomPatternsMatchReference) {
  const rdf::Dataset data = RandomVocabGraph(GetParam() + 1000, 400);
  Rng rng(GetParam() * 77 + 5);

  core::ReferenceBackend reference(data);
  core::ColVerticalBackend col_vert(data);
  core::RowTripleBackend row_pso(data,
                                 rowstore::TripleRelation::PsoConfig());
  core::PropertyTableBackend ptable(data, 3);

  const uint64_t dict_size = data.dict().size();
  for (int round = 0; round < 40; ++round) {
    rdf::TriplePattern pattern;
    // Mix of real ids and (sometimes) ids that match nothing.
    if (rng.Chance(0.5)) pattern.subject = rng.Uniform(dict_size + 3);
    if (rng.Chance(0.5)) pattern.property = rng.Uniform(dict_size + 3);
    if (rng.Chance(0.5)) pattern.object = rng.Uniform(dict_size + 3);

    auto expected = reference.Match(pattern);
    std::sort(expected.begin(), expected.end());
    for (core::Backend* backend :
         std::initializer_list<core::Backend*>{&col_vert, &row_pso, &ptable}) {
      auto got = backend->Match(pattern);
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected)
          << backend->name() << " on " << pattern.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST(ParserFuzzTest, NTriplesNeverCrashesOnGarbage) {
  Rng rng(99);
  const std::string alphabet = "<>\"\\ .#abc\t@^_:/";
  for (int round = 0; round < 2000; ++round) {
    std::string line;
    const uint64_t len = rng.Uniform(40);
    for (uint64_t i = 0; i < len; ++i) {
      line += alphabet[rng.Uniform(alphabet.size())];
    }
    rdf::Dataset data;
    bool added = false;
    // Must return (either status), never abort; the discard is the test.
    // swan-lint: allow(discarded-status)
    (void)rdf::ParseNTriplesLine(line, &data, &added);
  }
}

TEST(ParserFuzzTest, SparqlNeverCrashesOnGarbage) {
  Rng rng(101);
  const std::string alphabet = "SELECT WHERE{}?<>\"*.:#\n\tPREFIX139 ";
  for (int round = 0; round < 2000; ++round) {
    std::string query;
    const uint64_t len = rng.Uniform(80);
    for (uint64_t i = 0; i < len; ++i) {
      query += alphabet[rng.Uniform(alphabet.size())];
    }
    // Either outcome is fine — the property under test is "never a
    // crash", so the status is discarded on purpose.
    // swan-lint: allow(discarded-status)
    (void)sparql::Parse(query);
  }
}

TEST(ParserFuzzTest, SparqlRejectsTruncationsOfValidQuery) {
  const std::string valid =
      "PREFIX ex: <http://e/> SELECT DISTINCT ?a WHERE { ?a ex:p \"v\" . } "
      "LIMIT 3";
  ASSERT_TRUE(sparql::Parse(valid).ok());
  // Every strict prefix must parse-fail or parse to something, without
  // crashing. (Some prefixes are valid queries; most are not.)
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    // swan-lint: allow(discarded-status)
    (void)sparql::Parse(valid.substr(0, cut));
  }
}

TEST(ParserFuzzTest, NTriplesRoundTripsRandomValidGraphs) {
  for (uint64_t seed : {7u, 11u, 23u}) {
    const rdf::Dataset data = RandomVocabGraph(seed, 300);
    std::stringstream buffer;
    WriteNTriples(data, buffer);
    rdf::Dataset parsed;
    uint64_t added = 0;
    auto st = ParseNTriples(buffer, &parsed, &added);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(parsed.size(), data.size());
  }
}

}  // namespace
}  // namespace swan
