// Tests for the runtime lock-rank checker (common/mutex.{h,cc}): ordered
// acquisition is silent, out-of-order / recursive / equal-rank
// acquisition aborts with a diagnostic, and CondVar::Wait keeps the
// held-lock stack consistent across the block.
//
// The violation helpers are marked SWAN_NO_THREAD_SAFETY_ANALYSIS: they
// exist to trip the *runtime* checker, and clang's static analysis would
// (correctly!) reject the recursive one at compile time otherwise.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace swan {
namespace {

using LockRankTest = ::testing::Test;

TEST_F(LockRankTest, OrderedAcquisitionPasses) {
  Mutex high(LockRank::kServeService, "test.high");
  Mutex mid(LockRank::kBufferPool, "test.mid");
  Mutex low(LockRank::kMetrics, "test.low");
  {
    MutexLock l1(&high);
    MutexLock l2(&mid);
    MutexLock l3(&low);
    if (LockRankChecksEnabled()) {
      EXPECT_EQ(HeldLockCountForTesting(), 3);
    }
  }
  EXPECT_EQ(HeldLockCountForTesting(), 0);
}

TEST_F(LockRankTest, ReacquireAfterReleaseIsFine) {
  Mutex low(LockRank::kMetrics, "test.low");
  Mutex high(LockRank::kServeService, "test.high");
  {
    MutexLock l(&low);
  }
  // low was released, so taking high afterwards walks "up" the table in
  // wall-clock time but never while holding — legal.
  MutexLock l(&high);
  MutexLock l2(&low);
}

TEST_F(LockRankTest, EarlyUnlockPopsTheStack) {
  Mutex high(LockRank::kServeService, "test.high");
  Mutex low(LockRank::kMetrics, "test.low");
  MutexLock l1(&high);
  l1.Unlock();
  EXPECT_FALSE(l1.held());
  // high is no longer held: acquiring low and then re-acquiring high
  // would invert the order, so re-lock high first.
  l1.Lock();
  EXPECT_TRUE(l1.held());
  MutexLock l2(&low);
  if (LockRankChecksEnabled()) {
    EXPECT_EQ(HeldLockCountForTesting(), 2);
  }
}

// --- violation helpers (runtime checker's job, so TSA is waived) ------

void AcquireOutOfOrder() SWAN_NO_THREAD_SAFETY_ANALYSIS {
  Mutex low(LockRank::kMetrics, "test.low");
  Mutex high(LockRank::kServeService, "test.high");
  low.Lock();
  high.Lock();  // rank 1200 while holding rank 100: must abort
  high.Unlock();
  low.Unlock();
}

void AcquireRecursively() SWAN_NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu(LockRank::kBufferPool, "test.recursive");
  mu.Lock();
  mu.Lock();  // must abort before deadlocking on the std::mutex
}

void AcquireEqualRank() SWAN_NO_THREAD_SAFETY_ANALYSIS {
  Mutex a(LockRank::kExecQueue, "test.queue-a");
  Mutex b(LockRank::kExecQueue, "test.queue-b");
  a.Lock();
  b.Lock();  // equal rank never nests (deadlock-prone by symmetry)
  b.Unlock();
  a.Unlock();
}

void UnlockNotHeld() SWAN_NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu(LockRank::kMetrics, "test.unheld");
  mu.Unlock();
}

TEST_F(LockRankTest, OutOfOrderAcquisitionAborts) {
  if (!LockRankChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  EXPECT_DEATH(AcquireOutOfOrder(),
               "lock-rank violation: acquiring mutex 'test.high'.*while "
               "holding 'test.low'");
}

TEST_F(LockRankTest, RecursiveAcquisitionAborts) {
  if (!LockRankChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  EXPECT_DEATH(AcquireRecursively(),
               "lock-rank violation: recursive acquisition of mutex "
               "'test.recursive'");
}

TEST_F(LockRankTest, EqualRankAcquisitionAborts) {
  if (!LockRankChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  EXPECT_DEATH(AcquireEqualRank(), "lock-rank violation");
}

TEST_F(LockRankTest, UnlockingAMutexNotHeldAborts) {
  if (!LockRankChecksEnabled()) GTEST_SKIP() << "checker compiled out";
  EXPECT_DEATH(UnlockNotHeld(),
               "lock-rank violation: unlocking mutex 'test.unheld'");
}

// --- CondVar interplay ------------------------------------------------

struct Channel {
  Mutex mutex{LockRank::kExecBatch, "test.channel"};
  CondVar cv;
  bool ready SWAN_GUARDED_BY(mutex) = false;
  int observed_depth SWAN_GUARDED_BY(mutex) = -1;
};

TEST_F(LockRankTest, CondVarWaitKeepsMutexOnHeldStack) {
  Channel ch;
  std::thread producer([&ch] {
    MutexLock lock(&ch.mutex);
    ch.ready = true;
    lock.Unlock();
    ch.cv.NotifyOne();
  });
  {
    MutexLock lock(&ch.mutex);
    while (!ch.ready) ch.cv.Wait(lock);
    // Back from the wait the mutex is held again and the rank stack
    // agrees with reality.
    ch.observed_depth = HeldLockCountForTesting();
  }
  producer.join();
  MutexLock lock(&ch.mutex);
  EXPECT_EQ(ch.observed_depth, LockRankChecksEnabled() ? 1 : 0);
}

TEST_F(LockRankTest, CondVarManyWaitersAllWake) {
  Channel ch;
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  int woke = 0;
  Mutex woke_mutex(LockRank::kMetrics, "test.woke");
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      {
        MutexLock lock(&ch.mutex);
        while (!ch.ready) ch.cv.Wait(lock);
      }
      MutexLock lock(&woke_mutex);
      ++woke;
    });
  }
  {
    MutexLock lock(&ch.mutex);
    ch.ready = true;
  }
  ch.cv.NotifyAll();
  for (auto& t : waiters) t.join();
  MutexLock lock(&woke_mutex);
  EXPECT_EQ(woke, kWaiters);
}

TEST_F(LockRankTest, ChecksEnabledMatchesBuildConfiguration) {
#ifdef SWAN_LOCK_RANK_CHECKS
  EXPECT_TRUE(LockRankChecksEnabled());
#else
  EXPECT_FALSE(LockRankChecksEnabled());
#endif
}

}  // namespace
}  // namespace swan
