#include <gtest/gtest.h>

#include <cstdlib>

#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "core/col_backends.h"
#include "core/row_backends.h"

namespace swan::bench_support {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BartonConfig config;
    config.target_triples = 30000;
    barton_ = GenerateBarton(config);
  }

  BartonDataset barton_;
};

TEST_F(HarnessTest, ColdRunsReadFromDisk) {
  core::ColVerticalBackend backend(barton_.dataset);
  const auto ctx = MakeBartonContext(barton_.dataset, 28);
  const Measurement cold =
      MeasureCold(&backend, core::QueryId::kQ1, ctx, /*repetitions=*/2);
  EXPECT_GT(cold.bytes_read, 0u);
  EXPECT_GT(cold.real_seconds, cold.user_seconds);
  EXPECT_GT(cold.rows_returned, 0u);
}

TEST_F(HarnessTest, HotRunsAreCacheResident) {
  core::ColVerticalBackend backend(barton_.dataset);
  const auto ctx = MakeBartonContext(barton_.dataset, 28);
  const Measurement hot =
      MeasureHot(&backend, core::QueryId::kQ1, ctx, /*repetitions=*/2);
  EXPECT_EQ(hot.bytes_read, 0u);  // warm-up loaded everything
  EXPECT_NEAR(hot.real_seconds, hot.user_seconds, 1e-9);
}

TEST_F(HarnessTest, ColdIsSlowerThanHotInRealTime) {
  core::ColTripleBackend backend(barton_.dataset, rdf::TripleOrder::kPSO);
  const auto ctx = MakeBartonContext(barton_.dataset, 28);
  const Measurement cold = MeasureCold(&backend, core::QueryId::kQ2, ctx, 2);
  const Measurement hot = MeasureHot(&backend, core::QueryId::kQ2, ctx, 2);
  EXPECT_GT(cold.real_seconds, hot.real_seconds);
}

TEST_F(HarnessTest, RowBackendColdReadsThroughBufferPool) {
  core::RowTripleBackend backend(barton_.dataset,
                                 rowstore::TripleRelation::PsoConfig());
  const auto ctx = MakeBartonContext(barton_.dataset, 28);
  const Measurement cold = MeasureCold(&backend, core::QueryId::kQ1, ctx, 1);
  EXPECT_GT(cold.bytes_read, 0u);
  const Measurement hot = MeasureHot(&backend, core::QueryId::kQ1, ctx, 1);
  EXPECT_EQ(hot.bytes_read, 0u);
}

TEST_F(HarnessTest, VerifyBackendsAgreeAcceptsAgreeingBackends) {
  core::ColVerticalBackend a(barton_.dataset);
  core::ColTripleBackend b(barton_.dataset, rdf::TripleOrder::kPSO);
  const auto ctx = MakeBartonContext(barton_.dataset, 28);
  const auto rows = VerifyBackendsAgree(
      {&a, &b}, {core::QueryId::kQ1, core::QueryId::kQ5}, ctx);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_GT(rows[0], 0u);
}

TEST_F(HarnessTest, StddevIsSmallRelativeToColdMean) {
  core::ColVerticalBackend backend(barton_.dataset);
  const auto ctx = MakeBartonContext(barton_.dataset, 28);
  const Measurement cold =
      MeasureCold(&backend, core::QueryId::kQ2, ctx, /*repetitions=*/3);
  EXPECT_GE(cold.real_stddev, 0.0);
  // The simulated I/O part is deterministic, so run-to-run noise is only
  // CPU jitter — the paper's "<30 ms of seconds-long runs" observation.
  EXPECT_LT(cold.real_stddev, cold.real_seconds);
}

TEST(EnvU64Test, ParsesAndFallsBack) {
  ::setenv("SWAN_TEST_ENV_U64", "12345", 1);
  EXPECT_EQ(EnvU64("SWAN_TEST_ENV_U64", 7), 12345u);
  ::setenv("SWAN_TEST_ENV_U64", "notanumber", 1);
  EXPECT_EQ(EnvU64("SWAN_TEST_ENV_U64", 7), 7u);
  ::unsetenv("SWAN_TEST_ENV_U64");
  EXPECT_EQ(EnvU64("SWAN_TEST_ENV_U64", 7), 7u);
}

// The paper's central cold-run asymmetry: the column triple-store must
// read the whole triples table for q1 while the vertical scheme reads only
// the partitions the query touches.
TEST_F(HarnessTest, VerticalReadsLessThanTripleStoreOnColdQ1) {
  core::ColTripleBackend triple(barton_.dataset, rdf::TripleOrder::kPSO);
  core::ColVerticalBackend vertical(barton_.dataset);
  const auto ctx = MakeBartonContext(barton_.dataset, 28);
  const Measurement triple_cold =
      MeasureCold(&triple, core::QueryId::kQ1, ctx, 1);
  const Measurement vertical_cold =
      MeasureCold(&vertical, core::QueryId::kQ1, ctx, 1);
  EXPECT_LT(vertical_cold.bytes_read, triple_cold.bytes_read);
}

}  // namespace
}  // namespace swan::bench_support
