#include <gtest/gtest.h>

#include <algorithm>

#include "bench_support/barton_generator.h"
#include "bench_support/dataset_stats.h"
#include "core/query.h"

namespace swan::bench_support {
namespace {

BartonConfig MediumConfig() {
  BartonConfig config;
  config.target_triples = 100000;
  config.seed = 4242;
  return config;
}

TEST(GeneratorTest, HitsTargetSize) {
  const auto barton = GenerateBarton(MediumConfig());
  EXPECT_NEAR(static_cast<double>(barton.dataset.size()), 100000.0, 500.0);
}

TEST(GeneratorTest, DeterministicInSeed) {
  BartonConfig config;
  config.target_triples = 5000;
  const auto a = GenerateBarton(config);
  const auto b = GenerateBarton(config);
  ASSERT_EQ(a.dataset.size(), b.dataset.size());
  EXPECT_EQ(a.dataset.triples(), b.dataset.triples());

  config.seed = 777;
  const auto c = GenerateBarton(config);
  EXPECT_NE(a.dataset.triples(), c.dataset.triples());
}

TEST(GeneratorTest, VocabularyResolves) {
  BartonConfig config;
  config.target_triples = 2000;
  const auto barton = GenerateBarton(config);
  EXPECT_TRUE(core::Vocabulary::Resolve(barton.dataset).ok());
}

TEST(GeneratorTest, TypeIsTheDominantProperty) {
  const auto barton = GenerateBarton(MediumConfig());
  const auto freqs = barton.dataset.PropertyFrequencies();
  ASSERT_FALSE(freqs.empty());
  const auto type_id = barton.dataset.dict().Find("<type>");
  ASSERT_TRUE(type_id.has_value());
  EXPECT_EQ(freqs[0].first, *type_id);
  // ~24.5% of all triples (Table 1 / Figure 1).
  const double share = static_cast<double>(freqs[0].second) /
                       static_cast<double>(barton.dataset.size());
  EXPECT_NEAR(share, 0.245, 0.02);
}

TEST(GeneratorTest, Top29PropertiesCoverAlmostEverything) {
  const auto barton = GenerateBarton(MediumConfig());
  const auto freqs = barton.dataset.PropertyFrequencies();
  uint64_t top = 0;
  for (size_t i = 0; i < std::min<size_t>(29, freqs.size()); ++i) {
    top += freqs[i].second;
  }
  const double share =
      static_cast<double>(top) / static_cast<double>(barton.dataset.size());
  // The paper: top 13% of 222 properties account for ~99% of triples.
  EXPECT_GT(share, 0.95);
}

TEST(GeneratorTest, LongTailHasTinyPartitions) {
  const auto barton = GenerateBarton(MediumConfig());
  const auto freqs = barton.dataset.PropertyFrequencies();
  EXPECT_GT(freqs.size(), 100u);  // most of the 222 materialize at 100k
  // "many with just a small number of rows (less than 10)"
  size_t tiny = 0;
  for (const auto& [p, c] : freqs) {
    if (c < 10) ++tiny;
  }
  EXPECT_GT(tiny, 20u);
}

TEST(GeneratorTest, SubjectsAreNearUniform) {
  const auto barton = GenerateBarton(MediumConfig());
  std::unordered_map<uint64_t, uint64_t> counts;
  for (const auto& t : barton.dataset.triples()) ++counts[t.subject];
  uint64_t max_count = 0;
  for (const auto& [s, c] : counts) max_count = std::max(max_count, c);
  // Max subject frequency stays well below 0.1% of triples (3794 of 50M in
  // Barton).
  EXPECT_LT(max_count, barton.dataset.size() / 500);
}

TEST(GeneratorTest, DateIsTopObjectViaTypeOnly) {
  const auto barton = GenerateBarton(MediumConfig());
  const auto date_id = barton.dataset.dict().Find("<Date>");
  ASSERT_TRUE(date_id.has_value());
  const auto type_id = barton.dataset.dict().Find("<type>");
  uint64_t date_total = 0, date_under_type = 0;
  for (const auto& t : barton.dataset.triples()) {
    if (t.object == *date_id) {
      ++date_total;
      if (t.property == *type_id) ++date_under_type;
    }
  }
  const double share = static_cast<double>(date_total) /
                       static_cast<double>(barton.dataset.size());
  EXPECT_NEAR(share, 0.08, 0.015);  // ~8% of all triples
  EXPECT_EQ(date_total, date_under_type);  // all of them under <type>
}

TEST(GeneratorTest, SubjectObjectOverlapIsSubstantial) {
  const auto barton = GenerateBarton(MediumConfig());
  const auto stats = ComputeTable1Stats(barton.dataset);
  // Barton: 9.65M of 12.3M subjects also appear as objects (~20% of all
  // distinct subjects at least, generously bounded here).
  EXPECT_GT(stats.subjects_also_objects, stats.distinct_subjects / 5);
}

TEST(GeneratorTest, InterestingPropertiesAreTopRanked) {
  const auto barton = GenerateBarton(MediumConfig());
  EXPECT_EQ(barton.interesting_properties.size(), 28u);
  const auto& dict = barton.dataset.dict();
  for (const char* name :
       {"<type>", "<records>", "<language>", "<origin>", "<Encoding>",
        "<Point>"}) {
    const auto id = dict.Find(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_NE(std::find(barton.interesting_properties.begin(),
                        barton.interesting_properties.end(), *id),
              barton.interesting_properties.end())
        << name;
  }
}

TEST(GeneratorTest, Table1StatsAreConsistent) {
  const auto barton = GenerateBarton(MediumConfig());
  const auto stats = ComputeTable1Stats(barton.dataset);
  EXPECT_EQ(stats.total_triples, barton.dataset.size());
  EXPECT_LE(stats.subjects_also_objects, stats.distinct_subjects);
  EXPECT_LE(stats.distinct_properties, 222u);
  EXPECT_GE(stats.strings_in_dictionary,
            stats.distinct_subjects);  // dictionary holds them all
  EXPECT_GT(stats.dataset_bytes, stats.total_triples * 10);
}

TEST(GeneratorTest, Figure1CurvesAreWellFormed) {
  const auto barton = GenerateBarton(MediumConfig());
  const auto curves = ComputeFigure1Curves(barton.dataset, 50);
  ASSERT_FALSE(curves.properties.empty());
  // Properties are maximally skewed: at 20% of items they cover far more
  // mass than subjects do at 20% of items.
  auto at20 = [](const std::vector<CdfPoint>& curve) {
    for (const auto& p : curve) {
      if (p.pct_items >= 20.0) return p.pct_total;
    }
    return 100.0;
  };
  EXPECT_GT(at20(curves.properties), 90.0);
  EXPECT_LT(at20(curves.subjects), 60.0);
}

TEST(GeneratorTest, MakeBartonContextBuildsUsableContext) {
  BartonConfig config;
  config.target_triples = 20000;
  const auto barton = GenerateBarton(config);
  const auto ctx = MakeBartonContext(barton.dataset, 28);
  EXPECT_EQ(ctx.interesting_properties().size(), 28u);
  EXPECT_FALSE(ctx.FilterCoversAll());
  EXPECT_TRUE(ctx.IsInteresting(ctx.vocab().type));

  const auto all_ctx = MakeBartonContext(
      barton.dataset, barton.dataset.DistinctProperties().size());
  EXPECT_TRUE(all_ctx.FilterCoversAll());
}

}  // namespace
}  // namespace swan::bench_support
