#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "core/bgp.h"
#include "core/col_backends.h"
#include "core/profiling.h"
#include "core/row_backends.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swan {
namespace {

using bench_support::Measurement;

// ---------------------------------------------------------------------------
// Metrics primitives
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterAccumulates) {
  obs::Counter c;
  c.Add(3);
  c.Add(4);
  EXPECT_EQ(c.value(), 7u);
}

TEST(MetricsTest, HistogramBucketsInclusiveUpperBounds) {
  obs::Histogram h({1, 4, 16});
  h.Observe(1);   // <= 1
  h.Observe(4);   // <= 4 (inclusive)
  h.Observe(5);   // <= 16
  h.Observe(17);  // overflow
  const auto snap = h.Snap();
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.total_count, 4u);
  EXPECT_EQ(snap.sum, 1u + 4u + 5u + 17u);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.GetCounter("a");
  obs::Counter* again = registry.GetCounter("a");
  EXPECT_EQ(a, again);
  a->Add(2);
  obs::Histogram* h = registry.GetHistogram("h", {8});
  h->Observe(3);
  const auto snap = registry.Snap();
  EXPECT_EQ(snap.counters.at("a"), 2u);
  EXPECT_EQ(snap.histograms.at("h").total_count, 1u);
}

// Observation order must not matter: the snapshot is the same whichever
// lane got there first, which is what makes metrics width-invariant.
TEST(MetricsTest, ConcurrentObservationsAreOrderIndependent) {
  exec::SetThreads(4);
  obs::Histogram h({2, 8, 32});
  obs::Counter c;
  exec::ParallelFor(256, 1, [&](uint64_t b, uint64_t e, uint64_t) {
    for (uint64_t i = b; i < e; ++i) {
      h.Observe(i % 40);
      c.Add(1);
    }
  });
  exec::SetThreads(1);
  obs::Histogram serial({2, 8, 32});
  for (uint64_t i = 0; i < 256; ++i) serial.Observe(i % 40);
  const auto par = h.Snap();
  const auto ref = serial.Snap();
  EXPECT_EQ(par.counts, ref.counts);
  EXPECT_EQ(par.sum, ref.sum);
  EXPECT_EQ(c.value(), 256u);
}

// ---------------------------------------------------------------------------
// Span mechanics (no backend, explicit sources)
// ---------------------------------------------------------------------------

TEST(TraceTest, RecordsNestedSpansWithRows) {
  double now = 0.0;
  obs::TraceSources sources;
  sources.now = [&now] { return now; };
  sources.sample = [] { return obs::CounterSample{}; };
  obs::TraceSession session("root", sources, 1);
  {
    obs::Span outer(&session, "outer");
    outer.set_rows_in(10);
    now = 1.0;
    {
      obs::Span inner(&session, "inner");
      now = 3.0;
      inner.set_rows_out(5);
    }
    outer.set_rows_out(7);
  }
  session.Finish(0.25);
  const obs::SpanNode& root = session.root();
  ASSERT_EQ(root.children.size(), 1u);
  const obs::SpanNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.rows_in, 10u);
  EXPECT_EQ(outer.rows_out, 7u);
  EXPECT_DOUBLE_EQ(outer.vt_seconds(), 3.0);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0]->name, "inner");
  EXPECT_DOUBLE_EQ(outer.children[0]->vt_seconds(), 2.0);
  EXPECT_DOUBLE_EQ(outer.ExclusiveVtSeconds(), 1.0);
  EXPECT_DOUBLE_EQ(session.RootRealSeconds(), 0.25 + 3.0);
}

TEST(TraceTest, NullSessionSpanIsInert) {
  obs::Span span(nullptr, "nothing");
  EXPECT_FALSE(span.active());
  span.set_rows_in(1);
  span.set_rows_out(1);  // must not crash
}

TEST(TraceTest, SpansInsideParallelRegionsAreSuppressed) {
  obs::TraceSources sources;
  sources.now = [] { return 0.0; };
  sources.sample = [] { return obs::CounterSample{}; };
  obs::TraceSession session("root", sources, 4);
  exec::SetThreads(4);
  exec::ParallelFor(8, 1, [&](uint64_t, uint64_t, uint64_t) {
    obs::Span span(&session, "worker");
    EXPECT_FALSE(span.active());
  });
  exec::SetThreads(1);
  // The inline serial path of a region counts as "inside" too — the tree
  // shape is a function of call structure, not of the thread budget.
  exec::ParallelFor(8, 1, [&](uint64_t, uint64_t, uint64_t) {
    obs::Span span(&session, "inline");
    EXPECT_FALSE(span.active());
  });
  session.Finish(0.0);
  EXPECT_TRUE(session.root().children.empty());
}

// ---------------------------------------------------------------------------
// End-to-end profiles over the benchmark backends
// ---------------------------------------------------------------------------

class ObsProfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_support::BartonConfig config;
    config.target_triples = 30000;
    barton_ = bench_support::GenerateBarton(config);
    ctx_ = std::make_unique<core::QueryContext>(
        bench_support::MakeBartonContext(barton_.dataset, 28));
    exec::SetThreads(8);
  }
  void TearDown() override { exec::SetThreads(1); }

  // "name(child,child,...)" — the structural fingerprint of a span tree.
  static std::string Shape(const obs::SpanNode& node) {
    std::string out = node.name;
    out += '(';
    for (size_t i = 0; i < node.children.size(); ++i) {
      if (i) out += ',';
      out += Shape(*node.children[i]);
    }
    out += ')';
    return out;
  }

  bench_support::BartonDataset barton_;
  std::unique_ptr<core::QueryContext> ctx_;
};

// Acceptance: the profile's root-span modeled real time equals the
// harness's Measurement::real_seconds to within 1e-9, cold and hot, on a
// column-store and a row-store backend.
TEST_F(ObsProfileTest, RootRealSecondsMatchesMeasurement) {
  core::ColVerticalBackend col(barton_.dataset);
  core::RowTripleBackend row(barton_.dataset,
                             rowstore::TripleRelation::PsoConfig());
  const exec::ExecContext ectx(8);
  for (core::BackendBase* backend :
       {static_cast<core::BackendBase*>(&col),
        static_cast<core::BackendBase*>(&row)}) {
    const Measurement cold = bench_support::MeasureColdProfiled(
        backend, core::QueryId::kQ2, *ctx_, ectx, 1);
    ASSERT_NE(cold.profile, nullptr) << backend->name();
    EXPECT_LT(std::abs(cold.profile->RootRealSeconds() - cold.real_seconds),
              1e-9)
        << backend->name();
    EXPECT_GT(cold.profile->root().bytes(), 0u) << backend->name();

    const Measurement hot = bench_support::MeasureHotProfiled(
        backend, core::QueryId::kQ2, *ctx_, ectx, 1);
    ASSERT_NE(hot.profile, nullptr) << backend->name();
    EXPECT_LT(std::abs(hot.profile->RootRealSeconds() - hot.real_seconds),
              1e-9)
        << backend->name();
  }
}

// Acceptance: the span-tree shape is identical at 1, 2, and 8 threads —
// parallelism changes durations, never structure.
TEST_F(ObsProfileTest, SpanTreeShapeInvariantAcrossWidths) {
  core::ColVerticalBackend col(barton_.dataset);
  core::RowTripleBackend row(barton_.dataset,
                             rowstore::TripleRelation::PsoConfig());
  const std::vector<core::QueryId> queries = {
      core::QueryId::kQ1, core::QueryId::kQ2, core::QueryId::kQ5,
      core::QueryId::kQ2Star, core::QueryId::kQ6Star};
  for (core::BackendBase* backend :
       {static_cast<core::BackendBase*>(&col),
        static_cast<core::BackendBase*>(&row)}) {
    for (core::QueryId q : queries) {
      if (!backend->Supports(q)) continue;
      std::string reference;
      for (int width : {1, 2, 8}) {
        const exec::ExecContext ectx(width);
        const Measurement m = bench_support::MeasureColdProfiled(
            backend, q, *ctx_, ectx, 1);
        ASSERT_NE(m.profile, nullptr);
        const std::string shape = Shape(m.profile->root());
        if (width == 1) {
          reference = shape;
          EXPECT_NE(shape.find('('), std::string::npos);
        } else {
          EXPECT_EQ(shape, reference)
              << backend->name() << " " << core::ToString(q) << " width "
              << width;
        }
      }
    }
  }
}

// Acceptance: at a fixed width the deterministic exporters are
// byte-identical run-to-run — same spans, same virtual times, same
// metrics, same lane tracks.
TEST_F(ObsProfileTest, ProfileByteIdenticalAcrossRuns) {
  core::ColVerticalBackend col(barton_.dataset);
  core::RowTripleBackend row(barton_.dataset,
                             rowstore::TripleRelation::PsoConfig());
  const exec::ExecContext ectx(8);
  for (core::BackendBase* backend :
       {static_cast<core::BackendBase*>(&col),
        static_cast<core::BackendBase*>(&row)}) {
    const Measurement a = bench_support::MeasureColdProfiled(
        backend, core::QueryId::kQ2, *ctx_, ectx, 1);
    const Measurement b = bench_support::MeasureColdProfiled(
        backend, core::QueryId::kQ2, *ctx_, ectx, 1);
    ASSERT_NE(a.profile, nullptr);
    ASSERT_NE(b.profile, nullptr);
    EXPECT_EQ(obs::ProfileJson(*a.profile, /*include_host_time=*/false),
              obs::ProfileJson(*b.profile, /*include_host_time=*/false))
        << backend->name();
    EXPECT_EQ(obs::ChromeTraceJson(*a.profile),
              obs::ChromeTraceJson(*b.profile))
        << backend->name();
  }
}

// The Chrome export names one track per lane of the context's budget.
TEST_F(ObsProfileTest, ChromeTraceHasOneTrackPerLane) {
  core::ColVerticalBackend col(barton_.dataset);
  const exec::ExecContext ectx(4);
  const Measurement m = bench_support::MeasureColdProfiled(
      &col, core::QueryId::kQ2Star, *ctx_, ectx, 1);
  ASSERT_NE(m.profile, nullptr);
  EXPECT_EQ(m.profile->threads(), 4);
  const std::string json = obs::ChromeTraceJson(*m.profile);
  for (int lane = 0; lane < 4; ++lane) {
    const std::string track =
        "\"name\":\"lane " + std::to_string(lane) + " I/O\"";
    EXPECT_NE(json.find(track), std::string::npos) << track;
  }
  EXPECT_EQ(json.find("\"name\":\"lane 4 I/O\""), std::string::npos);
}

// Buffer-pool and disk totals land in the metrics registry, and the hit
// ratio behaves: a cold run misses, the hot rerun of the same query hits.
TEST_F(ObsProfileTest, BufferPoolMetricsReflectCacheState) {
  core::RowTripleBackend row(barton_.dataset,
                             rowstore::TripleRelation::PsoConfig());
  const exec::ExecContext ectx(1);
  const Measurement cold = bench_support::MeasureColdProfiled(
      &row, core::QueryId::kQ1, *ctx_, ectx, 1);
  ASSERT_NE(cold.profile, nullptr);
  const auto cold_snap = cold.profile->metrics().Snap();
  EXPECT_GT(cold_snap.counters.at("buffer_pool.misses"), 0u);
  EXPECT_GT(cold_snap.counters.at("disk.bytes_read"), 0u);

  const Measurement hot = bench_support::MeasureHotProfiled(
      &row, core::QueryId::kQ1, *ctx_, ectx, 1);
  ASSERT_NE(hot.profile, nullptr);
  const auto hot_snap = hot.profile->metrics().Snap();
  EXPECT_EQ(hot_snap.counters.at("disk.bytes_read"), 0u);
  EXPECT_GT(hot_snap.counters.at("buffer_pool.hits"), 0u);
}

// The BGP batch-size histogram observes the logical batch split, a pure
// function of the binding counts — so serial and 8-wide runs produce the
// same distribution, and the merge side of the metrics surface stays
// width-invariant.
TEST_F(ObsProfileTest, BgpBatchHistogramWidthInvariant) {
  core::ColVerticalBackend col(barton_.dataset);
  const auto& vocab = ctx_->vocab();
  const std::vector<core::BgpPattern> query = {
      {core::Term::Var("s"), core::Term::Const(vocab.origin),
       core::Term::Var("o")},
      {core::Term::Var("s"), core::Term::Const(vocab.type),
       core::Term::Var("t")}};

  auto run = [&](int width) {
    const exec::ExecContext ectx(width);
    core::ScopedProfile scoped("bgp", col, ectx);
    auto result = core::ExecuteBgp(col, query, ectx);
    EXPECT_TRUE(result.ok());
    return scoped.Finish();
  };
  const auto serial = run(1);
  const auto wide = run(8);
  const auto s = serial->metrics().Snap();
  const auto w = wide->metrics().Snap();
  ASSERT_TRUE(s.histograms.count("bgp.batch_rows"));
  ASSERT_TRUE(w.histograms.count("bgp.batch_rows"));
  EXPECT_EQ(s.histograms.at("bgp.batch_rows").counts,
            w.histograms.at("bgp.batch_rows").counts);
  EXPECT_EQ(s.histograms.at("bgp.batch_rows").sum,
            w.histograms.at("bgp.batch_rows").sum);
}

// TextProfile renders the tree and the metrics; the profiled shell path
// leans on this output, so pin the load-bearing pieces.
TEST_F(ObsProfileTest, TextProfileContainsTreeAndMetrics) {
  core::ColVerticalBackend col(barton_.dataset);
  const exec::ExecContext ectx(2);
  const Measurement m = bench_support::MeasureColdProfiled(
      &col, core::QueryId::kQ2, *ctx_, ectx, 1);
  ASSERT_NE(m.profile, nullptr);
  const std::string text = obs::TextProfile(*m.profile);
  EXPECT_NE(text.find("modeled real"), std::string::npos);
  EXPECT_NE(text.find("col_vert.q2_family"), std::string::npos);
  EXPECT_NE(text.find("metrics:"), std::string::npos);
  EXPECT_NE(text.find("disk.bytes_read"), std::string::npos);
}

}  // namespace
}  // namespace swan
