#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "colstore/column.h"
#include "colstore/ops.h"
#include "colstore/triple_table.h"
#include "colstore/vertical_table.h"
#include "common/random.h"

namespace swan::colstore {
namespace {

struct ColFixture {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool{&disk, 1 << 12};  // swan-lint: allow(node-disk)
};

TEST(ColumnTest, BuildAndGetRoundTrip) {
  ColFixture f;
  Column col(&f.pool, &f.disk);
  std::vector<uint64_t> values(5000);
  for (size_t i = 0; i < values.size(); ++i) values[i] = i * i;
  col.Build(values);
  EXPECT_EQ(col.Get(), values);
  EXPECT_EQ(col.size(), values.size());
}

TEST(ColumnTest, LazyLoadChargesOnceThenCaches) {
  ColFixture f;
  Column col(&f.pool, &f.disk);
  std::vector<uint64_t> values(10000, 42);
  col.Build(values);
  EXPECT_FALSE(col.loaded());
  f.disk.ResetStats();
  col.Get();
  const uint64_t after_first = f.disk.total_bytes_read();
  EXPECT_GT(after_first, 0u);
  col.Get();
  EXPECT_EQ(f.disk.total_bytes_read(), after_first);
}

TEST(ColumnTest, DropCacheForcesReload) {
  ColFixture f;
  Column col(&f.pool, &f.disk);
  col.Build(std::vector<uint64_t>(10000, 7));
  col.Get();
  col.DropCache();
  f.pool.Clear();
  f.disk.ResetStats();
  col.Get();
  EXPECT_GT(f.disk.total_bytes_read(), 0u);
}

TEST(ColumnTest, ColdLoadIsSequential) {
  ColFixture f;
  Column col(&f.pool, &f.disk);
  col.Build(std::vector<uint64_t>(100000, 1));
  col.DropCache();
  f.pool.Clear();
  f.disk.ResetStats();
  col.Get();
  EXPECT_LE(f.disk.total_seeks(), 2u);
}

TEST(OpsTest, SelectEqFindsAllPositions) {
  std::vector<uint64_t> col = {5, 3, 5, 1, 5};
  EXPECT_EQ(SelectEq(col, 5), (PositionVector{0, 2, 4}));
  EXPECT_TRUE(SelectEq(col, 9).empty());
}

TEST(OpsTest, SelectEqOverSelection) {
  std::vector<uint64_t> col = {5, 3, 5, 1, 5};
  const PositionVector sel = {1, 2, 3};
  EXPECT_EQ(SelectEq(col, sel, 5), (PositionVector{2}));
}

TEST(OpsTest, SelectNeOverSelection) {
  std::vector<uint64_t> col = {5, 3, 5, 1, 5};
  const PositionVector sel = {0, 1, 2};
  EXPECT_EQ(SelectNe(col, sel, 5), (PositionVector{1}));
}

TEST(OpsTest, EqRangeSortedBinarySearches) {
  std::vector<uint64_t> col = {1, 1, 2, 2, 2, 5};
  EXPECT_EQ(EqRangeSorted(col, 2), (std::pair<uint32_t, uint32_t>{2, 5}));
  EXPECT_EQ(EqRangeSorted(col, 3), (std::pair<uint32_t, uint32_t>{5, 5}));
  EXPECT_EQ(EqRangeSorted(col, 0), (std::pair<uint32_t, uint32_t>{0, 0}));
}

TEST(OpsTest, EqRangeSorted2UsesBothColumns) {
  //   primary:   1 1 1 2 2
  //   secondary: 3 4 4 1 2
  std::vector<uint64_t> primary = {1, 1, 1, 2, 2};
  std::vector<uint64_t> secondary = {3, 4, 4, 1, 2};
  EXPECT_EQ(EqRangeSorted2(primary, secondary, 1, 4),
            (std::pair<uint32_t, uint32_t>{1, 3}));
  EXPECT_EQ(EqRangeSorted2(primary, secondary, 2, 2),
            (std::pair<uint32_t, uint32_t>{4, 5}));
}

TEST(OpsTest, GatherMaterializes) {
  std::vector<uint64_t> col = {10, 20, 30};
  EXPECT_EQ(Gather(col, {2, 0}), (std::vector<uint64_t>{30, 10}));
}

TEST(OpsTest, MarkSetMembership) {
  MarkSet marks(10);
  marks.MarkAll(std::vector<uint64_t>{1, 3});
  marks.Mark(7);
  EXPECT_TRUE(marks.Test(1));
  EXPECT_TRUE(marks.Test(7));
  EXPECT_FALSE(marks.Test(0));
  EXPECT_FALSE(marks.Test(9));
}

TEST(OpsTest, SelectMarkedFilters) {
  MarkSet marks(10);
  marks.Mark(4);
  std::vector<uint64_t> col = {4, 5, 4, 6};
  EXPECT_EQ(SelectMarked(col, marks), (PositionVector{0, 2}));
  EXPECT_EQ(SelectMarked(col, {1, 2}, marks), (PositionVector{2}));
}

TEST(OpsTest, CountByKeyDenseCountsAndOrders) {
  std::vector<uint64_t> keys = {3, 1, 3, 3, 0};
  const auto counts = CountByKeyDense(keys, 5);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], (std::pair<uint64_t, uint64_t>{0, 1}));
  EXPECT_EQ(counts[1], (std::pair<uint64_t, uint64_t>{1, 1}));
  EXPECT_EQ(counts[2], (std::pair<uint64_t, uint64_t>{3, 3}));
}

TEST(OpsTest, CountByPairGroups) {
  std::vector<uint64_t> a = {1, 1, 2, 1};
  std::vector<uint64_t> b = {9, 9, 9, 8};
  const auto groups = CountByPair(a, b);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].a, 1u);
  EXPECT_EQ(groups[0].b, 8u);
  EXPECT_EQ(groups[0].count, 1u);
  EXPECT_EQ(groups[1].b, 9u);
  EXPECT_EQ(groups[1].count, 2u);
  EXPECT_EQ(groups[2].a, 2u);
}

TEST(OpsTest, MergeJoinHandlesDuplicatesOnBothSides) {
  std::vector<uint64_t> left = {1, 2, 2, 4};
  std::vector<uint64_t> right = {2, 2, 3, 4, 4};
  const auto pairs = MergeJoin(left, right);
  // 2x2 cross product for value 2, 1x2 for value 4.
  EXPECT_EQ(pairs.size(), 6u);
  int count2 = 0, count4 = 0;
  for (const auto& [l, r] : pairs) {
    EXPECT_EQ(left[l], right[r]);
    if (left[l] == 2) ++count2;
    if (left[l] == 4) ++count4;
  }
  EXPECT_EQ(count2, 4);
  EXPECT_EQ(count4, 2);
}

TEST(OpsTest, MergeJoinEmptyInputs) {
  std::vector<uint64_t> some = {1, 2};
  EXPECT_TRUE(MergeJoin({}, some).empty());
  EXPECT_TRUE(MergeJoin(some, {}).empty());
}

TEST(OpsTest, MergeCountMatchesCountsDuplicates) {
  std::vector<uint64_t> values = {1, 2, 2, 2, 5, 7};
  std::vector<uint64_t> keys = {2, 5, 6};
  EXPECT_EQ(MergeCountMatches(values, keys), 4u);
}

TEST(OpsTest, MergeSelectPositionsFindsAll) {
  std::vector<uint64_t> values = {1, 2, 2, 5};
  std::vector<uint64_t> keys = {2, 5};
  EXPECT_EQ(MergeSelectPositions(values, keys), (PositionVector{1, 2, 3}));
}

TEST(OpsTest, SortedIntersectBasic) {
  std::vector<uint64_t> a = {1, 3, 5, 7};
  std::vector<uint64_t> b = {3, 4, 7, 9};
  EXPECT_EQ(SortedIntersect(a, b), (std::vector<uint64_t>{3, 7}));
}

TEST(OpsTest, UnionDistinctMergesAndDedups) {
  EXPECT_EQ(UnionDistinct({{3, 1}, {2, 3}, {}}),
            (std::vector<uint64_t>{1, 2, 3}));
}

TEST(OpsTest, SortDistinct) {
  EXPECT_EQ(SortDistinct({5, 1, 5, 2, 1}), (std::vector<uint64_t>{1, 2, 5}));
}

// Randomized cross-check of MergeJoin against a nested-loop oracle.
TEST(OpsTest, MergeJoinMatchesNestedLoopOracle) {
  Rng rng(21);
  for (int round = 0; round < 20; ++round) {
    std::vector<uint64_t> left(rng.Uniform(50)), right(rng.Uniform(50));
    for (auto& v : left) v = rng.Uniform(10);
    for (auto& v : right) v = rng.Uniform(10);
    std::sort(left.begin(), left.end());
    std::sort(right.begin(), right.end());
    size_t expected = 0;
    for (uint64_t l : left) {
      for (uint64_t r : right) {
        if (l == r) ++expected;
      }
    }
    EXPECT_EQ(MergeJoin(left, right).size(), expected);
  }
}

TEST(TripleTableTest, SortsByOrderAndAnswersRanges) {
  ColFixture f;
  TripleTable table(&f.pool, &f.disk, rdf::TripleOrder::kPSO);
  table.Load({{3, 10, 7}, {1, 11, 8}, {2, 10, 9}, {1, 10, 6}});
  // PSO order: (10,1,6), (10,2,9), (10,3,7), (11,1,8)
  EXPECT_EQ(table.properties(),
            (std::vector<uint64_t>{10, 10, 10, 11}));
  EXPECT_EQ(table.subjects(), (std::vector<uint64_t>{1, 2, 3, 1}));
  EXPECT_EQ(table.PrimaryRange(10), (std::pair<uint32_t, uint32_t>{0, 3}));
  EXPECT_EQ(table.PrimarySecondaryRange(10, 2),
            (std::pair<uint32_t, uint32_t>{1, 2}));
}

TEST(TripleTableTest, ColumnsLoadIndependently) {
  ColFixture f;
  TripleTable table(&f.pool, &f.disk, rdf::TripleOrder::kPSO);
  std::vector<rdf::Triple> triples;
  for (uint64_t i = 0; i < 30000; ++i) triples.push_back({i, i % 5, i % 7});
  table.Load(std::move(triples));
  table.DropCaches();
  f.pool.Clear();
  f.disk.ResetStats();
  table.properties();  // touch only the property column
  const uint64_t one_column = f.disk.total_bytes_read();
  EXPECT_GT(one_column, 0u);
  EXPECT_LT(one_column, table.disk_bytes() / 2);
}

TEST(VerticalTableTest, PartitionsByProperty) {
  ColFixture f;
  VerticalTable table(&f.pool, &f.disk);
  std::vector<rdf::Triple> triples = {
      {1, 10, 5}, {2, 10, 6}, {1, 11, 7}, {3, 10, 5}};
  table.Load(triples);
  EXPECT_EQ(table.properties(), (std::vector<uint64_t>{10, 11}));
  EXPECT_EQ(table.PartitionSize(10), 3u);
  EXPECT_EQ(table.PartitionSize(11), 1u);
  EXPECT_EQ(table.PartitionSize(99), 0u);
  EXPECT_TRUE(table.HasPartition(10));
  EXPECT_FALSE(table.HasPartition(99));
  EXPECT_EQ(table.Subjects(10), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(table.Objects(10), (std::vector<uint64_t>{5, 6, 5}));
  EXPECT_EQ(table.SubjectRange(10, 2), (std::pair<uint32_t, uint32_t>{1, 2}));
}

TEST(VerticalTableTest, TouchingOnePartitionLeavesOthersCold) {
  ColFixture f;
  VerticalTable table(&f.pool, &f.disk);
  std::vector<rdf::Triple> triples;
  for (uint64_t i = 0; i < 20000; ++i) triples.push_back({i, i % 4, i + 1});
  table.Load(triples);
  table.DropCaches();
  f.pool.Clear();
  f.disk.ResetStats();
  table.Subjects(0);
  table.Objects(0);
  // Roughly a quarter of the data (one of four equally-sized partitions).
  EXPECT_LT(f.disk.total_bytes_read(), table.disk_bytes() / 3);
}

}  // namespace
}  // namespace swan::colstore
