// Fleet telemetry: the structured query log's byte-reproducibility
// across serve worker counts (the determinism acceptance gate), the
// fixed-boundary windowed metrics (half-open windows, exact nearest-rank
// percentiles vs a brute-force sort, merge correctness), and the
// cross-query profile aggregator (est-suffix folding, exact merge
// associativity in integer nanoseconds).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench_support/barton_generator.h"
#include "common/macros.h"
#include "core/store.h"
#include "obs/querylog.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "serve/script.h"
#include "serve/service.h"

namespace swan::obs {
namespace {

// ---------------------------------------------------------------------------
// Query-log byte-identity across serve worker counts.
//
// The determinism contract of the whole PR: the serve tier's query-log
// JSONL, window snapshots, top-operators table, and collapsed flamegraph
// stacks are byte-identical at any worker count, because every recorded
// quantity is a pure function of the dispatch order (which the turnstile
// fixes) and the virtual clock.

class TelemetryServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_support::BartonConfig config;
    config.target_triples = 4000;
    barton_ = bench_support::GenerateBarton(config);
    ctx_ = bench_support::MakeBartonContext(barton_.dataset, 28);
  }

  std::unique_ptr<core::RdfStore> OpenStore() {
    return core::RdfStore::Open(barton_.dataset, core::StoreOptions{});
  }

  static std::vector<serve::ScriptCommand> Mix() {
    const auto result = serve::ParseScript(
        "session alice priority=1\n"
        "session bob\n"
        "bench alice q1\n"
        "bench alice repeat=2 q5\n"
        "query bob SELECT ?s WHERE { ?s <type> <Text> } LIMIT 10\n"
        "query bob repeat=2 SELECT ?s ?o WHERE { ?s <origin> ?o } LIMIT 5\n"
        "bench bob q2\n");
    SWAN_CHECK(result.ok());
    return result.value();
  }

  bench_support::BartonDataset barton_;
  std::optional<core::QueryContext> ctx_;
};

TEST_F(TelemetryServeTest, QueryLogIsByteIdenticalAtAnyWorkerCount) {
  std::vector<std::string> logs, windows, topops, stacks;
  for (const int workers : {1, 2, 8}) {
    auto store = OpenStore();
    serve::ServiceOptions options;
    options.workers = workers;
    serve::QueryService service(store.get(), ctx_, options);
    auto run = serve::RunScript(&service, Mix());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    // The deterministic surface excludes host time.
    logs.push_back(service.telemetry().QueryLogJsonl(false));
    windows.push_back(service.telemetry().WindowsJson());
    topops.push_back(service.telemetry().TopOpsTable(0));
    stacks.push_back(service.telemetry().CollapsedStacks());
    EXPECT_EQ(service.telemetry().records(),
              run.value().completions.size());
    service.Stop();
  }
  ASSERT_FALSE(logs[0].empty());
  for (size_t w = 1; w < logs.size(); ++w) {
    EXPECT_EQ(logs[w], logs[0]) << "query log diverged at width " << w;
    EXPECT_EQ(windows[w], windows[0]) << "windows diverged at width " << w;
    EXPECT_EQ(topops[w], topops[0]) << "top-ops diverged at width " << w;
    EXPECT_EQ(stacks[w], stacks[0]) << "stacks diverged at width " << w;
  }
}

TEST_F(TelemetryServeTest, RecordsCarryPlanAndCacheState) {
  auto store = OpenStore();
  serve::QueryService service(store.get(), ctx_, {});
  auto run = serve::RunScript(&service, Mix());
  ASSERT_TRUE(run.ok());
  const auto log = service.telemetry().LogSnapshot();
  ASSERT_EQ(log.size(), 7u);
  uint64_t hits = 0;
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].seq, i) << "records must be in dispatch order";
    EXPECT_TRUE(log[i].ok);
    EXPECT_NE(log[i].text_hash, 0u);
    EXPECT_FALSE(log[i].backend.empty());
    if (log[i].cache_hit) {
      ++hits;
      EXPECT_EQ(log[i].bytes_read, 0u);
      EXPECT_TRUE(log[i].ops.empty());  // no execution, no span tree
    } else if (log[i].kind == "sparql") {
      EXPECT_FALSE(log[i].plan_mode.empty());
    }
    EXPECT_GE(log[i].vt_finish, log[i].vt_start);
  }
  EXPECT_EQ(hits, 2u);  // q5 and the <origin> query each repeat once
  // The executed queries were profiled (always-on), so the aggregator has
  // operator totals and the flamegraph export is non-empty.
  EXPECT_FALSE(service.telemetry().TopOps().empty());
  EXPECT_NE(service.telemetry().CollapsedStacks().find(";"),
            std::string::npos);
  service.Stop();
}

TEST_F(TelemetryServeTest, PerSessionCountersDivergeFromGlobal) {
  // Two sessions issue the same query: the second session's execution
  // misses (per-session result visibility goes through the shared cache,
  // so it actually hits) — what must differ is the *per-session*
  // attribution in the log: bob's hit is not charged to alice.
  const auto script = serve::ParseScript(
      "session alice\n"
      "session bob\n"
      "query alice SELECT ?s WHERE { ?s <type> <Text> } LIMIT 10\n"
      "query bob SELECT ?s WHERE { ?s <type> <Text> } LIMIT 10\n"
      "query alice SELECT ?s WHERE { ?s <type> <Text> } LIMIT 10\n");
  ASSERT_TRUE(script.ok());
  auto store = OpenStore();
  serve::QueryService service(store.get(), ctx_, {});
  auto run = serve::RunScript(&service, script.value());
  ASSERT_TRUE(run.ok());
  const auto log = service.telemetry().LogSnapshot();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_FALSE(log[0].cache_hit);
  EXPECT_TRUE(log[1].cache_hit);
  EXPECT_TRUE(log[2].cache_hit);
  // Session-scoped counters: alice saw 1 miss + 1 hit, bob 1 hit + 0
  // misses — distinguishable even though the registry-global counters
  // only show totals.
  EXPECT_EQ(log[0].session_cache_misses, 1u);
  EXPECT_EQ(log[0].session_cache_hits, 0u);
  EXPECT_EQ(log[1].session_cache_hits, 1u);
  EXPECT_EQ(log[1].session_cache_misses, 0u);
  EXPECT_EQ(log[2].session_cache_hits, 1u);
  EXPECT_EQ(log[2].session_cache_misses, 1u);
  service.Stop();
}

// ---------------------------------------------------------------------------
// Query-log JSON emission.

TEST(QueryLogTest, HostTimeFieldsAreExcludedFromDeterministicSurface) {
  QueryLogRecord record;
  record.kind = "sparql";
  record.text = "SELECT ?s WHERE { ?s <p> ?o }";
  record.text_hash = Fnv1a64(record.text);
  record.cpu_seconds = 0.123;
  record.service_seconds = 0.456;
  const std::string deterministic = QueryLogRecordJson(record, false);
  const std::string full = QueryLogRecordJson(record, true);
  EXPECT_EQ(deterministic.find("cpu_seconds"), std::string::npos);
  EXPECT_EQ(deterministic.find("service_seconds"), std::string::npos);
  EXPECT_NE(full.find("cpu_seconds"), std::string::npos);
  EXPECT_NE(full.find("service_seconds"), std::string::npos);
  // 16-hex-digit stable hash of the canonical text.
  EXPECT_NE(deterministic.find("\"text_hash\":\""), std::string::npos);
}

TEST(QueryLogTest, JsonEscapesAndErrorField) {
  QueryLogRecord record;
  record.text = "say \"hi\"\n";
  record.ok = false;
  record.error = "bad \\ thing";
  const std::string json = QueryLogRecordJson(record, false);
  EXPECT_NE(json.find("say \\\"hi\\\"\\n"), std::string::npos) << json;
  EXPECT_NE(json.find("\"error\":\"bad \\\\ thing\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
}

TEST(QueryLogTest, EstimatedNameSuffixSplits) {
  std::string op;
  uint64_t est = 0;
  EXPECT_TRUE(SplitEstimatedName("scan <p> est=120", &op, &est));
  EXPECT_EQ(op, "scan <p>");
  EXPECT_EQ(est, 120u);
  EXPECT_FALSE(SplitEstimatedName("scan <p>", &op, &est));
  EXPECT_FALSE(SplitEstimatedName("scan est=notanumber", &op, &est));
}

// ---------------------------------------------------------------------------
// Windowed metrics: fixed boundaries and merge.

TEST(WindowedMetricsTest, HalfOpenWindowBoundaries) {
  WindowedMetrics wm(0.1, 0.05);
  wm.Observe(0.0, 0.01, false, 0);        // window 0: [0, 0.1)
  wm.Observe(0.0999999, 0.06, true, 3);   // window 0, SLO breach, hit
  wm.Observe(0.1, 0.02, false, 1);        // window 1: boundary is exclusive
  wm.Observe(0.25, 0.03, false, 0);       // window 2
  const auto windows = wm.Windows();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].index, 0);
  EXPECT_EQ(windows[0].count, 2u);
  EXPECT_EQ(windows[0].cache_hits, 1u);
  EXPECT_EQ(windows[0].slo_breaches, 1u);
  EXPECT_EQ(windows[0].max_queue_depth, 3u);
  EXPECT_DOUBLE_EQ(windows[0].throughput_per_second, 20.0);
  EXPECT_EQ(windows[1].index, 1);
  EXPECT_EQ(windows[1].count, 1u);
  EXPECT_EQ(windows[2].index, 2);
  EXPECT_EQ(wm.samples(), 4u);
  // Pooled throughput spans whole windows 0..2 inclusive.
  EXPECT_NEAR(wm.Pooled().throughput_per_second, 4.0 / 0.3, 1e-9);
}

TEST(WindowedMetricsTest, MergeEqualsInterleavedObservation) {
  WindowedMetrics a(0.1, 0.05), b(0.1, 0.05), both(0.1, 0.05);
  const double finishes[] = {0.01, 0.11, 0.02, 0.35, 0.12, 0.09};
  const double latencies[] = {0.01, 0.06, 0.02, 0.01, 0.07, 0.005};
  for (int i = 0; i < 6; ++i) {
    (i % 2 == 0 ? a : b)
        .Observe(finishes[i], latencies[i], i % 3 == 0,
                 static_cast<uint64_t>(i));
    both.Observe(finishes[i], latencies[i], i % 3 == 0,
                 static_cast<uint64_t>(i));
  }
  a.MergeFrom(b);
  EXPECT_EQ(a.ToJson(), both.ToJson());
}

// ---------------------------------------------------------------------------
// Percentiles: exact nearest-rank vs brute force.

double BruteForcePercentile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  rank = std::max<size_t>(1, std::min(rank, samples.size()));
  return samples[rank - 1];
}

TEST(WindowedMetricsTest, PercentilesMatchBruteForceSort) {
  WindowedMetrics wm(0.1, 1e9);
  std::vector<double> samples;
  uint64_t lcg = 12345;
  for (int i = 0; i < 997; ++i) {  // odd count exercises rank rounding
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    const double latency = static_cast<double>(lcg >> 40) / 1e6;
    const double finish = static_cast<double>(i) * 0.013;
    samples.push_back(latency);
    wm.Observe(finish, latency, false, 0);
  }
  const auto pooled = wm.Pooled();
  EXPECT_EQ(pooled.count, samples.size());
  EXPECT_DOUBLE_EQ(pooled.p50_seconds, BruteForcePercentile(samples, 50.0));
  EXPECT_DOUBLE_EQ(pooled.p95_seconds, BruteForcePercentile(samples, 95.0));
  EXPECT_DOUBLE_EQ(pooled.p99_seconds, BruteForcePercentile(samples, 99.0));

  // Per-window percentiles are exact over each window's own samples too.
  const auto windows = wm.Windows();
  std::map<int64_t, std::vector<double>> expect;
  for (int i = 0; i < 997; ++i) {
    expect[static_cast<int64_t>(std::floor(i * 0.013 / 0.1))].push_back(
        samples[static_cast<size_t>(i)]);
  }
  ASSERT_EQ(windows.size(), expect.size());
  for (const auto& w : windows) {
    const auto& s = expect.at(w.index);
    EXPECT_EQ(w.count, s.size());
    EXPECT_DOUBLE_EQ(w.p99_seconds, BruteForcePercentile(s, 99.0));
  }
}

TEST(WindowedMetricsTest, SingleSampleIsEveryPercentile) {
  WindowedMetrics wm(0.1, 0.05);
  wm.Observe(0.01, 0.042, false, 0);
  const auto pooled = wm.Pooled();
  EXPECT_DOUBLE_EQ(pooled.p50_seconds, 0.042);
  EXPECT_DOUBLE_EQ(pooled.p95_seconds, 0.042);
  EXPECT_DOUBLE_EQ(pooled.p99_seconds, 0.042);
}

// ---------------------------------------------------------------------------
// Profile aggregator: synthetic span trees on a fake virtual clock.

struct FakeClock {
  double now = 0.0;
  CounterSample counters;
  TraceSources Sources() {
    TraceSources sources;
    sources.now = [this] { return now; };
    sources.sample = [this] { return counters; };
    return sources;
  }
};

// Builds root(child_a(leaf), child_b) with fixed virtual durations; the
// child names carry est= suffixes that the aggregator must strip.
std::unique_ptr<TraceSession> MakeSession(FakeClock* clock,
                                          const std::string& leaf) {
  auto session =
      std::make_unique<TraceSession>("query", clock->Sources(), 1);
  {
    Span a(session.get(), "bgp.extend est=42");
    {
      Span inner(session.get(), leaf);
      clock->now += 0.001;
      clock->counters.bytes_read += 4096;
      inner.set_rows_out(10);
    }
    clock->now += 0.002;
    a.set_rows_out(5);
  }
  {
    Span b(session.get(), "sparql.project");
    clock->now += 0.0005;
  }
  session->Finish(0.0);
  return session;
}

TEST(ProfileAggregatorTest, EstSuffixFoldsIntoOneOperator) {
  FakeClock clock;
  const auto s1 = MakeSession(&clock, "scan <p> est=7");
  const auto s2 = MakeSession(&clock, "scan <p> est=1200");
  ProfileAggregator agg;
  agg.AddSession(*s1);
  agg.AddSession(*s2);
  EXPECT_EQ(agg.sessions(), 2u);
  const auto ops = agg.TopOps();
  // query, bgp.extend, scan <p>, sparql.project — est= variants merged.
  ASSERT_EQ(ops.size(), 4u);
  for (const auto& op : ops) {
    EXPECT_EQ(op.name.find(" est="), std::string::npos) << op.name;
  }
  const auto scan = std::find_if(ops.begin(), ops.end(), [](const auto& op) {
    return op.name == "scan <p>";
  });
  ASSERT_NE(scan, ops.end());
  EXPECT_EQ(scan->calls, 2u);
  EXPECT_EQ(scan->rows_out, 20u);
  EXPECT_EQ(scan->bytes, 8192u);
  EXPECT_EQ(scan->excl_ns, 2000000u);  // 2 x 0.001s exact in integer ns
  // Collapsed stacks keep the trie paths, also suffix-free.
  const std::string stacks = agg.CollapsedStacks();
  EXPECT_NE(stacks.find("query;bgp.extend;scan <p> 2000000\n"),
            std::string::npos)
      << stacks;
  EXPECT_EQ(stacks.find("est="), std::string::npos);
}

TEST(ProfileAggregatorTest, MergeIsExactlyAssociative) {
  FakeClock clock;
  std::vector<std::unique_ptr<TraceSession>> sessions;
  const char* leaves[] = {"scan <a> est=3", "scan <b>", "scan <a> est=90",
                          "scan <c> est=11"};
  for (const char* leaf : leaves) {
    sessions.push_back(MakeSession(&clock, leaf));
  }
  ProfileAggregator a, b, c;
  a.AddSession(*sessions[0]);
  a.AddSession(*sessions[1]);
  b.AddSession(*sessions[2]);
  c.AddSession(*sessions[3]);

  // (a + b) + c
  ProfileAggregator left;
  left.MergeFrom(a);
  left.MergeFrom(b);
  left.MergeFrom(c);
  // a + (b + c)
  ProfileAggregator bc;
  bc.MergeFrom(b);
  bc.MergeFrom(c);
  ProfileAggregator right;
  right.MergeFrom(a);
  right.MergeFrom(bc);
  // everything folded directly, no intermediate merge
  ProfileAggregator flat;
  for (const auto& session : sessions) flat.AddSession(*session);

  EXPECT_EQ(left.sessions(), 4u);
  EXPECT_EQ(left.TopOpsTable(0), right.TopOpsTable(0));
  EXPECT_EQ(left.TopOpsTable(0), flat.TopOpsTable(0));
  EXPECT_EQ(left.CollapsedStacks(), right.CollapsedStacks());
  EXPECT_EQ(left.CollapsedStacks(), flat.CollapsedStacks());
}

// ---------------------------------------------------------------------------
// Telemetry bundle: record + merge.

TEST(TelemetryTest, MergePreservesRecordsWindowsAndProfiles) {
  FakeClock clock;
  TelemetryOptions options;
  options.max_text_bytes = 16;
  Telemetry a(options), b(options);
  for (int i = 0; i < 4; ++i) {
    QueryLogRecord record;
    record.seq = static_cast<uint64_t>(i);
    record.text = "SELECT ?s WHERE { ?s <a-very-long-pattern> ?o }";
    record.text_hash = Fnv1a64(record.text);
    record.vt_finish = 0.03 * i;
    record.latency_seconds = 0.01;
    const auto session = MakeSession(&clock, "scan <p>");
    (i % 2 == 0 ? a : b).Record(record, session.get());
  }
  EXPECT_EQ(a.records(), 2u);
  // Truncation bounds the stored text; the hash still covers all of it.
  EXPECT_EQ(a.LogSnapshot()[0].text, "SELECT ?s WHERE ");
  EXPECT_EQ(a.LogSnapshot()[0].text_hash,
            Fnv1a64("SELECT ?s WHERE { ?s <a-very-long-pattern> ?o }"));
  a.MergeFrom(b);
  EXPECT_EQ(a.records(), 4u);
  EXPECT_EQ(a.PooledWindow().count, 4u);
  EXPECT_EQ(a.TopOps().front().calls, 4u);
  // Merging an empty bundle is a no-op on every export.
  const std::string before = a.QueryLogJsonl(false) + a.WindowsJson() +
                             a.CollapsedStacks();
  Telemetry empty(options);
  a.MergeFrom(empty);
  EXPECT_EQ(before, a.QueryLogJsonl(false) + a.WindowsJson() +
                        a.CollapsedStacks());
}

}  // namespace
}  // namespace swan::obs
