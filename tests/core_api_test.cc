// Coverage for the core API surface: query metadata, vocabulary
// resolution, context semantics, and the RdfStore facade across all
// scheme x engine combinations.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "bench_support/barton_generator.h"
#include "core/query.h"
#include "core/store.h"

namespace swan::core {
namespace {

TEST(QueryMetadataTest, AllQueriesInTableOrder) {
  const auto& all = AllQueries();
  ASSERT_EQ(all.size(), 12u);
  EXPECT_EQ(ToString(all.front()), "q1");
  EXPECT_EQ(ToString(all[2]), "q2*");
  EXPECT_EQ(ToString(all.back()), "q8");
}

TEST(QueryMetadataTest, InitialQueriesAreTheSeven) {
  const auto& initial = InitialQueries();
  ASSERT_EQ(initial.size(), 7u);
  for (QueryId id : initial) {
    EXPECT_FALSE(IsStar(id));
    EXPECT_NE(id, QueryId::kQ8);
  }
}

TEST(QueryMetadataTest, StarMapping) {
  EXPECT_TRUE(IsStar(QueryId::kQ2Star));
  EXPECT_FALSE(IsStar(QueryId::kQ2));
  EXPECT_EQ(BaseOf(QueryId::kQ6Star), QueryId::kQ6);
  EXPECT_EQ(BaseOf(QueryId::kQ5), QueryId::kQ5);
}

TEST(QueryMetadataTest, PropertyFilterApplicability) {
  // Per the appendix SQL: only q2/q3/q4/q6 join the "properties" table.
  EXPECT_TRUE(UsesPropertyFilter(QueryId::kQ2));
  EXPECT_TRUE(UsesPropertyFilter(QueryId::kQ4Star));
  EXPECT_FALSE(UsesPropertyFilter(QueryId::kQ1));
  EXPECT_FALSE(UsesPropertyFilter(QueryId::kQ5));
  EXPECT_FALSE(UsesPropertyFilter(QueryId::kQ7));
  EXPECT_FALSE(UsesPropertyFilter(QueryId::kQ8));
}

TEST(QueryMetadataTest, CoverageMatchesTable2) {
  // Spot checks against Table 2 of the paper.
  EXPECT_EQ(CoverageOf(QueryId::kQ1).triple_patterns, (std::vector<int>{7}));
  EXPECT_EQ(CoverageOf(QueryId::kQ1).join_patterns, "-");
  EXPECT_EQ(CoverageOf(QueryId::kQ5).join_patterns, "A, C");
  EXPECT_EQ(CoverageOf(QueryId::kQ8).join_patterns, "B");
  EXPECT_EQ(CoverageOf(QueryId::kQ8).triple_patterns,
            (std::vector<int>{6, 8}));
}

TEST(VocabularyTest, ResolveFailsWithoutTerms) {
  rdf::Dataset empty;
  auto result = Vocabulary::Resolve(empty);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(VocabularyTest, CustomNamesResolve) {
  rdf::Dataset data;
  data.Add("<s>", "<rdf:type>", "<my-text>");
  // Other terms still default; only override what differs.
  VocabularyNames names;
  names.type = "<rdf:type>";
  names.text = "<my-text>";
  auto result = Vocabulary::Resolve(data, names);
  EXPECT_FALSE(result.ok());  // the other defaults are absent
  for (const char* term :
       {"<language>", "<language/iso639-2b/fre>", "<origin>",
        "<info:marcorg/DLC>", "<records>", "<Point>", "\"end\"",
        "<Encoding>", "<conferences>"}) {
    data.Add("<dummy>", "<p>", term);
  }
  // Property terms appear as objects here, but resolution only needs the
  // dictionary entry.
  auto result2 = Vocabulary::Resolve(data, names);
  ASSERT_TRUE(result2.ok()) << result2.status().ToString();
  EXPECT_EQ(result2.value().type, data.dict().Find("<rdf:type>"));
}

TEST(QueryContextTest, DeduplicatesAndSortsInterestingList) {
  Vocabulary vocab;
  QueryContext ctx(vocab, {5, 3, 5, 9, 3}, 100, 10);
  EXPECT_EQ(ctx.interesting_properties(), (std::vector<uint64_t>{3, 5, 9}));
  EXPECT_TRUE(ctx.IsInteresting(5));
  EXPECT_FALSE(ctx.IsInteresting(4));
  EXPECT_FALSE(ctx.FilterCoversAll());
}

TEST(QueryContextTest, FilterCoversAllWhenListCoversEveryProperty) {
  Vocabulary vocab;
  QueryContext ctx(vocab, {1, 2, 3}, 100, 3);
  EXPECT_TRUE(ctx.FilterCoversAll());
}

TEST(QueryResultTest, SameRowsIsBagEquality) {
  QueryResult a, b;
  a.rows = {{1, 2}, {3, 4}, {1, 2}};
  b.rows = {{3, 4}, {1, 2}, {1, 2}};
  EXPECT_TRUE(a.SameRows(b));
  b.rows.pop_back();
  EXPECT_FALSE(a.SameRows(b));
  b.rows.push_back({1, 3});
  EXPECT_FALSE(a.SameRows(b));
}

TEST(QueryResultTest, NormalizeSortsRows) {
  QueryResult r;
  r.rows = {{9}, {1}, {5}};
  r.Normalize();
  EXPECT_EQ(r.rows, (std::vector<std::vector<uint64_t>>{{1}, {5}, {9}}));
}

class StoreComboTest
    : public ::testing::TestWithParam<std::pair<StorageScheme, EngineKind>> {};

TEST_P(StoreComboTest, OpensAndAnswersMatch) {
  bench_support::BartonConfig config;
  config.target_triples = 3000;
  const auto barton = bench_support::GenerateBarton(config);

  StoreOptions options;
  options.scheme = GetParam().first;
  options.engine = GetParam().second;
  auto store = RdfStore::Open(barton.dataset, options);
  EXPECT_FALSE(store->name().empty());
  EXPECT_GT(store->disk_bytes(), 0u);

  rdf::TriplePattern pattern;
  pattern.property = *barton.dataset.dict().Find("<type>");
  EXPECT_FALSE(store->Match(pattern).empty());
  store->DropCaches();
  EXPECT_FALSE(store->Match(pattern).empty());
}

INSTANTIATE_TEST_SUITE_P(
    Combos, StoreComboTest,
    ::testing::Values(
        std::pair{StorageScheme::kTripleStore, EngineKind::kRowStore},
        std::pair{StorageScheme::kTripleStore, EngineKind::kColumnStore},
        std::pair{StorageScheme::kVerticalPartitioned, EngineKind::kRowStore},
        std::pair{StorageScheme::kVerticalPartitioned,
                  EngineKind::kColumnStore},
        std::pair{StorageScheme::kVerticalPartitioned, EngineKind::kCStore},
        std::pair{StorageScheme::kPropertyTable, EngineKind::kRowStore}),
    [](const auto& info) {
      std::string name = ToString(info.param.first) + "_" +
                         ToString(info.param.second);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(StoreOptionsTest, SchemeAndEngineNames) {
  EXPECT_EQ(ToString(StorageScheme::kTripleStore), "triple-store");
  EXPECT_EQ(ToString(StorageScheme::kVerticalPartitioned),
            "vertically-partitioned");
  EXPECT_EQ(ToString(StorageScheme::kPropertyTable), "property-table");
  EXPECT_EQ(ToString(EngineKind::kRowStore), "row-store");
  EXPECT_EQ(ToString(EngineKind::kColumnStore), "column-store");
  EXPECT_EQ(ToString(EngineKind::kCStore), "c-store");
}

TEST(StoreOptionsTest, CompressedColumnStoreIsSmallerOnDisk) {
  bench_support::BartonConfig config;
  config.target_triples = 20000;
  const auto barton = bench_support::GenerateBarton(config);

  StoreOptions raw;
  raw.scheme = StorageScheme::kTripleStore;
  raw.engine = EngineKind::kColumnStore;
  StoreOptions packed = raw;
  packed.codec = colstore::ColumnCodec::kAuto;

  auto raw_store = RdfStore::Open(barton.dataset, raw);
  auto packed_store = RdfStore::Open(barton.dataset, packed);
  EXPECT_LT(packed_store->disk_bytes(), raw_store->disk_bytes());
}

}  // namespace
}  // namespace swan::core
