// Property test at the system level: all scheme × engine combinations must
// return identical rows for every benchmark query, on generated Barton-like
// datasets of several scales and seeds, both with restricted and full
// property lists, and cold as well as hot.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "core/col_backends.h"
#include "core/cstore_backend.h"
#include "core/property_table_backend.h"
#include "core/reference_backend.h"
#include "core/row_backends.h"

namespace swan {
namespace {

using bench_support::BartonConfig;
using bench_support::GenerateBarton;
using bench_support::MakeBartonContext;
using core::QueryId;

struct Combo {
  uint64_t triples;
  uint64_t seed;
};

class EquivalenceTest : public ::testing::TestWithParam<Combo> {};

TEST_P(EquivalenceTest, AllBackendsAgreeOnAllQueries) {
  BartonConfig config;
  config.target_triples = GetParam().triples;
  config.seed = GetParam().seed;
  const auto barton = GenerateBarton(config);
  const rdf::Dataset& data = barton.dataset;
  const core::QueryContext ctx = MakeBartonContext(data, 28);

  core::ColTripleBackend col_spo(data, rdf::TripleOrder::kSPO);
  core::ColTripleBackend col_pso(data, rdf::TripleOrder::kPSO);
  core::ColVerticalBackend col_vert(data);
  core::RowTripleBackend row_spo(data, rowstore::TripleRelation::SpoConfig());
  core::RowTripleBackend row_pso(data, rowstore::TripleRelation::PsoConfig());
  core::RowVerticalBackend row_vert(data);
  core::CStoreBackend cstore(data, ctx.interesting_properties());
  core::PropertyTableBackend property_table(data, 20);
  core::ReferenceBackend reference(data);

  // The naive reference oracle goes first so every optimized backend is
  // compared against it, not just against each other.
  std::vector<core::Backend*> backends = {&reference, &col_spo, &col_pso,
                                          &col_vert, &row_spo, &row_pso,
                                          &row_vert, &property_table, &cstore};
  const std::vector<uint64_t> rows = bench_support::VerifyBackendsAgree(
      backends, core::AllQueries(), ctx);

  // Every benchmark query must be non-trivial on generated data.
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_GT(rows[i], 0u) << "query " << ToString(core::AllQueries()[i])
                           << " returned no rows";
  }
}

TEST_P(EquivalenceTest, ColdRunsReturnSameRowsAsHot) {
  BartonConfig config;
  config.target_triples = GetParam().triples;
  config.seed = GetParam().seed;
  const auto barton = GenerateBarton(config);
  const core::QueryContext ctx = MakeBartonContext(barton.dataset, 28);

  core::ColVerticalBackend col_vert(barton.dataset);
  core::RowTripleBackend row_pso(barton.dataset,
                                 rowstore::TripleRelation::PsoConfig());
  for (QueryId id : core::AllQueries()) {
    core::QueryResult hot_col = col_vert.Run(id, ctx);
    col_vert.DropCaches();
    core::QueryResult cold_col = col_vert.Run(id, ctx);
    EXPECT_TRUE(hot_col.SameRows(cold_col)) << ToString(id);

    core::QueryResult hot_row = row_pso.Run(id, ctx);
    row_pso.DropCaches();
    core::QueryResult cold_row = row_pso.Run(id, ctx);
    EXPECT_TRUE(hot_row.SameRows(cold_row)) << ToString(id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndSeeds, EquivalenceTest,
    ::testing::Values(Combo{3000, 1}, Combo{3000, 7}, Combo{12000, 42},
                      Combo{12000, 99}, Combo{40000, 2026}),
    [](const ::testing::TestParamInfo<Combo>& info) {
      return "t" + std::to_string(info.param.triples) + "_s" +
             std::to_string(info.param.seed);
    });

// The restriction list is part of query semantics: growing it must only
// grow q2's result set (monotonicity property used by Figure 6).
TEST(PropertySweepTest, Q2ResultGrowsWithPropertyCount) {
  BartonConfig config;
  config.target_triples = 20000;
  const auto barton = GenerateBarton(config);
  core::ColVerticalBackend vert(barton.dataset);
  core::ColTripleBackend triple(barton.dataset, rdf::TripleOrder::kPSO);

  uint64_t previous = 0;
  for (size_t k : {28, 56, 112, 222}) {
    const core::QueryContext ctx = MakeBartonContext(barton.dataset, k);
    core::QueryResult from_vert = vert.Run(QueryId::kQ2, ctx);
    core::QueryResult from_triple = triple.Run(QueryId::kQ2, ctx);
    EXPECT_TRUE(from_vert.SameRows(from_triple)) << "k=" << k;
    EXPECT_GE(from_vert.row_count(), previous);
    previous = from_vert.row_count();
  }
}

}  // namespace
}  // namespace swan
