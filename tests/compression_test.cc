#include <gtest/gtest.h>

#include <vector>

#include "colstore/column.h"
#include "colstore/compression.h"
#include "common/random.h"

namespace swan::colstore {
namespace {

std::vector<uint64_t> RandomValues(size_t n, uint64_t universe,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(n);
  for (auto& v : out) v = rng.Uniform(universe);
  return out;
}

class CodecTest : public ::testing::TestWithParam<ColumnCodec> {};

TEST_P(CodecTest, RoundTripsRandomData) {
  const auto values = RandomValues(10000, 1 << 20, 1);
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, values.size()), values);
}

TEST_P(CodecTest, RoundTripsSortedData) {
  auto values = RandomValues(10000, 1 << 20, 2);
  std::sort(values.begin(), values.end());
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, values.size()), values);
}

TEST_P(CodecTest, RoundTripsConstantRuns) {
  std::vector<uint64_t> values(5000, 42);
  values.resize(8000, 7);
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, values.size()), values);
}

TEST_P(CodecTest, RoundTripsEmpty) {
  const auto encoded = CompressU64({}, GetParam());
  EXPECT_TRUE(DecompressU64(encoded, 0).empty());
}

TEST_P(CodecTest, RoundTripsExtremeValues) {
  const std::vector<uint64_t> values = {0, UINT64_MAX, 1, UINT64_MAX - 1, 0,
                                        0, 1ull << 63, 3};
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, values.size()), values);
}

TEST_P(CodecTest, RoundTripsSingleValue) {
  const std::vector<uint64_t> values = {0xDEADBEEFull};
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, 1), values);
}

TEST_P(CodecTest, RoundTripsAllEqual) {
  const std::vector<uint64_t> values(12345, 99);
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, values.size()), values);
}

TEST_P(CodecTest, RoundTripsAdversarialRunLengths) {
  // Run lengths that straddle the decode-batch boundary (4095/4096/4097),
  // lone singletons between long runs, and a sawtooth of 1-runs.
  std::vector<uint64_t> values;
  values.insert(values.end(), 4095, 1);
  values.push_back(2);
  values.insert(values.end(), 4096, 3);
  values.push_back(4);
  values.insert(values.end(), 4097, 5);
  for (uint64_t i = 0; i < 1000; ++i) values.push_back(i % 2);
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, values.size()), values);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecTest,
                         ::testing::Values(ColumnCodec::kRaw, ColumnCodec::kRle,
                                           ColumnCodec::kDelta,
                                           ColumnCodec::kBitPack,
                                           ColumnCodec::kDictBitPack,
                                           ColumnCodec::kAuto),
                         [](const ::testing::TestParamInfo<ColumnCodec>& info) {
                           return ToString(info.param);
                         });

TEST(CompressionTest, BitPackRoundTripsEveryWidth) {
  // Widths 1..64 bits: the max value of each width must survive packing,
  // including the straddling two-word reads at unaligned widths.
  Rng rng(11);
  for (int width = 1; width <= 64; ++width) {
    const uint64_t max =
        width >= 64 ? UINT64_MAX : (1ull << width) - 1;
    std::vector<uint64_t> values(257);
    for (auto& v : values) v = rng.Next() & max;
    values[0] = max;          // force the width
    values[256] = max;        // last element exercises the pad word
    const auto encoded = CompressU64(values, ColumnCodec::kBitPack);
    EXPECT_EQ(DecompressU64(encoded, values.size()), values)
        << "width " << width;
  }
}

TEST(CompressionTest, BitPackShrinksNarrowColumns) {
  const auto values = RandomValues(10000, 1 << 10, 12);  // 10-bit ids
  const auto packed = CompressU64(values, ColumnCodec::kBitPack);
  EXPECT_LT(packed.size(), values.size() * 2);  // ~1.25 bytes per value
}

TEST(CompressionTest, DictBitPackShrinksLowCardinalityWideIds) {
  // 64 distinct values drawn from a 2^40 space: plain bit-packing needs
  // 40 bits per value, the palette form 6 bits plus a small dictionary.
  Rng rng(13);
  std::vector<uint64_t> palette(64);
  for (auto& v : palette) v = rng.Next() >> 24;
  std::vector<uint64_t> values(20000);
  for (auto& v : values) v = palette[rng.Uniform(64)];
  const auto dict = CompressU64(values, ColumnCodec::kDictBitPack);
  const auto plain = CompressU64(values, ColumnCodec::kBitPack);
  EXPECT_LT(dict.size(), plain.size() / 4);
  EXPECT_EQ(DecompressU64(dict, values.size()), values);
}

TEST(CompressionTest, AutoPicksSmallestOfAllFive) {
  for (uint64_t seed = 20; seed < 26; ++seed) {
    auto values = RandomValues(5000, 1000, seed);
    if (seed % 2 == 0) std::sort(values.begin(), values.end());
    const size_t auto_size = CompressU64(values, ColumnCodec::kAuto).size();
    for (auto codec : {ColumnCodec::kRaw, ColumnCodec::kRle,
                       ColumnCodec::kDelta, ColumnCodec::kBitPack,
                       ColumnCodec::kDictBitPack}) {
      EXPECT_LE(auto_size, CompressU64(values, codec).size());
    }
  }
}

TEST(CompressionTest, TryDecompressRejectsCorruptInputWithoutAborting) {
  const auto values = RandomValues(1000, 1 << 10, 14);
  std::vector<uint64_t> out;

  // Unknown codec tag.
  std::vector<uint8_t> bad_tag = CompressU64(values, ColumnCodec::kBitPack);
  bad_tag[0] = 0xEE;
  EXPECT_TRUE(TryDecompressU64(bad_tag, values.size(), &out).code() == StatusCode::kCorruption);

  // Truncated payload.
  std::vector<uint8_t> truncated = CompressU64(values, ColumnCodec::kRle);
  truncated.resize(truncated.size() / 2);
  EXPECT_TRUE(
      TryDecompressU64(truncated, values.size(), &out).code() == StatusCode::kCorruption);

  // Count mismatch: buffer decodes fewer values than promised.
  const std::vector<uint8_t> short_buf =
      CompressU64(values, ColumnCodec::kDelta);
  EXPECT_TRUE(
      TryDecompressU64(short_buf, values.size() + 5, &out).code() == StatusCode::kCorruption);

  // Zero / oversized bit width.
  std::vector<uint8_t> bad_width = CompressU64(values, ColumnCodec::kBitPack);
  bad_width[1] = 0;
  EXPECT_TRUE(
      TryDecompressU64(bad_width, values.size(), &out).code() == StatusCode::kCorruption);
  bad_width[1] = 65;
  EXPECT_TRUE(
      TryDecompressU64(bad_width, values.size(), &out).code() == StatusCode::kCorruption);

  // The intact buffer still decodes.
  const std::vector<uint8_t> good = CompressU64(values, ColumnCodec::kBitPack);
  ASSERT_TRUE(TryDecompressU64(good, values.size(), &out).ok());
  EXPECT_EQ(out, values);
}

TEST(EncodedColumnTest, ValueAtAgreesWithMaterializeAcrossReps) {
  Rng rng(15);
  for (auto codec : {ColumnCodec::kRaw, ColumnCodec::kRle,
                     ColumnCodec::kDelta, ColumnCodec::kBitPack,
                     ColumnCodec::kDictBitPack}) {
    auto values = RandomValues(3000, 64, 16);
    if (codec == ColumnCodec::kRle || codec == ColumnCodec::kDelta) {
      std::sort(values.begin(), values.end());
    }
    const EncodedColumn enc = EncodedColumn::FromValues(values, codec);
    ASSERT_EQ(enc.size(), values.size());
    EXPECT_EQ(enc.Materialize(), values);
    for (int probe = 0; probe < 100; ++probe) {
      const uint64_t i = rng.Uniform(values.size());
      EXPECT_EQ(enc.ValueAt(i), values[i]);
    }
    // Ranged materialization, including awkward unaligned windows.
    std::vector<uint64_t> window(700);
    enc.MaterializeInto(1234, 1934, window.data());
    EXPECT_TRUE(std::equal(window.begin(), window.end(),
                           values.begin() + 1234));
  }
}

TEST(EncodedColumnTest, CodeForDistinguishesPresentAndImpossibleValues) {
  std::vector<uint64_t> values = {10, 10, 500, 500, 500, 9000};
  const EncodedColumn dict =
      EncodedColumn::FromValues(values, ColumnCodec::kDictBitPack);
  uint64_t code = 0;
  ASSERT_TRUE(dict.CodeFor(500, &code));
  EXPECT_EQ(dict.DecodeCode(code), 500u);
  EXPECT_FALSE(dict.CodeFor(777, &code));  // not in the palette

  const EncodedColumn plain =
      EncodedColumn::FromValues(values, ColumnCodec::kBitPack);
  ASSERT_TRUE(plain.CodeFor(9000, &code));
  EXPECT_EQ(code, 9000u);  // identity codes for plain packing
  // Wider than the pack width -> cannot appear.
  EXPECT_FALSE(plain.CodeFor(1ull << 40, &code));
}

TEST(EncodedColumnTest, RunIndexOfFindsContainingRun) {
  std::vector<uint64_t> values;
  values.insert(values.end(), 100, 7);
  values.insert(values.end(), 50, 8);
  values.insert(values.end(), 200, 9);
  const EncodedColumn enc =
      EncodedColumn::FromValues(values, ColumnCodec::kRle);
  ASSERT_EQ(enc.rep(), EncodedColumn::Rep::kRle);
  EXPECT_EQ(enc.runs()[enc.RunIndexOf(0)].value, 7u);
  EXPECT_EQ(enc.runs()[enc.RunIndexOf(99)].value, 7u);
  EXPECT_EQ(enc.runs()[enc.RunIndexOf(100)].value, 8u);
  EXPECT_EQ(enc.runs()[enc.RunIndexOf(149)].value, 8u);
  EXPECT_EQ(enc.runs()[enc.RunIndexOf(349)].value, 9u);
}

TEST(CompressionTest, RleShrinksLowCardinalitySortedColumn) {
  // A PSO-sorted property column: 222 runs over 100k rows.
  std::vector<uint64_t> column;
  for (uint64_t p = 0; p < 222; ++p) {
    column.insert(column.end(), 450, p);
  }
  const auto rle = CompressU64(column, ColumnCodec::kRle);
  EXPECT_LT(rle.size(), column.size());  // > 8x smaller than raw by far
  EXPECT_LT(rle.size(), 222 * 12 + 16);
}

TEST(CompressionTest, DeltaShrinksSortedIdColumn) {
  auto values = RandomValues(50000, 1 << 22, 3);
  std::sort(values.begin(), values.end());
  const auto delta = CompressU64(values, ColumnCodec::kDelta);
  EXPECT_LT(delta.size(), values.size() * 3);  // < 3 bytes per value
}

TEST(CompressionTest, AutoNeverBeatenByFixedChoice) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto values = RandomValues(5000, 1000, seed);
    if (seed % 2 == 0) std::sort(values.begin(), values.end());
    const size_t auto_size = CompressU64(values, ColumnCodec::kAuto).size();
    for (auto codec :
         {ColumnCodec::kRaw, ColumnCodec::kRle, ColumnCodec::kDelta}) {
      EXPECT_LE(auto_size, CompressU64(values, codec).size());
    }
  }
}

TEST(CompressionTest, RawCostsEightBytesPerValue) {
  const auto values = RandomValues(1000, UINT64_MAX, 4);
  EXPECT_EQ(CompressU64(values, ColumnCodec::kRaw).size(), 1 + 8 * 1000u);
}

TEST(CompressedColumnTest, CompressedColumnReadsSameValues) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 1 << 12);  // swan-lint: allow(node-disk)
  auto values = RandomValues(30000, 1 << 18, 5);
  std::sort(values.begin(), values.end());

  Column raw(&pool, &disk, ColumnCodec::kRaw);
  raw.Build(values);
  Column packed(&pool, &disk, ColumnCodec::kAuto);
  packed.Build(values);

  EXPECT_EQ(raw.Get(), packed.Get());
  EXPECT_LT(packed.disk_bytes(), raw.disk_bytes());
}

TEST(CompressedColumnTest, ColdLoadReadsFewerBytes) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 1 << 12);  // swan-lint: allow(node-disk)
  auto values = RandomValues(100000, 1 << 18, 6);
  std::sort(values.begin(), values.end());

  Column raw(&pool, &disk, ColumnCodec::kRaw);
  raw.Build(values);
  Column packed(&pool, &disk, ColumnCodec::kDelta);
  packed.Build(values);

  pool.Clear();
  disk.ResetStats();
  raw.Get();
  const uint64_t raw_bytes = disk.total_bytes_read();
  pool.Clear();
  disk.ResetStats();
  packed.Get();
  const uint64_t packed_bytes = disk.total_bytes_read();
  EXPECT_LT(packed_bytes, raw_bytes / 2);
}

TEST(CompressedColumnTest, StoredBytesTracksEncodedAndLogicalImages) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 1 << 12);  // swan-lint: allow(node-disk)
  std::vector<uint64_t> values;
  for (uint64_t p = 0; p < 10; ++p) values.insert(values.end(), 1000, p);

  Column col(&pool, &disk, ColumnCodec::kAuto);
  col.Build(values);
  EXPECT_EQ(col.logical_bytes(), values.size() * 8);
  EXPECT_LT(col.stored_bytes(), col.logical_bytes() / 2);
  EXPECT_NE(col.resolved_codec(), ColumnCodec::kAuto);  // resolved concrete

  Column raw(&pool, &disk, ColumnCodec::kRaw);
  raw.Build(values);
  EXPECT_EQ(raw.stored_bytes(), raw.logical_bytes());
}

TEST(CompressedColumnTest, AuditFlagsStoredBytesDesync) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 1 << 12);  // swan-lint: allow(node-disk)
  const auto values = RandomValues(20000, 1 << 12, 8);
  Column col(&pool, &disk, ColumnCodec::kAuto);
  col.Build(values);

  audit::AuditReport clean;
  col.AuditInto(audit::AuditLevel::kQuick, &clean);
  EXPECT_TRUE(clean.ok());

  // Desync the recorded encoded size from the on-disk image: the audit
  // must notice even at kQuick (no disk sweep needed).
  col.CorruptStoredBytesForTesting(col.stored_bytes() + storage::kPageSize);
  audit::AuditReport dirty;
  col.AuditInto(audit::AuditLevel::kQuick, &dirty);
  EXPECT_FALSE(dirty.ok());
}

TEST(CompressedColumnTest, DropCacheAndReloadStillCorrect) {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool(&disk, 1 << 12);  // swan-lint: allow(node-disk)
  const auto values = RandomValues(5000, 100, 7);
  Column col(&pool, &disk, ColumnCodec::kAuto);
  col.Build(values);
  const auto first = col.Get();
  col.DropCache();
  pool.Clear();
  EXPECT_EQ(col.Get(), first);
}

}  // namespace
}  // namespace swan::colstore
