#include <gtest/gtest.h>

#include <vector>

#include "colstore/column.h"
#include "colstore/compression.h"
#include "common/random.h"

namespace swan::colstore {
namespace {

std::vector<uint64_t> RandomValues(size_t n, uint64_t universe,
                                   uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(n);
  for (auto& v : out) v = rng.Uniform(universe);
  return out;
}

class CodecTest : public ::testing::TestWithParam<ColumnCodec> {};

TEST_P(CodecTest, RoundTripsRandomData) {
  const auto values = RandomValues(10000, 1 << 20, 1);
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, values.size()), values);
}

TEST_P(CodecTest, RoundTripsSortedData) {
  auto values = RandomValues(10000, 1 << 20, 2);
  std::sort(values.begin(), values.end());
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, values.size()), values);
}

TEST_P(CodecTest, RoundTripsConstantRuns) {
  std::vector<uint64_t> values(5000, 42);
  values.resize(8000, 7);
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, values.size()), values);
}

TEST_P(CodecTest, RoundTripsEmpty) {
  const auto encoded = CompressU64({}, GetParam());
  EXPECT_TRUE(DecompressU64(encoded, 0).empty());
}

TEST_P(CodecTest, RoundTripsExtremeValues) {
  const std::vector<uint64_t> values = {0, UINT64_MAX, 1, UINT64_MAX - 1, 0,
                                        0, 1ull << 63, 3};
  const auto encoded = CompressU64(values, GetParam());
  EXPECT_EQ(DecompressU64(encoded, values.size()), values);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecTest,
                         ::testing::Values(ColumnCodec::kRaw, ColumnCodec::kRle,
                                           ColumnCodec::kDelta,
                                           ColumnCodec::kAuto),
                         [](const ::testing::TestParamInfo<ColumnCodec>& info) {
                           return ToString(info.param);
                         });

TEST(CompressionTest, RleShrinksLowCardinalitySortedColumn) {
  // A PSO-sorted property column: 222 runs over 100k rows.
  std::vector<uint64_t> column;
  for (uint64_t p = 0; p < 222; ++p) {
    column.insert(column.end(), 450, p);
  }
  const auto rle = CompressU64(column, ColumnCodec::kRle);
  EXPECT_LT(rle.size(), column.size());  // > 8x smaller than raw by far
  EXPECT_LT(rle.size(), 222 * 12 + 16);
}

TEST(CompressionTest, DeltaShrinksSortedIdColumn) {
  auto values = RandomValues(50000, 1 << 22, 3);
  std::sort(values.begin(), values.end());
  const auto delta = CompressU64(values, ColumnCodec::kDelta);
  EXPECT_LT(delta.size(), values.size() * 3);  // < 3 bytes per value
}

TEST(CompressionTest, AutoNeverBeatenByFixedChoice) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto values = RandomValues(5000, 1000, seed);
    if (seed % 2 == 0) std::sort(values.begin(), values.end());
    const size_t auto_size = CompressU64(values, ColumnCodec::kAuto).size();
    for (auto codec :
         {ColumnCodec::kRaw, ColumnCodec::kRle, ColumnCodec::kDelta}) {
      EXPECT_LE(auto_size, CompressU64(values, codec).size());
    }
  }
}

TEST(CompressionTest, RawCostsEightBytesPerValue) {
  const auto values = RandomValues(1000, UINT64_MAX, 4);
  EXPECT_EQ(CompressU64(values, ColumnCodec::kRaw).size(), 1 + 8 * 1000u);
}

TEST(CompressedColumnTest, CompressedColumnReadsSameValues) {
  storage::SimulatedDisk disk;
  storage::BufferPool pool(&disk, 1 << 12);
  auto values = RandomValues(30000, 1 << 18, 5);
  std::sort(values.begin(), values.end());

  Column raw(&pool, &disk, ColumnCodec::kRaw);
  raw.Build(values);
  Column packed(&pool, &disk, ColumnCodec::kAuto);
  packed.Build(values);

  EXPECT_EQ(raw.Get(), packed.Get());
  EXPECT_LT(packed.disk_bytes(), raw.disk_bytes());
}

TEST(CompressedColumnTest, ColdLoadReadsFewerBytes) {
  storage::SimulatedDisk disk;
  storage::BufferPool pool(&disk, 1 << 12);
  auto values = RandomValues(100000, 1 << 18, 6);
  std::sort(values.begin(), values.end());

  Column raw(&pool, &disk, ColumnCodec::kRaw);
  raw.Build(values);
  Column packed(&pool, &disk, ColumnCodec::kDelta);
  packed.Build(values);

  pool.Clear();
  disk.ResetStats();
  raw.Get();
  const uint64_t raw_bytes = disk.total_bytes_read();
  pool.Clear();
  disk.ResetStats();
  packed.Get();
  const uint64_t packed_bytes = disk.total_bytes_read();
  EXPECT_LT(packed_bytes, raw_bytes / 2);
}

TEST(CompressedColumnTest, DropCacheAndReloadStillCorrect) {
  storage::SimulatedDisk disk;
  storage::BufferPool pool(&disk, 1 << 12);
  const auto values = RandomValues(5000, 100, 7);
  Column col(&pool, &disk, ColumnCodec::kAuto);
  col.Build(values);
  const auto first = col.Get();
  col.DropCache();
  pool.Clear();
  EXPECT_EQ(col.Get(), first);
}

}  // namespace
}  // namespace swan::colstore
