// The property-table extension: SortedTable storage, the design-wizard
// split into wide table + overflow, and full query equivalence against the
// reference oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "core/property_table_backend.h"
#include "core/reference_backend.h"
#include "core/store.h"
#include "rowstore/sorted_table.h"

namespace swan {
namespace {

// --- SortedTable -----------------------------------------------------------

struct TableFixture {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool{&disk, 1 << 12};  // swan-lint: allow(node-disk)
};

TEST(SortedTableTest, RoundTripsRows) {
  TableFixture f;
  rowstore::SortedTable table(&f.pool, &f.disk, 3);
  std::vector<uint64_t> flat;
  for (uint64_t i = 0; i < 5000; ++i) {
    flat.insert(flat.end(), {i * 2, i + 100, i + 200});
  }
  table.BulkLoad(flat, 5000);
  EXPECT_EQ(table.row_count(), 5000u);

  uint64_t count = 0;
  for (auto cursor = table.Begin(); cursor.Valid(); cursor.Next()) {
    const auto row = cursor.row();
    ASSERT_EQ(row[0], count * 2);
    ASSERT_EQ(row[1], count + 100);
    ++count;
  }
  EXPECT_EQ(count, 5000u);
}

TEST(SortedTableTest, FindRowBinarySearches) {
  TableFixture f;
  rowstore::SortedTable table(&f.pool, &f.disk, 2);
  std::vector<uint64_t> flat;
  for (uint64_t i = 0; i < 1000; ++i) flat.insert(flat.end(), {i * 3, i});
  table.BulkLoad(flat, 1000);

  EXPECT_EQ(table.FindRow(0), 0u);
  EXPECT_EQ(table.FindRow(999 * 3), 999u);
  EXPECT_EQ(table.FindRow(300), 100u);
  EXPECT_FALSE(table.FindRow(301).has_value());
  EXPECT_FALSE(table.FindRow(1000 * 3).has_value());
}

TEST(SortedTableTest, EmptyTable) {
  TableFixture f;
  rowstore::SortedTable table(&f.pool, &f.disk, 4);
  table.BulkLoad({}, 0);
  EXPECT_FALSE(table.Begin().Valid());
  EXPECT_FALSE(table.FindRow(7).has_value());
}

TEST(SortedTableTest, WideRowsSpanPagesCorrectly) {
  TableFixture f;
  // 100-column rows: 10 rows per page.
  rowstore::SortedTable table(&f.pool, &f.disk, 100);
  std::vector<uint64_t> flat;
  for (uint64_t i = 0; i < 95; ++i) {
    for (uint64_t c = 0; c < 100; ++c) flat.push_back(i * 1000 + c);
  }
  table.BulkLoad(flat, 95);
  auto cursor = table.SeekRow(94);
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.row()[99], 94 * 1000 + 99u);
  cursor.Next();
  EXPECT_FALSE(cursor.Valid());
}

// --- PropertyTableBackend --------------------------------------------------

class PropertyTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_support::BartonConfig config;
    config.target_triples = 20000;
    barton_ = bench_support::GenerateBarton(config);
  }

  bench_support::BartonDataset barton_;
};

TEST_F(PropertyTableTest, WizardPicksMostFrequentProperties) {
  core::PropertyTableBackend backend(barton_.dataset, /*width=*/10);
  EXPECT_EQ(backend.wide_properties().size(), 10u);
  const auto type_id = barton_.dataset.dict().Find("<type>");
  EXPECT_EQ(backend.wide_properties()[0], *type_id);
  // The long tail must have gone to the overflow table.
  EXPECT_GT(backend.overflow_triples(), 0u);
}

TEST_F(PropertyTableTest, MatchAgreesWithReferenceOnAllPatternShapes) {
  core::PropertyTableBackend backend(barton_.dataset, 10);
  core::ReferenceBackend reference(barton_.dataset);
  const auto& dict = barton_.dataset.dict();
  const rdf::Triple probe = barton_.dataset.triples()[17];

  for (int mask = 0; mask < 8; ++mask) {
    rdf::TriplePattern pattern;
    if (mask & 1) pattern.subject = probe.subject;
    if (mask & 2) pattern.property = probe.property;
    if (mask & 4) pattern.object = probe.object;
    auto a = backend.Match(pattern);
    auto b = reference.Match(pattern);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << pattern.ToString();
  }
  // Also with a rare (overflow-only) property bound.
  const auto freqs = barton_.dataset.PropertyFrequencies();
  rdf::TriplePattern rare;
  rare.property = freqs.back().first;
  auto a = backend.Match(rare);
  auto b = reference.Match(rare);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  (void)dict;
}

class PropertyTableWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PropertyTableWidthTest, AllQueriesMatchReferenceAtEveryWidth) {
  bench_support::BartonConfig config;
  config.target_triples = 15000;
  auto barton = bench_support::GenerateBarton(config);
  const auto ctx = bench_support::MakeBartonContext(barton.dataset, 28);

  core::PropertyTableBackend backend(barton.dataset, GetParam());
  core::ReferenceBackend reference(barton.dataset);
  bench_support::VerifyBackendsAgree({&reference, &backend},
                                     core::AllQueries(), ctx);
}

INSTANTIATE_TEST_SUITE_P(Widths, PropertyTableWidthTest,
                         ::testing::Values(1, 5, 20, 50),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST_F(PropertyTableTest, FacadeOpensPropertyTableScheme) {
  core::StoreOptions options;
  options.scheme = core::StorageScheme::kPropertyTable;
  options.engine = core::EngineKind::kRowStore;
  options.property_table_width = 12;
  auto store = core::RdfStore::Open(barton_.dataset, options);
  EXPECT_EQ(store->name(), "DBX prop. table");
  EXPECT_GT(store->disk_bytes(), 0u);

  rdf::TriplePattern pattern;
  pattern.property = *barton_.dataset.dict().Find("<type>");
  EXPECT_FALSE(store->Match(pattern).empty());
}

TEST_F(PropertyTableTest, InsertsGoToOverflow) {
  core::PropertyTableBackend backend(barton_.dataset, 10);
  const uint64_t before = backend.overflow_triples();
  const uint64_t s = barton_.dataset.dict().Intern("<pt-subject>");
  const uint64_t type = *barton_.dataset.dict().Find("<type>");
  const uint64_t text = *barton_.dataset.dict().Find("<Text>");
  // Even a wide-table property lands in the overflow: the flattened rows
  // are immutable without re-running the wizard.
  ASSERT_TRUE(backend.Insert({s, type, text}).ok());
  EXPECT_EQ(backend.overflow_triples(), before + 1);
  rdf::TriplePattern pattern;
  pattern.subject = s;
  ASSERT_EQ(backend.Match(pattern).size(), 1u);
  // Duplicates are rejected against both wide table and overflow.
  EXPECT_EQ(backend.Insert({s, type, text}).code(),
            StatusCode::kAlreadyExists);
  const rdf::Triple existing = barton_.dataset.triples().front();
  EXPECT_EQ(backend.Insert(existing).code(), StatusCode::kAlreadyExists);
}

TEST_F(PropertyTableTest, MultiValuedPropertiesSpillToOverflow) {
  rdf::Dataset data;
  data.Add("<s>", "<p>", "<o1>");
  data.Add("<s>", "<p>", "<o2>");
  data.Add("<s>", "<p>", "<o3>");
  data.Add("<s2>", "<p>", "<o1>");
  core::PropertyTableBackend backend(data, 5);
  // One value per subject fits the wide table; two spill.
  EXPECT_EQ(backend.overflow_triples(), 2u);
  rdf::TriplePattern pattern;
  pattern.subject = *data.dict().Find("<s>");
  EXPECT_EQ(backend.Match(pattern).size(), 3u);
}

}  // namespace
}  // namespace swan
