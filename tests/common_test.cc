#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace swan {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) ++seen[rng.Uniform(10)];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

class ZipfAlphaTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfAlphaTest, RankZeroIsMostFrequent) {
  const double alpha = GetParam();
  ZipfSampler zipf(100, alpha);
  Rng rng(42);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  // Frequency must decrease (statistically) with rank.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // Exact head probability: p(rank 0) = 1 / sum_k (k+1)^-alpha.
  double norm = 0.0;
  for (int k = 1; k <= 100; ++k) norm += std::pow(k, -alpha);
  EXPECT_NEAR(counts[0] / 50000.0, 1.0 / norm, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.3, 0.8, 1.0, 1.5, 2.2));

TEST(ZipfTest, AllSamplesInRange) {
  ZipfSampler zipf(7, 1.1);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  DiscreteSampler sampler({0.5, 0.25, 0.125, 0.125});
  Rng rng(13);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 100000; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_NEAR(counts[0] / 100000.0, 0.5, 0.01);
  EXPECT_NEAR(counts[1] / 100000.0, 0.25, 0.01);
  EXPECT_NEAR(counts[2] / 100000.0, 0.125, 0.01);
}

TEST(DiscreteSamplerTest, ZeroWeightNeverSampled) {
  DiscreteSampler sampler({1.0, 0.0, 1.0});
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(sampler.Sample(&rng), 1u);
}

TEST(StatsTest, GeometricMeanOfEqualValues) {
  EXPECT_DOUBLE_EQ(GeometricMean({4.0, 4.0, 4.0}), 4.0);
}

TEST(StatsTest, GeometricMeanKnownValue) {
  EXPECT_NEAR(GeometricMean({1.0, 8.0}), std::sqrt(8.0), 1e-12);
}

TEST(StatsTest, GeometricMeanEmptyIsZero) {
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
}

TEST(StatsTest, MeanBasic) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, CumulativeFrequencyEndsAtHundred) {
  const auto cdf = CumulativeFrequency({10, 5, 1, 1, 1}, 10);
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.front().pct_items, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().pct_items, 100.0);
  EXPECT_DOUBLE_EQ(cdf.back().pct_total, 100.0);
}

TEST(StatsTest, CumulativeFrequencyIsMonotonic) {
  const auto cdf = CumulativeFrequency({100, 50, 20, 5, 2, 1, 1, 1}, 20);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].pct_total, cdf[i - 1].pct_total);
  }
}

TEST(StatsTest, SkewedCountsFrontLoadTheCdf) {
  // One item holding 90 of 100 occurrences: the first 25% of items must
  // already account for >= 90% of the mass.
  const auto cdf = CumulativeFrequency({90, 4, 3, 3}, 4);
  EXPECT_GE(cdf[1].pct_total, 90.0);
}

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1.50"});
  table.AddSeparator();
  table.AddRow({"beta", "22.00"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.00"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(TablePrinterTest, IntFormatsThousands) {
  EXPECT_EQ(TablePrinter::Int(50255599), "50,255,599");
  EXPECT_EQ(TablePrinter::Int(999), "999");
  EXPECT_EQ(TablePrinter::Int(1000), "1,000");
}

TEST(TablePrinterTest, FixedRounds) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fixed(2.0, 1), "2.0");
}

TEST(TimerTest, VirtualClockAccumulates) {
  VirtualClock clock;
  clock.Advance(1.5);
  clock.Advance(0.25);
  EXPECT_DOUBLE_EQ(clock.now(), 1.75);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(TimerTest, CpuTimerAdvancesUnderWork) {
  CpuTimer timer;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace swan
