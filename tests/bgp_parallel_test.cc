#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/bgp.h"
#include "core/col_backends.h"
#include "core/reference_backend.h"
#include "core/row_backends.h"
#include "exec/exec_context.h"
#include "exec/thread_pool.h"
#include "rdf/dataset.h"

namespace swan::core {
namespace {

// Parallel BGP execution must be invisible: the binding-extension batches
// concatenate in batch order, so the rows come out in exactly the serial
// sequence at every thread count, on every backend.
class BgpParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A social graph big enough that the intermediate binding tables
    // exceed the per-batch grain and actually fan out: 64 people in a
    // knows-ring (each knows the next two), with one of three ages.
    constexpr int kPeople = 64;
    auto person = [](int i) { return "<p" + std::to_string(i) + ">"; };
    const char* ages[] = {"\"25\"", "\"30\"", "\"35\""};
    for (int i = 0; i < kPeople; ++i) {
      data_.Add(person(i), "<knows>", person((i + 1) % kPeople));
      data_.Add(person(i), "<knows>", person((i + 2) % kPeople));
      data_.Add(person(i), "<age>", ages[i % 3]);
    }
    exec::SetThreads(8);
  }

  // The repo-wide default width is 1; restore it for the other suites.
  void TearDown() override { exec::SetThreads(1); }

  uint64_t Id(const std::string& term) const {
    return data_.dict().Find(term).value();
  }

  // The two-hop query: ?x knows ?y . ?y knows ?z . ?z age ?a — three
  // extension steps, the later ones over hundreds of binding rows.
  std::vector<BgpPattern> TwoHopQuery() const {
    return {{Term::Var("x"), Term::Const(Id("<knows>")), Term::Var("y")},
            {Term::Var("y"), Term::Const(Id("<knows>")), Term::Var("z")},
            {Term::Var("z"), Term::Const(Id("<age>")), Term::Var("a")}};
  }

  // Exact-equality check (vars and row order, not just the sorted set):
  // order preservation is part of the contract.
  void ExpectIdenticalAcrossWidths(const Backend& backend) {
    const auto query = TwoHopQuery();
    const exec::ExecContext serial(1);
    auto reference = ExecuteBgp(backend, query, serial);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(reference.value().rows.size(), 4u * 64u);
    for (int width : {2, 8}) {
      const exec::ExecContext ectx(width);
      auto result = ExecuteBgp(backend, query, ectx);
      ASSERT_TRUE(result.ok()) << backend.name() << " width " << width;
      EXPECT_EQ(result.value().vars, reference.value().vars)
          << backend.name() << " width " << width;
      EXPECT_EQ(result.value().rows, reference.value().rows)
          << backend.name() << " width " << width;
    }
  }

  rdf::Dataset data_;
};

// Join order as the planner chose it, read off the physical plan's
// source_index annotations (the heuristic mode, no statistics).
std::vector<size_t> HeuristicOrder(const std::vector<BgpPattern>& patterns) {
  const plan::PhysicalPlan physical = plan::OptimizeBgp(patterns);
  std::vector<size_t> order;
  for (const auto& step : physical.branches.at(0).steps) {
    order.push_back(step.source_index);
  }
  return order;
}

TEST_F(BgpParallelTest, PlanOrderPutsMostBoundPatternFirst) {
  const std::vector<BgpPattern> patterns = {
      {Term::Var("x"), Term::Const(Id("<knows>")), Term::Var("y")},
      {Term::Var("x"), Term::Const(Id("<age>")), Term::Const(Id("\"30\""))}};
  const auto order = HeuristicOrder(patterns);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST_F(BgpParallelTest, PlanOrderBreaksTiesByJoinedVariables) {
  // Both candidate second patterns have one constant; the one sharing ?a
  // with the seed must beat the disconnected one.
  const std::vector<BgpPattern> patterns = {
      {Term::Var("c"), Term::Const(Id("<knows>")), Term::Var("d")},
      {Term::Var("a"), Term::Const(Id("<age>")), Term::Const(Id("\"25\""))},
      {Term::Var("a"), Term::Const(Id("<knows>")), Term::Var("b")}};
  const auto order = HeuristicOrder(patterns);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST_F(BgpParallelTest, RowTripleBackendIdenticalAcrossWidths) {
  RowTripleBackend backend(data_, rowstore::TripleRelation::PsoConfig());
  ExpectIdenticalAcrossWidths(backend);
}

TEST_F(BgpParallelTest, RowVerticalBackendIdenticalAcrossWidths) {
  RowVerticalBackend backend(data_);
  ExpectIdenticalAcrossWidths(backend);
}

TEST_F(BgpParallelTest, ColTripleBackendIdenticalAcrossWidths) {
  ColTripleBackend backend(data_, rdf::TripleOrder::kPSO);
  ExpectIdenticalAcrossWidths(backend);
}

TEST_F(BgpParallelTest, ColVerticalBackendIdenticalAcrossWidths) {
  ColVerticalBackend backend(data_);
  ExpectIdenticalAcrossWidths(backend);
}

TEST_F(BgpParallelTest, ReferenceBackendIdenticalAcrossWidths) {
  ReferenceBackend backend(data_);
  ExpectIdenticalAcrossWidths(backend);
}

TEST_F(BgpParallelTest, ParallelContextRecordsBatchesAndMatchCalls) {
  ColVerticalBackend backend(data_);
  const auto query = TwoHopQuery();

  const exec::ExecContext serial(1);
  auto serial_result = ExecuteBgp(backend, query, serial);
  ASSERT_TRUE(serial_result.ok());
  EXPECT_EQ(serial.counters().bgp_batches.load(), 0u);

  const exec::ExecContext parallel(8);
  auto parallel_result = ExecuteBgp(backend, query, parallel);
  ASSERT_TRUE(parallel_result.ok());
  EXPECT_GT(parallel.counters().bgp_batches.load(), 0u);
  // The same logical work: one Match per binding row per step, regardless
  // of how the rows were batched.
  EXPECT_EQ(parallel.counters().match_calls.load(),
            serial.counters().match_calls.load());
}

TEST_F(BgpParallelTest, WidthBeyondGlobalBudgetStillCorrect) {
  // A context wider than the global thread budget is clamped, never wrong.
  exec::SetThreads(2);
  ColVerticalBackend backend(data_);
  const auto query = TwoHopQuery();
  auto a = ExecuteBgp(backend, query, exec::ExecContext(1));
  auto b = ExecuteBgp(backend, query, exec::ExecContext(16));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().rows, b.value().rows);
}

}  // namespace
}  // namespace swan::core
