// Compressed execution equivalence and encoded-kernel unit tests.
//
// The system-level property: every codec must be invisible to query
// results. All 12 benchmark queries run under every codec on both column
// backends at thread widths 1 and 8, compared against the row reference —
// and the answers must be bit-identical at any width because the encoded
// kernels align parallel chunk boundaries to run/pack-word edges.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "colstore/column.h"
#include "colstore/ops.h"
#include "core/col_backends.h"
#include "core/reference_backend.h"
#include "exec/exec_context.h"

namespace swan {
namespace {

using bench_support::BartonConfig;
using bench_support::GenerateBarton;
using bench_support::MakeBartonContext;
using colstore::ColumnCodec;
using colstore::CountByKeyDense;
using colstore::CountByPair;
using colstore::EncodedColumn;
using colstore::EqRangeSorted;
using colstore::Gather;
using colstore::MarkSet;
using colstore::MergeCountMatches;
using colstore::MergeJoin;
using colstore::MergeSelectPositions;
using colstore::PositionVector;
using colstore::SelectEq;
using colstore::SelectMarked;
using core::QueryId;

const ColumnCodec kAllCodecs[] = {ColumnCodec::kRaw, ColumnCodec::kRle,
                                  ColumnCodec::kDelta, ColumnCodec::kBitPack,
                                  ColumnCodec::kDictBitPack,
                                  ColumnCodec::kAuto};

class CodecEquivalenceTest : public ::testing::TestWithParam<ColumnCodec> {};

TEST_P(CodecEquivalenceTest, AllQueriesMatchReferenceAtEveryThreadWidth) {
  BartonConfig config;
  config.target_triples = 30000;
  config.seed = 7;
  const auto barton = GenerateBarton(config);
  const rdf::Dataset& data = barton.dataset;
  const core::QueryContext ctx = MakeBartonContext(data, 28);

  core::ReferenceBackend reference(data);
  core::ColTripleBackend col_spo(data, rdf::TripleOrder::kSPO, {}, 4096,
                                 GetParam());
  core::ColTripleBackend col_pso(data, rdf::TripleOrder::kPSO, {}, 4096,
                                 GetParam());
  core::ColVerticalBackend col_vert(data, {}, 4096, GetParam());

  for (int threads : {1, 8}) {
    const exec::ExecContext ectx(threads);
    for (QueryId id : core::AllQueries()) {
      core::QueryResult expected = reference.Run(id, ctx, ectx);
      expected.Normalize();  // Results are bags; ordering is not semantic.
      core::QueryResult spo = col_spo.Run(id, ctx, ectx);
      spo.Normalize();
      core::QueryResult pso = col_pso.Run(id, ctx, ectx);
      pso.Normalize();
      core::QueryResult vert = col_vert.Run(id, ctx, ectx);
      vert.Normalize();
      EXPECT_EQ(spo.rows, expected.rows)
          << "triple SPO, " << ToString(id) << " at " << threads
          << " threads";
      EXPECT_EQ(pso.rows, expected.rows)
          << "triple PSO, " << ToString(id) << " at " << threads
          << " threads";
      EXPECT_EQ(vert.rows, expected.rows)
          << "vert. SO, " << ToString(id) << " at " << threads << " threads";
    }
  }
}

TEST_P(CodecEquivalenceTest, ColdRunsSurviveCacheDrops) {
  BartonConfig config;
  config.target_triples = 20000;
  config.seed = 11;
  const auto barton = GenerateBarton(config);
  const core::QueryContext ctx = MakeBartonContext(barton.dataset, 28);

  core::ColTripleBackend pso(barton.dataset, rdf::TripleOrder::kPSO, {}, 4096,
                             GetParam());
  for (QueryId id : core::AllQueries()) {
    const core::QueryResult hot = pso.Run(id, ctx);
    pso.DropCaches();
    const core::QueryResult cold = pso.Run(id, ctx);
    EXPECT_EQ(hot.rows, cold.rows) << ToString(id);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecEquivalenceTest,
                         ::testing::ValuesIn(kAllCodecs),
                         [](const ::testing::TestParamInfo<ColumnCodec>& info) {
                           return ToString(info.param);
                         });

// ---------------------------------------------------------------------------
// Encoded-kernel unit tests: each kernel against its span twin.

std::vector<uint64_t> RunColumn(size_t runs, size_t run_len) {
  std::vector<uint64_t> out;
  for (uint64_t r = 0; r < runs; ++r) {
    out.insert(out.end(), run_len + (r % 3), r * 5 + 2);
  }
  return out;
}

class EncodedKernelTest : public ::testing::TestWithParam<ColumnCodec> {};

TEST_P(EncodedKernelTest, SelectEqMatchesSpanKernel) {
  const auto values = RunColumn(97, 40);
  const EncodedColumn enc = EncodedColumn::FromValues(values, GetParam());
  for (int threads : {1, 8}) {
    const exec::ExecContext ectx(threads);
    for (uint64_t probe : {2ull, 52ull, 477ull, 999ull}) {
      EXPECT_EQ(SelectEq(enc, probe, ectx), SelectEq(values, probe, ectx))
          << "value " << probe << " at " << threads << " threads";
    }
  }
}

TEST_P(EncodedKernelTest, EqRangeSortedMatchesSpanKernel) {
  auto values = RunColumn(97, 40);
  std::sort(values.begin(), values.end());
  const EncodedColumn enc = EncodedColumn::FromValues(values, GetParam());
  // Present values, absent values between runs, and both extremes.
  for (uint64_t probe : {0ull, 2ull, 3ull, 52ull, 477ull, 5000ull}) {
    EXPECT_EQ(EqRangeSorted(enc, probe), EqRangeSorted(values, probe))
        << "value " << probe;
  }
}

TEST_P(EncodedKernelTest, GatherMatchesSpanKernel) {
  const auto values = RunColumn(53, 17);
  const EncodedColumn enc = EncodedColumn::FromValues(values, GetParam());
  PositionVector sel;
  for (uint32_t i = 0; i < values.size(); i += 7) sel.push_back(i);
  for (int threads : {1, 8}) {
    const exec::ExecContext ectx(threads);
    EXPECT_EQ(Gather(enc, sel, ectx), Gather(values, sel, ectx));
  }
}

TEST_P(EncodedKernelTest, CountByKeyDenseMatchesSpanKernel) {
  const auto values = RunColumn(61, 23);
  const EncodedColumn enc = EncodedColumn::FromValues(values, GetParam());
  for (int threads : {1, 8}) {
    const exec::ExecContext ectx(threads);
    EXPECT_EQ(CountByKeyDense(enc, 1024, ectx),
              CountByKeyDense(values, 1024, ectx));
  }
}

TEST_P(EncodedKernelTest, SelectMarkedMatchesSpanKernel) {
  const auto values = RunColumn(61, 23);
  const EncodedColumn enc = EncodedColumn::FromValues(values, GetParam());
  MarkSet set(1024);
  for (uint64_t v = 2; v < 1024; v += 15) set.Mark(v);
  for (int threads : {1, 8}) {
    const exec::ExecContext ectx(threads);
    EXPECT_EQ(SelectMarked(enc, set, ectx), SelectMarked(values, set, ectx));
  }
}

TEST_P(EncodedKernelTest, CountByPairMatchesSpanKernel) {
  const auto a = RunColumn(31, 47);
  auto b = RunColumn(31, 47);
  std::reverse(b.begin(), b.end());
  b.resize(a.size(), 3);
  const EncodedColumn ea = EncodedColumn::FromValues(a, GetParam());
  const EncodedColumn eb = EncodedColumn::FromValues(b, GetParam());
  for (int threads : {1, 8}) {
    const exec::ExecContext ectx(threads);
    const auto got = CountByPair(ea, eb, ectx);
    const auto want = CountByPair(a, b, ectx);
    ASSERT_EQ(got.size(), want.size()) << threads << " threads";
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].a, want[i].a);
      EXPECT_EQ(got[i].b, want[i].b);
      EXPECT_EQ(got[i].count, want[i].count);
    }
  }
}

TEST_P(EncodedKernelTest, MergeJoinMatchesSpanKernelIncludingSubranges) {
  auto right = RunColumn(83, 29);
  std::sort(right.begin(), right.end());
  std::vector<uint64_t> left;
  for (uint64_t v = 0; v < 450; v += 3) left.push_back(v);
  const EncodedColumn enc = EncodedColumn::FromValues(right, GetParam());
  for (int threads : {1, 8}) {
    const exec::ExecContext ectx(threads);
    // Whole column.
    const auto expected = MergeJoin(
        left, std::span<const uint64_t>(right), ectx);
    EXPECT_EQ(MergeJoin(left, enc, 0, enc.size(), ectx), expected);
    // Subrange: encoded indices must come back relative to rlo.
    const uint64_t rlo = 101, rhi = right.size() - 57;
    const auto sub = std::span<const uint64_t>(right).subspan(rlo, rhi - rlo);
    EXPECT_EQ(MergeJoin(left, enc, rlo, rhi, ectx),
              MergeJoin(left, sub, ectx));
  }
}

TEST_P(EncodedKernelTest, MergeCountAndSelectMatchSpanKernels) {
  auto values = RunColumn(83, 29);
  std::sort(values.begin(), values.end());
  std::vector<uint64_t> keys;
  for (uint64_t v = 2; v < 450; v += 10) keys.push_back(v);
  const EncodedColumn enc = EncodedColumn::FromValues(values, GetParam());
  const uint64_t lo = 37, hi = values.size() - 19;
  const auto sub = std::span<const uint64_t>(values).subspan(lo, hi - lo);
  const exec::ExecContext ectx(1);
  EXPECT_EQ(MergeCountMatches(enc, lo, hi, keys, ectx),
            MergeCountMatches(sub, keys, ectx));
  EXPECT_EQ(MergeSelectPositions(enc, lo, hi, keys, ectx),
            MergeSelectPositions(sub, keys, ectx));
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, EncodedKernelTest,
                         ::testing::ValuesIn(kAllCodecs),
                         [](const ::testing::TestParamInfo<ColumnCodec>& info) {
                           return ToString(info.param);
                         });

// Chunk-boundary invariant: parallel encoded kernels must return exactly
// the serial answer even when run lengths straddle morsel edges.
TEST(EncodedExecTest, ChunkBoundariesAlignToRuns) {
  // One giant run crossing several 64K morsels, then ragged small runs,
  // ascending so the merge-join precondition holds.
  std::vector<uint64_t> values(3 << 16, 42);
  for (uint64_t r = 0; r < 5000; ++r) {
    values.insert(values.end(), 1 + r % 7, 100 + r / 40);
  }
  const EncodedColumn enc =
      EncodedColumn::FromValues(values, ColumnCodec::kRle);
  const exec::ExecContext serial(1);
  const exec::ExecContext wide(8);
  EXPECT_EQ(SelectEq(enc, 42, wide), SelectEq(enc, 42, serial));
  EXPECT_EQ(CountByKeyDense(enc, 512, wide), CountByKeyDense(enc, 512,
                                                             serial));
  std::vector<uint64_t> left = {42, 103, 111};
  EXPECT_EQ(MergeJoin(left, enc, 0, enc.size(), wide),
            MergeJoin(left, enc, 0, enc.size(), serial));
}

}  // namespace
}  // namespace swan
