#include <gtest/gtest.h>

#include <sstream>

#include "rdf/dataset.h"
#include "rdf/ntriples.h"
#include "rdf/pattern.h"
#include "rdf/triple.h"

namespace swan::rdf {
namespace {

TEST(TripleOrderTest, KeyRoundTripsAllOrders) {
  const Triple t{11, 22, 33};
  for (TripleOrder order :
       {TripleOrder::kSPO, TripleOrder::kSOP, TripleOrder::kPSO,
        TripleOrder::kPOS, TripleOrder::kOSP, TripleOrder::kOPS}) {
    EXPECT_EQ(TripleFromKey(KeyOf(t, order), order), t) << ToString(order);
  }
}

TEST(TripleOrderTest, PsoKeyLeadsWithProperty) {
  const Triple t{11, 22, 33};
  const auto key = KeyOf(t, TripleOrder::kPSO);
  EXPECT_EQ(key[0], 22u);
  EXPECT_EQ(key[1], 11u);
  EXPECT_EQ(key[2], 33u);
}

TEST(TripleOrderTest, NamesMatch) {
  EXPECT_EQ(ToString(TripleOrder::kSPO), "SPO");
  EXPECT_EQ(ToString(TripleOrder::kOPS), "OPS");
}

TEST(TriplePatternTest, PatternNumbersMatchFigure2) {
  auto pat = [](bool s, bool p, bool o) {
    TriplePattern out;
    if (s) out.subject = 1;
    if (p) out.property = 2;
    if (o) out.object = 3;
    return out;
  };
  EXPECT_EQ(pat(true, true, true).PatternNumber(), 1);
  EXPECT_EQ(pat(false, true, true).PatternNumber(), 2);
  EXPECT_EQ(pat(true, false, true).PatternNumber(), 3);
  EXPECT_EQ(pat(true, true, false).PatternNumber(), 4);
  EXPECT_EQ(pat(false, false, true).PatternNumber(), 5);
  EXPECT_EQ(pat(true, false, false).PatternNumber(), 6);
  EXPECT_EQ(pat(false, true, false).PatternNumber(), 7);
  EXPECT_EQ(pat(false, false, false).PatternNumber(), 8);
}

TEST(TriplePatternTest, MatchesRespectsBoundComponents) {
  TriplePattern p;
  p.property = 5;
  EXPECT_TRUE(p.Matches({1, 5, 9}));
  EXPECT_FALSE(p.Matches({1, 6, 9}));
  p.object = 9;
  EXPECT_TRUE(p.Matches({1, 5, 9}));
  EXPECT_FALSE(p.Matches({1, 5, 8}));
}

TEST(JoinPatternTest, ClassificationMatchesSection22) {
  using C = TripleComponent;
  EXPECT_EQ(Classify({C::kSubject, C::kSubject}), JoinPattern::kA);
  EXPECT_EQ(Classify({C::kObject, C::kObject}), JoinPattern::kB);
  EXPECT_EQ(Classify({C::kObject, C::kSubject}), JoinPattern::kC);
  EXPECT_EQ(Classify({C::kSubject, C::kObject}), JoinPattern::kC);
  EXPECT_FALSE(Classify({C::kProperty, C::kSubject}).has_value());
  EXPECT_FALSE(Classify({C::kObject, C::kProperty}).has_value());
}

TEST(DatasetTest, AddDeduplicates) {
  Dataset ds;
  EXPECT_TRUE(ds.Add("<s>", "<p>", "<o>"));
  EXPECT_FALSE(ds.Add("<s>", "<p>", "<o>"));
  EXPECT_EQ(ds.size(), 1u);
}

TEST(DatasetTest, DistinctPropertiesSorted) {
  Dataset ds;
  ds.Add("<s>", "<p2>", "<o>");
  ds.Add("<s>", "<p1>", "<o>");
  ds.Add("<s2>", "<p2>", "<o>");
  const auto props = ds.DistinctProperties();
  ASSERT_EQ(props.size(), 2u);
  EXPECT_LT(props[0], props[1]);
}

TEST(DatasetTest, PropertyFrequenciesDescending) {
  Dataset ds;
  ds.Add("<a>", "<p1>", "<o1>");
  ds.Add("<b>", "<p1>", "<o2>");
  ds.Add("<c>", "<p2>", "<o3>");
  const auto freqs = ds.PropertyFrequencies();
  ASSERT_EQ(freqs.size(), 2u);
  EXPECT_EQ(freqs[0].second, 2u);
  EXPECT_EQ(freqs[1].second, 1u);
}

TEST(DatasetTest, ReplaceTriplesDeduplicates) {
  Dataset ds;
  ds.Add("<s>", "<p>", "<o>");
  const Triple t = ds.triples()[0];
  ds.ReplaceTriples({t, t, t});
  EXPECT_EQ(ds.size(), 1u);
}

TEST(NTriplesTest, ParsesUriTriple) {
  Dataset ds;
  bool added = false;
  auto st = ParseNTriplesLine("<s> <p> <o> .", &ds, &added);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(added);
  EXPECT_EQ(ds.size(), 1u);
}

TEST(NTriplesTest, ParsesLiteralObject) {
  Dataset ds;
  bool added = false;
  auto st = ParseNTriplesLine("<s> <p> \"a literal\" .", &ds, &added);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(ds.dict().Find("\"a literal\"").has_value());
}

TEST(NTriplesTest, ParsesEscapedQuoteInLiteral) {
  Dataset ds;
  bool added = false;
  auto st =
      ParseNTriplesLine(R"(<s> <p> "say \"hi\"" .)", &ds, &added);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(added);
}

TEST(NTriplesTest, ParsesLanguageTaggedLiteral) {
  Dataset ds;
  bool added = false;
  auto st = ParseNTriplesLine("<s> <p> \"bonjour\"@fr .", &ds, &added);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(ds.dict().Find("\"bonjour\"@fr").has_value());
}

TEST(NTriplesTest, SkipsCommentsAndBlankLines) {
  Dataset ds;
  bool added = true;
  EXPECT_TRUE(ParseNTriplesLine("# comment", &ds, &added).ok());
  EXPECT_FALSE(added);
  added = true;
  EXPECT_TRUE(ParseNTriplesLine("   ", &ds, &added).ok());
  EXPECT_FALSE(added);
}

TEST(NTriplesTest, RejectsLiteralSubject) {
  Dataset ds;
  bool added = false;
  EXPECT_FALSE(ParseNTriplesLine("\"lit\" <p> <o> .", &ds, &added).ok());
}

TEST(NTriplesTest, RejectsMissingDot) {
  Dataset ds;
  bool added = false;
  EXPECT_FALSE(ParseNTriplesLine("<s> <p> <o>", &ds, &added).ok());
}

TEST(NTriplesTest, RejectsUnterminatedUri) {
  Dataset ds;
  bool added = false;
  EXPECT_FALSE(ParseNTriplesLine("<s <p> <o> .", &ds, &added).ok());
}

TEST(NTriplesTest, StreamRoundTrip) {
  Dataset original;
  original.Add("<s1>", "<p1>", "<o1>");
  original.Add("<s2>", "<p2>", "\"literal value\"");
  original.Add("<s1>", "<p2>", "<s2>");
  std::stringstream buffer;
  WriteNTriples(original, buffer);

  Dataset parsed;
  uint64_t added = 0;
  auto st = ParseNTriples(buffer, &parsed, &added);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(parsed.size(), original.size());
  // Same term spellings must exist.
  EXPECT_TRUE(parsed.dict().Find("\"literal value\"").has_value());
}

TEST(NTriplesTest, ReportsLineNumberOnError) {
  std::stringstream in("<a> <b> <c> .\nbroken line\n");
  Dataset ds;
  uint64_t added = 0;
  auto st = ParseNTriples(in, &ds, &added);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos);
}

}  // namespace
}  // namespace swan::rdf
