// Oracle test: the 12 benchmark queries on a tiny hand-built graph whose
// answers were derived by hand from the SQL in the paper's appendix. Every
// backend must return exactly these rows.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/col_backends.h"
#include "core/cstore_backend.h"
#include "core/reference_backend.h"
#include "core/query.h"
#include "core/row_backends.h"
#include "rdf/dataset.h"

namespace swan {
namespace {

using core::QueryContext;
using core::QueryId;
using core::QueryResult;

class QuerySemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Vocabulary property/object spellings must match VocabularyNames.
    const char* kType = "<type>";
    const char* kLanguage = "<language>";
    const char* kOrigin = "<origin>";
    const char* kRecords = "<records>";
    const char* kPoint = "<Point>";
    const char* kEncoding = "<Encoding>";
    const char* kText = "<Text>";
    const char* kDate = "<Date>";
    const char* kFre = "<language/iso639-2b/fre>";
    const char* kEng = "<language/iso639-2b/eng>";
    const char* kDlc = "<info:marcorg/DLC>";
    const char* kEnd = "\"end\"";
    const char* kConf = "<conferences>";

    data_.Add("<s1>", kType, kText);
    data_.Add("<s1>", kLanguage, kFre);
    data_.Add("<s1>", kOrigin, kDlc);
    data_.Add("<s1>", kRecords, "<s2>");
    data_.Add("<s1>", kPoint, kEnd);
    data_.Add("<s1>", kEncoding, "<enc1>");
    data_.Add("<s2>", kType, kDate);
    data_.Add("<s3>", kType, kText);
    data_.Add("<s3>", kLanguage, kFre);
    data_.Add("<s4>", kType, kText);
    data_.Add("<s4>", kLanguage, kEng);
    data_.Add("<s4>", kPoint, kEnd);
    data_.Add("<s4>", kEncoding, "<enc2>");
    data_.Add("<s4>", kEncoding, "<enc1>");
    data_.Add("<s4>", kRecords, "<s5>");
    data_.Add("<s5>", kType, kText);
    data_.Add("<s6>", kType, kDate);
    data_.Add("<s6>", kOrigin, kDlc);
    data_.Add("<s6>", kRecords, "<s2>");
    data_.Add(kConf, "<p_a>", "\"x\"");
    data_.Add(kConf, "<p_b>", "\"y\"");
    data_.Add("<s2>", "<p_a>", "\"x\"");
    data_.Add("<s3>", "<p_b>", "\"y\"");
    data_.Add("<s1>", "<p_a>", "\"z\"");
  }

  uint64_t Id(const std::string& term) const {
    auto id = data_.dict().Find(term);
    EXPECT_TRUE(id.has_value()) << "missing term " << term;
    return id.value_or(0);
  }

  QueryContext AllPropertiesContext() const {
    auto vocab = core::Vocabulary::Resolve(data_);
    EXPECT_TRUE(vocab.ok());
    return QueryContext(vocab.value(), data_.DistinctProperties(),
                        data_.dict().size(),
                        data_.DistinctProperties().size());
  }

  QueryContext RestrictedContext(const std::vector<std::string>& props) const {
    auto vocab = core::Vocabulary::Resolve(data_);
    EXPECT_TRUE(vocab.ok());
    std::vector<uint64_t> ids;
    for (const auto& p : props) ids.push_back(Id(p));
    return QueryContext(vocab.value(), ids, data_.dict().size(),
                        data_.DistinctProperties().size());
  }

  std::vector<std::unique_ptr<core::Backend>> AllBackends(
      bool include_cstore) const {
    std::vector<std::unique_ptr<core::Backend>> backends;
    backends.push_back(std::make_unique<core::ColTripleBackend>(
        data_, rdf::TripleOrder::kSPO));
    backends.push_back(std::make_unique<core::ColTripleBackend>(
        data_, rdf::TripleOrder::kPSO));
    backends.push_back(std::make_unique<core::ColVerticalBackend>(data_));
    backends.push_back(std::make_unique<core::RowTripleBackend>(
        data_, rowstore::TripleRelation::SpoConfig()));
    backends.push_back(std::make_unique<core::RowTripleBackend>(
        data_, rowstore::TripleRelation::PsoConfig()));
    backends.push_back(std::make_unique<core::RowVerticalBackend>(data_));
    backends.push_back(std::make_unique<core::ReferenceBackend>(data_));
    if (include_cstore) {
      backends.push_back(std::make_unique<core::CStoreBackend>(
          data_, data_.DistinctProperties()));
    }
    return backends;
  }

  void ExpectRows(QueryId id, const QueryContext& ctx,
                  std::vector<std::vector<uint64_t>> expected) {
    std::sort(expected.begin(), expected.end());
    // C-Store's property set is fixed at load time, so it is only
    // comparable when the restriction covers all properties (as in the
    // real benchmark, where the 28 include every queried property).
    for (const auto& backend : AllBackends(ctx.FilterCoversAll())) {
      if (!backend->Supports(id)) continue;
      QueryResult result = backend->Run(id, ctx);
      result.Normalize();
      EXPECT_EQ(result.rows, expected)
          << backend->name() << " on " << core::ToString(id);
    }
  }

  rdf::Dataset data_;
};

TEST_F(QuerySemanticsTest, Q1GroupsTypeObjects) {
  ExpectRows(QueryId::kQ1, AllPropertiesContext(),
             {{Id("<Text>"), 4}, {Id("<Date>"), 2}});
}

TEST_F(QuerySemanticsTest, Q2StarCountsAllProperties) {
  ExpectRows(QueryId::kQ2Star, AllPropertiesContext(),
             {{Id("<type>"), 4},
              {Id("<language>"), 3},
              {Id("<origin>"), 1},
              {Id("<records>"), 2},
              {Id("<Point>"), 2},
              {Id("<Encoding>"), 3},
              {Id("<p_a>"), 1},
              {Id("<p_b>"), 1}});
}

TEST_F(QuerySemanticsTest, Q2RestrictedFiltersProperties) {
  ExpectRows(QueryId::kQ2, RestrictedContext({"<type>", "<language>"}),
             {{Id("<type>"), 4}, {Id("<language>"), 3}});
}

TEST_F(QuerySemanticsTest, Q3StarKeepsGroupsAboveOne) {
  ExpectRows(QueryId::kQ3Star, AllPropertiesContext(),
             {{Id("<type>"), Id("<Text>"), 4},
              {Id("<language>"), Id("<language/iso639-2b/fre>"), 2},
              {Id("<Encoding>"), Id("<enc1>"), 2},
              {Id("<Point>"), Id("\"end\""), 2}});
}

TEST_F(QuerySemanticsTest, Q4StarIntersectsLanguage) {
  ExpectRows(QueryId::kQ4Star, AllPropertiesContext(),
             {{Id("<type>"), Id("<Text>"), 2},
              {Id("<language>"), Id("<language/iso639-2b/fre>"), 2}});
}

TEST_F(QuerySemanticsTest, Q5FollowsRecordsToNonTextTypes) {
  ExpectRows(QueryId::kQ5, AllPropertiesContext(),
             {{Id("<s1>"), Id("<Date>")}, {Id("<s6>"), Id("<Date>")}});
}

TEST_F(QuerySemanticsTest, Q6StarMatchesQ2StarOnThisGraph) {
  // The records-reachable Text subjects are already Text-typed here, so
  // the union adds nothing and q6* == q2*.
  ExpectRows(QueryId::kQ6Star, AllPropertiesContext(),
             {{Id("<type>"), 4},
              {Id("<language>"), 3},
              {Id("<origin>"), 1},
              {Id("<records>"), 2},
              {Id("<Point>"), 2},
              {Id("<Encoding>"), 3},
              {Id("<p_a>"), 1},
              {Id("<p_b>"), 1}});
}

TEST_F(QuerySemanticsTest, Q7CrossProductsEncodingAndType) {
  ExpectRows(QueryId::kQ7, AllPropertiesContext(),
             {{Id("<s1>"), Id("<enc1>"), Id("<Text>")},
              {Id("<s4>"), Id("<enc2>"), Id("<Text>")},
              {Id("<s4>"), Id("<enc1>"), Id("<Text>")}});
}

TEST_F(QuerySemanticsTest, Q8FindsSubjectsSharingConferenceObjects) {
  ExpectRows(QueryId::kQ8, AllPropertiesContext(),
             {{Id("<s2>")}, {Id("<s3>")}});
}

TEST_F(QuerySemanticsTest, RestrictedQ6CountsOnlyListedProperties) {
  ExpectRows(QueryId::kQ6, RestrictedContext({"<Encoding>", "<records>"}),
             {{Id("<Encoding>"), 3}, {Id("<records>"), 2}});
}

TEST_F(QuerySemanticsTest, RestrictedQ3DropsUnlistedGroups) {
  ExpectRows(QueryId::kQ3, RestrictedContext({"<Point>", "<p_a>"}),
             {{Id("<Point>"), Id("\"end\""), 2}});
}

TEST_F(QuerySemanticsTest, RestrictedQ4KeepsLanguageGroupOnlyIfListed) {
  ExpectRows(QueryId::kQ4, RestrictedContext({"<type>"}),
             {{Id("<type>"), Id("<Text>"), 2}});
}

}  // namespace
}  // namespace swan
