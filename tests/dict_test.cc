#include <gtest/gtest.h>

#include <string>

#include "dict/dictionary.h"

namespace swan::dict {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  Dictionary dict;
  EXPECT_EQ(dict.Intern("<a>"), 0u);
  EXPECT_EQ(dict.Intern("<b>"), 1u);
  EXPECT_EQ(dict.Intern("<c>"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  const uint64_t id = dict.Intern("<x>");
  EXPECT_EQ(dict.Intern("<x>"), id);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, LookupRoundTrips) {
  Dictionary dict;
  const uint64_t id = dict.Intern("\"some literal\"");
  EXPECT_EQ(dict.Lookup(id), "\"some literal\"");
}

TEST(DictionaryTest, FindMissingReturnsNullopt) {
  Dictionary dict;
  dict.Intern("<present>");
  EXPECT_FALSE(dict.Find("<absent>").has_value());
  EXPECT_TRUE(dict.Find("<present>").has_value());
}

TEST(DictionaryTest, ViewsSurviveRehashing) {
  Dictionary dict;
  const uint64_t first = dict.Intern("<first>");
  // Force many insertions (deque guarantees stable storage; the index
  // string_views must stay valid through unordered_map rehashes).
  for (int i = 0; i < 20000; ++i) {
    dict.Intern("<term_" + std::to_string(i) + ">");
  }
  EXPECT_EQ(dict.Lookup(first), "<first>");
  EXPECT_EQ(dict.Find("<first>"), first);
  EXPECT_EQ(dict.Find("<term_19999>"), dict.size() - 1);
}

TEST(DictionaryTest, TracksStringBytes) {
  Dictionary dict;
  dict.Intern("abcd");   // 4
  dict.Intern("ef");     // 2
  dict.Intern("abcd");   // duplicate, not counted
  EXPECT_EQ(dict.TotalStringBytes(), 6u);
}

TEST(DictionaryTest, DistinguishesUriFromLiteralSpelling) {
  Dictionary dict;
  const uint64_t uri = dict.Intern("<Text>");
  const uint64_t lit = dict.Intern("\"Text\"");
  EXPECT_NE(uri, lit);
}

}  // namespace
}  // namespace swan::dict
