// Conformance tests for the statistics-driven cost-based planner: the
// plan it picks must never cost more than the hand-wired textual order
// (match calls and modeled disk bytes, on every backend, on every
// benchmark BGP), the same-subject star gather must pay off where it
// fires, and the widened SPARQL surface (FILTER / OPTIONAL / UNION /
// OFFSET) must agree with the naive reference backend at every thread
// width.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench_support/barton_generator.h"
#include "bench_support/query_bgps.h"
#include "core/col_backends.h"
#include "core/reference_backend.h"
#include "core/row_backends.h"
#include "core/store.h"
#include "exec/exec_context.h"
#include "plan/optimizer.h"
#include "plan/physical.h"
#include "plan/stats.h"
#include "sparql/sparql.h"

namespace swan {
namespace {

struct RunCost {
  std::vector<std::vector<uint64_t>> rows;  // sorted binding rows
  uint64_t match_calls = 0;
  uint64_t cold_bytes = 0;
};

RunCost RunWithMode(core::Backend* backend,
                    const std::vector<core::BgpPattern>& patterns,
                    const plan::PlannerOptions& options) {
  backend->DropCaches();
  const uint64_t bytes_before = backend->disk()->total_bytes_read();
  const exec::ExecContext ectx(1);
  auto result = core::ExecuteBgp(*backend, patterns, ectx, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunCost cost;
  if (result.ok()) cost.rows = std::move(result.value().rows);
  std::sort(cost.rows.begin(), cost.rows.end());
  cost.match_calls = ectx.counters().Snap().match_calls;
  cost.cold_bytes = backend->disk()->total_bytes_read() - bytes_before;
  return cost;
}

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_support::BartonConfig config;
    config.target_triples = 20000;
    barton_ = bench_support::GenerateBarton(config);
    auto vocab = core::Vocabulary::Resolve(barton_.dataset);
    ASSERT_TRUE(vocab.ok()) << vocab.status().ToString();
    vocab_ = vocab.value();
    stats_ = plan::StoreStats::Collect(barton_.dataset);
  }

  plan::PlannerOptions CostOptions(const core::Backend& backend) const {
    plan::PlannerOptions options;
    options.mode = plan::PlanMode::kCostBased;
    options.stats = &stats_;
    options.hints = backend.PlannerHints();
    return options;
  }

  static plan::PlannerOptions AsWrittenOptions() {
    plan::PlannerOptions options;
    options.mode = plan::PlanMode::kAsWritten;
    return options;
  }

  bench_support::BartonDataset barton_;
  core::Vocabulary vocab_;
  plan::StoreStats stats_;
};

TEST_F(OptimizerTest, StatsAgreeWithTheDataset) {
  EXPECT_EQ(stats_.total_triples, barton_.dataset.size());
  uint64_t by_property_sum = 0;
  for (const auto& [property, ps] : stats_.by_property) {
    by_property_sum += ps.count;
    EXPECT_GE(ps.count, ps.distinct_subjects > 0 ? 1u : 0u);
    EXPECT_LE(ps.distinct_subjects, ps.count);
    EXPECT_LE(ps.distinct_objects, ps.count);
  }
  EXPECT_EQ(by_property_sum, stats_.total_triples);
  // A property the dictionary never saw estimates to zero matches.
  EXPECT_EQ(stats_.EstimateMatches(std::nullopt, stats_.total_triples + 999,
                                   std::nullopt),
            0.0);
}

TEST_F(OptimizerTest, StatsSurviveTheStoreAudit) {
  auto store = core::RdfStore::Open(barton_.dataset, {});
  const auto report = store->Audit(audit::AuditLevel::kFull);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// The gate behind the refactor: on every benchmark BGP and every backend,
// the cost-based plan must produce the same bindings as the hand-wired
// textual order at no more Match calls, and must never regress modeled
// cold I/O against the heuristic that shipped before the planner (5% +
// one page of slack for layout noise). Against the hand-wired order the
// bytes bound is structural, not tight: an indexed probe plan may read a
// secondary index the sequential baseline never touches (row PSO keeps
// five of them), so it is allowed up to one extra structure's worth of
// cold pages (2x) — bounded, never unbounded.
TEST_F(OptimizerTest, CostPlannerEqualsOrBeatsHandWiredOrderEverywhere) {
  core::ColTripleBackend col_triple(barton_.dataset, rdf::TripleOrder::kPSO);
  core::ColVerticalBackend col_vert(barton_.dataset);
  core::RowTripleBackend row_triple(barton_.dataset,
                                    rowstore::TripleRelation::PsoConfig());
  core::RowVerticalBackend row_vert(barton_.dataset);
  std::vector<core::Backend*> backends = {&col_triple, &col_vert, &row_triple,
                                          &row_vert};

  for (core::Backend* backend : backends) {
    for (const auto& bgp : bench_support::BenchmarkBgps(vocab_)) {
      SCOPED_TRACE(backend->name() + " " + bgp.name);
      const RunCost as_written =
          RunWithMode(backend, bgp.patterns, AsWrittenOptions());
      const RunCost heuristic =
          RunWithMode(backend, bgp.patterns, plan::PlannerOptions{});
      const RunCost cost =
          RunWithMode(backend, bgp.patterns, CostOptions(*backend));
      EXPECT_EQ(cost.rows, as_written.rows);
      EXPECT_EQ(heuristic.rows, as_written.rows);
      EXPECT_LE(cost.match_calls, as_written.match_calls);
      EXPECT_LE(cost.cold_bytes,
                heuristic.cold_bytes + heuristic.cold_bytes / 20 + 4096);
      EXPECT_LE(cost.cold_bytes, as_written.cold_bytes * 2 + 4096);
    }
  }
}

// Self-join elimination on a same-subject star whose arms all bind fresh
// variables: the wide arms (many rows per subject, large binding fan-in)
// are gathered — their property partition is read once instead of being
// probed per binding row — while arms where probing stays cheaper remain
// probes. The mixed plan must fire at least one gather and strictly
// reduce Match calls without changing the bindings.
TEST_F(OptimizerTest, StarGatherFiresOnAllVarStarAndReducesMatchCalls) {
  core::ColVerticalBackend backend(barton_.dataset);
  const std::vector<core::BgpPattern> star = {
      {core::Term::Var("s"), core::Term::Const(vocab_.point),
       core::Term::Var("w")},
      {core::Term::Var("s"), core::Term::Const(vocab_.encoding),
       core::Term::Var("e")},
      {core::Term::Var("s"), core::Term::Const(vocab_.type),
       core::Term::Var("t")},
  };

  const exec::ExecContext heuristic_ectx(1);
  auto heuristic = core::ExecuteBgp(backend, star, heuristic_ectx,
                                    plan::PlannerOptions{});
  ASSERT_TRUE(heuristic.ok());
  EXPECT_EQ(heuristic_ectx.counters().Snap().star_gathers, 0u);

  const exec::ExecContext cost_ectx(1);
  auto cost = core::ExecuteBgp(backend, star, cost_ectx,
                               CostOptions(backend));
  ASSERT_TRUE(cost.ok());
  EXPECT_GE(cost_ectx.counters().Snap().star_gathers, 1u);
  EXPECT_LT(cost_ectx.counters().Snap().match_calls,
            heuristic_ectx.counters().Snap().match_calls);

  auto sorted = [](std::vector<std::vector<uint64_t>> rows) {
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(sorted(cost.value().rows), sorted(heuristic.value().rows));
}

TEST_F(OptimizerTest, CostModeAnnotatesEstimates) {
  core::ColVerticalBackend backend(barton_.dataset);
  const auto bgps = bench_support::BenchmarkBgps(vocab_);
  const auto physical = plan::Optimize(plan::BuildBgpLogical(bgps[4].patterns),
                                       CostOptions(backend));
  ASSERT_EQ(physical.branches.size(), 1u);
  for (const auto& step : physical.branches[0].steps) {
    EXPECT_GE(step.est_out, 0.0);
  }
  EXPECT_NE(physical.mode_note.find("cost-based"), std::string::npos);
  const std::string text = plan::ExplainText(physical);
  EXPECT_NE(text.find("plan:"), std::string::npos);
  EXPECT_NE(text.find("est"), std::string::npos);
}

TEST_F(OptimizerTest, CostModeWithoutStatsFallsBackToHeuristic) {
  plan::PlannerOptions options;
  options.mode = plan::PlanMode::kCostBased;  // no stats attached
  const auto bgps = bench_support::BenchmarkBgps(vocab_);
  const auto physical = plan::OptimizeBgp(bgps[1].patterns, options);
  EXPECT_NE(physical.mode_note.find("heuristic"), std::string::npos);
}

TEST_F(OptimizerTest, UnsatisfiablePatternConstantFoldsToEmpty) {
  std::vector<core::BgpPattern> patterns = {
      {core::Term::Var("s"), core::Term::Const(vocab_.type),
       core::Term::Var("t")}};
  plan::BgpPattern dead;
  dead.subject = plan::Term::Var("s");
  dead.property = plan::Term::Const(0);
  dead.object = plan::Term::Var("o");
  auto scan = plan::MakeScan(std::move(dead), /*unsatisfiable=*/true);
  std::vector<std::unique_ptr<plan::LogicalNode>> scans;
  scans.push_back(plan::MakeScan(
      plan::BgpPattern{plan::Term::Var("s"), plan::Term::Const(vocab_.type),
                       plan::Term::Var("t")}));
  scans.push_back(std::move(scan));
  plan::LogicalPlan logical;
  logical.root = plan::MakeJoin(std::move(scans));
  const auto physical = plan::Optimize(logical, plan::PlannerOptions{});
  ASSERT_EQ(physical.branches.size(), 1u);
  EXPECT_TRUE(physical.branches[0].always_empty);

  core::ColVerticalBackend backend(barton_.dataset);
  const exec::ExecContext ectx(1);
  auto result = core::ExecutePlan(backend, physical, ectx);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().rows.empty());
  // Constant folding means no Match call was ever issued.
  EXPECT_EQ(ectx.counters().Snap().match_calls, 0u);
}

// --- SPARQL surface conformance vs the reference backend ----------------

// The widened language forms, executed cost-based on an optimized backend
// and heuristically on the naive reference, must agree row-for-row at one
// and at eight threads.
TEST_F(OptimizerTest, WidenedSparqlAgreesWithReferenceAtEveryWidth) {
  const std::vector<std::string> queries = {
      // FILTER: identity inequality over an object variable.
      "SELECT ?s ?t WHERE { ?s <type> ?t . FILTER(?t != <Text>) }",
      // FILTER IN.
      "SELECT ?s WHERE { ?s <type> ?t . FILTER(?t IN (<Text>)) }",
      // OPTIONAL with a filter inside the optional group.
      "SELECT ?s ?o WHERE { ?s <type> <Text> . "
      "OPTIONAL { ?s <records> ?o } }",
      // UNION of two branches.
      "SELECT ?s WHERE { { ?s <type> <Text> } UNION "
      "{ ?s <language> <language/iso639-2b/fre> } }",
      // OFFSET composed with LIMIT and DISTINCT.
      "SELECT DISTINCT ?t WHERE { ?s <type> ?t } OFFSET 1 LIMIT 3",
  };
  core::ColVerticalBackend optimized(barton_.dataset);
  core::ReferenceBackend reference(barton_.dataset);

  for (const std::string& query : queries) {
    SCOPED_TRACE(query);
    const exec::ExecContext ref_ectx(1);
    auto expected = sparql::Execute(reference, barton_.dataset, query,
                                    ref_ectx, /*stats=*/nullptr);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto key = [](const sparql::QueryOutput& out) {
      std::vector<std::vector<uint64_t>> rows;
      for (const auto& row : out.rows) rows.push_back(row.ids);
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    const auto want = key(expected.value());
    for (int width : {1, 8}) {
      const exec::ExecContext ectx(width);
      auto got =
          sparql::Execute(optimized, barton_.dataset, query, ectx, &stats_);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      EXPECT_EQ(got.value().vars, expected.value().vars) << "width " << width;
      EXPECT_EQ(key(got.value()), want) << "width " << width;
    }
  }
}

// OFFSET/LIMIT slice a deterministic row order, so they are compared
// positionally on a single backend across widths instead of as sets.
TEST_F(OptimizerTest, OffsetIsDeterministicAcrossWidths) {
  core::ColVerticalBackend backend(barton_.dataset);
  const std::string query =
      "SELECT ?s ?t WHERE { ?s <type> ?t } OFFSET 5 LIMIT 10";
  const exec::ExecContext serial(1);
  auto baseline =
      sparql::Execute(backend, barton_.dataset, query, serial, &stats_);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline.value().rows.size(), 10u);
  const exec::ExecContext wide(8);
  auto parallel =
      sparql::Execute(backend, barton_.dataset, query, wide, &stats_);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel.value().rows.size(), baseline.value().rows.size());
  for (size_t i = 0; i < baseline.value().rows.size(); ++i) {
    EXPECT_EQ(parallel.value().rows[i].ids, baseline.value().rows[i].ids);
  }
}

}  // namespace
}  // namespace swan
