#include <gtest/gtest.h>

#include <unordered_map>

#include "bench_support/barton_generator.h"
#include "bench_support/property_split.h"
#include "core/query.h"

namespace swan::bench_support {
namespace {

std::vector<uint64_t> VocabularyProperties(const rdf::Dataset& ds) {
  std::vector<uint64_t> out;
  for (const char* name : {"<type>", "<records>", "<language>", "<origin>",
                           "<Encoding>", "<Point>"}) {
    auto id = ds.dict().Find(name);
    if (id) out.push_back(*id);
  }
  return out;
}

TEST(PropertySplitTest, ReachesTargetPropertyCount) {
  BartonConfig config;
  config.target_triples = 30000;
  const auto barton = GenerateBarton(config);
  const auto protect = VocabularyProperties(barton.dataset);
  const rdf::Dataset split =
      SplitProperties(barton.dataset, 500, 1, protect);
  EXPECT_EQ(split.DistinctProperties().size(), 500u);
}

TEST(PropertySplitTest, PreservesTripleCount) {
  BartonConfig config;
  config.target_triples = 30000;
  const auto barton = GenerateBarton(config);
  const rdf::Dataset split = SplitProperties(
      barton.dataset, 400, 2, VocabularyProperties(barton.dataset));
  EXPECT_EQ(split.size(), barton.dataset.size());
}

TEST(PropertySplitTest, ProtectedPropertiesKeepTheirTriples) {
  BartonConfig config;
  config.target_triples = 30000;
  const auto barton = GenerateBarton(config);
  const auto protect = VocabularyProperties(barton.dataset);
  const rdf::Dataset split =
      SplitProperties(barton.dataset, 600, 3, protect);

  auto count_for = [](const rdf::Dataset& ds, const char* name) {
    auto id = ds.dict().Find(name);
    if (!id) return uint64_t{0};
    uint64_t count = 0;
    for (const auto& t : ds.triples()) {
      if (t.property == *id) ++count;
    }
    return count;
  };
  for (const char* name : {"<type>", "<records>", "<language>", "<origin>",
                           "<Encoding>", "<Point>"}) {
    EXPECT_EQ(count_for(barton.dataset, name), count_for(split, name)) << name;
  }
  // The benchmark still runs on the split dataset.
  EXPECT_TRUE(core::Vocabulary::Resolve(split).ok());
}

TEST(PropertySplitTest, SubjectsAndObjectsUnchanged) {
  BartonConfig config;
  config.target_triples = 10000;
  const auto barton = GenerateBarton(config);
  const rdf::Dataset split = SplitProperties(
      barton.dataset, 300, 4, VocabularyProperties(barton.dataset));
  // Multiset of (subject, object) pairs must be identical.
  auto pair_counts = [](const rdf::Dataset& ds) {
    std::unordered_map<uint64_t, uint64_t> counts;
    const auto& dict = ds.dict();
    std::hash<std::string_view> hasher;
    for (const auto& t : ds.triples()) {
      const uint64_t key = hasher(dict.Lookup(t.subject)) * 31 +
                           hasher(dict.Lookup(t.object));
      ++counts[key];
    }
    return counts;
  };
  EXPECT_EQ(pair_counts(barton.dataset), pair_counts(split));
}

TEST(PropertySplitTest, FragmentsFollowNamingScheme) {
  rdf::Dataset ds;
  for (int i = 0; i < 100; ++i) {
    ds.Add("<s" + std::to_string(i) + ">", "<bulk>", "<o>");
  }
  ds.Add("<s>", "<keep>", "<o>");
  const auto keep_id = ds.dict().Find("<keep>").value();
  const rdf::Dataset split = SplitProperties(ds, 10, 5, {keep_id});
  EXPECT_EQ(split.DistinctProperties().size(), 10u);
  EXPECT_TRUE(split.dict().Find("<bulk>").has_value());   // fragment 0
  EXPECT_TRUE(split.dict().Find("<bulk#1>").has_value());
  EXPECT_TRUE(split.dict().Find("<keep>").has_value());
}

TEST(PropertySplitTest, TargetBelowCurrentIsNoOp) {
  rdf::Dataset ds;
  ds.Add("<s1>", "<p1>", "<o1>");
  ds.Add("<s2>", "<p2>", "<o2>");
  const rdf::Dataset split = SplitProperties(ds, 1, 6, {});
  EXPECT_EQ(split.DistinctProperties().size(), 2u);
  EXPECT_EQ(split.size(), 2u);
}

TEST(PropertySplitTest, DeterministicInSeed) {
  BartonConfig config;
  config.target_triples = 5000;
  const auto barton = GenerateBarton(config);
  const auto a = SplitProperties(barton.dataset, 300, 9, {});
  const auto b = SplitProperties(barton.dataset, 300, 9, {});
  EXPECT_EQ(a.triples(), b.triples());
}

}  // namespace
}  // namespace swan::bench_support
