#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/bgp.h"
#include "core/col_backends.h"
#include "core/row_backends.h"
#include "core/store.h"
#include "rdf/dataset.h"

namespace swan::core {
namespace {

class BgpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    //  alice knows bob, bob knows carol, carol knows alice
    //  alice age "30", bob age "30", carol age "25"
    data_.Add("<alice>", "<knows>", "<bob>");
    data_.Add("<bob>", "<knows>", "<carol>");
    data_.Add("<carol>", "<knows>", "<alice>");
    data_.Add("<alice>", "<age>", "\"30\"");
    data_.Add("<bob>", "<age>", "\"30\"");
    data_.Add("<carol>", "<age>", "\"25\"");
  }

  uint64_t Id(const std::string& term) const {
    return data_.dict().Find(term).value();
  }

  rdf::Dataset data_;
};

TEST_F(BgpTest, SinglePatternAllVariables) {
  ColVerticalBackend backend(data_);
  auto result = ExecuteBgp(
      backend, {{Term::Var("s"), Term::Var("p"), Term::Var("o")}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 6u);
  EXPECT_EQ(result.value().vars, (std::vector<std::string>{"s", "p", "o"}));
}

TEST_F(BgpTest, JoinPatternA_SharedSubject) {
  // ?x knows ?y . ?x age "30"  -> alice, bob
  ColVerticalBackend backend(data_);
  auto result = ExecuteBgp(
      backend,
      {{Term::Var("x"), Term::Const(Id("<knows>")), Term::Var("y")},
       {Term::Var("x"), Term::Const(Id("<age>")), Term::Const(Id("\"30\""))}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);
}

TEST_F(BgpTest, JoinPatternC_PathOfLengthTwo) {
  // ?x knows ?y . ?y knows ?z  (object-subject chain)
  ColVerticalBackend backend(data_);
  auto result = ExecuteBgp(
      backend, {{Term::Var("x"), Term::Const(Id("<knows>")), Term::Var("y")},
                {Term::Var("y"), Term::Const(Id("<knows>")), Term::Var("z")}});
  ASSERT_TRUE(result.ok());
  // The knows-cycle of length 3 gives 3 two-step paths.
  EXPECT_EQ(result.value().rows.size(), 3u);
}

TEST_F(BgpTest, JoinPatternB_SharedObject) {
  // ?x age ?a . ?y age ?a  -> all (x, y) with equal age: 4 with "30"
  // (alice/alice, alice/bob, bob/alice, bob/bob) + 1 with "25".
  ColVerticalBackend backend(data_);
  auto result = ExecuteBgp(
      backend, {{Term::Var("x"), Term::Const(Id("<age>")), Term::Var("a")},
                {Term::Var("y"), Term::Const(Id("<age>")), Term::Var("a")}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 5u);
}

TEST_F(BgpTest, RepeatedVariableWithinPattern) {
  // ?x knows ?x -> nobody knows themselves here.
  ColVerticalBackend backend(data_);
  auto result = ExecuteBgp(
      backend, {{Term::Var("x"), Term::Const(Id("<knows>")), Term::Var("x")}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().rows.empty());

  data_.Add("<narcissus>", "<knows>", "<narcissus>");
  ColVerticalBackend backend2(data_);
  auto result2 = ExecuteBgp(
      backend2, {{Term::Var("x"), Term::Const(Id("<knows>")), Term::Var("x")}});
  ASSERT_TRUE(result2.ok());
  EXPECT_EQ(result2.value().rows.size(), 1u);
}

TEST_F(BgpTest, EmptyBgpIsInvalid) {
  ColVerticalBackend backend(data_);
  auto result = ExecuteBgp(backend, {});
  EXPECT_FALSE(result.ok());
}

TEST_F(BgpTest, UnnamedVariableIsInvalid) {
  ColVerticalBackend backend(data_);
  auto result =
      ExecuteBgp(backend, {{Term::Var(""), Term::Var("p"), Term::Var("o")}});
  EXPECT_FALSE(result.ok());
}

TEST_F(BgpTest, NoMatchesYieldsEmptyRows) {
  ColVerticalBackend backend(data_);
  auto result = ExecuteBgp(
      backend, {{Term::Var("x"), Term::Const(Id("<age>")), Term::Var("a")},
                {Term::Var("x"), Term::Const(Id("<knows>")),
                 Term::Const(Id("\"25\""))}});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().rows.empty());
}

TEST_F(BgpTest, AllBackendsGiveSameBindingCount) {
  const std::vector<BgpPattern> query = {
      {Term::Var("x"), Term::Const(Id("<knows>")), Term::Var("y")},
      {Term::Var("y"), Term::Const(Id("<age>")), Term::Var("a")}};

  ColTripleBackend spo(data_, rdf::TripleOrder::kSPO);
  ColTripleBackend pso(data_, rdf::TripleOrder::kPSO);
  ColVerticalBackend vert(data_);
  RowTripleBackend row_spo(data_, rowstore::TripleRelation::SpoConfig());
  RowVerticalBackend row_vert(data_);

  std::vector<size_t> counts;
  for (Backend* backend : std::initializer_list<Backend*>{
           &spo, &pso, &vert, &row_spo, &row_vert}) {
    auto result = ExecuteBgp(*backend, query);
    ASSERT_TRUE(result.ok());
    auto rows = result.value().rows;
    std::sort(rows.begin(), rows.end());
    counts.push_back(rows.size());
  }
  for (size_t c : counts) EXPECT_EQ(c, counts[0]);
  EXPECT_EQ(counts[0], 3u);
}

// The planner's chosen join order is read off the physical plan: each
// step's source_index names the input pattern it executes.
std::vector<size_t> HeuristicOrder(const std::vector<BgpPattern>& patterns) {
  const plan::PhysicalPlan physical = plan::OptimizeBgp(patterns);
  std::vector<size_t> order;
  for (const auto& step : physical.branches.at(0).steps) {
    order.push_back(step.source_index);
  }
  return order;
}

TEST_F(BgpTest, PlanOrderPutsMostBoundPatternFirst) {
  // (?x age "30") has two constants; (?x knows ?y) only one.
  const std::vector<BgpPattern> patterns = {
      {Term::Var("x"), Term::Const(Id("<knows>")), Term::Var("y")},
      {Term::Var("x"), Term::Const(Id("<age>")), Term::Const(Id("\"30\""))}};
  const auto order = HeuristicOrder(patterns);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
}

TEST_F(BgpTest, PlanOrderPrefersConnectedPatterns) {
  // After the seed pattern about ?a, the ?a-connected pattern should come
  // before the disconnected ?c one.
  const std::vector<BgpPattern> patterns = {
      {Term::Var("c"), Term::Const(Id("<knows>")), Term::Var("d")},
      {Term::Var("a"), Term::Const(Id("<age>")), Term::Const(Id("\"30\""))},
      {Term::Var("a"), Term::Const(Id("<knows>")), Term::Var("b")}};
  const auto order = HeuristicOrder(patterns);
  EXPECT_EQ(order[0], 1u);  // most constants
  EXPECT_EQ(order[1], 2u);  // joins on ?a
  EXPECT_EQ(order[2], 0u);  // cartesian-ish pattern last
}

TEST_F(BgpTest, ReorderingDoesNotChangeResults) {
  // Same query written in two textual orders: identical binding sets.
  ColVerticalBackend backend(data_);
  const BgpPattern knows = {Term::Var("x"), Term::Const(Id("<knows>")),
                            Term::Var("y")};
  const BgpPattern age = {Term::Var("y"), Term::Const(Id("<age>")),
                          Term::Var("v")};
  auto forward = ExecuteBgp(backend, {knows, age});
  auto reversed = ExecuteBgp(backend, {age, knows});
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(reversed.ok());
  auto canonical = [](const BgpResult& r) {
    // Rows keyed by variable name so column order is irrelevant.
    std::vector<std::vector<std::pair<std::string, uint64_t>>> rows;
    for (const auto& row : r.rows) {
      std::vector<std::pair<std::string, uint64_t>> named;
      for (size_t c = 0; c < r.vars.size(); ++c) {
        named.emplace_back(r.vars[c], row[c]);
      }
      std::sort(named.begin(), named.end());
      rows.push_back(std::move(named));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(canonical(forward.value()), canonical(reversed.value()));
  EXPECT_EQ(forward.value().rows.size(), 3u);
}

TEST_F(BgpTest, FacadeExecutesBgp) {
  StoreOptions options;
  options.scheme = StorageScheme::kVerticalPartitioned;
  options.engine = EngineKind::kColumnStore;
  auto store = RdfStore::Open(data_, options);
  auto result = store->ExecuteBgp(
      {{Term::Var("x"), Term::Const(Id("<knows>")), Term::Var("y")}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 3u);
  EXPECT_GT(store->disk_bytes(), 0u);
  EXPECT_EQ(store->name(), "MonetDB vert. SO");
}

TEST_F(BgpTest, MatchCoversAllEightPatterns) {
  // Every backend must answer all 8 simple triple patterns of Figure 2.
  ColTripleBackend pso(data_, rdf::TripleOrder::kPSO);
  RowTripleBackend row(data_, rowstore::TripleRelation::PsoConfig());
  ColVerticalBackend vert(data_);

  const uint64_t s = Id("<alice>");
  const uint64_t p = Id("<knows>");
  const uint64_t o = Id("<bob>");
  for (int mask = 0; mask < 8; ++mask) {
    rdf::TriplePattern pattern;
    if (mask & 1) pattern.subject = s;
    if (mask & 2) pattern.property = p;
    if (mask & 4) pattern.object = o;
    auto a = pso.Match(pattern);
    auto b = row.Match(pattern);
    auto c = vert.Match(pattern);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::sort(c.begin(), c.end());
    EXPECT_EQ(a, b) << pattern.ToString();
    EXPECT_EQ(a, c) << pattern.ToString();
    EXPECT_FALSE(a.empty()) << pattern.ToString();
  }
}

}  // namespace
}  // namespace swan::core
