#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/col_backends.h"
#include "core/reference_backend.h"
#include "rdf/dataset.h"
#include "sparql/sparql.h"

namespace swan::sparql {
namespace {

class SparqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_.Add("<http://ex.org/alice>", "<http://ex.org/knows>",
              "<http://ex.org/bob>");
    data_.Add("<http://ex.org/bob>", "<http://ex.org/knows>",
              "<http://ex.org/carol>");
    data_.Add("<http://ex.org/alice>", "<http://ex.org/age>", "\"30\"");
    data_.Add("<http://ex.org/bob>", "<http://ex.org/age>", "\"30\"");
    data_.Add("<http://ex.org/carol>", "<http://ex.org/age>", "\"25\"");
    backend_ = std::make_unique<core::ColVerticalBackend>(data_);
  }

  Result<QueryOutput> Run(const std::string& query) {
    return Execute(*backend_, data_, query);
  }

  rdf::Dataset data_;
  std::unique_ptr<core::ColVerticalBackend> backend_;
};

TEST_F(SparqlTest, ParsesMinimalQuery) {
  auto parsed = Parse("SELECT ?s WHERE { ?s <p> ?o }");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().projection, (std::vector<std::string>{"s"}));
  ASSERT_EQ(parsed.value().patterns.size(), 1u);
  EXPECT_EQ(parsed.value().patterns[0].property.text, "<p>");
}

TEST_F(SparqlTest, ParsesStarDistinctAndLimit) {
  auto parsed =
      Parse("SELECT DISTINCT * WHERE { ?s ?p ?o . } LIMIT 5");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().distinct);
  EXPECT_TRUE(parsed.value().projection.empty());
  EXPECT_EQ(parsed.value().limit, 5u);
}

TEST_F(SparqlTest, KeywordsAreCaseInsensitive) {
  auto parsed = Parse("select ?s where { ?s ?p ?o } limit 1");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST_F(SparqlTest, ExpandsPrefixedNames) {
  auto parsed = Parse(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?x WHERE { ?x ex:knows ?y }");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().patterns[0].property.text, "<http://ex.org/knows>");
}

TEST_F(SparqlTest, RejectsUndeclaredPrefix) {
  auto parsed = Parse("SELECT ?x WHERE { ?x foaf:knows ?y }");
  EXPECT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("foaf"), std::string::npos);
}

TEST_F(SparqlTest, RejectsUnsupportedConstructs) {
  // FILTER/OPTIONAL/UNION are supported, but every group still needs at
  // least one required triple pattern, nesting is rejected, and UNION
  // branches must be braced.
  EXPECT_FALSE(Parse("SELECT ?x WHERE { FILTER(?x > 3) }").ok());
  EXPECT_FALSE(Parse("SELECT ?x WHERE { OPTIONAL { ?x <p> ?y } }").ok());
  EXPECT_FALSE(
      Parse("SELECT ?x WHERE { ?x <p> ?y . "
            "OPTIONAL { ?x <q> ?z . OPTIONAL { ?z <r> ?w } } }")
          .ok());
  EXPECT_FALSE(
      Parse("SELECT ?x WHERE { ?x <p> ?y UNION ?x <q> ?y }").ok());
}

TEST_F(SparqlTest, ParsesFilterOptionalUnionOffset) {
  auto parsed = Parse(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?x WHERE {\n"
      "  { ?x ex:knows ?y . FILTER(?y != ex:carol)\n"
      "    OPTIONAL { ?y ex:age ?a . FILTER(?a >= 30) } }\n"
      "  UNION { ?x ex:age ?v . FILTER(?v IN (\"25\", \"30\")) }\n"
      "} OFFSET 1 LIMIT 10");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().branches.size(), 2u);
  EXPECT_EQ(parsed.value().branches[0].required.filters.size(), 1u);
  ASSERT_EQ(parsed.value().branches[0].optionals.size(), 1u);
  EXPECT_EQ(parsed.value().branches[0].optionals[0].filters.size(), 1u);
  EXPECT_EQ(parsed.value().branches[1].required.filters[0].op, "IN");
  EXPECT_EQ(parsed.value().offset, 1u);
  EXPECT_EQ(parsed.value().limit, 10u);
}

TEST_F(SparqlTest, FilterComparesNumericLiterals) {
  // Ages are literals like "30"; numeric comparison reads their lexical
  // form as a number.
  auto result = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?who WHERE { ?who ex:age ?a . FILTER(?a < 30) }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0].text[0], "<http://ex.org/carol>");
}

TEST_F(SparqlTest, FilterNotEqualsAndIn) {
  auto ne = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?x WHERE { ?x ex:knows ?y . FILTER(?y != ex:bob) }");
  ASSERT_TRUE(ne.ok()) << ne.status().ToString();
  ASSERT_EQ(ne.value().rows.size(), 1u);
  EXPECT_EQ(ne.value().rows[0].text[0], "<http://ex.org/bob>");
  auto in = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?x WHERE { ?x ex:age ?v . FILTER(?v IN (\"25\")) }");
  ASSERT_TRUE(in.ok()) << in.status().ToString();
  ASSERT_EQ(in.value().rows.size(), 1u);
  EXPECT_EQ(in.value().rows[0].text[0], "<http://ex.org/carol>");
}

TEST_F(SparqlTest, FilterAgainstUnknownTermIsNotAnError) {
  // ex:nobody is not in the dictionary: equal to nothing, unequal to
  // every bound value.
  auto eq = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?x WHERE { ?x ex:knows ?y . FILTER(?y = ex:nobody) }");
  ASSERT_TRUE(eq.ok()) << eq.status().ToString();
  EXPECT_TRUE(eq.value().rows.empty());
  auto ne = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?x WHERE { ?x ex:knows ?y . FILTER(?y != ex:nobody) }");
  ASSERT_TRUE(ne.ok()) << ne.status().ToString();
  EXPECT_EQ(ne.value().rows.size(), 2u);
}

TEST_F(SparqlTest, OptionalPadsNonMatchesWithEmptyBinding) {
  data_.Add("<http://ex.org/dave>", "<http://ex.org/knows>",
            "<http://ex.org/alice>");  // dave has no age
  backend_ = std::make_unique<core::ColVerticalBackend>(data_);
  auto result = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?x ?a WHERE { ?x ex:knows ?y . "
      "OPTIONAL { ?x ex:age ?a } }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 3u);  // alice, bob, dave
  size_t padded = 0;
  for (const auto& row : result.value().rows) {
    if (row.text[1].empty()) {
      ++padded;
      EXPECT_EQ(row.ids[1], plan::kUnbound);
      EXPECT_EQ(row.text[0], "<http://ex.org/dave>");
    }
  }
  EXPECT_EQ(padded, 1u);
}

TEST_F(SparqlTest, UnionConcatenatesBranches) {
  auto result = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?x WHERE { { ?x ex:age \"25\" } UNION "
      "{ ?x ex:knows ex:carol } }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 2u);
  std::vector<std::string> names;
  for (const auto& row : result.value().rows) names.push_back(row.text[0]);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"<http://ex.org/bob>",
                                             "<http://ex.org/carol>"}));
}

TEST_F(SparqlTest, OffsetSkipsRows) {
  auto all = Run("SELECT * WHERE { ?s ?p ?o }");
  ASSERT_TRUE(all.ok());
  auto sliced = Run("SELECT * WHERE { ?s ?p ?o } OFFSET 2 LIMIT 2");
  ASSERT_TRUE(sliced.ok());
  ASSERT_EQ(sliced.value().rows.size(), 2u);
  EXPECT_EQ(sliced.value().rows[0].ids, all.value().rows[2].ids);
  auto past_end = Run("SELECT * WHERE { ?s ?p ?o } OFFSET 100");
  ASSERT_TRUE(past_end.ok());
  EXPECT_TRUE(past_end.value().rows.empty());
}

TEST_F(SparqlTest, ResultVarsFollowTextualOrder) {
  // Regression: the result header must list variables in order of first
  // textual appearance, not the planner's chosen join order.
  auto result = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT * WHERE { ?a ex:knows ?b . ?b ex:age ?v }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().vars, (std::vector<std::string>{"a", "b", "v"}));
}

TEST_F(SparqlTest, CanonicalTextUppercasesKeywordsOnly) {
  // Regression: lower/mixed-case keywords used to miss the serve-layer
  // result cache because canonicalization kept their casing.
  EXPECT_EQ(CanonicalQueryText("select distinct ?s where { ?s <p> ?o }"),
            CanonicalQueryText("SELECT DISTINCT ?s WHERE { ?s <p> ?o }"));
  EXPECT_EQ(CanonicalQueryText("select ?s where { ?s <p> ?o } limit 2"),
            "SELECT ?s WHERE { ?s <p> ?o } LIMIT 2");
  // IRIs, literals, prefixed names and variables stay verbatim even when
  // they spell a keyword.
  EXPECT_EQ(CanonicalQueryText("SELECT ?s WHERE { ?s <select> \"where\" }"),
            "SELECT ?s WHERE { ?s <select> \"where\" }");
  EXPECT_EQ(
      CanonicalQueryText("PREFIX where: <http://x/> SELECT ?limit WHERE "
                         "{ ?limit where:union ?o }"),
      "PREFIX where: <http://x/> SELECT ?limit WHERE "
      "{ ?limit where:union ?o }");
}

TEST_F(SparqlTest, ErrorsCarryPositions) {
  auto parsed = Parse("SELECT ?x\nWHERE ?x <p> ?y }");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("2:"), std::string::npos);
}

TEST_F(SparqlTest, RejectsLiteralSubject) {
  EXPECT_FALSE(Parse("SELECT ?x WHERE { \"lit\" <p> ?x }").ok());
}

TEST_F(SparqlTest, RejectsProjectionOfUnboundVariable) {
  auto result = Run("SELECT ?nope WHERE { ?s ?p ?o }");
  EXPECT_FALSE(result.ok());
}

TEST_F(SparqlTest, ExecutesSingleTriplePattern) {
  auto result = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?who WHERE { ?who ex:age \"30\" }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 2u);
  std::vector<std::string> names;
  for (const auto& row : result.value().rows) names.push_back(row.text[0]);
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"<http://ex.org/alice>",
                                             "<http://ex.org/bob>"}));
}

TEST_F(SparqlTest, ExecutesJoin) {
  auto result = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?a ?c WHERE { ?a ex:knows ?b . ?b ex:knows ?c . }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0].text[0], "<http://ex.org/alice>");
  EXPECT_EQ(result.value().rows[0].text[1], "<http://ex.org/carol>");
}

TEST_F(SparqlTest, DistinctDeduplicates) {
  // Without DISTINCT: one row per (x, y) age pairing with equal ages.
  auto plain = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?v WHERE { ?x ex:age ?v . ?y ex:age ?v . }");
  ASSERT_TRUE(plain.ok());
  auto distinct = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT DISTINCT ?v WHERE { ?x ex:age ?v . ?y ex:age ?v . }");
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(plain.value().rows.size(), 5u);     // 2x2 for "30", 1 for "25"
  EXPECT_EQ(distinct.value().rows.size(), 2u);  // "30", "25"
}

TEST_F(SparqlTest, LimitTruncates) {
  auto result = Run("SELECT * WHERE { ?s ?p ?o } LIMIT 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);
}

TEST_F(SparqlTest, UnknownConstantYieldsEmptyResult) {
  auto result = Run("SELECT ?s WHERE { ?s <http://ex.org/unseen> ?o }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().rows.empty());
  EXPECT_EQ(result.value().vars, (std::vector<std::string>{"s"}));
}

TEST_F(SparqlTest, SelectStarUsesFirstAppearanceOrder) {
  auto result = Run(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT * WHERE { ?a ex:knows ?b }");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().vars, (std::vector<std::string>{"a", "b"}));
}

TEST_F(SparqlTest, CommentsAreIgnored)  {
  auto result = Run(
      "# find friends\nSELECT ?a WHERE { ?a <http://ex.org/knows> ?b # inline\n }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.size(), 2u);
}

TEST_F(SparqlTest, SameAnswersOnEveryBackend) {
  core::ReferenceBackend reference(data_);
  const char* query =
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT DISTINCT ?x ?v WHERE { ?x ex:knows ?y . ?x ex:age ?v }";
  auto a = Execute(*backend_, data_, query);
  auto b = Execute(reference, data_, query);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto key = [](const QueryOutput& out) {
    std::vector<std::vector<uint64_t>> rows;
    for (const auto& row : out.rows) rows.push_back(row.ids);
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(key(a.value()), key(b.value()));
}

TEST_F(SparqlTest, BindResolvesConstantsAgainstDictionary) {
  auto parsed = Parse(
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?x WHERE { ?x ex:knows ex:bob }");
  ASSERT_TRUE(parsed.ok());
  bool unmatchable = true;
  const auto patterns = Bind(parsed.value(), data_, &unmatchable);
  EXPECT_FALSE(unmatchable);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_TRUE(patterns[0].subject.is_var);
  EXPECT_FALSE(patterns[0].property.is_var);
  EXPECT_EQ(patterns[0].property.id,
            data_.dict().Find("<http://ex.org/knows>").value());
  EXPECT_EQ(patterns[0].object.id,
            data_.dict().Find("<http://ex.org/bob>").value());
}

TEST_F(SparqlTest, BindFlagsUnknownConstants) {
  auto parsed = Parse("SELECT ?x WHERE { ?x <http://nowhere/p> ?y }");
  ASSERT_TRUE(parsed.ok());
  bool unmatchable = false;
  Bind(parsed.value(), data_, &unmatchable);
  EXPECT_TRUE(unmatchable);
}

TEST_F(SparqlTest, LanguageTaggedLiteralRoundTrips) {
  data_.Add("<http://ex.org/alice>", "<http://ex.org/motto>",
            "\"carpe diem\"@la");
  core::ReferenceBackend reference(data_);
  auto result = Execute(
      reference, data_,
      "SELECT ?s WHERE { ?s <http://ex.org/motto> \"carpe diem\"@la }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.size(), 1u);
}

}  // namespace
}  // namespace swan::sparql
