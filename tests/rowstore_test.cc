#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "rowstore/stats.h"
#include "rowstore/triple_relation.h"
#include "rowstore/vertical_relation.h"

namespace swan::rowstore {
namespace {

struct RowFixture {
  storage::SimulatedDisk disk;  // swan-lint: allow(node-disk)
  storage::BufferPool pool{&disk, 1 << 14};  // swan-lint: allow(node-disk)
};

std::vector<rdf::Triple> SmallGraph() {
  // Properties 100/101 are frequent; 200 and 300 are rare. Big enough that
  // the page-based cost model separates the access paths.
  std::vector<rdf::Triple> triples;
  for (uint64_t s = 0; s < 60000; ++s) triples.push_back({s, 100, s % 50});
  for (uint64_t s = 0; s < 40000; ++s) triples.push_back({s, 101, s % 31});
  for (uint64_t s = 0; s < 10; ++s) triples.push_back({s, 200, 7});
  triples.push_back({5, 300, 9});
  return triples;
}

std::vector<rdf::Triple> Collect(TripleRelation::Scan scan) {
  std::vector<rdf::Triple> out;
  for (; scan.Valid(); scan.Next()) out.push_back(scan.value());
  return out;
}

std::vector<rdf::Triple> Collect(VerticalRelation::Scan scan) {
  std::vector<rdf::Triple> out;
  for (; scan.Valid(); scan.Next()) out.push_back(scan.value());
  return out;
}

TEST(TripleStatsTest, CountsComponents) {
  const auto stats = TripleStats::Compute(SmallGraph());
  EXPECT_EQ(stats.total_triples, 100011u);
  EXPECT_EQ(stats.CountOf(stats.property_count, 100), 60000u);
  EXPECT_EQ(stats.CountOf(stats.property_count, 200), 10u);
  EXPECT_EQ(stats.CountOf(stats.property_count, 300), 1u);
  EXPECT_EQ(stats.CountOf(stats.property_distinct_objects, 100), 50u);
}

TEST(TripleStatsTest, EstimateUsesIndependence) {
  const auto stats = TripleStats::Compute(SmallGraph());
  rdf::TriplePattern pattern;
  pattern.property = 100;
  EXPECT_NEAR(stats.EstimateMatches(pattern), 60000.0, 1e-6);
  pattern.object = 7;
  const double est = stats.EstimateMatches(pattern);
  EXPECT_GT(est, 0.0);
  EXPECT_LT(est, 60000.0);
}

TEST(TripleStatsTest, UnknownConstantEstimatesZero) {
  const auto stats = TripleStats::Compute(SmallGraph());
  rdf::TriplePattern pattern;
  pattern.property = 12345;
  EXPECT_DOUBLE_EQ(stats.EstimateMatches(pattern), 0.0);
}

class TripleRelationConfigTest : public ::testing::TestWithParam<bool> {
 protected:
  TripleRelation::Config GetConfig() const {
    return GetParam() ? TripleRelation::PsoConfig()
                      : TripleRelation::SpoConfig();
  }
};

TEST_P(TripleRelationConfigTest, FullScanReturnsEverything) {
  RowFixture f;
  TripleRelation rel(&f.pool, &f.disk, GetConfig());
  const auto triples = SmallGraph();
  rel.Load(triples);
  EXPECT_EQ(rel.size(), triples.size());
  auto all = Collect(rel.Open(rdf::TriplePattern{}));
  EXPECT_EQ(all.size(), triples.size());
}

TEST_P(TripleRelationConfigTest, PatternScansMatchOracle) {
  RowFixture f;
  TripleRelation rel(&f.pool, &f.disk, GetConfig());
  const auto triples = SmallGraph();
  rel.Load(triples);

  std::vector<rdf::TriplePattern> patterns;
  {
    rdf::TriplePattern p;
    p.property = 100;
    patterns.push_back(p);
    p.object = 7;
    patterns.push_back(p);
    p = {};
    p.subject = 5;
    patterns.push_back(p);
    p = {};
    p.property = 300;
    p.object = 9;
    patterns.push_back(p);
    p = {};
    p.object = 7;
    patterns.push_back(p);
    p = {};
    p.subject = 5;
    p.property = 200;
    p.object = 7;
    patterns.push_back(p);
  }
  for (const auto& pattern : patterns) {
    std::vector<rdf::Triple> expected;
    for (const auto& t : triples) {
      if (pattern.Matches(t)) expected.push_back(t);
    }
    auto got = Collect(rel.Open(pattern));
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << pattern.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, TripleRelationConfigTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "PSO" : "SPO";
                         });

TEST(TripleRelationTest, PsoUsesClusteredPrefixForPropertyScan) {
  RowFixture f;
  TripleRelation rel(&f.pool, &f.disk, TripleRelation::PsoConfig());
  rel.Load(SmallGraph());
  rdf::TriplePattern pattern;
  pattern.property = 100;
  const auto path = rel.ChoosePath(pattern);
  EXPECT_EQ(path.kind, TripleRelation::AccessPath::Kind::kClusteredPrefix);
  EXPECT_EQ(path.order, rdf::TripleOrder::kPSO);
}

TEST(TripleRelationTest, SpoFallsBackToFullScanForFrequentProperty) {
  RowFixture f;
  TripleRelation rel(&f.pool, &f.disk, TripleRelation::SpoConfig());
  rel.Load(SmallGraph());
  rdf::TriplePattern pattern;
  pattern.property = 100;  // matches ~60% of the table
  const auto path = rel.ChoosePath(pattern);
  EXPECT_EQ(path.kind, TripleRelation::AccessPath::Kind::kFullScan);
}

TEST(TripleRelationTest, SpoUsesSecondaryForRarePredicate) {
  RowFixture f;
  TripleRelation rel(&f.pool, &f.disk, TripleRelation::SpoConfig());
  rel.Load(SmallGraph());
  rdf::TriplePattern pattern;
  pattern.property = 300;  // 1 row
  const auto path = rel.ChoosePath(pattern);
  EXPECT_EQ(path.kind, TripleRelation::AccessPath::Kind::kSecondaryPrefix);
  EXPECT_EQ(path.order, rdf::TripleOrder::kPOS);
}

TEST(TripleRelationTest, SubjectProbeUsesIndexInBothConfigs) {
  RowFixture f;
  TripleRelation pso(&f.pool, &f.disk, TripleRelation::PsoConfig());
  pso.Load(SmallGraph());
  rdf::TriplePattern pattern;
  pattern.subject = 5;
  const auto path = pso.ChoosePath(pattern);
  EXPECT_NE(path.kind, TripleRelation::AccessPath::Kind::kFullScan);
}

TEST(TripleRelationTest, SecondaryScanChargesRowFetches) {
  RowFixture f;
  TripleRelation rel(&f.pool, &f.disk, TripleRelation::SpoConfig());
  rel.Load(SmallGraph());
  f.pool.Clear();
  f.disk.ResetStats();
  rdf::TriplePattern pattern;
  pattern.property = 200;  // 10 rows via POS secondary
  const auto got = Collect(rel.Open(pattern));
  EXPECT_EQ(got.size(), 10u);
  // Ten row fetches -> at least ten random descents' worth of pages.
  EXPECT_GT(f.disk.total_seeks(), 5u);
}

TEST(VerticalRelationTest, PartitionScansMatchOracle) {
  RowFixture f;
  VerticalRelation rel(&f.pool, &f.disk);
  const auto triples = SmallGraph();
  rel.Load(triples);
  ASSERT_EQ(rel.properties().size(), 4u);
  EXPECT_EQ(rel.PartitionSize(100), 60000u);
  EXPECT_EQ(rel.PartitionSize(999), 0u);

  struct Case {
    uint64_t property;
    std::optional<uint64_t> s, o;
  };
  for (const Case& c :
       {Case{100, std::nullopt, std::nullopt}, Case{100, 5, std::nullopt},
        Case{100, std::nullopt, 7}, Case{200, std::nullopt, 7},
        Case{300, 5, 9}, Case{100, 5, 5}}) {
    std::vector<rdf::Triple> expected;
    for (const auto& t : triples) {
      if (t.property == c.property && (!c.s || t.subject == *c.s) &&
          (!c.o || t.object == *c.o)) {
        expected.push_back(t);
      }
    }
    auto got = Collect(rel.OpenPartition(c.property, c.s, c.o));
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(VerticalRelationTest, MissingPartitionScanIsInvalid) {
  RowFixture f;
  VerticalRelation rel(&f.pool, &f.disk);
  rel.Load(SmallGraph());
  EXPECT_FALSE(rel.OpenPartition(999, std::nullopt, std::nullopt).Valid());
}

TEST(VerticalRelationTest, RandomizedEquivalenceWithTripleRelation) {
  Rng rng(33);
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 5000; ++i) {
    triples.push_back({rng.Uniform(300), rng.Uniform(12), rng.Uniform(100)});
  }
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());

  RowFixture f;
  TripleRelation triple(&f.pool, &f.disk, TripleRelation::PsoConfig());
  triple.Load(triples);
  VerticalRelation vertical(&f.pool, &f.disk);
  vertical.Load(triples);

  for (int round = 0; round < 30; ++round) {
    rdf::TriplePattern pattern;
    pattern.property = rng.Uniform(12);
    if (rng.Chance(0.5)) pattern.subject = rng.Uniform(300);
    if (rng.Chance(0.5)) pattern.object = rng.Uniform(100);
    auto a = Collect(triple.Open(pattern));
    auto b = Collect(vertical.OpenPartition(*pattern.property, pattern.subject,
                                            pattern.object));
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << pattern.ToString();
  }
}

TEST(VerticalRelationTest, DiskBytesCoverAllPartitions) {
  RowFixture f;
  VerticalRelation rel(&f.pool, &f.disk);
  rel.Load(SmallGraph());
  // 3 partitions x (clustered + secondary), at least one page each.
  EXPECT_GE(rel.disk_bytes(), 6 * storage::kPageSize);
}

}  // namespace
}  // namespace swan::rowstore
