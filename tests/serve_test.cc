// The serving layer: script parsing, the snapshot-keyed result cache
// (LRU accounting, invalidation, audit walker), the fairness-aware
// admission controller, and the QueryService determinism contract —
// identical completion streams at any worker count, queue-full
// backpressure, and cache coherence across the store's write path.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "bench_support/barton_generator.h"
#include "core/store.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "serve/result_cache.h"
#include "serve/script.h"
#include "serve/service.h"
#include "serve/session.h"
#include "sparql/sparql.h"

namespace swan::serve {
namespace {

// ---------------------------------------------------------------------------
// Script parser.

TEST(ScriptTest, ParsesSessionsOptionsAndCommands) {
  const auto result = ParseScript(
      "# comment\n"
      "session alice priority=2 threads=4\n"
      "session bob\n"
      "bench alice repeat=3 q5\n"
      "query bob SELECT ?s WHERE { ?s <type> <Text> }\n"
      "insert alice <s> <p> \"a literal with spaces\"\n"
      "delete bob <s> <p> <o>\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& script = result.value();
  ASSERT_EQ(script.size(), 6u);

  EXPECT_EQ(script[0].kind, ScriptCommand::Kind::kSession);
  EXPECT_EQ(script[0].session, "alice");
  EXPECT_EQ(script[0].priority, 2);
  EXPECT_EQ(script[0].threads, 4);
  EXPECT_EQ(script[1].priority, 0);

  EXPECT_EQ(script[2].kind, ScriptCommand::Kind::kBench);
  EXPECT_EQ(script[2].repeat, 3);
  EXPECT_EQ(script[2].bench_id, core::QueryId::kQ5);

  EXPECT_EQ(script[3].kind, ScriptCommand::Kind::kSparql);
  EXPECT_EQ(script[3].text, "SELECT ?s WHERE { ?s <type> <Text> }");

  EXPECT_EQ(script[4].kind, ScriptCommand::Kind::kInsert);
  EXPECT_EQ(script[4].terms[2], "\"a literal with spaces\"");
  EXPECT_EQ(script[5].kind, ScriptCommand::Kind::kDelete);
}

TEST(ScriptTest, ErrorsCarryLineNumbers) {
  const auto unknown = ParseScript("session a\nfrobnicate a q1\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().ToString().find("line 2"), std::string::npos)
      << unknown.status().ToString();

  EXPECT_FALSE(ParseScript("bench alice nosuchquery\n").ok());
  EXPECT_FALSE(ParseScript("session a repeat=2\n").ok());  // wrong option
  EXPECT_FALSE(ParseScript("insert a <s> <p>\n").ok());    // missing term
  EXPECT_FALSE(ParseScript("bench a repeat=zero q1\n").ok());
}

TEST(ScriptTest, QuotedLiteralsAreNeverOptions) {
  // A literal object that contains '=' must not be parsed as key=value.
  const auto result = ParseScript("session a\ninsert a <s> <p> \"k=v\"\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value()[1].terms[2], "\"k=v\"");
}

TEST(ScriptTest, CanonicalQueryTextCollapsesLexicalNoise) {
  const std::string canonical =
      sparql::CanonicalQueryText("SELECT ?s WHERE { ?s <type> <Text> }");
  EXPECT_EQ(sparql::CanonicalQueryText(
                "  SELECT   ?s\nWHERE {\n  ?s <type> <Text> }  # trailing\n"),
            canonical);
  // Whitespace inside quoted literals is load-bearing.
  EXPECT_NE(sparql::CanonicalQueryText("SELECT ?s WHERE { ?s <p> \"a  b\" }"),
            sparql::CanonicalQueryText("SELECT ?s WHERE { ?s <p> \"a b\" }"));
}

// ---------------------------------------------------------------------------
// Result cache.

ResultPayload MakePayload(uint64_t tag, size_t rows) {
  ResultPayload payload;
  payload.column_names = {"s"};
  for (size_t i = 0; i < rows; ++i) payload.rows.push_back({tag, i});
  return payload;
}

TEST(ResultCacheTest, HitMissAndCounters) {
  obs::MetricsRegistry metrics;
  ResultCache cache({}, &metrics);
  const ResultPayload payload = MakePayload(7, 3);

  EXPECT_FALSE(cache.Get("sparql:q", 1).has_value());
  cache.Put("sparql:q", 1, payload);
  const auto hit = cache.Get("sparql:q", 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload);
  // The same text at a different snapshot version misses by construction.
  EXPECT_FALSE(cache.Get("sparql:q", 2).has_value());

  const auto snap = metrics.Snap();
  EXPECT_EQ(snap.counters.at("serve.cache.hits"), 1u);
  EXPECT_EQ(snap.counters.at("serve.cache.misses"), 2u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  obs::MetricsRegistry metrics;
  const ResultPayload payload = MakePayload(1, 8);
  const uint64_t entry_bytes = std::string("k0@1").size() +
                               payload.ApproxBytes();
  CacheOptions options;
  options.max_bytes = static_cast<size_t>(entry_bytes) * 2;
  ResultCache cache(options, &metrics);

  cache.Put("k0", 1, payload);
  cache.Put("k1", 1, payload);
  EXPECT_EQ(cache.entries(), 2u);
  // Touch k0 so k1 is the LRU victim of the next insertion.
  EXPECT_TRUE(cache.Get("k0", 1).has_value());
  cache.Put("k2", 1, payload);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_TRUE(cache.Get("k0", 1).has_value());
  EXPECT_FALSE(cache.Get("k1", 1).has_value());
  EXPECT_TRUE(cache.Get("k2", 1).has_value());
  EXPECT_EQ(metrics.Snap().counters.at("serve.cache.evictions"), 1u);
  EXPECT_LE(cache.bytes(), options.max_bytes);
}

TEST(ResultCacheTest, OversizedEntryIsNotCached) {
  obs::MetricsRegistry metrics;
  CacheOptions options;
  options.max_bytes = 16;
  ResultCache cache(options, &metrics);
  cache.Put("big", 1, MakePayload(1, 100));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCacheTest, InvalidateOlderThanDropsStaleEntries) {
  obs::MetricsRegistry metrics;
  ResultCache cache({}, &metrics);
  cache.Put("a", 1, MakePayload(1, 2));
  cache.Put("b", 2, MakePayload(2, 2));
  cache.Put("c", 3, MakePayload(3, 2));
  cache.InvalidateOlderThan(3);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_FALSE(cache.Get("a", 1).has_value());
  EXPECT_FALSE(cache.Get("b", 2).has_value());
  EXPECT_TRUE(cache.Get("c", 3).has_value());
  EXPECT_EQ(metrics.Snap().counters.at("serve.cache.invalidations"), 2u);
}

TEST(ResultCacheTest, AuditCleanThenFlagsStaleEntries) {
  obs::MetricsRegistry metrics;
  ResultCache cache({}, &metrics);
  cache.Put("a", 5, MakePayload(1, 2));
  cache.Put("b", 5, MakePayload(2, 2));

  audit::AuditReport clean;
  cache.AuditInto(audit::AuditLevel::kFull, &clean, 5);
  EXPECT_TRUE(clean.ok()) << clean.ToString();

  // The service invalidates eagerly on every write, so an entry older
  // than the store's current version means the invalidation hook was
  // skipped — an audit failure.
  audit::AuditReport stale;
  cache.AuditInto(audit::AuditLevel::kFull, &stale, 6);
  EXPECT_FALSE(stale.ok());
  EXPECT_NE(stale.ToString().find("stale"), std::string::npos)
      << stale.ToString();
}

// ---------------------------------------------------------------------------
// Admission controller.

TEST(AdmissionTest, RejectsWithOverloadedWhenFull) {
  SessionManager sessions;
  Session* s = sessions.Open("a", 0, 1);
  AdmissionOptions options;
  options.max_queue = 2;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.Admit(s, Request{}, 1).ok());
  EXPECT_TRUE(admission.Admit(s, Request{}, 2).ok());
  const Status st = admission.Admit(s, Request{}, 3);
  EXPECT_EQ(st.code(), StatusCode::kOverloaded);
  // Dispatching frees capacity again.
  admission.PickNext();
  EXPECT_TRUE(admission.Admit(s, Request{}, 3).ok());
}

TEST(AdmissionTest, HotClientCannotStarveOthers) {
  SessionManager sessions;
  Session* hot = sessions.Open("hot", 0, 1);
  Session* cold = sessions.Open("cold", 0, 1);
  AdmissionController admission;
  uint64_t ticket = 1;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(admission.Admit(hot, Request{}, ticket++).ok());
  }
  ASSERT_TRUE(admission.Admit(cold, Request{}, ticket++).ok());
  ASSERT_TRUE(admission.Admit(cold, Request{}, ticket++).ok());

  // The fairness term interleaves the single-request client round-robin
  // with the hot one instead of running all six hot requests first.
  std::vector<std::string> order;
  while (admission.HasWork()) {
    order.push_back(admission.PickNext().session->label());
  }
  const std::vector<std::string> expected = {"hot", "cold", "hot", "cold",
                                             "hot", "hot", "hot", "hot"};
  EXPECT_EQ(order, expected);
}

TEST(AdmissionTest, PriorityBeatsFairness) {
  SessionManager sessions;
  Session* low = sessions.Open("low", 0, 1);
  Session* high = sessions.Open("high", 3, 1);
  AdmissionController admission;
  ASSERT_TRUE(admission.Admit(low, Request{}, 1).ok());
  ASSERT_TRUE(admission.Admit(low, Request{}, 2).ok());
  ASSERT_TRUE(admission.Admit(high, Request{}, 3).ok());
  ASSERT_TRUE(admission.Admit(high, Request{}, 4).ok());
  std::vector<std::string> order;
  while (admission.HasWork()) {
    order.push_back(admission.PickNext().session->label());
  }
  const std::vector<std::string> expected = {"high", "high", "low", "low"};
  EXPECT_EQ(order, expected);

  // A per-request priority offset lifts one session's head request over
  // another session's (within a session the queue stays strictly FIFO).
  Session* other = sessions.Open("other", 0, 1);
  Request urgent;
  urgent.priority = 10;
  ASSERT_TRUE(admission.Admit(low, Request{}, 5).ok());
  ASSERT_TRUE(admission.Admit(other, urgent, 6).ok());
  EXPECT_EQ(admission.PickNext().ticket, 6u);
  EXPECT_EQ(admission.PickNext().ticket, 5u);
}

TEST(AdmissionTest, FifoWithinSession) {
  SessionManager sessions;
  Session* s = sessions.Open("a", 0, 1);
  AdmissionController admission;
  for (uint64_t t = 1; t <= 4; ++t) {
    ASSERT_TRUE(admission.Admit(s, Request{}, t).ok());
  }
  for (uint64_t t = 1; t <= 4; ++t) EXPECT_EQ(admission.PickNext().ticket, t);
}

// ---------------------------------------------------------------------------
// QueryService end to end.

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_support::BartonConfig config;
    config.target_triples = 4000;
    barton_ = bench_support::GenerateBarton(config);
    ctx_ = bench_support::MakeBartonContext(barton_.dataset, 28);
  }

  std::unique_ptr<core::RdfStore> OpenStore() {
    return core::RdfStore::Open(barton_.dataset, core::StoreOptions{});
  }

  static std::vector<ScriptCommand> Mix() {
    const auto result = ParseScript(
        "session alice\n"
        "session bob\n"
        "bench alice q1\n"
        "bench alice repeat=2 q5\n"
        "query bob SELECT ?s WHERE { ?s <type> <Text> } LIMIT 10\n"
        "query bob repeat=2 SELECT ?s ?o WHERE { ?s <origin> ?o } LIMIT 5\n"
        "bench bob q2\n");
    SWAN_CHECK(result.ok());
    return result.value();
  }

  bench_support::BartonDataset barton_;
  std::optional<core::QueryContext> ctx_;
};

TEST_F(ServeTest, CompletionStreamIsIdenticalAtAnyWorkerCount) {
  std::vector<std::vector<Completion>> streams;
  for (const int workers : {1, 2, 8}) {
    auto store = OpenStore();
    ServiceOptions options;
    options.workers = workers;
    QueryService service(store.get(), ctx_, options);
    auto run = RunScript(&service, Mix());
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(run.value().rejected, 0u);
    streams.push_back(std::move(run.value().completions));
    service.Stop();
  }
  ASSERT_EQ(streams[0].size(), 7u);
  for (size_t w = 1; w < streams.size(); ++w) {
    ASSERT_EQ(streams[w].size(), streams[0].size());
    for (size_t i = 0; i < streams[0].size(); ++i) {
      const Completion& a = streams[0][i];
      const Completion& b = streams[w][i];
      EXPECT_EQ(a.ticket, b.ticket);
      EXPECT_EQ(a.dispatch_index, b.dispatch_index);
      EXPECT_EQ(a.session_id, b.session_id);
      EXPECT_EQ(a.cache_hit, b.cache_hit);
      EXPECT_EQ(a.snapshot_version, b.snapshot_version);
      EXPECT_TRUE(a.result == b.result) << "rows diverged at index " << i;
    }
  }
}

TEST_F(ServeTest, RepeatedQueriesHitTheCacheWithinOnePass) {
  auto store = OpenStore();
  QueryService service(store.get(), ctx_, {});
  auto run = RunScript(&service, Mix());
  ASSERT_TRUE(run.ok());
  // q5 and the <origin> SPARQL query each run twice: second occurrence
  // hits; results still match the executed occurrence bit for bit.
  uint64_t hits = 0;
  for (const auto& c : run.value().completions) {
    if (c.cache_hit) ++hits;
  }
  EXPECT_EQ(hits, 2u);
  EXPECT_EQ(service.metrics().Snap().counters.at("serve.cache.hits"), 2u);
  service.Stop();
}

TEST_F(ServeTest, WarmReplayHitsEverywhereAndMatches) {
  auto store = OpenStore();
  QueryService service(store.get(), ctx_, {});
  auto cold = RunScript(&service, Mix());
  ASSERT_TRUE(cold.ok());
  auto warm = RunScript(&service, Mix());
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm.value().completions.size(), cold.value().completions.size());
  for (size_t i = 0; i < warm.value().completions.size(); ++i) {
    const Completion& c = cold.value().completions[i];
    const Completion& w = warm.value().completions[i];
    EXPECT_TRUE(w.cache_hit) << "warm completion " << i;
    EXPECT_TRUE(w.result == c.result);
    EXPECT_EQ(w.session_id, c.session_id);
  }
  service.Stop();
}

TEST_F(ServeTest, SubmitRejectsWithOverloadedWhenQueueIsFull) {
  auto store = OpenStore();
  ServiceOptions options;
  options.max_queue = 3;
  QueryService service(store.get(), ctx_, options);
  Session* session = service.OpenSession("a").value();
  Request request;
  request.kind = Request::Kind::kBench;
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(service.Submit(session, request).ok());
  }
  const auto overflow = service.Submit(session, request);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kOverloaded);
  service.Start();
  service.Drain();
  // Backpressure is transient: capacity returns once the queue drains,
  // and rejected tickets were never handed out (ids stay gapless).
  const auto retry = service.Submit(session, request);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry.value(), 4u);
  service.Drain();
  EXPECT_EQ(service.TakeCompletions().size(), 4u);
  service.Stop();
}

TEST_F(ServeTest, DuplicateSessionLabelFails) {
  auto store = OpenStore();
  QueryService service(store.get(), ctx_, {});
  ASSERT_TRUE(service.OpenSession("a").ok());
  const auto dup = service.OpenSession("a");
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  EXPECT_NE(service.FindSession("a"), nullptr);
  EXPECT_EQ(service.FindSession("b"), nullptr);
  service.Stop();
}

TEST_F(ServeTest, CacheCoherenceAcrossTheWritePath) {
  auto store = OpenStore();
  QueryService service(store.get(), ctx_, {});

  const auto script = ParseScript(
      "session a\n"
      "query a SELECT ?s WHERE { ?s <type> <Text> } LIMIT 3\n");
  ASSERT_TRUE(script.ok());
  auto before = RunScript(&service, script.value());
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.value().completions[0].cache_hit);

  // A write through the service bumps the snapshot and invalidates; the
  // same query afterwards must execute again, not replay the old rows.
  // (Insert terms are dictionary spellings: intern the new subject first.)
  barton_.dataset.dict().Intern("<coherence-subject>");
  const uint64_t version_before = store->snapshot_version();
  const auto update = ParseScript(
      "session a\n"
      "insert a <coherence-subject> <type> <Text>\n"
      "query a SELECT ?s WHERE { ?s <type> <Text> } LIMIT 3\n");
  ASSERT_TRUE(update.ok());
  auto after = RunScript(&service, update.value());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().completions.size(), 2u);
  const Completion& write = after.value().completions[0];
  const Completion& requery = after.value().completions[1];
  EXPECT_TRUE(write.status.ok());
  EXPECT_EQ(write.snapshot_version, version_before + 1);
  EXPECT_FALSE(requery.cache_hit);
  EXPECT_EQ(service.cache()->entries(), 1u);  // old entry invalidated

  // The registered audit hook checks the cache against the live store.
  const auto report = store->Audit(audit::AuditLevel::kQuick);
  EXPECT_TRUE(report.ok()) << report.ToString();
  service.Stop();
}

TEST_F(ServeTest, PerSessionTracesLandOnDistinctTracks) {
  auto store = OpenStore();
  ServiceOptions options;
  options.trace = true;
  QueryService service(store.get(), ctx_, options);
  auto run = RunScript(&service, Mix());
  ASSERT_TRUE(run.ok());
  const auto tracks = service.SessionTracks();
  // One track per executed (non-hit) request; both sessions appear.
  ASSERT_EQ(tracks.size(), 5u);
  bool saw_alice = false, saw_bob = false;
  for (const auto& track : tracks) {
    ASSERT_NE(track.session, nullptr);
    if (track.label == "s1:alice") saw_alice = true;
    if (track.label == "s2:bob") saw_bob = true;
  }
  EXPECT_TRUE(saw_alice);
  EXPECT_TRUE(saw_bob);
  const std::string json = obs::ChromeTraceJsonMulti(tracks);
  EXPECT_NE(json.find("s1:alice"), std::string::npos);
  EXPECT_NE(json.find("s2:bob"), std::string::npos);
  service.Stop();
}

TEST_F(ServeTest, ModelScheduleComputesDeterministicPercentiles) {
  std::vector<Completion> completions(4);
  for (size_t i = 0; i < completions.size(); ++i) {
    completions[i].dispatch_index = i;
    completions[i].service_seconds = 0.1 * static_cast<double>(i + 1);
  }
  completions[3].cache_hit = true;

  // One server: FCFS latencies are the prefix sums 0.1 0.3 0.6 1.0.
  const LatencyStats serial = ModelSchedule(completions, 1);
  EXPECT_EQ(serial.requests, 4u);
  EXPECT_EQ(serial.cache_hits, 1u);
  EXPECT_NEAR(serial.makespan_seconds, 1.0, 1e-9);
  EXPECT_NEAR(serial.throughput_per_second, 4.0, 1e-6);
  EXPECT_NEAR(serial.p50_seconds, 0.3, 1e-9);
  EXPECT_NEAR(serial.p99_seconds, 1.0, 1e-9);

  // Two servers: 0.1 and 0.2 start at once; 0.3 follows the first free.
  const LatencyStats wide = ModelSchedule(completions, 2);
  EXPECT_NEAR(wide.makespan_seconds, 0.6, 1e-9);
  EXPECT_NEAR(wide.p99_seconds, 0.6, 1e-9);
}

}  // namespace
}  // namespace swan::serve
