// Scale-out equivalence and model tests: the sharded backend must return
// the same row bags as the single-node reference for all 12 benchmark
// queries at every node count and thread width; placement must be a pure
// function of the data; network cost must be visible in the counters and
// obey the documented lock order (network above disk).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_support/barton_generator.h"
#include "bench_support/query_bgps.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/reference_backend.h"
#include "core/store.h"
#include "net/network_model.h"
#include "net/topology.h"
#include "shard/placement.h"
#include "shard/sharded_backend.h"

namespace swan {
namespace {

using bench_support::BartonConfig;
using bench_support::GenerateBarton;
using bench_support::MakeBartonContext;
using core::QueryId;

struct ScaleCombo {
  int nodes;
  bool vertical;
};

class ScaleoutEquivalenceTest : public ::testing::TestWithParam<ScaleCombo> {};

TEST_P(ScaleoutEquivalenceTest, AllQueriesMatchReferenceAtAllWidths) {
  BartonConfig config;
  config.target_triples = 12000;
  config.seed = 7;
  const auto barton = GenerateBarton(config);
  const core::QueryContext ctx = MakeBartonContext(barton.dataset, 28);

  core::ReferenceBackend reference(barton.dataset);
  shard::ShardOptions options;
  options.nodes = GetParam().nodes;
  options.vertical = GetParam().vertical;
  shard::ShardedBackend sharded(barton.dataset, options);

  for (QueryId id : core::AllQueries()) {
    core::QueryResult expected = reference.Run(id, ctx);
    for (int threads : {1, 8}) {
      exec::ExecContext ectx(threads);
      core::QueryResult got = sharded.Run(id, ctx, ectx);
      EXPECT_TRUE(expected.SameRows(got))
          << sharded.name() << " diverged on " << ToString(id) << " at "
          << threads << " thread(s)";
    }
    // Cold runs see the same rows.
    sharded.DropCaches();
    core::QueryResult cold = sharded.Run(id, ctx);
    EXPECT_TRUE(expected.SameRows(cold)) << "cold " << ToString(id);
  }
}

TEST_P(ScaleoutEquivalenceTest, MatchAgreesWithReference) {
  BartonConfig config;
  config.target_triples = 8000;
  const auto barton = GenerateBarton(config);
  const core::QueryContext ctx = MakeBartonContext(barton.dataset, 28);
  const core::Vocabulary& v = ctx.vocab();

  core::ReferenceBackend reference(barton.dataset);
  shard::ShardOptions options;
  options.nodes = GetParam().nodes;
  options.vertical = GetParam().vertical;
  shard::ShardedBackend sharded(barton.dataset, options);

  const uint64_t some_subject = barton.dataset.triples().front().subject;
  const std::vector<rdf::TriplePattern> patterns = {
      {{}, v.type, v.text},        // (?s, p, o)
      {{}, v.type, {}},            // (?s, p, ?o)
      {some_subject, {}, {}},      // (s, ?p, ?o)
      {some_subject, v.type, {}},  // (s, p, ?o)
      {{}, {}, v.text},            // (?s, ?p, o)
  };
  for (const rdf::TriplePattern& pattern : patterns) {
    std::vector<rdf::Triple> expected = reference.Match(pattern);
    std::vector<rdf::Triple> got = sharded.Match(pattern);
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(expected, got) << pattern.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    NodesAndEngines, ScaleoutEquivalenceTest,
    ::testing::Values(ScaleCombo{1, true}, ScaleCombo{2, true},
                      ScaleCombo{4, true}, ScaleCombo{1, false},
                      ScaleCombo{2, false}, ScaleCombo{4, false}),
    [](const ::testing::TestParamInfo<ScaleCombo>& info) {
      return std::string(info.param.vertical ? "vert" : "triple") + "_n" +
             std::to_string(info.param.nodes);
    });

TEST(PlacementTest, DeterministicAndBalanced) {
  BartonConfig config;
  config.target_triples = 12000;
  const auto barton = GenerateBarton(config);

  shard::Placement a(barton.dataset.triples(), {4, 2.0});
  shard::Placement b(barton.dataset.triples(), {4, 2.0});
  EXPECT_EQ(a.node_loads(), b.node_loads());
  EXPECT_EQ(a.split_properties(), b.split_properties());

  // Every node carries a nontrivial share (greedy bin-pack + sub-split).
  uint64_t total = 0;
  for (uint64_t load : a.node_loads()) total += load;
  EXPECT_EQ(total, barton.dataset.triples().size());
  for (uint64_t load : a.node_loads()) {
    EXPECT_GT(load, total / 16) << "a node is nearly empty";
  }

  // Placement agrees with itself triple by triple.
  for (const rdf::Triple& t : barton.dataset.triples()) {
    const int home = a.HomeNode(t.property);
    if (home >= 0) {
      EXPECT_EQ(a.NodeOf(t), home);
    } else {
      EXPECT_EQ(a.NodeOf(t), a.SubjectNode(t.subject));
    }
  }
}

TEST(ScaleoutNetworkTest, CrossPartitionQueriesChargeTheNetwork) {
  BartonConfig config;
  config.target_triples = 8000;
  const auto barton = GenerateBarton(config);
  const core::QueryContext ctx = MakeBartonContext(barton.dataset, 28);

  shard::ShardOptions options;
  options.nodes = 4;
  shard::ShardedBackend sharded(barton.dataset, options);

  exec::ExecContext ectx(1);
  (void)sharded.Run(QueryId::kQ5, ctx, ectx);

  EXPECT_GT(sharded.TotalNetBytes(), 0u);
  EXPECT_GT(sharded.TotalNetMessages(), 0u);
  EXPECT_GT(sharded.NetSeconds(), 0.0);
  const auto snap = ectx.counters().Snap();
  EXPECT_GT(snap.net_bytes, 0u);
  EXPECT_GT(snap.net_messages, 0u);

  // The virtual clock folds network time on top of the slowest node.
  EXPECT_GE(sharded.VirtualSeconds(),
            sharded.topology().MaxNodeSeconds() + sharded.NetSeconds() - 1e-12);

  // Per-link stats are consistent with the totals.
  uint64_t link_bytes = 0;
  for (const net::LinkStats& link : sharded.topology().network().PerLink()) {
    EXPECT_NE(link.src, link.dst) << "local transfers must not be charged";
    link_bytes += link.bytes;
  }
  EXPECT_EQ(link_bytes, sharded.TotalNetBytes());
}

TEST(ScaleoutNetworkTest, SingleNodeTopologyShipsNothing) {
  BartonConfig config;
  config.target_triples = 6000;
  const auto barton = GenerateBarton(config);
  const core::QueryContext ctx = MakeBartonContext(barton.dataset, 28);

  shard::ShardOptions options;
  options.nodes = 1;
  shard::ShardedBackend sharded(barton.dataset, options);
  for (QueryId id : core::AllQueries()) (void)sharded.Run(id, ctx);
  EXPECT_EQ(sharded.TotalNetBytes(), 0u);
  EXPECT_EQ(sharded.TotalNetMessages(), 0u);
  EXPECT_EQ(sharded.NetSeconds(), 0.0);
}

TEST(ScaleoutNetworkTest, NetworkModelIsOrderIndependent) {
  exec::ExecContext ectx(1);
  net::NetworkConfig config;
  net::NetworkModel forward(4, config), reverse(4, config);
  forward.Ship(0, 1, 1000, 2, ectx);
  forward.Ship(2, 3, 500, 1, ectx);
  reverse.Ship(2, 3, 500, 1, ectx);
  reverse.Ship(0, 1, 1000, 2, ectx);
  EXPECT_DOUBLE_EQ(forward.seconds(), reverse.seconds());
  EXPECT_EQ(forward.total_bytes(), reverse.total_bytes());
  EXPECT_EQ(forward.total_messages(), reverse.total_messages());
}

TEST(ScaleoutStoreTest, StoreFacadeOpensShardedColumnStore) {
  BartonConfig config;
  config.target_triples = 8000;
  const auto barton = GenerateBarton(config);
  const core::QueryContext ctx = MakeBartonContext(barton.dataset, 28);

  core::StoreOptions single;
  auto reference_store = core::RdfStore::Open(barton.dataset, single);

  core::StoreOptions scaled = single;
  scaled.nodes = 2;
  auto sharded_store = core::RdfStore::Open(barton.dataset, scaled);
  EXPECT_NE(sharded_store->backend().dist(), nullptr);
  EXPECT_EQ(sharded_store->backend().dist()->nodes(), 2);

  // Fixed benchmark queries and ad-hoc BGPs agree across the node count.
  for (QueryId id : {QueryId::kQ1, QueryId::kQ2, QueryId::kQ5}) {
    core::QueryResult expected = reference_store->Run(id, ctx);
    core::QueryResult got = sharded_store->Run(id, ctx);
    EXPECT_TRUE(expected.SameRows(got)) << ToString(id);
  }
  for (const auto& bgp : bench_support::BenchmarkBgps(ctx.vocab())) {
    auto expected = reference_store->ExecuteBgp(bgp.patterns);
    auto got = sharded_store->ExecuteBgp(bgp.patterns);
    ASSERT_TRUE(expected.ok() && got.ok()) << bgp.name;
    core::QueryResult expected_rows{expected.value().vars,
                                    expected.value().rows};
    core::QueryResult got_rows{got.value().vars, got.value().rows};
    EXPECT_TRUE(expected_rows.SameRows(got_rows)) << bgp.name;
  }
}

TEST(ScaleoutStoreTest, WritesRouteToOwningNode) {
  BartonConfig config;
  config.target_triples = 6000;
  const auto barton = GenerateBarton(config);
  const core::QueryContext ctx = MakeBartonContext(barton.dataset, 28);

  core::StoreOptions scaled;
  scaled.nodes = 4;
  auto store = core::RdfStore::Open(barton.dataset, scaled);

  const rdf::Triple existing = barton.dataset.triples().front();
  EXPECT_FALSE(store->Insert(existing).ok()) << "duplicate must be rejected";

  const uint64_t v1 = 1, v2 = 2;  // small interned ids always exist
  rdf::Triple fresh{v1, ctx.vocab().type, v2};
  if (store->Match(rdf::TriplePattern{v1, ctx.vocab().type, v2}).empty()) {
    const uint64_t before = store->snapshot_version();
    ASSERT_TRUE(store->Insert(fresh).ok());
    EXPECT_EQ(store->snapshot_version(), before + 1);
    EXPECT_EQ(store->Match(rdf::TriplePattern{v1, ctx.vocab().type, v2}).size(),
              1u);
    ASSERT_TRUE(store->Delete(fresh).ok());
    EXPECT_TRUE(
        store->Match(rdf::TriplePattern{v1, ctx.vocab().type, v2}).empty());
  }
}

// The documented direction: network (350) above disk (300) — shipping
// may charge the network, then read the destination node's disk.
void AcquireDiskUnderNetwork() SWAN_NO_THREAD_SAFETY_ANALYSIS {
  Mutex network(LockRank::kNetwork, "test.network");
  Mutex disk(LockRank::kStorageDisk, "test.disk");
  MutexLock n(&network);
  MutexLock d(&disk);
}

void AcquireNetworkUnderDisk() SWAN_NO_THREAD_SAFETY_ANALYSIS {
  Mutex network(LockRank::kNetwork, "test.network");
  Mutex disk(LockRank::kStorageDisk, "test.disk");
  MutexLock d(&disk);
  MutexLock n(&network);
}

TEST(ScaleoutLockRankTest, DiskUnderNetworkIsTheLegalDirection) {
  AcquireDiskUnderNetwork();  // must not abort
  SUCCEED();
}

TEST(ScaleoutLockRankDeathTest, NetworkUnderDiskAborts) {
  if (!LockRankChecksEnabled()) GTEST_SKIP() << "rank checks compiled out";
  EXPECT_DEATH(AcquireNetworkUnderDisk(), "lock-rank violation");
}

TEST(ScaleoutCoordinatorTest, AffinityMovesTheGatherNode) {
  BartonConfig config;
  config.target_triples = 6000;
  const auto barton = GenerateBarton(config);
  const core::QueryContext ctx = MakeBartonContext(barton.dataset, 28);

  shard::ShardOptions options;
  options.nodes = 2;
  shard::ShardedBackend sharded(barton.dataset, options);
  core::ReferenceBackend reference(barton.dataset);

  EXPECT_EQ(sharded.dist()->Coordinator(), 0);
  sharded.dist()->SetCoordinator(1);
  EXPECT_EQ(sharded.dist()->Coordinator(), 1);
  EXPECT_EQ(sharded.coordinator(), 1);

  // Results are coordinator-independent; only link attribution moves.
  core::QueryResult expected = reference.Run(QueryId::kQ2, ctx);
  core::QueryResult got = sharded.Run(QueryId::kQ2, ctx);
  EXPECT_TRUE(expected.SameRows(got));
}

}  // namespace
}  // namespace swan
