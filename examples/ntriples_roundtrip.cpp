// Loading real data: writes a small N-Triples file, parses it back through
// the streaming loader, and runs pattern queries over the loaded graph —
// the path a user takes to query their own RDF dump (e.g. the Barton
// catalog from simile.mit.edu).
//
//   $ ./build/examples/ntriples_roundtrip [file.nt]

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/store.h"
#include "rdf/ntriples.h"

namespace {

constexpr const char* kSampleNt = R"(# tiny library sample
<book/moby-dick> <type> <Text> .
<book/moby-dick> <language> <language/iso639-2b/eng> .
<book/moby-dick> <creator> "Melville, Herman" .
<book/pequod-log> <type> <Notated-Music> .
<record/1> <records> <book/moby-dick> .
<record/1> <origin> <info:marcorg/DLC> .
)";

}  // namespace

int main(int argc, char** argv) {
  swan::rdf::Dataset data;
  uint64_t added = 0;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    auto st = swan::rdf::ParseNTriples(in, &data, &added);
    if (!st.ok()) {
      std::fprintf(stderr, "parse error: %s\n", st.ToString().c_str());
      return 1;
    }
  } else {
    std::istringstream in(kSampleNt);
    auto st = swan::rdf::ParseNTriples(in, &data, &added);
    if (!st.ok()) {
      std::fprintf(stderr, "parse error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("loaded %llu triples, %llu dictionary terms\n",
              static_cast<unsigned long long>(added),
              static_cast<unsigned long long>(data.dict().size()));

  auto store = swan::core::RdfStore::Open(data);

  // All triples about Text-typed resources.
  const auto type = data.dict().Find("<type>");
  const auto text = data.dict().Find("<Text>");
  if (type && text) {
    swan::rdf::TriplePattern pattern;
    pattern.property = *type;
    pattern.object = *text;
    std::printf("\nText-typed resources:\n");
    for (const auto& t : store->Match(pattern)) {
      std::printf("  %s\n", std::string(data.dict().Lookup(t.subject)).c_str());
    }
  }

  // Round-trip: write the store's content back out as N-Triples.
  std::ostringstream out;
  swan::rdf::WriteNTriples(data, out);
  std::printf("\nround-tripped N-Triples:\n%s", out.str().c_str());
  return 0;
}
