// SPARQL front-end demo: runs textual SPARQL (BGP subset) against a
// generated Barton-like catalog, on a storage scheme of your choice.
//
//   $ ./build/examples/sparql_demo
//   $ ./build/examples/sparql_demo 'SELECT ?s WHERE { ?s <type> <Text> } LIMIT 5'

#include <cstdio>

#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "core/store.h"
#include "sparql/sparql.h"

int main(int argc, char** argv) {
  swan::bench_support::BartonConfig config;
  config.target_triples = swan::bench_support::EnvU64("SWAN_TRIPLES", 50000);
  std::printf("generating catalog (%llu triples)...\n\n",
              static_cast<unsigned long long>(config.target_triples));
  const auto barton = swan::bench_support::GenerateBarton(config);
  auto store = swan::core::RdfStore::Open(barton.dataset);

  const char* query = argc > 1 ? argv[1] :
      // The paper's q5 as a graph pattern: DLC-origin records pointing at
      // resources, with their types. (The SQL adds obj != Text, which the
      // BGP subset cannot express; this is the unfiltered pattern.)
      "SELECT DISTINCT ?record ?thing ?kind\n"
      "WHERE {\n"
      "  ?record <origin> <info:marcorg/DLC> .\n"
      "  ?record <records> ?thing .\n"
      "  ?thing <type> ?kind .\n"
      "}\n"
      "LIMIT 10";

  std::printf("query:\n%s\n\n", query);
  auto result = swan::sparql::Execute(store->backend(), barton.dataset, query);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  for (const auto& var : result.value().vars) std::printf("%-28s", var.c_str());
  std::printf("\n");
  for (const auto& row : result.value().rows) {
    for (const auto& text : row.text) std::printf("%-28s", text.c_str());
    std::printf("\n");
  }
  std::printf("(%llu rows)\n",
              static_cast<unsigned long long>(result.value().rows.size()));
  return 0;
}
