// Quickstart: build a small RDF graph, open a store, and query it.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the three core API layers:
//   1. rdf::Dataset      — dictionary-encoded triple set
//   2. core::RdfStore    — a scheme x engine materialization
//   3. Match/ExecuteBgp  — pattern queries with decoded results

#include <cstdio>
#include <algorithm>
#include <string>

#include "core/store.h"
#include "rdf/dataset.h"

int main() {
  using swan::core::EngineKind;
  using swan::core::RdfStore;
  using swan::core::StorageScheme;
  using swan::core::StoreOptions;
  using swan::core::Term;

  // 1. Build a graph. Terms are interned into a dictionary automatically.
  swan::rdf::Dataset data;
  data.Add("<alice>", "<worksAt>", "<cwi>");
  data.Add("<bob>", "<worksAt>", "<cwi>");
  data.Add("<carol>", "<worksAt>", "<mit>");
  data.Add("<alice>", "<authored>", "<swan-paper>");
  data.Add("<bob>", "<authored>", "<swan-paper>");
  data.Add("<carol>", "<authored>", "<vp-paper>");
  data.Add("<swan-paper>", "<cites>", "<vp-paper>");

  // 2. Materialize it. Here: the vertically-partitioned scheme on the
  // column-store engine (the paper's fastest combination at 222
  // properties); swap scheme/engine freely — results are identical.
  StoreOptions options;
  options.scheme = StorageScheme::kVerticalPartitioned;
  options.engine = EngineKind::kColumnStore;
  auto store = RdfStore::Open(data, options);
  std::printf("opened %s (%llu bytes on simulated disk)\n\n",
              store->name().c_str(),
              static_cast<unsigned long long>(store->disk_bytes()));

  // 3a. Single-pattern lookup: who works at CWI?
  swan::rdf::TriplePattern pattern;
  pattern.property = data.dict().Find("<worksAt>").value();
  pattern.object = data.dict().Find("<cwi>").value();
  std::printf("employees of <cwi>:\n");
  for (const auto& t : store->Match(pattern)) {
    std::printf("  %s\n", std::string(data.dict().Lookup(t.subject)).c_str());
  }

  // 3b. Conjunctive (BGP) query: co-authors — pairs writing the same paper.
  auto result = store->ExecuteBgp({
      {Term::Var("a"), Term::Const(data.dict().Find("<authored>").value()),
       Term::Var("paper")},
      {Term::Var("b"), Term::Const(data.dict().Find("<authored>").value()),
       Term::Var("paper")},
  });
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  // Binding columns are ordered by first appearance; look them up by name.
  const auto& vars = result.value().vars;
  auto column_of = [&](const std::string& name) {
    return std::find(vars.begin(), vars.end(), name) - vars.begin();
  };
  const auto a_col = column_of("a");
  const auto b_col = column_of("b");
  const auto paper_col = column_of("paper");
  std::printf("\nco-authorship pairs (a, b, paper):\n");
  for (const auto& row : result.value().rows) {
    if (row[a_col] == row[b_col]) continue;  // skip self-pairs
    std::printf("  %s  %s  %s\n",
                std::string(data.dict().Lookup(row[a_col])).c_str(),
                std::string(data.dict().Lookup(row[b_col])).c_str(),
                std::string(data.dict().Lookup(row[paper_col])).c_str());
  }
  return 0;
}
