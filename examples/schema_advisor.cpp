// Physical-design advisor: given an RDF dataset and a query mix, measure
// every storage-scheme x engine combination and report which physical
// design wins — the practical question behind the paper's evaluation
// ("not all swans are white": no scheme wins everywhere).
//
//   $ ./build/examples/schema_advisor
//   $ SWAN_TRIPLES=200000 ./build/examples/schema_advisor

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "core/store.h"

int main() {
  using swan::core::EngineKind;
  using swan::core::QueryId;
  using swan::core::RdfStore;
  using swan::core::StorageScheme;
  using swan::core::StoreOptions;

  swan::bench_support::BartonConfig config;
  config.target_triples = swan::bench_support::EnvU64("SWAN_TRIPLES", 100000);
  std::printf("generating workload dataset (%llu triples)...\n\n",
              static_cast<unsigned long long>(config.target_triples));
  const auto barton = swan::bench_support::GenerateBarton(config);
  const auto ctx = swan::bench_support::MakeBartonContext(barton.dataset, 28);

  // The query mix to optimize for: a property-bound lookup (q1), a
  // subject-join aggregate (q2), a path query (q5), and the full-scale
  // variants that stress non-property-bound access.
  const std::vector<QueryId> workload = {QueryId::kQ1, QueryId::kQ2,
                                         QueryId::kQ5, QueryId::kQ2Star,
                                         QueryId::kQ8};

  struct Candidate {
    const char* label;
    StoreOptions options;
  };
  std::vector<Candidate> candidates;
  {
    StoreOptions o;
    o.scheme = StorageScheme::kTripleStore;
    o.engine = EngineKind::kRowStore;
    o.clustering = swan::rdf::TripleOrder::kSPO;
    candidates.push_back({"row store, triple SPO", o});
    o.clustering = swan::rdf::TripleOrder::kPSO;
    candidates.push_back({"row store, triple PSO", o});
    o.scheme = StorageScheme::kVerticalPartitioned;
    candidates.push_back({"row store, vertical", o});
    o.engine = EngineKind::kColumnStore;
    candidates.push_back({"column store, vertical", o});
    o.scheme = StorageScheme::kTripleStore;
    o.clustering = swan::rdf::TripleOrder::kPSO;
    candidates.push_back({"column store, triple PSO", o});
  }

  swan::TablePrinter table({"physical design", "cold G (s)", "hot G (s)",
                            "disk MB"});
  const Candidate* best = nullptr;
  double best_hot = 0.0;
  for (const auto& candidate : candidates) {
    auto store = RdfStore::Open(barton.dataset, candidate.options);
    std::vector<double> cold_times, hot_times;
    for (QueryId id : workload) {
      cold_times.push_back(
          swan::bench_support::MeasureCold(&store->backend(), id, ctx, 1).real_seconds);
      hot_times.push_back(
          swan::bench_support::MeasureHot(&store->backend(), id, ctx, 1).real_seconds);
    }
    const double cold_g = swan::GeometricMean(cold_times);
    const double hot_g = swan::GeometricMean(hot_times);
    table.AddRow({candidate.label, swan::TablePrinter::Fixed(cold_g, 4),
                  swan::TablePrinter::Fixed(hot_g, 4),
                  swan::TablePrinter::Fixed(store->disk_bytes() / 1e6, 1)});
    if (best == nullptr || hot_g < best_hot) {
      best = &candidate;
      best_hot = hot_g;
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf("recommended design for this workload (hot geometric mean): "
              "%s\n",
              best->label);
  std::printf(
      "\nchange the workload mix above and the winner moves — the paper's "
      "point: add\nq8 or full-scale queries and the vertical scheme loses "
      "its edge.\n");
  return 0;
}
