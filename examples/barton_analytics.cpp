// Runs the full 12-query benchmark workload on a generated Barton-like
// library catalog and prints decoded result samples — the workload the
// paper's evaluation is built on, exercised through the public API.
//
//   $ ./build/examples/barton_analytics            # ~100k triples
//   $ SWAN_TRIPLES=500000 ./build/examples/barton_analytics

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_support/barton_generator.h"
#include "bench_support/harness.h"
#include "core/store.h"

int main() {
  using swan::core::QueryId;

  swan::bench_support::BartonConfig config;
  config.target_triples =
      swan::bench_support::EnvU64("SWAN_TRIPLES", 100000);
  std::printf("generating Barton-like catalog (%llu triples)...\n",
              static_cast<unsigned long long>(config.target_triples));
  const auto barton = swan::bench_support::GenerateBarton(config);
  const auto& data = barton.dataset;
  const auto ctx = swan::bench_support::MakeBartonContext(data, 28);

  swan::core::StoreOptions options;
  options.scheme = swan::core::StorageScheme::kVerticalPartitioned;
  options.engine = swan::core::EngineKind::kColumnStore;
  auto store = swan::core::RdfStore::Open(data, options);
  std::printf("store: %s, %.1f MB on simulated disk\n\n",
              store->name().c_str(), store->disk_bytes() / 1e6);

  auto decode = [&](uint64_t id) {
    return std::string(data.dict().Lookup(id));
  };

  for (QueryId id : swan::core::AllQueries()) {
    auto result = store->Run(id, ctx);
    result.Normalize();
    std::printf("%-4s -> %llu rows (", ToString(id).c_str(),
                static_cast<unsigned long long>(result.row_count()));
    for (size_t c = 0; c < result.column_names.size(); ++c) {
      std::printf("%s%s", c ? ", " : "", result.column_names[c].c_str());
    }
    std::printf(")\n");
    // Show up to three sample rows, decoded. Count columns (named
    // "count") hold plain numbers, everything else dictionary ids.
    const size_t shown = std::min<size_t>(3, result.rows.size());
    for (size_t r = 0; r < shown; ++r) {
      std::printf("      ");
      for (size_t c = 0; c < result.rows[r].size(); ++c) {
        const bool is_count = result.column_names[c] == "count";
        if (is_count) {
          std::printf("%s%llu", c ? "  " : "",
                      static_cast<unsigned long long>(result.rows[r][c]));
        } else {
          std::printf("%s%s", c ? "  " : "", decode(result.rows[r][c]).c_str());
        }
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nq1 is the Longwell \"subject type histogram\"; q5 follows <records> "
      "edges to\nnon-Text resources; q8 (added by the paper) finds subjects "
      "sharing objects with\n<conferences>.\n");
  return 0;
}
