#ifndef SWANDB_SPARQL_SPARQL_H_
#define SWANDB_SPARQL_SPARQL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/backend.h"
#include "core/bgp.h"
#include "exec/exec_context.h"
#include "rdf/dataset.h"

namespace swan::sparql {

// A front-end for the SPARQL subset that maps onto basic graph patterns —
// the query-space fragment the paper analyzes in §2.2 (all 8 simple triple
// patterns composed through the A/B/C join patterns):
//
//   PREFIX ex: <http://example.org/>
//   SELECT DISTINCT ?who ?what
//   WHERE { ?who ex:authored ?what . ?what ex:cites ?classic . }
//   LIMIT 10
//
// Supported: PREFIX declarations, `SELECT * | ?var...`, DISTINCT, a WHERE
// block of triple patterns over IRIs (`<...>`), prefixed names
// (`ex:name`), literals (`"..."` with \-escapes and optional @lang / ^^
// suffixes), variables (`?name`), and LIMIT. Not supported (rejected with
// a parse error): FILTER, OPTIONAL, UNION, property paths.

// --- Abstract syntax ------------------------------------------------------

struct ParsedTerm {
  enum class Kind { kVariable, kIri, kLiteral };
  Kind kind = Kind::kVariable;
  // Variable name without '?', or the full term text including <> / "".
  std::string text;
};

struct ParsedPattern {
  ParsedTerm subject;
  ParsedTerm property;
  ParsedTerm object;
};

struct ParsedQuery {
  bool distinct = false;
  // Empty means SELECT * (all variables in order of first appearance).
  std::vector<std::string> projection;
  std::vector<ParsedPattern> patterns;
  std::optional<uint64_t> limit;
};

// Parses the query text. Errors carry 1-based line:column positions.
Result<ParsedQuery> Parse(std::string_view query);

// Canonical form of a query's text, used by the serving layer as the
// lexical part of its result-cache key: '#' comments stripped, runs of
// whitespace outside quoted literals collapsed to a single space, and
// the ends trimmed. Two texts with the same canonical form tokenize
// identically (so they parse to the same query); no semantic
// normalization (variable renaming, pattern reordering) is attempted.
std::string CanonicalQueryText(std::string_view query);

// --- Execution ------------------------------------------------------------

struct Row {
  std::vector<uint64_t> ids;      // dictionary ids, aligned with vars
  std::vector<std::string> text;  // decoded terms, aligned with vars
};

struct QueryOutput {
  std::vector<std::string> vars;
  std::vector<Row> rows;
};

// Binds a parsed query's constant terms against the dataset's dictionary,
// producing executable BGP patterns. A constant absent from the dictionary
// cannot match anything: *unmatchable is set and the caller should return
// the empty result (standard SPARQL semantics).
std::vector<core::BgpPattern> Bind(const ParsedQuery& parsed,
                                   const rdf::Dataset& dataset,
                                   bool* unmatchable);

// Parses and runs `query` against `backend`, decoding results through the
// dataset's dictionary. A constant term that is not in the dictionary
// yields an empty result (standard SPARQL semantics), not an error.
Result<QueryOutput> Execute(const core::Backend& backend,
                            const rdf::Dataset& dataset,
                            std::string_view query);

// As above, under an explicit execution context: the BGP evaluation fans
// its binding-extension batches out across the context's thread budget
// (see core::ExecuteBgp); results are identical at every width.
Result<QueryOutput> Execute(const core::Backend& backend,
                            const rdf::Dataset& dataset,
                            std::string_view query,
                            const exec::ExecContext& ectx);

}  // namespace swan::sparql

#endif  // SWANDB_SPARQL_SPARQL_H_
