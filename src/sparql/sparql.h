#ifndef SWANDB_SPARQL_SPARQL_H_
#define SWANDB_SPARQL_SPARQL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/backend.h"
#include "core/bgp.h"
#include "exec/exec_context.h"
#include "plan/algebra.h"
#include "plan/stats.h"
#include "rdf/dataset.h"

namespace swan::sparql {

// A front-end for the SPARQL subset that maps onto the logical algebra of
// src/plan/ — the query-space fragment the paper analyzes in §2.2 (all 8
// simple triple patterns composed through the A/B/C join patterns), plus
// the forms that lower to filters, left joins and unions over them:
//
//   PREFIX ex: <http://example.org/>
//   SELECT DISTINCT ?who ?what
//   WHERE { ?who ex:authored ?what . ?what ex:cites ?classic .
//           FILTER(?what != ex:retracted)
//           OPTIONAL { ?who ex:name ?name } }
//   OFFSET 10 LIMIT 10
//
// Supported: PREFIX declarations, `SELECT * | ?var...`, DISTINCT, a WHERE
// block of triple patterns over IRIs (`<...>`), prefixed names
// (`ex:name`), literals (`"..."` with \-escapes and optional @lang / ^^
// suffixes), variables (`?name`), FILTER over one variable
// (`<,<=,>,>=,=,!=` against a number, term or variable, and
// `IN (term, ...)`), OPTIONAL groups (patterns + filters; not nested),
// top-level UNION of braced groups, LIMIT and OFFSET in either order.
// Not supported (rejected with a parse error): nested OPTIONAL, UNION
// inside a group, property paths, expressions beyond single comparisons.

// --- Abstract syntax ------------------------------------------------------

struct ParsedTerm {
  enum class Kind { kVariable, kIri, kLiteral, kNumber };
  Kind kind = Kind::kVariable;
  // Variable name without '?', the full term text including <> / "", or
  // the number's digits.
  std::string text;
};

struct ParsedPattern {
  ParsedTerm subject;
  ParsedTerm property;
  ParsedTerm object;
};

// FILTER(?var op operand) or FILTER(?var IN (operand, ...)).
struct ParsedFilter {
  std::string var;
  std::string op;  // "<", "<=", ">", ">=", "=", "!=", "IN"
  std::vector<ParsedTerm> values;
};

// One braced group's content: triple patterns plus filters.
struct ParsedGroup {
  std::vector<ParsedPattern> patterns;
  std::vector<ParsedFilter> filters;
};

// One UNION branch: the required group and its OPTIONAL groups in textual
// order.
struct ParsedBranch {
  ParsedGroup required;
  std::vector<ParsedGroup> optionals;
};

struct ParsedQuery {
  bool distinct = false;
  // Empty means SELECT * (all variables in order of first appearance).
  std::vector<std::string> projection;
  std::vector<ParsedBranch> branches;
  std::optional<uint64_t> limit;
  std::optional<uint64_t> offset;

  // Legacy view kept for BGP-only callers: the first branch's required
  // patterns (every pre-planner query had exactly one branch and no
  // filters/optionals).
  std::vector<ParsedPattern> patterns;
};

// Parses the query text. Errors carry 1-based line:column positions.
Result<ParsedQuery> Parse(std::string_view query);

// Canonical form of a query's text, used by the serving layer as the
// lexical part of its result-cache key: '#' comments stripped, runs of
// whitespace outside quoted literals collapsed to a single space, bare
// keywords upper-cased (so `select` and `SELECT` share one cache entry),
// and the ends trimmed. IRIs, literals, variables and prefixed names are
// copied verbatim. Two texts with the same canonical form tokenize
// identically (so they parse to the same query); no semantic
// normalization (variable renaming, pattern reordering) is attempted.
std::string CanonicalQueryText(std::string_view query);

// --- Lowering -------------------------------------------------------------

// Lowers a parsed query to the logical algebra: constants are bound
// against the dataset's dictionary (a miss marks the scan unsatisfiable —
// the planner constant-folds it to the empty result), filters are
// compiled to id / numeric comparisons, OPTIONAL becomes LeftJoin and
// branches become a Union, wrapped in Distinct/Project/Slice modifiers.
// The plan's NumericResolver decodes numeric literals through the
// dictionary. Exported for the shell's EXPLAIN.
Result<plan::LogicalPlan> BuildLogicalPlan(const ParsedQuery& parsed,
                                           const rdf::Dataset& dataset);

// Binds a parsed query's constant terms against the dataset's dictionary,
// producing executable BGP patterns (legacy first-branch view; filters
// and optionals are ignored). A constant absent from the dictionary
// cannot match anything: *unmatchable is set and the caller should return
// the empty result (standard SPARQL semantics).
std::vector<core::BgpPattern> Bind(const ParsedQuery& parsed,
                                   const rdf::Dataset& dataset,
                                   bool* unmatchable);

// --- Execution ------------------------------------------------------------

struct Row {
  std::vector<uint64_t> ids;      // dictionary ids, aligned with vars
  std::vector<std::string> text;  // decoded terms, aligned with vars
};

struct QueryOutput {
  std::vector<std::string> vars;
  std::vector<Row> rows;
  // The planner's mode note for the executed physical plan (e.g.
  // "cost-based (sampled statistics)") — surfaced into the query log.
  std::string plan_note;
};

// Parses and runs `query` against `backend`, decoding results through the
// dataset's dictionary. A constant term that is not in the dictionary
// yields an empty result (standard SPARQL semantics), not an error. A
// variable left unbound by an OPTIONAL decodes to the empty string (its
// id is plan::kUnbound).
Result<QueryOutput> Execute(const core::Backend& backend,
                            const rdf::Dataset& dataset,
                            std::string_view query);

// As above, under an explicit execution context: the BGP evaluation fans
// its binding-extension batches out across the context's thread budget
// (see core::ExecutePlan); results are identical at every width.
Result<QueryOutput> Execute(const core::Backend& backend,
                            const rdf::Dataset& dataset,
                            std::string_view query,
                            const exec::ExecContext& ectx);

// As above with planner statistics: non-null `stats` selects the
// cost-based planner (with the backend's access hints); null falls back
// to the statistics-free heuristic order. RdfStore::stats() supplies the
// load-time statistics.
Result<QueryOutput> Execute(const core::Backend& backend,
                            const rdf::Dataset& dataset,
                            std::string_view query,
                            const exec::ExecContext& ectx,
                            const plan::StoreStats* stats);

}  // namespace swan::sparql

#endif  // SWANDB_SPARQL_SPARQL_H_
