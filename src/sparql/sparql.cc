#include "sparql/sparql.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "core/bgp.h"
#include "obs/trace.h"

namespace swan::sparql {

namespace {

// --- Lexer ----------------------------------------------------------------

enum class TokenKind {
  kKeyword,   // SELECT / DISTINCT / WHERE / PREFIX / LIMIT (case-insensitive)
  kVariable,  // ?name
  kIri,       // <...>
  kLiteral,   // "..." with optional @lang / ^^<iri> suffix
  kPrefixedName,  // ns:local  (also bare "ns:" in PREFIX declarations)
  kStar,
  kLBrace,
  kRBrace,
  kDot,
  kNumber,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    for (;;) {
      SkipWhitespaceAndComments();
      Token token;
      token.line = line_;
      token.column = column_;
      if (AtEnd()) {
        token.kind = TokenKind::kEnd;
        out.push_back(token);
        return out;
      }
      const char c = Peek();
      if (c == '?') {
        Advance();
        token.kind = TokenKind::kVariable;
        while (!AtEnd() && (std::isalnum(Peek()) || Peek() == '_')) {
          token.text += Take();
        }
        if (token.text.empty()) return Error(token, "empty variable name");
      } else if (c == '<') {
        token.kind = TokenKind::kIri;
        token.text += Take();
        while (!AtEnd() && Peek() != '>') token.text += Take();
        if (AtEnd()) return Error(token, "unterminated IRI");
        token.text += Take();  // '>'
      } else if (c == '"') {
        token.kind = TokenKind::kLiteral;
        token.text += Take();
        while (!AtEnd() && Peek() != '"') {
          if (Peek() == '\\') token.text += Take();
          if (AtEnd()) break;
          token.text += Take();
        }
        if (AtEnd()) return Error(token, "unterminated literal");
        token.text += Take();  // closing quote
        // Optional @lang or ^^<iri> suffix, kept verbatim.
        if (!AtEnd() && Peek() == '@') {
          while (!AtEnd() && (std::isalnum(Peek()) || Peek() == '@' ||
                              Peek() == '-')) {
            token.text += Take();
          }
        } else if (!AtEnd() && Peek() == '^') {
          token.text += Take();
          if (AtEnd() || Peek() != '^') return Error(token, "expected '^^'");
          token.text += Take();
          if (AtEnd() || Peek() != '<') {
            return Error(token, "expected IRI after '^^'");
          }
          while (!AtEnd() && Peek() != '>') token.text += Take();
          if (AtEnd()) return Error(token, "unterminated datatype IRI");
          token.text += Take();
        }
      } else if (c == '*') {
        token.kind = TokenKind::kStar;
        token.text = Take();
      } else if (c == '{') {
        token.kind = TokenKind::kLBrace;
        token.text = Take();
      } else if (c == '}') {
        token.kind = TokenKind::kRBrace;
        token.text = Take();
      } else if (c == '.') {
        token.kind = TokenKind::kDot;
        token.text = Take();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        token.kind = TokenKind::kNumber;
        while (!AtEnd() && std::isdigit(Peek())) token.text += Take();
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        // Keyword or prefixed name.
        while (!AtEnd() &&
               (std::isalnum(Peek()) || Peek() == '_' || Peek() == '-')) {
          token.text += Take();
        }
        if (!AtEnd() && Peek() == ':') {
          token.text += Take();  // ':'
          while (!AtEnd() &&
                 (std::isalnum(Peek()) || Peek() == '_' || Peek() == '-' ||
                  Peek() == '.' || Peek() == '/')) {
            token.text += Take();
          }
          token.kind = TokenKind::kPrefixedName;
        } else {
          token.kind = TokenKind::kKeyword;
        }
      } else if (c == ':') {
        // Prefixed name with the empty prefix, e.g. ":local".
        token.text += Take();
        while (!AtEnd() &&
               (std::isalnum(Peek()) || Peek() == '_' || Peek() == '-' ||
                Peek() == '.' || Peek() == '/')) {
          token.text += Take();
        }
        token.kind = TokenKind::kPrefixedName;
      } else {
        token.text = std::string(1, c);
        return Error(token, "unexpected character '" + token.text + "'");
      }
      out.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char Take() {
    const char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  void Advance() { Take(); }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      } else if (Peek() == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        return;
      }
    }
  }

  Status Error(const Token& at, const std::string& message) const {
    return Status::InvalidArgument(std::to_string(at.line) + ":" +
                                   std::to_string(at.column) + ": " + message);
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// --- Parser ----------------------------------------------------------------

bool KeywordIs(const Token& token, std::string_view keyword) {
  if (token.kind != TokenKind::kKeyword) return false;
  if (token.text.size() != keyword.size()) return false;
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(token.text[i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Run() {
    ParsedQuery query;
    // PREFIX declarations.
    while (KeywordIs(Current(), "PREFIX")) {
      Next();
      if (Current().kind != TokenKind::kPrefixedName ||
          Current().text.back() != ':') {
        return Error("expected prefix name ending in ':'");
      }
      const std::string prefix =
          Current().text.substr(0, Current().text.size() - 1);
      Next();
      if (Current().kind != TokenKind::kIri) {
        return Error("expected IRI after prefix name");
      }
      // Strip the angle brackets; they are re-added on expansion.
      prefixes_[prefix] =
          Current().text.substr(1, Current().text.size() - 2);
      Next();
    }

    if (!KeywordIs(Current(), "SELECT")) return Error("expected SELECT");
    Next();
    if (KeywordIs(Current(), "DISTINCT")) {
      query.distinct = true;
      Next();
    }
    if (Current().kind == TokenKind::kStar) {
      Next();
    } else {
      while (Current().kind == TokenKind::kVariable) {
        query.projection.push_back(Current().text);
        Next();
      }
      if (query.projection.empty()) {
        return Error("expected '*' or at least one ?variable");
      }
    }

    if (!KeywordIs(Current(), "WHERE")) return Error("expected WHERE");
    Next();
    if (Current().kind != TokenKind::kLBrace) return Error("expected '{'");
    Next();

    while (Current().kind != TokenKind::kRBrace) {
      if (Current().kind == TokenKind::kEnd) return Error("expected '}'");
      if (KeywordIs(Current(), "FILTER") || KeywordIs(Current(), "OPTIONAL") ||
          KeywordIs(Current(), "UNION")) {
        return Error(Current().text + " is not supported (BGP subset only)");
      }
      ParsedPattern pattern;
      SWAN_ASSIGN_OR_RETURN(pattern.subject, ParseTerm(/*literal_ok=*/false));
      SWAN_ASSIGN_OR_RETURN(pattern.property, ParseTerm(/*literal_ok=*/false));
      SWAN_ASSIGN_OR_RETURN(pattern.object, ParseTerm(/*literal_ok=*/true));
      query.patterns.push_back(std::move(pattern));
      if (Current().kind == TokenKind::kDot) Next();
    }
    Next();  // '}'

    if (KeywordIs(Current(), "LIMIT")) {
      Next();
      if (Current().kind != TokenKind::kNumber) {
        return Error("expected number after LIMIT");
      }
      query.limit = std::stoull(Current().text);
      Next();
    }
    if (Current().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input '" + Current().text + "'");
    }
    if (query.patterns.empty()) return Error("empty WHERE block");
    return query;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Next() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(std::to_string(Current().line) + ":" +
                                   std::to_string(Current().column) + ": " +
                                   message);
  }

  Result<ParsedTerm> ParseTerm(bool literal_ok) {
    ParsedTerm term;
    switch (Current().kind) {
      case TokenKind::kVariable:
        term.kind = ParsedTerm::Kind::kVariable;
        term.text = Current().text;
        break;
      case TokenKind::kIri:
        term.kind = ParsedTerm::Kind::kIri;
        term.text = Current().text;
        break;
      case TokenKind::kLiteral:
        if (!literal_ok) {
          return Error("literal not allowed in this position");
        }
        term.kind = ParsedTerm::Kind::kLiteral;
        term.text = Current().text;
        break;
      case TokenKind::kPrefixedName: {
        const std::string& name = Current().text;
        const size_t colon = name.find(':');
        const std::string prefix = name.substr(0, colon);
        auto it = prefixes_.find(prefix);
        if (it == prefixes_.end()) {
          return Error("undeclared prefix '" + prefix + ":'");
        }
        term.kind = ParsedTerm::Kind::kIri;
        term.text = "<" + it->second + name.substr(colon + 1) + ">";
        break;
      }
      default:
        return Error("expected a term, got '" + Current().text + "'");
    }
    Next();
    return term;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

}  // namespace

Result<ParsedQuery> Parse(std::string_view query) {
  Lexer lexer(query);
  SWAN_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Run();
}

std::vector<core::BgpPattern> Bind(const ParsedQuery& parsed,
                                   const rdf::Dataset& dataset,
                                   bool* unmatchable) {
  *unmatchable = false;
  std::vector<core::BgpPattern> patterns;
  auto bind = [&](const ParsedTerm& term) -> core::Term {
    if (term.kind == ParsedTerm::Kind::kVariable) {
      return core::Term::Var(term.text);
    }
    const auto id = dataset.dict().Find(term.text);
    if (!id) {
      *unmatchable = true;
      return core::Term::Const(0);
    }
    return core::Term::Const(*id);
  };
  for (const ParsedPattern& p : parsed.patterns) {
    core::BgpPattern pattern;
    pattern.subject = bind(p.subject);
    pattern.property = bind(p.property);
    pattern.object = bind(p.object);
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

std::string CanonicalQueryText(std::string_view query) {
  std::string out;
  out.reserve(query.size());
  bool pending_space = false;
  size_t i = 0;
  const auto emit = [&](char c) {
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  };
  while (i < query.size()) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < query.size() && query[i] != '\n') ++i;
      continue;
    }
    if (c == '"') {  // quoted literal: copy verbatim, honoring \-escapes
      emit(c);
      ++i;
      while (i < query.size()) {
        const char q = query[i++];
        out.push_back(q);
        if (q == '\\' && i < query.size()) {
          out.push_back(query[i++]);
        } else if (q == '"') {
          break;
        }
      }
      continue;
    }
    emit(c);
    ++i;
  }
  return out;
}

Result<QueryOutput> Execute(const core::Backend& backend,
                            const rdf::Dataset& dataset,
                            std::string_view query) {
  return Execute(backend, dataset, query, exec::ExecContext());
}

Result<QueryOutput> Execute(const core::Backend& backend,
                            const rdf::Dataset& dataset,
                            std::string_view query,
                            const exec::ExecContext& ectx) {
  std::optional<ParsedQuery> parsed_opt;
  {
    obs::Span parse_span(ectx.trace(), "sparql.parse");
    SWAN_ASSIGN_OR_RETURN(ParsedQuery parsed, Parse(query));
    parsed_opt = std::move(parsed);
  }
  ParsedQuery& parsed = *parsed_opt;

  // Bind constants against the dictionary. A miss means the graph cannot
  // match: produce the empty result with the right header.
  bool unmatchable = false;
  std::vector<core::BgpPattern> patterns;
  {
    obs::Span bind_span(ectx.trace(), "sparql.bind");
    patterns = Bind(parsed, dataset, &unmatchable);
    bind_span.set_rows_out(patterns.size());
  }

  // Projection validation happens even for unmatchable queries.
  std::vector<std::string> all_vars;
  {
    std::unordered_set<std::string> seen;
    for (const core::BgpPattern& p : patterns) {
      for (const core::Term* t : {&p.subject, &p.property, &p.object}) {
        if (t->is_var && seen.insert(t->var).second) all_vars.push_back(t->var);
      }
    }
  }
  const std::vector<std::string>& projection =
      parsed.projection.empty() ? all_vars : parsed.projection;
  for (const std::string& var : projection) {
    if (std::find(all_vars.begin(), all_vars.end(), var) == all_vars.end()) {
      return Status::InvalidArgument("projected variable ?" + var +
                                     " does not occur in WHERE");
    }
  }

  QueryOutput output;
  output.vars = projection;
  if (unmatchable) return output;

  SWAN_ASSIGN_OR_RETURN(core::BgpResult bgp,
                        core::ExecuteBgp(backend, patterns, ectx));

  // The evaluator may reorder patterns, so binding columns are located by
  // name against the result's own variable list.
  std::vector<size_t> column_of;
  for (const std::string& var : projection) {
    const auto it = std::find(bgp.vars.begin(), bgp.vars.end(), var);
    SWAN_CHECK_MSG(it != bgp.vars.end(), "projected variable lost by BGP");
    column_of.push_back(static_cast<size_t>(it - bgp.vars.begin()));
  }

  // Project, optionally deduplicate, apply LIMIT, decode.
  obs::Span project_span(ectx.trace(), "sparql.project");
  project_span.set_rows_in(bgp.rows.size());
  std::vector<std::vector<uint64_t>> projected;
  projected.reserve(bgp.rows.size());
  for (const auto& row : bgp.rows) {
    std::vector<uint64_t> out_row;
    out_row.reserve(column_of.size());
    for (size_t c : column_of) out_row.push_back(row[c]);
    projected.push_back(std::move(out_row));
  }
  if (parsed.distinct) {
    std::sort(projected.begin(), projected.end());
    projected.erase(std::unique(projected.begin(), projected.end()),
                    projected.end());
  }
  if (parsed.limit && projected.size() > *parsed.limit) {
    projected.resize(*parsed.limit);
  }
  for (const auto& ids : projected) {
    Row row;
    row.ids = ids;
    for (uint64_t id : ids) {
      row.text.emplace_back(dataset.dict().Lookup(id));
    }
    output.rows.push_back(std::move(row));
  }
  project_span.set_rows_out(output.rows.size());
  return output;
}

}  // namespace swan::sparql
