#include "sparql/sparql.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "core/bgp.h"
#include "obs/trace.h"
#include "plan/optimizer.h"
#include "plan/physical.h"

namespace swan::sparql {

namespace {

// --- Lexer ----------------------------------------------------------------

enum class TokenKind {
  kKeyword,   // SELECT / WHERE / FILTER / ... (case-insensitive)
  kVariable,  // ?name
  kIri,       // <...>
  kLiteral,   // "..." with optional @lang / ^^<iri> suffix
  kPrefixedName,  // ns:local  (also bare "ns:" in PREFIX declarations)
  kStar,
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kComma,
  kDot,
  kNumber,  // digits with an optional fraction
  kOp,      // < <= > >= = !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    for (;;) {
      SkipWhitespaceAndComments();
      Token token;
      token.line = line_;
      token.column = column_;
      if (AtEnd()) {
        token.kind = TokenKind::kEnd;
        out.push_back(token);
        return out;
      }
      const char c = Peek();
      if (c == '?') {
        Advance();
        token.kind = TokenKind::kVariable;
        while (!AtEnd() && (std::isalnum(Peek()) || Peek() == '_')) {
          token.text += Take();
        }
        if (token.text.empty()) return Error(token, "empty variable name");
      } else if (c == '<') {
        // '<' opens either an IRI or a comparison operator: it is an IRI
        // exactly when a '>' follows before any character that cannot be
        // part of an IRI (whitespace, quotes, parens, another '<', '?').
        if (LooksLikeIri()) {
          token.kind = TokenKind::kIri;
          token.text += Take();
          while (!AtEnd() && Peek() != '>') token.text += Take();
          if (AtEnd()) return Error(token, "unterminated IRI");
          token.text += Take();  // '>'
        } else {
          token.kind = TokenKind::kOp;
          token.text += Take();
          if (!AtEnd() && Peek() == '=') token.text += Take();
        }
      } else if (c == '>') {
        token.kind = TokenKind::kOp;
        token.text += Take();
        if (!AtEnd() && Peek() == '=') token.text += Take();
      } else if (c == '=') {
        token.kind = TokenKind::kOp;
        token.text += Take();
      } else if (c == '!') {
        token.text += Take();
        if (AtEnd() || Peek() != '=') return Error(token, "expected '!='");
        token.text += Take();
        token.kind = TokenKind::kOp;
      } else if (c == '"') {
        token.kind = TokenKind::kLiteral;
        token.text += Take();
        while (!AtEnd() && Peek() != '"') {
          if (Peek() == '\\') token.text += Take();
          if (AtEnd()) break;
          token.text += Take();
        }
        if (AtEnd()) return Error(token, "unterminated literal");
        token.text += Take();  // closing quote
        // Optional @lang or ^^<iri> suffix, kept verbatim.
        if (!AtEnd() && Peek() == '@') {
          while (!AtEnd() && (std::isalnum(Peek()) || Peek() == '@' ||
                              Peek() == '-')) {
            token.text += Take();
          }
        } else if (!AtEnd() && Peek() == '^') {
          token.text += Take();
          if (AtEnd() || Peek() != '^') return Error(token, "expected '^^'");
          token.text += Take();
          if (AtEnd() || Peek() != '<') {
            return Error(token, "expected IRI after '^^'");
          }
          while (!AtEnd() && Peek() != '>') token.text += Take();
          if (AtEnd()) return Error(token, "unterminated datatype IRI");
          token.text += Take();
        }
      } else if (c == '*') {
        token.kind = TokenKind::kStar;
        token.text = Take();
      } else if (c == '{') {
        token.kind = TokenKind::kLBrace;
        token.text = Take();
      } else if (c == '}') {
        token.kind = TokenKind::kRBrace;
        token.text = Take();
      } else if (c == '(') {
        token.kind = TokenKind::kLParen;
        token.text = Take();
      } else if (c == ')') {
        token.kind = TokenKind::kRParen;
        token.text = Take();
      } else if (c == ',') {
        token.kind = TokenKind::kComma;
        token.text = Take();
      } else if (c == '.') {
        token.kind = TokenKind::kDot;
        token.text = Take();
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        token.kind = TokenKind::kNumber;
        while (!AtEnd() && std::isdigit(Peek())) token.text += Take();
        // Fraction, only when a digit follows the '.' — so the pattern
        // separator in "LIMIT 10 ." stays a dot token.
        if (!AtEnd() && Peek() == '.' && pos_ + 1 < input_.size() &&
            std::isdigit(static_cast<unsigned char>(input_[pos_ + 1]))) {
          token.text += Take();
          while (!AtEnd() && std::isdigit(Peek())) token.text += Take();
        }
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        // Keyword or prefixed name.
        while (!AtEnd() &&
               (std::isalnum(Peek()) || Peek() == '_' || Peek() == '-')) {
          token.text += Take();
        }
        if (!AtEnd() && Peek() == ':') {
          token.text += Take();  // ':'
          while (!AtEnd() &&
                 (std::isalnum(Peek()) || Peek() == '_' || Peek() == '-' ||
                  Peek() == '.' || Peek() == '/')) {
            token.text += Take();
          }
          token.kind = TokenKind::kPrefixedName;
        } else {
          token.kind = TokenKind::kKeyword;
        }
      } else if (c == ':') {
        // Prefixed name with the empty prefix, e.g. ":local".
        token.text += Take();
        while (!AtEnd() &&
               (std::isalnum(Peek()) || Peek() == '_' || Peek() == '-' ||
                Peek() == '.' || Peek() == '/')) {
          token.text += Take();
        }
        token.kind = TokenKind::kPrefixedName;
      } else {
        token.text = std::string(1, c);
        return Error(token, "unexpected character '" + token.text + "'");
      }
      out.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char Take() {
    const char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  void Advance() { Take(); }

  bool LooksLikeIri() const {
    for (size_t j = pos_ + 1; j < input_.size(); ++j) {
      const char ch = input_[j];
      if (ch == '>') return true;
      if (std::isspace(static_cast<unsigned char>(ch)) || ch == '<' ||
          ch == '"' || ch == '(' || ch == ')' || ch == ',' || ch == '?') {
        return false;
      }
    }
    return false;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      } else if (Peek() == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        return;
      }
    }
  }

  Status Error(const Token& at, const std::string& message) const {
    return Status::InvalidArgument(std::to_string(at.line) + ":" +
                                   std::to_string(at.column) + ": " + message);
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// --- Parser ----------------------------------------------------------------

bool KeywordIs(const Token& token, std::string_view keyword) {
  if (token.kind != TokenKind::kKeyword) return false;
  if (token.text.size() != keyword.size()) return false;
  for (size_t i = 0; i < keyword.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(token.text[i])) != keyword[i]) {
      return false;
    }
  }
  return true;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Run() {
    ParsedQuery query;
    // PREFIX declarations.
    while (KeywordIs(Current(), "PREFIX")) {
      Next();
      if (Current().kind != TokenKind::kPrefixedName ||
          Current().text.back() != ':') {
        return Error("expected prefix name ending in ':'");
      }
      const std::string prefix =
          Current().text.substr(0, Current().text.size() - 1);
      Next();
      if (Current().kind != TokenKind::kIri) {
        return Error("expected IRI after prefix name");
      }
      // Strip the angle brackets; they are re-added on expansion.
      prefixes_[prefix] =
          Current().text.substr(1, Current().text.size() - 2);
      Next();
    }

    if (!KeywordIs(Current(), "SELECT")) return Error("expected SELECT");
    Next();
    if (KeywordIs(Current(), "DISTINCT")) {
      query.distinct = true;
      Next();
    }
    if (Current().kind == TokenKind::kStar) {
      Next();
    } else {
      while (Current().kind == TokenKind::kVariable) {
        query.projection.push_back(Current().text);
        Next();
      }
      if (query.projection.empty()) {
        return Error("expected '*' or at least one ?variable");
      }
    }

    if (!KeywordIs(Current(), "WHERE")) return Error("expected WHERE");
    Next();
    if (Current().kind != TokenKind::kLBrace) return Error("expected '{'");
    Next();

    if (Current().kind == TokenKind::kLBrace) {
      // Union form: WHERE { { ... } UNION { ... } ... }.
      for (;;) {
        Next();  // inner '{'
        ParsedBranch branch;
        SWAN_RETURN_NOT_OK(ParseBranchBody(&branch));
        Next();  // inner '}' (ParseBranchBody stops on it)
        query.branches.push_back(std::move(branch));
        if (KeywordIs(Current(), "UNION")) {
          Next();
          if (Current().kind != TokenKind::kLBrace) {
            return Error("expected '{' after UNION");
          }
          continue;
        }
        break;
      }
      if (Current().kind != TokenKind::kRBrace) return Error("expected '}'");
      Next();
    } else {
      ParsedBranch branch;
      SWAN_RETURN_NOT_OK(ParseBranchBody(&branch));
      Next();  // '}'
      query.branches.push_back(std::move(branch));
    }

    // LIMIT / OFFSET, in either order, each at most once.
    bool saw_limit = false, saw_offset = false;
    while (KeywordIs(Current(), "LIMIT") || KeywordIs(Current(), "OFFSET")) {
      const bool is_limit = KeywordIs(Current(), "LIMIT");
      if (is_limit && saw_limit) return Error("duplicate LIMIT");
      if (!is_limit && saw_offset) return Error("duplicate OFFSET");
      Next();
      if (Current().kind != TokenKind::kNumber ||
          Current().text.find('.') != std::string::npos) {
        return Error(is_limit ? "expected number after LIMIT"
                              : "expected number after OFFSET");
      }
      if (is_limit) {
        query.limit = std::stoull(Current().text);
        saw_limit = true;
      } else {
        query.offset = std::stoull(Current().text);
        saw_offset = true;
      }
      Next();
    }
    if (Current().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input '" + Current().text + "'");
    }
    for (const ParsedBranch& branch : query.branches) {
      if (branch.required.patterns.empty()) return Error("empty WHERE block");
    }
    query.patterns = query.branches.front().required.patterns;
    return query;
  }

 private:
  const Token& Current() const { return tokens_[pos_]; }
  void Next() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(std::to_string(Current().line) + ":" +
                                   std::to_string(Current().column) + ": " +
                                   message);
  }

  // Parses patterns, filters and OPTIONAL groups until the closing '}'
  // (not consumed).
  Status ParseBranchBody(ParsedBranch* branch) {
    while (Current().kind != TokenKind::kRBrace) {
      if (Current().kind == TokenKind::kEnd) return Error("expected '}'");
      if (KeywordIs(Current(), "UNION")) {
        return Error("UNION branches must each be enclosed in '{ ... }'");
      }
      if (KeywordIs(Current(), "FILTER")) {
        ParsedFilter filter;
        SWAN_RETURN_NOT_OK(ParseFilter(&filter));
        branch->required.filters.push_back(std::move(filter));
        continue;
      }
      if (KeywordIs(Current(), "OPTIONAL")) {
        Next();
        if (Current().kind != TokenKind::kLBrace) {
          return Error("expected '{' after OPTIONAL");
        }
        Next();
        ParsedGroup group;
        SWAN_RETURN_NOT_OK(ParseGroupBody(&group));
        Next();  // '}'
        if (group.patterns.empty()) {
          return Error("empty OPTIONAL block");
        }
        branch->optionals.push_back(std::move(group));
        continue;
      }
      SWAN_RETURN_NOT_OK(ParsePatternInto(&branch->required));
    }
    return Status::OK();
  }

  // Patterns + filters until '}' (not consumed); no nesting.
  Status ParseGroupBody(ParsedGroup* group) {
    while (Current().kind != TokenKind::kRBrace) {
      if (Current().kind == TokenKind::kEnd) return Error("expected '}'");
      if (KeywordIs(Current(), "OPTIONAL")) {
        return Error("nested OPTIONAL is not supported");
      }
      if (KeywordIs(Current(), "UNION")) {
        return Error("UNION is not supported inside OPTIONAL");
      }
      if (KeywordIs(Current(), "FILTER")) {
        ParsedFilter filter;
        SWAN_RETURN_NOT_OK(ParseFilter(&filter));
        group->filters.push_back(std::move(filter));
        continue;
      }
      SWAN_RETURN_NOT_OK(ParsePatternInto(group));
    }
    return Status::OK();
  }

  Status ParsePatternInto(ParsedGroup* group) {
    ParsedPattern pattern;
    SWAN_ASSIGN_OR_RETURN(pattern.subject, ParseTerm(/*literal_ok=*/false));
    SWAN_ASSIGN_OR_RETURN(pattern.property, ParseTerm(/*literal_ok=*/false));
    SWAN_ASSIGN_OR_RETURN(pattern.object, ParseTerm(/*literal_ok=*/true));
    group->patterns.push_back(std::move(pattern));
    if (Current().kind == TokenKind::kDot) Next();
    return Status::OK();
  }

  Status ParseFilter(ParsedFilter* filter) {
    Next();  // FILTER
    if (Current().kind != TokenKind::kLParen) {
      return Error("expected '(' after FILTER");
    }
    Next();
    if (Current().kind != TokenKind::kVariable) {
      return Error("expected ?variable in FILTER");
    }
    filter->var = Current().text;
    Next();
    if (KeywordIs(Current(), "IN")) {
      filter->op = "IN";
      Next();
      if (Current().kind != TokenKind::kLParen) {
        return Error("expected '(' after IN");
      }
      Next();
      for (;;) {
        ParsedTerm value;
        SWAN_ASSIGN_OR_RETURN(value, ParseOperand());
        filter->values.push_back(std::move(value));
        if (Current().kind == TokenKind::kComma) {
          Next();
          continue;
        }
        break;
      }
      if (Current().kind != TokenKind::kRParen) {
        return Error("expected ')' closing the IN list");
      }
      Next();
    } else if (Current().kind == TokenKind::kOp) {
      filter->op = Current().text;
      Next();
      ParsedTerm value;
      SWAN_ASSIGN_OR_RETURN(value, ParseOperand());
      filter->values.push_back(std::move(value));
    } else {
      return Error("expected a comparison operator or IN in FILTER");
    }
    if (Current().kind != TokenKind::kRParen) {
      return Error("expected ')' closing FILTER");
    }
    Next();
    return Status::OK();
  }

  Result<ParsedTerm> ParseOperand() {
    if (Current().kind == TokenKind::kNumber) {
      ParsedTerm term;
      term.kind = ParsedTerm::Kind::kNumber;
      term.text = Current().text;
      Next();
      return term;
    }
    return ParseTerm(/*literal_ok=*/true);
  }

  Result<ParsedTerm> ParseTerm(bool literal_ok) {
    ParsedTerm term;
    switch (Current().kind) {
      case TokenKind::kVariable:
        term.kind = ParsedTerm::Kind::kVariable;
        term.text = Current().text;
        break;
      case TokenKind::kIri:
        term.kind = ParsedTerm::Kind::kIri;
        term.text = Current().text;
        break;
      case TokenKind::kLiteral:
        if (!literal_ok) {
          return Error("literal not allowed in this position");
        }
        term.kind = ParsedTerm::Kind::kLiteral;
        term.text = Current().text;
        break;
      case TokenKind::kPrefixedName: {
        const std::string& name = Current().text;
        const size_t colon = name.find(':');
        const std::string prefix = name.substr(0, colon);
        auto it = prefixes_.find(prefix);
        if (it == prefixes_.end()) {
          return Error("undeclared prefix '" + prefix + ":'");
        }
        term.kind = ParsedTerm::Kind::kIri;
        term.text = "<" + it->second + name.substr(colon + 1) + ">";
        break;
      }
      default:
        return Error("expected a term, got '" + Current().text + "'");
    }
    Next();
    return term;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

// --- Lowering helpers ------------------------------------------------------

// Numeric value of a term's text: bare digits, or a quoted literal whose
// lexical form (before any @lang / ^^ suffix) parses fully as a number.
std::optional<double> NumericValueOfText(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text.front() == '"') {
    const size_t close = text.find('"', 1);
    if (close == std::string_view::npos) return std::nullopt;
    text = text.substr(1, close - 1);
  }
  if (text.empty()) return std::nullopt;
  const std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

plan::FilterOp FilterOpFromText(const std::string& op) {
  if (op == "<") return plan::FilterOp::kLt;
  if (op == "<=") return plan::FilterOp::kLe;
  if (op == ">") return plan::FilterOp::kGt;
  if (op == ">=") return plan::FilterOp::kGe;
  if (op == "=") return plan::FilterOp::kEq;
  if (op == "!=") return plan::FilterOp::kNe;
  return plan::FilterOp::kIn;
}

plan::FilterExpr CompileFilter(const ParsedFilter& parsed,
                               const rdf::Dataset& dataset) {
  plan::FilterExpr filter;
  filter.var = parsed.var;
  filter.op = FilterOpFromText(parsed.op);
  const bool relational = filter.op == plan::FilterOp::kLt ||
                          filter.op == plan::FilterOp::kLe ||
                          filter.op == plan::FilterOp::kGt ||
                          filter.op == plan::FilterOp::kGe;
  for (const ParsedTerm& term : parsed.values) {
    plan::FilterOperand value;
    if (term.kind == ParsedTerm::Kind::kVariable) {
      value.var = term.text;
    } else if (term.kind == ParsedTerm::Kind::kNumber) {
      value.number = NumericValueOfText(term.text);
    } else if (relational) {
      // A relational comparison is numeric-only: a term operand whose
      // lexical form is not a number can never compare true.
      const auto number = NumericValueOfText(term.text);
      if (number) {
        value.number = number;
      } else {
        filter.impossible = true;
      }
    } else {
      // Identity comparison: bind the term; a dictionary miss leaves the
      // operand empty — a valid term that equals nothing in the store.
      const auto id = dataset.dict().Find(term.text);
      if (id) value.id = *id;
    }
    filter.values.push_back(std::move(value));
  }
  return filter;
}

// Binds one parsed term; a constant absent from the dictionary sets
// *unsatisfiable (the scan can never match).
plan::Term BindTerm(const ParsedTerm& term, const rdf::Dataset& dataset,
                    bool* unsatisfiable) {
  if (term.kind == ParsedTerm::Kind::kVariable) {
    return plan::Term::Var(term.text);
  }
  const auto id = dataset.dict().Find(term.text);
  if (!id) {
    *unsatisfiable = true;
    return plan::Term::Const(0);
  }
  return plan::Term::Const(*id);
}

std::unique_ptr<plan::LogicalNode> BuildGroupNode(
    const ParsedGroup& group, const rdf::Dataset& dataset) {
  std::vector<std::unique_ptr<plan::LogicalNode>> scans;
  for (const ParsedPattern& p : group.patterns) {
    bool unsatisfiable = false;
    plan::BgpPattern pattern;
    pattern.subject = BindTerm(p.subject, dataset, &unsatisfiable);
    pattern.property = BindTerm(p.property, dataset, &unsatisfiable);
    pattern.object = BindTerm(p.object, dataset, &unsatisfiable);
    scans.push_back(plan::MakeScan(std::move(pattern), unsatisfiable));
  }
  std::unique_ptr<plan::LogicalNode> node = plan::MakeJoin(std::move(scans));
  for (const ParsedFilter& f : group.filters) {
    node = plan::MakeFilter(CompileFilter(f, dataset), std::move(node));
  }
  return node;
}

}  // namespace

Result<ParsedQuery> Parse(std::string_view query) {
  Lexer lexer(query);
  SWAN_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Run();
}

Result<plan::LogicalPlan> BuildLogicalPlan(const ParsedQuery& parsed,
                                           const rdf::Dataset& dataset) {
  plan::LogicalPlan logical;
  std::vector<std::unique_ptr<plan::LogicalNode>> branches;
  for (const ParsedBranch& branch : parsed.branches) {
    // Required join, then the left-joined optionals (group filters stay
    // inside their group), then the branch-level filters outermost.
    ParsedGroup required_patterns_only;
    required_patterns_only.patterns = branch.required.patterns;
    std::unique_ptr<plan::LogicalNode> node =
        BuildGroupNode(required_patterns_only, dataset);
    for (const ParsedGroup& optional : branch.optionals) {
      node = plan::MakeLeftJoin(std::move(node),
                                BuildGroupNode(optional, dataset));
    }
    for (const ParsedFilter& f : branch.required.filters) {
      node = plan::MakeFilter(CompileFilter(f, dataset), std::move(node));
    }
    branches.push_back(std::move(node));
  }
  if (branches.size() == 1) {
    logical.root = std::move(branches.front());
  } else {
    logical.root = plan::MakeUnion(std::move(branches));
  }

  // Solution modifiers, innermost first: Distinct, Project, Slice.
  logical.distinct = parsed.distinct;
  if (parsed.distinct) {
    auto distinct = std::make_unique<plan::LogicalNode>();
    distinct->op = plan::LogicalOp::kDistinct;
    distinct->children.push_back(std::move(logical.root));
    logical.root = std::move(distinct);
  }
  if (!parsed.projection.empty()) {
    auto project = std::make_unique<plan::LogicalNode>();
    project->op = plan::LogicalOp::kProject;
    project->projection = parsed.projection;
    project->children.push_back(std::move(logical.root));
    logical.root = std::move(project);
  }
  if (parsed.limit || parsed.offset) {
    auto slice = std::make_unique<plan::LogicalNode>();
    slice->op = plan::LogicalOp::kSlice;
    slice->offset = parsed.offset;
    slice->limit = parsed.limit;
    slice->children.push_back(std::move(logical.root));
    logical.root = std::move(slice);
  }

  // Numeric filter support: decode a dictionary id to its numeric value.
  logical.numeric = [dict = &dataset.dict()](
                        uint64_t id) -> std::optional<double> {
    if (id >= dict->size()) return std::nullopt;
    return NumericValueOfText(dict->Lookup(id));
  };
  return logical;
}

std::vector<core::BgpPattern> Bind(const ParsedQuery& parsed,
                                   const rdf::Dataset& dataset,
                                   bool* unmatchable) {
  *unmatchable = false;
  std::vector<core::BgpPattern> patterns;
  auto bind = [&](const ParsedTerm& term) -> core::Term {
    if (term.kind == ParsedTerm::Kind::kVariable) {
      return core::Term::Var(term.text);
    }
    const auto id = dataset.dict().Find(term.text);
    if (!id) {
      *unmatchable = true;
      return core::Term::Const(0);
    }
    return core::Term::Const(*id);
  };
  for (const ParsedPattern& p : parsed.patterns) {
    core::BgpPattern pattern;
    pattern.subject = bind(p.subject);
    pattern.property = bind(p.property);
    pattern.object = bind(p.object);
    patterns.push_back(std::move(pattern));
  }
  return patterns;
}

std::string CanonicalQueryText(std::string_view query) {
  // Bare words that are keywords in the grammar; upper-cased so casing
  // variants share one cache entry. Variables, prefixed names, IRIs and
  // literals are copied verbatim (a word followed by ':' is a prefixed
  // name, and `?select` is a variable, never a keyword).
  static const std::unordered_set<std::string>* const kKeywords =
      new std::unordered_set<std::string>{
          "PREFIX", "SELECT", "DISTINCT", "WHERE",    "LIMIT",
          "OFFSET", "FILTER", "OPTIONAL", "UNION",    "IN"};
  std::string out;
  out.reserve(query.size());
  bool pending_space = false;
  size_t i = 0;
  const auto emit = [&](char c) {
    if (pending_space && !out.empty()) out.push_back(' ');
    pending_space = false;
    out.push_back(c);
  };
  const auto is_word_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
  };
  while (i < query.size()) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < query.size() && query[i] != '\n') ++i;
      continue;
    }
    if (c == '"') {  // quoted literal: copy verbatim, honoring \-escapes
      emit(c);
      ++i;
      while (i < query.size()) {
        const char q = query[i++];
        out.push_back(q);
        if (q == '\\' && i < query.size()) {
          out.push_back(query[i++]);
        } else if (q == '"') {
          break;
        }
      }
      continue;
    }
    if (c == '<') {
      // IRI (same lookahead as the lexer): copy verbatim so an IRI like
      // <http://ex.org/select> is never keyword-cased.
      size_t close = std::string_view::npos;
      for (size_t j = i + 1; j < query.size(); ++j) {
        const char ch = query[j];
        if (ch == '>') {
          close = j;
          break;
        }
        if (std::isspace(static_cast<unsigned char>(ch)) || ch == '<' ||
            ch == '"' || ch == '(' || ch == ')' || ch == ',' || ch == '?') {
          break;
        }
      }
      if (close != std::string_view::npos) {
        emit(c);
        for (size_t j = i + 1; j <= close; ++j) out.push_back(query[j]);
        i = close + 1;
        continue;
      }
    }
    if (c == '?') {  // variable: '?' plus name, verbatim
      emit(c);
      ++i;
      while (i < query.size() &&
             (std::isalnum(static_cast<unsigned char>(query[i])) ||
              query[i] == '_')) {
        out.push_back(query[i++]);
      }
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      size_t j = i;
      while (j < query.size() && is_word_char(query[j])) word += query[j++];
      if (j < query.size() && query[j] == ':') {
        // Prefixed name: word, ':' and the local part, all verbatim.
        word += query[j++];
        while (j < query.size() &&
               (is_word_char(query[j]) || query[j] == '.' ||
                query[j] == '/')) {
          word += query[j++];
        }
        for (char w : word) emit(w);
        i = j;
        continue;
      }
      std::string upper = word;
      for (char& w : upper) {
        w = static_cast<char>(std::toupper(static_cast<unsigned char>(w)));
      }
      const std::string& text =
          kKeywords->count(upper) != 0 ? upper : word;
      for (char w : text) emit(w);
      i = j;
      continue;
    }
    emit(c);
    ++i;
  }
  return out;
}

Result<QueryOutput> Execute(const core::Backend& backend,
                            const rdf::Dataset& dataset,
                            std::string_view query) {
  return Execute(backend, dataset, query, exec::ExecContext());
}

Result<QueryOutput> Execute(const core::Backend& backend,
                            const rdf::Dataset& dataset,
                            std::string_view query,
                            const exec::ExecContext& ectx) {
  return Execute(backend, dataset, query, ectx, nullptr);
}

Result<QueryOutput> Execute(const core::Backend& backend,
                            const rdf::Dataset& dataset,
                            std::string_view query,
                            const exec::ExecContext& ectx,
                            const plan::StoreStats* stats) {
  std::optional<ParsedQuery> parsed_opt;
  {
    obs::Span parse_span(ectx.trace(), "sparql.parse");
    SWAN_ASSIGN_OR_RETURN(ParsedQuery parsed, Parse(query));
    parsed_opt = std::move(parsed);
  }
  ParsedQuery& parsed = *parsed_opt;

  // Lower to the logical algebra: constants bound, filters compiled,
  // unsatisfiable scans marked for constant folding.
  plan::LogicalPlan logical;
  {
    obs::Span bind_span(ectx.trace(), "sparql.bind");
    SWAN_ASSIGN_OR_RETURN(logical, BuildLogicalPlan(parsed, dataset));
    size_t pattern_count = 0;
    for (const ParsedBranch& branch : parsed.branches) {
      pattern_count += branch.required.patterns.size();
      for (const ParsedGroup& optional : branch.optionals) {
        pattern_count += optional.patterns.size();
      }
    }
    bind_span.set_rows_out(pattern_count);
  }

  // Projection validation happens even for constant-folded-empty queries.
  const std::vector<std::string> all_vars = plan::CollectVars(*logical.root);
  const std::vector<std::string>& projection =
      parsed.projection.empty() ? all_vars : parsed.projection;
  for (const std::string& var : projection) {
    if (std::find(all_vars.begin(), all_vars.end(), var) == all_vars.end()) {
      return Status::InvalidArgument("projected variable ?" + var +
                                     " does not occur in WHERE");
    }
  }

  plan::PhysicalPlan physical;
  {
    obs::Span plan_span(ectx.trace(), "bgp.plan");
    plan::PlannerOptions options;
    if (stats != nullptr) {
      options.mode = plan::PlanMode::kCostBased;
      options.stats = stats;
      options.hints = backend.PlannerHints();
    }
    physical = plan::Optimize(logical, options);
    plan_span.set_rows_in(physical.branches.size());
  }

  QueryOutput output;
  output.vars = projection;
  output.plan_note = physical.mode_note;

  SWAN_ASSIGN_OR_RETURN(core::BgpResult bgp,
                        core::ExecutePlan(backend, physical, ectx));

  // Binding columns are located by name against the result's variable
  // list (textual order, shared by every branch).
  std::vector<size_t> column_of;
  for (const std::string& var : projection) {
    const auto it = std::find(bgp.vars.begin(), bgp.vars.end(), var);
    SWAN_CHECK_MSG(it != bgp.vars.end(), "projected variable lost by BGP");
    column_of.push_back(static_cast<size_t>(it - bgp.vars.begin()));
  }

  // Project, optionally deduplicate, apply OFFSET/LIMIT, decode.
  obs::Span project_span(ectx.trace(), "sparql.project");
  project_span.set_rows_in(bgp.rows.size());
  std::vector<std::vector<uint64_t>> projected;
  projected.reserve(bgp.rows.size());
  for (const auto& row : bgp.rows) {
    std::vector<uint64_t> out_row;
    out_row.reserve(column_of.size());
    for (size_t c : column_of) out_row.push_back(row[c]);
    projected.push_back(std::move(out_row));
  }
  if (parsed.distinct) {
    std::sort(projected.begin(), projected.end());
    projected.erase(std::unique(projected.begin(), projected.end()),
                    projected.end());
  }
  if (parsed.offset) {
    if (*parsed.offset >= projected.size()) {
      projected.clear();
    } else {
      projected.erase(projected.begin(),
                      projected.begin() +
                          static_cast<ptrdiff_t>(*parsed.offset));
    }
  }
  if (parsed.limit && projected.size() > *parsed.limit) {
    projected.resize(*parsed.limit);
  }
  for (const auto& ids : projected) {
    Row row;
    row.ids = ids;
    for (uint64_t id : ids) {
      // kUnbound (an OPTIONAL with no match) decodes to the empty string.
      if (id == plan::kUnbound) {
        row.text.emplace_back();
      } else {
        row.text.emplace_back(dataset.dict().Lookup(id));
      }
    }
    output.rows.push_back(std::move(row));
  }
  project_span.set_rows_out(output.rows.size());
  return output;
}

}  // namespace swan::sparql
