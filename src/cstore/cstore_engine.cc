#include "cstore/cstore_engine.h"

#include <algorithm>
#include <unordered_set>

#include "colstore/ops.h"
#include "common/macros.h"

namespace swan::cstore {

using colstore::CountByKeyDense;
using colstore::Gather;
using colstore::MarkSet;
using colstore::MergeCountMatches;
using colstore::MergeJoin;
using colstore::MergeSelectPositions;
using colstore::PositionVector;
using colstore::SelectEq;
using colstore::SortedIntersect;
using colstore::UnionDistinct;

storage::DiskConfig CStoreEngine::RecommendedDiskConfig(
    double bandwidth_mb_per_s) {
  storage::DiskConfig config;
  config.bandwidth_mb_per_s = bandwidth_mb_per_s;
  config.seek_latency_ms = 2.0;
  config.forced_seek_interval_pages = 4;
  return config;
}

CStoreEngine::CStoreEngine(storage::BufferPool* pool,
                           storage::SimulatedDisk* disk)
    : pool_(pool), disk_(disk) {}

void CStoreEngine::Load(std::span<const rdf::Triple> triples,
                        std::span<const uint64_t> properties) {
  SWAN_CHECK_MSG(partitions_.empty(), "CStoreEngine::Load called twice");
  const std::unordered_set<uint64_t> wanted(properties.begin(),
                                            properties.end());
  std::map<uint64_t, std::vector<std::pair<uint64_t, uint64_t>>> groups;
  for (const rdf::Triple& t : triples) {
    if (wanted.count(t.property) != 0) {
      groups[t.property].emplace_back(t.subject, t.object);
    }
  }
  for (auto& [prop, rows] : groups) {
    std::sort(rows.begin(), rows.end());
    properties_.push_back(prop);
    Partition part;
    // The real C-Store compresses aggressively; pick the best codec per
    // column (sorted subjects delta-compress, objects fall back as needed).
    part.subj = std::make_unique<colstore::Column>(
        pool_, disk_, colstore::ColumnCodec::kAuto);
    part.obj = std::make_unique<colstore::Column>(
        pool_, disk_, colstore::ColumnCodec::kAuto);
    std::vector<uint64_t> buf(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) buf[i] = rows[i].first;
    part.subj->Build(buf);
    for (size_t i = 0; i < rows.size(); ++i) buf[i] = rows[i].second;
    part.obj->Build(buf);
    partitions_.emplace(prop, std::move(part));
  }
}

const std::vector<uint64_t>& CStoreEngine::Subjects(uint64_t property) const {
  auto it = partitions_.find(property);
  SWAN_CHECK_MSG(it != partitions_.end(), "property not loaded in C-Store");
  return it->second.subj->Get();
}

const std::vector<uint64_t>& CStoreEngine::Objects(uint64_t property) const {
  auto it = partitions_.find(property);
  SWAN_CHECK_MSG(it != partitions_.end(), "property not loaded in C-Store");
  return it->second.obj->Get();
}

std::vector<uint64_t> CStoreEngine::SubjectsWhereObjEq(
    uint64_t property, uint64_t object, const exec::ExecContext& ectx) const {
  if (!HasProperty(property)) return {};
  const PositionVector sel = SelectEq(Objects(property), object, ectx);
  return Gather(Subjects(property), sel, ectx);
}

CStoreEngine::Rows CStoreEngine::Q1(const CStoreConstants& c,
                                    const exec::ExecContext& ectx) const {
  Rows rows;
  if (!HasProperty(c.type)) return rows;
  for (const auto& [obj, count] : CountByKeyDense(Objects(c.type),
                                                  c.dict_size, ectx)) {
    rows.push_back({obj, count});
  }
  return rows;
}

CStoreEngine::Rows CStoreEngine::CountMatchesPerProperty(
    const std::vector<uint64_t>& keys, const exec::ExecContext& ectx) const {
  // One independent merge-count sub-plan per partition, fanned out across
  // the pool and emitted in property order.
  std::vector<uint64_t> counts(properties_.size(), 0);
  ectx.ParallelFor(
      properties_.size(), 1, [&](uint64_t b, uint64_t e, uint64_t) {
        for (uint64_t k = b; k < e; ++k) {
          counts[k] = MergeCountMatches(Subjects(properties_[k]), keys, ectx);
        }
      });
  Rows rows;
  for (size_t k = 0; k < properties_.size(); ++k) {
    if (counts[k] > 0) rows.push_back({properties_[k], counts[k]});
  }
  return rows;
}

CStoreEngine::Rows CStoreEngine::GroupObjectsPerProperty(
    const std::vector<uint64_t>& keys, const exec::ExecContext& ectx) const {
  std::vector<Rows> groups(properties_.size());
  ectx.ParallelFor(
      properties_.size(), 1, [&](uint64_t b, uint64_t e, uint64_t) {
        for (uint64_t k = b; k < e; ++k) {
          const uint64_t p = properties_[k];
          const PositionVector sel =
              MergeSelectPositions(Subjects(p), keys, ectx);
          std::vector<uint64_t> objs = Gather(Objects(p), sel, ectx);
          std::sort(objs.begin(), objs.end());
          size_t i = 0;
          while (i < objs.size()) {
            size_t j = i + 1;
            while (j < objs.size() && objs[j] == objs[i]) ++j;
            if (j - i > 1) {
              groups[k].push_back({p, objs[i], static_cast<uint64_t>(j - i)});
            }
            i = j;
          }
        }
      });
  Rows rows;
  for (auto& g : groups) {
    for (auto& row : g) rows.push_back(std::move(row));
  }
  return rows;
}

CStoreEngine::Rows CStoreEngine::Q2(const CStoreConstants& c,
                                    const exec::ExecContext& ectx) const {
  return CountMatchesPerProperty(SubjectsWhereObjEq(c.type, c.text, ectx),
                                 ectx);
}

CStoreEngine::Rows CStoreEngine::Q3(const CStoreConstants& c,
                                    const exec::ExecContext& ectx) const {
  return GroupObjectsPerProperty(SubjectsWhereObjEq(c.type, c.text, ectx),
                                 ectx);
}

CStoreEngine::Rows CStoreEngine::Q4(const CStoreConstants& c,
                                    const exec::ExecContext& ectx) const {
  return GroupObjectsPerProperty(
      SortedIntersect(SubjectsWhereObjEq(c.type, c.text, ectx),
                      SubjectsWhereObjEq(c.language, c.french, ectx)),
      ectx);
}

CStoreEngine::Rows CStoreEngine::Q5(const CStoreConstants& c,
                                    const exec::ExecContext& ectx) const {
  Rows rows;
  if (!HasProperty(c.records) || !HasProperty(c.type)) return rows;
  const std::vector<uint64_t> a = SubjectsWhereObjEq(c.origin, c.dlc, ectx);

  const PositionVector rec_sel =
      MergeSelectPositions(Subjects(c.records), a, ectx);
  std::vector<std::pair<uint64_t, uint64_t>> b_pairs;
  {
    const auto& rs = Subjects(c.records);
    const auto& ro = Objects(c.records);
    for (uint32_t i : rec_sel) b_pairs.emplace_back(ro[i], rs[i]);
  }
  std::sort(b_pairs.begin(), b_pairs.end());
  std::vector<uint64_t> b_objects(b_pairs.size());
  for (size_t i = 0; i < b_pairs.size(); ++i) b_objects[i] = b_pairs[i].first;

  const auto& c_subjects = Subjects(c.type);
  const auto& c_objects = Objects(c.type);
  for (const auto& [bi, ci] : MergeJoin(b_objects, c_subjects, ectx)) {
    if (c_objects[ci] != c.text) {
      rows.push_back({b_pairs[bi].second, c_objects[ci]});
    }
  }
  return rows;
}

CStoreEngine::Rows CStoreEngine::Q6(const CStoreConstants& c,
                                    const exec::ExecContext& ectx) const {
  const std::vector<uint64_t> a1 = SubjectsWhereObjEq(c.type, c.text, ectx);
  MarkSet text_typed(c.dict_size);
  text_typed.MarkAll(a1);

  std::vector<uint64_t> via_records;
  if (HasProperty(c.records)) {
    const auto& rs = Subjects(c.records);
    const auto& ro = Objects(c.records);
    for (size_t i = 0; i < ro.size(); ++i) {
      if (text_typed.Test(ro[i])) via_records.push_back(rs[i]);
    }
  }
  const std::vector<uint64_t> united = UnionDistinct({a1, via_records}, ectx);
  return CountMatchesPerProperty(united, ectx);
}

CStoreEngine::Rows CStoreEngine::Q7(const CStoreConstants& c,
                                    const exec::ExecContext& ectx) const {
  Rows rows;
  if (!HasProperty(c.encoding) || !HasProperty(c.type)) return rows;
  const std::vector<uint64_t> a = SubjectsWhereObjEq(c.point, c.end, ectx);

  auto collect = [&](uint64_t property, std::vector<uint64_t>* subjects,
                     std::vector<uint64_t>* objects) {
    const PositionVector sel =
        MergeSelectPositions(Subjects(property), a, ectx);
    *subjects = Gather(Subjects(property), sel, ectx);
    *objects = Gather(Objects(property), sel, ectx);
  };
  std::vector<uint64_t> b_subj, b_obj, c_subj, c_obj;
  collect(c.encoding, &b_subj, &b_obj);
  collect(c.type, &c_subj, &c_obj);

  for (const auto& [bi, ci] : MergeJoin(b_subj, c_subj, ectx)) {
    rows.push_back({b_subj[bi], b_obj[bi], c_obj[ci]});
  }
  return rows;
}

void CStoreEngine::DropCaches() const {
  for (const auto& [prop, part] : partitions_) {
    part.subj->DropCache();
    part.obj->DropCache();
  }
}

uint64_t CStoreEngine::disk_bytes() const {
  uint64_t total = 0;
  for (const auto& [prop, part] : partitions_) {
    total += part.subj->disk_bytes() + part.obj->disk_bytes();
  }
  return total;
}

void CStoreEngine::AuditInto(audit::AuditLevel level,
                             std::optional<uint64_t> max_valid_id,
                             audit::AuditReport* report) const {
  if (properties_.size() != partitions_.size()) {
    report->Add(audit::FindingClass::kStructure, "cstore",
                "property index has " + std::to_string(properties_.size()) +
                    " entries, partition map has " +
                    std::to_string(partitions_.size()));
  }
  for (uint64_t prop : properties_) {
    if (partitions_.count(prop) == 0) {
      report->Add(audit::FindingClass::kStructure, "cstore",
                  "property " + std::to_string(prop) +
                      " indexed but has no partition");
    }
  }
  for (const auto& [prop, part] : partitions_) {
    const std::string name = "cstore.partition(" + std::to_string(prop) + ")";
    colstore::ColumnAuditOptions subj_opts;
    subj_opts.label = name + ".subject";
    subj_opts.expect_sorted = true;
    subj_opts.max_valid_id = max_valid_id;
    part.subj->AuditInto(level, subj_opts, report);
    colstore::ColumnAuditOptions obj_opts;
    obj_opts.label = name + ".object";
    obj_opts.max_valid_id = max_valid_id;
    part.obj->AuditInto(level, obj_opts, report);
    if (part.subj->size() != part.obj->size()) {
      report->Add(audit::FindingClass::kColumn, name,
                  "subject column has " + std::to_string(part.subj->size()) +
                      " values, object column has " +
                      std::to_string(part.obj->size()));
    }
  }
}

}  // namespace swan::cstore
