#ifndef SWANDB_CSTORE_CSTORE_ENGINE_H_
#define SWANDB_CSTORE_CSTORE_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "audit/audit.h"
#include "colstore/column.h"
#include "exec/exec_context.h"
#include "rdf/triple.h"
#include "storage/buffer_pool.h"
#include "storage/simulated_disk.h"

namespace swan::cstore {

// Re-creation of the original experiment's C-Store setup (§3): an early
// column engine holding *only* the vertically-partitioned tables of the 28
// selected properties, with the seven benchmark query plans hard-wired in
// C++ — there is no way to run q8, the full-scale `*` variants, or any
// other storage scheme, which is precisely the repeatability limitation
// the paper reports.
//
// Its recommended disk configuration issues small scattered reads
// (DiskConfig::forced_seek_interval_pages), so raising the sequential
// bandwidth from machine A to machine B barely improves cold runs — the
// paper's Figure 5 observation that "C-Store only exploits a small
// fraction of the I/O bandwidth".
struct CStoreConstants {
  uint64_t type = 0;
  uint64_t text = 0;
  uint64_t language = 0;
  uint64_t french = 0;
  uint64_t origin = 0;
  uint64_t dlc = 0;
  uint64_t records = 0;
  uint64_t point = 0;
  uint64_t end = 0;
  uint64_t encoding = 0;
  uint64_t dict_size = 0;
};

class CStoreEngine {
 public:
  using Rows = std::vector<std::vector<uint64_t>>;

  // The BerkeleyDB-like access pattern: a seek every 4 pages.
  static storage::DiskConfig RecommendedDiskConfig(double bandwidth_mb_per_s);

  CStoreEngine(storage::BufferPool* pool, storage::SimulatedDisk* disk);

  CStoreEngine(const CStoreEngine&) = delete;
  CStoreEngine& operator=(const CStoreEngine&) = delete;

  // Loads only the triples whose property is in `properties` (the "28
  // interesting properties" subset — hence the small database size the
  // paper notes in §3).
  void Load(std::span<const rdf::Triple> triples,
            std::span<const uint64_t> properties);

  // The seven hard-wired plans, executed under `ectx`'s thread budget.
  Rows Q1(const CStoreConstants& c,
          const exec::ExecContext& ectx = exec::ExecContext()) const;
  Rows Q2(const CStoreConstants& c,
          const exec::ExecContext& ectx = exec::ExecContext()) const;
  Rows Q3(const CStoreConstants& c,
          const exec::ExecContext& ectx = exec::ExecContext()) const;
  Rows Q4(const CStoreConstants& c,
          const exec::ExecContext& ectx = exec::ExecContext()) const;
  Rows Q5(const CStoreConstants& c,
          const exec::ExecContext& ectx = exec::ExecContext()) const;
  Rows Q6(const CStoreConstants& c,
          const exec::ExecContext& ectx = exec::ExecContext()) const;
  Rows Q7(const CStoreConstants& c,
          const exec::ExecContext& ectx = exec::ExecContext()) const;

  void DropCaches() const;
  uint64_t disk_bytes() const;

  const std::vector<uint64_t>& properties() const { return properties_; }
  bool HasProperty(uint64_t p) const { return partitions_.count(p) != 0; }
  const std::vector<uint64_t>& Subjects(uint64_t property) const;
  const std::vector<uint64_t>& Objects(uint64_t property) const;

  // Audit walker: per-partition sorted-subject and id-range checks, plus
  // property-index / partition-map agreement.
  void AuditInto(audit::AuditLevel level, std::optional<uint64_t> max_valid_id,
                 audit::AuditReport* report) const;

 private:
  struct Partition {
    std::unique_ptr<colstore::Column> subj;
    std::unique_ptr<colstore::Column> obj;
  };

  // Sorted subjects with (property, object) — the shared sub-plan.
  std::vector<uint64_t> SubjectsWhereObjEq(uint64_t property, uint64_t object,
                                           const exec::ExecContext& ectx) const;

  // Per-property fan-out shared by q2/q6 (merge-count against `keys`) and
  // q3/q4 (gather + group objects of rows whose subject is in `keys`).
  // Sub-plans run in parallel across the pool; rows come back in
  // property order either way.
  Rows CountMatchesPerProperty(const std::vector<uint64_t>& keys,
                               const exec::ExecContext& ectx) const;
  Rows GroupObjectsPerProperty(const std::vector<uint64_t>& keys,
                               const exec::ExecContext& ectx) const;

  storage::BufferPool* pool_;
  storage::SimulatedDisk* disk_;
  std::vector<uint64_t> properties_;
  std::map<uint64_t, Partition> partitions_;
};

}  // namespace swan::cstore

#endif  // SWANDB_CSTORE_CSTORE_ENGINE_H_
