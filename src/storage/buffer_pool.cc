#include "storage/buffer_pool.h"

#include <cstring>
#include <string>

#include "common/macros.h"
#include "common/mutex.h"
#include "exec/thread_pool.h"

namespace swan::storage {

PageGuard::PageGuard(BufferPool* pool, size_t frame_index, const uint8_t* data)
    : pool_(pool), frame_index_(frame_index), data_(data) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_index_(other.frame_index_), data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(SimulatedDisk* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  SWAN_CHECK_GE(capacity_pages, 8u);
  frames_.reserve(capacity_pages);
}

PageGuard BufferPool::Fetch(PageId id) {
  PageGuard guard;
  Status st = TryFetch(id, &guard);
  SWAN_CHECK_MSG(st.ok(), st.ToString().c_str());
  return guard;
}

Status BufferPool::TryFetch(PageId id, PageGuard* out) {
  MutexLock lock(&mutex_);
  for (;;) {
    auto it = map_.find(id);
    if (it == map_.end()) break;
    Frame& frame = frames_[it->second];
    if (!frame.ready) {
      // Another thread is reading this page from disk. Wait, then re-find:
      // the loader may have hit a checksum error and withdrawn the entry.
      io_cv_.Wait(lock);
      continue;
    }
    ++hits_;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    *out = PageGuard(this, it->second, frame.data.get());
    return Status::OK();
  }

  ++misses_;
  const size_t idx = AllocateFrame();
  Frame& frame = frames_[idx];
  frame.id = id;
  frame.pin_count = 1;
  frame.in_lru = false;
  frame.ready = false;
  map_[id] = idx;

  // The pin keeps the frame un-evictable and the map entry makes same-page
  // fetchers wait instead of duplicating the read, so the lock can drop
  // for the (virtually slow) transfer.
  lock.Unlock();
  Status st = disk_->ReadPage(id, frame.data.get(), exec::CurrentTask());
  lock.Lock();

  if (!st.ok()) {
    // Do not cache a corrupted image: withdraw the entry and release the
    // frame back to the free list so a later (possibly repaired) read
    // starts fresh. Waiters re-find, miss, and retry the read themselves.
    map_.erase(id);
    frame.pin_count = 0;
    frame.ready = true;
    free_frames_.push_back(idx);
    io_cv_.NotifyAll();
    *out = PageGuard();
    return st;
  }
  frame.ready = true;
  io_cv_.NotifyAll();
  *out = PageGuard(this, idx, frame.data.get());
  return Status::OK();
}

void BufferPool::AuditInto(audit::AuditLevel level,
                           audit::AuditReport* report) const {
  (void)level;  // all pool checks are metadata-only, so kQuick == kFull
  MutexLock lock(&mutex_);
  const std::string object = "bufferpool";

  if (frames_.size() > capacity_) {
    report->Add(audit::FindingClass::kBufferPool, object,
                "frame count " + std::to_string(frames_.size()) +
                    " exceeds capacity " + std::to_string(capacity_));
  }
  if (map_.size() > frames_.size()) {
    report->Add(audit::FindingClass::kBufferPool, object,
                "page table has " + std::to_string(map_.size()) +
                    " entries but only " + std::to_string(frames_.size()) +
                    " frames exist");
  }

  // Page table -> frame agreement, and uniqueness of the mapping.
  std::vector<bool> mapped(frames_.size(), false);
  for (const auto& [id, idx] : map_) {
    if (idx >= frames_.size()) {
      report->Add(audit::FindingClass::kBufferPool, object,
                  "page table entry points to nonexistent frame " +
                      std::to_string(idx));
      continue;
    }
    if (mapped[idx]) {
      report->Add(audit::FindingClass::kBufferPool, object,
                  "two page-table entries share frame " +
                      std::to_string(idx));
    }
    mapped[idx] = true;
    const Frame& frame = frames_[idx];
    if (!(frame.id == id)) {
      report->Add(audit::FindingClass::kBufferPool, object,
                  "page table maps (" + std::to_string(id.file_id) + "," +
                      std::to_string(id.page_no) + ") to frame " +
                      std::to_string(idx) + " holding (" +
                      std::to_string(frame.id.file_id) + "," +
                      std::to_string(frame.id.page_no) + ")");
    }
  }

  // Free-list frames must not be resident.
  std::vector<bool> free_frame(frames_.size(), false);
  for (size_t idx : free_frames_) {
    if (idx >= frames_.size()) {
      report->Add(audit::FindingClass::kBufferPool, object,
                  "free list references nonexistent frame " +
                      std::to_string(idx));
      continue;
    }
    if (free_frame[idx]) {
      report->Add(audit::FindingClass::kBufferPool, object,
                  "frame " + std::to_string(idx) + " on the free list twice");
    }
    free_frame[idx] = true;
    if (mapped[idx]) {
      report->Add(audit::FindingClass::kBufferPool, object,
                  "frame " + std::to_string(idx) +
                      " is both free and page-table resident");
    }
  }

  // LRU membership: exactly the unpinned resident frames, each once.
  std::vector<uint32_t> lru_hits(frames_.size(), 0);
  for (size_t idx : lru_) {
    if (idx >= frames_.size()) {
      report->Add(audit::FindingClass::kBufferPool, object,
                  "LRU references nonexistent frame " + std::to_string(idx));
      continue;
    }
    ++lru_hits[idx];
  }
  uint64_t pinned = 0;
  for (size_t idx = 0; idx < frames_.size(); ++idx) {
    const Frame& frame = frames_[idx];
    if (frame.pin_count > 0) {
      if (!mapped[idx]) {
        report->Add(audit::FindingClass::kBufferPool, object,
                    "pinned frame " + std::to_string(idx) +
                        " missing from the page table");
      }
      pinned += frame.pin_count;
    }
    const bool expect_in_lru = mapped[idx] && frame.pin_count == 0;
    if (frame.in_lru != expect_in_lru || lru_hits[idx] != (expect_in_lru ? 1u : 0u)) {
      report->Add(audit::FindingClass::kBufferPool, object,
                  "frame " + std::to_string(idx) + " LRU state broken " +
                      "(in_lru=" + std::to_string(frame.in_lru) +
                      ", lru entries=" + std::to_string(lru_hits[idx]) +
                      ", pin_count=" + std::to_string(frame.pin_count) +
                      ", resident=" + std::to_string(mapped[idx]) + ")");
    }
  }

  // A full-level audit runs at a quiescent point (between queries /
  // mutation batches), where every PageGuard must have been released.
  if (pinned > 0) {
    report->Add(audit::FindingClass::kBufferPool, object,
                std::to_string(pinned) +
                    " pin(s) still outstanding at audit time (leaked "
                    "PageGuard?)");
  }
}

void BufferPool::WriteThrough(PageId id, const void* data) {
  {
    MutexLock lock(&mutex_);
    auto it = map_.find(id);
    if (it != map_.end()) {
      std::memcpy(frames_[it->second].data.get(), data, kPageSize);
    }
  }
  disk_->WritePage(id, data);
}

void BufferPool::Clear() {
  MutexLock lock(&mutex_);
  for (const auto& [id, idx] : map_) {
    SWAN_CHECK_MSG(frames_[idx].pin_count == 0,
                   "Clear() with pinned pages outstanding");
  }
  map_.clear();
  lru_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    frames_[i].in_lru = false;
    free_frames_.push_back(i);
  }
}

void BufferPool::Unpin(size_t frame_index) {
  MutexLock lock(&mutex_);
  Frame& frame = frames_[frame_index];
  SWAN_CHECK_GT(frame.pin_count, 0u);
  if (--frame.pin_count == 0) {
    lru_.push_front(frame_index);
    frame.lru_pos = lru_.begin();
    frame.in_lru = true;
  }
}

size_t BufferPool::AllocateFrame() {
  if (!free_frames_.empty()) {
    const size_t idx = free_frames_.back();
    free_frames_.pop_back();
    if (frames_[idx].data == nullptr) {
      frames_[idx].data = std::make_unique<uint8_t[]>(kPageSize);
    }
    return idx;
  }
  if (frames_.size() < capacity_) {
    frames_.emplace_back();
    frames_.back().data = std::make_unique<uint8_t[]>(kPageSize);
    return frames_.size() - 1;
  }
  // Evict the least recently used unpinned frame.
  SWAN_CHECK_MSG(!lru_.empty(), "buffer pool exhausted: all pages pinned");
  const size_t victim = lru_.back();
  lru_.pop_back();
  Frame& frame = frames_[victim];
  frame.in_lru = false;
  map_.erase(frame.id);
  return victim;
}

}  // namespace swan::storage
