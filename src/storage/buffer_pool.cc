#include "storage/buffer_pool.h"

#include <cstring>

#include "common/macros.h"

namespace swan::storage {

PageGuard::PageGuard(BufferPool* pool, size_t frame_index, const uint8_t* data)
    : pool_(pool), frame_index_(frame_index), data_(data) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_index_(other.frame_index_), data_(other.data_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    data_ = other.data_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_);
    pool_ = nullptr;
    data_ = nullptr;
  }
}

BufferPool::BufferPool(SimulatedDisk* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  SWAN_CHECK(capacity_pages >= 8);
  frames_.reserve(capacity_pages);
}

PageGuard BufferPool::Fetch(PageId id) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    ++hits_;
    Frame& frame = frames_[it->second];
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    return PageGuard(this, it->second, frame.data.get());
  }

  ++misses_;
  const size_t idx = AllocateFrame();
  Frame& frame = frames_[idx];
  frame.id = id;
  frame.pin_count = 1;
  frame.in_lru = false;
  disk_->ReadPage(id, frame.data.get());
  map_[id] = idx;
  return PageGuard(this, idx, frame.data.get());
}

void BufferPool::WriteThrough(PageId id, const void* data) {
  auto it = map_.find(id);
  if (it != map_.end()) {
    std::memcpy(frames_[it->second].data.get(), data, kPageSize);
  }
  disk_->WritePage(id, data);
}

void BufferPool::Clear() {
  for (const auto& [id, idx] : map_) {
    SWAN_CHECK_MSG(frames_[idx].pin_count == 0,
                   "Clear() with pinned pages outstanding");
  }
  map_.clear();
  lru_.clear();
  free_frames_.clear();
  for (size_t i = 0; i < frames_.size(); ++i) {
    frames_[i].in_lru = false;
    free_frames_.push_back(i);
  }
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  SWAN_CHECK(frame.pin_count > 0);
  if (--frame.pin_count == 0) {
    lru_.push_front(frame_index);
    frame.lru_pos = lru_.begin();
    frame.in_lru = true;
  }
}

size_t BufferPool::AllocateFrame() {
  if (!free_frames_.empty()) {
    const size_t idx = free_frames_.back();
    free_frames_.pop_back();
    if (frames_[idx].data == nullptr) {
      frames_[idx].data = std::make_unique<uint8_t[]>(kPageSize);
    }
    return idx;
  }
  if (frames_.size() < capacity_) {
    frames_.emplace_back();
    frames_.back().data = std::make_unique<uint8_t[]>(kPageSize);
    return frames_.size() - 1;
  }
  // Evict the least recently used unpinned frame.
  SWAN_CHECK_MSG(!lru_.empty(), "buffer pool exhausted: all pages pinned");
  const size_t victim = lru_.back();
  lru_.pop_back();
  Frame& frame = frames_[victim];
  frame.in_lru = false;
  map_.erase(frame.id);
  return victim;
}

}  // namespace swan::storage
