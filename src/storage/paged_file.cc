#include "storage/paged_file.h"

#include "common/macros.h"

namespace swan::storage {

void U64FileWriter::Append(uint64_t value) {
  std::memcpy(buffer_ + fill_, &value, sizeof(value));
  fill_ += sizeof(value);
  ++count_;
  if (fill_ == kPageSize) {
    file_->AppendPage(buffer_);
    fill_ = 0;
  }
}

void U64FileWriter::Finish() {
  if (fill_ > 0) {
    std::memset(buffer_ + fill_, 0, kPageSize - fill_);
    file_->AppendPage(buffer_);
    fill_ = 0;
  }
}

void ByteFileWriter::Append(const void* data, size_t size) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  while (size > 0) {
    const size_t take = std::min(size, kPageSize - fill_);
    std::memcpy(buffer_ + fill_, bytes, take);
    fill_ += take;
    bytes += take;
    size -= take;
    byte_count_ += take;
    if (fill_ == kPageSize) {
      file_->AppendPage(buffer_);
      fill_ = 0;
    }
  }
}

void ByteFileWriter::Finish() {
  if (fill_ > 0) {
    std::memset(buffer_ + fill_, 0, kPageSize - fill_);
    file_->AppendPage(buffer_);
    fill_ = 0;
  }
}

Status TryReadByteFile(BufferPool* pool, const PagedFile& file,
                       uint64_t count, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(count);
  const uint32_t pages = file.page_count();
  uint64_t remaining = count;
  for (uint32_t p = 0; p < pages && remaining > 0; ++p) {
    PageGuard guard;
    SWAN_RETURN_NOT_OK(pool->TryFetch(file.page_id(p), &guard));
    const uint64_t take = std::min<uint64_t>(remaining, kPageSize);
    out->insert(out->end(), guard.data(), guard.data() + take);
    remaining -= take;
  }
  if (remaining != 0) {
    return Status::Corruption("byte file shorter than declared count");
  }
  return Status::OK();
}

void ReadByteFile(BufferPool* pool, const PagedFile& file, uint64_t count,
                  std::vector<uint8_t>* out) {
  Status st = TryReadByteFile(pool, file, count, out);
  SWAN_CHECK_MSG(st.ok(), st.ToString().c_str());
}

Status TryReadU64File(BufferPool* pool, const PagedFile& file, uint64_t count,
                      std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(count);
  constexpr uint64_t kPerPage = kPageSize / sizeof(uint64_t);
  const uint32_t pages = file.page_count();
  uint64_t remaining = count;
  for (uint32_t p = 0; p < pages && remaining > 0; ++p) {
    PageGuard guard;
    SWAN_RETURN_NOT_OK(pool->TryFetch(file.page_id(p), &guard));
    const uint64_t take = std::min<uint64_t>(remaining, kPerPage);
    const uint64_t* values = reinterpret_cast<const uint64_t*>(guard.data());
    out->insert(out->end(), values, values + take);
    remaining -= take;
  }
  if (remaining != 0) {
    return Status::Corruption("column file shorter than declared count");
  }
  return Status::OK();
}

void ReadU64File(BufferPool* pool, const PagedFile& file, uint64_t count,
                 std::vector<uint64_t>* out) {
  Status st = TryReadU64File(pool, file, count, out);
  SWAN_CHECK_MSG(st.ok(), st.ToString().c_str());
}

}  // namespace swan::storage
