#ifndef SWANDB_STORAGE_SIMULATED_DISK_H_
#define SWANDB_STORAGE_SIMULATED_DISK_H_

#include <cstdint>
#include <vector>

#include "audit/audit.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/timer.h"
#include "exec/thread_pool.h"
#include "storage/page.h"

namespace swan::storage {

// Performance model of a disk subsystem. The defaults correspond to
// "machine B" of the paper (10-disk RAID-5, ~390 MB/s sequential reads);
// "machine A" is obtained with bandwidth_mb_per_s = 100.
struct DiskConfig {
  // Sequential read bandwidth.
  double bandwidth_mb_per_s = 390.0;
  // Charged whenever a read is not physically contiguous with the previous
  // one (different file, or non-consecutive page number). The default
  // models a striped RAID with command queuing, where effective random
  // positioning cost amortizes well below a raw single-disk seek.
  double seek_latency_ms = 0.5;
  // If > 0, a seek is charged every N pages even within a sequential run.
  // Models engines that issue small scattered requests and therefore cannot
  // exploit the available bandwidth — the paper observes exactly this for
  // C-Store ("C-Store only exploits a small fraction of the I/O bandwidth",
  // Figure 5).
  uint32_t forced_seek_interval_pages = 0;
};

// One sample of the cumulative-read trace behind Figure 5. `lane` is the
// ParallelFor lane that issued the read, or -1 for the serial stream, so
// parallel reads no longer collapse into one anonymous stream.
struct IoTracePoint {
  double virtual_seconds;
  uint64_t cumulative_bytes;
  int lane = -1;
};

// In-memory "disk": stores page images and charges *virtual* time for
// reads on an attached VirtualClock instead of sleeping. Deterministic,
// byte-accurate, and fast — a query's "real time" is its CPU time plus the
// virtual seconds accrued here.
//
// Every page carries an out-of-band 64-bit checksum (the moral equivalent
// of a sector CRC area), computed on AppendPage/WritePage and verified on
// every ReadPage. A mismatch is reported as Status::Corruption so callers
// never consume silently-corrupted bytes.
//
// Writes are free and not traced: the paper keeps loading and index
// construction outside the benchmark scope (§2.3).
//
// Concurrent-I/O cost model: ReadPage is thread-safe and takes the
// issuing task explicitly (the BufferPool passes exec::CurrentTask(); the
// disk itself reads no thread-local execution state). Serial reads
// (task == nullptr, i.e. everything at --threads=1) accrue onto a serial
// clock with the global stream-contiguity state, exactly as before
// parallelism existed. Reads issued from inside a ParallelFor chunk
// accrue onto the chunk's *lane* (chunk index mod thread count) and judge
// contiguity against the task's own previous read only, so per-task
// accrual never depends on how the scheduler interleaves tasks. The
// virtual clock reads serial_seconds + max-over-lanes — the wall cost of
// lanes progressing in parallel — which keeps cold-run "real time"
// deterministic and meaningful at any thread count.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(DiskConfig config = DiskConfig());

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  // Creates a new empty file and returns its id.
  uint32_t CreateFile();

  // Appends a page image to `file_id`; returns the new page number.
  uint32_t AppendPage(uint32_t file_id, const void* data);

  // Overwrites an existing page (write-through updates from the row store).
  void WritePage(PageId id, const void* data);

  // Copies a page image into `out` (kPageSize bytes) and charges virtual
  // I/O time according to the disk model, accruing onto `task`'s lane
  // stream (or the serial stream when task == nullptr). Returns Corruption
  // (with the bytes still copied, for forensics) if the stored image no
  // longer matches its checksum.
  [[nodiscard]] Status ReadPage(PageId id, void* out, exec::TaskContext* task)
      SWAN_EXCLUDES(mutex_);

  // Recomputes `id`'s checksum against the stored image without charging
  // I/O time or touching read statistics (audit path).
  [[nodiscard]] Status VerifyPage(PageId id) const;

  // VerifyPage over every page of `file_id`.
  [[nodiscard]] Status VerifyFile(uint32_t file_id) const;

  // Checksum of one kPageSize page image (FNV-1a 64).
  static uint64_t PageChecksum(const void* data);

  // Byte-flips `xor_mask` into the stored image at `offset` WITHOUT
  // updating the checksum — simulates silent media corruption for the
  // auditor tests. Never called outside tests.
  void CorruptPageForTesting(PageId id, size_t offset, uint8_t xor_mask);

  // Audit walker: at kFull, verifies the checksum of every stored page.
  void AuditInto(audit::AuditLevel level, audit::AuditReport* report) const;

  uint32_t PageCount(uint32_t file_id) const;

  // --- accounting -------------------------------------------------------
  uint64_t total_bytes_read() const {
    MutexLock lock(&mutex_);
    return total_bytes_read_;
  }
  uint64_t total_reads() const {
    MutexLock lock(&mutex_);
    return total_reads_;
  }
  uint64_t total_seeks() const {
    MutexLock lock(&mutex_);
    return total_seeks_;
  }
  const VirtualClock& clock() const { return clock_; }

  // Virtual seconds accrued per lane since the last ResetStats (index =
  // lane id; empty when no parallel reads happened). For bench reporting.
  std::vector<double> LaneSecondsSnapshot() const {
    MutexLock lock(&mutex_);
    return lane_seconds_;
  }

  void ResetStats();

  // I/O history tracing for Figure 5. While enabled, every read appends a
  // (virtual time, cumulative bytes) sample.
  void StartTrace();
  std::vector<IoTracePoint> StopTrace();

  // Reconfiguration is only legal at quiescent points (no reads in
  // flight): concurrent ReadPage calls read config_ under mutex_, and the
  // config() reference below is handed out lock-free. The lock here still
  // matters — it orders the store against any reader that raced past a
  // quiescence bug instead of leaving a silent data race.
  const DiskConfig& config() const { return config_; }
  void set_config(DiskConfig config) {
    MutexLock lock(&mutex_);
    config_ = config;
  }

  // Total bytes stored across all files (Table 1 "data set size").
  uint64_t TotalStoredBytes() const;

 private:
  struct FileData {
    std::vector<uint8_t> bytes;
    // One checksum per page, stored out of band so the full kPageSize
    // payload stays available to the engines.
    std::vector<uint64_t> checksums;
  };

  // Written only under mutex_ (set_config at quiescent points); the
  // config() reference above is handed out lock-free, so the field stays
  // unannotated — the quiescence contract, not the lock, protects reads.
  DiskConfig config_;
  // clock_ advances only under mutex_; clock().now() reads are lock-free
  // at points ordered after the reads that advanced it (same contract).
  VirtualClock clock_;

  // Everything below is guarded by mutex_. files_ contents are also
  // read under the lock (AppendPage may reallocate); the checksum over the
  // copied-out page is computed outside it.
  mutable Mutex mutex_{LockRank::kStorageDisk, "storage.disk"};

  std::vector<FileData> files_ SWAN_GUARDED_BY(mutex_);

  uint64_t total_bytes_read_ SWAN_GUARDED_BY(mutex_) = 0;
  uint64_t total_reads_ SWAN_GUARDED_BY(mutex_) = 0;
  uint64_t total_seeks_ SWAN_GUARDED_BY(mutex_) = 0;

  // Serial (non-task) stream state and clock component.
  bool has_last_read_ SWAN_GUARDED_BY(mutex_) = false;
  PageId last_read_ SWAN_GUARDED_BY(mutex_);
  uint32_t run_length_pages_ SWAN_GUARDED_BY(mutex_) = 0;
  double serial_seconds_ SWAN_GUARDED_BY(mutex_) = 0.0;

  // Per-lane accrual for reads issued from ParallelFor chunks. Lane
  // values only grow between ResetStats calls, so the running max is
  // maintained incrementally.
  std::vector<double> lane_seconds_ SWAN_GUARDED_BY(mutex_);
  double max_lane_seconds_ SWAN_GUARDED_BY(mutex_) = 0.0;

  bool tracing_ SWAN_GUARDED_BY(mutex_) = false;
  std::vector<IoTracePoint> trace_ SWAN_GUARDED_BY(mutex_);
};

}  // namespace swan::storage

#endif  // SWANDB_STORAGE_SIMULATED_DISK_H_
