#ifndef SWANDB_STORAGE_PAGE_H_
#define SWANDB_STORAGE_PAGE_H_

#include <cstdint>
#include <functional>

namespace swan::storage {

// All persistent structures (B+tree nodes, column segments) are stored in
// fixed-size pages, the granularity of simulated disk I/O and buffering.
inline constexpr size_t kPageSize = 8192;

// Identifies a page as (file, offset-within-file).
struct PageId {
  uint32_t file_id = 0;
  uint32_t page_no = 0;

  friend bool operator==(const PageId& a, const PageId& b) {
    return a.file_id == b.file_id && a.page_no == b.page_no;
  }

  uint64_t Packed() const {
    return (static_cast<uint64_t>(file_id) << 32) | page_no;
  }
};

struct PageIdHash {
  size_t operator()(const PageId& id) const {
    return std::hash<uint64_t>()(id.Packed() * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace swan::storage

#endif  // SWANDB_STORAGE_PAGE_H_
