#ifndef SWANDB_STORAGE_PAGED_FILE_H_
#define SWANDB_STORAGE_PAGED_FILE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/simulated_disk.h"

namespace swan::storage {

// A growable sequence of pages inside one simulated-disk file. Convenience
// wrapper used by both engines for their persistent segments.
class PagedFile {
 public:
  explicit PagedFile(SimulatedDisk* disk)
      : disk_(disk), file_id_(disk->CreateFile()) {}

  PagedFile(const PagedFile&) = delete;
  PagedFile& operator=(const PagedFile&) = delete;
  PagedFile(PagedFile&&) = default;

  uint32_t AppendPage(const void* data) {
    return disk_->AppendPage(file_id_, data);
  }

  uint32_t file_id() const { return file_id_; }
  uint32_t page_count() const { return disk_->PageCount(file_id_); }
  PageId page_id(uint32_t page_no) const { return PageId{file_id_, page_no}; }
  SimulatedDisk* disk() const { return disk_; }

 private:
  SimulatedDisk* disk_;
  uint32_t file_id_;
};

// Streams an array of uint64 values into pages of a PagedFile (loading
// path) and reads them back through a buffer pool (query path). This is
// the column store's on-disk column format: raw little-endian uint64
// values, kPageSize/8 per page, last page zero-padded.
class U64FileWriter {
 public:
  explicit U64FileWriter(PagedFile* file) : file_(file) {}

  void Append(uint64_t value);
  // Flushes a trailing partial page (if any).
  void Finish();

  uint64_t count() const { return count_; }

 private:
  PagedFile* file_;
  uint64_t count_ = 0;
  size_t fill_ = 0;
  alignas(8) uint8_t buffer_[kPageSize] = {};
};

// Reads `count` uint64 values of a column file through `pool` into `out`.
// Every page is fetched exactly once, in order, so a cold read is one
// sequential sweep of the file — the MonetDB-style "read the whole column"
// cost the paper measures. Aborts on a checksum mismatch (hot path).
void ReadU64File(BufferPool* pool, const PagedFile& file, uint64_t count,
                 std::vector<uint64_t>* out);

// Tolerant variant for the audit walkers: a checksum mismatch or a file
// shorter than `count` comes back as Status::Corruption.
[[nodiscard]] Status TryReadU64File(BufferPool* pool, const PagedFile& file,
                                    uint64_t count,
                                    std::vector<uint64_t>* out);

// Streams an arbitrary byte sequence into pages (used for compressed
// column segments).
class ByteFileWriter {
 public:
  explicit ByteFileWriter(PagedFile* file) : file_(file) {}

  void Append(const void* data, size_t size);
  // Flushes a trailing partial page (if any).
  void Finish();

  uint64_t byte_count() const { return byte_count_; }

 private:
  PagedFile* file_;
  uint64_t byte_count_ = 0;
  size_t fill_ = 0;
  uint8_t buffer_[kPageSize] = {};
};

// Reads `count` bytes of a byte file through `pool`, sequentially.
void ReadByteFile(BufferPool* pool, const PagedFile& file, uint64_t count,
                  std::vector<uint8_t>* out);

// Tolerant variant of ReadByteFile (see TryReadU64File).
[[nodiscard]] Status TryReadByteFile(BufferPool* pool, const PagedFile& file,
                                     uint64_t count,
                                     std::vector<uint8_t>* out);

}  // namespace swan::storage

#endif  // SWANDB_STORAGE_PAGED_FILE_H_
