#include "storage/node_storage.h"

namespace swan::storage {

NodeStorage MakeNodeStorage(DiskConfig config, size_t pool_pages) {
  NodeStorage node;
  node.disk = std::make_unique<SimulatedDisk>(config);
  node.pool = std::make_unique<BufferPool>(node.disk.get(), pool_pages);
  return node;
}

}  // namespace swan::storage
