#ifndef SWANDB_STORAGE_NODE_STORAGE_H_
#define SWANDB_STORAGE_NODE_STORAGE_H_

#include <cstddef>
#include <memory>

#include "storage/buffer_pool.h"
#include "storage/simulated_disk.h"

namespace swan::storage {

// One node's private storage stack: a simulated disk plus the buffer pool
// caching its pages. Scale-out made "a disk and its pool" a unit that is
// stamped out N times per topology, so construction is funneled through
// MakeNodeStorage — the only place outside this directory allowed to build
// the pair (enforced by tools/swan_lint.py rule `node-disk`). That keeps
// every disk in the system attributable to exactly one node (or to the
// single-node backend base), which is what makes per-node virtual clocks
// and the max-over-nodes scale-out timing model honest.
struct NodeStorage {
  std::unique_ptr<SimulatedDisk> disk;
  std::unique_ptr<BufferPool> pool;
};

// Builds a disk with `config` and a pool of `pool_pages` pages over it.
NodeStorage MakeNodeStorage(DiskConfig config, size_t pool_pages);

}  // namespace swan::storage

#endif  // SWANDB_STORAGE_NODE_STORAGE_H_
