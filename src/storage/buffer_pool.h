#ifndef SWANDB_STORAGE_BUFFER_POOL_H_
#define SWANDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "audit/audit.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/simulated_disk.h"

namespace swan::storage {

class BufferPool;

// RAII pin on a buffered page. The pointed-to bytes stay valid (and the
// frame un-evictable) for the guard's lifetime.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_index, const uint8_t* data);
  ~PageGuard();

  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  const uint8_t* data() const { return data_; }
  bool valid() const { return pool_ != nullptr; }

 private:
  void Release();

  BufferPool* pool_ = nullptr;
  size_t frame_index_ = 0;
  const uint8_t* data_ = nullptr;
};

// Page cache with LRU replacement between a storage engine and the
// simulated disk. Dropping it (Clear) is the reproduction's equivalent of
// the paper's "zapping the memory completely" between cold runs.
//
// Thread safety: Fetch/TryFetch/Unpin/WriteThrough and the statistics
// accessors may be called concurrently. A miss inserts a not-yet-ready
// page-table entry, drops the pool lock for the duration of the disk
// read (frame storage is pre-reserved, so the pointer stays stable), then
// marks the frame ready and wakes any waiters. Concurrent fetchers of the
// same page block on the in-progress read instead of issuing a duplicate
// one, so bytes_read stays identical to the serial schedule. Clear and
// AuditInto assume a quiescent pool (no fetches in flight), matching how
// the harness uses them between runs.
class BufferPool {
 public:
  BufferPool(SimulatedDisk* disk, size_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Returns a pinned view of the page, reading it from disk on a miss.
  // Aborts loudly if the on-disk page fails its checksum — the hot path
  // must never hand out corrupted bytes. Recoverable callers (the audit
  // walkers) use TryFetch instead.
  PageGuard Fetch(PageId id) SWAN_EXCLUDES(mutex_);

  // Like Fetch, but a checksum mismatch comes back as Status::Corruption
  // (with `*out` left invalid and the frame released) instead of aborting.
  [[nodiscard]] Status TryFetch(PageId id, PageGuard* out)
      SWAN_EXCLUDES(mutex_);

  // Audit walker: pin accounting (a pin outstanding at a quiescent point
  // is a leak), frame<->page-table agreement, LRU membership, capacity.
  void AuditInto(audit::AuditLevel level, audit::AuditReport* report) const;

  // Write-through update: patches the cached copy (if resident) and the
  // disk image. Used by the row store's insert path.
  void WriteThrough(PageId id, const void* data) SWAN_EXCLUDES(mutex_);

  // Evicts everything. All pages must be unpinned.
  void Clear() SWAN_EXCLUDES(mutex_);

  size_t capacity_pages() const { return capacity_; }
  size_t resident_pages() const {
    MutexLock lock(&mutex_);
    return map_.size();
  }
  uint64_t hits() const {
    MutexLock lock(&mutex_);
    return hits_;
  }
  uint64_t misses() const {
    MutexLock lock(&mutex_);
    return misses_;
  }
  void ResetStats() {
    MutexLock lock(&mutex_);
    hits_ = misses_ = 0;
  }

  SimulatedDisk* disk() const { return disk_; }

 private:
  friend class PageGuard;

  struct Frame {
    PageId id;
    std::unique_ptr<uint8_t[]> data;
    uint32_t pin_count = 0;
    // Position in lru_ when pin_count == 0.
    std::list<size_t>::iterator lru_pos;
    bool in_lru = false;
    // False while the disk read that populates this frame is in flight
    // (the frame is mapped and pinned by the loading thread; other
    // fetchers of the same page wait on io_cv_).
    bool ready = true;
  };

  void Unpin(size_t frame_index) SWAN_EXCLUDES(mutex_);
  size_t AllocateFrame() SWAN_REQUIRES(mutex_);

  SimulatedDisk* disk_;
  size_t capacity_;

  // Guards every member below. Released only around the disk read on a
  // miss (pool rank > disk rank, so holding it across the read would be
  // rank-legal — dropping it is a throughput choice, not a rank one);
  // frames_ never reallocates (reserved to capacity_), so the loading
  // frame's address is stable while unlocked.
  mutable Mutex mutex_{LockRank::kBufferPool, "storage.buffer-pool"};
  CondVar io_cv_;

  std::vector<Frame> frames_ SWAN_GUARDED_BY(mutex_);
  std::vector<size_t> free_frames_ SWAN_GUARDED_BY(mutex_);
  std::unordered_map<PageId, size_t, PageIdHash> map_ SWAN_GUARDED_BY(mutex_);
  std::list<size_t> lru_ SWAN_GUARDED_BY(mutex_);  // front = most recent
  uint64_t hits_ SWAN_GUARDED_BY(mutex_) = 0;
  uint64_t misses_ SWAN_GUARDED_BY(mutex_) = 0;
};

}  // namespace swan::storage

#endif  // SWANDB_STORAGE_BUFFER_POOL_H_
