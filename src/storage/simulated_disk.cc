#include "storage/simulated_disk.h"

#include <cstring>

#include "common/macros.h"

namespace swan::storage {

SimulatedDisk::SimulatedDisk(DiskConfig config) : config_(config) {}

uint32_t SimulatedDisk::CreateFile() {
  files_.emplace_back();
  return static_cast<uint32_t>(files_.size() - 1);
}

uint32_t SimulatedDisk::AppendPage(uint32_t file_id, const void* data) {
  SWAN_CHECK(file_id < files_.size());
  auto& file = files_[file_id];
  const size_t offset = file.size();
  file.resize(offset + kPageSize);
  std::memcpy(file.data() + offset, data, kPageSize);
  return static_cast<uint32_t>(offset / kPageSize);
}

void SimulatedDisk::WritePage(PageId id, const void* data) {
  SWAN_CHECK(id.file_id < files_.size());
  auto& file = files_[id.file_id];
  const size_t offset = static_cast<size_t>(id.page_no) * kPageSize;
  SWAN_CHECK(offset + kPageSize <= file.size());
  std::memcpy(file.data() + offset, data, kPageSize);
}

void SimulatedDisk::ReadPage(PageId id, void* out) {
  SWAN_CHECK(id.file_id < files_.size());
  const auto& file = files_[id.file_id];
  const size_t offset = static_cast<size_t>(id.page_no) * kPageSize;
  SWAN_CHECK_MSG(offset + kPageSize <= file.size(), "read past end of file");
  std::memcpy(out, file.data() + offset, kPageSize);

  // Charge the I/O model.
  bool seek = true;
  if (has_last_read_ && id.file_id == last_read_.file_id &&
      id.page_no == last_read_.page_no + 1) {
    seek = false;
    ++run_length_pages_;
    if (config_.forced_seek_interval_pages > 0 &&
        run_length_pages_ >= config_.forced_seek_interval_pages) {
      seek = true;
    }
  }
  if (seek) run_length_pages_ = 0;
  has_last_read_ = true;
  last_read_ = id;

  double seconds =
      static_cast<double>(kPageSize) / (config_.bandwidth_mb_per_s * 1e6);
  if (seek) {
    seconds += config_.seek_latency_ms * 1e-3;
    ++total_seeks_;
  }
  clock_.Advance(seconds);
  total_bytes_read_ += kPageSize;
  ++total_reads_;
  if (tracing_) {
    trace_.push_back({clock_.now(), total_bytes_read_});
  }
}

uint32_t SimulatedDisk::PageCount(uint32_t file_id) const {
  SWAN_CHECK(file_id < files_.size());
  return static_cast<uint32_t>(files_[file_id].size() / kPageSize);
}

void SimulatedDisk::ResetStats() {
  total_bytes_read_ = 0;
  total_reads_ = 0;
  total_seeks_ = 0;
  clock_.Reset();
  has_last_read_ = false;
  run_length_pages_ = 0;
}

void SimulatedDisk::StartTrace() {
  tracing_ = true;
  trace_.clear();
}

std::vector<IoTracePoint> SimulatedDisk::StopTrace() {
  tracing_ = false;
  return std::move(trace_);
}

uint64_t SimulatedDisk::TotalStoredBytes() const {
  uint64_t total = 0;
  for (const auto& f : files_) total += f.size();
  return total;
}

}  // namespace swan::storage
