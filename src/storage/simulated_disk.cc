#include "storage/simulated_disk.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/macros.h"
#include "common/mutex.h"

namespace swan::storage {

SimulatedDisk::SimulatedDisk(DiskConfig config) : config_(config) {}

uint64_t SimulatedDisk::PageChecksum(const void* data) {
  // FNV-1a 64 over the full page. Fast, deterministic, and sensitive to
  // single-byte flips anywhere in the image.
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t hash = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < kPageSize; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

uint32_t SimulatedDisk::CreateFile() {
  MutexLock lock(&mutex_);
  files_.emplace_back();
  return static_cast<uint32_t>(files_.size() - 1);
}

uint32_t SimulatedDisk::AppendPage(uint32_t file_id, const void* data) {
  const uint64_t checksum = PageChecksum(data);
  MutexLock lock(&mutex_);
  SWAN_CHECK_LT(file_id, files_.size());
  auto& file = files_[file_id];
  const size_t offset = file.bytes.size();
  file.bytes.resize(offset + kPageSize);
  std::memcpy(file.bytes.data() + offset, data, kPageSize);
  file.checksums.push_back(checksum);
  return static_cast<uint32_t>(offset / kPageSize);
}

void SimulatedDisk::WritePage(PageId id, const void* data) {
  const uint64_t checksum = PageChecksum(data);
  MutexLock lock(&mutex_);
  SWAN_CHECK_LT(id.file_id, files_.size());
  auto& file = files_[id.file_id];
  const size_t offset = static_cast<size_t>(id.page_no) * kPageSize;
  SWAN_CHECK_LE(offset + kPageSize, file.bytes.size());
  std::memcpy(file.bytes.data() + offset, data, kPageSize);
  file.checksums[id.page_no] = checksum;
}

Status SimulatedDisk::ReadPage(PageId id, void* out,
                               exec::TaskContext* task) {
  uint64_t expected_checksum = 0;
  {
    MutexLock lock(&mutex_);
    SWAN_CHECK_LT(id.file_id, files_.size());
    const auto& file = files_[id.file_id];
    const size_t offset = static_cast<size_t>(id.page_no) * kPageSize;
    SWAN_CHECK_MSG(offset + kPageSize <= file.bytes.size(),
                   "read past end of file");
    std::memcpy(out, file.bytes.data() + offset, kPageSize);
    expected_checksum = file.checksums[id.page_no];

    // Charge the I/O model. Stream contiguity is judged against the
    // serial stream (no task) or the task's own stream — never across
    // tasks, so parallel accrual is interleaving-independent.
    bool seek = true;
    if (task == nullptr) {
      if (has_last_read_ && id.file_id == last_read_.file_id &&
          id.page_no == last_read_.page_no + 1) {
        seek = false;
        ++run_length_pages_;
        if (config_.forced_seek_interval_pages > 0 &&
            run_length_pages_ >= config_.forced_seek_interval_pages) {
          seek = true;
        }
      }
      if (seek) run_length_pages_ = 0;
      has_last_read_ = true;
      last_read_ = id;
    } else {
      if (task->io_has_last && id.file_id == task->io_last_file &&
          id.page_no == task->io_last_page + 1) {
        seek = false;
        ++task->io_run_length;
        if (config_.forced_seek_interval_pages > 0 &&
            task->io_run_length >= config_.forced_seek_interval_pages) {
          seek = true;
        }
      }
      if (seek) task->io_run_length = 0;
      task->io_has_last = true;
      task->io_last_file = id.file_id;
      task->io_last_page = id.page_no;
    }

    double seconds =
        static_cast<double>(kPageSize) / (config_.bandwidth_mb_per_s * 1e6);
    if (seek) {
      seconds += config_.seek_latency_ms * 1e-3;
      ++total_seeks_;
    }
    if (task == nullptr) {
      serial_seconds_ += seconds;
    } else {
      const size_t lane = static_cast<size_t>(task->lane);
      if (lane_seconds_.size() <= lane) lane_seconds_.resize(lane + 1, 0.0);
      lane_seconds_[lane] += seconds;
      max_lane_seconds_ = std::max(max_lane_seconds_, lane_seconds_[lane]);
    }
    // Wall-cost semantics: serial accrual plus the slowest parallel lane.
    clock_.Advance(serial_seconds_ + max_lane_seconds_ - clock_.now());
    total_bytes_read_ += kPageSize;
    ++total_reads_;
    if (tracing_) {
      trace_.push_back(
          {clock_.now(), total_bytes_read_, task == nullptr ? -1 : task->lane});
    }
  }

  // Verify outside the lock (the transfer happened, the payload is bad);
  // concurrent readers overlap their checksum CPU.
  if (PageChecksum(out) != expected_checksum) {
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id.page_no) + " of file " +
                              std::to_string(id.file_id));
  }
  return Status::OK();
}

Status SimulatedDisk::VerifyPage(PageId id) const {
  MutexLock lock(&mutex_);
  SWAN_CHECK_LT(id.file_id, files_.size());
  const auto& file = files_[id.file_id];
  const size_t offset = static_cast<size_t>(id.page_no) * kPageSize;
  SWAN_CHECK_MSG(offset + kPageSize <= file.bytes.size(),
                 "verify past end of file");
  if (PageChecksum(file.bytes.data() + offset) != file.checksums[id.page_no]) {
    return Status::Corruption("checksum mismatch on page " +
                              std::to_string(id.page_no) + " of file " +
                              std::to_string(id.file_id));
  }
  return Status::OK();
}

Status SimulatedDisk::VerifyFile(uint32_t file_id) const {
  const uint32_t pages = PageCount(file_id);
  for (uint32_t p = 0; p < pages; ++p) {
    SWAN_RETURN_NOT_OK(VerifyPage(PageId{file_id, p}));
  }
  return Status::OK();
}

void SimulatedDisk::CorruptPageForTesting(PageId id, size_t offset,
                                          uint8_t xor_mask) {
  MutexLock lock(&mutex_);
  SWAN_CHECK_LT(id.file_id, files_.size());
  SWAN_CHECK_LT(offset, kPageSize);
  auto& file = files_[id.file_id];
  const size_t byte = static_cast<size_t>(id.page_no) * kPageSize + offset;
  SWAN_CHECK_LT(byte, file.bytes.size());
  file.bytes[byte] ^= xor_mask;  // checksum deliberately left stale
}

void SimulatedDisk::AuditInto(audit::AuditLevel level,
                              audit::AuditReport* report) const {
  if (level < audit::AuditLevel::kFull) return;
  uint32_t file_count;
  {
    MutexLock lock(&mutex_);
    file_count = static_cast<uint32_t>(files_.size());
  }
  for (uint32_t f = 0; f < file_count; ++f) {
    const uint32_t pages = PageCount(f);
    for (uint32_t p = 0; p < pages; ++p) {
      Status st = VerifyPage(PageId{f, p});
      if (!st.ok()) {
        report->Add(audit::FindingClass::kChecksum,
                    "disk file " + std::to_string(f), st.message());
      }
    }
  }
}

uint32_t SimulatedDisk::PageCount(uint32_t file_id) const {
  MutexLock lock(&mutex_);
  SWAN_CHECK_LT(file_id, files_.size());
  return static_cast<uint32_t>(files_[file_id].bytes.size() / kPageSize);
}

void SimulatedDisk::ResetStats() {
  MutexLock lock(&mutex_);
  total_bytes_read_ = 0;
  total_reads_ = 0;
  total_seeks_ = 0;
  clock_.Reset();
  has_last_read_ = false;
  run_length_pages_ = 0;
  serial_seconds_ = 0.0;
  lane_seconds_.clear();
  max_lane_seconds_ = 0.0;
}

void SimulatedDisk::StartTrace() {
  MutexLock lock(&mutex_);
  tracing_ = true;
  trace_.clear();
}

std::vector<IoTracePoint> SimulatedDisk::StopTrace() {
  MutexLock lock(&mutex_);
  tracing_ = false;
  return std::move(trace_);
}

uint64_t SimulatedDisk::TotalStoredBytes() const {
  MutexLock lock(&mutex_);
  uint64_t total = 0;
  for (const auto& f : files_) total += f.bytes.size();
  return total;
}

}  // namespace swan::storage
