#include "rowstore/vertical_relation.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/macros.h"

namespace swan::rowstore {

namespace {

constexpr double kRandomPenaltyPages = 24.0;
constexpr double kRowsPerLeafPage =
    static_cast<double>(BPlusTree<2>::kLeafCapacity);

double PagesFor(double rows) { return rows / kRowsPerLeafPage; }

}  // namespace

VerticalRelation::VerticalRelation(storage::BufferPool* pool,
                                   storage::SimulatedDisk* disk)
    : pool_(pool), disk_(disk) {}

void VerticalRelation::Load(std::span<const rdf::Triple> triples) {
  SWAN_CHECK_MSG(partitions_.empty(), "VerticalRelation::Load called twice");

  std::unordered_map<uint64_t, std::vector<std::array<uint64_t, 2>>> groups;
  for (const rdf::Triple& t : triples) {
    groups[t.property].push_back({t.subject, t.object});
  }

  for (auto& [prop, rows] : groups) {
    properties_.push_back(prop);
    Partition part;
    part.clustered_so = std::make_unique<BPlusTree<2>>(pool_, disk_);
    part.secondary_os = std::make_unique<BPlusTree<2>>(pool_, disk_);

    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    part.rows = rows.size();
    part.clustered_so->BulkLoad(rows);
    {
      uint64_t distinct = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (i == 0 || rows[i][0] != rows[i - 1][0]) ++distinct;
      }
      part.distinct_subjects = distinct;
    }

    std::vector<std::array<uint64_t, 2>> os(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) os[i] = {rows[i][1], rows[i][0]};
    std::sort(os.begin(), os.end());
    part.secondary_os->BulkLoad(os);
    {
      uint64_t distinct = 0;
      for (size_t i = 0; i < os.size(); ++i) {
        if (i == 0 || os[i][0] != os[i - 1][0]) ++distinct;
      }
      part.distinct_objects = distinct;
    }

    partitions_.emplace(prop, std::move(part));
  }
  std::sort(properties_.begin(), properties_.end());
}

bool VerticalRelation::Insert(const rdf::Triple& triple) {
  auto it = partitions_.find(triple.property);
  if (it == partitions_.end()) {
    // Schema change: materialize a fresh partition for the new property.
    Partition part;
    part.clustered_so = std::make_unique<BPlusTree<2>>(pool_, disk_);
    part.clustered_so->BulkLoad({});
    part.secondary_os = std::make_unique<BPlusTree<2>>(pool_, disk_);
    part.secondary_os->BulkLoad({});
    it = partitions_.emplace(triple.property, std::move(part)).first;
    properties_.insert(std::lower_bound(properties_.begin(), properties_.end(),
                                        triple.property),
                       triple.property);
    ++partitions_created_;
  }
  Partition& part = it->second;
  if (!part.clustered_so->Insert({triple.subject, triple.object})) {
    return false;
  }
  const bool fresh = part.secondary_os->Insert({triple.object, triple.subject});
  SWAN_CHECK_MSG(fresh, "OS index out of sync with SO tree");
  ++part.rows;
  return true;
}

uint64_t VerticalRelation::PartitionSize(uint64_t property) const {
  auto it = partitions_.find(property);
  return it == partitions_.end() ? 0 : it->second.rows;
}

uint64_t VerticalRelation::disk_bytes() const {
  uint64_t total = 0;
  for (const auto& [prop, part] : partitions_) {
    total += part.clustered_so->disk_bytes() + part.secondary_os->disk_bytes();
  }
  return total;
}

VerticalRelation::Scan VerticalRelation::OpenPartition(
    uint64_t property, std::optional<uint64_t> subject,
    std::optional<uint64_t> object) const {
  auto pit = partitions_.find(property);
  if (pit == partitions_.end()) return Scan();
  const Partition& part = pit->second;

  Scan scan;
  scan.clustered_ = part.clustered_so.get();
  scan.subject_filter_ = subject;
  scan.object_filter_ = object;
  scan.property_ = property;

  const double rows = static_cast<double>(part.rows);

  // Access-path choice: clustered (s[,o]) prefix when the subject is
  // bound; otherwise, for a bound object, the OS secondary if the expected
  // match count is small enough to beat a full partition scan.
  if (subject.has_value()) {
    scan.tree_ = part.clustered_so.get();
    scan.object_order_ = false;
    scan.prefix_len_ = object.has_value() ? 2 : 1;
    scan.prefix_ = {*subject, object.value_or(0)};
  } else if (object.has_value()) {
    const double est =
        rows / static_cast<double>(std::max<uint64_t>(1, part.distinct_objects));
    const double secondary_cost =
        kRandomPenaltyPages + PagesFor(est) + est * kRandomPenaltyPages;
    const double full_cost = kRandomPenaltyPages + PagesFor(rows);
    if (secondary_cost < full_cost) {
      scan.tree_ = part.secondary_os.get();
      scan.object_order_ = true;
      scan.charge_row_fetch_ = true;
      scan.prefix_len_ = 1;
      scan.prefix_ = {*object, 0};
    } else {
      scan.tree_ = part.clustered_so.get();
      scan.object_order_ = false;
      scan.prefix_len_ = 0;
    }
  } else {
    scan.tree_ = part.clustered_so.get();
    scan.object_order_ = false;
    scan.prefix_len_ = 0;
  }

  std::array<uint64_t, 2> lower{};
  lower.fill(0);
  for (int i = 0; i < scan.prefix_len_; ++i) lower[i] = scan.prefix_[i];
  scan.it_ = scan.tree_->Seek(lower);
  scan.Advance();
  return scan;
}

void VerticalRelation::Scan::Advance() {
  valid_ = false;
  while (it_.Valid()) {
    const auto& key = it_.key();
    for (int i = 0; i < prefix_len_; ++i) {
      if (key[i] != prefix_[i]) return;
    }
    const uint64_t s = object_order_ ? key[1] : key[0];
    const uint64_t o = object_order_ ? key[0] : key[1];
    if ((!subject_filter_ || *subject_filter_ == s) &&
        (!object_filter_ || *object_filter_ == o)) {
      if (charge_row_fetch_) {
        const bool present = clustered_->Contains({s, o});
        SWAN_CHECK_MSG(present, "OS index points at missing row");
      }
      current_ = rdf::Triple{s, property_, o};
      valid_ = true;
      return;
    }
    it_.Next();
  }
}

void VerticalRelation::Scan::Next() {
  SWAN_DCHECK(valid_);
  it_.Next();
  Advance();
}

void VerticalRelation::AuditInto(audit::AuditLevel level,
                                 audit::AuditReport* report) const {
  if (properties_.size() != partitions_.size()) {
    report->Add(audit::FindingClass::kStructure, "vertical_relation",
                "property index has " + std::to_string(properties_.size()) +
                    " entries, partition map has " +
                    std::to_string(partitions_.size()));
  }
  for (uint64_t prop : properties_) {
    if (partitions_.count(prop) == 0) {
      report->Add(audit::FindingClass::kStructure, "vertical_relation",
                  "property " + std::to_string(prop) +
                      " indexed but has no partition");
    }
  }
  for (const auto& [prop, part] : partitions_) {
    const std::string name =
        "vertical_relation.partition(" + std::to_string(prop) + ")";
    part.clustered_so->AuditInto(level, report);
    part.secondary_os->AuditInto(level, report);
    if (part.clustered_so->size() != part.rows ||
        part.secondary_os->size() != part.rows) {
      report->Add(audit::FindingClass::kStructure, name,
                  "trees have " + std::to_string(part.clustered_so->size()) +
                      "/" + std::to_string(part.secondary_os->size()) +
                      " rows, partition declares " +
                      std::to_string(part.rows));
    }
  }
}

}  // namespace swan::rowstore
