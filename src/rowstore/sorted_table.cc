#include "rowstore/sorted_table.h"

#include <cstring>
#include <string>

namespace swan::rowstore {

SortedTable::SortedTable(storage::BufferPool* pool,
                         storage::SimulatedDisk* disk, uint32_t row_width)
    : pool_(pool), file_(disk), row_width_(row_width) {
  SWAN_CHECK_GE(row_width, 1u);
  SWAN_CHECK_MSG(row_width * sizeof(uint64_t) <= storage::kPageSize,
                 "row wider than a page");
}

void SortedTable::BulkLoad(std::span<const uint64_t> flat,
                           uint64_t row_count) {
  SWAN_CHECK_MSG(!built_, "SortedTable::BulkLoad called twice");
  SWAN_CHECK_EQ(flat.size(), row_count * row_width_);
  built_ = true;
  row_count_ = row_count;

  const uint64_t rows_per_page = RowsPerPage();
  alignas(8) uint8_t page[storage::kPageSize];
  uint64_t row = 0;
  while (row < row_count) {
    std::memset(page, 0, sizeof(page));
    const uint64_t take = std::min(rows_per_page, row_count - row);
    std::memcpy(page, flat.data() + row * row_width_,
                take * row_width_ * sizeof(uint64_t));
    file_.AppendPage(page);
    row += take;
  }
}

uint64_t SortedTable::KeyAt(uint64_t index) const {
  const uint64_t rows_per_page = RowsPerPage();
  const uint32_t page_no = static_cast<uint32_t>(index / rows_per_page);
  const uint64_t slot = index % rows_per_page;
  storage::PageGuard guard = pool_->Fetch(file_.page_id(page_no));
  uint64_t key;
  std::memcpy(&key,
              guard.data() + slot * row_width_ * sizeof(uint64_t),
              sizeof(key));
  return key;
}

std::optional<uint64_t> SortedTable::FindRow(uint64_t key) const {
  SWAN_CHECK_MSG(built_, "SortedTable not loaded");
  uint64_t lo = 0, hi = row_count_;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (KeyAt(mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < row_count_ && KeyAt(lo) == key) return lo;
  return std::nullopt;
}

void SortedTable::Cursor::LoadRow() {
  const uint64_t rows_per_page = table_->RowsPerPage();
  const uint32_t page_no = static_cast<uint32_t>(index_ / rows_per_page);
  if (page_no != page_no_) {
    guard_ = table_->pool_->Fetch(table_->file_.page_id(page_no));
    page_no_ = page_no;
  }
  const uint64_t slot = index_ % rows_per_page;
  values_ = reinterpret_cast<const uint64_t*>(
      guard_.data() + slot * table_->row_width_ * sizeof(uint64_t));
}

void SortedTable::Cursor::Next() {
  SWAN_DCHECK(Valid());
  ++index_;
  if (index_ >= table_->row_count_) {
    table_ = nullptr;
    values_ = nullptr;
    return;
  }
  LoadRow();
}

SortedTable::Cursor SortedTable::SeekRow(uint64_t index) const {
  SWAN_CHECK_MSG(built_, "SortedTable not loaded");
  Cursor cursor;
  if (index >= row_count_) return cursor;
  cursor.table_ = this;
  cursor.index_ = index;
  cursor.LoadRow();
  return cursor;
}

void SortedTable::AuditInto(audit::AuditLevel level,
                            audit::AuditReport* report) const {
  if (!built_) return;
  const std::string name =
      "sorted_table(file " + std::to_string(file_.file_id()) + ")";
  const uint64_t rows_per_page = RowsPerPage();
  const uint64_t pages_needed =
      (row_count_ + rows_per_page - 1) / rows_per_page;
  if (file_.page_count() < pages_needed) {
    report->Add(audit::FindingClass::kStructure, name,
                "file has " + std::to_string(file_.page_count()) +
                    " pages, " + std::to_string(pages_needed) +
                    " needed for " + std::to_string(row_count_) + " rows");
    return;
  }
  if (level == audit::AuditLevel::kQuick) return;

  bool have_prev = false;
  uint64_t prev_key = 0;
  for (uint64_t row = 0; row < row_count_; ++row) {
    const uint32_t page_no = static_cast<uint32_t>(row / rows_per_page);
    const uint64_t slot = row % rows_per_page;
    storage::PageGuard guard;
    Status st = pool_->TryFetch(file_.page_id(page_no), &guard);
    if (!st.ok()) {
      report->Add(audit::FindingClass::kChecksum, name, st.ToString());
      return;
    }
    uint64_t key;
    std::memcpy(&key, guard.data() + slot * row_width_ * sizeof(uint64_t),
                sizeof(key));
    if (have_prev && prev_key >= key) {
      report->Add(audit::FindingClass::kStructure, name,
                  "keys not strictly ascending at row " + std::to_string(row));
      return;
    }
    prev_key = key;
    have_prev = true;
  }
}

}  // namespace swan::rowstore
