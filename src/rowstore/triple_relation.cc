#include "rowstore/triple_relation.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace swan::rowstore {

namespace {

// One random page access costs as much as this many sequential page reads
// (a 0.5 ms seek at ~390 MB/s moves ~24 pages' worth of data). Fixed
// optimizer assumption, independent of the actual disk config — as in real
// systems, the cost model is an approximation of the hardware.
constexpr double kRandomPenaltyPages = 24.0;

constexpr double kRowsPerLeafPage =
    static_cast<double>(BPlusTree<3>::kLeafCapacity);

// Fractional leaf pages covering `rows`; fractional so near-complete range
// scans still compare as cheaper than a full scan.
double PagesFor(double rows) { return rows / kRowsPerLeafPage; }

// Number of leading components of `order` that are bound in `pattern`,
// plus the bound values.
int BoundPrefix(const rdf::TriplePattern& pattern, rdf::TripleOrder order,
                std::array<uint64_t, 3>* prefix) {
  const std::optional<uint64_t> spo[3] = {pattern.subject, pattern.property,
                                          pattern.object};
  const auto comp = ComponentsOf(order);
  int len = 0;
  for (int i = 0; i < 3; ++i) {
    if (!spo[comp[i]]) break;
    (*prefix)[len++] = *spo[comp[i]];
  }
  return len;
}

// Pattern restricted to the first `len` components of `order` (what a
// prefix range scan can apply; the rest is residual filtering).
rdf::TriplePattern PrefixPattern(const rdf::TriplePattern& pattern,
                                 rdf::TripleOrder order, int len) {
  rdf::TriplePattern out;
  const auto comp = ComponentsOf(order);
  for (int i = 0; i < len; ++i) {
    switch (comp[i]) {
      case 0:
        out.subject = pattern.subject;
        break;
      case 1:
        out.property = pattern.property;
        break;
      default:
        out.object = pattern.object;
        break;
    }
  }
  return out;
}

}  // namespace

TripleRelation::Config TripleRelation::PsoConfig() {
  using rdf::TripleOrder;
  Config config;
  config.clustered = TripleOrder::kPSO;
  config.secondaries = {TripleOrder::kSPO, TripleOrder::kSOP,
                        TripleOrder::kPOS, TripleOrder::kOSP,
                        TripleOrder::kOPS};
  return config;
}

TripleRelation::Config TripleRelation::SpoConfig() {
  using rdf::TripleOrder;
  Config config;
  config.clustered = TripleOrder::kSPO;
  config.secondaries = {TripleOrder::kPOS, TripleOrder::kOSP};
  return config;
}

TripleRelation::TripleRelation(storage::BufferPool* pool,
                               storage::SimulatedDisk* disk, Config config)
    : config_(std::move(config)), pool_(pool) {
  clustered_ = std::make_unique<BPlusTree<3>>(pool, disk);
  for (rdf::TripleOrder order : config_.secondaries) {
    SWAN_CHECK_MSG(order != config_.clustered,
                   "secondary duplicates clustered order");
    secondaries_.emplace_back(order, std::make_unique<BPlusTree<3>>(pool, disk));
  }
}

void TripleRelation::Load(std::span<const rdf::Triple> triples) {
  stats_ = TripleStats::Compute(triples);

  std::vector<std::array<uint64_t, 3>> keys(triples.size());
  auto load_tree = [&](rdf::TripleOrder order, BPlusTree<3>* tree) {
    for (size_t i = 0; i < triples.size(); ++i) {
      keys[i] = KeyOf(triples[i], order);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    tree->BulkLoad(keys);
    keys.resize(triples.size());
  };

  load_tree(config_.clustered, clustered_.get());
  for (auto& [order, tree] : secondaries_) {
    load_tree(order, tree.get());
  }
}

bool TripleRelation::Insert(const rdf::Triple& triple) {
  if (!clustered_->Insert(KeyOf(triple, config_.clustered))) return false;
  for (auto& [order, tree] : secondaries_) {
    const bool fresh = tree->Insert(KeyOf(triple, order));
    SWAN_CHECK_MSG(fresh, "secondary index out of sync with clustered tree");
  }
  ++stats_.total_triples;
  ++stats_.subject_count[triple.subject];
  ++stats_.property_count[triple.property];
  ++stats_.object_count[triple.object];
  return true;
}

uint64_t TripleRelation::disk_bytes() const {
  uint64_t total = clustered_->disk_bytes();
  for (const auto& [order, tree] : secondaries_) total += tree->disk_bytes();
  return total;
}

const BPlusTree<3>* TripleRelation::TreeFor(rdf::TripleOrder order) const {
  if (order == config_.clustered) return clustered_.get();
  for (const auto& [o, tree] : secondaries_) {
    if (o == order) return tree.get();
  }
  return nullptr;
}

std::string TripleRelation::AccessPath::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kFullScan:
      out = "FullScan";
      break;
    case Kind::kClusteredPrefix:
      out = "ClusteredPrefix";
      break;
    case Kind::kSecondaryPrefix:
      out = "SecondaryPrefix";
      break;
  }
  out += "(" + rdf::ToString(order) + ", prefix=" + std::to_string(prefix_len) +
         ", est=" + std::to_string(static_cast<uint64_t>(estimated_rows)) + ")";
  return out;
}

TripleRelation::AccessPath TripleRelation::ChoosePath(
    const rdf::TriplePattern& pattern) const {
  const double total_rows = static_cast<double>(clustered_->size());

  AccessPath best;
  best.kind = AccessPath::Kind::kFullScan;
  best.order = config_.clustered;
  best.prefix_len = 0;
  best.estimated_rows = total_rows;
  best.cost_pages = kRandomPenaltyPages + PagesFor(total_rows);

  auto consider = [&](rdf::TripleOrder order, bool is_clustered) {
    std::array<uint64_t, 3> prefix{};
    const int len = BoundPrefix(pattern, order, &prefix);
    if (len == 0) return;
    const rdf::TriplePattern pp = PrefixPattern(pattern, order, len);
    const double est = stats_.EstimateMatches(pp);
    AccessPath candidate;
    candidate.order = order;
    candidate.prefix_len = len;
    candidate.estimated_rows = est;
    if (is_clustered) {
      candidate.kind = AccessPath::Kind::kClusteredPrefix;
      // One positioning seek plus a sequential leaf range. (Upper tree
      // levels are hot in any real buffer pool, so the descent itself is
      // not charged beyond the seek.)
      candidate.cost_pages = kRandomPenaltyPages + PagesFor(est);
    } else {
      candidate.kind = AccessPath::Kind::kSecondaryPrefix;
      // Secondary leaf range plus one random row fetch per match.
      candidate.cost_pages =
          kRandomPenaltyPages + PagesFor(est) + est * kRandomPenaltyPages;
    }
    if (candidate.cost_pages < best.cost_pages) best = candidate;
  };

  consider(config_.clustered, /*is_clustered=*/true);
  for (const auto& [order, tree] : secondaries_) {
    consider(order, /*is_clustered=*/false);
  }
  return best;
}

// Leaves per full-scan chunk: ~32 pages (256 KB) keeps hundreds of
// morsels at benchmark scale for even lane balance while each chunk still
// amortizes its scheduling onto a long sequential page run.
constexpr uint32_t kLeavesPerFullScanChunk = 32;

uint64_t TripleRelation::FullScanChunks(const exec::ExecContext& ectx) const {
  if (!ectx.parallel() || !clustered_->LeafChainContiguous()) return 1;
  const uint32_t leaves = clustered_->num_leaves();
  if (leaves < 2 * kLeavesPerFullScanChunk) return 1;
  return (leaves + kLeavesPerFullScanChunk - 1) / kLeavesPerFullScanChunk;
}

void TripleRelation::ChargeFullScanDescent() const {
  clustered_->ChargeScanDescent();
}

void TripleRelation::FullScanChunk(
    uint64_t chunk, uint64_t num_chunks,
    const std::function<void(const rdf::Triple&)>& fn) const {
  const uint32_t leaves = clustered_->num_leaves();
  const uint32_t per =
      static_cast<uint32_t>((leaves + num_chunks - 1) / num_chunks);
  const uint32_t lo = static_cast<uint32_t>(chunk) * per;
  const uint32_t hi = std::min(leaves, lo + per);
  if (lo >= hi) return;
  const auto comp = rdf::ComponentsOf(config_.clustered);
  clustered_->ScanLeaves(lo, hi, [&](const BPlusTree<3>::Key& key) {
    uint64_t spo[3];
    for (int i = 0; i < 3; ++i) spo[comp[i]] = key[i];
    fn(rdf::Triple{spo[0], spo[1], spo[2]});
  });
}

TripleRelation::Scan TripleRelation::Open(
    const rdf::TriplePattern& pattern) const {
  const AccessPath path = ChoosePath(pattern);

  Scan scan;
  scan.relation_ = this;
  scan.tree_ = TreeFor(path.order);
  SWAN_CHECK(scan.tree_ != nullptr);
  scan.tree_order_ = path.order;
  scan.components_ = rdf::ComponentsOf(path.order);
  scan.charge_row_fetch_ =
      path.kind == AccessPath::Kind::kSecondaryPrefix;
  scan.prefix_len_ = path.prefix_len;
  scan.pattern_ = pattern;

  std::array<uint64_t, 3> lower{};
  lower.fill(0);
  BoundPrefix(pattern, path.order, &scan.prefix_);
  for (int i = 0; i < path.prefix_len; ++i) lower[i] = scan.prefix_[i];
  scan.it_ = scan.tree_->Seek(lower);
  scan.Advance();
  return scan;
}

void TripleRelation::Scan::Advance() {
  valid_ = false;
  while (it_.Valid()) {
    const auto& key = it_.key();
    // Stop once past the bound prefix.
    for (int i = 0; i < prefix_len_; ++i) {
      if (key[i] != prefix_[i]) return;
    }
    uint64_t spo[3];
    for (int i = 0; i < 3; ++i) spo[components_[i]] = key[i];
    const rdf::Triple t{spo[0], spo[1], spo[2]};
    if (pattern_.Matches(t)) {
      if (charge_row_fetch_) {
        // Non-covering secondary: fetch the base row from the clustered
        // tree (pays the random descent the cost model anticipated).
        const bool present = relation_->clustered_->Contains(
            KeyOf(t, relation_->config_.clustered));
        SWAN_CHECK_MSG(present, "secondary points at missing row");
      }
      current_ = t;
      valid_ = true;
      return;
    }
    it_.Next();
  }
}

void TripleRelation::Scan::Next() {
  SWAN_DCHECK(valid_);
  it_.Next();
  Advance();
}

void TripleRelation::AuditInto(audit::AuditLevel level,
                               audit::AuditReport* report) const {
  clustered_->AuditInto(level, report);
  for (const auto& [order, tree] : secondaries_) {
    tree->AuditInto(level, report);
    if (tree->size() != clustered_->size()) {
      report->Add(audit::FindingClass::kStructure,
                  "triple_relation." + rdf::ToString(order),
                  "secondary index has " + std::to_string(tree->size()) +
                      " rows, clustered tree has " +
                      std::to_string(clustered_->size()));
    }
  }
}

}  // namespace swan::rowstore
