#ifndef SWANDB_ROWSTORE_VERTICAL_RELATION_H_
#define SWANDB_ROWSTORE_VERTICAL_RELATION_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "audit/audit.h"
#include "rdf/triple.h"
#include "rowstore/bplus_tree.h"
#include "storage/buffer_pool.h"
#include "storage/simulated_disk.h"

namespace swan::rowstore {

// Row-store realization of the vertically-partitioned scheme: per
// property, a clustered B+tree on (subject, object) plus an unclustered
// (object, subject) index — exactly the paper's DBX layout ("For each
// table in DBX we define one clustered B+tree on SO and one un-clustered
// on OS", §4.2).
class VerticalRelation {
 public:
  VerticalRelation(storage::BufferPool* pool, storage::SimulatedDisk* disk);

  VerticalRelation(const VerticalRelation&) = delete;
  VerticalRelation& operator=(const VerticalRelation&) = delete;

  void Load(std::span<const rdf::Triple> triples);

  // Inserts one triple; returns false for duplicates. A triple with an
  // unseen property forces a *schema change* — two new B+trees — which is
  // the update-susceptibility of the data-driven vertical schema the paper
  // calls out in section 4.2. partitions_created() counts those events.
  bool Insert(const rdf::Triple& triple);
  uint64_t partitions_created() const { return partitions_created_; }

  const std::vector<uint64_t>& properties() const { return properties_; }
  uint64_t PartitionSize(uint64_t property) const;
  bool HasPartition(uint64_t property) const {
    return partitions_.count(property) != 0;
  }
  uint64_t disk_bytes() const;

  // Cursor over one partition's (subject, object) pairs matching the
  // optional bounds, emitted as full triples.
  class Scan {
   public:
    Scan() = default;

    bool Valid() const { return valid_; }
    const rdf::Triple& value() const { return current_; }
    void Next();

   private:
    friend class VerticalRelation;

    void Advance();

    const BPlusTree<2>* tree_ = nullptr;       // tree being scanned
    const BPlusTree<2>* clustered_ = nullptr;  // for row fetches
    bool object_order_ = false;                // scanning the OS index
    bool charge_row_fetch_ = false;
    int prefix_len_ = 0;
    std::array<uint64_t, 2> prefix_{};
    std::optional<uint64_t> subject_filter_;
    std::optional<uint64_t> object_filter_;
    uint64_t property_ = 0;
    BPlusTree<2>::Iterator it_;
    rdf::Triple current_{};
    bool valid_ = false;
  };

  // Opens a scan of `property`'s partition with optional subject/object
  // equality bounds, picking clustered-prefix / secondary / full-scan by
  // the same cost heuristics as TripleRelation. Returns an invalid scan if
  // the partition does not exist.
  Scan OpenPartition(uint64_t property, std::optional<uint64_t> subject,
                     std::optional<uint64_t> object) const;

  // Audit walker. Audits both B+trees of every partition and checks that
  // the SO and OS trees agree with the partition's declared row count and
  // that the property index matches the partition map.
  void AuditInto(audit::AuditLevel level, audit::AuditReport* report) const;

 private:
  struct Partition {
    std::unique_ptr<BPlusTree<2>> clustered_so;
    std::unique_ptr<BPlusTree<2>> secondary_os;
    uint64_t rows = 0;
    uint64_t distinct_subjects = 0;
    uint64_t distinct_objects = 0;
  };

  storage::BufferPool* pool_;
  storage::SimulatedDisk* disk_;
  uint64_t partitions_created_ = 0;
  std::vector<uint64_t> properties_;
  std::unordered_map<uint64_t, Partition> partitions_;
};

}  // namespace swan::rowstore

#endif  // SWANDB_ROWSTORE_VERTICAL_RELATION_H_
