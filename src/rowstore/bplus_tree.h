#ifndef SWANDB_ROWSTORE_BPLUS_TREE_H_
#define SWANDB_ROWSTORE_BPLUS_TREE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "audit/audit.h"
#include "common/macros.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace swan::rowstore {

inline constexpr uint32_t kInvalidPage = 0xFFFFFFFFu;

// Disk-resident B+tree over fixed-width tuples of uint64 ids, compared
// lexicographically. The tuple *is* the record (covering index): this is
// exactly how a clustered index over a (subject, property, object) or
// (subject, object) relation stores its rows.
//
// W is the key width: 3 for triple permutations, 2 for the per-property
// tables of the vertically-partitioned scheme.
//
// All page accesses go through the BufferPool, so the simulated disk
// observes the tree's real access pattern: bulk-loaded leaves are laid out
// sequentially (range scans read contiguous pages), while root-to-leaf
// descents and secondary-index row fetches pay random I/O.
template <int W>
class BPlusTree {
 public:
  using Key = std::array<uint64_t, W>;

  // Page layout -----------------------------------------------------------
  // Both node kinds start with:
  //   u16 is_leaf | u16 count | u32 next_leaf (leaf chain; kInvalidPage)
  //   u64 reserved (alignment)
  // Leaf:     keys[count] at byte 16, each W*8 bytes.
  // Internal: children[count+1] (u32) at byte 16, keys at kInternalKeyOff.
  //   Key i separates children i and i+1: it is the smallest key reachable
  //   under child i+1.
  // Capacities leave one key (and one child) of slack: the insert path
  // lets a node temporarily hold capacity+1 keys before splitting it.
  static constexpr size_t kHeaderSize = 16;
  static constexpr size_t kKeyBytes = sizeof(uint64_t) * W;
  static constexpr uint16_t kLeafCapacity = static_cast<uint16_t>(
      (storage::kPageSize - kHeaderSize) / kKeyBytes - 1);
  static constexpr uint16_t kInternalCapacity = static_cast<uint16_t>(
      (storage::kPageSize - kHeaderSize - 2 * sizeof(uint32_t) - kKeyBytes -
       8) /
      (kKeyBytes + sizeof(uint32_t)));
  static constexpr size_t kInternalKeyOff =
      (kHeaderSize + sizeof(uint32_t) * (kInternalCapacity + 2) + 7) & ~7ull;
  static_assert(kHeaderSize + kKeyBytes * (kLeafCapacity + 1) <=
                storage::kPageSize);
  static_assert(kInternalKeyOff + kKeyBytes * (kInternalCapacity + 1) <=
                storage::kPageSize);

  BPlusTree(storage::BufferPool* pool, storage::SimulatedDisk* disk)
      : pool_(pool), file_(disk) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;

  // Builds the tree from keys that must be sorted and unique. Leaves are
  // written in key order as consecutive pages, then each internal level.
  // May only be called on an empty tree.
  void BulkLoad(std::span<const Key> sorted_keys);

  // Inserts a key, splitting nodes as needed; returns false if the key was
  // already present. Write-through: pages are patched in the pool and on
  // disk.
  bool Insert(const Key& key);

  bool Contains(const Key& key) const;

  uint64_t size() const { return size_; }
  int height() const { return height_; }

  // Leaf-chain layout, the basis of chunked parallel scans. BulkLoad lays
  // the leaves out as consecutive pages [first_leaf_page, first_leaf_page
  // + num_leaves); a later leaf split appends its right sibling at the end
  // of the file and permanently breaks that contiguity, after which
  // chunked scans must fall back to the serial sibling chain.
  bool LeafChainContiguous() const { return leaf_chain_contiguous_; }
  uint32_t first_leaf_page() const { return first_leaf_page_; }
  uint32_t num_leaves() const { return num_leaves_; }

  // Calls fn(key) for every key in leaves [leaf_begin, leaf_end) of the
  // contiguous bulk-loaded chain, in key order. Only valid while
  // LeafChainContiguous(). Pages are fetched through the buffer pool, so
  // the I/O model observes one sequential page run per chunk.
  template <typename Fn>
  void ScanLeaves(uint32_t leaf_begin, uint32_t leaf_end, const Fn& fn) const {
    SWAN_DCHECK(leaf_chain_contiguous_);
    SWAN_DCHECK_LE(leaf_end, num_leaves_);
    for (uint32_t leaf = leaf_begin; leaf < leaf_end; ++leaf) {
      storage::PageGuard guard =
          pool_->Fetch(file_.page_id(first_leaf_page_ + leaf));
      const uint8_t* p = guard.data();
      const uint16_t count = ReadU16(p + 2);
      for (uint16_t i = 0; i < count; ++i) fn(LeafKeyAt(p, i));
    }
  }

  // Charges the root-to-leftmost-leaf descent to the I/O model without
  // producing keys. A chunked scan issues this once before fanning out so
  // its set of touched pages — and therefore its cold I/O bytes — is
  // identical to the serial cursor's Seek-then-chain walk.
  void ChargeScanDescent() const {
    Key min{};
    min.fill(0);
    uint32_t leaf;
    uint16_t slot;
    bool found;
    FindLeaf(min, &leaf, &slot, &found);
  }

  uint32_t page_count() const { return file_.page_count(); }
  uint32_t file_id() const { return file_.file_id(); }
  uint64_t disk_bytes() const {
    return static_cast<uint64_t>(file_.page_count()) * storage::kPageSize;
  }

  // Forward iterator over keys, starting at the first key >= lower bound.
  class Iterator {
   public:
    Iterator() = default;

    bool Valid() const { return tree_ != nullptr; }
    const Key& key() const { return key_; }

    void Next() {
      SWAN_DCHECK(Valid());
      ++slot_;
      if (slot_ >= count_) {
        if (next_leaf_ == kInvalidPage) {
          tree_ = nullptr;
          return;
        }
        LoadLeaf(next_leaf_);
        if (count_ == 0) {  // can only happen on an empty chain tail
          tree_ = nullptr;
          return;
        }
      }
      LoadKey();
    }

   private:
    friend class BPlusTree;

    void LoadLeaf(uint32_t page_no) {
      guard_ = tree_->pool_->Fetch(tree_->file_.page_id(page_no));
      const uint8_t* p = guard_.data();
      count_ = ReadU16(p + 2);
      next_leaf_ = ReadU32(p + 4);
      slot_ = 0;
    }

    void LoadKey() {
      std::memcpy(key_.data(), guard_.data() + kHeaderSize + slot_ * kKeyBytes,
                  kKeyBytes);
    }

    const BPlusTree* tree_ = nullptr;
    storage::PageGuard guard_;
    uint16_t slot_ = 0;
    uint16_t count_ = 0;
    uint32_t next_leaf_ = kInvalidPage;
    Key key_;
  };

  // First key >= `lower`. Iterator is invalid if no such key exists.
  Iterator Seek(const Key& lower) const;

  // Iterator over the whole tree in key order.
  Iterator Begin() const;

  // Number of keys whose first `prefix_len` components equal `prefix`.
  // Walks the leaf range (used by tests; plans use statistics instead).
  uint64_t CountPrefix(std::span<const uint64_t> prefix) const;

  // Audit walker. At kFull, descends from the root verifying: page
  // checksums, header sanity, key ordering within nodes, separator/child
  // consistency (every key under child i+1 is >= separator i and every key
  // under child i is < separator i), uniform leaf depth, minimum fill
  // (no empty non-root nodes), the leaf sibling chain, and that the leaf
  // key total matches size(). Tolerant: corruption becomes findings, never
  // an abort, and reporting stops after a bounded number of findings per
  // tree so a trashed page does not flood the report.
  void AuditInto(audit::AuditLevel level, audit::AuditReport* report) const;

 private:
  static uint16_t ReadU16(const uint8_t* p) {
    uint16_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static uint32_t ReadU32(const uint8_t* p) {
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static void WriteU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
  static void WriteU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }

  static Key LeafKeyAt(const uint8_t* page, uint16_t slot) {
    Key k;
    std::memcpy(k.data(), page + kHeaderSize + slot * kKeyBytes, kKeyBytes);
    return k;
  }
  static Key InternalKeyAt(const uint8_t* page, uint16_t slot) {
    Key k;
    std::memcpy(k.data(), page + kInternalKeyOff + slot * kKeyBytes,
                kKeyBytes);
    return k;
  }
  static uint32_t ChildAt(const uint8_t* page, uint16_t slot) {
    return ReadU32(page + kHeaderSize + slot * sizeof(uint32_t));
  }

  // Returns the leaf page holding the lower bound of `key` plus the slot.
  // Descends from the root, pinning one page at a time.
  void FindLeaf(const Key& key, uint32_t* leaf_page, uint16_t* slot,
                bool* found) const;

  // Shared state of one AuditInto() walk.
  struct AuditWalkState {
    audit::AuditReport* report = nullptr;
    std::string object;
    std::unordered_set<uint32_t> visited;
    // Leaves in key order as encountered by the DFS: (page_no, next_leaf).
    std::vector<std::pair<uint32_t, uint32_t>> leaves;
    uint64_t leaf_keys = 0;
    int leaf_depth = -1;  // first observed root->leaf depth
    int findings_budget = 16;

    void Add(std::string detail) {
      if (findings_budget == 0) {
        report->Add(audit::FindingClass::kBPlusTree, object,
                    "(further findings suppressed)");
        --findings_budget;
      }
      if (findings_budget < 0) return;
      --findings_budget;
      report->Add(audit::FindingClass::kBPlusTree, object, std::move(detail));
    }
  };

  static std::string RenderKey(const Key& key) {
    std::string out = "(";
    for (int i = 0; i < W; ++i) {
      if (i > 0) out += ",";
      out += std::to_string(key[i]);
    }
    out += ")";
    return out;
  }

  // DFS node check with propagated key bounds: every key in the subtree
  // must lie in [lower, upper). Null bound = unbounded.
  void AuditWalk(uint32_t page_no, int depth, const Key* lower,
                 const Key* upper, AuditWalkState* state) const;

  // Insert helpers operating on page images copied out of the pool.
  struct SplitResult {
    bool split = false;
    Key separator;
    uint32_t right_page = 0;
  };
  SplitResult InsertRecurse(uint32_t page_no, const Key& key, bool* inserted);

  storage::BufferPool* pool_;
  storage::PagedFile file_;
  uint32_t root_page_ = kInvalidPage;
  uint64_t size_ = 0;
  int height_ = 0;
  uint32_t first_leaf_page_ = kInvalidPage;
  uint32_t num_leaves_ = 0;
  bool leaf_chain_contiguous_ = false;
};

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

template <int W>
void BPlusTree<W>::BulkLoad(std::span<const Key> sorted_keys) {
  SWAN_CHECK_MSG(root_page_ == kInvalidPage, "BulkLoad on non-empty tree");
  for (size_t i = 1; i < sorted_keys.size(); ++i) {
    SWAN_DCHECK_LT(sorted_keys[i - 1], sorted_keys[i]);
  }

  size_ = sorted_keys.size();
  alignas(8) uint8_t page[storage::kPageSize];

  if (sorted_keys.empty()) {
    std::memset(page, 0, sizeof(page));
    WriteU16(page, 1);           // is_leaf
    WriteU16(page + 2, 0);       // count
    WriteU32(page + 4, kInvalidPage);
    root_page_ = file_.AppendPage(page);
    first_leaf_page_ = root_page_;
    num_leaves_ = 1;
    leaf_chain_contiguous_ = true;
    height_ = 1;
    return;
  }

  // Level 0: leaves. Entries for the next level: (first key, page_no).
  std::vector<std::pair<Key, uint32_t>> level;
  {
    size_t pos = 0;
    const size_t n = sorted_keys.size();
    const size_t num_leaves = (n + kLeafCapacity - 1) / kLeafCapacity;
    // Page numbers are allocated consecutively starting at the current end
    // of the file, so the next_leaf chain can be filled in as we go.
    const uint32_t first_leaf = file_.page_count();
    for (size_t leaf = 0; leaf < num_leaves; ++leaf) {
      const size_t take = std::min<size_t>(kLeafCapacity, n - pos);
      std::memset(page, 0, sizeof(page));
      WriteU16(page, 1);
      WriteU16(page + 2, static_cast<uint16_t>(take));
      const uint32_t next = (leaf + 1 < num_leaves)
                                ? first_leaf + static_cast<uint32_t>(leaf) + 1
                                : kInvalidPage;
      WriteU32(page + 4, next);
      std::memcpy(page + kHeaderSize, sorted_keys[pos].data(),
                  take * kKeyBytes);
      const uint32_t page_no = file_.AppendPage(page);
      level.emplace_back(sorted_keys[pos], page_no);
      pos += take;
    }
    first_leaf_page_ = first_leaf;
    num_leaves_ = static_cast<uint32_t>(num_leaves);
    leaf_chain_contiguous_ = true;
  }
  height_ = 1;

  // Upper levels.
  while (level.size() > 1) {
    std::vector<std::pair<Key, uint32_t>> next_level;
    size_t pos = 0;
    while (pos < level.size()) {
      const size_t take =
          std::min<size_t>(kInternalCapacity + 1, level.size() - pos);
      std::memset(page, 0, sizeof(page));
      WriteU16(page, 0);  // internal
      WriteU16(page + 2, static_cast<uint16_t>(take - 1));
      WriteU32(page + 4, kInvalidPage);
      for (size_t i = 0; i < take; ++i) {
        WriteU32(page + kHeaderSize + i * sizeof(uint32_t),
                 level[pos + i].second);
      }
      for (size_t i = 1; i < take; ++i) {
        std::memcpy(page + kInternalKeyOff + (i - 1) * kKeyBytes,
                    level[pos + i].first.data(), kKeyBytes);
      }
      const uint32_t page_no = file_.AppendPage(page);
      next_level.emplace_back(level[pos].first, page_no);
      pos += take;
    }
    level = std::move(next_level);
    ++height_;
  }
  root_page_ = level[0].second;
}

template <int W>
void BPlusTree<W>::FindLeaf(const Key& key, uint32_t* leaf_page,
                            uint16_t* slot, bool* found) const {
  SWAN_CHECK_MSG(root_page_ != kInvalidPage, "tree not loaded");
  uint32_t page_no = root_page_;
  for (;;) {
    storage::PageGuard guard = pool_->Fetch(file_.page_id(page_no));
    const uint8_t* p = guard.data();
    const bool is_leaf = ReadU16(p) != 0;
    const uint16_t count = ReadU16(p + 2);
    if (is_leaf) {
      // Lower bound within the leaf.
      uint16_t lo = 0, hi = count;
      while (lo < hi) {
        const uint16_t mid = (lo + hi) / 2;
        if (LeafKeyAt(p, mid) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      *leaf_page = page_no;
      *slot = lo;
      *found = lo < count && LeafKeyAt(p, lo) == key;
      return;
    }
    // Internal: find first separator > key; descend into that child.
    uint16_t lo = 0, hi = count;
    while (lo < hi) {
      const uint16_t mid = (lo + hi) / 2;
      if (InternalKeyAt(p, mid) <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    page_no = ChildAt(p, lo);
  }
}

template <int W>
bool BPlusTree<W>::Contains(const Key& key) const {
  uint32_t leaf;
  uint16_t slot;
  bool found;
  FindLeaf(key, &leaf, &slot, &found);
  return found;
}

template <int W>
typename BPlusTree<W>::Iterator BPlusTree<W>::Seek(const Key& lower) const {
  uint32_t leaf;
  uint16_t slot;
  bool found;
  FindLeaf(lower, &leaf, &slot, &found);

  Iterator it;
  it.tree_ = this;
  it.LoadLeaf(leaf);
  it.slot_ = slot;
  if (slot >= it.count_) {
    // Lower bound falls past the end of this leaf; move to the next one.
    if (it.next_leaf_ == kInvalidPage) return Iterator();
    it.LoadLeaf(it.next_leaf_);
    if (it.count_ == 0) return Iterator();
  }
  it.LoadKey();
  return it;
}

template <int W>
typename BPlusTree<W>::Iterator BPlusTree<W>::Begin() const {
  Key min{};
  min.fill(0);
  return Seek(min);
}

template <int W>
uint64_t BPlusTree<W>::CountPrefix(std::span<const uint64_t> prefix) const {
  SWAN_CHECK_LE(prefix.size(), static_cast<size_t>(W));
  Key lower{};
  lower.fill(0);
  std::copy(prefix.begin(), prefix.end(), lower.begin());
  uint64_t count = 0;
  for (Iterator it = Seek(lower); it.Valid(); it.Next()) {
    bool match = true;
    for (size_t i = 0; i < prefix.size(); ++i) {
      if (it.key()[i] != prefix[i]) {
        match = false;
        break;
      }
    }
    if (!match) break;
    ++count;
  }
  return count;
}

template <int W>
typename BPlusTree<W>::SplitResult BPlusTree<W>::InsertRecurse(
    uint32_t page_no, const Key& key, bool* inserted) {
  alignas(8) uint8_t page[storage::kPageSize];
  {
    storage::PageGuard guard = pool_->Fetch(file_.page_id(page_no));
    std::memcpy(page, guard.data(), storage::kPageSize);
  }
  const bool is_leaf = ReadU16(page) != 0;
  uint16_t count = ReadU16(page + 2);

  if (is_leaf) {
    uint16_t lo = 0, hi = count;
    while (lo < hi) {
      const uint16_t mid = (lo + hi) / 2;
      if (LeafKeyAt(page, mid) < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < count && LeafKeyAt(page, lo) == key) {
      *inserted = false;
      return {};
    }
    *inserted = true;
    ++size_;
    // Shift and insert.
    uint8_t* base = page + kHeaderSize;
    std::memmove(base + (lo + 1) * kKeyBytes, base + lo * kKeyBytes,
                 (count - lo) * kKeyBytes);
    std::memcpy(base + lo * kKeyBytes, key.data(), kKeyBytes);
    ++count;
    WriteU16(page + 2, count);

    if (count <= kLeafCapacity) {
      pool_->WriteThrough(file_.page_id(page_no), page);
      return {};
    }
    // Split: left keeps half, right gets the rest.
    const uint16_t left_count = count / 2;
    const uint16_t right_count = count - left_count;
    alignas(8) uint8_t right[storage::kPageSize];
    std::memset(right, 0, sizeof(right));
    WriteU16(right, 1);
    WriteU16(right + 2, right_count);
    WriteU32(right + 4, ReadU32(page + 4));  // inherit next pointer
    std::memcpy(right + kHeaderSize, base + left_count * kKeyBytes,
                right_count * kKeyBytes);
    const uint32_t right_page = file_.AppendPage(right);
    // The new right sibling lives at the end of the file, out of key
    // order: chunked scans must fall back to the sibling chain from now
    // on.
    leaf_chain_contiguous_ = false;
    ++num_leaves_;

    WriteU16(page + 2, left_count);
    WriteU32(page + 4, right_page);
    pool_->WriteThrough(file_.page_id(page_no), page);

    SplitResult result;
    result.split = true;
    result.separator = LeafKeyAt(right, 0);
    result.right_page = right_page;
    return result;
  }

  // Internal node: find child and recurse.
  uint16_t lo = 0, hi = count;
  while (lo < hi) {
    const uint16_t mid = (lo + hi) / 2;
    if (InternalKeyAt(page, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const uint32_t child = ChildAt(page, lo);
  const SplitResult child_split = InsertRecurse(child, key, inserted);
  if (!child_split.split) return {};

  // Insert separator at position lo, child pointer at lo+1.
  uint8_t* children = page + kHeaderSize;
  uint8_t* keys = page + kInternalKeyOff;
  std::memmove(children + (lo + 2) * sizeof(uint32_t),
               children + (lo + 1) * sizeof(uint32_t),
               (count - lo) * sizeof(uint32_t));
  WriteU32(children + (lo + 1) * sizeof(uint32_t), child_split.right_page);
  std::memmove(keys + (lo + 1) * kKeyBytes, keys + lo * kKeyBytes,
               (count - lo) * kKeyBytes);
  std::memcpy(keys + lo * kKeyBytes, child_split.separator.data(), kKeyBytes);
  ++count;
  WriteU16(page + 2, count);

  if (count <= kInternalCapacity) {
    pool_->WriteThrough(file_.page_id(page_no), page);
    return {};
  }

  // Split internal node. Key at position `mid` moves up as the separator.
  const uint16_t mid = count / 2;
  const uint16_t right_count = count - mid - 1;
  alignas(8) uint8_t right[storage::kPageSize];
  std::memset(right, 0, sizeof(right));
  WriteU16(right, 0);
  WriteU16(right + 2, right_count);
  WriteU32(right + 4, kInvalidPage);
  std::memcpy(right + kHeaderSize, children + (mid + 1) * sizeof(uint32_t),
              (right_count + 1) * sizeof(uint32_t));
  std::memcpy(right + kInternalKeyOff, keys + (mid + 1) * kKeyBytes,
              right_count * kKeyBytes);
  const uint32_t right_page = file_.AppendPage(right);

  SplitResult result;
  result.split = true;
  result.separator = InternalKeyAt(page, mid);
  result.right_page = right_page;

  WriteU16(page + 2, mid);
  pool_->WriteThrough(file_.page_id(page_no), page);
  return result;
}

template <int W>
void BPlusTree<W>::AuditWalk(uint32_t page_no, int depth, const Key* lower,
                             const Key* upper, AuditWalkState* state) const {
  const std::string at = "page " + std::to_string(page_no);
  if (page_no >= file_.page_count()) {
    state->Add(at + ": child pointer past end of file (" +
               std::to_string(file_.page_count()) + " pages)");
    return;
  }
  if (!state->visited.insert(page_no).second) {
    state->Add(at + ": reachable twice (cycle or shared child)");
    return;
  }

  // Copy the image out so no pin is held across the recursion; a checksum
  // mismatch is a finding, not an abort.
  alignas(8) uint8_t page[storage::kPageSize];
  {
    storage::PageGuard guard;
    Status st = pool_->TryFetch(file_.page_id(page_no), &guard);
    if (!st.ok()) {
      state->report->Add(audit::FindingClass::kChecksum, state->object,
                         at + ": " + st.message());
      return;
    }
    std::memcpy(page, guard.data(), storage::kPageSize);
  }

  const uint16_t is_leaf_raw = ReadU16(page);
  if (is_leaf_raw > 1) {
    state->Add(at + ": header is_leaf flag is " +
               std::to_string(is_leaf_raw) + ", expected 0 or 1");
    return;
  }
  const bool is_leaf = is_leaf_raw != 0;
  const uint16_t count = ReadU16(page + 2);
  const bool is_root = page_no == root_page_;

  if (is_leaf) {
    if (count > kLeafCapacity) {
      state->Add(at + ": leaf count " + std::to_string(count) +
                 " exceeds capacity " + std::to_string(kLeafCapacity));
      return;  // key slots past capacity would read garbage
    }
    if (count == 0 && !is_root) {
      state->Add(at + ": empty non-root leaf violates minimum fill");
    }
    if (state->leaf_depth == -1) {
      state->leaf_depth = depth;
    } else if (depth != state->leaf_depth) {
      state->Add(at + ": leaf at depth " + std::to_string(depth) +
                 " but first leaf was at depth " +
                 std::to_string(state->leaf_depth));
    }
    Key prev{};
    for (uint16_t i = 0; i < count; ++i) {
      const Key k = LeafKeyAt(page, i);
      if (i > 0 && !(prev < k)) {
        state->Add(at + ": leaf keys out of order at slot " +
                   std::to_string(i) + ": " + RenderKey(prev) + " !< " +
                   RenderKey(k));
      }
      if (lower != nullptr && k < *lower) {
        state->Add(at + ": key " + RenderKey(k) +
                   " below subtree lower bound " + RenderKey(*lower));
      }
      if (upper != nullptr && !(k < *upper)) {
        state->Add(at + ": key " + RenderKey(k) +
                   " not below subtree upper bound " + RenderKey(*upper));
      }
      prev = k;
    }
    state->leaf_keys += count;
    state->leaves.emplace_back(page_no, ReadU32(page + 4));
    return;
  }

  // Internal node.
  if (count > kInternalCapacity) {
    state->Add(at + ": internal count " + std::to_string(count) +
               " exceeds capacity " + std::to_string(kInternalCapacity));
    return;
  }
  if (count == 0) {
    state->Add(at + ": internal node with zero separators");
    return;
  }
  // Separators must be strictly increasing and within the propagated
  // bounds; each child subtree inherits the adjacent separators as bounds.
  std::vector<Key> seps(count);
  for (uint16_t i = 0; i < count; ++i) {
    seps[i] = InternalKeyAt(page, i);
    if (i > 0 && !(seps[i - 1] < seps[i])) {
      state->Add(at + ": separators out of order at slot " +
                 std::to_string(i) + ": " + RenderKey(seps[i - 1]) + " !< " +
                 RenderKey(seps[i]));
    }
    if (lower != nullptr && seps[i] < *lower) {
      state->Add(at + ": separator " + RenderKey(seps[i]) +
                 " below subtree lower bound " + RenderKey(*lower));
    }
    if (upper != nullptr && !(seps[i] < *upper)) {
      state->Add(at + ": separator " + RenderKey(seps[i]) +
                 " not below subtree upper bound " + RenderKey(*upper));
    }
  }
  for (uint16_t i = 0; i <= count; ++i) {
    if (state->findings_budget < 0) return;
    const Key* child_lower = (i == 0) ? lower : &seps[i - 1];
    const Key* child_upper = (i == count) ? upper : &seps[i];
    AuditWalk(ChildAt(page, i), depth + 1, child_lower, child_upper, state);
  }
}

template <int W>
void BPlusTree<W>::AuditInto(audit::AuditLevel level,
                             audit::AuditReport* report) const {
  const std::string object =
      "bplustree(file " + std::to_string(file_.file_id()) + ")";
  if (root_page_ == kInvalidPage) {
    if (size_ != 0) {
      report->Add(audit::FindingClass::kBPlusTree, object,
                  "unloaded tree claims size " + std::to_string(size_));
    }
    return;
  }
  if (level < audit::AuditLevel::kFull) return;  // all checks walk pages

  AuditWalkState state;
  state.report = report;
  state.object = object;
  AuditWalk(root_page_, 1, nullptr, nullptr, &state);
  if (state.findings_budget < 0) return;  // structure too damaged to sum up

  if (state.leaf_keys != size_) {
    state.Add("leaf keys total " + std::to_string(state.leaf_keys) +
              " but tree claims size " + std::to_string(size_));
  }
  if (state.leaf_depth != height_) {
    state.Add("leaf depth " + std::to_string(state.leaf_depth) +
              " but tree claims height " + std::to_string(height_));
  }
  // Leaf sibling chain must enumerate the leaves in key order.
  for (size_t i = 0; i < state.leaves.size(); ++i) {
    const uint32_t next = state.leaves[i].second;
    const uint32_t expect = (i + 1 < state.leaves.size())
                                ? state.leaves[i + 1].first
                                : kInvalidPage;
    if (next != expect) {
      state.Add("leaf page " + std::to_string(state.leaves[i].first) +
                " chains to " + std::to_string(next) + ", expected " +
                std::to_string(expect));
    }
  }
}

template <int W>
bool BPlusTree<W>::Insert(const Key& key) {
  if (root_page_ == kInvalidPage) {
    BulkLoad(std::span<const Key>(&key, 1));
    return true;
  }
  bool inserted = false;
  const SplitResult split = InsertRecurse(root_page_, key, &inserted);
  if (split.split) {
    alignas(8) uint8_t page[storage::kPageSize];
    std::memset(page, 0, sizeof(page));
    WriteU16(page, 0);
    WriteU16(page + 2, 1);
    WriteU32(page + 4, kInvalidPage);
    WriteU32(page + kHeaderSize, root_page_);
    WriteU32(page + kHeaderSize + sizeof(uint32_t), split.right_page);
    std::memcpy(page + kInternalKeyOff, split.separator.data(), kKeyBytes);
    root_page_ = file_.AppendPage(page);
    ++height_;
  }
  return inserted;
}

}  // namespace swan::rowstore

#endif  // SWANDB_ROWSTORE_BPLUS_TREE_H_
