#ifndef SWANDB_ROWSTORE_SORTED_TABLE_H_
#define SWANDB_ROWSTORE_SORTED_TABLE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "audit/audit.h"
#include "common/macros.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace swan::rowstore {

// Read-only table of fixed-width uint64 rows, stored sorted by the first
// column and accessed by binary search or sequential scan. This is the
// storage for the property-table scheme's wide "flattened" table: rows
// keyed by subject with one column per materialized property.
//
// Unlike BPlusTree, the row width is a runtime value (property tables are
// as wide as the property set chosen by the design wizard).
class SortedTable {
 public:
  SortedTable(storage::BufferPool* pool, storage::SimulatedDisk* disk,
              uint32_t row_width);

  SortedTable(const SortedTable&) = delete;
  SortedTable& operator=(const SortedTable&) = delete;

  // `flat` is row-major, row_count * row_width values, sorted by column 0
  // with unique keys. May only be called once.
  void BulkLoad(std::span<const uint64_t> flat, uint64_t row_count);

  uint64_t row_count() const { return row_count_; }
  uint32_t row_width() const { return row_width_; }
  uint64_t disk_bytes() const {
    return static_cast<uint64_t>(file_.page_count()) * storage::kPageSize;
  }

  // Index of the row whose column 0 equals `key`, if any. O(log n) page
  // accesses through the buffer pool.
  std::optional<uint64_t> FindRow(uint64_t key) const;

  // Sequential cursor; holds the current page pinned.
  class Cursor {
   public:
    Cursor() = default;

    bool Valid() const { return table_ != nullptr; }
    // The current row's values (row_width entries). The span is valid
    // until Next() or destruction.
    std::span<const uint64_t> row() const {
      SWAN_DCHECK(Valid());
      return {values_, table_->row_width_};
    }
    void Next();

   private:
    friend class SortedTable;

    void LoadRow();

    const SortedTable* table_ = nullptr;
    uint64_t index_ = 0;
    storage::PageGuard guard_;
    uint32_t page_no_ = UINT32_MAX;
    const uint64_t* values_ = nullptr;
  };

  // Cursor positioned at row `index` (e.g. from FindRow); invalid if past
  // the end.
  Cursor SeekRow(uint64_t index) const;
  Cursor Begin() const { return SeekRow(0); }

  // Audit walker. Verifies the page count covers the declared row count
  // and (at kFull) sweeps every page tolerantly, checking that keys
  // (column 0) are strictly ascending across the whole table.
  void AuditInto(audit::AuditLevel level, audit::AuditReport* report) const;

 private:
  uint64_t RowsPerPage() const {
    return storage::kPageSize / (sizeof(uint64_t) * row_width_);
  }
  // Key (column 0) of row `index`.
  uint64_t KeyAt(uint64_t index) const;

  storage::BufferPool* pool_;
  storage::PagedFile file_;
  uint32_t row_width_;
  uint64_t row_count_ = 0;
  bool built_ = false;
};

}  // namespace swan::rowstore

#endif  // SWANDB_ROWSTORE_SORTED_TABLE_H_
