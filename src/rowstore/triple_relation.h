#ifndef SWANDB_ROWSTORE_TRIPLE_RELATION_H_
#define SWANDB_ROWSTORE_TRIPLE_RELATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/exec_context.h"

#include "audit/audit.h"
#include "rdf/pattern.h"
#include "rdf/triple.h"
#include "rowstore/bplus_tree.h"
#include "rowstore/stats.h"
#include "storage/buffer_pool.h"
#include "storage/simulated_disk.h"

namespace swan::rowstore {

// Row-store triple table: one clustered B+tree holding the rows in a
// chosen TripleOrder, plus unclustered secondary indices in other orders.
// Mirrors the paper's two DBX configurations (§4.1):
//   * SPO-clustered + unclustered POS, OSP   (as in Abadi et al.), and
//   * PSO-clustered + unclustered indices on all 5 other permutations.
//
// Secondary indexes are modelled as *non-covering*: scanning one yields
// row references, and producing the row costs a point lookup in the
// clustered tree (random I/O) — the classic reason optimizers avoid
// secondary ranges unless they are near-point predicates.
class TripleRelation {
 public:
  struct Config {
    rdf::TripleOrder clustered = rdf::TripleOrder::kPSO;
    std::vector<rdf::TripleOrder> secondaries;
  };

  // All-permutation PSO configuration ("triple PSO" in Tables 6/7).
  static Config PsoConfig();
  // Abadi-style SPO configuration ("triple SPO").
  static Config SpoConfig();

  TripleRelation(storage::BufferPool* pool, storage::SimulatedDisk* disk,
                 Config config);

  TripleRelation(const TripleRelation&) = delete;
  TripleRelation& operator=(const TripleRelation&) = delete;

  void Load(std::span<const rdf::Triple> triples);

  // Inserts one triple into the clustered tree and every secondary index;
  // returns false for duplicates. Frequency statistics are updated, but
  // distinct-value counts go stale until the next Load — just like real
  // optimizer statistics between ANALYZE runs.
  bool Insert(const rdf::Triple& triple);

  uint64_t size() const { return clustered_->size(); }
  const TripleStats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  uint64_t disk_bytes() const;

  // Chosen physical access path for a pattern (exposed for EXPLAIN-style
  // inspection and tests).
  struct AccessPath {
    enum class Kind { kFullScan, kClusteredPrefix, kSecondaryPrefix };
    Kind kind = Kind::kFullScan;
    rdf::TripleOrder order = rdf::TripleOrder::kSPO;
    int prefix_len = 0;
    double estimated_rows = 0.0;
    double cost_pages = 0.0;

    std::string ToString() const;
  };
  AccessPath ChoosePath(const rdf::TriplePattern& pattern) const;

  // Tuple-at-a-time cursor over the triples matching `pattern`.
  class Scan {
   public:
    Scan() = default;

    bool Valid() const { return valid_; }
    const rdf::Triple& value() const { return current_; }
    void Next();

   private:
    friend class TripleRelation;

    void Advance();

    const TripleRelation* relation_ = nullptr;
    const BPlusTree<3>* tree_ = nullptr;
    rdf::TripleOrder tree_order_ = rdf::TripleOrder::kSPO;
    // Cached ComponentsOf(tree_order_): maps key slots to (s, p, o) roles.
    std::array<int, 3> components_{0, 1, 2};
    bool charge_row_fetch_ = false;
    int prefix_len_ = 0;
    std::array<uint64_t, 3> prefix_{};
    rdf::TriplePattern pattern_;
    BPlusTree<3>::Iterator it_;
    rdf::Triple current_{};
    bool valid_ = false;
  };
  Scan Open(const rdf::TriplePattern& pattern) const;

  // Chunked full scan, the fan-out entry of a parallel whole-relation
  // read. FullScanChunks returns how many leaf-range chunks a full scan
  // splits into under `ectx`: 1 when the context is serial or the
  // clustered tree's bulk-loaded leaf chain has been broken by inserts
  // (callers then use the ordinary cursor, which is the bit-identical
  // serial path). When chunking, callers charge the descent once, then
  // scan each chunk — the union of pages touched equals the serial
  // cursor's, so cold I/O bytes are width-independent.
  uint64_t FullScanChunks(const exec::ExecContext& ectx) const;
  void ChargeFullScanDescent() const;
  // Emits every triple of chunk `chunk` (of `num_chunks`) in clustered key
  // order.
  void FullScanChunk(uint64_t chunk, uint64_t num_chunks,
                     const std::function<void(const rdf::Triple&)>& fn) const;

  // Audit walker. Audits the clustered tree and every secondary index,
  // and checks that all trees agree on the row count.
  void AuditInto(audit::AuditLevel level, audit::AuditReport* report) const;

 private:
  const BPlusTree<3>* TreeFor(rdf::TripleOrder order) const;

  Config config_;
  storage::BufferPool* pool_;
  std::unique_ptr<BPlusTree<3>> clustered_;
  std::vector<std::pair<rdf::TripleOrder, std::unique_ptr<BPlusTree<3>>>>
      secondaries_;
  TripleStats stats_;
};

}  // namespace swan::rowstore

#endif  // SWANDB_ROWSTORE_TRIPLE_RELATION_H_
