#include "rowstore/stats.h"

#include <algorithm>
#include <unordered_set>

namespace swan::rowstore {

TripleStats TripleStats::Compute(std::span<const rdf::Triple> triples) {
  TripleStats stats;
  stats.total_triples = triples.size();
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> prop_objects;
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> prop_subjects;
  for (const rdf::Triple& t : triples) {
    ++stats.subject_count[t.subject];
    ++stats.property_count[t.property];
    ++stats.object_count[t.object];
    prop_objects[t.property].insert(t.object);
    prop_subjects[t.property].insert(t.subject);
  }
  for (const auto& [p, objs] : prop_objects) {
    stats.property_distinct_objects[p] = objs.size();
  }
  for (const auto& [p, subjs] : prop_subjects) {
    stats.property_distinct_subjects[p] = subjs.size();
  }
  return stats;
}

double TripleStats::EstimateMatches(const rdf::TriplePattern& pattern) const {
  if (total_triples == 0) return 0.0;
  const double total = static_cast<double>(total_triples);
  double estimate = total;
  if (pattern.subject) {
    estimate *= static_cast<double>(CountOf(subject_count, *pattern.subject)) /
                total;
  }
  if (pattern.property) {
    estimate *=
        static_cast<double>(CountOf(property_count, *pattern.property)) /
        total;
  }
  if (pattern.object) {
    estimate *= static_cast<double>(CountOf(object_count, *pattern.object)) /
                total;
  }
  return estimate;
}

}  // namespace swan::rowstore
