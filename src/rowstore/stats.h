#ifndef SWANDB_ROWSTORE_STATS_H_
#define SWANDB_ROWSTORE_STATS_H_

#include <cstdint>
#include <span>
#include <unordered_map>

#include "rdf/pattern.h"
#include "rdf/triple.h"

namespace swan::rowstore {

// Optimizer statistics over a triple relation: the histograms a
// commercial row store ("DBX") keeps to pick between a clustered-index
// scan, a secondary-index range scan with row fetches, and a full scan.
struct TripleStats {
  uint64_t total_triples = 0;
  std::unordered_map<uint64_t, uint64_t> subject_count;
  std::unordered_map<uint64_t, uint64_t> property_count;
  std::unordered_map<uint64_t, uint64_t> object_count;
  std::unordered_map<uint64_t, uint64_t> property_distinct_objects;
  std::unordered_map<uint64_t, uint64_t> property_distinct_subjects;

  static TripleStats Compute(std::span<const rdf::Triple> triples);

  // Estimated number of triples matching `pattern`, using per-component
  // frequencies and an attribute-independence assumption — the textbook
  // System-R style estimate.
  double EstimateMatches(const rdf::TriplePattern& pattern) const;

  uint64_t CountOf(const std::unordered_map<uint64_t, uint64_t>& map,
                   uint64_t key) const {
    auto it = map.find(key);
    return it == map.end() ? 0 : it->second;
  }
};

}  // namespace swan::rowstore

#endif  // SWANDB_ROWSTORE_STATS_H_
