#include "net/network_model.h"

#include "common/macros.h"
#include "common/mutex.h"

namespace swan::net {

NetworkModel::NetworkModel(int nodes, NetworkConfig config)
    : nodes_(nodes), config_(config) {
  SWAN_CHECK_MSG(nodes >= 1, "network needs at least one node");
  links_.resize(static_cast<size_t>(nodes_) * nodes_);
  for (int s = 0; s < nodes_; ++s) {
    for (int d = 0; d < nodes_; ++d) {
      links_[static_cast<size_t>(s) * nodes_ + d].src = s;
      links_[static_cast<size_t>(s) * nodes_ + d].dst = d;
    }
  }
}

void NetworkModel::Ship(int src, int dst, uint64_t bytes, uint64_t messages,
                        const exec::ExecContext& ectx) {
  SWAN_CHECK_MSG(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_,
             "ship endpoint out of range");
  if (src == dst) return;
  ectx.counters().net_bytes.fetch_add(bytes, std::memory_order_relaxed);
  ectx.counters().net_messages.fetch_add(messages, std::memory_order_relaxed);
  MutexLock lock(&mutex_);
  LinkStats& link = links_[static_cast<size_t>(src) * nodes_ + dst];
  link.bytes += bytes;
  link.messages += messages;
  total_bytes_ += bytes;
  total_messages_ += messages;
}

double NetworkModel::seconds() const {
  MutexLock lock(&mutex_);
  double transfer =
      static_cast<double>(total_bytes_) / (config_.bandwidth_mb_per_s * 1e6);
  double latency =
      static_cast<double>(total_messages_) * config_.latency_ms_per_message *
      1e-3;
  return transfer + latency;
}

std::vector<LinkStats> NetworkModel::PerLink() const {
  MutexLock lock(&mutex_);
  std::vector<LinkStats> out;
  for (const LinkStats& link : links_) {
    if (link.bytes != 0 || link.messages != 0) out.push_back(link);
  }
  return out;
}

void NetworkModel::ResetStats() {
  MutexLock lock(&mutex_);
  for (LinkStats& link : links_) {
    link.bytes = 0;
    link.messages = 0;
  }
  total_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace swan::net
