#ifndef SWANDB_NET_NETWORK_MODEL_H_
#define SWANDB_NET_NETWORK_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "exec/exec_context.h"

namespace swan::net {

// Performance model of the interconnect between simulated nodes, on the
// same virtual-clock discipline as storage::SimulatedDisk: shipping data
// charges virtual time instead of sleeping. The defaults model a
// commodity 10 GbE fabric — fast relative to one node's disk (390 MB/s),
// which is exactly the regime where shipping a compact semi-join filter
// beats shipping full bindings.
struct NetworkConfig {
  // Per-link payload bandwidth.
  double bandwidth_mb_per_s = 1000.0;
  // Fixed per-message cost (serialization + round-trip latency). Charged
  // once per message regardless of size, so chatty protocols pay for it.
  double latency_ms_per_message = 0.05;
};

// Per-link transfer totals, for the bench penalty tables and obs spans.
struct LinkStats {
  int src = 0;
  int dst = 0;
  uint64_t bytes = 0;
  uint64_t messages = 0;
};

// Deterministic network-cost accumulator. Total modeled network time is
// an order-independent function of the transfer totals:
//
//   seconds = total_bytes / bandwidth + total_messages * latency
//
// — a sum, not a schedule — so the model charges the same virtual time at
// any thread width and any interleaving of Ship calls. This mirrors the
// disk's determinism contract (per-lane accrual there, order-independent
// totals here) and is what keeps the scale-out equivalence gate's replay
// byte-identical.
//
// Lock rank: kNetwork sits above kStorageDisk — a shipped request may
// charge the network and then read the destination node's disk, so the
// network lock is always acquired first (death-tested in
// tests/scaleout_test.cc).
class NetworkModel {
 public:
  explicit NetworkModel(int nodes, NetworkConfig config = NetworkConfig());

  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  int nodes() const { return nodes_; }
  const NetworkConfig& config() const { return config_; }

  // Charges `bytes` over `messages` messages on the src -> dst link and
  // folds the transfer into `ectx`'s OpCounters (net_bytes/net_messages).
  // Local transfers (src == dst) are free: no charge, no counters.
  void Ship(int src, int dst, uint64_t bytes, uint64_t messages,
            const exec::ExecContext& ectx) SWAN_EXCLUDES(mutex_);

  // --- accounting -------------------------------------------------------
  uint64_t total_bytes() const SWAN_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return total_bytes_;
  }
  uint64_t total_messages() const SWAN_EXCLUDES(mutex_) {
    MutexLock lock(&mutex_);
    return total_messages_;
  }

  // Modeled network seconds accrued so far (see class comment).
  double seconds() const SWAN_EXCLUDES(mutex_);

  // Nonzero links in deterministic (src, dst) order.
  std::vector<LinkStats> PerLink() const SWAN_EXCLUDES(mutex_);

  void ResetStats() SWAN_EXCLUDES(mutex_);

 private:
  const int nodes_;
  const NetworkConfig config_;

  mutable Mutex mutex_{LockRank::kNetwork, "net.model"};
  // Dense (src * nodes + dst) link matrix; diagonal entries stay zero.
  std::vector<LinkStats> links_ SWAN_GUARDED_BY(mutex_);
  uint64_t total_bytes_ SWAN_GUARDED_BY(mutex_) = 0;
  uint64_t total_messages_ SWAN_GUARDED_BY(mutex_) = 0;
};

}  // namespace swan::net

#endif  // SWANDB_NET_NETWORK_MODEL_H_
