#include "net/topology.h"

#include <algorithm>

#include "common/macros.h"

namespace swan::net {

Topology::Topology(TopologyConfig config)
    : config_(config), network_(config.nodes, config.network) {
  SWAN_CHECK_MSG(config_.nodes >= 1, "topology needs at least one node");
  size_t per_node_pages = std::max<size_t>(
      64, config_.pool_pages / static_cast<size_t>(config_.nodes));
  nodes_.reserve(static_cast<size_t>(config_.nodes));
  for (int n = 0; n < config_.nodes; ++n) {
    nodes_.push_back(storage::MakeNodeStorage(config_.disk, per_node_pages));
  }
}

double Topology::MaxNodeSeconds() const {
  double max_seconds = 0.0;
  for (const storage::NodeStorage& node : nodes_) {
    max_seconds = std::max(max_seconds, node.disk->clock().now());
  }
  return max_seconds;
}

uint64_t Topology::TotalBytesRead() const {
  uint64_t total = 0;
  for (const storage::NodeStorage& node : nodes_) {
    total += node.disk->total_bytes_read();
  }
  return total;
}

uint64_t Topology::TotalReads() const {
  uint64_t total = 0;
  for (const storage::NodeStorage& node : nodes_) {
    total += node.disk->total_reads();
  }
  return total;
}

uint64_t Topology::TotalSeeks() const {
  uint64_t total = 0;
  for (const storage::NodeStorage& node : nodes_) {
    total += node.disk->total_seeks();
  }
  return total;
}

std::vector<double> Topology::LaneSecondsSnapshot() const {
  std::vector<double> lanes;
  for (const storage::NodeStorage& node : nodes_) {
    std::vector<double> node_lanes = node.disk->LaneSecondsSnapshot();
    if (node_lanes.size() > lanes.size()) lanes.resize(node_lanes.size(), 0.0);
    for (size_t i = 0; i < node_lanes.size(); ++i) {
      lanes[i] = std::max(lanes[i], node_lanes[i]);
    }
  }
  return lanes;
}

}  // namespace swan::net
