#ifndef SWANDB_NET_TOPOLOGY_H_
#define SWANDB_NET_TOPOLOGY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/network_model.h"
#include "storage/node_storage.h"

namespace swan::net {

struct TopologyConfig {
  // Simulated node count (>= 1). One node is the degenerate topology a
  // single-node backend is equivalent to.
  int nodes = 1;
  // Every node gets an identical disk (homogeneous cluster).
  storage::DiskConfig disk;
  // TOTAL buffer-pool budget, split evenly across nodes (floor 64 pages
  // per node) — scaling out does not quietly grant the cluster more
  // cache than the single-node baseline it is compared against.
  size_t pool_pages = 65536;
  NetworkConfig network;
};

// A deterministic cluster of N simulated nodes — each owning its private
// SimulatedDisk + BufferPool stack, built through the one sanctioned
// storage::MakeNodeStorage factory — joined by a NetworkModel on the same
// virtual-clock discipline. The topology's virtual clock is
//
//   max over nodes of the node disk clock  +  network seconds
//
// because the nodes' disks accrue independently (a scatter touches them
// in parallel in model time even though the simulation issues reads
// serially), while every inter-node transfer serializes through the
// modeled fabric. All state below the construction surface is per-node
// or inside NetworkModel, each behind its own ranked lock; the topology
// object itself is immutable after construction and needs no mutex.
class Topology {
 public:
  explicit Topology(TopologyConfig config);

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  int nodes() const { return config_.nodes; }
  const TopologyConfig& config() const { return config_; }

  storage::SimulatedDisk* disk(int node) { return nodes_[node].disk.get(); }
  const storage::SimulatedDisk* disk(int node) const {
    return nodes_[node].disk.get();
  }
  storage::BufferPool* pool(int node) { return nodes_[node].pool.get(); }
  const storage::BufferPool* pool(int node) const {
    return nodes_[node].pool.get();
  }

  NetworkModel& network() { return network_; }
  const NetworkModel& network() const { return network_; }

  // Max over the per-node disk clocks: the model-time point at which the
  // slowest node has finished its reads.
  double MaxNodeSeconds() const;

  // The cluster's virtual clock (see class comment).
  double VirtualNow() const { return MaxNodeSeconds() + network_.seconds(); }

  // Sums across nodes, for aggregate cost reporting.
  uint64_t TotalBytesRead() const;
  uint64_t TotalReads() const;
  uint64_t TotalSeeks() const;

  // Element-wise max of the per-node lane ledgers: lane i's cluster-wide
  // busy time is bounded by its busiest node.
  std::vector<double> LaneSecondsSnapshot() const;

 private:
  TopologyConfig config_;
  std::vector<storage::NodeStorage> nodes_;
  NetworkModel network_;
};

}  // namespace swan::net

#endif  // SWANDB_NET_TOPOLOGY_H_
