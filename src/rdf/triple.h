#ifndef SWANDB_RDF_TRIPLE_H_
#define SWANDB_RDF_TRIPLE_H_

#include <array>
#include <cstdint>
#include <string>

namespace swan::rdf {

// One RDF statement, dictionary-encoded. An RDF graph is a *set* of
// triples; loaders deduplicate.
struct Triple {
  uint64_t subject;
  uint64_t property;
  uint64_t object;

  friend bool operator==(const Triple& a, const Triple& b) = default;
  friend auto operator<=>(const Triple& a, const Triple& b) = default;
};

// The six physical orderings of the triple components. The paper's central
// row-store finding is that the choice between SPO and PSO clustering
// changes query times by factors of 2–5 (§4.3).
enum class TripleOrder { kSPO, kSOP, kPSO, kPOS, kOSP, kOPS };

// Component order of a TripleOrder: returns indices into (s, p, o).
// E.g. kPSO -> {1, 0, 2}.
std::array<int, 3> ComponentsOf(TripleOrder order);

// Permutes a triple into the key layout of `order`.
std::array<uint64_t, 3> KeyOf(const Triple& t, TripleOrder order);

// Reassembles a Triple from a permuted key.
Triple TripleFromKey(const std::array<uint64_t, 3>& key, TripleOrder order);

// Short display name, e.g. "PSO".
std::string ToString(TripleOrder order);

struct TripleHash {
  size_t operator()(const Triple& t) const {
    uint64_t h = t.subject * 0x9e3779b97f4a7c15ULL;
    h ^= (t.property + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= (t.object + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

}  // namespace swan::rdf

#endif  // SWANDB_RDF_TRIPLE_H_
