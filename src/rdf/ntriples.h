#ifndef SWANDB_RDF_NTRIPLES_H_
#define SWANDB_RDF_NTRIPLES_H_

#include <istream>
#include <ostream>
#include <string_view>

#include "common/status.h"
#include "rdf/dataset.h"

namespace swan::rdf {

// Parser/writer for the N-Triples subset the Barton dump uses:
//
//   <subject-uri> <property-uri> <object-uri-or-literal> .
//
// Terms are stored in the dictionary verbatim, including the angle
// brackets / quotes, so encoding round-trips exactly. Supported object
// literals: "..." with \" and \\ escapes, optionally followed by a
// language tag or datatype suffix (kept verbatim). Lines starting with
// '#' and blank lines are skipped.

// Parses one N-Triples line into `dataset`. Returns OK and sets
// *added=false for skippable lines (comments/blank) without adding.
Status ParseNTriplesLine(std::string_view line, Dataset* dataset, bool* added);

// Parses a whole stream; stops at the first malformed line.
Status ParseNTriples(std::istream& in, Dataset* dataset,
                     uint64_t* triples_added);

// Writes the dataset in N-Triples form (one line per triple).
void WriteNTriples(const Dataset& dataset, std::ostream& out);

}  // namespace swan::rdf

#endif  // SWANDB_RDF_NTRIPLES_H_
