#include "rdf/pattern.h"

namespace swan::rdf {

int TriplePattern::PatternNumber() const {
  const bool s = subject.has_value();
  const bool p = property.has_value();
  const bool o = object.has_value();
  if (s && p && o) return 1;
  if (!s && p && o) return 2;
  if (s && !p && o) return 3;
  if (s && p && !o) return 4;
  if (!s && !p && o) return 5;
  if (s && !p && !o) return 6;
  if (!s && p && !o) return 7;
  return 8;
}

std::string TriplePattern::ToString() const {
  std::string out = "(";
  out += subject ? std::to_string(*subject) : "?s";
  out += ", ";
  out += property ? std::to_string(*property) : "?p";
  out += ", ";
  out += object ? std::to_string(*object) : "?o";
  out += ")";
  return out;
}

std::string ToString(JoinPattern pattern) {
  switch (pattern) {
    case JoinPattern::kA:
      return "A";
    case JoinPattern::kB:
      return "B";
    case JoinPattern::kC:
      return "C";
  }
  return "?";
}

std::optional<JoinPattern> Classify(const JoinCondition& condition) {
  using C = TripleComponent;
  if (condition.left == C::kProperty || condition.right == C::kProperty) {
    return std::nullopt;
  }
  if (condition.left == C::kSubject && condition.right == C::kSubject) {
    return JoinPattern::kA;
  }
  if (condition.left == C::kObject && condition.right == C::kObject) {
    return JoinPattern::kB;
  }
  return JoinPattern::kC;
}

}  // namespace swan::rdf
