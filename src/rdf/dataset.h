#ifndef SWANDB_RDF_DATASET_H_
#define SWANDB_RDF_DATASET_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dict/dictionary.h"
#include "rdf/triple.h"

namespace swan::rdf {

// A dictionary-encoded RDF graph: the input every storage backend is
// built from. Triples are kept deduplicated (set semantics).
class Dataset {
 public:
  Dataset() = default;

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  dict::Dictionary& dict() { return *dict_; }
  const dict::Dictionary& dict() const { return *dict_; }

  const std::vector<Triple>& triples() const { return triples_; }

  // Adds a triple if not already present; returns true if inserted.
  bool Add(const Triple& t);
  bool Add(std::string_view subject, std::string_view property,
           std::string_view object);

  uint64_t size() const { return static_cast<uint64_t>(triples_.size()); }

  // All distinct property ids, ascending.
  std::vector<uint64_t> DistinctProperties() const;

  // Per-property triple counts as (property id, count), descending count.
  std::vector<std::pair<uint64_t, uint64_t>> PropertyFrequencies() const;

  // Replaces the triple set (used by the property-splitting transform).
  // Deduplicates the input.
  void ReplaceTriples(std::vector<Triple> triples);

 private:
  // unique_ptr keeps Dataset movable: Dictionary itself is pinned because
  // its index holds string_views into its own storage.
  std::unique_ptr<dict::Dictionary> dict_ = std::make_unique<dict::Dictionary>();
  std::vector<Triple> triples_;
  std::unordered_set<Triple, TripleHash> present_;
};

}  // namespace swan::rdf

#endif  // SWANDB_RDF_DATASET_H_
