#include "rdf/ntriples.h"

#include <string>

namespace swan::rdf {

namespace {

void SkipSpace(std::string_view line, size_t* pos) {
  while (*pos < line.size() &&
         (line[*pos] == ' ' || line[*pos] == '\t' || line[*pos] == '\r')) {
    ++*pos;
  }
}

// Parses a URI (<...>) or literal ("..." plus optional suffix up to the
// next whitespace). Returns the term text including delimiters.
Status ParseTerm(std::string_view line, size_t* pos, std::string* term,
                 bool allow_literal) {
  SkipSpace(line, pos);
  if (*pos >= line.size()) {
    return Status::InvalidArgument("unexpected end of line");
  }
  const size_t start = *pos;
  if (line[*pos] == '<') {
    const size_t end = line.find('>', *pos);
    if (end == std::string_view::npos) {
      return Status::InvalidArgument("unterminated URI");
    }
    *pos = end + 1;
    *term = std::string(line.substr(start, *pos - start));
    return Status::OK();
  }
  if (line[*pos] == '"') {
    if (!allow_literal) {
      return Status::InvalidArgument("literal not allowed in this position");
    }
    ++*pos;
    while (*pos < line.size()) {
      if (line[*pos] == '\\') {
        *pos += 2;
        continue;
      }
      if (line[*pos] == '"') break;
      ++*pos;
    }
    if (*pos >= line.size()) {
      return Status::InvalidArgument("unterminated literal");
    }
    ++*pos;  // closing quote
    // Optional language tag (@en) or datatype (^^<...>), kept verbatim.
    while (*pos < line.size() && line[*pos] != ' ' && line[*pos] != '\t') {
      ++*pos;
    }
    *term = std::string(line.substr(start, *pos - start));
    return Status::OK();
  }
  return Status::InvalidArgument("expected '<' or '\"'");
}

}  // namespace

Status ParseNTriplesLine(std::string_view line, Dataset* dataset,
                         bool* added) {
  *added = false;
  size_t pos = 0;
  SkipSpace(line, &pos);
  if (pos >= line.size() || line[pos] == '#' || line[pos] == '\n') {
    return Status::OK();
  }

  std::string subject, property, object;
  SWAN_RETURN_NOT_OK(ParseTerm(line, &pos, &subject, /*allow_literal=*/false));
  SWAN_RETURN_NOT_OK(ParseTerm(line, &pos, &property, /*allow_literal=*/false));
  SWAN_RETURN_NOT_OK(ParseTerm(line, &pos, &object, /*allow_literal=*/true));
  SkipSpace(line, &pos);
  if (pos >= line.size() || line[pos] != '.') {
    return Status::InvalidArgument("missing terminating '.'");
  }
  *added = dataset->Add(subject, property, object);
  return Status::OK();
}

Status ParseNTriples(std::istream& in, Dataset* dataset,
                     uint64_t* triples_added) {
  uint64_t added_count = 0;
  std::string line;
  uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    bool added = false;
    Status st = ParseNTriplesLine(line, dataset, &added);
    if (!st.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     st.message());
    }
    if (added) ++added_count;
  }
  if (triples_added != nullptr) *triples_added = added_count;
  return Status::OK();
}

void WriteNTriples(const Dataset& dataset, std::ostream& out) {
  const auto& dict = dataset.dict();
  for (const Triple& t : dataset.triples()) {
    out << dict.Lookup(t.subject) << ' ' << dict.Lookup(t.property) << ' '
        << dict.Lookup(t.object) << " .\n";
  }
}

}  // namespace swan::rdf
