#ifndef SWANDB_RDF_PATTERN_H_
#define SWANDB_RDF_PATTERN_H_

#include <cstdint>
#include <optional>
#include <string>

#include "rdf/triple.h"

namespace swan::rdf {

// A simple triple query pattern (s, p, o) where each component is either a
// bound constant or a variable (nullopt). Covers all 8 combinations p1–p8
// of the paper's Figure 2.
struct TriplePattern {
  std::optional<uint64_t> subject;
  std::optional<uint64_t> property;
  std::optional<uint64_t> object;

  bool Matches(const Triple& t) const {
    return (!subject || *subject == t.subject) &&
           (!property || *property == t.property) &&
           (!object || *object == t.object);
  }

  // Number of bound components (0..3).
  int BoundCount() const {
    return (subject ? 1 : 0) + (property ? 1 : 0) + (object ? 1 : 0);
  }

  // The paper's pattern number 1..8 (Figure 2, left table):
  //   p1 (s,p,o)   p2 (?s,p,o)  p3 (s,?p,o)  p4 (s,p,?o)
  //   p5 (?s,?p,o) p6 (s,?p,?o) p7 (?s,p,?o) p8 (?s,?p,?o)
  int PatternNumber() const;

  // e.g. "(?s, p, o)".
  std::string ToString() const;
};

// The three join patterns of Figure 2 (right table): A joins the subjects
// of two triples, B joins their objects, C joins one triple's object to
// the other's subject.
enum class JoinPattern { kA, kB, kC };

std::string ToString(JoinPattern pattern);

// Which components of two patterns a join equality connects, generalizing
// A/B/C to all 3x3 possibilities (s=p' etc. appear in RDF/S reasoning,
// §2.2).
enum class TripleComponent { kSubject, kProperty, kObject };

struct JoinCondition {
  TripleComponent left;
  TripleComponent right;
};

// Classifies a join condition into the paper's A/B/C taxonomy when it
// falls inside it (S=S' -> A, O=O' -> B, O=S' or S=O' -> C); conditions
// touching a property slot return nullopt.
std::optional<JoinPattern> Classify(const JoinCondition& condition);

}  // namespace swan::rdf

#endif  // SWANDB_RDF_PATTERN_H_
