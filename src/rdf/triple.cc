#include "rdf/triple.h"

#include "common/macros.h"

namespace swan::rdf {

std::array<int, 3> ComponentsOf(TripleOrder order) {
  switch (order) {
    case TripleOrder::kSPO:
      return {0, 1, 2};
    case TripleOrder::kSOP:
      return {0, 2, 1};
    case TripleOrder::kPSO:
      return {1, 0, 2};
    case TripleOrder::kPOS:
      return {1, 2, 0};
    case TripleOrder::kOSP:
      return {2, 0, 1};
    case TripleOrder::kOPS:
      return {2, 1, 0};
  }
  SWAN_CHECK(false);
  return {0, 1, 2};
}

std::array<uint64_t, 3> KeyOf(const Triple& t, TripleOrder order) {
  const uint64_t spo[3] = {t.subject, t.property, t.object};
  const auto comp = ComponentsOf(order);
  return {spo[comp[0]], spo[comp[1]], spo[comp[2]]};
}

Triple TripleFromKey(const std::array<uint64_t, 3>& key, TripleOrder order) {
  const auto comp = ComponentsOf(order);
  uint64_t spo[3];
  for (int i = 0; i < 3; ++i) spo[comp[i]] = key[i];
  return Triple{spo[0], spo[1], spo[2]};
}

std::string ToString(TripleOrder order) {
  switch (order) {
    case TripleOrder::kSPO:
      return "SPO";
    case TripleOrder::kSOP:
      return "SOP";
    case TripleOrder::kPSO:
      return "PSO";
    case TripleOrder::kPOS:
      return "POS";
    case TripleOrder::kOSP:
      return "OSP";
    case TripleOrder::kOPS:
      return "OPS";
  }
  return "?";
}

}  // namespace swan::rdf
