#include "rdf/dataset.h"

#include <algorithm>
#include <unordered_map>

namespace swan::rdf {

bool Dataset::Add(const Triple& t) {
  if (!present_.insert(t).second) return false;
  triples_.push_back(t);
  return true;
}

bool Dataset::Add(std::string_view subject, std::string_view property,
                  std::string_view object) {
  return Add(Triple{dict_->Intern(subject), dict_->Intern(property),
                    dict_->Intern(object)});
}

std::vector<uint64_t> Dataset::DistinctProperties() const {
  std::unordered_set<uint64_t> seen;
  for (const Triple& t : triples_) seen.insert(t.property);
  std::vector<uint64_t> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> Dataset::PropertyFrequencies()
    const {
  std::unordered_map<uint64_t, uint64_t> counts;
  for (const Triple& t : triples_) ++counts[t.property];
  std::vector<std::pair<uint64_t, uint64_t>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

void Dataset::ReplaceTriples(std::vector<Triple> triples) {
  present_.clear();
  triples_.clear();
  for (const Triple& t : triples) {
    if (present_.insert(t).second) triples_.push_back(t);
  }
}

}  // namespace swan::rdf
