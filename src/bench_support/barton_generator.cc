#include "bench_support/barton_generator.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/macros.h"
#include "common/random.h"

namespace swan::bench_support {

namespace {

// Frequency ranks of the benchmark vocabulary properties. All are inside
// the top-28, as in Barton, where the queried properties belong to the
// "interesting" set.
constexpr uint32_t kTypeRank = 0;
constexpr uint32_t kRecordsRank = 2;
constexpr uint32_t kLanguageRank = 5;
constexpr uint32_t kOriginRank = 7;
constexpr uint32_t kEncodingRank = 10;
constexpr uint32_t kPointRank = 12;

std::string PropertyName(uint32_t rank) {
  switch (rank) {
    case kTypeRank:
      return "<type>";
    case kRecordsRank:
      return "<records>";
    case kLanguageRank:
      return "<language>";
    case kOriginRank:
      return "<origin>";
    case kEncodingRank:
      return "<Encoding>";
    case kPointRank:
      return "<Point>";
    default:
      return "<prop_" + std::to_string(rank) + ">";
  }
}

// The published property skew, reshaped to an arbitrary property count:
// <type> at 24.53 %, the rest of the top 28 covering ~73.5 %, ranks 28–55
// ~1.5 %, and a thin Zipfian tail (partitions with single-digit row counts
// at the default scale).
std::vector<double> PropertyWeights(uint32_t num_properties) {
  SWAN_CHECK(num_properties >= 29);
  std::vector<double> w(num_properties, 0.0);
  w[0] = 0.2453;

  auto fill_band = [&](uint32_t lo, uint32_t hi, double alpha, double mass) {
    double sum = 0.0;
    for (uint32_t r = lo; r < hi; ++r) {
      sum += std::pow(static_cast<double>(r - lo + 1), -alpha);
    }
    for (uint32_t r = lo; r < hi; ++r) {
      w[r] = mass * std::pow(static_cast<double>(r - lo + 1), -alpha) / sum;
    }
  };
  const uint32_t band2_end = std::min<uint32_t>(56, num_properties);
  fill_band(1, 28, 0.8, 0.735);
  if (band2_end > 28) fill_band(28, band2_end, 1.0, 0.015);
  if (num_properties > band2_end) {
    fill_band(band2_end, num_properties, 1.2, 0.0047);
  }
  return w;
}

std::string SubjectName(uint64_t i) {
  return "<subj_" + std::to_string(i) + ">";
}

// Object kinds per property, mirroring Barton's per-property domains.
enum class PropertyKind {
  kType,
  kRecords,
  kLanguage,
  kOrigin,
  kEncoding,
  kPoint,
  kGeneric,
};

PropertyKind KindOf(uint32_t rank) {
  switch (rank) {
    case kTypeRank:
      return PropertyKind::kType;
    case kRecordsRank:
      return PropertyKind::kRecords;
    case kLanguageRank:
      return PropertyKind::kLanguage;
    case kOriginRank:
      return PropertyKind::kOrigin;
    case kEncodingRank:
      return PropertyKind::kEncoding;
    case kPointRank:
      return PropertyKind::kPoint;
    default:
      return PropertyKind::kGeneric;
  }
}

}  // namespace

BartonDataset GenerateBarton(const BartonConfig& config) {
  SWAN_CHECK(config.num_properties >= 29);
  SWAN_CHECK(config.num_interesting >= 13 &&
             config.num_interesting <= config.num_properties);
  Rng rng(config.seed);
  BartonDataset out;
  rdf::Dataset& ds = out.dataset;

  // Properties are interned first, in frequency-rank order.
  std::vector<std::string> prop_names(config.num_properties);
  std::vector<uint64_t> prop_ids(config.num_properties);
  for (uint32_t r = 0; r < config.num_properties; ++r) {
    prop_names[r] = PropertyName(r);
    prop_ids[r] = ds.dict().Intern(prop_names[r]);
  }
  for (uint32_t r = 0; r < config.num_interesting; ++r) {
    out.interesting_properties.push_back(prop_ids[r]);
  }

  const DiscreteSampler prop_sampler(PropertyWeights(config.num_properties));

  // Type classes: <Date> ~32.7 % of type triples (≈ 8 % of all triples),
  // <Text> ~14.6 %, the rest Zipfian.
  std::vector<std::string> classes = {"<Date>", "<Text>"};
  std::vector<double> class_weights = {0.327, 0.146};
  {
    double sum = 0.0;
    for (int i = 2; i < 30; ++i) sum += std::pow(i - 1.0, -1.0);
    for (int i = 2; i < 30; ++i) {
      classes.push_back("<class_" + std::to_string(i) + ">");
      class_weights.push_back(0.527 * std::pow(i - 1.0, -1.0) / sum);
    }
  }
  const DiscreteSampler class_sampler(class_weights);

  std::vector<std::string> languages = {"<language/iso639-2b/fre>"};
  std::vector<double> language_weights = {0.30};
  for (int i = 1; i < 20; ++i) {
    languages.push_back("<language/iso639-2b/code_" + std::to_string(i) + ">");
    language_weights.push_back(0.70 / 19.0);
  }
  const DiscreteSampler language_sampler(language_weights);

  std::vector<std::string> origins = {"<info:marcorg/DLC>"};
  std::vector<double> origin_weights = {0.40};
  for (int i = 1; i < 10; ++i) {
    origins.push_back("<info:marcorg/org_" + std::to_string(i) + ">");
    origin_weights.push_back(0.60 / 9.0);
  }
  const DiscreteSampler origin_sampler(origin_weights);

  std::vector<std::string> encodings;
  for (int i = 0; i < 15; ++i) {
    encodings.push_back("<encoding_" + std::to_string(i) + ">");
  }

  const uint64_t num_subjects = std::max<uint64_t>(
      64, static_cast<uint64_t>(0.245 * static_cast<double>(
                                            config.target_triples)));
  const ZipfSampler subject_sampler(num_subjects, 0.2);

  // Shared-literal pool for generic properties: some object reuse (Barton's
  // object CDF), the rest unique literals.
  const uint64_t literal_pool =
      std::max<uint64_t>(32, config.target_triples / 5);
  const ZipfSampler literal_sampler(literal_pool, 0.6);
  uint64_t unique_counter = 0;

  // --- Curated block: a deterministic "library record" cluster that
  // guarantees non-empty results for q1–q8 at any scale. ---------------
  const std::string conferences = "<conferences>";
  {
    auto curated = [](int i) { return "<curated_" + std::to_string(i) + ">"; };
    for (int i = 0; i < 20; ++i) {
      const std::string subject = curated(i);
      ds.Add(subject, prop_names[kTypeRank],
             i % 3 == 0 ? "<Text>" : (i % 3 == 1 ? "<Date>" : "<class_2>"));
      ds.Add(subject, prop_names[kLanguageRank],
             i % 2 == 0 ? languages[0] : languages[1]);
      ds.Add(subject, prop_names[kOriginRank],
             i < 10 ? origins[0] : origins[1]);
      ds.Add(subject, prop_names[kPointRank], i < 10 ? "\"end\"" : "\"start\"");
      ds.Add(subject, prop_names[kEncodingRank], encodings[i % 3]);
      ds.Add(subject, prop_names[kRecordsRank], curated((i + 1) % 20));
    }
    // The q8 hub: "conferences" shares literal objects with a handful of
    // curated subjects across several property tables.
    for (int j = 0; j < 12; ++j) {
      const std::string shared = "\"conf_topic_" + std::to_string(j) + "\"";
      ds.Add(conferences, prop_names[13 + (j % 6)], shared);
      ds.Add(curated(j % 20), prop_names[13 + ((j + 3) % 6)], shared);
    }
  }

  // --- Bulk statistical generation. ------------------------------------
  uint64_t attempts = 0;
  const uint64_t max_attempts = 4 * config.target_triples + 1000;
  while (ds.size() < config.target_triples && attempts < max_attempts) {
    ++attempts;
    const uint32_t rank = static_cast<uint32_t>(prop_sampler.Sample(&rng));
    const std::string subject = SubjectName(subject_sampler.Sample(&rng));
    std::string object;
    switch (KindOf(rank)) {
      case PropertyKind::kType:
        object = classes[class_sampler.Sample(&rng)];
        break;
      case PropertyKind::kRecords:
        object = SubjectName(rng.Uniform(num_subjects));
        break;
      case PropertyKind::kLanguage:
        object = languages[language_sampler.Sample(&rng)];
        break;
      case PropertyKind::kOrigin:
        object = origins[origin_sampler.Sample(&rng)];
        break;
      case PropertyKind::kEncoding:
        object = encodings[rng.Uniform(encodings.size())];
        break;
      case PropertyKind::kPoint:
        object = rng.Chance(0.5) ? "\"end\"" : "\"start\"";
        break;
      case PropertyKind::kGeneric: {
        const double roll = rng.NextDouble();
        if (roll < 0.12) {
          // Subject-object overlap beyond <records>.
          object = SubjectName(rng.Uniform(num_subjects));
        } else if (roll < 0.60) {
          object = "\"lit_" + std::to_string(literal_sampler.Sample(&rng)) +
                   "\"";
        } else {
          object = "\"uniq_" + std::to_string(unique_counter++) + "\"";
        }
        break;
      }
    }
    ds.Add(subject, prop_names[rank], object);
  }
  return out;
}

core::QueryContext MakeBartonContext(const rdf::Dataset& dataset, size_t k) {
  auto vocab_result = core::Vocabulary::Resolve(dataset);
  SWAN_CHECK_MSG(vocab_result.ok(),
                 "dataset does not carry the benchmark vocabulary");
  const core::Vocabulary vocab = vocab_result.value();

  // Top-k properties by frequency, with the queried properties always
  // included (they are top-ranked in Barton; forcing them keeps tiny test
  // datasets valid too).
  const auto freqs = dataset.PropertyFrequencies();
  std::vector<uint64_t> interesting = {vocab.type,   vocab.records,
                                       vocab.language, vocab.origin,
                                       vocab.encoding, vocab.point};
  for (const auto& [prop, count] : freqs) {
    if (interesting.size() >= k) break;
    if (std::find(interesting.begin(), interesting.end(), prop) ==
        interesting.end()) {
      interesting.push_back(prop);
    }
  }
  return core::QueryContext(vocab, std::move(interesting),
                            dataset.dict().size(),
                            dataset.DistinctProperties().size());
}

}  // namespace swan::bench_support
