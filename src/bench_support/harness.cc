#include "bench_support/harness.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/macros.h"
#include "common/timer.h"
#include "core/profiling.h"
#include "exec/thread_pool.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace swan::bench_support {

namespace {

// Times one execution of `body` (which returns the row count) against
// the backend's aggregate cost model and returns the (real, user, bytes,
// rows) observation. The aggregate virtuals make this topology-agnostic:
// a single-node backend reports its one disk, a sharded backend reports
// max-over-nodes virtual time plus modeled network time.
template <typename Body>
Measurement TimeOnce(core::Backend* backend, const Body& body) {
  const double io_before = backend->VirtualSeconds();
  const uint64_t bytes_before = backend->TotalBytesRead();
  const uint64_t seeks_before = backend->TotalSeeks();
  const uint64_t net_bytes_before = backend->TotalNetBytes();
  const uint64_t net_messages_before = backend->TotalNetMessages();
  const double net_seconds_before = backend->NetSeconds();
  const std::vector<double> lanes_before = exec::LaneCpuSnapshot();
  WallTimer wall;
  CpuTimer timer;
  const uint64_t rows = body();
  Measurement m;
  m.user_seconds = timer.ElapsedSeconds();
  m.wall_seconds = wall.ElapsedSeconds();

  // Modeled parallel CPU: the portion of the process CPU charged to
  // ParallelFor lanes progresses as its slowest lane; the serial rest
  // runs start to finish. With no parallel work both terms are zero.
  m.cpu_seconds = exec::ModeledCpuSeconds(
      lanes_before, exec::LaneCpuSnapshot(), m.user_seconds);

  m.real_seconds = m.cpu_seconds + (backend->VirtualSeconds() - io_before);
  m.bytes_read = backend->TotalBytesRead() - bytes_before;
  m.seeks = backend->TotalSeeks() - seeks_before;
  m.net_bytes = backend->TotalNetBytes() - net_bytes_before;
  m.net_messages = backend->TotalNetMessages() - net_messages_before;
  m.net_seconds = backend->NetSeconds() - net_seconds_before;
  m.rows_returned = rows;
  return m;
}

// Executes one benchmark query under `ectx`, crediting the run's disk
// traffic to the context's operator counters so benches can print the
// full counter row per configuration.
Measurement RunOnce(core::Backend* backend, core::QueryId id,
                    const core::QueryContext& ctx,
                    const exec::ExecContext& ectx) {
  Measurement m = TimeOnce(backend, [&] {
    return backend->Run(id, ctx, ectx).row_count();
  });
  ectx.counters().bytes_read.fetch_add(m.bytes_read,
                                       std::memory_order_relaxed);
  ectx.counters().seeks.fetch_add(m.seeks, std::memory_order_relaxed);
  return m;
}

Measurement Average(const std::vector<Measurement>& runs) {
  Measurement avg;
  if (runs.empty()) return avg;
  for (const Measurement& m : runs) {
    avg.real_seconds += m.real_seconds;
    avg.cpu_seconds += m.cpu_seconds;
    avg.user_seconds += m.user_seconds;
    avg.wall_seconds += m.wall_seconds;
    avg.bytes_read += m.bytes_read;
    avg.seeks += m.seeks;
    avg.net_bytes += m.net_bytes;
    avg.net_messages += m.net_messages;
    avg.net_seconds += m.net_seconds;
    avg.rows_returned = m.rows_returned;
    if (m.profile != nullptr) avg.profile = m.profile;
  }
  avg.real_seconds /= static_cast<double>(runs.size());
  avg.cpu_seconds /= static_cast<double>(runs.size());
  avg.user_seconds /= static_cast<double>(runs.size());
  avg.wall_seconds /= static_cast<double>(runs.size());
  avg.net_seconds /= static_cast<double>(runs.size());
  avg.bytes_read /= runs.size();
  avg.seeks /= runs.size();
  avg.net_bytes /= runs.size();
  avg.net_messages /= runs.size();
  double variance = 0.0;
  for (const Measurement& m : runs) {
    const double d = m.real_seconds - avg.real_seconds;
    variance += d * d;
  }
  avg.real_stddev = std::sqrt(variance / static_cast<double>(runs.size()));
  return avg;
}

}  // namespace

Measurement MeasureCold(core::Backend* backend, core::QueryId id,
                        const core::QueryContext& ctx, int repetitions) {
  return MeasureCold(backend, id, ctx, exec::ExecContext(), repetitions);
}

Measurement MeasureHot(core::Backend* backend, core::QueryId id,
                       const core::QueryContext& ctx, int repetitions) {
  return MeasureHot(backend, id, ctx, exec::ExecContext(), repetitions);
}

Measurement MeasureCold(core::Backend* backend, core::QueryId id,
                        const core::QueryContext& ctx,
                        const exec::ExecContext& ectx, int repetitions) {
  std::vector<Measurement> runs;
  for (int i = 0; i < repetitions; ++i) {
    backend->DropCaches();  // "zapping the memory completely"
    runs.push_back(RunOnce(backend, id, ctx, ectx));
  }
  return Average(runs);
}

Measurement MeasureHot(core::Backend* backend, core::QueryId id,
                       const core::QueryContext& ctx,
                       const exec::ExecContext& ectx, int repetitions) {
  RunOnce(backend, id, ctx, ectx);  // warm-up, ignored
  std::vector<Measurement> runs;
  for (int i = 0; i < repetitions; ++i) {
    runs.push_back(RunOnce(backend, id, ctx, ectx));
  }
  return Average(runs);
}

namespace {

// As RunOnce, but with a trace session attached for the duration of the
// execution. The session starts on the disk's virtual clock *before*
// TimeOnce reads it (the clock only advances on reads, so both see the
// same instant) and finishes with the measurement's own modeled CPU, so
// profile->RootRealSeconds() equals Measurement::real_seconds exactly.
Measurement RunOnceProfiled(core::Backend* backend, core::QueryId id,
                            const core::QueryContext& ctx,
                            const exec::ExecContext& ectx) {
  core::ScopedProfile scoped(core::ToString(id), *backend, ectx);
  Measurement m = RunOnce(backend, id, ctx, ectx);
  m.profile = scoped.FinishWithCpu(m.cpu_seconds);
  return m;
}

}  // namespace

Measurement MeasureColdProfiled(core::Backend* backend, core::QueryId id,
                                const core::QueryContext& ctx,
                                const exec::ExecContext& ectx,
                                int repetitions) {
  std::vector<Measurement> runs;
  for (int i = 0; i < repetitions; ++i) {
    backend->DropCaches();
    runs.push_back(RunOnceProfiled(backend, id, ctx, ectx));
  }
  return Average(runs);
}

Measurement MeasureHotProfiled(core::Backend* backend, core::QueryId id,
                               const core::QueryContext& ctx,
                               const exec::ExecContext& ectx,
                               int repetitions) {
  RunOnce(backend, id, ctx, ectx);  // warm-up, unprofiled and ignored
  std::vector<Measurement> runs;
  for (int i = 0; i < repetitions; ++i) {
    runs.push_back(RunOnceProfiled(backend, id, ctx, ectx));
  }
  return Average(runs);
}

Measurement MeasureBgpHot(core::Backend* backend,
                          const std::vector<core::BgpPattern>& patterns,
                          const exec::ExecContext& ectx, int repetitions) {
  return MeasureBgpHot(backend, patterns, ectx, plan::PlannerOptions{},
                       repetitions);
}

Measurement MeasureBgpHot(core::Backend* backend,
                          const std::vector<core::BgpPattern>& patterns,
                          const exec::ExecContext& ectx,
                          const plan::PlannerOptions& options,
                          int repetitions) {
  auto run = [&] {
    const Result<core::BgpResult> result =
        core::ExecuteBgp(*backend, patterns, ectx, options);
    SWAN_CHECK_MSG(result.ok(), "BGP evaluation failed during measurement");
    return static_cast<uint64_t>(result.value().rows.size());
  };
  run();  // warm-up, ignored
  std::vector<Measurement> runs;
  for (int i = 0; i < repetitions; ++i) {
    Measurement m = TimeOnce(backend, run);
    ectx.counters().bytes_read.fetch_add(m.bytes_read,
                                         std::memory_order_relaxed);
    ectx.counters().seeks.fetch_add(m.seeks, std::memory_order_relaxed);
    runs.push_back(m);
  }
  return Average(runs);
}

std::vector<uint64_t> VerifyBackendsAgree(
    const std::vector<core::Backend*>& backends,
    const std::vector<core::QueryId>& queries, const core::QueryContext& ctx) {
  std::vector<uint64_t> row_counts;
  for (core::QueryId id : queries) {
    core::Backend* reference = nullptr;
    core::QueryResult expected;
    for (core::Backend* backend : backends) {
      if (!backend->Supports(id)) continue;
      core::QueryResult got = backend->Run(id, ctx);
      if (reference == nullptr) {
        reference = backend;
        expected = std::move(got);
        continue;
      }
      if (!expected.SameRows(got)) {
        std::fprintf(stderr,
                     "result divergence on %s: %s returned %llu rows, "
                     "%s returned %llu rows\n",
                     core::ToString(id).c_str(), reference->name().c_str(),
                     static_cast<unsigned long long>(expected.row_count()),
                     backend->name().c_str(),
                     static_cast<unsigned long long>(got.row_count()));
        SWAN_CHECK_MSG(false, "backends disagree; benchmark aborted");
      }
    }
    row_counts.push_back(reference != nullptr ? expected.row_count() : 0);
  }
  return row_counts;
}

void RecordMeasurement(obs::Telemetry* telemetry, const std::string& workload,
                       const std::string& backend, const Measurement& m) {
  SWAN_CHECK(telemetry != nullptr);
  obs::QueryLogRecord record;
  record.seq = telemetry->records();
  record.session = "bench";
  record.kind = "bench";
  record.text = workload;
  record.text_hash = obs::Fnv1a64(workload);
  record.backend = backend;
  record.rows = m.rows_returned;
  record.bytes_read = m.bytes_read;
  record.seeks = m.seeks;
  record.io_seconds = m.real_seconds - m.cpu_seconds;
  // Standalone benches have no serve epoch; the modeled real cost is both
  // the record's latency and its position on the window axis.
  record.latency_seconds = m.real_seconds;
  record.vt_finish = m.real_seconds;
  record.cpu_seconds = m.cpu_seconds;
  record.service_seconds = m.real_seconds;
  if (m.profile != nullptr && m.profile->finished()) {
    record.ops = obs::CollectEstimatedOps(m.profile->root());
  }
  telemetry->Record(std::move(record), m.profile.get());
}

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<uint64_t>(parsed);
}

}  // namespace swan::bench_support
