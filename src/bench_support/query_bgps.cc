#include "bench_support/query_bgps.h"

namespace swan::bench_support {

std::vector<NamedBgp> BenchmarkBgps(const core::Vocabulary& vocab) {
  using core::Term;
  const auto v = [](const char* name) { return Term::Var(name); };
  const auto c = [](uint64_t id) { return Term::Const(id); };

  std::vector<NamedBgp> out;
  out.push_back({"q1", {{v("s"), c(vocab.type), v("t")}}});
  out.push_back({"q2",
                 {{v("s"), v("p"), v("o")},
                  {v("s"), c(vocab.type), c(vocab.text)}}});
  out.push_back({"q3",
                 {{v("s"), v("p"), v("o")},
                  {v("s"), c(vocab.type), c(vocab.text)}}});
  out.push_back({"q4",
                 {{v("s"), v("p"), v("o")},
                  {v("s"), c(vocab.type), c(vocab.text)},
                  {v("s"), c(vocab.language), c(vocab.french)}}});
  out.push_back({"q5",
                 {{v("s"), c(vocab.origin), c(vocab.dlc)},
                  {v("s"), c(vocab.records), v("o2")},
                  {v("o2"), c(vocab.type), v("t")}}});
  out.push_back({"q6",
                 {{v("s"), c(vocab.records), v("o2")},
                  {v("o2"), c(vocab.type), c(vocab.text)},
                  {v("s"), v("p"), v("o")}}});
  out.push_back({"q7",
                 {{v("s"), c(vocab.point), c(vocab.end)},
                  {v("s"), c(vocab.encoding), v("e")},
                  {v("s"), c(vocab.type), v("t")}}});
  out.push_back({"q8",
                 {{c(vocab.conferences), v("p1"), v("o")},
                  {v("s2"), v("p2"), v("o")}}});
  return out;
}

}  // namespace swan::bench_support
