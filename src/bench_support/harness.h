#ifndef SWANDB_BENCH_SUPPORT_HARNESS_H_
#define SWANDB_BENCH_SUPPORT_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/bgp.h"
#include "core/query.h"
#include "exec/exec_context.h"

namespace swan::obs {
class Telemetry;
class TraceSession;
}  // namespace swan::obs

namespace swan::bench_support {

// One measured query execution, averaged over repetitions.
//
// With exec::SetThreads(n > 1), real_seconds stays a *modeled* wall
// cost that is deterministic on any host: CPU spent inside ParallelFor
// chunks progresses as its slowest lane (max over the per-lane CPU
// deltas) while serial CPU runs start to finish, and the simulated disk
// likewise advances its clock by serial I/O plus the slowest I/O lane.
// At one thread no lanes exist and the numbers reduce exactly to the
// pre-parallel model (CPU time + virtual disk time).
struct Measurement {
  double real_seconds = 0.0;  // modeled critical-path CPU + virtual disk time
  double cpu_seconds = 0.0;   // modeled critical-path CPU alone
  double user_seconds = 0.0;  // CPU time summed over all threads
  double wall_seconds = 0.0;  // host wall clock (diagnostic; host-dependent)
  // Standard deviation of real_seconds across the repetitions — the
  // paper's §3 remark ("we do not report the standard deviation ... the
  // differences were less than 30 milliseconds"), checkable here.
  double real_stddev = 0.0;
  uint64_t bytes_read = 0;    // data pulled from the simulated disk(s)
  uint64_t seeks = 0;         // random repositionings charged by the disk(s)
  uint64_t rows_returned = 0;
  // Modeled inter-node traffic (scale-out backends only; zero on one
  // node). net_seconds is already folded into real_seconds — the sharded
  // backend's virtual clock is max(node disks) + network.
  uint64_t net_bytes = 0;
  uint64_t net_messages = 0;
  double net_seconds = 0.0;
  // Set by the *Profiled variants: the finished trace session of the last
  // repetition. RootRealSeconds() matches real_seconds of that repetition
  // exactly, giving the profile's disk-vs-CPU decomposition of the
  // measured cost.
  std::shared_ptr<obs::TraceSession> profile;
};

// The paper's §2.3 protocol. A *cold* run drops every cache first, so the
// query pays full I/O; repetitions each start cold. A *hot* run performs
// one unmeasured warm-up execution, then averages the measured runs
// without touching the caches.
Measurement MeasureCold(core::Backend* backend, core::QueryId id,
                        const core::QueryContext& ctx, int repetitions = 3);
Measurement MeasureHot(core::Backend* backend, core::QueryId id,
                       const core::QueryContext& ctx, int repetitions = 3);

// As above, under an explicit execution context instead of the global
// thread width — the benches sweep widths by constructing one context per
// point rather than mutating global state between runs.
Measurement MeasureCold(core::Backend* backend, core::QueryId id,
                        const core::QueryContext& ctx,
                        const exec::ExecContext& ectx, int repetitions = 3);
Measurement MeasureHot(core::Backend* backend, core::QueryId id,
                       const core::QueryContext& ctx,
                       const exec::ExecContext& ectx, int repetitions = 3);

// Profiled variants of the cold/hot protocol: each measured repetition
// runs under an attached obs::TraceSession, and the last repetition's
// finished session is returned in Measurement::profile. Repetitions
// default to 1 because a profile describes one execution; averaging
// virtual times across reps would break the exact root-span equality.
Measurement MeasureColdProfiled(core::Backend* backend, core::QueryId id,
                                const core::QueryContext& ctx,
                                const exec::ExecContext& ectx,
                                int repetitions = 1);
Measurement MeasureHotProfiled(core::Backend* backend, core::QueryId id,
                               const core::QueryContext& ctx,
                               const exec::ExecContext& ectx,
                               int repetitions = 1);

// Hot-protocol measurement of a BGP evaluation under an explicit context
// (one unmeasured warm-up, then averaged measured runs). rows_returned is
// the binding-table row count. The three-argument form plans with the
// statistics-free heuristic; pass PlannerOptions to measure a specific
// planning mode (cost-based, heuristic, worst-order — the planner
// ablation compares exactly these).
Measurement MeasureBgpHot(core::Backend* backend,
                          const std::vector<core::BgpPattern>& patterns,
                          const exec::ExecContext& ectx, int repetitions = 3);
Measurement MeasureBgpHot(core::Backend* backend,
                          const std::vector<core::BgpPattern>& patterns,
                          const exec::ExecContext& ectx,
                          const plan::PlannerOptions& options,
                          int repetitions = 3);

// Folds one measurement into a fleet-telemetry bundle as a query-log
// record: session "bench", kind "bench", text/hash = the workload name,
// latency = the modeled real cost, plus byte/seek counters — and, when
// the measurement came from a *Profiled variant, its span tree into the
// bundle's cross-query aggregator. Lets standalone benches reuse the
// serve tier's windowed percentiles and top-operators machinery.
void RecordMeasurement(obs::Telemetry* telemetry, const std::string& workload,
                       const std::string& backend, const Measurement& m);

// Correctness gate run before timing: executes every supported query on
// every backend and verifies that all backends produce identical rows.
// Aborts with a diagnostic on divergence. Returns per-query row counts.
std::vector<uint64_t> VerifyBackendsAgree(
    const std::vector<core::Backend*>& backends,
    const std::vector<core::QueryId>& queries, const core::QueryContext& ctx);

// Reads an unsigned environment override, e.g. SWAN_TRIPLES for the
// benchmark scale; returns `fallback` if unset or unparsable.
uint64_t EnvU64(const char* name, uint64_t fallback);

}  // namespace swan::bench_support

#endif  // SWANDB_BENCH_SUPPORT_HARNESS_H_
