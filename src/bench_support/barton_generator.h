#ifndef SWANDB_BENCH_SUPPORT_BARTON_GENERATOR_H_
#define SWANDB_BENCH_SUPPORT_BARTON_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "core/query.h"
#include "rdf/dataset.h"

namespace swan::bench_support {

// Synthetic stand-in for the Barton Libraries catalog dump (the paper's
// data set, Table 1 / Figure 1). The generator reproduces the published
// *distributional* facts that drive every experiment:
//
//   * 222 properties with a highly Zipfian skew: <type> holds ~24.5 % of
//     all triples, the top ~13 % of properties cover ~98–99 %, and the
//     long tail consists of partitions with only a handful of rows;
//   * near-uniform subjects (max subject degree ≪ 0.1 %);
//   * <Date> as the most frequent object (~8 % of triples, all under
//     <type>), <Text> as a large type class;
//   * sizeable subject∩object overlap, driven by <records> edges whose
//     objects are themselves subjects;
//   * the inter-property structure queries q1–q8 rely on: <language>/fre,
//     <origin>/DLC, <Point>/"end", <Encoding>, and a "conferences" hub
//     subject sharing objects with other subjects.
//
// A small deterministic "curated block" guarantees that all benchmark
// queries return non-empty results even at tiny scales (unit tests).
//
// Default scale is ~1/100 of Barton. Generation is fully deterministic in
// `seed`.
struct BartonConfig {
  uint64_t target_triples = 500'000;
  uint32_t num_properties = 222;
  uint32_t num_interesting = 28;
  uint64_t seed = 42;
};

struct BartonDataset {
  rdf::Dataset dataset;
  // The generator's frequency-rank top `num_interesting` property ids (the
  // "28 interesting properties the Longwell administrator selected"); all
  // benchmark vocabulary properties are in here by construction.
  std::vector<uint64_t> interesting_properties;
};

BartonDataset GenerateBarton(const BartonConfig& config = {});

// QueryContext for a generated dataset, restricted to the top-`k` most
// frequent properties (k = 28 reproduces the paper's default; Figure 6
// sweeps k). Requires the benchmark vocabulary to resolve.
core::QueryContext MakeBartonContext(const rdf::Dataset& dataset, size_t k);

}  // namespace swan::bench_support

#endif  // SWANDB_BENCH_SUPPORT_BARTON_GENERATOR_H_
