#ifndef SWANDB_BENCH_SUPPORT_PROPERTY_SPLIT_H_
#define SWANDB_BENCH_SUPPORT_PROPERTY_SPLIT_H_

#include <cstdint>
#include <vector>

#include "rdf/dataset.h"

namespace swan::bench_support {

// The paper's §4.4 scalability transform: keep the same triples but
// increase the number of distinct properties by splitting properties into
// n sub-properties and redistributing each split property's triples
// uniformly over its fragments.
//
// `protected_properties` (the benchmark vocabulary) are never split, so
// query semantics are preserved. The result is a new Dataset with its own
// dictionary; fragment j of property <p> is named <p`#j`> and fragment 0
// keeps the original name.
//
// The returned dataset has exactly min(target_properties, achievable)
// distinct properties; splitting is deterministic in `seed`.
rdf::Dataset SplitProperties(const rdf::Dataset& input,
                             uint64_t target_properties, uint64_t seed,
                             const std::vector<uint64_t>& protected_properties);

}  // namespace swan::bench_support

#endif  // SWANDB_BENCH_SUPPORT_PROPERTY_SPLIT_H_
