#include "bench_support/property_split.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"
#include "common/random.h"

namespace swan::bench_support {

rdf::Dataset SplitProperties(
    const rdf::Dataset& input, uint64_t target_properties, uint64_t seed,
    const std::vector<uint64_t>& protected_properties) {
  Rng rng(seed);
  const std::unordered_set<uint64_t> protected_set(
      protected_properties.begin(), protected_properties.end());

  // Per-property triple counts bound the number of useful fragments.
  std::unordered_map<uint64_t, uint64_t> counts;
  for (const rdf::Triple& t : input.triples()) ++counts[t.property];

  // fragments[p] = how many sub-properties p is split into (1 = unsplit).
  std::unordered_map<uint64_t, uint64_t> fragments;
  uint64_t current = counts.size();

  std::vector<uint64_t> splittable;
  for (const auto& [p, c] : counts) {
    fragments[p] = 1;
    if (protected_set.count(p) == 0 && c >= 2) splittable.push_back(p);
  }
  std::sort(splittable.begin(), splittable.end());

  uint64_t stuck_rounds = 0;
  while (current < target_properties && !splittable.empty() &&
         stuck_rounds < 10000) {
    const uint64_t p = splittable[rng.Uniform(splittable.size())];
    const uint64_t max_fragments = counts[p];
    if (fragments[p] >= max_fragments) {
      ++stuck_rounds;
      continue;
    }
    // Split into up to n = 1..9 additional sub-properties (§4.4).
    const uint64_t extra = std::min<uint64_t>(
        {1 + rng.Uniform(9), max_fragments - fragments[p],
         target_properties - current});
    fragments[p] += extra;
    current += extra;
    stuck_rounds = 0;
  }

  // Materialize: assign each triple of a split property round-robin over
  // its fragments (uniform, and no fragment is left empty).
  rdf::Dataset out;
  const auto& dict = input.dict();
  std::unordered_map<uint64_t, uint64_t> round_robin;
  for (const rdf::Triple& t : input.triples()) {
    const uint64_t f = fragments[t.property];
    std::string property(dict.Lookup(t.property));
    if (f > 1) {
      const uint64_t j = round_robin[t.property]++ % f;
      if (j > 0) {
        // "<p>" -> "<p#j>"; non-bracketed names just get a suffix.
        if (!property.empty() && property.back() == '>') {
          property.insert(property.size() - 1, "#" + std::to_string(j));
        } else {
          property += "#" + std::to_string(j);
        }
      }
    }
    out.Add(dict.Lookup(t.subject), property, dict.Lookup(t.object));
  }
  return out;
}

}  // namespace swan::bench_support
