#include "bench_support/dataset_stats.h"

#include <unordered_map>
#include <unordered_set>

namespace swan::bench_support {

Table1Stats ComputeTable1Stats(const rdf::Dataset& dataset) {
  Table1Stats stats;
  stats.total_triples = dataset.size();
  stats.strings_in_dictionary = dataset.dict().size();

  std::unordered_set<uint64_t> subjects;
  std::unordered_set<uint64_t> properties;
  std::unordered_set<uint64_t> objects;
  uint64_t term_bytes = 0;
  const auto& dict = dataset.dict();
  for (const rdf::Triple& t : dataset.triples()) {
    subjects.insert(t.subject);
    properties.insert(t.property);
    objects.insert(t.object);
    term_bytes += dict.Lookup(t.subject).size() +
                  dict.Lookup(t.property).size() +
                  dict.Lookup(t.object).size() + 5;  // " " x3 + ". \n"
  }
  stats.distinct_subjects = subjects.size();
  stats.distinct_properties = properties.size();
  stats.distinct_objects = objects.size();
  stats.dataset_bytes = term_bytes;

  uint64_t both = 0;
  for (uint64_t s : subjects) {
    if (objects.count(s) != 0) ++both;
  }
  stats.subjects_also_objects = both;
  return stats;
}

Figure1Curves ComputeFigure1Curves(const rdf::Dataset& dataset, int points) {
  std::unordered_map<uint64_t, uint64_t> subj, prop, obj;
  for (const rdf::Triple& t : dataset.triples()) {
    ++subj[t.subject];
    ++prop[t.property];
    ++obj[t.object];
  }
  auto counts_of = [](const std::unordered_map<uint64_t, uint64_t>& map) {
    std::vector<uint64_t> out;
    out.reserve(map.size());
    for (const auto& [k, c] : map) out.push_back(c);
    return out;
  };
  Figure1Curves curves;
  curves.properties = CumulativeFrequency(counts_of(prop), points);
  curves.subjects = CumulativeFrequency(counts_of(subj), points);
  curves.objects = CumulativeFrequency(counts_of(obj), points);
  return curves;
}

}  // namespace swan::bench_support
