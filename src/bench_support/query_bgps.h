#ifndef SWANDB_BENCH_SUPPORT_QUERY_BGPS_H_
#define SWANDB_BENCH_SUPPORT_QUERY_BGPS_H_

#include <string>
#include <vector>

#include "core/bgp.h"
#include "core/query.h"

namespace swan::bench_support {

// A benchmark query expressed as a basic graph pattern in *textual* order
// (the order a user would write it) — deliberately not the best join
// order, so planner comparisons have something to improve on.
struct NamedBgp {
  std::string name;            // "q1" ... "q8"
  std::vector<core::BgpPattern> patterns;
};

// BGP renderings of the paper's benchmark queries q1–q8 over the Barton
// vocabulary, shared by the optimizer conformance test and the planner
// ablation. These are the *pattern* structure of each query (the joins
// §2.2 classifies as A/B/C), not the aggregation wrapped around them:
//
//   q1  (?s type ?t)                       property scan
//   q2  (?s ?p ?o) (?s type Text)          A-join, unbound property
//   q3  (?s ?p ?o) (?s type Text)          same shape as q2 (q3 differs
//                                          only in its aggregate)
//   q4  (?s ?p ?o) (?s type Text)
//       (?s language french)               two selective A-join arms
//   q5  (?s origin dlc) (?s records ?o2)
//       (?o2 type ?t)                      A-join then B-join chain
//   q6  (?s records ?o2) (?o2 type Text)
//       (?s ?p ?o)                         chain plus unbound property
//   q7  (?s point "end") (?s encoding ?e)
//       (?s type ?t)                       same-subject star (gatherable)
//   q8  (conferences ?p1 ?o) (?s2 ?p2 ?o)  C-join (object-object)
std::vector<NamedBgp> BenchmarkBgps(const core::Vocabulary& vocab);

}  // namespace swan::bench_support

#endif  // SWANDB_BENCH_SUPPORT_QUERY_BGPS_H_
