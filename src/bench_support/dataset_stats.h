#ifndef SWANDB_BENCH_SUPPORT_DATASET_STATS_H_
#define SWANDB_BENCH_SUPPORT_DATASET_STATS_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "rdf/dataset.h"

namespace swan::bench_support {

// The counts behind the paper's Table 1 ("Data set details").
struct Table1Stats {
  uint64_t total_triples = 0;
  uint64_t distinct_properties = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
  uint64_t subjects_also_objects = 0;
  uint64_t strings_in_dictionary = 0;
  // Raw N-Triples-equivalent size: total term bytes over all triples plus
  // separators (the paper reports the textual dump size, 1253 MB).
  uint64_t dataset_bytes = 0;
};

Table1Stats ComputeTable1Stats(const rdf::Dataset& dataset);

// The three cumulative frequency distributions of Figure 1.
struct Figure1Curves {
  std::vector<CdfPoint> properties;
  std::vector<CdfPoint> subjects;
  std::vector<CdfPoint> objects;
};

Figure1Curves ComputeFigure1Curves(const rdf::Dataset& dataset, int points);

}  // namespace swan::bench_support

#endif  // SWANDB_BENCH_SUPPORT_DATASET_STATS_H_
