#ifndef SWANDB_COMMON_THREAD_ANNOTATIONS_H_
#define SWANDB_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis shim. Under clang these macros expand to
// the -Wthread-safety attributes, turning the locking protocol into a
// compile-time contract: a guarded field read without its mutex, a method
// called without its REQUIRES lock, or a lock leaked out of a scope is a
// build error in the thread-safety CI leg (tools/check.sh --tsafety-only).
// Under gcc (the container default) every macro expands to nothing, so
// annotated code stays portable.
//
// Naming follows the clang capability vocabulary:
//   SWAN_CAPABILITY        - class is a lockable capability (swan::Mutex)
//   SWAN_SCOPED_CAPABILITY - RAII object acquiring/releasing one
//   SWAN_GUARDED_BY(mu)    - field may only be touched with mu held
//   SWAN_PT_GUARDED_BY(mu) - pointee guarded, pointer itself not
//   SWAN_REQUIRES(mu)      - caller must already hold mu
//   SWAN_EXCLUDES(mu)      - caller must NOT hold mu (non-reentrancy)
//   SWAN_ACQUIRE/RELEASE   - function acquires / releases mu
//   SWAN_ACQUIRED_BEFORE/AFTER - declared lock ordering (see LockRank)
//   SWAN_NO_THREAD_SAFETY_ANALYSIS - escape hatch (document why!)

#if defined(__clang__) && defined(__has_attribute)
#define SWAN_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SWAN_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SWAN_CAPABILITY(x) SWAN_THREAD_ANNOTATION(capability(x))

#define SWAN_SCOPED_CAPABILITY SWAN_THREAD_ANNOTATION(scoped_lockable)

#define SWAN_GUARDED_BY(x) SWAN_THREAD_ANNOTATION(guarded_by(x))

#define SWAN_PT_GUARDED_BY(x) SWAN_THREAD_ANNOTATION(pt_guarded_by(x))

#define SWAN_ACQUIRED_BEFORE(...) \
  SWAN_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define SWAN_ACQUIRED_AFTER(...) \
  SWAN_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define SWAN_REQUIRES(...) \
  SWAN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define SWAN_REQUIRES_SHARED(...) \
  SWAN_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define SWAN_ACQUIRE(...) \
  SWAN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define SWAN_ACQUIRE_SHARED(...) \
  SWAN_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define SWAN_RELEASE(...) \
  SWAN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define SWAN_RELEASE_SHARED(...) \
  SWAN_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define SWAN_TRY_ACQUIRE(...) \
  SWAN_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define SWAN_EXCLUDES(...) SWAN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define SWAN_ASSERT_CAPABILITY(x) \
  SWAN_THREAD_ANNOTATION(assert_capability(x))

#define SWAN_RETURN_CAPABILITY(x) SWAN_THREAD_ANNOTATION(lock_returned(x))

#define SWAN_NO_THREAD_SAFETY_ANALYSIS \
  SWAN_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SWANDB_COMMON_THREAD_ANNOTATIONS_H_
