#ifndef SWANDB_COMMON_RANDOM_H_
#define SWANDB_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace swan {

// Deterministic, fast PRNG (xoshiro256**). Seeded explicitly so every
// benchmark table in this repository is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p.
  bool Chance(double p);

 private:
  uint64_t s_[4];
};

// Samples ranks 0..n-1 with probability proportional to (rank+1)^-alpha.
// Uses the rejection-inversion method of Hörmann & Derflinger, the same
// algorithm used by YCSB-style workload generators; O(1) per sample.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double alpha);

  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double HIntegral(double x) const;
  double HIntegralInverse(double x) const;
  double H(double x) const;

  uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_num_elements_;
  double s_;
};

// Samples an index 0..weights.size()-1 proportional to arbitrary
// non-negative weights, via the alias method; O(1) per sample after O(n)
// preprocessing. Used for the calibrated Barton property distribution.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  uint64_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace swan

#endif  // SWANDB_COMMON_RANDOM_H_
