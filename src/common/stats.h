#ifndef SWANDB_COMMON_STATS_H_
#define SWANDB_COMMON_STATS_H_

#include <cstdint>
#include <vector>

namespace swan {

// Geometric mean of strictly positive values; the paper's "G" / "G*"
// summary columns in Tables 4, 6 and 7. Values <= 0 are clamped to a tiny
// epsilon so that a degenerate 0-second timing cannot poison the mean.
double GeometricMean(const std::vector<double>& values);

// Arithmetic mean.
double Mean(const std::vector<double>& values);

// Cumulative frequency distribution used by Figure 1: given per-item
// occurrence counts, returns (x, y) pairs where x = percentage of items
// considered (most frequent first) and y = percentage of total occurrences
// they account for. `points` controls the resolution of the curve.
struct CdfPoint {
  double pct_items;
  double pct_total;
};
std::vector<CdfPoint> CumulativeFrequency(std::vector<uint64_t> counts,
                                          int points);

}  // namespace swan

#endif  // SWANDB_COMMON_STATS_H_
