#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace swan {

double GeometricMean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(std::max(v, 1e-9));
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::vector<CdfPoint> CumulativeFrequency(std::vector<uint64_t> counts,
                                          int points) {
  SWAN_CHECK(points >= 2);
  std::sort(counts.begin(), counts.end(), std::greater<uint64_t>());
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0 || counts.empty()) return {};

  std::vector<CdfPoint> out;
  out.reserve(static_cast<size_t>(points) + 1);
  const size_t n = counts.size();
  uint64_t running = 0;
  size_t consumed = 0;
  for (int p = 0; p <= points; ++p) {
    const size_t target =
        static_cast<size_t>(std::llround(static_cast<double>(n) * p / points));
    while (consumed < target && consumed < n) {
      running += counts[consumed++];
    }
    out.push_back({100.0 * static_cast<double>(consumed) / n,
                   100.0 * static_cast<double>(running) / total});
  }
  return out;
}

}  // namespace swan
