#ifndef SWANDB_COMMON_TABLE_PRINTER_H_
#define SWANDB_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace swan {

// Minimal fixed-width ASCII table renderer used by the benchmark binaries
// to print paper-style result tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  void AddSeparator();

  // Renders the table. Numeric-looking cells are right-aligned.
  std::string ToString() const;

  // Convenience formatting helpers.
  static std::string Fixed(double value, int decimals);
  static std::string Int(uint64_t value);

 private:
  std::vector<std::string> header_;
  // A row with the single magic cell "\x01" renders as a separator line.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace swan

#endif  // SWANDB_COMMON_TABLE_PRINTER_H_
