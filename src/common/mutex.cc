#include "common/mutex.h"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <vector>

#include "common/macros.h"

namespace swan {

#ifdef SWAN_LOCK_RANK_CHECKS

namespace {

// The calling thread's currently-held swan::Mutexes, in acquisition
// order. Ranks along the stack are strictly decreasing — that is the
// whole invariant, checked on every push.
thread_local std::vector<const Mutex*> t_held_locks;

[[noreturn]] void RankAbort(const Mutex* acquiring, const Mutex* held) {
  if (acquiring == held) {
    std::fprintf(stderr,
                 "lock-rank violation: recursive acquisition of mutex '%s' "
                 "(rank %d)\n",
                 acquiring->name(), static_cast<int>(acquiring->rank()));
  } else {
    std::fprintf(stderr,
                 "lock-rank violation: acquiring mutex '%s' (rank %d) while "
                 "holding '%s' (rank %d); locks must be taken in strictly "
                 "decreasing rank order (see LockRank in common/mutex.h)\n",
                 acquiring->name(), static_cast<int>(acquiring->rank()),
                 held->name(), static_cast<int>(held->rank()));
  }
  std::abort();
}

void CheckAcquire(const Mutex* mu) {
  for (const Mutex* held : t_held_locks) {
    if (held == mu || static_cast<int>(held->rank()) <=
                          static_cast<int>(mu->rank())) {
      RankAbort(mu, held);
    }
  }
}

void PopHeld(const Mutex* mu) {
  // Unlock order may differ from reverse-acquisition order (MutexLock
  // supports early Unlock), so erase by search from the top.
  for (auto it = t_held_locks.rbegin(); it != t_held_locks.rend(); ++it) {
    if (*it == mu) {
      t_held_locks.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "lock-rank violation: unlocking mutex '%s' that this thread "
               "does not hold\n",
               mu->name());
  std::abort();
}

}  // namespace

void Mutex::Lock() {
  CheckAcquire(this);
  mu_.lock();
  t_held_locks.push_back(this);
}

void Mutex::Unlock() {
  PopHeld(this);
  mu_.unlock();
}

bool LockRankChecksEnabled() { return true; }

int HeldLockCountForTesting() {
  return static_cast<int>(t_held_locks.size());
}

#else  // !SWAN_LOCK_RANK_CHECKS

void Mutex::Lock() { mu_.lock(); }

void Mutex::Unlock() { mu_.unlock(); }

bool LockRankChecksEnabled() { return false; }

int HeldLockCountForTesting() { return 0; }

#endif  // SWAN_LOCK_RANK_CHECKS

void CondVar::Wait(MutexLock& lock) {
  SWAN_CHECK_MSG(lock.held(), "CondVar::Wait on an unlocked MutexLock");
  // Adopt the already-locked native mutex for the wait, then release the
  // unique_lock's ownership claim so the MutexLock (and the rank
  // checker's held stack, which keeps the mutex listed across the wait)
  // stays the single owner.
  std::unique_lock<std::mutex> native(lock.mutex()->mu_, std::adopt_lock);
  cv_.wait(native);
  native.release();
}

}  // namespace swan
