#ifndef SWANDB_COMMON_TIMER_H_
#define SWANDB_COMMON_TIMER_H_

#include <cstdint>

namespace swan {

// Wall-clock stopwatch (CLOCK_MONOTONIC).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart();
  double ElapsedSeconds() const;

 private:
  int64_t start_ns_;
};

// Process CPU-time stopwatch (CLOCK_PROCESS_CPUTIME_ID). This is the
// paper's "user time": CPU spent by the DBMS, excluding I/O stalls. The
// simulated disk contributes to "real time" only, via its VirtualClock.
class CpuTimer {
 public:
  CpuTimer() { Restart(); }

  void Restart();
  double ElapsedSeconds() const;

 private:
  int64_t start_ns_;
};

// Accumulates virtual seconds charged by the simulated disk. Query
// "real time" = CpuTimer elapsed + VirtualClock delta, reproducing the
// paper's cold/hot real-vs-user split without needing RAID hardware.
class VirtualClock {
 public:
  VirtualClock() = default;

  void Advance(double seconds) { now_seconds_ += seconds; }
  double now() const { return now_seconds_; }
  void Reset() { now_seconds_ = 0.0; }

 private:
  double now_seconds_ = 0.0;
};

}  // namespace swan

#endif  // SWANDB_COMMON_TIMER_H_
