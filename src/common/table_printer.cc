#include "common/table_printer.h"

#include <cstdio>

#include "common/macros.h"

namespace swan {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
          c == '-' || c == '+' || c == ',' || c == 'e')) {
      return false;
    }
  }
  return true;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SWAN_CHECK_MSG(cells.size() == header_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.push_back({"\x01"}); }

std::string TablePrinter::ToString() const {
  const size_t ncols = header_.size();
  std::vector<size_t> width(ncols);
  for (size_t c = 0; c < ncols; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == "\x01") continue;
    for (size_t c = 0; c < ncols; ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto render_line = [&](char fill) {
    std::string line = "+";
    for (size_t c = 0; c < ncols; ++c) {
      line += std::string(width[c] + 2, fill);
      line += "+";
    }
    line += "\n";
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = row[c];
      const size_t pad = width[c] - cell.size();
      if (LooksNumeric(cell)) {
        line += " " + std::string(pad, ' ') + cell + " |";
      } else {
        line += " " + cell + std::string(pad, ' ') + " |";
      }
    }
    line += "\n";
    return line;
  };

  std::string out = render_line('-');
  out += render_row(header_);
  out += render_line('-');
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == "\x01") {
      out += render_line('-');
    } else {
      out += render_row(row);
    }
  }
  out += render_line('-');
  return out;
}

std::string TablePrinter::Fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::Int(uint64_t value) {
  // Render with thousands separators, e.g. 50,255,599 as in Table 1.
  char raw[32];
  std::snprintf(raw, sizeof(raw), "%llu",
                static_cast<unsigned long long>(value));
  std::string s(raw);
  std::string out;
  const size_t n = s.size();
  for (size_t i = 0; i < n; ++i) {
    out += s[i];
    const size_t rem = n - 1 - i;
    if (rem > 0 && rem % 3 == 0) out += ',';
  }
  return out;
}

}  // namespace swan
