#ifndef SWANDB_COMMON_STATUS_H_
#define SWANDB_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace swan {

// Error taxonomy for fallible library operations. Internal invariant
// violations use SWAN_CHECK instead; Status is reserved for conditions a
// caller can reasonably cause or handle (bad input files, unknown names,
// capacity limits).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kCorruption,
  kUnimplemented,
  // The serving layer's admission queue is full; the caller should back
  // off and retry (distinct from kResourceExhausted, which is about a
  // storage-level capacity limit the caller cannot wait out).
  kOverloaded,
};

// Value-semantic status object in the style of arrow::Status / absl::Status.
// [[nodiscard]]: a dropped Status is a silently-swallowed error, which the
// storage engines must never do — every ignored return is a compile warning
// (an error under SWAN_WERROR).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable rendering, e.g. "NotFound: no such property".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    SWAN_CHECK_MSG(!std::get<Status>(value_).ok(),
                   "Result constructed from OK status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    SWAN_CHECK(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    SWAN_CHECK(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    SWAN_CHECK(ok());
    return std::move(std::get<T>(value_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

 private:
  std::variant<T, Status> value_;
};

#define SWAN_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::swan::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

#define SWAN_INTERNAL_CONCAT2(a, b) a##b
#define SWAN_INTERNAL_CONCAT(a, b) SWAN_INTERNAL_CONCAT2(a, b)

#define SWAN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

#define SWAN_ASSIGN_OR_RETURN(lhs, expr) \
  SWAN_ASSIGN_OR_RETURN_IMPL(SWAN_INTERNAL_CONCAT(_swan_res_, __LINE__), lhs, \
                             expr)

}  // namespace swan

#endif  // SWANDB_COMMON_STATUS_H_
