#ifndef SWANDB_COMMON_MACROS_H_
#define SWANDB_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking. SWAN_CHECK is always on (storage engines must never
// silently corrupt data); SWAN_DCHECK compiles out in release builds.
#define SWAN_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SWAN_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define SWAN_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define SWAN_DCHECK(cond) SWAN_CHECK(cond)
#endif

#endif  // SWANDB_COMMON_MACROS_H_
