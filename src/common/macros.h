#ifndef SWANDB_COMMON_MACROS_H_
#define SWANDB_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

// Invariant checking. SWAN_CHECK is always on (storage engines must never
// silently corrupt data); SWAN_DCHECK compiles out in release builds.
#define SWAN_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define SWAN_CHECK_MSG(cond, msg)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

namespace swan::macros_internal {

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

// Renders a failing operand. Anything without operator<< (composite keys,
// iterators) degrades to a placeholder instead of failing to compile.
template <typename T>
std::string CheckOpRender(const T& v) {
  if constexpr (IsStreamable<T>::value) {
    std::ostringstream os;
    os << v;
    return os.str();
  } else {
    return "<unprintable>";
  }
}

[[noreturn]] inline void CheckOpAbort(const char* file, int line,
                                      const char* expr,
                                      const std::string& lhs,
                                      const std::string& rhs) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s (lhs=%s, rhs=%s)\n", file,
               line, expr, lhs.c_str(), rhs.c_str());
  std::abort();
}

}  // namespace swan::macros_internal

// Comparison checks that print both operand values on failure, so a crash
// in a deep engine path (B+tree split, column decode) is diagnosable from
// the log alone.
#define SWAN_CHECK_OP(op, a, b)                                              \
  do {                                                                       \
    auto&& _swan_lhs = (a);                                                  \
    auto&& _swan_rhs = (b);                                                  \
    if (!(_swan_lhs op _swan_rhs)) {                                         \
      ::swan::macros_internal::CheckOpAbort(                                 \
          __FILE__, __LINE__, #a " " #op " " #b,                             \
          ::swan::macros_internal::CheckOpRender(_swan_lhs),                 \
          ::swan::macros_internal::CheckOpRender(_swan_rhs));                \
    }                                                                        \
  } while (0)

#define SWAN_CHECK_EQ(a, b) SWAN_CHECK_OP(==, a, b)
#define SWAN_CHECK_NE(a, b) SWAN_CHECK_OP(!=, a, b)
#define SWAN_CHECK_LT(a, b) SWAN_CHECK_OP(<, a, b)
#define SWAN_CHECK_LE(a, b) SWAN_CHECK_OP(<=, a, b)
#define SWAN_CHECK_GT(a, b) SWAN_CHECK_OP(>, a, b)
#define SWAN_CHECK_GE(a, b) SWAN_CHECK_OP(>=, a, b)

// Debug-only variants. The `if (false)` keeps the operands odr-used (no
// unused-variable warnings in NDEBUG builds) while compiling to nothing.
#ifdef NDEBUG
#define SWAN_DCHECK_NOOP2(a, b) \
  do {                          \
    if (false) {                \
      (void)(a);                \
      (void)(b);                \
    }                           \
  } while (0)
#define SWAN_DCHECK(cond)    \
  do {                       \
    if (false) (void)(cond); \
  } while (0)
#define SWAN_DCHECK_EQ(a, b) SWAN_DCHECK_NOOP2(a, b)
#define SWAN_DCHECK_NE(a, b) SWAN_DCHECK_NOOP2(a, b)
#define SWAN_DCHECK_LT(a, b) SWAN_DCHECK_NOOP2(a, b)
#define SWAN_DCHECK_LE(a, b) SWAN_DCHECK_NOOP2(a, b)
#define SWAN_DCHECK_GT(a, b) SWAN_DCHECK_NOOP2(a, b)
#define SWAN_DCHECK_GE(a, b) SWAN_DCHECK_NOOP2(a, b)
#else
#define SWAN_DCHECK(cond) SWAN_CHECK(cond)
#define SWAN_DCHECK_EQ(a, b) SWAN_CHECK_EQ(a, b)
#define SWAN_DCHECK_NE(a, b) SWAN_CHECK_NE(a, b)
#define SWAN_DCHECK_LT(a, b) SWAN_CHECK_LT(a, b)
#define SWAN_DCHECK_LE(a, b) SWAN_CHECK_LE(a, b)
#define SWAN_DCHECK_GT(a, b) SWAN_CHECK_GT(a, b)
#define SWAN_DCHECK_GE(a, b) SWAN_CHECK_GE(a, b)
#endif

#endif  // SWANDB_COMMON_MACROS_H_
