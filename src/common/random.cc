#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace swan {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed via SplitMix64, as recommended by the xoshiro authors,
  // so that nearby seeds produce unrelated streams.
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  SWAN_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  SWAN_CHECK(n >= 1);
  SWAN_CHECK(alpha > 0.0);
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_num_elements_ = HIntegral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

double ZipfSampler::H(double x) const { return std::exp(-alpha_ * std::log(x)); }

double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  // Stable evaluation of (exp(t*(1-alpha)) - 1) / (1-alpha) around alpha=1.
  const double t = (1.0 - alpha_) * log_x;
  double helper;
  if (std::abs(t) > 1e-8) {
    helper = (std::exp(t) - 1.0) / t;
  } else {
    helper = 1.0 + t * 0.5 * (1.0 + t / 3.0 * (1.0 + 0.25 * t));
  }
  return log_x * helper;
}

double ZipfSampler::HIntegralInverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // Numerical guard near the distribution head.
  double helper;
  if (std::abs(t) > 1e-8) {
    helper = std::log1p(t) / t;
  } else {
    helper = 1.0 - t * 0.5 * (1.0 - t / 3.0 * (1.0 - 0.25 * t));
  }
  return std::exp(x * helper);
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  for (;;) {
    const double u =
        h_integral_num_elements_ +
        rng->NextDouble() * (h_integral_x1_ - h_integral_num_elements_);
    const double x = HIntegralInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= HIntegral(kd + 0.5) - H(kd)) {
      return k - 1;  // 0-based rank
    }
  }
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  SWAN_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    SWAN_CHECK(w >= 0.0);
    total += w;
  }
  SWAN_CHECK(total > 0.0);

  prob_.resize(n);
  alias_.resize(n);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (uint32_t i : large) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
  for (uint32_t i : small) {
    prob_[i] = 1.0;
    alias_[i] = i;
  }
}

uint64_t DiscreteSampler::Sample(Rng* rng) const {
  const uint64_t i = rng->Uniform(prob_.size());
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace swan
