#ifndef SWANDB_COMMON_MUTEX_H_
#define SWANDB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace swan {

// The project's documented lock-order hierarchy. A thread may acquire a
// mutex only while every mutex it already holds has a STRICTLY GREATER
// rank — i.e. locks are taken walking down this table, never up or
// sideways. Two mutexes of equal rank therefore must never nest (the
// per-queue and per-batch exec locks are each held one at a time).
//
//   kServeService     serve::QueryService::mutex_   (scheduler state)
//   kServeTurnstile   serve::QueryService::turn_mutex_ (execution order;
//                     acquired under the service mutex in Start(), which
//                     pins the service > turnstile direction in code)
//   kServeCache       serve::ResultCache
//   kExecPoolRegistry exec global pool pointer
//   kExecWake         exec::ThreadPool sleep/wake latch
//   kExecQueue        exec::ThreadPool per-worker deques
//   kExecBatch        exec ParallelFor batch completion latch
//   kColumnLoad       colstore::Column cache-load mutex (holds across the
//                     buffer-pool/disk reads that stream the column in)
//   kBufferPool       storage::BufferPool page table
//   kNetwork          net::NetworkModel link accounting (acquired above
//                     the per-node disks: shipping a message may charge
//                     the network and then read from the destination
//                     node's disk, so network > disk is the pinned
//                     direction — see tests/scaleout_test.cc)
//   kStorageDisk      storage::SimulatedDisk model state
//   kExecLane         exec per-lane CPU ledger
//   kTelemetry        obs::Telemetry fleet-wide query log / windowed
//                     metrics / profile aggregator (near-leaf: acquired
//                     under the serve turnstile and the shell, acquires
//                     nothing — two Telemetry bundles never nest; merges
//                     snapshot the source before locking the target)
//   kMetrics          obs::MetricsRegistry name table (leaf: acquired
//                     under everything, acquires nothing)
//
// The runtime checker (debug contract, compiled in when
// SWAN_LOCK_RANK_CHECKS is defined, which is the default build) tracks a
// thread-local held-lock stack and aborts on any acquisition that
// violates the table above or re-enters a held mutex — deterministic
// deadlock detection that fires on the first bad nesting in any test,
// without needing TSan or an actual interleaving.
enum class LockRank : int {
  kServeService = 1200,
  kServeTurnstile = 1100,
  kServeCache = 1000,
  kExecPoolRegistry = 900,
  kExecWake = 800,
  kExecQueue = 700,
  kExecBatch = 600,
  kColumnLoad = 500,
  kBufferPool = 400,
  kNetwork = 350,
  kStorageDisk = 300,
  kExecLane = 200,
  kTelemetry = 150,
  kMetrics = 100,
};

class CondVar;

// Annotated, ranked mutex. Thin wrapper over std::mutex: the annotation
// makes guarded fields statically checkable under clang, the rank makes
// the acquisition order dynamically checkable everywhere. All locking in
// src/, tests/ and bench/ must go through this wrapper (enforced by
// tools/swan_lint.py rule `raw-mutex`).
class SWAN_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SWAN_ACQUIRE();
  void Unlock() SWAN_RELEASE();

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  friend class CondVar;

  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

// RAII lock with explicit Unlock/Lock for the drop-the-lock-around-IO
// pattern (storage::BufferPool) and for handing off before a notify
// (serve::QueryService). The destructor releases only if still held.
class SWAN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SWAN_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }

  ~MutexLock() SWAN_RELEASE() {
    if (held_) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Releases early (e.g. before a condition-variable notify). The
  // destructor then does nothing.
  void Unlock() SWAN_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }

  // Re-acquires after an explicit Unlock (the buffer-pool miss path).
  void Lock() SWAN_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

  Mutex* mutex() const { return mu_; }
  bool held() const { return held_; }

 private:
  Mutex* const mu_;
  bool held_ = true;
};

// Condition variable bound to swan::Mutex. Wait atomically releases the
// underlying std::mutex and re-acquires it before returning; the rank
// checker's held-lock stack deliberately keeps the mutex listed for the
// duration (the blocked thread acquires nothing meanwhile, and on return
// the stack again matches reality). No predicate overload on purpose:
// spell the loop `while (!cond) cv.Wait(lock);` in the caller, where the
// static analysis can see the guarded reads under the held lock.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Requires `lock` held; spurious wakeups possible, loop on the
  // condition.
  void Wait(MutexLock& lock);

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// True when the runtime lock-rank checker was compiled in (tests use this
// to skip the violation death tests in unchecked builds).
bool LockRankChecksEnabled();

// Depth of the calling thread's held-lock stack; always 0 when the
// checker is compiled out. Test-only observability.
int HeldLockCountForTesting();

}  // namespace swan

#endif  // SWANDB_COMMON_MUTEX_H_
