#ifndef SWANDB_OBS_EXPORT_H_
#define SWANDB_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/trace.h"

namespace swan::obs {

// Exporters over a finished TraceSession. All numeric output uses fixed
// formatting, so two sessions with identical recorded state produce
// byte-identical strings.

// Human-readable profile: an aligned span tree with inclusive/exclusive
// virtual time, percent of the modeled real time, row/byte/seek/morsel
// counts, followed by the metrics registry snapshot. Contains the
// host-measured modeled-CPU figure, so it is *not* part of the
// byte-reproducible surface (use ProfileJson(session, false) for that).
std::string TextProfile(const TraceSession& session);

// Chrome trace_event JSON (chrome://tracing, Perfetto). Track (tid) 1 is
// the control thread carrying the span tree on the virtual clock; tracks
// 2..threads+1 are one per lane, carrying each span's per-lane virtual
// I/O accrual. Timestamps are virtual microseconds. Fully deterministic.
std::string ChromeTraceJson(const TraceSession& session);

// Multi-session Chrome trace: every distinct label becomes its own Chrome
// *process* (pids assigned in first-appearance order) with the same
// per-pid track layout as ChromeTraceJson — so the serving layer's
// per-session profiles land on visually distinct track groups in one
// trace file, and the successive requests of one session share a group.
// ts_offset_seconds shifts a session's events along the timeline (span
// times are relative to each session's own start; the serving layer
// passes each request's start on the store's virtual clock so requests
// line up end to end per track). Null sessions are skipped. Fully
// deterministic.
struct SessionTrack {
  std::string label;
  const TraceSession* session = nullptr;
  double ts_offset_seconds = 0.0;
};
std::string ChromeTraceJsonMulti(const std::vector<SessionTrack>& tracks);

// Machine-readable JSON profile: nested span objects plus the metrics
// snapshot. With include_host_time the session-level modeled CPU and the
// derived real_seconds are included (host-dependent); without it the
// output is a pure function of query, data, and thread width —
// byte-identical across runs.
std::string ProfileJson(const TraceSession& session,
                        bool include_host_time = true);

}  // namespace swan::obs

#endif  // SWANDB_OBS_EXPORT_H_
