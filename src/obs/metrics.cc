#include "obs/metrics.h"

#include <algorithm>

#include "common/macros.h"
#include "common/mutex.h"

namespace swan::obs {

Histogram::Histogram(std::vector<uint64_t> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  SWAN_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be ascending");
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(uint64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  s.upper_bounds = bounds_;
  s.counts.reserve(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    s.counts.push_back(counts_[i].load(std::memory_order_relaxed));
  }
  s.total_count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> upper_bounds) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap() const {
  MutexLock lock(&mutex_);
  Snapshot s;
  for (const auto& [name, counter] : counters_) {
    s.counters.emplace(name, counter->value());
  }
  for (const auto& [name, hist] : histograms_) {
    s.histograms.emplace(name, hist->Snap());
  }
  return s;
}

}  // namespace swan::obs
