#include "obs/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "common/mutex.h"

namespace swan::obs {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n),
                                               sizeof(buf) - 1));
}

uint64_t ToNanos(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<uint64_t>(std::llround(seconds * 1e9));
}

// Nearest-rank percentile over a sorted sample vector (p in [0,100]):
// the ceil(p/100 * n)-th smallest, matching serve::ModelSchedule.
double NearestRank(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t n = sorted.size();
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

}  // namespace

// ---------------------------------------------------------------------------
// WindowedMetrics
// ---------------------------------------------------------------------------

WindowedMetrics::WindowedMetrics(double window_seconds,
                                 double slo_latency_seconds)
    : width_(window_seconds > 0.0 ? window_seconds : 0.1),
      slo_(slo_latency_seconds) {}

void WindowedMetrics::Observe(double finish_vt, double latency_seconds,
                              bool cache_hit, uint64_t queue_depth) {
  const int64_t index =
      static_cast<int64_t>(std::floor(finish_vt / width_));
  Window& window = windows_[index];
  window.latencies.push_back(latency_seconds);
  if (cache_hit) ++window.cache_hits;
  if (latency_seconds > slo_) ++window.slo_breaches;
  window.max_queue_depth = std::max(window.max_queue_depth, queue_depth);
  ++total_count_;
}

void WindowedMetrics::MergeFrom(const WindowedMetrics& other) {
  for (const auto& [index, window] : other.windows_) {
    Window& into = windows_[index];
    into.latencies.insert(into.latencies.end(), window.latencies.begin(),
                          window.latencies.end());
    into.cache_hits += window.cache_hits;
    into.slo_breaches += window.slo_breaches;
    into.max_queue_depth =
        std::max(into.max_queue_depth, window.max_queue_depth);
  }
  total_count_ += other.total_count_;
}

void WindowedMetrics::FillPercentiles(std::vector<double> latencies,
                                      WindowSnapshot* snap) {
  std::sort(latencies.begin(), latencies.end());
  snap->count = latencies.size();
  snap->p50_seconds = NearestRank(latencies, 50.0);
  snap->p95_seconds = NearestRank(latencies, 95.0);
  snap->p99_seconds = NearestRank(latencies, 99.0);
}

std::vector<WindowedMetrics::WindowSnapshot> WindowedMetrics::Windows()
    const {
  std::vector<WindowSnapshot> out;
  out.reserve(windows_.size());
  for (const auto& [index, window] : windows_) {
    WindowSnapshot snap;
    snap.index = index;
    snap.cache_hits = window.cache_hits;
    snap.slo_breaches = window.slo_breaches;
    snap.max_queue_depth = window.max_queue_depth;
    FillPercentiles(window.latencies, &snap);
    snap.throughput_per_second =
        static_cast<double>(snap.count) / width_;
    out.push_back(std::move(snap));
  }
  return out;
}

WindowedMetrics::WindowSnapshot WindowedMetrics::Pooled() const {
  WindowSnapshot snap;
  std::vector<double> all;
  all.reserve(total_count_);
  for (const auto& [index, window] : windows_) {
    all.insert(all.end(), window.latencies.begin(), window.latencies.end());
    snap.cache_hits += window.cache_hits;
    snap.slo_breaches += window.slo_breaches;
    snap.max_queue_depth =
        std::max(snap.max_queue_depth, window.max_queue_depth);
  }
  FillPercentiles(std::move(all), &snap);
  if (!windows_.empty()) {
    // Throughput over the observed span of whole windows.
    const int64_t first = windows_.begin()->first;
    const int64_t last = windows_.rbegin()->first;
    const double span = static_cast<double>(last - first + 1) * width_;
    snap.throughput_per_second = static_cast<double>(snap.count) / span;
  }
  return snap;
}

std::string WindowedMetrics::ToJson() const {
  std::string out;
  AppendF(&out, "{\"window_seconds\":%.9f,\"slo_seconds\":%.9f,"
          "\"windows\":[", width_, slo_);
  const std::vector<WindowSnapshot> windows = Windows();
  for (size_t i = 0; i < windows.size(); ++i) {
    const WindowSnapshot& w = windows[i];
    AppendF(&out,
            "%s{\"index\":%lld,\"count\":%" PRIu64 ",\"cache_hits\":%" PRIu64
            ",\"slo_breaches\":%" PRIu64 ",\"max_queue_depth\":%" PRIu64
            ",\"throughput\":%.6f,\"p50\":%.9f,\"p95\":%.9f,\"p99\":%.9f}",
            i ? "," : "", static_cast<long long>(w.index), w.count,
            w.cache_hits, w.slo_breaches, w.max_queue_depth,
            w.throughput_per_second, w.p50_seconds, w.p95_seconds,
            w.p99_seconds);
  }
  const WindowSnapshot pooled = Pooled();
  AppendF(&out,
          "],\"pooled\":{\"count\":%" PRIu64 ",\"cache_hits\":%" PRIu64
          ",\"slo_breaches\":%" PRIu64 ",\"max_queue_depth\":%" PRIu64
          ",\"throughput\":%.6f,\"p50\":%.9f,\"p95\":%.9f,\"p99\":%.9f}}\n",
          pooled.count, pooled.cache_hits, pooled.slo_breaches,
          pooled.max_queue_depth, pooled.throughput_per_second,
          pooled.p50_seconds, pooled.p95_seconds, pooled.p99_seconds);
  return out;
}

// ---------------------------------------------------------------------------
// ProfileAggregator
// ---------------------------------------------------------------------------

namespace {

// Aggregation key of a span: its name with the planner's per-query
// " est=N" suffix stripped, so "scan <p> est=120" and "scan <p> est=7"
// accumulate under one operator.
std::string StrippedName(const SpanNode& span) {
  std::string op;
  uint64_t est = 0;
  if (SplitEstimatedName(span.name, &op, &est)) return op;
  return span.name;
}

}  // namespace

void ProfileAggregator::FoldSpan(const SpanNode& span, Node* into) {
  into->calls += 1;
  into->incl_ns += ToNanos(span.vt_seconds());
  into->excl_ns += ToNanos(span.ExclusiveVtSeconds());
  into->rows_out += span.rows_out;
  into->bytes += span.bytes();
  into->seeks += span.seeks();
  for (const auto& child : span.children) {
    FoldSpan(*child, &into->children[StrippedName(*child)]);
  }
}

void ProfileAggregator::AddSession(const TraceSession& session) {
  ++sessions_;
  FoldSpan(session.root(), &roots_[StrippedName(session.root())]);
}

void ProfileAggregator::MergeNode(const Node& from, Node* into) {
  into->calls += from.calls;
  into->incl_ns += from.incl_ns;
  into->excl_ns += from.excl_ns;
  into->rows_out += from.rows_out;
  into->bytes += from.bytes;
  into->seeks += from.seeks;
  for (const auto& [name, child] : from.children) {
    MergeNode(child, &into->children[name]);
  }
}

void ProfileAggregator::MergeFrom(const ProfileAggregator& other) {
  sessions_ += other.sessions_;
  for (const auto& [name, node] : other.roots_) {
    MergeNode(node, &roots_[name]);
  }
}

std::vector<ProfileAggregator::OpStat> ProfileAggregator::TopOps(
    size_t n) const {
  // Sum every trie node into its operator name, independent of stack
  // position.
  std::map<std::string, OpStat> by_name;
  struct Walker {
    std::map<std::string, OpStat>* by_name;
    void Walk(const std::string& name, const Node& node) {
      OpStat& stat = (*by_name)[name];
      stat.name = name;
      stat.calls += node.calls;
      stat.incl_ns += node.incl_ns;
      stat.excl_ns += node.excl_ns;
      stat.rows_out += node.rows_out;
      stat.bytes += node.bytes;
      stat.seeks += node.seeks;
      for (const auto& [child_name, child] : node.children) {
        Walk(child_name, child);
      }
    }
  } walker{&by_name};
  for (const auto& [name, node] : roots_) walker.Walk(name, node);

  std::vector<OpStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) out.push_back(std::move(stat));
  std::sort(out.begin(), out.end(), [](const OpStat& a, const OpStat& b) {
    if (a.excl_ns != b.excl_ns) return a.excl_ns > b.excl_ns;
    return a.name < b.name;
  });
  if (n > 0 && out.size() > n) out.resize(n);
  return out;
}

std::string ProfileAggregator::TopOpsTable(size_t n) const {
  std::string out;
  AppendF(&out, "top operators (%" PRIu64 " profiles merged):\n", sessions_);
  AppendF(&out, "%-40s %8s %12s %12s %12s %12s %8s\n", "operator", "calls",
          "excl(ms)", "incl(ms)", "rows_out", "bytes", "seeks");
  for (const OpStat& stat : TopOps(n)) {
    std::string name = stat.name;
    if (name.size() > 40) name.resize(40);
    AppendF(&out,
            "%-40s %8" PRIu64 " %12.3f %12.3f %12" PRIu64 " %12" PRIu64
            " %8" PRIu64 "\n",
            name.c_str(), stat.calls, stat.excl_ns / 1e6, stat.incl_ns / 1e6,
            stat.rows_out, stat.bytes, stat.seeks);
  }
  return out;
}

std::string ProfileAggregator::CollapsedStacks() const {
  // Flatten the trie into "a;b;c <excl_ns>" lines. std::map iteration
  // gives lexicographic stack order for free.
  std::string out;
  struct Walker {
    std::string* out;
    void Walk(const std::string& stack, const Node& node) {
      if (node.excl_ns > 0) {
        AppendF(out, "%s %" PRIu64 "\n", stack.c_str(), node.excl_ns);
      }
      for (const auto& [name, child] : node.children) {
        Walk(stack + ";" + name, child);
      }
    }
  } walker{&out};
  for (const auto& [name, node] : roots_) walker.Walk(name, node);
  return out;
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

Telemetry::Telemetry(TelemetryOptions options)
    : options_(options),
      windows_(options.window_seconds, options.slo_latency_seconds) {}

void Telemetry::Record(QueryLogRecord record, const TraceSession* profile) {
  if (record.text.size() > options_.max_text_bytes) {
    record.text.resize(options_.max_text_bytes);
  }
  MutexLock lock(&mutex_);
  windows_.Observe(record.vt_finish, record.latency_seconds,
                   record.cache_hit, record.queue_depth);
  if (profile != nullptr && profile->finished()) {
    aggregator_.AddSession(*profile);
  }
  log_.push_back(std::move(record));
}

void Telemetry::MergeFrom(const Telemetry& other) {
  // Snapshot the source under its own lock, release, then lock this
  // bundle: two kTelemetry mutexes are never held together.
  std::vector<QueryLogRecord> other_log;
  WindowedMetrics other_windows(other.options_.window_seconds,
                                other.options_.slo_latency_seconds);
  ProfileAggregator other_aggregator;
  {
    MutexLock lock(&other.mutex_);
    other_log = other.log_;
    other_windows.MergeFrom(other.windows_);
    other_aggregator.MergeFrom(other.aggregator_);
  }
  MutexLock lock(&mutex_);
  log_.insert(log_.end(), std::make_move_iterator(other_log.begin()),
              std::make_move_iterator(other_log.end()));
  windows_.MergeFrom(other_windows);
  aggregator_.MergeFrom(other_aggregator);
}

std::vector<QueryLogRecord> Telemetry::LogSnapshot() const {
  MutexLock lock(&mutex_);
  return log_;
}

std::string Telemetry::QueryLogJsonl(bool include_host_time) const {
  MutexLock lock(&mutex_);
  return obs::QueryLogJsonl(log_, include_host_time);
}

std::string Telemetry::WindowsJson() const {
  MutexLock lock(&mutex_);
  return windows_.ToJson();
}

WindowedMetrics::WindowSnapshot Telemetry::PooledWindow() const {
  MutexLock lock(&mutex_);
  return windows_.Pooled();
}

std::vector<WindowedMetrics::WindowSnapshot> Telemetry::Windows() const {
  MutexLock lock(&mutex_);
  return windows_.Windows();
}

std::vector<ProfileAggregator::OpStat> Telemetry::TopOps(size_t n) const {
  MutexLock lock(&mutex_);
  return aggregator_.TopOps(n);
}

std::string Telemetry::TopOpsTable(size_t n) const {
  MutexLock lock(&mutex_);
  return aggregator_.TopOpsTable(n);
}

std::string Telemetry::CollapsedStacks() const {
  MutexLock lock(&mutex_);
  return aggregator_.CollapsedStacks();
}

uint64_t Telemetry::records() const {
  MutexLock lock(&mutex_);
  return log_.size();
}

}  // namespace swan::obs
