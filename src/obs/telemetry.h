#ifndef SWANDB_OBS_TELEMETRY_H_
#define SWANDB_OBS_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "obs/querylog.h"
#include "obs/trace.h"

namespace swan::obs {

// Fleet telemetry: the always-on layer above the per-query span trees.
// Three pieces, all driven by the deterministic surface of the query-log
// record, so every export (the JSONL log, the window snapshots, the
// top-operators table, the collapsed flamegraph stacks) is byte-identical
// at any thread width:
//
//   * WindowedMetrics — fixed-boundary windows on the virtual clock
//     (half-open [k*w, (k+1)*w), keyed by k = floor(finish/w)) holding
//     per-window latency percentiles (nearest-rank over the raw samples,
//     exact — no histogram approximation), throughput, cache hit counts,
//     the max observed queue depth, and an SLO breach counter;
//   * ProfileAggregator — merges span trees across queries by name path
//     (the planner's per-query " est=N" suffixes stripped, so one logical
//     operator accumulates across queries) into cumulative totals,
//     exported as a top-operators table and collapsed (flamegraph)
//     stacks. Virtual times are accumulated in integer nanoseconds, so
//     merging aggregators is exactly associative;
//   * the Telemetry bundle — one mutex (LockRank::kTelemetry, near-leaf)
//     over the query log, the windows and the aggregator, with a
//     snapshot-then-merge MergeFrom so two bundles never nest their
//     equal-rank locks.

struct TelemetryOptions {
  // Window width on the virtual clock. Modeled latencies are milliseconds
  // to tens of milliseconds at bench scale, so the default buckets a
  // serve script into a handful of windows.
  double window_seconds = 0.1;
  // Latency above this counts as an SLO breach in its window.
  double slo_latency_seconds = 0.05;
  // Recorded canonical text is truncated to this many bytes (the hash
  // always covers the full text).
  size_t max_text_bytes = 120;
};

// Externally synchronized (Telemetry locks around it; tests drive it
// single-threaded).
class WindowedMetrics {
 public:
  WindowedMetrics(double window_seconds, double slo_latency_seconds);

  // Records one completed request: `finish_vt` places it in its window,
  // `latency_seconds` feeds the percentile samples and the SLO check.
  void Observe(double finish_vt, double latency_seconds, bool cache_hit,
               uint64_t queue_depth);

  void MergeFrom(const WindowedMetrics& other);

  struct WindowSnapshot {
    int64_t index = 0;       // window k covers [k*w, (k+1)*w)
    uint64_t count = 0;
    uint64_t cache_hits = 0;
    uint64_t slo_breaches = 0;
    uint64_t max_queue_depth = 0;
    double throughput_per_second = 0.0;  // count / window width
    double p50_seconds = 0.0;
    double p95_seconds = 0.0;
    double p99_seconds = 0.0;
  };
  // Per-window snapshots in window order.
  std::vector<WindowSnapshot> Windows() const;

  // Pooled over every sample regardless of window. Because the windows
  // retain raw samples, the pooled percentiles equal a brute-force
  // nearest-rank over all observed latencies exactly.
  WindowSnapshot Pooled() const;

  // Deterministic JSON snapshot: options, per-window stats, pooled stats.
  std::string ToJson() const;

  uint64_t samples() const { return total_count_; }
  double window_seconds() const { return width_; }

 private:
  struct Window {
    std::vector<double> latencies;  // raw samples, in observation order
    uint64_t cache_hits = 0;
    uint64_t slo_breaches = 0;
    uint64_t max_queue_depth = 0;
  };

  static void FillPercentiles(std::vector<double> latencies,
                              WindowSnapshot* snap);

  double width_;
  double slo_;
  uint64_t total_count_ = 0;
  std::map<int64_t, Window> windows_;
};

// Externally synchronized cross-query span-tree aggregator.
class ProfileAggregator {
 public:
  // Folds one finished session's span tree into the cumulative trie.
  void AddSession(const TraceSession& session);

  void MergeFrom(const ProfileAggregator& other);

  struct OpStat {
    std::string name;        // operator name, est-suffix stripped
    uint64_t calls = 0;
    uint64_t incl_ns = 0;    // inclusive virtual nanoseconds
    uint64_t excl_ns = 0;    // exclusive virtual nanoseconds
    uint64_t rows_out = 0;
    uint64_t bytes = 0;
    uint64_t seeks = 0;
  };
  // Operators summed across all stack positions, sorted by exclusive
  // virtual time descending (name ascending on ties). n == 0 means all.
  std::vector<OpStat> TopOps(size_t n = 0) const;

  // Fixed-format text table of TopOps(n).
  std::string TopOpsTable(size_t n = 10) const;

  // Collapsed-stack (flamegraph) export: "root;child;leaf <excl_ns>\n"
  // per distinct stack, in lexicographic stack order. Feed to
  // flamegraph.pl / speedscope as folded stacks.
  std::string CollapsedStacks() const;

  uint64_t sessions() const { return sessions_; }

 private:
  struct Node {
    uint64_t calls = 0;
    uint64_t incl_ns = 0;
    uint64_t excl_ns = 0;
    uint64_t rows_out = 0;
    uint64_t bytes = 0;
    uint64_t seeks = 0;
    std::map<std::string, Node> children;
  };

  static void FoldSpan(const SpanNode& span, Node* into);
  static void MergeNode(const Node& from, Node* into);

  uint64_t sessions_ = 0;
  std::map<std::string, Node> roots_;
};

// The locked bundle: the query log, the windowed metrics and the profile
// aggregator behind one near-leaf mutex. The serve tier records under its
// turnstile; the shell and benches record single-threaded; exports lock
// briefly and copy.
class Telemetry {
 public:
  explicit Telemetry(TelemetryOptions options = {});

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // Appends the record (text truncated to options.max_text_bytes),
  // observes its window sample, and folds `profile` (may be null — cache
  // hits and writes carry no span tree) into the aggregator.
  void Record(QueryLogRecord record, const TraceSession* profile)
      SWAN_EXCLUDES(mutex_);

  // Merges another bundle's state into this one. Snapshots `other` under
  // its own lock first, then locks this — equal-rank mutexes never nest.
  void MergeFrom(const Telemetry& other) SWAN_EXCLUDES(mutex_);

  std::vector<QueryLogRecord> LogSnapshot() const SWAN_EXCLUDES(mutex_);
  std::string QueryLogJsonl(bool include_host_time) const
      SWAN_EXCLUDES(mutex_);
  std::string WindowsJson() const SWAN_EXCLUDES(mutex_);
  WindowedMetrics::WindowSnapshot PooledWindow() const SWAN_EXCLUDES(mutex_);
  std::vector<WindowedMetrics::WindowSnapshot> Windows() const
      SWAN_EXCLUDES(mutex_);
  std::vector<ProfileAggregator::OpStat> TopOps(size_t n = 0) const
      SWAN_EXCLUDES(mutex_);
  std::string TopOpsTable(size_t n = 10) const SWAN_EXCLUDES(mutex_);
  std::string CollapsedStacks() const SWAN_EXCLUDES(mutex_);
  uint64_t records() const SWAN_EXCLUDES(mutex_);

  const TelemetryOptions& options() const { return options_; }

 private:
  TelemetryOptions options_;
  mutable Mutex mutex_{LockRank::kTelemetry, "obs.telemetry"};
  std::vector<QueryLogRecord> log_ SWAN_GUARDED_BY(mutex_);
  WindowedMetrics windows_ SWAN_GUARDED_BY(mutex_);
  ProfileAggregator aggregator_ SWAN_GUARDED_BY(mutex_);
};

}  // namespace swan::obs

#endif  // SWANDB_OBS_TELEMETRY_H_
