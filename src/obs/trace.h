#ifndef SWANDB_OBS_TRACE_H_
#define SWANDB_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace swan::obs {

// Deterministic per-query tracing.
//
// A TraceSession is attached to one query execution (through the
// exec::ExecContext handle) and records a tree of operator spans. Span
// timestamps come from the *virtual* clock of the backend's simulated
// disk (serial stream seconds + the slowest I/O lane), and every other
// recorded quantity (bytes, seeks, morsels, per-lane virtual seconds,
// row counts) is a pure function of the query and the context's thread
// budget — so the whole span tree, including all durations, is identical
// on any host and byte-reproducible run-to-run at a fixed width. Host
// CPU time enters exactly once, as the session-level modeled CPU figure
// passed to Finish(); exporters keep it separate from (or omit it from)
// the deterministic payload.
//
// Spans are recorded only on the session's owner thread and only outside
// ParallelFor regions: a Span constructed from a worker thread, or on the
// owner thread while one of its ParallelFor calls is in flight (at *any*
// width, including the inline serial path), is a no-op. This makes the
// tree single-writer (no synchronization on the hot path) and — because
// region entry/exit points do not depend on the thread budget — gives the
// same tree shape at every width. Work done inside a region is aggregated
// into the enclosing span via the counter deltas it brackets.
//
// With no session attached (the default), constructing a Span is a single
// null check.

// Sample of the deterministic cost counters bracketed by a span.
struct CounterSample {
  uint64_t bytes_read = 0;         // cumulative simulated-disk bytes
  uint64_t seeks = 0;              // cumulative simulated-disk seeks
  uint64_t morsels = 0;            // cumulative ParallelFor chunks
  uint64_t parallel_regions = 0;   // cumulative fanned-out ParallelFor calls
  uint64_t net_bytes = 0;          // cumulative modeled inter-node bytes
  uint64_t net_messages = 0;       // cumulative modeled inter-node messages
  std::vector<double> lane_seconds;  // cumulative per-lane virtual I/O time
};

// One node of the span tree. vt_* are virtual seconds on the session's
// deterministic clock; open/close bracket the cost counters.
struct SpanNode {
  std::string name;
  double vt_start = 0.0;
  double vt_end = 0.0;
  CounterSample open;
  CounterSample close;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  SpanNode* parent = nullptr;
  std::vector<std::unique_ptr<SpanNode>> children;

  double vt_seconds() const { return vt_end - vt_start; }
  uint64_t bytes() const { return close.bytes_read - open.bytes_read; }
  uint64_t seeks() const { return close.seeks - open.seeks; }
  uint64_t morsels() const { return close.morsels - open.morsels; }
  uint64_t regions() const {
    return close.parallel_regions - open.parallel_regions;
  }
  uint64_t net_bytes() const { return close.net_bytes - open.net_bytes; }
  uint64_t net_messages() const {
    return close.net_messages - open.net_messages;
  }
  // Virtual I/O seconds accrued per lane while the span was open (trailing
  // zero lanes trimmed). Non-empty only for spans that bracket parallel
  // cold reads.
  std::vector<double> LaneIoSeconds() const;
  // Inclusive virtual time minus the children's inclusive virtual time.
  double ExclusiveVtSeconds() const;
};

// Callbacks binding a session to its deterministic time/cost sources
// (in practice: the owning backend's SimulatedDisk and the query's
// OpCounters). Both must be safe to call from the owner thread at span
// boundaries; either may be null (times/costs then read as zero).
struct TraceSources {
  std::function<double()> now;             // virtual seconds
  std::function<CounterSample()> sample;   // cost counters
};

class TraceSession {
 public:
  // Opens the root span immediately. `threads` is the context's budget,
  // recorded for the exporters (one Chrome track per lane).
  TraceSession(std::string root_name, TraceSources sources, int threads);

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  // Closes the root span and freezes the tree. `cpu_seconds` is the
  // modeled critical-path CPU cost of the traced execution (the one
  // host-measured input); pass 0.0 when unknown.
  void Finish(double cpu_seconds);

  bool finished() const { return finished_; }
  int threads() const { return threads_; }
  const SpanNode& root() const { return root_; }
  double cpu_seconds() const { return cpu_seconds_; }
  // Modeled real seconds of the whole traced execution: modeled CPU plus
  // the root span's virtual I/O duration. Matches the bench harness's
  // Measurement::real_seconds when the session brackets the measured run.
  double RootRealSeconds() const { return cpu_seconds_ + root_.vt_seconds(); }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  bool OnOwnerThread() const {
    return std::this_thread::get_id() == owner_;
  }

 private:
  friend class Span;

  SpanNode* OpenSpan(std::string_view name);
  void CloseSpan(SpanNode* node);
  CounterSample Sample() const;
  double Now() const;

  std::thread::id owner_;
  TraceSources sources_;
  int threads_ = 1;
  double t0_ = 0.0;  // session start on the source clock; spans are relative
  SpanNode root_;
  SpanNode* current_ = nullptr;
  MetricsRegistry metrics_;
  double cpu_seconds_ = 0.0;
  bool finished_ = false;
};

// RAII operator span. Constructing with a null session — the untraced
// default everywhere — costs one branch. A non-null session records the
// span only on the owner thread outside ParallelFor regions (see file
// comment); otherwise the Span silently no-ops.
class Span {
 public:
  Span(TraceSession* session, std::string_view name) {
    if (session != nullptr) Init(session, name);
  }
  ~Span() {
    if (node_ != nullptr) session_->CloseSpan(node_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return node_ != nullptr; }
  void set_rows_in(uint64_t n) {
    if (node_ != nullptr) node_->rows_in = n;
  }
  void set_rows_out(uint64_t n) {
    if (node_ != nullptr) node_->rows_out = n;
  }
  void add_rows_out(uint64_t n) {
    if (node_ != nullptr) node_->rows_out += n;
  }

 private:
  void Init(TraceSession* session, std::string_view name);

  TraceSession* session_ = nullptr;
  SpanNode* node_ = nullptr;
};

}  // namespace swan::obs

#endif  // SWANDB_OBS_TRACE_H_
