#include "obs/querylog.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace swan::obs {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n),
                                               sizeof(buf) - 1));
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(&out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void CollectOps(const SpanNode& node, std::vector<QueryLogOp>* out) {
  QueryLogOp op;
  if (SplitEstimatedName(node.name, &op.op, &op.est)) {
    op.actual = node.rows_out;
    out->push_back(std::move(op));
  }
  for (const auto& child : node.children) CollectOps(*child, out);
}

}  // namespace

uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 14695981039346656037ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

bool SplitEstimatedName(std::string_view name, std::string* op,
                        uint64_t* est) {
  const size_t pos = name.rfind(" est=");
  if (pos == std::string_view::npos) return false;
  const std::string_view digits = name.substr(pos + 5);
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *op = std::string(name.substr(0, pos));
  *est = value;
  return true;
}

std::vector<QueryLogOp> CollectEstimatedOps(const SpanNode& root) {
  std::vector<QueryLogOp> ops;
  CollectOps(root, &ops);
  return ops;
}

std::string QueryLogRecordJson(const QueryLogRecord& record,
                               bool include_host_time) {
  std::string out;
  AppendF(&out, "{\"seq\":%" PRIu64 ",\"session\":\"%s\",\"kind\":\"%s\"",
          record.seq, JsonEscape(record.session).c_str(),
          JsonEscape(record.kind).c_str());
  AppendF(&out, ",\"text_hash\":\"%016" PRIx64 "\",\"text\":\"",
          record.text_hash);
  out += JsonEscape(record.text);
  out += '"';
  AppendF(&out, ",\"backend\":\"%s\",\"plan_mode\":\"%s\"",
          JsonEscape(record.backend).c_str(),
          JsonEscape(record.plan_mode).c_str());
  AppendF(&out, ",\"ok\":%s", record.ok ? "true" : "false");
  if (!record.ok) {
    out += ",\"error\":\"";
    out += JsonEscape(record.error);
    out += '"';
  }
  AppendF(&out, ",\"cache_hit\":%s,\"snapshot\":%" PRIu64 ",\"rows\":%" PRIu64,
          record.cache_hit ? "true" : "false", record.snapshot_version,
          record.rows);
  AppendF(&out,
          ",\"vt_start\":%.9f,\"vt_finish\":%.9f,\"queue_wait\":%.9f,"
          "\"queue_depth\":%" PRIu64 ",\"io_seconds\":%.9f,"
          "\"latency\":%.9f",
          record.vt_start, record.vt_finish, record.queue_wait_seconds,
          record.queue_depth, record.io_seconds, record.latency_seconds);
  AppendF(&out,
          ",\"bytes_read\":%" PRIu64 ",\"seeks\":%" PRIu64
          ",\"match_calls\":%" PRIu64 ",\"morsels\":%" PRIu64
          ",\"bgp_batches\":%" PRIu64 ",\"star_gathers\":%" PRIu64,
          record.bytes_read, record.seeks, record.match_calls, record.morsels,
          record.bgp_batches, record.star_gathers);
  AppendF(&out,
          ",\"node\":%d,\"nodes\":%d,\"net_bytes\":%" PRIu64
          ",\"net_messages\":%" PRIu64 ",\"net_seconds\":%.9f",
          record.node, record.nodes, record.net_bytes, record.net_messages,
          record.net_seconds);
  AppendF(&out,
          ",\"session_cache\":{\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
          ",\"evictions\":%" PRIu64 "}",
          record.session_cache_hits, record.session_cache_misses,
          record.session_cache_evictions);
  out.append(",\"ops\":[");
  for (size_t i = 0; i < record.ops.size(); ++i) {
    AppendF(&out, "%s{\"op\":\"%s\",\"est\":%" PRIu64 ",\"actual\":%" PRIu64
            "}",
            i ? "," : "", JsonEscape(record.ops[i].op).c_str(),
            record.ops[i].est, record.ops[i].actual);
  }
  out.append("]");
  if (include_host_time) {
    AppendF(&out, ",\"cpu_seconds\":%.9f,\"service_seconds\":%.9f",
            record.cpu_seconds, record.service_seconds);
  }
  out.append("}");
  return out;
}

std::string QueryLogJsonl(const std::vector<QueryLogRecord>& records,
                          bool include_host_time) {
  std::string out;
  for (const QueryLogRecord& record : records) {
    out += QueryLogRecordJson(record, include_host_time);
    out += '\n';
  }
  return out;
}

}  // namespace swan::obs
