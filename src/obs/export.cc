#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>

namespace swan::obs {

namespace {

#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n),
                                               sizeof(buf) - 1));
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendF(&out, "\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Text profile
// ---------------------------------------------------------------------------

void TextRow(std::string* out, const SpanNode& node, int depth,
             double root_real) {
  std::string label(static_cast<size_t>(depth) * 2, ' ');
  label += node.name;
  if (label.size() > 40) label.resize(40);
  const double incl = node.vt_seconds();
  const double excl = node.ExclusiveVtSeconds();
  const double pct = root_real > 0.0 ? 100.0 * incl / root_real : 0.0;
  AppendF(out,
          "%-40s %10.6f %10.6f %6.1f%% %10" PRIu64 " %10" PRIu64
          " %12" PRIu64 " %6" PRIu64 " %8" PRIu64 "\n",
          label.c_str(), incl, excl, pct, node.rows_in, node.rows_out,
          node.bytes(), node.seeks(), node.morsels());
  for (const auto& child : node.children) {
    TextRow(out, *child, depth + 1, root_real);
  }
}

// ---------------------------------------------------------------------------
// Chrome trace
// ---------------------------------------------------------------------------

void ChromeSpanEvents(std::string* out, const SpanNode& node, int pid,
                      double offset_us, bool* first) {
  const double ts_us = node.vt_start * 1e6 + offset_us;
  const double dur_us = node.vt_seconds() * 1e6;
  AppendF(out,
          "%s{\"ph\":\"X\",\"pid\":%d,\"tid\":1,\"ts\":%.3f,\"dur\":%.3f,"
          "\"name\":\"%s\",\"args\":{\"rows_in\":%" PRIu64
          ",\"rows_out\":%" PRIu64 ",\"bytes\":%" PRIu64 ",\"seeks\":%" PRIu64
          ",\"morsels\":%" PRIu64 ",\"regions\":%" PRIu64
          ",\"net_bytes\":%" PRIu64 ",\"net_messages\":%" PRIu64 "}}",
          *first ? "" : ",\n", pid, ts_us, dur_us,
          JsonEscape(node.name).c_str(), node.rows_in, node.rows_out,
          node.bytes(), node.seeks(), node.morsels(), node.regions(),
          node.net_bytes(), node.net_messages());
  *first = false;
  // One slice per lane that accrued virtual I/O inside this span, on the
  // lane's own track. Lane slices start at the span's start; their
  // duration is the lane's accrual, i.e. the lane's contribution to the
  // span's critical path.
  const std::vector<double> lanes = node.LaneIoSeconds();
  for (size_t lane = 0; lane < lanes.size(); ++lane) {
    if (lanes[lane] <= 0.0) continue;
    AppendF(out,
            ",\n{\"ph\":\"X\",\"pid\":%d,\"tid\":%zu,\"ts\":%.3f,"
            "\"dur\":%.3f,\"name\":\"%s\",\"args\":{\"lane\":%zu}}",
            pid, lane + 2, ts_us, lanes[lane] * 1e6,
            JsonEscape(node.name).c_str(), lane);
  }
  for (const auto& child : node.children) {
    ChromeSpanEvents(out, *child, pid, offset_us, first);
  }
}

// Metadata events naming one session's process and track layout.
void ChromeTrackMeta(std::string* out, const std::string& process_name,
                     int pid, int threads, bool* first) {
  AppendF(out,
          "%s{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"%s\"}},\n",
          *first ? "" : ",\n", pid, JsonEscape(process_name).c_str());
  AppendF(out,
          "{\"ph\":\"M\",\"pid\":%d,\"tid\":1,\"name\":\"thread_name\","
          "\"args\":{\"name\":\"control (virtual clock)\"}}",
          pid);
  // One named track per lane of the session's thread budget, present even
  // when a lane accrued no I/O, so the track layout is a function of the
  // width alone.
  for (int lane = 0; lane < threads; ++lane) {
    AppendF(out,
            ",\n{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\","
            "\"args\":{\"name\":\"lane %d I/O\"}}",
            pid, lane + 2, lane);
  }
  *first = false;
}

// ---------------------------------------------------------------------------
// JSON profile
// ---------------------------------------------------------------------------

void JsonSpan(std::string* out, const SpanNode& node) {
  AppendF(out,
          "{\"name\":\"%s\",\"vt_start\":%.9f,\"vt_seconds\":%.9f,"
          "\"excl_vt_seconds\":%.9f,\"rows_in\":%" PRIu64
          ",\"rows_out\":%" PRIu64 ",\"bytes\":%" PRIu64 ",\"seeks\":%" PRIu64
          ",\"morsels\":%" PRIu64 ",\"regions\":%" PRIu64
          ",\"net_bytes\":%" PRIu64 ",\"net_messages\":%" PRIu64,
          JsonEscape(node.name).c_str(), node.vt_start, node.vt_seconds(),
          node.ExclusiveVtSeconds(), node.rows_in, node.rows_out, node.bytes(),
          node.seeks(), node.morsels(), node.regions(), node.net_bytes(),
          node.net_messages());
  const std::vector<double> lanes = node.LaneIoSeconds();
  out->append(",\"lane_io_seconds\":[");
  for (size_t i = 0; i < lanes.size(); ++i) {
    AppendF(out, "%s%.9f", i ? "," : "", lanes[i]);
  }
  out->append("],\"children\":[");
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i) out->append(",");
    JsonSpan(out, *node.children[i]);
  }
  out->append("]}");
}

void JsonMetrics(std::string* out, const MetricsRegistry::Snapshot& snap) {
  out->append("{\"counters\":{");
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    AppendF(out, "%s\"%s\":%" PRIu64, first ? "" : ",",
            JsonEscape(name).c_str(), value);
    first = false;
  }
  out->append("},\"histograms\":{");
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    AppendF(out, "%s\"%s\":{\"upper_bounds\":[", first ? "" : ",",
            JsonEscape(name).c_str());
    first = false;
    for (size_t i = 0; i < hist.upper_bounds.size(); ++i) {
      AppendF(out, "%s%" PRIu64, i ? "," : "", hist.upper_bounds[i]);
    }
    out->append("],\"counts\":[");
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      AppendF(out, "%s%" PRIu64, i ? "," : "", hist.counts[i]);
    }
    AppendF(out, "],\"total_count\":%" PRIu64 ",\"sum\":%" PRIu64 "}",
            hist.total_count, hist.sum);
  }
  out->append("}}");
}

}  // namespace

std::string TextProfile(const TraceSession& session) {
  std::string out;
  const SpanNode& root = session.root();
  const double real = session.RootRealSeconds();
  AppendF(&out, "profile: %s (threads=%d)\n", root.name.c_str(),
          session.threads());
  AppendF(&out,
          "modeled real %.6fs = cpu %.6fs + io %.6fs  "
          "(%" PRIu64 " bytes, %" PRIu64 " seeks)\n",
          real, session.cpu_seconds(), root.vt_seconds(), root.bytes(),
          root.seeks());
  AppendF(&out, "%-40s %10s %10s %7s %10s %10s %12s %6s %8s\n", "span",
          "incl(s)", "excl(s)", "%real", "rows_in", "rows_out", "bytes",
          "seeks", "morsels");
  TextRow(&out, root, 0, real);

  const MetricsRegistry::Snapshot snap = session.metrics().Snap();
  if (!snap.counters.empty() || !snap.histograms.empty()) {
    out.append("metrics:\n");
    for (const auto& [name, value] : snap.counters) {
      AppendF(&out, "  %-38s %12" PRIu64 "\n", name.c_str(), value);
    }
    for (const auto& [name, hist] : snap.histograms) {
      AppendF(&out, "  %-38s n=%" PRIu64 " sum=%" PRIu64 " buckets:",
              name.c_str(), hist.total_count, hist.sum);
      for (size_t i = 0; i < hist.counts.size(); ++i) {
        if (i < hist.upper_bounds.size()) {
          AppendF(&out, " [<=%" PRIu64 "]=%" PRIu64, hist.upper_bounds[i],
                  hist.counts[i]);
        } else {
          AppendF(&out, " [inf]=%" PRIu64, hist.counts[i]);
        }
      }
      out.append("\n");
    }
  }
  return out;
}

std::string ChromeTraceJson(const TraceSession& session) {
  std::string out;
  out.append("{\"traceEvents\":[\n");
  bool meta_first = true;
  ChromeTrackMeta(&out, "swandb", /*pid=*/1, session.threads(), &meta_first);
  out.append(",\n");
  bool first = true;
  ChromeSpanEvents(&out, session.root(), /*pid=*/1, /*offset_us=*/0.0, &first);
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

std::string ChromeTraceJsonMulti(const std::vector<SessionTrack>& tracks) {
  std::string out;
  out.append("{\"traceEvents\":[\n");
  bool first = true;
  // Deterministic label -> pid assignment in first-appearance order; the
  // process metadata is emitted once per label, sized by that label's
  // first track (later tracks of the same label reuse the pid).
  std::map<std::string, int> pids;
  int next_pid = 0;
  for (const SessionTrack& track : tracks) {
    if (track.session == nullptr) continue;
    int pid = 0;
    const auto it = pids.find(track.label);
    if (it == pids.end()) {
      pid = ++next_pid;
      pids.emplace(track.label, pid);
      ChromeTrackMeta(&out, track.label, pid, track.session->threads(), &first);
    } else {
      pid = it->second;
    }
    ChromeSpanEvents(&out, track.session->root(), pid,
                     track.ts_offset_seconds * 1e6, &first);
  }
  out.append("\n],\"displayTimeUnit\":\"ms\"}\n");
  return out;
}

std::string ProfileJson(const TraceSession& session, bool include_host_time) {
  std::string out;
  AppendF(&out, "{\"threads\":%d,\"io_seconds\":%.9f,", session.threads(),
          session.root().vt_seconds());
  if (include_host_time) {
    AppendF(&out, "\"cpu_seconds\":%.9f,\"real_seconds\":%.9f,",
            session.cpu_seconds(), session.RootRealSeconds());
  }
  out.append("\"root\":");
  JsonSpan(&out, session.root());
  out.append(",\"metrics\":");
  JsonMetrics(&out, session.metrics().Snap());
  out.append("}\n");
  return out;
}

}  // namespace swan::obs
