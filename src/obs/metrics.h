#ifndef SWANDB_OBS_METRICS_H_
#define SWANDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace swan::obs {

// Named monotonic counter. Atomic so ParallelFor chunk bodies may bump it
// concurrently; because addition is commutative the final value is
// independent of chunk interleaving, which keeps snapshots deterministic.
class Counter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Fixed-bucket histogram: `upper_bounds` (ascending, inclusive) plus an
// implicit overflow bucket. Observe is atomic and order-independent, so
// concurrent observations from chunk bodies produce the same snapshot at
// every thread count.
class Histogram {
 public:
  explicit Histogram(std::vector<uint64_t> upper_bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value);

  struct Snapshot {
    std::vector<uint64_t> upper_bounds;  // ascending; counts has one extra
    std::vector<uint64_t> counts;        // per bucket + trailing overflow
    uint64_t total_count = 0;
    uint64_t sum = 0;
  };
  Snapshot Snap() const;

 private:
  std::vector<uint64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Per-session registry of named counters and histograms. Lookup is
// mutex-guarded (operators cache the returned pointer for a query);
// returned pointers stay valid for the registry's lifetime. Snapshots
// iterate in name order so exports are deterministic.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name) SWAN_EXCLUDES(mutex_);

  // Creates the histogram with `upper_bounds` on first use; later calls
  // with the same name ignore the bounds argument.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<uint64_t> upper_bounds)
      SWAN_EXCLUDES(mutex_);

  struct Snapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, Histogram::Snapshot> histograms;
  };
  Snapshot Snap() const SWAN_EXCLUDES(mutex_);

 private:
  // Leaf of the lock-rank hierarchy: registries are looked up under every
  // other subsystem's locks (serve scheduler, turnstile) and acquire
  // nothing themselves.
  mutable Mutex mutex_{LockRank::kMetrics, "obs.metrics"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SWAN_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SWAN_GUARDED_BY(mutex_);
};

}  // namespace swan::obs

#endif  // SWANDB_OBS_METRICS_H_
