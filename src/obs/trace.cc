#include "obs/trace.h"

#include "common/macros.h"
#include "exec/thread_pool.h"

namespace swan::obs {

std::vector<double> SpanNode::LaneIoSeconds() const {
  std::vector<double> lanes;
  lanes.resize(close.lane_seconds.size(), 0.0);
  for (size_t i = 0; i < lanes.size(); ++i) {
    const double before =
        i < open.lane_seconds.size() ? open.lane_seconds[i] : 0.0;
    lanes[i] = close.lane_seconds[i] - before;
  }
  while (!lanes.empty() && lanes.back() == 0.0) lanes.pop_back();
  return lanes;
}

double SpanNode::ExclusiveVtSeconds() const {
  double inclusive = vt_seconds();
  for (const auto& child : children) inclusive -= child->vt_seconds();
  return inclusive;
}

TraceSession::TraceSession(std::string root_name, TraceSources sources,
                           int threads)
    : owner_(std::this_thread::get_id()),
      sources_(std::move(sources)),
      threads_(threads < 1 ? 1 : threads) {
  root_.name = std::move(root_name);
  // All span timestamps are relative to the session's start: the virtual
  // clock accrues monotonically across queries, but a profile describes
  // one execution, and a byte-reproducible one must not depend on how
  // much I/O earlier queries happened to do.
  t0_ = sources_.now ? sources_.now() : 0.0;
  root_.vt_start = Now();
  root_.open = Sample();
  current_ = &root_;
}

void TraceSession::Finish(double cpu_seconds) {
  SWAN_CHECK_MSG(OnOwnerThread(), "TraceSession::Finish off the owner thread");
  SWAN_CHECK_MSG(!finished_, "TraceSession::Finish called twice");
  SWAN_CHECK_MSG(current_ == &root_,
                 "TraceSession::Finish with spans still open");
  root_.vt_end = Now();
  root_.close = Sample();
  cpu_seconds_ = cpu_seconds;
  finished_ = true;
}

double TraceSession::Now() const {
  return (sources_.now ? sources_.now() : 0.0) - t0_;
}

CounterSample TraceSession::Sample() const {
  return sources_.sample ? sources_.sample() : CounterSample{};
}

SpanNode* TraceSession::OpenSpan(std::string_view name) {
  auto node = std::make_unique<SpanNode>();
  node->name.assign(name.data(), name.size());
  node->parent = current_;
  node->vt_start = Now();
  node->open = Sample();
  SpanNode* raw = node.get();
  current_->children.push_back(std::move(node));
  current_ = raw;
  return raw;
}

void TraceSession::CloseSpan(SpanNode* node) {
  // Spans are strictly nested (RAII) on the owner thread.
  SWAN_CHECK_MSG(node == current_, "span closed out of LIFO order");
  node->vt_end = Now();
  node->close = Sample();
  current_ = node->parent;
}

void Span::Init(TraceSession* session, std::string_view name) {
  if (session->finished()) return;
  // No spans from worker threads, and none on the owner thread while one
  // of its ParallelFor calls is in flight — region boundaries are the
  // same at every width, so the tree shape is width-invariant.
  if (exec::InParallelRegion()) return;
  if (!session->OnOwnerThread()) return;
  session_ = session;
  node_ = session->OpenSpan(name);
}

}  // namespace swan::obs
