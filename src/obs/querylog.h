#ifndef SWANDB_OBS_QUERYLOG_H_
#define SWANDB_OBS_QUERYLOG_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace swan::obs {

// The structured query log: one record per executed request, the fleet
// counterpart of the per-query span tree. Records split into two
// surfaces, exactly like obs::ProfileJson:
//
//   * the deterministic surface — everything derived from the virtual
//     clock, the operator counters and the scheduler (vt_* times, queue
//     wait, modeled latency, bytes, seeks, cardinalities, cache state) —
//     is a pure function of the submitted workload and each session's
//     thread budget, so the JSONL export with include_host_time=false is
//     byte-identical at any worker count;
//   * the host surface (cpu_seconds, service_seconds) carries the
//     host-measured modeled-CPU figure and is included only on request.
//
// Appends happen under the owner's synchronization (the serve turnstile,
// or the single-threaded shell/bench loop); obs::Telemetry provides the
// locked bundle.

// FNV-1a 64-bit hash of the canonical query text — the log's stable query
// identity (two lexical variants of one query share a hash because the
// caller hashes the *canonical* text).
uint64_t Fnv1a64(std::string_view text);

// One operator of the executed physical plan: the planner's estimated
// output cardinality next to the actual rows the span produced. `op` is
// the span name with the planner's " est=N" suffix stripped.
struct QueryLogOp {
  std::string op;
  uint64_t est = 0;
  uint64_t actual = 0;
};

struct QueryLogRecord {
  // --- identity -----------------------------------------------------------
  uint64_t seq = 0;            // dispatch index (serve) / statement index
  std::string session;         // session id, or "shell" / "bench"
  std::string kind;            // "bench" | "sparql" | "insert" | "delete"
  uint64_t text_hash = 0;      // Fnv1a64 of the canonical text
  std::string text;            // canonical text (possibly truncated)
  std::string backend;         // executing backend's name
  std::string plan_mode;       // planner mode note ("" when not planned)
  // --- outcome ------------------------------------------------------------
  bool ok = true;
  std::string error;           // status message when !ok
  bool cache_hit = false;
  uint64_t snapshot_version = 0;
  uint64_t rows = 0;
  // --- deterministic timing (virtual clock, relative to the epoch) -------
  double vt_start = 0.0;       // execution start
  double vt_finish = 0.0;      // execution finish
  double queue_wait_seconds = 0.0;  // admission-to-execution wait
  uint64_t queue_depth = 0;    // admitted-but-undispatched at dispatch
  double io_seconds = 0.0;     // virtual disk time of this execution
  // Deterministic modeled latency: io + fixed handling overhead (a cache
  // hit or write pays overhead only). Windowed percentiles observe this.
  double latency_seconds = 0.0;
  // --- deterministic cost counters ---------------------------------------
  uint64_t bytes_read = 0;     // cold bytes pulled from the simulated disk
  uint64_t seeks = 0;
  uint64_t match_calls = 0;
  uint64_t morsels = 0;
  uint64_t bgp_batches = 0;
  uint64_t star_gathers = 0;
  // --- scale-out dimension (all zero on a single-node store) --------------
  int node = 0;                // coordinator node this query gathered at
  int nodes = 1;               // topology size of the executing store
  uint64_t net_bytes = 0;      // modeled inter-node bytes of this execution
  uint64_t net_messages = 0;   // modeled inter-node messages
  double net_seconds = 0.0;    // modeled network time (inside io_seconds'
                               // virtual-clock discipline, not added to it)
  // --- per-session cache visibility (cumulative at record time) ----------
  uint64_t session_cache_hits = 0;
  uint64_t session_cache_misses = 0;
  uint64_t session_cache_evictions = 0;
  // --- per-operator estimated vs actual cardinalities --------------------
  std::vector<QueryLogOp> ops;
  // --- host surface (excluded from the byte-reproducible export) ---------
  double cpu_seconds = 0.0;      // modeled critical-path CPU (host-measured)
  double service_seconds = 0.0;  // cpu + io + overhead
};

// Splits a planner-annotated span name ("merge-join p=... est=120") into
// the bare operator name and the estimate; returns false when the name
// carries no estimate suffix.
bool SplitEstimatedName(std::string_view name, std::string* op,
                        uint64_t* est);

// Walks a finished session's span tree collecting every span that carries
// a planner estimate, in tree (pre-)order — the record's ops column.
std::vector<QueryLogOp> CollectEstimatedOps(const SpanNode& root);

// One record as a single JSON line (no trailing newline). Fixed numeric
// formatting; text_hash is emitted as a 16-digit hex string so consumers
// never round a uint64 through a double.
std::string QueryLogRecordJson(const QueryLogRecord& record,
                               bool include_host_time);

// The whole log as JSON lines, one record per line, trailing newline.
std::string QueryLogJsonl(const std::vector<QueryLogRecord>& records,
                          bool include_host_time);

}  // namespace swan::obs

#endif  // SWANDB_OBS_QUERYLOG_H_
