#include "exec/thread_pool.h"

#include <time.h>

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <memory>
#include <thread>

#include "common/macros.h"
#include "common/mutex.h"

namespace swan::exec {

namespace {

thread_local TaskContext* g_current_task = nullptr;
thread_local int g_region_depth = 0;

// Marks the calling thread as inside a ParallelFor for the duration of
// the call, inline or fanned out (exception-safe).
struct RegionDepthGuard {
  RegionDepthGuard() { ++g_region_depth; }
  ~RegionDepthGuard() { --g_region_depth; }
};

double ThreadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

// Lane CPU ledger. Lanes only accumulate; readers snapshot before/after a
// measured region and diff.
Mutex g_lane_mutex(LockRank::kExecLane, "exec.lane-cpu");
std::vector<double> g_lane_cpu SWAN_GUARDED_BY(g_lane_mutex);  // NOLINT(runtime/global)

void AddLaneCpu(int lane, double seconds) {
  MutexLock lock(&g_lane_mutex);
  if (g_lane_cpu.size() <= static_cast<size_t>(lane)) {
    g_lane_cpu.resize(static_cast<size_t>(lane) + 1, 0.0);
  }
  g_lane_cpu[static_cast<size_t>(lane)] += seconds;
}

// One ParallelFor invocation: chunks self-schedule off an atomic cursor
// (morsel-at-a-time), which is the work distribution; the pool's deques
// and stealing below keep the *runner* tasks spread across workers.
struct Batch {
  uint64_t n = 0;
  uint64_t grain = 1;
  uint64_t chunks = 0;
  int threads = 1;
  const std::function<void(uint64_t, uint64_t, uint64_t)>* body = nullptr;

  std::atomic<uint64_t> next{0};
  std::atomic<bool> failed{false};

  Mutex mutex{LockRank::kExecBatch, "exec.batch"};
  CondVar done_cv;
  uint64_t done SWAN_GUARDED_BY(mutex) = 0;
  std::exception_ptr exception SWAN_GUARDED_BY(mutex);

  void RunChunks() {
    for (;;) {
      const uint64_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks) return;
      if (!failed.load(std::memory_order_acquire)) {
        const uint64_t begin = c * grain;
        const uint64_t end = begin + grain < n ? begin + grain : n;
        TaskContext ctx;
        ctx.lane = static_cast<int>(c % static_cast<uint64_t>(threads));
        TaskContext* const prev = g_current_task;
        g_current_task = &ctx;
        const double cpu_before = ThreadCpuSeconds();
        try {
          (*body)(begin, end, c);
        } catch (...) {
          MutexLock lock(&mutex);
          if (exception == nullptr) exception = std::current_exception();
          failed.store(true, std::memory_order_release);
        }
        AddLaneCpu(ctx.lane, ThreadCpuSeconds() - cpu_before);
        g_current_task = prev;
      }
      MutexLock lock(&mutex);
      if (++done == chunks) done_cv.NotifyAll();
    }
  }
};

// Work-stealing pool: each worker owns a deque, pops its own front (LIFO
// locality) and steals from other workers' backs when empty. Submitted
// tasks are runner loops over a Batch, so stealing spreads runners and the
// atomic cursor balances morsels within a batch.
class ThreadPool {
 public:
  explicit ThreadPool(int workers) : queues_(static_cast<size_t>(workers)) {
    for (auto& q : queues_) q = std::make_unique<WorkerQueue>();
    threads_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  ~ThreadPool() {
    {
      MutexLock lock(&wake_mutex_);
      stop_ = true;
    }
    wake_cv_.NotifyAll();
    for (auto& t : threads_) t.join();
  }

  int worker_count() const { return static_cast<int>(threads_.size()); }

  void Submit(std::function<void()> task) {
    const size_t target = submit_cursor_.fetch_add(1, std::memory_order_relaxed) %
                          queues_.size();
    {
      MutexLock lock(&queues_[target]->mutex);
      queues_[target]->tasks.push_back(std::move(task));
    }
    pending_.fetch_add(1, std::memory_order_release);
    wake_cv_.NotifyAll();
  }

 private:
  struct WorkerQueue {
    Mutex mutex{LockRank::kExecQueue, "exec.worker-queue"};
    std::deque<std::function<void()>> tasks SWAN_GUARDED_BY(mutex);
  };

  bool TryRunOne(size_t self) {
    std::function<void()> task;
    // Own queue first (front = most recently submitted share), then steal
    // from the other queues' backs.
    for (size_t k = 0; k < queues_.size(); ++k) {
      const size_t idx = (self + k) % queues_.size();
      WorkerQueue& q = *queues_[idx];
      MutexLock lock(&q.mutex);
      if (q.tasks.empty()) continue;
      if (k == 0) {
        task = std::move(q.tasks.front());
        q.tasks.pop_front();
      } else {
        task = std::move(q.tasks.back());
        q.tasks.pop_back();
      }
      break;
    }
    if (task == nullptr) return false;
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    task();
    return true;
  }

  void WorkerLoop(int self) {
    const size_t idx = static_cast<size_t>(self);
    for (;;) {
      if (TryRunOne(idx)) continue;
      MutexLock lock(&wake_mutex_);
      while (!stop_ && pending_.load(std::memory_order_acquire) == 0) {
        wake_cv_.Wait(lock);
      }
      if (stop_) break;
    }
    // Drain anything still queued so no submitted task is dropped.
    while (TryRunOne(idx)) {
    }
  }

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  Mutex wake_mutex_{LockRank::kExecWake, "exec.pool-wake"};
  CondVar wake_cv_;
  std::atomic<size_t> submit_cursor_{0};
  std::atomic<int> pending_{0};
  bool stop_ SWAN_GUARDED_BY(wake_mutex_) = false;
};

Mutex g_pool_mutex(LockRank::kExecPoolRegistry, "exec.pool-registry");
std::unique_ptr<ThreadPool> g_pool SWAN_GUARDED_BY(g_pool_mutex);  // NOLINT(runtime/global)
std::atomic<int> g_threads{1};

ThreadPool* GlobalPool() {
  MutexLock lock(&g_pool_mutex);
  return g_pool.get();
}

}  // namespace

TaskContext* CurrentTask() { return g_current_task; }

bool InParallelRegion() {
  return g_region_depth > 0 || g_current_task != nullptr;
}

void SetThreads(int n) {
  if (n < 1) n = 1;
  SWAN_CHECK_MSG(g_current_task == nullptr,
                 "SetThreads inside a ParallelFor chunk");
  MutexLock lock(&g_pool_mutex);
  if (n == g_threads.load(std::memory_order_relaxed)) return;
  g_pool.reset();  // joins the old workers
  if (n > 1) g_pool = std::make_unique<ThreadPool>(n - 1);
  g_threads.store(n, std::memory_order_relaxed);
}

int Threads() { return g_threads.load(std::memory_order_relaxed); }

int HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(uint64_t n, uint64_t grain,
                 const std::function<void(uint64_t, uint64_t, uint64_t)>& body) {
  ParallelForWidth(n, grain, Threads(), body);
}

void ParallelForWidth(uint64_t n, uint64_t grain, int width,
                      const std::function<void(uint64_t, uint64_t, uint64_t)>&
                          body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const RegionDepthGuard region_guard;
  const uint64_t chunks = (n + grain - 1) / grain;
  const int threads = std::min(width, Threads());
  if (threads <= 1 || chunks <= 1 || g_current_task != nullptr) {
    // Inline path: sequential, in the caller's (possibly null) task
    // context. At --threads=1 this is byte-for-byte the serial engine.
    for (uint64_t c = 0; c < chunks; ++c) {
      const uint64_t begin = c * grain;
      const uint64_t end = begin + grain < n ? begin + grain : n;
      body(begin, end, c);
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->grain = grain;
  batch->chunks = chunks;
  batch->threads = threads;
  batch->body = &body;

  ThreadPool* pool = GlobalPool();
  SWAN_CHECK(pool != nullptr);
  const uint64_t runners = std::min<uint64_t>(
      {static_cast<uint64_t>(pool->worker_count()),
       static_cast<uint64_t>(threads - 1), chunks - 1});
  for (uint64_t r = 0; r < runners; ++r) {
    pool->Submit([batch] { batch->RunChunks(); });
  }
  batch->RunChunks();  // the caller is executor number `threads`

  MutexLock lock(&batch->mutex);
  while (batch->done != batch->chunks) batch->done_cv.Wait(lock);
  if (batch->exception != nullptr) std::rethrow_exception(batch->exception);
}

uint64_t ShardsFor(uint64_t n, uint64_t min_items_per_shard) {
  return ShardsForWidth(n, min_items_per_shard, Threads());
}

uint64_t ShardsForWidth(uint64_t n, uint64_t min_items_per_shard, int width) {
  const uint64_t threads =
      static_cast<uint64_t>(std::min(width, Threads()));
  if (threads <= 1 || min_items_per_shard == 0) return 1;
  const uint64_t by_size = n / min_items_per_shard;
  return std::max<uint64_t>(1, std::min(threads, by_size));
}

std::vector<double> LaneCpuSnapshot() {
  MutexLock lock(&g_lane_mutex);
  return g_lane_cpu;
}

double ModeledCpuSeconds(const std::vector<double>& lanes_before,
                         const std::vector<double>& lanes_after,
                         double user_seconds) {
  double lane_sum = 0.0;
  double lane_max = 0.0;
  for (size_t i = 0; i < lanes_after.size(); ++i) {
    const double before = i < lanes_before.size() ? lanes_before[i] : 0.0;
    const double delta = lanes_after[i] - before;
    lane_sum += delta;
    lane_max = std::max(lane_max, delta);
  }
  return std::max(user_seconds - lane_sum + lane_max, lane_max);
}

}  // namespace swan::exec
