#ifndef SWANDB_EXEC_EXEC_CONTEXT_H_
#define SWANDB_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <functional>

namespace swan::obs {
class TraceSession;
}  // namespace swan::obs

namespace swan::exec {

// Per-query operator/cost counters, accumulated by every layer an
// ExecContext flows through. Atomic because ParallelFor chunks bump them
// concurrently; reads are only meaningful at quiescent points (before /
// after a query), which is how the benches and tests use them.
struct OpCounters {
  std::atomic<uint64_t> parallel_regions{0};  // ParallelFor calls that fanned out
  std::atomic<uint64_t> morsels{0};           // chunks executed across regions
  std::atomic<uint64_t> merge_join_partitions{0};  // key-range join partitions
  std::atomic<uint64_t> match_calls{0};       // Backend::Match invocations
  std::atomic<uint64_t> bgp_batches{0};       // parallel binding-extension batches
  std::atomic<uint64_t> star_gathers{0};      // same-subject star joins gathered
  // Disk-cost snapshots, accumulated by the harness from the simulated
  // disk's deltas around each measured run (the disk itself never writes
  // here), so scheduler counters and I/O cost report side by side.
  std::atomic<uint64_t> bytes_read{0};        // simulated-disk bytes
  std::atomic<uint64_t> seeks{0};             // simulated-disk seeks
  // Modeled-network cost (scale-out topologies only; zero on one node).
  // Charged by net::NetworkModel::Ship via the routing layer.
  std::atomic<uint64_t> net_bytes{0};         // bytes shipped between nodes
  std::atomic<uint64_t> net_messages{0};      // inter-node messages

  // Plain-value copy for reporting.
  struct Snapshot {
    uint64_t parallel_regions = 0;
    uint64_t morsels = 0;
    uint64_t merge_join_partitions = 0;
    uint64_t match_calls = 0;
    uint64_t bgp_batches = 0;
    uint64_t star_gathers = 0;
    uint64_t bytes_read = 0;
    uint64_t seeks = 0;
    uint64_t net_bytes = 0;
    uint64_t net_messages = 0;
  };
  Snapshot Snap() const {
    Snapshot s;
    s.parallel_regions = parallel_regions.load(std::memory_order_relaxed);
    s.morsels = morsels.load(std::memory_order_relaxed);
    s.merge_join_partitions =
        merge_join_partitions.load(std::memory_order_relaxed);
    s.match_calls = match_calls.load(std::memory_order_relaxed);
    s.bgp_batches = bgp_batches.load(std::memory_order_relaxed);
    s.star_gathers = star_gathers.load(std::memory_order_relaxed);
    s.bytes_read = bytes_read.load(std::memory_order_relaxed);
    s.seeks = seeks.load(std::memory_order_relaxed);
    s.net_bytes = net_bytes.load(std::memory_order_relaxed);
    s.net_messages = net_messages.load(std::memory_order_relaxed);
    return s;
  }
  void Reset() {
    parallel_regions.store(0, std::memory_order_relaxed);
    morsels.store(0, std::memory_order_relaxed);
    merge_join_partitions.store(0, std::memory_order_relaxed);
    match_calls.store(0, std::memory_order_relaxed);
    bgp_batches.store(0, std::memory_order_relaxed);
    star_gathers.store(0, std::memory_order_relaxed);
    bytes_read.store(0, std::memory_order_relaxed);
    seeks.store(0, std::memory_order_relaxed);
    net_bytes.store(0, std::memory_order_relaxed);
    net_messages.store(0, std::memory_order_relaxed);
  }
};

// The execution context of one query: an explicit handle on the scheduler
// carrying the thread budget and the per-query operator counters. Every
// layer below the API boundary (storage lane accrual excepted, which rides
// the per-chunk TaskContext) receives the context as a parameter instead
// of reading global execution state — `exec::Threads()` is read in exactly
// two places, both inside src/exec: the default constructor here and the
// scheduler that caps the effective width at the pool size.
//
// The default-constructed context snapshots the globally configured width,
// so code built before the refactor behaves identically; an explicit
// ExecContext(n) narrows (never widens past the pool) the fan-out of
// everything it is passed to. ExecContext(1) is the serial engine: every
// ParallelFor it issues runs inline on the calling thread, bit-identical
// to the pre-parallel code paths.
//
// Deterministic accounting carries over from the global scheduler: chunk
// c of a region runs on lane c % threads() no matter which OS thread the
// work-stealing pool lands it on, so modeled cost (CPU + simulated disk)
// is a function of the context, not the host.
class ExecContext {
 public:
  // Width = the globally configured exec::SetThreads value.
  ExecContext();
  // Explicit thread budget (clamped to >= 1). The effective fan-out of a
  // region is min(threads, configured pool width).
  explicit ExecContext(int threads);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  int threads() const { return threads_; }
  bool parallel() const { return threads_ > 1; }

  // Morsel scheduler bound to this context: identical contract to
  // exec::ParallelFor, with the fan-out width capped at threads().
  void ParallelFor(uint64_t n, uint64_t grain,
                   const std::function<void(uint64_t begin, uint64_t end,
                                            uint64_t chunk)>& body) const;

  // Shard count for per-shard partial aggregation under this context's
  // budget: threads() when n is worth splitting, else 1.
  uint64_t ShardsFor(uint64_t n, uint64_t min_items_per_shard) const;

  OpCounters& counters() const { return counters_; }

  // The trace session observing this query, or nullptr (the default: all
  // tracing code is a null check). exec only stores the pointer — the
  // profiling glue (core::ScopedProfile) owns the session and attaches /
  // detaches it at quiescent points, never while a ParallelFor issued
  // from this context is in flight. Mutable for the same reason as the
  // counters: observation state, not execution semantics.
  obs::TraceSession* trace() const { return trace_; }
  void AttachTrace(obs::TraceSession* session) const { trace_ = session; }

 private:
  int threads_ = 1;
  mutable OpCounters counters_;
  mutable obs::TraceSession* trace_ = nullptr;
};

}  // namespace swan::exec

#endif  // SWANDB_EXEC_EXEC_CONTEXT_H_
