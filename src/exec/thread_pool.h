#ifndef SWANDB_EXEC_THREAD_POOL_H_
#define SWANDB_EXEC_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace swan::exec {

// Execution context of one morsel (chunk) of a ParallelFor. Tasks are the
// deterministic unit of parallel work: chunk c of a region run at T
// configured threads always executes on lane c % T, no matter which OS
// thread the work-stealing scheduler lands it on. Cost accounting (CPU
// below, simulated-disk I/O in storage::SimulatedDisk) is keyed by lane,
// which keeps modeled "real time" deterministic under stealing.
struct TaskContext {
  int lane = 0;

  // Per-task simulated-disk stream state. Each task is its own logical
  // I/O stream: its first read pays a seek and contiguity is judged only
  // against the task's own previous read, so accrual never depends on how
  // tasks interleave. storage::SimulatedDisk owns the semantics; the
  // fields live here so storage needs no thread-local machinery of its
  // own. Plain integers to keep exec independent of storage types.
  bool io_has_last = false;
  uint64_t io_last_file = 0;
  uint64_t io_last_page = 0;
  uint32_t io_run_length = 0;
};

// The calling thread's task context, or nullptr outside a ParallelFor
// chunk. Serial code paths (including everything at --threads=1) see
// nullptr and behave exactly as the pre-parallel engine did.
TaskContext* CurrentTask();

// True while the calling thread is executing inside a ParallelFor: either
// in a chunk body (any thread), or on the thread that issued a ParallelFor
// that is still in flight — including the inline serial path, so the
// answer is a function of the call structure, not of the thread budget.
// The tracing layer uses this to keep span trees width-invariant.
bool InParallelRegion();

// ---------------------------------------------------------------------------
// Global parallelism knob
// ---------------------------------------------------------------------------

// Sets the execution width: the caller plus n-1 pool workers. n <= 1
// tears the pool down and makes every ParallelFor run inline — the
// bit-identical single-threaded mode all paper-reproduction benches
// default to. Must not be called while a ParallelFor is in flight.
void SetThreads(int n);

// Currently configured width (>= 1).
int Threads();

// std::thread::hardware_concurrency with a floor of 1.
int HardwareConcurrency();

// ---------------------------------------------------------------------------
// Morsel scheduler
// ---------------------------------------------------------------------------

// Splits [0, n) into chunks of `grain` indices and runs
// body(begin, end, chunk) for every chunk. Blocks until all chunks have
// finished. Chunks self-schedule across the pool (the caller participates),
// so skew between chunks load-balances; `chunk` indexes chunks in range
// order, letting callers concatenate per-chunk results deterministically.
//
// Runs inline — sequentially, on the calling thread, with no TaskContext —
// when Threads() <= 1 or there is only one chunk. A nested call from
// inside a chunk also runs inline (in the enclosing task's context), so
// composed kernels need no re-entrancy guards.
//
// The first exception thrown by a body is rethrown here after all chunks
// have drained; remaining chunks are skipped once a failure is recorded.
void ParallelFor(uint64_t n, uint64_t grain,
                 const std::function<void(uint64_t begin, uint64_t end,
                                          uint64_t chunk)>& body);

// As ParallelFor, but with an explicit width: the region fans out over
// min(width, Threads()) lanes (chunk c -> lane c % effective width), so a
// narrower ExecContext is honored without resizing the pool. width <= 1
// is the inline serial path regardless of the pool size.
void ParallelForWidth(uint64_t n, uint64_t grain, int width,
                      const std::function<void(uint64_t begin, uint64_t end,
                                               uint64_t chunk)>& body);

// Convenience: number of contiguous shards a size-n input should be split
// into for per-shard partial aggregation — Threads() when n is worth
// parallelizing, else 1.
uint64_t ShardsFor(uint64_t n, uint64_t min_items_per_shard);

// As ShardsFor with an explicit width budget (capped at Threads()).
uint64_t ShardsForWidth(uint64_t n, uint64_t min_items_per_shard, int width);

// ---------------------------------------------------------------------------
// Lane CPU accounting
// ---------------------------------------------------------------------------

// Cumulative CPU seconds charged per lane by finished chunks (thread CPU
// clock, summed into the chunk's lane). The bench harness snapshots this
// around a query and models parallel wall cost as max-over-lanes, mirroring
// the simulated disk's per-lane virtual I/O accrual.
std::vector<double> LaneCpuSnapshot();

// Models the parallel CPU cost of a region bracketed by two
// LaneCpuSnapshot calls: CPU spent inside ParallelFor chunks progresses
// as its slowest lane (max over per-lane deltas) while the serial rest of
// `user_seconds` runs start to finish. With no parallel work both lane
// terms are zero and the result is user_seconds. Shared by the bench
// harness and the profiling layer so both report the same figure.
double ModeledCpuSeconds(const std::vector<double>& lanes_before,
                         const std::vector<double>& lanes_after,
                         double user_seconds);

}  // namespace swan::exec

#endif  // SWANDB_EXEC_THREAD_POOL_H_
