#include "exec/exec_context.h"

#include "exec/thread_pool.h"

namespace swan::exec {

ExecContext::ExecContext() : threads_(Threads()) {}

ExecContext::ExecContext(int threads) : threads_(threads < 1 ? 1 : threads) {}

void ExecContext::ParallelFor(
    uint64_t n, uint64_t grain,
    const std::function<void(uint64_t, uint64_t, uint64_t)>& body) const {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (threads_ > 1) {
    const uint64_t chunks = (n + grain - 1) / grain;
    if (chunks > 1) {
      counters_.parallel_regions.fetch_add(1, std::memory_order_relaxed);
      counters_.morsels.fetch_add(chunks, std::memory_order_relaxed);
    }
  }
  ParallelForWidth(n, grain, threads_, body);
}

uint64_t ExecContext::ShardsFor(uint64_t n,
                                uint64_t min_items_per_shard) const {
  return ShardsForWidth(n, min_items_per_shard, threads_);
}

}  // namespace swan::exec
