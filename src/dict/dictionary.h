#ifndef SWANDB_DICT_DICTIONARY_H_
#define SWANDB_DICT_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "audit/audit.h"

namespace swan::dict {

// Bidirectional mapping between RDF terms (URIs and literals) and dense
// uint64 ids. All query processing in swandb operates on ids; strings are
// touched only at load time and when decoding results — the paper's
// "actual queries use integer predicates, since all strings are encoded on
// a dictionary structure" (Appendix).
//
// Ids are dense and assigned in interning order starting at 0, which lets
// downstream code use them directly as array indices.
class Dictionary {
 public:
  Dictionary() = default;

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  // Returns the id for `term`, interning it if new.
  uint64_t Intern(std::string_view term);

  // Returns the id for `term` if present.
  std::optional<uint64_t> Find(std::string_view term) const;

  // Returns the term for an id previously returned by Intern().
  std::string_view Lookup(uint64_t id) const;

  uint64_t size() const { return static_cast<uint64_t>(terms_.size()); }

  // Total bytes of stored term text (Table 1 sizing).
  uint64_t TotalStringBytes() const { return total_string_bytes_; }

  // Audit walker. Verifies the id<->term bijection: every indexed term
  // round-trips through its id, the id space is dense ([0, size())), and
  // the string-byte accounting matches the stored terms.
  void AuditInto(audit::AuditLevel level, audit::AuditReport* report) const;

  // Corruption seeding for the auditor tests: repoints `term`'s index
  // entry at `id`, silently breaking the bijection.
  void TestOnlyCorruptId(std::string_view term, uint64_t id);

 private:
  // deque keeps string storage stable so string_views into it never dangle.
  std::deque<std::string> terms_;
  std::unordered_map<std::string_view, uint64_t> index_;
  uint64_t total_string_bytes_ = 0;
};

}  // namespace swan::dict

#endif  // SWANDB_DICT_DICTIONARY_H_
