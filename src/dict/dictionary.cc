#include "dict/dictionary.h"

#include "common/macros.h"

namespace swan::dict {

uint64_t Dictionary::Intern(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  const uint64_t id = static_cast<uint64_t>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(std::string_view(terms_.back()), id);
  total_string_bytes_ += term.size();
  return id;
}

std::optional<uint64_t> Dictionary::Find(std::string_view term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string_view Dictionary::Lookup(uint64_t id) const {
  SWAN_CHECK_MSG(id < terms_.size(), "dictionary id out of range");
  return terms_[static_cast<size_t>(id)];
}

void Dictionary::AuditInto(audit::AuditLevel level,
                           audit::AuditReport* report) const {
  if (index_.size() != terms_.size()) {
    report->Add(audit::FindingClass::kDictionary, "dictionary",
                "index has " + std::to_string(index_.size()) +
                    " entries, term store has " +
                    std::to_string(terms_.size()) +
                    " (duplicate or missing ids)");
  }
  if (level == audit::AuditLevel::kQuick) return;
  int findings = 0;
  uint64_t string_bytes = 0;
  for (const auto& [term, id] : index_) {
    if (id >= terms_.size()) {
      report->Add(audit::FindingClass::kDictionary, "dictionary",
                  "term maps to id " + std::to_string(id) +
                      " outside the dense id space [0, " +
                      std::to_string(terms_.size()) + ")");
      if (++findings >= 4) break;
      continue;
    }
    if (terms_[static_cast<size_t>(id)] != term) {
      report->Add(audit::FindingClass::kDictionary, "dictionary",
                  "id " + std::to_string(id) +
                      " does not round-trip to its indexed term (bijection "
                      "broken)");
      if (++findings >= 4) break;
    }
  }
  for (const std::string& term : terms_) string_bytes += term.size();
  if (string_bytes != total_string_bytes_) {
    report->Add(audit::FindingClass::kDictionary, "dictionary",
                "string-byte accounting says " +
                    std::to_string(total_string_bytes_) + ", stored terms sum "
                    "to " + std::to_string(string_bytes));
  }
}

void Dictionary::TestOnlyCorruptId(std::string_view term, uint64_t id) {
  auto it = index_.find(term);
  SWAN_CHECK_MSG(it != index_.end(), "TestOnlyCorruptId: unknown term");
  it->second = id;
}

}  // namespace swan::dict
