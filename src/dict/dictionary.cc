#include "dict/dictionary.h"

#include "common/macros.h"

namespace swan::dict {

uint64_t Dictionary::Intern(std::string_view term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  const uint64_t id = static_cast<uint64_t>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(std::string_view(terms_.back()), id);
  total_string_bytes_ += term.size();
  return id;
}

std::optional<uint64_t> Dictionary::Find(std::string_view term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string_view Dictionary::Lookup(uint64_t id) const {
  SWAN_CHECK_MSG(id < terms_.size(), "dictionary id out of range");
  return terms_[static_cast<size_t>(id)];
}

}  // namespace swan::dict
