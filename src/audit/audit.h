#ifndef SWANDB_AUDIT_AUDIT_H_
#define SWANDB_AUDIT_AUDIT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace swan::audit {

// How deep an audit walks. The levels are cumulative: everything kQuick
// verifies is also verified at kFull.
enum class AuditLevel {
  // Metadata-only: counters, map/list agreement, pin accounting. No page
  // reads, so it is cheap enough to run between mutation batches.
  kQuick = 0,
  // Structural walk of every page: checksums, key ordering within and
  // across nodes, leaf chains, sortedness, dictionary bijection. Reads
  // every page of the audited structures (and therefore warms caches);
  // intended for quiescent points — after a load, between benchmark
  // phases, or on demand from the shell's `audit` command.
  kFull = 1,
};

// What kind of invariant a finding violates. One corruption usually
// surfaces as exactly one class (a byte-flipped page is kChecksum; a
// logically unsorted but correctly-checksummed column is kColumn).
enum class FindingClass {
  kChecksum,    // stored page bytes disagree with their checksum
  kBPlusTree,   // node ordering, separators, leaf chain, fill, size
  kColumn,      // sortedness, declared size, id range, cache/disk skew
  kDictionary,  // id<->term bijection, dense id space, byte accounting
  kBufferPool,  // pin leaks, frame/page-table disagreement, LRU, capacity
  kCache,       // result-cache accounting: LRU/byte budget, stale snapshots
  kStructure,   // anything engine-specific above the previous layers
};

const char* ToString(FindingClass cls);
const char* ToString(AuditLevel level);

// One detected invariant violation.
struct AuditFinding {
  FindingClass cls;
  std::string object;  // which structure, e.g. "bplustree(file 2)"
  std::string detail;  // what is wrong, with the offending values

  std::string ToString() const;
};

// The result of auditing one structure (or a whole backend: reports
// compose with Merge). Empty == the structure satisfies every invariant
// the walker knows about.
class AuditReport {
 public:
  void Add(FindingClass cls, std::string object, std::string detail);
  void Merge(AuditReport other);

  [[nodiscard]] bool ok() const { return findings_.empty(); }
  const std::vector<AuditFinding>& findings() const { return findings_; }
  size_t CountClass(FindingClass cls) const;

  // Multi-line human-readable rendering ("audit clean" when ok()).
  std::string ToString() const;

 private:
  std::vector<AuditFinding> findings_;
};

// Uniform entry point — `audit::Audit(x, level)` works for any structure
// exposing the AuditInto(level, report) walker convention (B+trees,
// columns, tables, dictionary, buffer pool, simulated disk, backends).
template <typename T>
AuditReport Audit(const T& structure, AuditLevel level) {
  AuditReport report;
  structure.AuditInto(level, &report);
  return report;
}

}  // namespace swan::audit

#endif  // SWANDB_AUDIT_AUDIT_H_
