#include "audit/audit.h"

#include <sstream>
#include <utility>

namespace swan::audit {

const char* ToString(FindingClass cls) {
  switch (cls) {
    case FindingClass::kChecksum:
      return "checksum";
    case FindingClass::kBPlusTree:
      return "bplustree";
    case FindingClass::kColumn:
      return "column";
    case FindingClass::kDictionary:
      return "dictionary";
    case FindingClass::kBufferPool:
      return "bufferpool";
    case FindingClass::kCache:
      return "cache";
    case FindingClass::kStructure:
      return "structure";
  }
  return "unknown";
}

const char* ToString(AuditLevel level) {
  switch (level) {
    case AuditLevel::kQuick:
      return "quick";
    case AuditLevel::kFull:
      return "full";
  }
  return "unknown";
}

std::string AuditFinding::ToString() const {
  std::ostringstream os;
  os << "[" << audit::ToString(cls) << "] " << object << ": " << detail;
  return os.str();
}

void AuditReport::Add(FindingClass cls, std::string object,
                      std::string detail) {
  findings_.push_back(
      AuditFinding{cls, std::move(object), std::move(detail)});
}

void AuditReport::Merge(AuditReport other) {
  findings_.insert(findings_.end(),
                   std::make_move_iterator(other.findings_.begin()),
                   std::make_move_iterator(other.findings_.end()));
}

size_t AuditReport::CountClass(FindingClass cls) const {
  size_t count = 0;
  for (const auto& f : findings_) {
    if (f.cls == cls) ++count;
  }
  return count;
}

std::string AuditReport::ToString() const {
  if (findings_.empty()) return "audit clean\n";
  std::ostringstream os;
  os << "audit found " << findings_.size() << " problem"
     << (findings_.size() == 1 ? "" : "s") << ":\n";
  for (const auto& f : findings_) {
    os << "  " << f.ToString() << "\n";
  }
  return os.str();
}

}  // namespace swan::audit
