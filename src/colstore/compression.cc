#include "colstore/compression.h"

#include <cstring>

#include "common/macros.h"

namespace swan::colstore {

namespace {

constexpr uint8_t kTagRaw = 0;
constexpr uint8_t kTagRle = 1;
constexpr uint8_t kTagDelta = 2;

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

uint64_t GetU64(std::span<const uint8_t> bytes, size_t* pos) {
  SWAN_CHECK_MSG(*pos + 8 <= bytes.size(), "corrupt compressed column");
  uint64_t v;
  std::memcpy(&v, bytes.data() + *pos, sizeof(v));
  *pos += 8;
  return v;
}

uint32_t GetU32(std::span<const uint8_t> bytes, size_t* pos) {
  SWAN_CHECK_MSG(*pos + 4 <= bytes.size(), "corrupt compressed column");
  uint32_t v;
  std::memcpy(&v, bytes.data() + *pos, sizeof(v));
  *pos += 4;
  return v;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint64_t GetVarint(std::span<const uint8_t> bytes, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  for (;;) {
    SWAN_CHECK_MSG(*pos < bytes.size() && shift < 64,
                   "corrupt varint in compressed column");
    const uint8_t byte = bytes[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

std::vector<uint8_t> EncodeRaw(std::span<const uint64_t> values) {
  std::vector<uint8_t> out;
  out.reserve(1 + values.size() * 8);
  out.push_back(kTagRaw);
  for (uint64_t v : values) PutU64(&out, v);
  return out;
}

std::vector<uint8_t> EncodeRle(std::span<const uint64_t> values) {
  std::vector<uint8_t> out;
  out.push_back(kTagRle);
  size_t i = 0;
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i] &&
           j - i < 0xFFFFFFFFull) {
      ++j;
    }
    PutU64(&out, values[i]);
    PutU32(&out, static_cast<uint32_t>(j - i));
    i = j;
  }
  return out;
}

std::vector<uint8_t> EncodeDelta(std::span<const uint64_t> values) {
  std::vector<uint8_t> out;
  out.push_back(kTagDelta);
  uint64_t prev = 0;
  for (uint64_t v : values) {
    PutVarint(&out, ZigZag(static_cast<int64_t>(v - prev)));
    prev = v;
  }
  return out;
}

}  // namespace

std::string ToString(ColumnCodec codec) {
  switch (codec) {
    case ColumnCodec::kRaw:
      return "raw";
    case ColumnCodec::kRle:
      return "rle";
    case ColumnCodec::kDelta:
      return "delta";
    case ColumnCodec::kAuto:
      return "auto";
  }
  return "?";
}

std::vector<uint8_t> CompressU64(std::span<const uint64_t> values,
                                 ColumnCodec codec) {
  switch (codec) {
    case ColumnCodec::kRaw:
      return EncodeRaw(values);
    case ColumnCodec::kRle:
      return EncodeRle(values);
    case ColumnCodec::kDelta:
      return EncodeDelta(values);
    case ColumnCodec::kAuto: {
      std::vector<uint8_t> best = EncodeRaw(values);
      for (auto candidate : {EncodeRle(values), EncodeDelta(values)}) {
        if (candidate.size() < best.size()) best = std::move(candidate);
      }
      return best;
    }
  }
  SWAN_CHECK(false);
  return {};
}

std::vector<uint64_t> DecompressU64(std::span<const uint8_t> bytes,
                                    uint64_t count) {
  SWAN_CHECK_MSG(!bytes.empty(), "empty compressed column buffer");
  std::vector<uint64_t> out;
  out.reserve(count);
  size_t pos = 1;
  switch (bytes[0]) {
    case kTagRaw:
      for (uint64_t i = 0; i < count; ++i) out.push_back(GetU64(bytes, &pos));
      break;
    case kTagRle:
      while (out.size() < count) {
        const uint64_t value = GetU64(bytes, &pos);
        const uint32_t run = GetU32(bytes, &pos);
        SWAN_CHECK_MSG(run > 0 && out.size() + run <= count,
                       "corrupt RLE run");
        out.insert(out.end(), run, value);
      }
      break;
    case kTagDelta: {
      uint64_t prev = 0;
      for (uint64_t i = 0; i < count; ++i) {
        prev += static_cast<uint64_t>(UnZigZag(GetVarint(bytes, &pos)));
        out.push_back(prev);
      }
      break;
    }
    default:
      SWAN_CHECK_MSG(false, "unknown column codec tag");
  }
  SWAN_CHECK_EQ(out.size(), count);
  return out;
}

}  // namespace swan::colstore
