#include "colstore/compression.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/macros.h"

namespace swan::colstore {

namespace {

constexpr uint8_t kTagRaw = 0;
constexpr uint8_t kTagRle = 1;
constexpr uint8_t kTagDelta = 2;
constexpr uint8_t kTagBitPack = 3;
constexpr uint8_t kTagDictBitPack = 4;

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

// Tolerant readers: the decode path reports malformed buffers as
// Status::Corruption (the caller decides whether that aborts), so every
// bounds check returns false instead of SWAN_CHECK-ing.
bool GetU64(std::span<const uint8_t> bytes, size_t* pos, uint64_t* v) {
  if (*pos + 8 > bytes.size()) return false;
  std::memcpy(v, bytes.data() + *pos, sizeof(*v));
  *pos += 8;
  return true;
}

bool GetU32(std::span<const uint8_t> bytes, size_t* pos, uint32_t* v) {
  if (*pos + 4 > bytes.size()) return false;
  std::memcpy(v, bytes.data() + *pos, sizeof(*v));
  *pos += 4;
  return true;
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(std::span<const uint8_t> bytes, size_t* pos, uint64_t* v) {
  *v = 0;
  int shift = 0;
  for (;;) {
    if (*pos >= bytes.size() || shift >= 64) return false;
    const uint8_t byte = bytes[(*pos)++];
    *v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return true;
    shift += 7;
  }
}

// Packs `values` (each < 2^width) at `width` bits per value into `words`,
// which must be zero-initialized and sized (count*width + 63) / 64.
void PackInto(std::span<const uint64_t> values, int width, uint64_t* words) {
  for (uint64_t i = 0; i < values.size(); ++i) {
    const uint64_t bit = i * static_cast<uint64_t>(width);
    const uint64_t word = bit >> 6;
    const int off = static_cast<int>(bit & 63);
    words[word] |= values[i] << off;
    if (off + width > 64) words[word + 1] |= values[i] >> (64 - off);
  }
}

void AppendWords(std::vector<uint8_t>* out, std::span<const uint64_t> words) {
  if (words.empty()) return;  // memcpy from a null data() is UB
  const size_t at = out->size();
  out->resize(at + words.size() * 8);
  std::memcpy(out->data() + at, words.data(), words.size() * 8);
}

std::vector<uint8_t> EncodeRaw(std::span<const uint64_t> values) {
  std::vector<uint8_t> out;
  out.reserve(1 + values.size() * 8);
  out.push_back(kTagRaw);
  for (uint64_t v : values) PutU64(&out, v);
  return out;
}

std::vector<uint8_t> EncodeRle(std::span<const uint64_t> values) {
  std::vector<uint8_t> out;
  out.push_back(kTagRle);
  size_t i = 0;
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i] &&
           j - i < 0xFFFFFFFFull) {
      ++j;
    }
    PutU64(&out, values[i]);
    PutU32(&out, static_cast<uint32_t>(j - i));
    i = j;
  }
  return out;
}

std::vector<uint8_t> EncodeDelta(std::span<const uint64_t> values) {
  std::vector<uint8_t> out;
  out.push_back(kTagDelta);
  uint64_t prev = 0;
  for (uint64_t v : values) {
    PutVarint(&out, ZigZag(static_cast<int64_t>(v - prev)));
    prev = v;
  }
  return out;
}

std::vector<uint8_t> EncodeBitPack(std::span<const uint64_t> values) {
  uint64_t max_value = 0;
  for (uint64_t v : values) max_value = std::max(max_value, v);
  const int width = BitWidthFor(max_value);
  const uint64_t word_count =
      (values.size() * static_cast<uint64_t>(width) + 63) / 64;
  std::vector<uint64_t> words(word_count, 0);
  PackInto(values, width, words.data());
  std::vector<uint8_t> out;
  out.reserve(2 + word_count * 8);
  out.push_back(kTagBitPack);
  out.push_back(static_cast<uint8_t>(width));
  AppendWords(&out, words);
  return out;
}

std::vector<uint8_t> EncodeDictBitPack(std::span<const uint64_t> values) {
  std::vector<uint64_t> palette(values.begin(), values.end());
  std::sort(palette.begin(), palette.end());
  palette.erase(std::unique(palette.begin(), palette.end()), palette.end());
  SWAN_CHECK_MSG(palette.size() < (1ull << 32),
                 "dictionary codec requires < 2^32 distinct values");
  const int width =
      BitWidthFor(palette.empty() ? 0 : palette.size() - 1);
  std::vector<uint64_t> codes(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    codes[i] = static_cast<uint64_t>(
        std::lower_bound(palette.begin(), palette.end(), values[i]) -
        palette.begin());
  }
  const uint64_t word_count =
      (codes.size() * static_cast<uint64_t>(width) + 63) / 64;
  std::vector<uint64_t> words(word_count, 0);
  PackInto(codes, width, words.data());
  std::vector<uint8_t> out;
  out.reserve(2 + 4 + palette.size() * 8 + word_count * 8);
  out.push_back(kTagDictBitPack);
  out.push_back(static_cast<uint8_t>(width));
  PutU32(&out, static_cast<uint32_t>(palette.size()));
  AppendWords(&out, palette);
  AppendWords(&out, words);
  return out;
}

Status Corrupt(const char* what) { return Status::Corruption(what); }

// Copies `word_count` packed words starting at bytes[*pos] into `words`,
// appending one zero pad word so two-word straddling reads stay in
// bounds.
Status ReadPackedWords(std::span<const uint8_t> bytes, size_t* pos,
                       uint64_t word_count, std::vector<uint64_t>* words) {
  if (*pos + word_count * 8 > bytes.size()) {
    return Corrupt("corrupt bit-packed column: truncated word stream");
  }
  words->resize(word_count + 1, 0);
  std::memcpy(words->data(), bytes.data() + *pos, word_count * 8);
  (*words)[word_count] = 0;
  *pos += word_count * 8;
  return Status::OK();
}

}  // namespace

std::string ToString(ColumnCodec codec) {
  switch (codec) {
    case ColumnCodec::kRaw:
      return "raw";
    case ColumnCodec::kRle:
      return "rle";
    case ColumnCodec::kDelta:
      return "delta";
    case ColumnCodec::kBitPack:
      return "bitpack";
    case ColumnCodec::kDictBitPack:
      return "dictbitpack";
    case ColumnCodec::kAuto:
      return "auto";
  }
  return "?";
}

bool CodecFromString(std::string_view name, ColumnCodec* out) {
  for (ColumnCodec codec :
       {ColumnCodec::kRaw, ColumnCodec::kRle, ColumnCodec::kDelta,
        ColumnCodec::kBitPack, ColumnCodec::kDictBitPack,
        ColumnCodec::kAuto}) {
    if (name == ToString(codec)) {
      *out = codec;
      return true;
    }
  }
  return false;
}

int BitWidthFor(uint64_t v) {
  return std::max(1, static_cast<int>(std::bit_width(v)));
}

std::vector<uint8_t> CompressU64(std::span<const uint64_t> values,
                                 ColumnCodec codec) {
  switch (codec) {
    case ColumnCodec::kRaw:
      return EncodeRaw(values);
    case ColumnCodec::kRle:
      return EncodeRle(values);
    case ColumnCodec::kDelta:
      return EncodeDelta(values);
    case ColumnCodec::kBitPack:
      return EncodeBitPack(values);
    case ColumnCodec::kDictBitPack:
      return EncodeDictBitPack(values);
    case ColumnCodec::kAuto: {
      // Smallest wins; ties keep the earlier candidate, so the choice is
      // deterministic for a given input.
      std::vector<uint8_t> best = EncodeRaw(values);
      for (auto candidate :
           {EncodeRle(values), EncodeDelta(values), EncodeBitPack(values),
            EncodeDictBitPack(values)}) {
        if (candidate.size() < best.size()) best = std::move(candidate);
      }
      return best;
    }
  }
  SWAN_CHECK(false);
  return {};
}

ColumnCodec CodecOfEncoded(std::span<const uint8_t> bytes) {
  if (bytes.empty()) return ColumnCodec::kRaw;
  switch (bytes[0]) {
    case kTagRaw:
      return ColumnCodec::kRaw;
    case kTagRle:
      return ColumnCodec::kRle;
    case kTagDelta:
      return ColumnCodec::kDelta;
    case kTagBitPack:
      return ColumnCodec::kBitPack;
    case kTagDictBitPack:
      return ColumnCodec::kDictBitPack;
    default:
      return ColumnCodec::kRaw;
  }
}

Status TryParseEncoding(std::span<const uint8_t> bytes, uint64_t count,
                        ParsedEncoding* out) {
  *out = ParsedEncoding{};
  if (bytes.empty()) return Corrupt("empty compressed column buffer");
  size_t pos = 1;
  switch (bytes[0]) {
    case kTagRaw: {
      out->rep = ParsedEncoding::Rep::kFlat;
      if (pos + count * 8 > bytes.size()) {
        return Corrupt("corrupt compressed column: truncated raw payload");
      }
      out->flat.resize(count);
      if (count != 0) {
        std::memcpy(out->flat.data(), bytes.data() + pos, count * 8);
      }
      return Status::OK();
    }
    case kTagRle: {
      out->rep = ParsedEncoding::Rep::kRle;
      uint64_t at = 0;
      while (at < count) {
        uint64_t value;
        uint32_t run;
        if (!GetU64(bytes, &pos, &value) || !GetU32(bytes, &pos, &run)) {
          return Corrupt("corrupt compressed column: truncated RLE pair");
        }
        if (run == 0 || at + run > count) {
          return Corrupt("corrupt RLE run");
        }
        out->runs.push_back(RleRun{value, at, run});
        at += run;
      }
      return Status::OK();
    }
    case kTagDelta: {
      out->rep = ParsedEncoding::Rep::kFlat;
      out->flat.reserve(count);
      uint64_t prev = 0;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t z;
        if (!GetVarint(bytes, &pos, &z)) {
          return Corrupt("corrupt varint in compressed column");
        }
        prev += static_cast<uint64_t>(UnZigZag(z));
        out->flat.push_back(prev);
      }
      return Status::OK();
    }
    case kTagBitPack: {
      out->rep = ParsedEncoding::Rep::kPacked;
      if (bytes.size() < 2) {
        return Corrupt("corrupt bit-packed column: missing width");
      }
      const int width = bytes[pos++];
      if (width < 1 || width > 64) {
        return Corrupt("corrupt bit-packed column: width out of range");
      }
      out->bit_width = width;
      const uint64_t word_count =
          (count * static_cast<uint64_t>(width) + 63) / 64;
      return ReadPackedWords(bytes, &pos, word_count, &out->words);
    }
    case kTagDictBitPack: {
      out->rep = ParsedEncoding::Rep::kPacked;
      if (bytes.size() < 2) {
        return Corrupt("corrupt dictionary column: missing width");
      }
      const int width = bytes[pos++];
      if (width < 1 || width > 64) {
        return Corrupt("corrupt dictionary column: width out of range");
      }
      out->bit_width = width;
      uint32_t dict_count;
      if (!GetU32(bytes, &pos, &dict_count)) {
        return Corrupt("corrupt dictionary column: missing palette size");
      }
      if (count > 0 && dict_count == 0) {
        return Corrupt("corrupt dictionary column: empty palette");
      }
      if (pos + static_cast<uint64_t>(dict_count) * 8 > bytes.size()) {
        return Corrupt("corrupt dictionary column: truncated palette");
      }
      out->palette.resize(dict_count);
      if (dict_count != 0) {
        std::memcpy(out->palette.data(), bytes.data() + pos,
                    static_cast<uint64_t>(dict_count) * 8);
      }
      pos += static_cast<uint64_t>(dict_count) * 8;
      for (size_t i = 1; i < out->palette.size(); ++i) {
        if (out->palette[i - 1] >= out->palette[i]) {
          return Corrupt("corrupt dictionary column: palette not sorted");
        }
      }
      const uint64_t word_count =
          (count * static_cast<uint64_t>(width) + 63) / 64;
      Status st = ReadPackedWords(bytes, &pos, word_count, &out->words);
      if (!st.ok()) return st;
      // Every code must index the palette; a single pass catches flipped
      // bits in the word stream that the header checks cannot.
      for (uint64_t i = 0; i < count; ++i) {
        if (PackedValueAt(out->words.data(), width, i) >= dict_count) {
          return Corrupt("corrupt dictionary column: code out of range");
        }
      }
      return Status::OK();
    }
    default:
      return Corrupt("unknown column codec tag");
  }
}

Status TryDecompressU64(std::span<const uint8_t> bytes, uint64_t count,
                        std::vector<uint64_t>* out) {
  ParsedEncoding enc;
  Status st = TryParseEncoding(bytes, count, &enc);
  if (!st.ok()) return st;
  switch (enc.rep) {
    case ParsedEncoding::Rep::kFlat:
      *out = std::move(enc.flat);
      break;
    case ParsedEncoding::Rep::kRle:
      out->clear();
      out->reserve(count);
      for (const RleRun& run : enc.runs) {
        out->insert(out->end(), run.length, run.value);
      }
      break;
    case ParsedEncoding::Rep::kPacked:
      out->clear();
      out->reserve(count);
      if (enc.palette.empty()) {
        for (uint64_t i = 0; i < count; ++i) {
          out->push_back(PackedValueAt(enc.words.data(), enc.bit_width, i));
        }
      } else {
        for (uint64_t i = 0; i < count; ++i) {
          out->push_back(enc.palette[PackedValueAt(enc.words.data(),
                                                   enc.bit_width, i)]);
        }
      }
      break;
  }
  SWAN_CHECK_EQ(out->size(), count);
  return Status::OK();
}

std::vector<uint64_t> DecompressU64(std::span<const uint8_t> bytes,
                                    uint64_t count) {
  std::vector<uint64_t> out;
  Status st = TryDecompressU64(bytes, count, &out);
  SWAN_CHECK_MSG(st.ok(), st.ToString().c_str());
  return out;
}

}  // namespace swan::colstore
