#include "colstore/column.h"

#include "common/macros.h"

namespace swan::colstore {

void Column::Build(std::span<const uint64_t> values) {
  SWAN_CHECK_MSG(!built_, "Column::Build called twice");
  built_ = true;
  size_ = values.size();
  if (codec_ == ColumnCodec::kRaw) {
    // Fast path: the raw layout needs no staging buffer.
    storage::U64FileWriter writer(&file_);
    for (uint64_t v : values) writer.Append(v);
    writer.Finish();
    return;
  }
  const std::vector<uint8_t> encoded = CompressU64(values, codec_);
  stored_bytes_ = encoded.size();
  storage::ByteFileWriter writer(&file_);
  writer.Append(encoded.data(), encoded.size());
  writer.Finish();
}

const std::vector<uint64_t>& Column::Get() const {
  SWAN_CHECK_MSG(built_, "Column::Get before Build");
  if (!loaded_) {
    if (codec_ == ColumnCodec::kRaw) {
      storage::ReadU64File(pool_, file_, size_, &cache_);
    } else {
      std::vector<uint8_t> encoded;
      storage::ReadByteFile(pool_, file_, stored_bytes_, &encoded);
      cache_ = DecompressU64(encoded, size_);
    }
    loaded_ = true;
  }
  return cache_;
}

void Column::DropCache() const {
  cache_.clear();
  cache_.shrink_to_fit();
  loaded_ = false;
}

}  // namespace swan::colstore
