#include "colstore/column.h"

#include "common/macros.h"
#include "common/mutex.h"

namespace swan::colstore {

void Column::Build(std::span<const uint64_t> values) {
  SWAN_CHECK_MSG(!built_, "Column::Build called twice");
  built_ = true;
  size_ = values.size();
  if (codec_ == ColumnCodec::kRaw) {
    // Fast path: the raw layout needs no staging buffer.
    storage::U64FileWriter writer(&file_);
    for (uint64_t v : values) writer.Append(v);
    writer.Finish();
    return;
  }
  const std::vector<uint8_t> encoded = CompressU64(values, codec_);
  stored_bytes_ = encoded.size();
  storage::ByteFileWriter writer(&file_);
  writer.Append(encoded.data(), encoded.size());
  writer.Finish();
}

const std::vector<uint64_t>& Column::Get() const {
  SWAN_CHECK_MSG(built_, "Column::Get before Build");
  if (!loaded_.load(std::memory_order_acquire)) {
    MutexLock lock(&load_mutex_);
    if (!loaded_.load(std::memory_order_relaxed)) {
      if (codec_ == ColumnCodec::kRaw) {
        storage::ReadU64File(pool_, file_, size_, &cache_);
      } else {
        std::vector<uint8_t> encoded;
        storage::ReadByteFile(pool_, file_, stored_bytes_, &encoded);
        cache_ = DecompressU64(encoded, size_);
      }
      loaded_.store(true, std::memory_order_release);
    }
  }
  return cache_;
}

void Column::DropCache() const {
  MutexLock lock(&load_mutex_);
  cache_.clear();
  cache_.shrink_to_fit();
  loaded_.store(false, std::memory_order_release);
}

bool Column::AuditRead(const std::string& label, std::vector<uint64_t>* out,
                       audit::AuditReport* report) const {
  if (codec_ == ColumnCodec::kRaw) {
    Status st = storage::TryReadU64File(pool_, file_, size_, out);
    if (!st.ok()) {
      report->Add(audit::FindingClass::kChecksum, label, st.ToString());
      return false;
    }
    return true;
  }
  std::vector<uint8_t> encoded;
  Status st = storage::TryReadByteFile(pool_, file_, stored_bytes_, &encoded);
  if (!st.ok()) {
    // Do not attempt to decode a buffer that failed its checksum —
    // DecompressU64 aborts on malformed input by design.
    report->Add(audit::FindingClass::kChecksum, label, st.ToString());
    return false;
  }
  *out = DecompressU64(encoded, size_);
  return true;
}

void Column::AuditInto(audit::AuditLevel level,
                       const ColumnAuditOptions& options,
                       audit::AuditReport* report) const {
  const std::string& label = options.label;
  if (!built_) {
    // An unbuilt column has no on-disk image; nothing to verify.
    return;
  }
  // Audits run at quiescent points, but take the load mutex anyway: the
  // kFull disk sweep below re-reads pages (pool < load in the rank
  // table), and holding it makes the cache_ comparisons rank-clean.
  MutexLock lock(&load_mutex_);
  if (loaded_ && cache_.size() != size_) {
    report->Add(audit::FindingClass::kColumn, label,
                "cached image has " + std::to_string(cache_.size()) +
                    " values, declared size is " + std::to_string(size_));
  }
  if (level == audit::AuditLevel::kQuick) {
    // Quick audits verify whatever is already in memory, without paying
    // for a disk sweep.
    if (!loaded_) return;
    AuditValues(label, cache_, options, report);
    return;
  }
  std::vector<uint64_t> disk_values;
  if (!AuditRead(label, &disk_values, report)) return;
  if (disk_values.size() != size_) {
    report->Add(audit::FindingClass::kColumn, label,
                "on-disk image decodes to " +
                    std::to_string(disk_values.size()) +
                    " values, declared size is " + std::to_string(size_));
    return;
  }
  if (loaded_ && cache_ != disk_values) {
    report->Add(audit::FindingClass::kColumn, label,
                "in-memory cache diverges from on-disk image");
  }
  AuditValues(label, disk_values, options, report);
}

void Column::AuditValues(const std::string& label,
                         const std::vector<uint64_t>& values,
                         const ColumnAuditOptions& options,
                         audit::AuditReport* report) {
  if (options.expect_sorted) {
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i - 1] > values[i]) {
        report->Add(audit::FindingClass::kColumn, label,
                    "declared sorted but values[" + std::to_string(i - 1) +
                        "]=" + std::to_string(values[i - 1]) +
                        " > values[" + std::to_string(i) +
                        "]=" + std::to_string(values[i]));
        break;  // one finding per column is enough; later entries follow
      }
    }
  }
  if (options.max_valid_id.has_value()) {
    const uint64_t bound = *options.max_valid_id;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] >= bound) {
        report->Add(audit::FindingClass::kColumn, label,
                    "values[" + std::to_string(i) + "]=" +
                        std::to_string(values[i]) +
                        " outside dictionary id range [0, " +
                        std::to_string(bound) + ")");
        break;
      }
    }
  }
}

}  // namespace swan::colstore
