#include "colstore/column.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "common/mutex.h"

namespace swan::colstore {

// --- EncodedColumn --------------------------------------------------------

Status EncodedColumn::TryParse(std::span<const uint8_t> bytes, uint64_t count,
                               EncodedColumn* out) {
  out->size_ = count;
  return TryParseEncoding(bytes, count, &out->enc_);
}

EncodedColumn EncodedColumn::Parse(std::span<const uint8_t> bytes,
                                   uint64_t count) {
  EncodedColumn out;
  Status st = TryParse(bytes, count, &out);
  SWAN_CHECK_MSG(st.ok(), st.ToString().c_str());
  return out;
}

EncodedColumn EncodedColumn::FromValues(std::span<const uint64_t> values,
                                        ColumnCodec codec) {
  return Parse(CompressU64(values, codec), values.size());
}

EncodedColumn EncodedColumn::FromRaw(std::vector<uint64_t> values) {
  EncodedColumn out;
  out.size_ = values.size();
  out.enc_.rep = Rep::kFlat;
  out.enc_.flat = std::move(values);
  return out;
}

size_t EncodedColumn::RunIndexOf(uint64_t pos) const {
  SWAN_DCHECK_LT(pos, size_);
  const auto it = std::upper_bound(
      enc_.runs.begin(), enc_.runs.end(), pos,
      [](uint64_t p, const RleRun& r) { return p < r.start; });
  return static_cast<size_t>(it - enc_.runs.begin()) - 1;
}

uint64_t EncodedColumn::ValueAt(uint64_t i) const {
  switch (enc_.rep) {
    case Rep::kFlat:
      return enc_.flat[i];
    case Rep::kRle:
      return enc_.runs[RunIndexOf(i)].value;
    case Rep::kPacked:
      return DecodeCode(PackedValueAt(enc_.words.data(), enc_.bit_width, i));
  }
  SWAN_CHECK(false);
  return 0;
}

void EncodedColumn::MaterializeInto(uint64_t lo, uint64_t hi,
                                    uint64_t* out) const {
  SWAN_DCHECK_LE(lo, hi);
  SWAN_DCHECK_LE(hi, size_);
  switch (enc_.rep) {
    case Rep::kFlat:
      if (lo != hi) std::memcpy(out, enc_.flat.data() + lo, (hi - lo) * 8);
      return;
    case Rep::kRle: {
      if (lo == hi) return;
      uint64_t at = lo;
      for (size_t r = RunIndexOf(lo); at < hi; ++r) {
        const RleRun& run = enc_.runs[r];
        const uint64_t end = std::min<uint64_t>(run.start + run.length, hi);
        for (; at < end; ++at) out[at - lo] = run.value;
      }
      return;
    }
    case Rep::kPacked: {
      const uint64_t* words = enc_.words.data();
      const int width = enc_.bit_width;
      if (enc_.palette.empty()) {
        for (uint64_t i = lo; i < hi; ++i) {
          out[i - lo] = PackedValueAt(words, width, i);
        }
      } else {
        const uint64_t* palette = enc_.palette.data();
        for (uint64_t i = lo; i < hi; ++i) {
          out[i - lo] = palette[PackedValueAt(words, width, i)];
        }
      }
      return;
    }
  }
  SWAN_CHECK(false);
}

std::vector<uint64_t> EncodedColumn::Materialize() const {
  std::vector<uint64_t> out(size_);
  MaterializeInto(0, size_, out.data());
  return out;
}

bool EncodedColumn::CodeFor(uint64_t value, uint64_t* code) const {
  if (enc_.rep != Rep::kPacked || enc_.palette.empty()) {
    if (enc_.rep == Rep::kPacked && enc_.bit_width < 64 &&
        value >= (1ull << enc_.bit_width)) {
      return false;  // wider than the pack width: cannot occur
    }
    *code = value;
    return true;
  }
  const auto it =
      std::lower_bound(enc_.palette.begin(), enc_.palette.end(), value);
  if (it == enc_.palette.end() || *it != value) return false;
  *code = static_cast<uint64_t>(it - enc_.palette.begin());
  return true;
}

uint64_t EncodedColumn::memory_bytes() const {
  return enc_.flat.size() * sizeof(uint64_t) +
         enc_.runs.size() * sizeof(RleRun) +
         enc_.words.size() * sizeof(uint64_t) +
         enc_.palette.size() * sizeof(uint64_t);
}

// --- Column ---------------------------------------------------------------

void Column::Build(std::span<const uint64_t> values) {
  SWAN_CHECK_MSG(!built_, "Column::Build called twice");
  built_ = true;
  size_ = values.size();
  if (codec_ == ColumnCodec::kRaw) {
    // Fast path: the raw layout needs no staging buffer.
    stored_bytes_ = size_ * 8;
    resolved_codec_ = ColumnCodec::kRaw;
    storage::U64FileWriter writer(&file_);
    for (uint64_t v : values) writer.Append(v);
    writer.Finish();
    return;
  }
  const std::vector<uint8_t> encoded = CompressU64(values, codec_);
  stored_bytes_ = encoded.size();
  resolved_codec_ = CodecOfEncoded(encoded);
  storage::ByteFileWriter writer(&file_);
  writer.Append(encoded.data(), encoded.size());
  writer.Finish();
}

const EncodedColumn& Column::EncodedLocked() const {
  if (!encoded_loaded_.load(std::memory_order_relaxed)) {
    if (codec_ == ColumnCodec::kRaw) {
      std::vector<uint64_t> values;
      storage::ReadU64File(pool_, file_, size_, &values);
      encoded_ = EncodedColumn::FromRaw(std::move(values));
    } else {
      std::vector<uint8_t> encoded;
      storage::ReadByteFile(pool_, file_, stored_bytes_, &encoded);
      encoded_ = EncodedColumn::Parse(encoded, size_);
    }
    encoded_loaded_.store(true, std::memory_order_release);
  }
  return encoded_;
}

const EncodedColumn& Column::Encoded() const {
  SWAN_CHECK_MSG(built_, "Column::Encoded before Build");
  if (!encoded_loaded_.load(std::memory_order_acquire)) {
    MutexLock lock(&load_mutex_);
    EncodedLocked();
  }
  return encoded_;
}

const std::vector<uint64_t>& Column::Get() const {
  SWAN_CHECK_MSG(built_, "Column::Get before Build");
  if (!loaded_.load(std::memory_order_acquire)) {
    MutexLock lock(&load_mutex_);
    if (!loaded_.load(std::memory_order_relaxed)) {
      const EncodedColumn& enc = EncodedLocked();
      // A flat encoded image *is* the raw materialization; only run- and
      // bit-compressed reps need a second buffer.
      if (enc.rep() != EncodedColumn::Rep::kFlat) cache_ = enc.Materialize();
      loaded_.store(true, std::memory_order_release);
    }
  }
  return encoded_.rep() == EncodedColumn::Rep::kFlat ? encoded_.flat()
                                                     : cache_;
}

void Column::DropCache() const {
  MutexLock lock(&load_mutex_);
  cache_.clear();
  cache_.shrink_to_fit();
  encoded_ = EncodedColumn();
  loaded_.store(false, std::memory_order_release);
  encoded_loaded_.store(false, std::memory_order_release);
}

bool Column::AuditRead(const std::string& label, std::vector<uint64_t>* out,
                       audit::AuditReport* report) const {
  if (codec_ == ColumnCodec::kRaw) {
    Status st = storage::TryReadU64File(pool_, file_, size_, out);
    if (!st.ok()) {
      report->Add(audit::FindingClass::kChecksum, label, st.ToString());
      return false;
    }
    return true;
  }
  std::vector<uint8_t> encoded;
  Status st = storage::TryReadByteFile(pool_, file_, stored_bytes_, &encoded);
  if (!st.ok()) {
    report->Add(audit::FindingClass::kChecksum, label, st.ToString());
    return false;
  }
  // The page checksums passed but the encoding itself may still be
  // malformed (logical corruption behind a valid checksum); the tolerant
  // decoder turns that into a finding instead of aborting.
  st = TryDecompressU64(encoded, size_, out);
  if (!st.ok()) {
    report->Add(audit::FindingClass::kColumn, label, st.ToString());
    return false;
  }
  return true;
}

void Column::AuditInto(audit::AuditLevel level,
                       const ColumnAuditOptions& options,
                       audit::AuditReport* report) const {
  const std::string& label = options.label;
  if (!built_) {
    // An unbuilt column has no on-disk image; nothing to verify.
    return;
  }
  // Audits run at quiescent points, but take the load mutex anyway: the
  // kFull disk sweep below re-reads pages (pool < load in the rank
  // table), and holding it makes the cache comparisons rank-clean.
  MutexLock lock(&load_mutex_);
  // Metadata consistency: the recorded encoded size must agree with the
  // on-disk image. A divergence means cold-bytes accounting (and the
  // encoded cold load itself) is reading the wrong number of pages.
  const uint64_t expected_pages = (stored_bytes_ + storage::kPageSize - 1) /
                                  storage::kPageSize;
  if (expected_pages != file_.page_count()) {
    report->Add(audit::FindingClass::kColumn, label,
                "recorded encoded size " + std::to_string(stored_bytes_) +
                    " bytes implies " + std::to_string(expected_pages) +
                    " pages, on-disk file has " +
                    std::to_string(file_.page_count()));
  }
  // The raw in-memory image, when one exists (a flat encoded cache *is*
  // the raw image; see Get()).
  const std::vector<uint64_t>* cached_raw = nullptr;
  if (loaded_.load(std::memory_order_relaxed)) {
    cached_raw = encoded_.rep() == EncodedColumn::Rep::kFlat
                     ? &encoded_.flat()
                     : &cache_;
  }
  if (encoded_loaded_.load(std::memory_order_relaxed) &&
      encoded_.size() != size_) {
    report->Add(audit::FindingClass::kColumn, label,
                "cached encoded image has " + std::to_string(encoded_.size()) +
                    " values, declared size is " + std::to_string(size_));
  }
  if (cached_raw != nullptr && cached_raw->size() != size_) {
    report->Add(audit::FindingClass::kColumn, label,
                "cached image has " + std::to_string(cached_raw->size()) +
                    " values, declared size is " + std::to_string(size_));
  }
  if (level == audit::AuditLevel::kQuick) {
    // Quick audits verify whatever is already in memory, without paying
    // for a disk sweep.
    if (cached_raw == nullptr) return;
    AuditValues(label, *cached_raw, options, report);
    return;
  }
  std::vector<uint64_t> disk_values;
  if (!AuditRead(label, &disk_values, report)) return;
  if (disk_values.size() != size_) {
    report->Add(audit::FindingClass::kColumn, label,
                "on-disk image decodes to " +
                    std::to_string(disk_values.size()) +
                    " values, declared size is " + std::to_string(size_));
    return;
  }
  if (cached_raw != nullptr && *cached_raw != disk_values) {
    report->Add(audit::FindingClass::kColumn, label,
                "in-memory cache diverges from on-disk image");
  }
  AuditValues(label, disk_values, options, report);
}

void Column::AuditValues(const std::string& label,
                         const std::vector<uint64_t>& values,
                         const ColumnAuditOptions& options,
                         audit::AuditReport* report) {
  if (options.expect_sorted) {
    for (size_t i = 1; i < values.size(); ++i) {
      if (values[i - 1] > values[i]) {
        report->Add(audit::FindingClass::kColumn, label,
                    "declared sorted but values[" + std::to_string(i - 1) +
                        "]=" + std::to_string(values[i - 1]) +
                        " > values[" + std::to_string(i) +
                        "]=" + std::to_string(values[i]));
        break;  // one finding per column is enough; later entries follow
      }
    }
  }
  if (options.max_valid_id.has_value()) {
    const uint64_t bound = *options.max_valid_id;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] >= bound) {
        report->Add(audit::FindingClass::kColumn, label,
                    "values[" + std::to_string(i) + "]=" +
                        std::to_string(values[i]) +
                        " outside dictionary id range [0, " +
                        std::to_string(bound) + ")");
        break;
      }
    }
  }
}

}  // namespace swan::colstore
