#include "colstore/ops.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swan::colstore {

namespace {

// The merge-join equal-run-length histogram of the attached trace
// session, or nullptr when untraced. Observation is atomic and the run
// set is width-invariant (runs never straddle partitions), so the
// snapshot is identical at every thread count.
obs::Histogram* RunLengthHist(const exec::ExecContext& ctx) {
  obs::TraceSession* session = ctx.trace();
  if (session == nullptr) return nullptr;
  return session->metrics().GetHistogram("ops.merge_join.run_length",
                                         {1, 2, 4, 8, 16, 32, 64, 128});
}

// Morsel size for scan kernels: 64Ki values (512 KB of ids) is large
// enough to amortize scheduling and small enough to load-balance skew.
constexpr uint64_t kMorsel = 1ull << 16;

PositionVector ConcatParts(std::vector<PositionVector>& parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  PositionVector out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

// Runs fill(begin, end, &part) over morsels of [0, n) and concatenates the
// per-chunk outputs in chunk order — the same sequence the serial scan
// would produce. Positions emitted by chunk c all precede chunk c+1's.
template <typename Fill>
PositionVector MorselSelect(const exec::ExecContext& ctx, uint64_t n,
                            const Fill& fill) {
  if (!ctx.parallel() || n < 2 * kMorsel) {
    PositionVector out;
    out.reserve(n / 8 + 8);
    fill(0, n, &out);
    return out;
  }
  const uint64_t chunks = (n + kMorsel - 1) / kMorsel;
  std::vector<PositionVector> parts(chunks);
  ctx.ParallelFor(n, kMorsel, [&](uint64_t b, uint64_t e, uint64_t c) {
    parts[c].reserve((e - b) / 8 + 8);
    fill(b, e, &parts[c]);
  });
  return ConcatParts(parts);
}

// Shared tail of the dense count kernels: per-shard dense partials built
// in parallel, summed (a commutative merge — order-independent), then
// swept for the nonzero entries.
template <typename Accumulate>
std::vector<std::pair<uint64_t, uint64_t>> DenseCount(
    const exec::ExecContext& ctx, uint64_t n, uint64_t universe_size,
    const Accumulate& accumulate) {
  std::vector<uint64_t> counts;
  const uint64_t shards = ctx.ShardsFor(n, kMorsel);
  if (shards <= 1) {
    counts.assign(universe_size, 0);
    accumulate(0, n, &counts);
  } else {
    const uint64_t grain = (n + shards - 1) / shards;
    std::vector<std::vector<uint64_t>> partials(shards);
    ctx.ParallelFor(n, grain, [&](uint64_t b, uint64_t e, uint64_t c) {
      partials[c].assign(universe_size, 0);
      accumulate(b, e, &partials[c]);
    });
    counts = std::move(partials[0]);
    ctx.ParallelFor(
        universe_size, kMorsel, [&](uint64_t b, uint64_t e, uint64_t) {
          for (uint64_t s = 1; s < shards; ++s) {
            const auto& p = partials[s];
            for (uint64_t k = b; k < e; ++k) counts[k] += p[k];
          }
        });
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (uint64_t k = 0; k < universe_size; ++k) {
    if (counts[k] != 0) out.emplace_back(k, counts[k]);
  }
  return out;
}

// Sorted-unique union of two sorted-unique lists.
std::vector<uint64_t> SetUnion2(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

// Serial merge-join kernel over subranges, emitting *global* indices
// (subrange start + offset). Shared by the serial path and every
// partition of the parallel path.
void MergeJoinInto(std::span<const uint64_t> left,
                   std::span<const uint64_t> right, uint32_t left_off,
                   uint32_t right_off,
                   std::vector<std::pair<uint32_t, uint32_t>>* out,
                   obs::Histogram* run_lengths = nullptr) {
  uint32_t i = 0, j = 0;
  const uint32_t n = static_cast<uint32_t>(left.size());
  const uint32_t m = static_cast<uint32_t>(right.size());
  while (i < n && j < m) {
    if (left[i] < right[j]) {
      ++i;
    } else if (right[j] < left[i]) {
      ++j;
    } else {
      // Equal run: emit the cross product.
      const uint64_t v = left[i];
      uint32_t i_end = i;
      while (i_end < n && left[i_end] == v) ++i_end;
      uint32_t j_end = j;
      while (j_end < m && right[j_end] == v) ++j_end;
      if (run_lengths != nullptr) {
        run_lengths->Observe(i_end - i);
        run_lengths->Observe(j_end - j);
      }
      for (uint32_t a = i; a < i_end; ++a) {
        for (uint32_t b = j; b < j_end; ++b) {
          out->emplace_back(left_off + a, right_off + b);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
}

// Splits [0, size) of a sorted column into ~kMorsel-sized partitions whose
// boundaries are advanced to equal-run edges, so no run of equal keys
// straddles a partition. Returns the boundary positions (first = 0,
// last = size), deduplicated.
std::vector<uint64_t> RunAlignedBoundaries(std::span<const uint64_t> sorted,
                                           uint64_t target_parts) {
  const uint64_t size = sorted.size();
  const uint64_t grain = std::max<uint64_t>(1, size / target_parts);
  std::vector<uint64_t> bounds;
  bounds.push_back(0);
  for (uint64_t t = grain; t < size; t += grain) {
    // Advance the tentative cut to the end of the run containing it.
    const uint64_t cut = static_cast<uint64_t>(
        std::upper_bound(sorted.begin() + static_cast<ptrdiff_t>(t),
                         sorted.end(), sorted[t]) -
        sorted.begin());
    if (cut > bounds.back() && cut < size) bounds.push_back(cut);
  }
  bounds.push_back(size);
  return bounds;
}

}  // namespace

PositionVector SelectEq(std::span<const uint64_t> col, uint64_t value,
                        const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.select_eq");
  span.set_rows_in(col.size());
  PositionVector out =
      MorselSelect(ctx, col.size(),
                   [&](uint64_t b, uint64_t e, PositionVector* out) {
                     for (uint64_t i = b; i < e; ++i) {
                       if (col[i] == value) {
                         out->push_back(static_cast<uint32_t>(i));
                       }
                     }
                   });
  span.set_rows_out(out.size());
  return out;
}

PositionVector SelectEq(std::span<const uint64_t> col,
                        const PositionVector& sel, uint64_t value,
                        const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.select_eq");
  span.set_rows_in(sel.size());
  PositionVector out =
      MorselSelect(ctx, sel.size(),
                   [&](uint64_t b, uint64_t e, PositionVector* out) {
                     for (uint64_t j = b; j < e; ++j) {
                       if (col[sel[j]] == value) out->push_back(sel[j]);
                     }
                   });
  span.set_rows_out(out.size());
  return out;
}

PositionVector SelectNe(std::span<const uint64_t> col,
                        const PositionVector& sel, uint64_t value,
                        const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.select_ne");
  span.set_rows_in(sel.size());
  PositionVector out =
      MorselSelect(ctx, sel.size(),
                   [&](uint64_t b, uint64_t e, PositionVector* out) {
                     for (uint64_t j = b; j < e; ++j) {
                       if (col[sel[j]] != value) out->push_back(sel[j]);
                     }
                   });
  span.set_rows_out(out.size());
  return out;
}

std::pair<uint32_t, uint32_t> EqRangeSorted(std::span<const uint64_t> col,
                                            uint64_t value) {
  const auto lo = std::lower_bound(col.begin(), col.end(), value);
  const auto hi = std::upper_bound(lo, col.end(), value);
  return {static_cast<uint32_t>(lo - col.begin()),
          static_cast<uint32_t>(hi - col.begin())};
}

std::pair<uint32_t, uint32_t> EqRangeSorted2(
    std::span<const uint64_t> primary, std::span<const uint64_t> secondary,
    uint64_t v1, uint64_t v2) {
  const auto [plo, phi] = EqRangeSorted(primary, v1);
  const auto sub = secondary.subspan(plo, phi - plo);
  const auto [slo, shi] = EqRangeSorted(sub, v2);
  return {plo + slo, plo + shi};
}

std::vector<uint64_t> Gather(std::span<const uint64_t> col,
                             const PositionVector& sel,
                             const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.gather");
  span.set_rows_in(sel.size());
  span.set_rows_out(sel.size());
  std::vector<uint64_t> out(sel.size());
  ctx.ParallelFor(sel.size(), kMorsel,
                  [&](uint64_t b, uint64_t e, uint64_t) {
                    for (uint64_t i = b; i < e; ++i) out[i] = col[sel[i]];
                  });
  return out;
}

PositionVector SelectMarked(std::span<const uint64_t> col, const MarkSet& set,
                            const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.select_marked");
  span.set_rows_in(col.size());
  PositionVector out =
      MorselSelect(ctx, col.size(),
                   [&](uint64_t b, uint64_t e, PositionVector* out) {
                     for (uint64_t i = b; i < e; ++i) {
                       if (set.Test(col[i])) {
                         out->push_back(static_cast<uint32_t>(i));
                       }
                     }
                   });
  span.set_rows_out(out.size());
  return out;
}

PositionVector SelectMarked(std::span<const uint64_t> col,
                            const PositionVector& sel, const MarkSet& set,
                            const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.select_marked");
  span.set_rows_in(sel.size());
  PositionVector out =
      MorselSelect(ctx, sel.size(),
                   [&](uint64_t b, uint64_t e, PositionVector* out) {
                     for (uint64_t j = b; j < e; ++j) {
                       if (set.Test(col[sel[j]])) out->push_back(sel[j]);
                     }
                   });
  span.set_rows_out(out.size());
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    std::span<const uint64_t> keys, uint64_t universe_size,
    const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.count_by_key");
  span.set_rows_in(keys.size());
  std::vector<std::pair<uint64_t, uint64_t>> out =
      DenseCount(ctx, keys.size(), universe_size,
                 [&](uint64_t b, uint64_t e, std::vector<uint64_t>* counts) {
                   for (uint64_t i = b; i < e; ++i) {
                     SWAN_DCHECK_LT(keys[i], universe_size);
                     ++(*counts)[keys[i]];
                   }
                 });
  span.set_rows_out(out.size());
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    std::span<const uint64_t> col, const PositionVector& sel,
    uint64_t universe_size, const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.count_by_key");
  span.set_rows_in(sel.size());
  std::vector<std::pair<uint64_t, uint64_t>> out =
      DenseCount(ctx, sel.size(), universe_size,
                 [&](uint64_t b, uint64_t e, std::vector<uint64_t>* counts) {
                   for (uint64_t j = b; j < e; ++j) {
                     SWAN_DCHECK_LT(col[sel[j]], universe_size);
                     ++(*counts)[col[sel[j]]];
                   }
                 });
  span.set_rows_out(out.size());
  return out;
}

std::vector<PairCount> CountByPair(std::span<const uint64_t> a,
                                   std::span<const uint64_t> b,
                                   const exec::ExecContext& ctx) {
  SWAN_CHECK_EQ(a.size(), b.size());
  obs::Span span(ctx.trace(), "ops.count_by_pair");
  span.set_rows_in(a.size());
  const uint64_t n = a.size();
  std::vector<uint64_t> packed(n);
  ctx.ParallelFor(n, kMorsel, [&](uint64_t lo, uint64_t hi, uint64_t) {
    for (uint64_t i = lo; i < hi; ++i) {
      SWAN_CHECK_MSG(a[i] < (1ull << 32) && b[i] < (1ull << 32),
                     "CountByPair requires 32-bit dictionary ids");
      packed[i] = (a[i] << 32) | b[i];
    }
  });

  // Sort contiguous shards in parallel, then count while merging the
  // sorted runs — the (value, count) stream is the same no matter how the
  // input was sharded.
  const uint64_t shards = ctx.ShardsFor(n, kMorsel);
  struct Run {
    uint64_t pos;
    uint64_t end;
  };
  std::vector<Run> runs;
  if (shards <= 1) {
    std::sort(packed.begin(), packed.end());
    runs.push_back(Run{0, n});
  } else {
    const uint64_t grain = (n + shards - 1) / shards;
    ctx.ParallelFor(n, grain, [&](uint64_t lo, uint64_t hi, uint64_t) {
      std::sort(packed.begin() + static_cast<ptrdiff_t>(lo),
                packed.begin() + static_cast<ptrdiff_t>(hi));
    });
    for (uint64_t lo = 0; lo < n; lo += grain) {
      runs.push_back(Run{lo, std::min(lo + grain, n)});
    }
  }

  std::vector<PairCount> out;
  for (;;) {
    uint64_t best = 0;
    bool any = false;
    for (const Run& r : runs) {
      if (r.pos < r.end && (!any || packed[r.pos] < best)) {
        best = packed[r.pos];
        any = true;
      }
    }
    if (!any) break;
    uint64_t count = 0;
    for (Run& r : runs) {
      while (r.pos < r.end && packed[r.pos] == best) {
        ++r.pos;
        ++count;
      }
    }
    out.push_back(
        PairCount{best >> 32, best & 0xFFFFFFFFull, count});
  }
  span.set_rows_out(out.size());
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> MergeJoin(
    std::span<const uint64_t> left, std::span<const uint64_t> right,
    const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.merge_join");
  span.set_rows_in(left.size() + right.size());
  obs::Histogram* run_lengths = RunLengthHist(ctx);
  if (!ctx.parallel() || left.size() + right.size() < 2 * kMorsel) {
    std::vector<std::pair<uint32_t, uint32_t>> out;
    MergeJoinInto(left, right, 0, 0, &out, run_lengths);
    span.set_rows_out(out.size());
    return out;
  }

  // Key-range partitioning on the larger side. Boundaries sit on equal-run
  // edges, so every key (and therefore every output pair) belongs to
  // exactly one partition; the other side's matching range is recovered by
  // binary search. Partition p covers a strictly smaller key range than
  // partition p+1, so concatenating outputs in partition order reproduces
  // the serial key-ordered pair sequence exactly.
  const bool left_larger = left.size() >= right.size();
  const std::span<const uint64_t> big = left_larger ? left : right;
  const std::span<const uint64_t> small = left_larger ? right : left;
  const uint64_t parts_target =
      std::max<uint64_t>(static_cast<uint64_t>(ctx.threads()),
                         big.size() / kMorsel);
  const std::vector<uint64_t> bounds = RunAlignedBoundaries(big, parts_target);
  const uint64_t parts = bounds.size() - 1;
  if (parts <= 1) {
    std::vector<std::pair<uint32_t, uint32_t>> out;
    MergeJoinInto(left, right, 0, 0, &out, run_lengths);
    span.set_rows_out(out.size());
    return out;
  }
  ctx.counters().merge_join_partitions.fetch_add(parts,
                                                 std::memory_order_relaxed);

  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> outs(parts);
  ctx.ParallelFor(parts, 1, [&](uint64_t pb, uint64_t pe, uint64_t) {
    for (uint64_t p = pb; p < pe; ++p) {
      const uint64_t blo = bounds[p];
      const uint64_t bhi = bounds[p + 1];
      // Matching key range in the smaller side.
      const uint64_t slo = static_cast<uint64_t>(
          std::lower_bound(small.begin(), small.end(), big[blo]) -
          small.begin());
      const uint64_t shi = static_cast<uint64_t>(
          std::upper_bound(small.begin() + static_cast<ptrdiff_t>(slo),
                           small.end(), big[bhi - 1]) -
          small.begin());
      const auto big_sub = big.subspan(blo, bhi - blo);
      const auto small_sub = small.subspan(slo, shi - slo);
      // The histogram is safe to feed from worker lanes (atomic buckets)
      // and stays width-invariant: partition boundaries sit on equal-run
      // edges, so every run is observed exactly once.
      if (left_larger) {
        MergeJoinInto(big_sub, small_sub, static_cast<uint32_t>(blo),
                      static_cast<uint32_t>(slo), &outs[p], run_lengths);
      } else {
        MergeJoinInto(small_sub, big_sub, static_cast<uint32_t>(slo),
                      static_cast<uint32_t>(blo), &outs[p], run_lengths);
      }
    }
  });

  size_t total = 0;
  for (const auto& o : outs) total += o.size();
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(total);
  for (const auto& o : outs) out.insert(out.end(), o.begin(), o.end());
  span.set_rows_out(out.size());
  return out;
}

uint64_t MergeCountMatches(std::span<const uint64_t> values,
                           std::span<const uint64_t> keys,
                           const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.merge_count");
  span.set_rows_in(values.size() + keys.size());
  const uint64_t n = values.size();
  if (ctx.parallel() && n >= 2 * kMorsel && !keys.empty()) {
    // Range-partition `values`; each chunk counts matches against the key
    // subrange it can touch. Per-element membership is independent, so the
    // per-chunk counts are additive and the total equals the serial count.
    const uint64_t chunks = (n + kMorsel - 1) / kMorsel;
    std::vector<uint64_t> partial(chunks, 0);
    ctx.ParallelFor(n, kMorsel, [&](uint64_t b, uint64_t e, uint64_t c) {
      const auto kb =
          std::lower_bound(keys.begin(), keys.end(), values[b]);
      uint64_t count = 0;
      size_t i = b;
      auto j = kb;
      while (i < e && j != keys.end()) {
        if (values[i] < *j) {
          ++i;
        } else if (*j < values[i]) {
          ++j;
        } else {
          ++count;
          ++i;  // keys are unique; values may repeat
        }
      }
      partial[c] = count;
    });
    uint64_t total = 0;
    for (uint64_t c : partial) total += c;
    span.set_rows_out(total);
    return total;
  }
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < values.size() && j < keys.size()) {
    if (values[i] < keys[j]) {
      ++i;
    } else if (keys[j] < values[i]) {
      ++j;
    } else {
      ++count;
      ++i;  // keys are unique; values may repeat
    }
  }
  span.set_rows_out(count);
  return count;
}

PositionVector MergeSelectPositions(std::span<const uint64_t> values,
                                    std::span<const uint64_t> keys,
                                    const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.merge_select");
  span.set_rows_in(values.size() + keys.size());
  const uint64_t n = values.size();
  if (ctx.parallel() && n >= 2 * kMorsel && !keys.empty()) {
    // Range-partition `values`; chunk outputs concatenate in chunk order,
    // which is ascending position order — exactly the serial sequence.
    PositionVector out =
        MorselSelect(ctx, n, [&](uint64_t b, uint64_t e, PositionVector* out) {
          auto j = std::lower_bound(keys.begin(), keys.end(), values[b]);
          size_t i = b;
          while (i < e && j != keys.end()) {
            if (values[i] < *j) {
              ++i;
            } else if (*j < values[i]) {
              ++j;
            } else {
              out->push_back(static_cast<uint32_t>(i));
              ++i;
            }
          }
        });
    span.set_rows_out(out.size());
    return out;
  }
  PositionVector out;
  size_t i = 0, j = 0;
  while (i < values.size() && j < keys.size()) {
    if (values[i] < keys[j]) {
      ++i;
    } else if (keys[j] < values[i]) {
      ++j;
    } else {
      out.push_back(static_cast<uint32_t>(i));
      ++i;
    }
  }
  span.set_rows_out(out.size());
  return out;
}

std::vector<uint64_t> SortedIntersect(std::span<const uint64_t> a,
                                      std::span<const uint64_t> b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint64_t> UnionDistinct(
    const std::vector<std::vector<uint64_t>>& lists,
    const exec::ExecContext& ctx) {
  obs::Span span(ctx.trace(), "ops.union_distinct");
  size_t rows_in = 0;
  for (const auto& l : lists) rows_in += l.size();
  span.set_rows_in(rows_in);
  if (!ctx.parallel() || lists.size() <= 1) {
    std::vector<uint64_t> out;
    out.reserve(rows_in);
    for (const auto& l : lists) out.insert(out.end(), l.begin(), l.end());
    out = SortDistinct(std::move(out));
    span.set_rows_out(out.size());
    return out;
  }

  // Sort-distinct every list in parallel, then a parallel pairwise merge
  // tree. A sorted set is one value regardless of merge shape, so the
  // result matches the serial path exactly.
  std::vector<std::vector<uint64_t>> sorted(lists.size());
  ctx.ParallelFor(lists.size(), 1, [&](uint64_t b, uint64_t e, uint64_t) {
    for (uint64_t l = b; l < e; ++l) sorted[l] = SortDistinct(lists[l]);
  });
  while (sorted.size() > 1) {
    const uint64_t pairs = sorted.size() / 2;
    std::vector<std::vector<uint64_t>> next((sorted.size() + 1) / 2);
    ctx.ParallelFor(pairs, 1, [&](uint64_t b, uint64_t e, uint64_t) {
      for (uint64_t p = b; p < e; ++p) {
        next[p] = SetUnion2(sorted[2 * p], sorted[2 * p + 1]);
      }
    });
    if (sorted.size() % 2 != 0) next.back() = std::move(sorted.back());
    sorted.swap(next);
  }
  span.set_rows_out(sorted.front().size());
  return std::move(sorted.front());
}

std::vector<uint64_t> SortDistinct(std::vector<uint64_t> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

// --- Encoded execution ----------------------------------------------------

namespace {

using Rep = EncodedColumn::Rep;

// Monotone positional reader over an RLE column: amortized O(1) when
// positions arrive in ascending order (the common case for selection
// vectors), falling back to a binary-search reseek on jumps.
class RleReader {
 public:
  explicit RleReader(const EncodedColumn& enc) : enc_(&enc) {}

  uint64_t At(uint64_t pos) {
    const auto& runs = enc_->runs();
    const RleRun* r = &runs[idx_];
    if (pos < r->start || pos >= r->start + r->length) {
      if (idx_ + 1 < runs.size() && pos >= runs[idx_ + 1].start &&
          pos < runs[idx_ + 1].start + runs[idx_ + 1].length) {
        ++idx_;
      } else {
        idx_ = enc_->RunIndexOf(pos);
      }
      r = &runs[idx_];
    }
    return r->value;
  }

 private:
  const EncodedColumn* enc_;
  size_t idx_ = 0;
};

// Pull iterator over the maximal equal-value runs of enc[lo, hi): the
// merge-join building block ("advance run-by-run, decompress only at
// projection"). Adjacent stored RLE runs with equal values are coalesced
// (the encoder caps a stored run at 2^32 - 1 rows); flat data is scanned
// in place and packed data unpacked kDecodeBatch values at a time, so the
// cursor never materializes the full range.
class RunCursor {
 public:
  RunCursor(const EncodedColumn& enc, uint64_t lo, uint64_t hi)
      : enc_(&enc), hi_(hi), next_(lo) {
    if (enc_->rep() == Rep::kRle && lo < hi_) run_idx_ = enc_->RunIndexOf(lo);
    Advance();
  }

  bool done() const { return start_ >= hi_; }
  uint64_t value() const { return value_; }
  uint64_t start() const { return start_; }
  uint64_t end() const { return end_; }
  uint64_t length() const { return end_ - start_; }
  void Next() { Advance(); }

 private:
  uint64_t At(uint64_t pos) {
    if (enc_->rep() == Rep::kFlat) return enc_->flat()[pos];
    if (pos >= buf_hi_ || pos < buf_lo_) {
      buf_lo_ = pos;
      buf_hi_ = std::min(pos + kDecodeBatch, hi_);
      buf_.resize(buf_hi_ - buf_lo_);
      enc_->MaterializeInto(buf_lo_, buf_hi_, buf_.data());
    }
    return buf_[pos - buf_lo_];
  }

  void Advance() {
    start_ = next_;
    if (start_ >= hi_) {
      end_ = start_;
      return;
    }
    if (enc_->rep() == Rep::kRle) {
      const auto& runs = enc_->runs();
      value_ = runs[run_idx_].value;
      for (;;) {
        end_ = std::min<uint64_t>(
            runs[run_idx_].start + runs[run_idx_].length, hi_);
        if (end_ >= hi_) break;
        if (runs[run_idx_ + 1].value != value_) break;
        ++run_idx_;
      }
      // Ending short of hi_ means the next Advance starts in the
      // following run.
      if (end_ < hi_) ++run_idx_;
    } else {
      value_ = At(start_);
      end_ = start_ + 1;
      while (end_ < hi_ && At(end_) == value_) ++end_;
    }
    next_ = end_;
  }

  const EncodedColumn* enc_;
  uint64_t hi_;
  uint64_t next_;
  uint64_t start_ = 0;
  uint64_t end_ = 0;
  uint64_t value_ = 0;
  size_t run_idx_ = 0;
  std::vector<uint64_t> buf_;  // packed-rep decode window
  uint64_t buf_lo_ = 0;
  uint64_t buf_hi_ = 0;
};

// lower/upper bound over [lo, hi) of a sorted encoded column by decoded
// value. ValueAt is O(1) for flat/packed and O(log runs) for RLE, so
// these are at worst O(log^2).
uint64_t EncLowerBound(const EncodedColumn& enc, uint64_t lo, uint64_t hi,
                       uint64_t value) {
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (enc.ValueAt(mid) < value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint64_t EncUpperBound(const EncodedColumn& enc, uint64_t lo, uint64_t hi,
                       uint64_t value) {
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (enc.ValueAt(mid) <= value) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// Equal-run-aligned partition boundaries over [lo, hi) of a sorted
// encoded column — the encoded analog of RunAlignedBoundaries. Each
// tentative cut advances to the end of the maximal equal-value run
// containing it, so no run straddles a partition (keeping partitioned
// merge-join output and the run-length histogram width-invariant).
std::vector<uint64_t> EncRunAlignedBoundaries(const EncodedColumn& enc,
                                              uint64_t lo, uint64_t hi,
                                              uint64_t target_parts) {
  const uint64_t size = hi - lo;
  const uint64_t grain = std::max<uint64_t>(1, size / target_parts);
  std::vector<uint64_t> bounds;
  bounds.push_back(lo);
  for (uint64_t t = lo + grain; t < hi; t += grain) {
    const uint64_t cut = EncUpperBound(enc, t, hi, enc.ValueAt(t));
    if (cut > bounds.back() && cut < hi) bounds.push_back(cut);
  }
  bounds.push_back(hi);
  return bounds;
}

// Serial merge-join kernel: materialized sorted left against the encoded
// sorted right range [rlo, rhi), run-by-run. Emits (left_off + left
// index, right position - right_base); a matching run crosses without
// decoding any right row.
void MergeJoinEncInto(std::span<const uint64_t> left, uint32_t left_off,
                      const EncodedColumn& right, uint64_t rlo, uint64_t rhi,
                      uint64_t right_base,
                      std::vector<std::pair<uint32_t, uint32_t>>* out,
                      obs::Histogram* run_lengths = nullptr) {
  RunCursor rc(right, rlo, rhi);
  uint32_t i = 0;
  const uint32_t n = static_cast<uint32_t>(left.size());
  while (i < n && !rc.done()) {
    if (left[i] < rc.value()) {
      ++i;
    } else if (rc.value() < left[i]) {
      rc.Next();
    } else {
      const uint64_t v = left[i];
      uint32_t i_end = i;
      while (i_end < n && left[i_end] == v) ++i_end;
      if (run_lengths != nullptr) {
        run_lengths->Observe(i_end - i);
        run_lengths->Observe(rc.length());
      }
      for (uint32_t a = i; a < i_end; ++a) {
        for (uint64_t p = rc.start(); p < rc.end(); ++p) {
          out->emplace_back(left_off + a,
                            static_cast<uint32_t>(p - right_base));
        }
      }
      i = i_end;
      rc.Next();
    }
  }
}

}  // namespace

void MarkSet::MarkAll(const EncodedColumn& col) {
  switch (col.rep()) {
    case Rep::kFlat:
      MarkAll(std::span<const uint64_t>(col.flat()));
      return;
    case Rep::kRle:
      for (const RleRun& r : col.runs()) Mark(r.value);
      return;
    case Rep::kPacked:
      if (!col.palette().empty()) {
        // Every palette entry occurs in the column by construction.
        for (uint64_t v : col.palette()) Mark(v);
        return;
      }
      ForEachDecodedBatch(col, 0, col.size(),
                          [&](uint64_t, const uint64_t* values, uint64_t n) {
                            for (uint64_t i = 0; i < n; ++i) Mark(values[i]);
                          });
      return;
  }
}

PositionVector SelectEq(const EncodedColumn& col, uint64_t value,
                        const exec::ExecContext& ctx) {
  if (col.rep() == Rep::kFlat) {
    return SelectEq(std::span<const uint64_t>(col.flat()), value, ctx);
  }
  obs::Span span(ctx.trace(), "ops.select_eq_enc");
  span.set_rows_in(col.size());
  PositionVector out;
  if (col.rep() == Rep::kRle) {
    // One comparison per run; a matching run emits its whole position
    // range. Chunk order is run order is position order.
    const auto& runs = col.runs();
    out = MorselSelect(ctx, runs.size(),
                       [&](uint64_t b, uint64_t e, PositionVector* out) {
                         for (uint64_t r = b; r < e; ++r) {
                           if (runs[r].value != value) continue;
                           const uint64_t end = runs[r].start + runs[r].length;
                           for (uint64_t p = runs[r].start; p < end; ++p) {
                             out->push_back(static_cast<uint32_t>(p));
                           }
                         }
                       });
  } else {
    // Compare in the code domain: the probe value is mapped once and no
    // row is ever decoded. kMorsel chunks start on pack-word edges.
    uint64_t code;
    if (!col.CodeFor(value, &code)) {
      span.set_rows_out(0);
      return out;  // value cannot occur in this column
    }
    const uint64_t* words = col.words().data();
    const int width = col.bit_width();
    out = MorselSelect(ctx, col.size(),
                       [&](uint64_t b, uint64_t e, PositionVector* out) {
                         for (uint64_t i = b; i < e; ++i) {
                           if (PackedValueAt(words, width, i) == code) {
                             out->push_back(static_cast<uint32_t>(i));
                           }
                         }
                       });
  }
  span.set_rows_out(out.size());
  return out;
}

PositionVector SelectEq(const EncodedColumn& col, const PositionVector& sel,
                        uint64_t value, const exec::ExecContext& ctx) {
  if (col.rep() == Rep::kFlat) {
    return SelectEq(std::span<const uint64_t>(col.flat()), sel, value, ctx);
  }
  obs::Span span(ctx.trace(), "ops.select_eq_enc");
  span.set_rows_in(sel.size());
  PositionVector out;
  if (col.rep() == Rep::kRle) {
    out = MorselSelect(ctx, sel.size(),
                       [&](uint64_t b, uint64_t e, PositionVector* out) {
                         RleReader reader(col);
                         for (uint64_t j = b; j < e; ++j) {
                           if (reader.At(sel[j]) == value) {
                             out->push_back(sel[j]);
                           }
                         }
                       });
  } else {
    uint64_t code;
    if (!col.CodeFor(value, &code)) {
      span.set_rows_out(0);
      return out;
    }
    const uint64_t* words = col.words().data();
    const int width = col.bit_width();
    out = MorselSelect(ctx, sel.size(),
                       [&](uint64_t b, uint64_t e, PositionVector* out) {
                         for (uint64_t j = b; j < e; ++j) {
                           if (PackedValueAt(words, width, sel[j]) == code) {
                             out->push_back(sel[j]);
                           }
                         }
                       });
  }
  span.set_rows_out(out.size());
  return out;
}

std::pair<uint32_t, uint32_t> EqRangeSorted(const EncodedColumn& col,
                                            uint64_t value) {
  if (col.rep() == Rep::kFlat) {
    return EqRangeSorted(std::span<const uint64_t>(col.flat()), value);
  }
  if (col.rep() == Rep::kRle) {
    // A sorted column's runs are sorted by value: binary search the run
    // directory instead of the row space.
    const auto& runs = col.runs();
    const auto lo = std::lower_bound(
        runs.begin(), runs.end(), value,
        [](const RleRun& r, uint64_t v) { return r.value < v; });
    const auto hi = std::upper_bound(
        lo, runs.end(), value,
        [](uint64_t v, const RleRun& r) { return v < r.value; });
    const uint64_t lo_pos = lo == runs.end() ? col.size() : lo->start;
    const uint64_t hi_pos = hi == runs.end() ? col.size() : hi->start;
    return {static_cast<uint32_t>(lo_pos), static_cast<uint32_t>(hi_pos)};
  }
  const uint64_t lo = EncLowerBound(col, 0, col.size(), value);
  const uint64_t hi = EncUpperBound(col, lo, col.size(), value);
  return {static_cast<uint32_t>(lo), static_cast<uint32_t>(hi)};
}

std::pair<uint32_t, uint32_t> EqRangeSorted2(const EncodedColumn& primary,
                                             const EncodedColumn& secondary,
                                             uint64_t v1, uint64_t v2) {
  const auto [plo, phi] = EqRangeSorted(primary, v1);
  const uint64_t slo = EncLowerBound(secondary, plo, phi, v2);
  const uint64_t shi = EncUpperBound(secondary, slo, phi, v2);
  return {static_cast<uint32_t>(slo), static_cast<uint32_t>(shi)};
}

std::vector<uint64_t> Gather(const EncodedColumn& col,
                             const PositionVector& sel,
                             const exec::ExecContext& ctx) {
  if (col.rep() == Rep::kFlat) {
    return Gather(std::span<const uint64_t>(col.flat()), sel, ctx);
  }
  obs::Span span(ctx.trace(), "ops.gather_enc");
  span.set_rows_in(sel.size());
  span.set_rows_out(sel.size());
  std::vector<uint64_t> out(sel.size());
  if (col.rep() == Rep::kRle) {
    ctx.ParallelFor(sel.size(), kMorsel,
                    [&](uint64_t b, uint64_t e, uint64_t) {
                      RleReader reader(col);
                      for (uint64_t i = b; i < e; ++i) {
                        out[i] = reader.At(sel[i]);
                      }
                    });
  } else {
    const uint64_t* words = col.words().data();
    const int width = col.bit_width();
    ctx.ParallelFor(sel.size(), kMorsel,
                    [&](uint64_t b, uint64_t e, uint64_t) {
                      for (uint64_t i = b; i < e; ++i) {
                        out[i] = col.DecodeCode(
                            PackedValueAt(words, width, sel[i]));
                      }
                    });
  }
  return out;
}

PositionVector SelectMarked(const EncodedColumn& col, const MarkSet& set,
                            const exec::ExecContext& ctx) {
  if (col.rep() == Rep::kFlat) {
    return SelectMarked(std::span<const uint64_t>(col.flat()), set, ctx);
  }
  obs::Span span(ctx.trace(), "ops.select_marked_enc");
  span.set_rows_in(col.size());
  PositionVector out;
  if (col.rep() == Rep::kRle) {
    const auto& runs = col.runs();
    out = MorselSelect(ctx, runs.size(),
                       [&](uint64_t b, uint64_t e, PositionVector* out) {
                         for (uint64_t r = b; r < e; ++r) {
                           if (!set.Test(runs[r].value)) continue;
                           const uint64_t end = runs[r].start + runs[r].length;
                           for (uint64_t p = runs[r].start; p < end; ++p) {
                             out->push_back(static_cast<uint32_t>(p));
                           }
                         }
                       });
  } else {
    // Hoist the membership test into code space: one Test per palette
    // entry up front, then the scan never decodes.
    const uint64_t* words = col.words().data();
    const int width = col.bit_width();
    std::vector<char> code_marked;
    if (!col.palette().empty()) {
      code_marked.resize(col.palette().size());
      for (size_t c = 0; c < col.palette().size(); ++c) {
        code_marked[c] = set.Test(col.palette()[c]) ? 1 : 0;
      }
    }
    out = MorselSelect(
        ctx, col.size(), [&](uint64_t b, uint64_t e, PositionVector* out) {
          for (uint64_t i = b; i < e; ++i) {
            const uint64_t code = PackedValueAt(words, width, i);
            const bool hit = code_marked.empty() ? set.Test(code)
                                                 : code_marked[code] != 0;
            if (hit) out->push_back(static_cast<uint32_t>(i));
          }
        });
  }
  span.set_rows_out(out.size());
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    const EncodedColumn& keys, uint64_t universe_size,
    const exec::ExecContext& ctx) {
  if (keys.rep() == Rep::kFlat) {
    return CountByKeyDense(std::span<const uint64_t>(keys.flat()),
                           universe_size, ctx);
  }
  obs::Span span(ctx.trace(), "ops.count_by_key_enc");
  span.set_rows_in(keys.size());
  std::vector<std::pair<uint64_t, uint64_t>> out;
  if (keys.rep() == Rep::kRle) {
    // A run adds its length to one counter: O(runs), not O(rows).
    const auto& runs = keys.runs();
    out = DenseCount(ctx, runs.size(), universe_size,
                     [&](uint64_t b, uint64_t e, std::vector<uint64_t>* c) {
                       for (uint64_t r = b; r < e; ++r) {
                         SWAN_DCHECK_LT(runs[r].value, universe_size);
                         (*c)[runs[r].value] += runs[r].length;
                       }
                     });
  } else if (!keys.palette().empty()) {
    // Aggregate in code space — the counter array is palette-sized, not
    // universe-sized — then decode once per distinct value. The palette
    // is sorted, so the output is value-ordered like the span kernel's.
    const uint64_t* words = keys.words().data();
    const int width = keys.bit_width();
    out = DenseCount(ctx, keys.size(), keys.palette().size(),
                     [&](uint64_t b, uint64_t e, std::vector<uint64_t>* c) {
                       for (uint64_t i = b; i < e; ++i) {
                         ++(*c)[PackedValueAt(words, width, i)];
                       }
                     });
    for (auto& [value, count] : out) value = keys.palette()[value];
  } else {
    const uint64_t* words = keys.words().data();
    const int width = keys.bit_width();
    out = DenseCount(ctx, keys.size(), universe_size,
                     [&](uint64_t b, uint64_t e, std::vector<uint64_t>* c) {
                       for (uint64_t i = b; i < e; ++i) {
                         const uint64_t v = PackedValueAt(words, width, i);
                         SWAN_DCHECK_LT(v, universe_size);
                         ++(*c)[v];
                       }
                     });
  }
  span.set_rows_out(out.size());
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    const EncodedColumn& col, const PositionVector& sel,
    uint64_t universe_size, const exec::ExecContext& ctx) {
  if (col.rep() == Rep::kFlat) {
    return CountByKeyDense(std::span<const uint64_t>(col.flat()), sel,
                           universe_size, ctx);
  }
  obs::Span span(ctx.trace(), "ops.count_by_key_enc");
  span.set_rows_in(sel.size());
  std::vector<std::pair<uint64_t, uint64_t>> out;
  if (col.rep() == Rep::kRle) {
    out = DenseCount(ctx, sel.size(), universe_size,
                     [&](uint64_t b, uint64_t e, std::vector<uint64_t>* c) {
                       RleReader reader(col);
                       for (uint64_t j = b; j < e; ++j) {
                         const uint64_t v = reader.At(sel[j]);
                         SWAN_DCHECK_LT(v, universe_size);
                         ++(*c)[v];
                       }
                     });
  } else if (!col.palette().empty()) {
    const uint64_t* words = col.words().data();
    const int width = col.bit_width();
    out = DenseCount(ctx, sel.size(), col.palette().size(),
                     [&](uint64_t b, uint64_t e, std::vector<uint64_t>* c) {
                       for (uint64_t j = b; j < e; ++j) {
                         ++(*c)[PackedValueAt(words, width, sel[j])];
                       }
                     });
    for (auto& [value, count] : out) value = col.palette()[value];
  } else {
    const uint64_t* words = col.words().data();
    const int width = col.bit_width();
    out = DenseCount(ctx, sel.size(), universe_size,
                     [&](uint64_t b, uint64_t e, std::vector<uint64_t>* c) {
                       for (uint64_t j = b; j < e; ++j) {
                         const uint64_t v =
                             PackedValueAt(words, width, sel[j]);
                         SWAN_DCHECK_LT(v, universe_size);
                         ++(*c)[v];
                       }
                     });
  }
  span.set_rows_out(out.size());
  return out;
}

std::vector<PairCount> CountByPair(const EncodedColumn& a,
                                   const EncodedColumn& b,
                                   const exec::ExecContext& ctx) {
  SWAN_CHECK_EQ(a.size(), b.size());
  if (a.rep() == Rep::kFlat && b.rep() == Rep::kFlat) {
    return CountByPair(std::span<const uint64_t>(a.flat()),
                       std::span<const uint64_t>(b.flat()), ctx);
  }
  obs::Span span(ctx.trace(), "ops.count_by_pair_enc");
  span.set_rows_in(a.size());
  // Lockstep run walk: every maximal segment where both columns are
  // constant contributes its whole length in O(1). Segment count is
  // bounded by runs(a) + runs(b), so the sort-and-merge aggregation
  // below works on run-compressed data.
  std::vector<PairCount> segs;
  RunCursor ca(a, 0, a.size());
  RunCursor cb(b, 0, b.size());
  uint64_t pos = 0;
  while (pos < a.size()) {
    const uint64_t seg_end = std::min(ca.end(), cb.end());
    SWAN_CHECK_MSG(ca.value() < (1ull << 32) && cb.value() < (1ull << 32),
                   "CountByPair requires 32-bit dictionary ids");
    segs.push_back(PairCount{ca.value(), cb.value(), seg_end - pos});
    pos = seg_end;
    if (ca.end() == pos) ca.Next();
    if (cb.end() == pos) cb.Next();
  }
  std::sort(segs.begin(), segs.end(), [](const PairCount& x,
                                         const PairCount& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  std::vector<PairCount> out;
  for (const PairCount& s : segs) {
    if (!out.empty() && out.back().a == s.a && out.back().b == s.b) {
      out.back().count += s.count;
    } else {
      out.push_back(s);
    }
  }
  span.set_rows_out(out.size());
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> MergeJoin(
    std::span<const uint64_t> left, const EncodedColumn& right, uint64_t rlo,
    uint64_t rhi, const exec::ExecContext& ctx) {
  SWAN_DCHECK_LE(rlo, rhi);
  SWAN_DCHECK_LE(rhi, right.size());
  if (right.rep() == Rep::kFlat) {
    // Right indices of the span kernel are already relative to the
    // subspan start.
    return MergeJoin(
        left,
        std::span<const uint64_t>(right.flat()).subspan(rlo, rhi - rlo), ctx);
  }
  obs::Span span(ctx.trace(), "ops.merge_join_enc");
  span.set_rows_in(left.size() + (rhi - rlo));
  obs::Histogram* run_lengths = RunLengthHist(ctx);
  if (!ctx.parallel() || left.size() + (rhi - rlo) < 2 * kMorsel) {
    std::vector<std::pair<uint32_t, uint32_t>> out;
    MergeJoinEncInto(left, 0, right, rlo, rhi, rlo, &out, run_lengths);
    span.set_rows_out(out.size());
    return out;
  }

  // Partition the encoded side at equal-run edges; each partition
  // recovers its matching left range by binary search. Same ordering
  // argument as the span kernel: partition p's key range strictly
  // precedes p+1's, so concatenation reproduces the serial sequence.
  const uint64_t parts_target =
      std::max<uint64_t>(static_cast<uint64_t>(ctx.threads()),
                         (rhi - rlo) / kMorsel);
  const std::vector<uint64_t> bounds =
      EncRunAlignedBoundaries(right, rlo, rhi, parts_target);
  const uint64_t parts = bounds.size() - 1;
  if (parts <= 1) {
    std::vector<std::pair<uint32_t, uint32_t>> out;
    MergeJoinEncInto(left, 0, right, rlo, rhi, rlo, &out, run_lengths);
    span.set_rows_out(out.size());
    return out;
  }
  ctx.counters().merge_join_partitions.fetch_add(parts,
                                                 std::memory_order_relaxed);

  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> outs(parts);
  ctx.ParallelFor(parts, 1, [&](uint64_t pb, uint64_t pe, uint64_t) {
    for (uint64_t p = pb; p < pe; ++p) {
      const uint64_t blo = bounds[p];
      const uint64_t bhi = bounds[p + 1];
      const uint64_t first = right.ValueAt(blo);
      const uint64_t last = right.ValueAt(bhi - 1);
      const uint64_t llo = static_cast<uint64_t>(
          std::lower_bound(left.begin(), left.end(), first) - left.begin());
      const uint64_t lhi = static_cast<uint64_t>(
          std::upper_bound(left.begin() + static_cast<ptrdiff_t>(llo),
                           left.end(), last) -
          left.begin());
      MergeJoinEncInto(left.subspan(llo, lhi - llo),
                       static_cast<uint32_t>(llo), right, blo, bhi, rlo,
                       &outs[p], run_lengths);
    }
  });

  size_t total = 0;
  for (const auto& o : outs) total += o.size();
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(total);
  for (const auto& o : outs) out.insert(out.end(), o.begin(), o.end());
  span.set_rows_out(out.size());
  return out;
}

uint64_t MergeCountMatches(const EncodedColumn& values, uint64_t lo,
                           uint64_t hi, std::span<const uint64_t> keys,
                           const exec::ExecContext& ctx) {
  SWAN_DCHECK_LE(lo, hi);
  SWAN_DCHECK_LE(hi, values.size());
  if (values.rep() == Rep::kFlat) {
    return MergeCountMatches(
        std::span<const uint64_t>(values.flat()).subspan(lo, hi - lo), keys,
        ctx);
  }
  obs::Span span(ctx.trace(), "ops.merge_count_enc");
  span.set_rows_in((hi - lo) + keys.size());
  // Run-by-run merge: a matching run contributes its length in O(1), so
  // the cost is O(runs + keys) regardless of row count. Callers that want
  // parallelism fan out over row ranges (counts are additive).
  uint64_t count = 0;
  RunCursor rc(values, lo, hi);
  size_t j = 0;
  while (!rc.done() && j < keys.size()) {
    if (rc.value() < keys[j]) {
      rc.Next();
    } else if (keys[j] < rc.value()) {
      ++j;
    } else {
      count += rc.length();
      rc.Next();
      ++j;  // keys are unique
    }
  }
  span.set_rows_out(count);
  return count;
}

PositionVector MergeSelectPositions(const EncodedColumn& values, uint64_t lo,
                                    uint64_t hi,
                                    std::span<const uint64_t> keys,
                                    const exec::ExecContext& ctx) {
  SWAN_DCHECK_LE(lo, hi);
  SWAN_DCHECK_LE(hi, values.size());
  if (values.rep() == Rep::kFlat) {
    return MergeSelectPositions(
        std::span<const uint64_t>(values.flat()).subspan(lo, hi - lo), keys,
        ctx);
  }
  obs::Span span(ctx.trace(), "ops.merge_select_enc");
  span.set_rows_in((hi - lo) + keys.size());
  PositionVector out;
  RunCursor rc(values, lo, hi);
  size_t j = 0;
  while (!rc.done() && j < keys.size()) {
    if (rc.value() < keys[j]) {
      rc.Next();
    } else if (keys[j] < rc.value()) {
      ++j;
    } else {
      // A matching run emits its position range without decoding.
      for (uint64_t p = rc.start(); p < rc.end(); ++p) {
        out.push_back(static_cast<uint32_t>(p - lo));
      }
      rc.Next();
      ++j;  // keys are unique
    }
  }
  span.set_rows_out(out.size());
  return out;
}

}  // namespace swan::colstore
