#include "colstore/ops.h"

#include <algorithm>

#include "common/macros.h"
#include "exec/thread_pool.h"

namespace swan::colstore {

namespace {

// Morsel size for scan kernels: 64Ki values (512 KB of ids) is large
// enough to amortize scheduling and small enough to load-balance skew.
constexpr uint64_t kMorsel = 1ull << 16;

PositionVector ConcatParts(std::vector<PositionVector>& parts) {
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  PositionVector out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

// Runs fill(begin, end, &part) over morsels of [0, n) and concatenates the
// per-chunk outputs in chunk order — the same sequence the serial scan
// would produce. Positions emitted by chunk c all precede chunk c+1's.
template <typename Fill>
PositionVector MorselSelect(uint64_t n, const Fill& fill) {
  if (exec::Threads() <= 1 || n < 2 * kMorsel) {
    PositionVector out;
    out.reserve(n / 8 + 8);
    fill(0, n, &out);
    return out;
  }
  const uint64_t chunks = (n + kMorsel - 1) / kMorsel;
  std::vector<PositionVector> parts(chunks);
  exec::ParallelFor(n, kMorsel, [&](uint64_t b, uint64_t e, uint64_t c) {
    parts[c].reserve((e - b) / 8 + 8);
    fill(b, e, &parts[c]);
  });
  return ConcatParts(parts);
}

// Shared tail of the dense count kernels: per-shard dense partials built
// in parallel, summed (a commutative merge — order-independent), then
// swept for the nonzero entries.
template <typename Accumulate>
std::vector<std::pair<uint64_t, uint64_t>> DenseCount(
    uint64_t n, uint64_t universe_size, const Accumulate& accumulate) {
  std::vector<uint64_t> counts;
  const uint64_t shards = exec::ShardsFor(n, kMorsel);
  if (shards <= 1) {
    counts.assign(universe_size, 0);
    accumulate(0, n, &counts);
  } else {
    const uint64_t grain = (n + shards - 1) / shards;
    std::vector<std::vector<uint64_t>> partials(shards);
    exec::ParallelFor(n, grain, [&](uint64_t b, uint64_t e, uint64_t c) {
      partials[c].assign(universe_size, 0);
      accumulate(b, e, &partials[c]);
    });
    counts = std::move(partials[0]);
    exec::ParallelFor(
        universe_size, kMorsel, [&](uint64_t b, uint64_t e, uint64_t) {
          for (uint64_t s = 1; s < shards; ++s) {
            const auto& p = partials[s];
            for (uint64_t k = b; k < e; ++k) counts[k] += p[k];
          }
        });
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (uint64_t k = 0; k < universe_size; ++k) {
    if (counts[k] != 0) out.emplace_back(k, counts[k]);
  }
  return out;
}

// Sorted-unique union of two sorted-unique lists.
std::vector<uint64_t> SetUnion2(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

PositionVector SelectEq(std::span<const uint64_t> col, uint64_t value) {
  return MorselSelect(col.size(),
                      [&](uint64_t b, uint64_t e, PositionVector* out) {
                        for (uint64_t i = b; i < e; ++i) {
                          if (col[i] == value) {
                            out->push_back(static_cast<uint32_t>(i));
                          }
                        }
                      });
}

PositionVector SelectEq(std::span<const uint64_t> col,
                        const PositionVector& sel, uint64_t value) {
  return MorselSelect(sel.size(),
                      [&](uint64_t b, uint64_t e, PositionVector* out) {
                        for (uint64_t j = b; j < e; ++j) {
                          if (col[sel[j]] == value) out->push_back(sel[j]);
                        }
                      });
}

PositionVector SelectNe(std::span<const uint64_t> col,
                        const PositionVector& sel, uint64_t value) {
  return MorselSelect(sel.size(),
                      [&](uint64_t b, uint64_t e, PositionVector* out) {
                        for (uint64_t j = b; j < e; ++j) {
                          if (col[sel[j]] != value) out->push_back(sel[j]);
                        }
                      });
}

std::pair<uint32_t, uint32_t> EqRangeSorted(std::span<const uint64_t> col,
                                            uint64_t value) {
  const auto lo = std::lower_bound(col.begin(), col.end(), value);
  const auto hi = std::upper_bound(lo, col.end(), value);
  return {static_cast<uint32_t>(lo - col.begin()),
          static_cast<uint32_t>(hi - col.begin())};
}

std::pair<uint32_t, uint32_t> EqRangeSorted2(
    std::span<const uint64_t> primary, std::span<const uint64_t> secondary,
    uint64_t v1, uint64_t v2) {
  const auto [plo, phi] = EqRangeSorted(primary, v1);
  const auto sub = secondary.subspan(plo, phi - plo);
  const auto [slo, shi] = EqRangeSorted(sub, v2);
  return {plo + slo, plo + shi};
}

std::vector<uint64_t> Gather(std::span<const uint64_t> col,
                             const PositionVector& sel) {
  std::vector<uint64_t> out(sel.size());
  exec::ParallelFor(sel.size(), kMorsel,
                    [&](uint64_t b, uint64_t e, uint64_t) {
                      for (uint64_t i = b; i < e; ++i) out[i] = col[sel[i]];
                    });
  return out;
}

PositionVector SelectMarked(std::span<const uint64_t> col,
                            const MarkSet& set) {
  return MorselSelect(col.size(),
                      [&](uint64_t b, uint64_t e, PositionVector* out) {
                        for (uint64_t i = b; i < e; ++i) {
                          if (set.Test(col[i])) {
                            out->push_back(static_cast<uint32_t>(i));
                          }
                        }
                      });
}

PositionVector SelectMarked(std::span<const uint64_t> col,
                            const PositionVector& sel, const MarkSet& set) {
  return MorselSelect(sel.size(),
                      [&](uint64_t b, uint64_t e, PositionVector* out) {
                        for (uint64_t j = b; j < e; ++j) {
                          if (set.Test(col[sel[j]])) out->push_back(sel[j]);
                        }
                      });
}

std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    std::span<const uint64_t> keys, uint64_t universe_size) {
  return DenseCount(keys.size(), universe_size,
                    [&](uint64_t b, uint64_t e, std::vector<uint64_t>* counts) {
                      for (uint64_t i = b; i < e; ++i) {
                        SWAN_DCHECK_LT(keys[i], universe_size);
                        ++(*counts)[keys[i]];
                      }
                    });
}

std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    std::span<const uint64_t> col, const PositionVector& sel,
    uint64_t universe_size) {
  return DenseCount(sel.size(), universe_size,
                    [&](uint64_t b, uint64_t e, std::vector<uint64_t>* counts) {
                      for (uint64_t j = b; j < e; ++j) {
                        SWAN_DCHECK_LT(col[sel[j]], universe_size);
                        ++(*counts)[col[sel[j]]];
                      }
                    });
}

std::vector<PairCount> CountByPair(std::span<const uint64_t> a,
                                   std::span<const uint64_t> b) {
  SWAN_CHECK_EQ(a.size(), b.size());
  const uint64_t n = a.size();
  std::vector<uint64_t> packed(n);
  exec::ParallelFor(n, kMorsel, [&](uint64_t lo, uint64_t hi, uint64_t) {
    for (uint64_t i = lo; i < hi; ++i) {
      SWAN_CHECK_MSG(a[i] < (1ull << 32) && b[i] < (1ull << 32),
                     "CountByPair requires 32-bit dictionary ids");
      packed[i] = (a[i] << 32) | b[i];
    }
  });

  // Sort contiguous shards in parallel, then count while merging the
  // sorted runs — the (value, count) stream is the same no matter how the
  // input was sharded.
  const uint64_t shards = exec::ShardsFor(n, kMorsel);
  struct Run {
    uint64_t pos;
    uint64_t end;
  };
  std::vector<Run> runs;
  if (shards <= 1) {
    std::sort(packed.begin(), packed.end());
    runs.push_back(Run{0, n});
  } else {
    const uint64_t grain = (n + shards - 1) / shards;
    exec::ParallelFor(n, grain, [&](uint64_t lo, uint64_t hi, uint64_t) {
      std::sort(packed.begin() + static_cast<ptrdiff_t>(lo),
                packed.begin() + static_cast<ptrdiff_t>(hi));
    });
    for (uint64_t lo = 0; lo < n; lo += grain) {
      runs.push_back(Run{lo, std::min(lo + grain, n)});
    }
  }

  std::vector<PairCount> out;
  for (;;) {
    uint64_t best = 0;
    bool any = false;
    for (const Run& r : runs) {
      if (r.pos < r.end && (!any || packed[r.pos] < best)) {
        best = packed[r.pos];
        any = true;
      }
    }
    if (!any) break;
    uint64_t count = 0;
    for (Run& r : runs) {
      while (r.pos < r.end && packed[r.pos] == best) {
        ++r.pos;
        ++count;
      }
    }
    out.push_back(
        PairCount{best >> 32, best & 0xFFFFFFFFull, count});
  }
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> MergeJoin(
    std::span<const uint64_t> left, std::span<const uint64_t> right) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  uint32_t i = 0, j = 0;
  const uint32_t n = static_cast<uint32_t>(left.size());
  const uint32_t m = static_cast<uint32_t>(right.size());
  while (i < n && j < m) {
    if (left[i] < right[j]) {
      ++i;
    } else if (right[j] < left[i]) {
      ++j;
    } else {
      // Equal run: emit the cross product.
      const uint64_t v = left[i];
      uint32_t i_end = i;
      while (i_end < n && left[i_end] == v) ++i_end;
      uint32_t j_end = j;
      while (j_end < m && right[j_end] == v) ++j_end;
      for (uint32_t a = i; a < i_end; ++a) {
        for (uint32_t b = j; b < j_end; ++b) {
          out.emplace_back(a, b);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return out;
}

uint64_t MergeCountMatches(std::span<const uint64_t> values,
                           std::span<const uint64_t> keys) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < values.size() && j < keys.size()) {
    if (values[i] < keys[j]) {
      ++i;
    } else if (keys[j] < values[i]) {
      ++j;
    } else {
      ++count;
      ++i;  // keys are unique; values may repeat
    }
  }
  return count;
}

PositionVector MergeSelectPositions(std::span<const uint64_t> values,
                                    std::span<const uint64_t> keys) {
  PositionVector out;
  size_t i = 0, j = 0;
  while (i < values.size() && j < keys.size()) {
    if (values[i] < keys[j]) {
      ++i;
    } else if (keys[j] < values[i]) {
      ++j;
    } else {
      out.push_back(static_cast<uint32_t>(i));
      ++i;
    }
  }
  return out;
}

std::vector<uint64_t> SortedIntersect(std::span<const uint64_t> a,
                                      std::span<const uint64_t> b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint64_t> UnionDistinct(
    const std::vector<std::vector<uint64_t>>& lists) {
  if (exec::Threads() <= 1 || lists.size() <= 1) {
    size_t total = 0;
    for (const auto& l : lists) total += l.size();
    std::vector<uint64_t> out;
    out.reserve(total);
    for (const auto& l : lists) out.insert(out.end(), l.begin(), l.end());
    return SortDistinct(std::move(out));
  }

  // Sort-distinct every list in parallel, then a parallel pairwise merge
  // tree. A sorted set is one value regardless of merge shape, so the
  // result matches the serial path exactly.
  std::vector<std::vector<uint64_t>> sorted(lists.size());
  exec::ParallelFor(lists.size(), 1, [&](uint64_t b, uint64_t e, uint64_t) {
    for (uint64_t l = b; l < e; ++l) sorted[l] = SortDistinct(lists[l]);
  });
  while (sorted.size() > 1) {
    const uint64_t pairs = sorted.size() / 2;
    std::vector<std::vector<uint64_t>> next((sorted.size() + 1) / 2);
    exec::ParallelFor(pairs, 1, [&](uint64_t b, uint64_t e, uint64_t) {
      for (uint64_t p = b; p < e; ++p) {
        next[p] = SetUnion2(sorted[2 * p], sorted[2 * p + 1]);
      }
    });
    if (sorted.size() % 2 != 0) next.back() = std::move(sorted.back());
    sorted.swap(next);
  }
  return std::move(sorted.front());
}

std::vector<uint64_t> SortDistinct(std::vector<uint64_t> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace swan::colstore
