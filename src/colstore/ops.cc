#include "colstore/ops.h"

#include <algorithm>

#include "common/macros.h"

namespace swan::colstore {

PositionVector SelectEq(std::span<const uint64_t> col, uint64_t value) {
  PositionVector out;
  const uint32_t n = static_cast<uint32_t>(col.size());
  for (uint32_t i = 0; i < n; ++i) {
    if (col[i] == value) out.push_back(i);
  }
  return out;
}

PositionVector SelectEq(std::span<const uint64_t> col,
                        const PositionVector& sel, uint64_t value) {
  PositionVector out;
  for (uint32_t i : sel) {
    if (col[i] == value) out.push_back(i);
  }
  return out;
}

PositionVector SelectNe(std::span<const uint64_t> col,
                        const PositionVector& sel, uint64_t value) {
  PositionVector out;
  for (uint32_t i : sel) {
    if (col[i] != value) out.push_back(i);
  }
  return out;
}

std::pair<uint32_t, uint32_t> EqRangeSorted(std::span<const uint64_t> col,
                                            uint64_t value) {
  const auto lo = std::lower_bound(col.begin(), col.end(), value);
  const auto hi = std::upper_bound(lo, col.end(), value);
  return {static_cast<uint32_t>(lo - col.begin()),
          static_cast<uint32_t>(hi - col.begin())};
}

std::pair<uint32_t, uint32_t> EqRangeSorted2(
    std::span<const uint64_t> primary, std::span<const uint64_t> secondary,
    uint64_t v1, uint64_t v2) {
  const auto [plo, phi] = EqRangeSorted(primary, v1);
  const auto sub = secondary.subspan(plo, phi - plo);
  const auto [slo, shi] = EqRangeSorted(sub, v2);
  return {plo + slo, plo + shi};
}

std::vector<uint64_t> Gather(std::span<const uint64_t> col,
                             const PositionVector& sel) {
  std::vector<uint64_t> out;
  out.reserve(sel.size());
  for (uint32_t i : sel) out.push_back(col[i]);
  return out;
}

PositionVector SelectMarked(std::span<const uint64_t> col,
                            const MarkSet& set) {
  PositionVector out;
  const uint32_t n = static_cast<uint32_t>(col.size());
  for (uint32_t i = 0; i < n; ++i) {
    if (set.Test(col[i])) out.push_back(i);
  }
  return out;
}

PositionVector SelectMarked(std::span<const uint64_t> col,
                            const PositionVector& sel, const MarkSet& set) {
  PositionVector out;
  for (uint32_t i : sel) {
    if (set.Test(col[i])) out.push_back(i);
  }
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    std::span<const uint64_t> keys, uint64_t universe_size) {
  std::vector<uint64_t> counts(universe_size, 0);
  for (uint64_t k : keys) {
    SWAN_DCHECK_LT(k, universe_size);
    ++counts[k];
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (uint64_t k = 0; k < universe_size; ++k) {
    if (counts[k] != 0) out.emplace_back(k, counts[k]);
  }
  return out;
}

std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    std::span<const uint64_t> col, const PositionVector& sel,
    uint64_t universe_size) {
  std::vector<uint64_t> counts(universe_size, 0);
  for (uint32_t i : sel) {
    SWAN_DCHECK_LT(col[i], universe_size);
    ++counts[col[i]];
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (uint64_t k = 0; k < universe_size; ++k) {
    if (counts[k] != 0) out.emplace_back(k, counts[k]);
  }
  return out;
}

std::vector<PairCount> CountByPair(std::span<const uint64_t> a,
                                   std::span<const uint64_t> b) {
  SWAN_CHECK_EQ(a.size(), b.size());
  std::vector<uint64_t> packed;
  packed.reserve(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SWAN_CHECK_MSG(a[i] < (1ull << 32) && b[i] < (1ull << 32),
                   "CountByPair requires 32-bit dictionary ids");
    packed.push_back((a[i] << 32) | b[i]);
  }
  std::sort(packed.begin(), packed.end());
  std::vector<PairCount> out;
  size_t i = 0;
  while (i < packed.size()) {
    size_t j = i + 1;
    while (j < packed.size() && packed[j] == packed[i]) ++j;
    out.push_back(PairCount{packed[i] >> 32, packed[i] & 0xFFFFFFFFull,
                            static_cast<uint64_t>(j - i)});
    i = j;
  }
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> MergeJoin(
    std::span<const uint64_t> left, std::span<const uint64_t> right) {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  uint32_t i = 0, j = 0;
  const uint32_t n = static_cast<uint32_t>(left.size());
  const uint32_t m = static_cast<uint32_t>(right.size());
  while (i < n && j < m) {
    if (left[i] < right[j]) {
      ++i;
    } else if (right[j] < left[i]) {
      ++j;
    } else {
      // Equal run: emit the cross product.
      const uint64_t v = left[i];
      uint32_t i_end = i;
      while (i_end < n && left[i_end] == v) ++i_end;
      uint32_t j_end = j;
      while (j_end < m && right[j_end] == v) ++j_end;
      for (uint32_t a = i; a < i_end; ++a) {
        for (uint32_t b = j; b < j_end; ++b) {
          out.emplace_back(a, b);
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return out;
}

uint64_t MergeCountMatches(std::span<const uint64_t> values,
                           std::span<const uint64_t> keys) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < values.size() && j < keys.size()) {
    if (values[i] < keys[j]) {
      ++i;
    } else if (keys[j] < values[i]) {
      ++j;
    } else {
      ++count;
      ++i;  // keys are unique; values may repeat
    }
  }
  return count;
}

PositionVector MergeSelectPositions(std::span<const uint64_t> values,
                                    std::span<const uint64_t> keys) {
  PositionVector out;
  size_t i = 0, j = 0;
  while (i < values.size() && j < keys.size()) {
    if (values[i] < keys[j]) {
      ++i;
    } else if (keys[j] < values[i]) {
      ++j;
    } else {
      out.push_back(static_cast<uint32_t>(i));
      ++i;
    }
  }
  return out;
}

std::vector<uint64_t> SortedIntersect(std::span<const uint64_t> a,
                                      std::span<const uint64_t> b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint64_t> UnionDistinct(
    const std::vector<std::vector<uint64_t>>& lists) {
  size_t total = 0;
  for (const auto& l : lists) total += l.size();
  std::vector<uint64_t> out;
  out.reserve(total);
  for (const auto& l : lists) out.insert(out.end(), l.begin(), l.end());
  return SortDistinct(std::move(out));
}

std::vector<uint64_t> SortDistinct(std::vector<uint64_t> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

}  // namespace swan::colstore
