#ifndef SWANDB_COLSTORE_COLUMN_H_
#define SWANDB_COLSTORE_COLUMN_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "audit/audit.h"
#include "common/mutex.h"
#include "colstore/compression.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"
#include "storage/simulated_disk.h"

namespace swan::colstore {

// What a Column audit should verify beyond structural integrity. Columns
// themselves do not know whether their contents are declared sorted or
// what id universe they draw from — the owning table does, and passes it
// down here.
struct ColumnAuditOptions {
  std::string label = "column";
  // Sortedness the physical design declares (e.g. the primary sort
  // component of a TripleTable, a VerticalTable subject column).
  bool expect_sorted = false;
  // Upper bound (exclusive) for every stored value — the dictionary-code
  // range check: an id >= dict size can never decode to a term.
  std::optional<uint64_t> max_valid_id;
};

// The compressed execution representation of one column: a parsed
// ParsedEncoding plus the logical row count, with positional access and
// ranged materialization. This is what the encoded kernels in ops.h
// consume — they walk RLE runs or unpack bit-packed batches and
// decompress values only at final projection. Immutable after
// construction, so safe to share across ParallelFor chunks.
class EncodedColumn {
 public:
  using Rep = ParsedEncoding::Rep;

  EncodedColumn() = default;

  // Parses a CompressU64 buffer; malformed input is Status::Corruption.
  [[nodiscard]] static Status TryParse(std::span<const uint8_t> bytes,
                                       uint64_t count, EncodedColumn* out);
  // Aborting variant (hot path).
  static EncodedColumn Parse(std::span<const uint8_t> bytes, uint64_t count);
  // Encode + parse in one step, for tests and benches that have no disk.
  static EncodedColumn FromValues(std::span<const uint64_t> values,
                                  ColumnCodec codec);
  // Wraps already-decoded values as a kFlat view (the kRaw load path).
  static EncodedColumn FromRaw(std::vector<uint64_t> values);

  Rep rep() const { return enc_.rep; }
  uint64_t size() const { return size_; }

  // Random access. O(1) for flat and packed reps, O(log runs) for RLE —
  // kernels that touch many positions should use the run cursor in ops.cc
  // or MaterializeInto instead.
  uint64_t ValueAt(uint64_t i) const;

  // Decodes positions [lo, hi) into out[0 .. hi-lo). The projection-time
  // decompression primitive: kernels call it per cache-sized chunk.
  void MaterializeInto(uint64_t lo, uint64_t hi, uint64_t* out) const;

  // Full raw materialization (the legacy Column::Get image).
  std::vector<uint64_t> Materialize() const;

  // Rep-specific accessors; only valid for the matching rep().
  const std::vector<uint64_t>& flat() const { return enc_.flat; }
  const std::vector<RleRun>& runs() const { return enc_.runs; }
  const std::vector<uint64_t>& words() const { return enc_.words; }
  int bit_width() const { return enc_.bit_width; }
  const std::vector<uint64_t>& palette() const { return enc_.palette; }

  // Index of the run containing position `pos` (rep() == kRle).
  size_t RunIndexOf(uint64_t pos) const;

  // Decoded value of a packed code (palette lookup, or identity for plain
  // bit-packing).
  uint64_t DecodeCode(uint64_t code) const {
    return enc_.palette.empty() ? code : enc_.palette[code];
  }

  // Packed-domain image of a decoded value, if it has one: predicates can
  // then compare codes without decoding. Returns false when `value`
  // cannot appear in this column (not in the palette / wider than the
  // pack width), i.e. a guaranteed-empty selection.
  bool CodeFor(uint64_t value, uint64_t* code) const;

  // Approximate in-memory footprint of the cached representation — the
  // "hot memory shrinks alongside cold bytes" half of compressed
  // execution.
  uint64_t memory_bytes() const;

 private:
  ParsedEncoding enc_;
  uint64_t size_ = 0;
};

// A disk-resident column of uint64 ids, the MonetDB BAT tail. The first
// access after a cache drop streams the whole (encoded) column from disk
// sequentially — this is the column store's "cold" cost the paper
// measures (triple-store must read the complete triples table; the
// vertical scheme only the partitions a query touches, §4.3).
//
// Two cached images exist, both built lazily and dropped together:
//   - Encoded(): the parsed compressed representation, populated by the
//     cold load (this is all compressed execution needs), and
//   - Get(): the full raw array, materialized on demand *from the cached
//     encoded image* (no second disk read) for code that still wants
//     flat spans.
class Column {
 public:
  // `codec` controls the on-disk representation: compressed columns read
  // fewer pages on a cold load at the cost of decode CPU (§4.1's RLE /
  // delta discussion; quantified by bench/ablation_compression).
  Column(storage::BufferPool* pool, storage::SimulatedDisk* disk,
         ColumnCodec codec = ColumnCodec::kRaw)
      : pool_(pool), file_(disk), codec_(codec) {}

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  // Writes `values` to disk. May only be called once, before any Get().
  void Build(std::span<const uint64_t> values);

  // Materialized view of the column; loads from disk if not cached.
  // Thread-safe: concurrent first accesses serialize on a load mutex so
  // the column is streamed from disk exactly once. Excluded from static
  // analysis: the double-checked fast path returns the cache without the
  // lock, published safely by the loaded_ acquire/release pair.
  const std::vector<uint64_t>& Get() const SWAN_NO_THREAD_SAFETY_ANALYSIS;

  // Encoded view of the column; cold-loads (and parses) the compressed
  // image if not cached, without materializing raw values. Same
  // publication protocol as Get().
  const EncodedColumn& Encoded() const SWAN_NO_THREAD_SAFETY_ANALYSIS;

  // Drops both in-memory images (cold-run protocol). Not safe against
  // concurrent Get() — the harness only drops caches between runs.
  void DropCache() const SWAN_EXCLUDES(load_mutex_);

  bool loaded() const { return loaded_.load(std::memory_order_acquire); }
  uint64_t size() const { return size_; }
  uint64_t disk_bytes() const {
    return static_cast<uint64_t>(file_.page_count()) * storage::kPageSize;
  }
  // Exact byte size of the on-disk payload (encoded bytes; 8 per value
  // for kRaw) vs the full-width logical image — the pair every
  // cold-bytes accounting report shows side by side.
  uint64_t stored_bytes() const { return stored_bytes_; }
  uint64_t logical_bytes() const { return size_ * 8; }
  uint32_t file_id() const { return file_.file_id(); }

  ColumnCodec codec() const { return codec_; }
  // The concrete codec Build wrote (kAuto resolves per column).
  ColumnCodec resolved_codec() const { return resolved_codec_; }

  // Audit walker. At kFull, re-reads the column from disk (tolerantly:
  // checksum mismatches and malformed encodings become findings) and
  // verifies the declared size, sortedness and id-range constraints of
  // `options`, plus agreement between the in-memory cache (if loaded)
  // and the on-disk image. At every level, checks that the recorded
  // encoded size is consistent with the on-disk page count.
  void AuditInto(audit::AuditLevel level, const ColumnAuditOptions& options,
                 audit::AuditReport* report) const SWAN_EXCLUDES(load_mutex_);

  // AuditInto with default options (structural checks only).
  void AuditInto(audit::AuditLevel level, audit::AuditReport* report) const {
    AuditInto(level, ColumnAuditOptions{}, report);
  }

  // Re-reads and decodes the on-disk image without touching the cache,
  // for owning tables that need the materialized values to verify
  // cross-column invariants. Returns false (with a finding added) on
  // corrupt pages or a malformed encoding.
  bool AuditRead(const std::string& label, std::vector<uint64_t>* out,
                 audit::AuditReport* report) const;

  // Desyncs the recorded encoded size from the on-disk image so tests
  // can exercise the stored-bytes audit finding.
  void CorruptStoredBytesForTesting(uint64_t stored_bytes) {
    stored_bytes_ = stored_bytes;
  }

 private:
  static void AuditValues(const std::string& label,
                          const std::vector<uint64_t>& values,
                          const ColumnAuditOptions& options,
                          audit::AuditReport* report);

  // Loads + parses the encoded on-disk image if needed. Callers hold
  // load_mutex_; publication to lock-free readers is via encoded_loaded_.
  const EncodedColumn& EncodedLocked() const SWAN_REQUIRES(load_mutex_);

  storage::BufferPool* pool_;
  storage::PagedFile file_;
  ColumnCodec codec_;
  ColumnCodec resolved_codec_ = ColumnCodec::kRaw;
  uint64_t size_ = 0;
  uint64_t stored_bytes_ = 0;  // exact on-disk payload bytes
  bool built_ = false;

  // Cache state is logically not part of the column's value. loaded_ /
  // encoded_loaded_ are the double-checked-locking publication flags for
  // cache_ / encoded_: set with release order after the load completes
  // under load_mutex_, read with acquire order on the fast path.
  // load_mutex_ outranks the buffer pool and disk because the load
  // streams pages while holding it.
  mutable Mutex load_mutex_{LockRank::kColumnLoad, "colstore.column-load"};
  mutable EncodedColumn encoded_ SWAN_GUARDED_BY(load_mutex_);
  mutable std::vector<uint64_t> cache_ SWAN_GUARDED_BY(load_mutex_);
  mutable std::atomic<bool> encoded_loaded_{false};
  mutable std::atomic<bool> loaded_{false};
};

}  // namespace swan::colstore

#endif  // SWANDB_COLSTORE_COLUMN_H_
