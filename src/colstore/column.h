#ifndef SWANDB_COLSTORE_COLUMN_H_
#define SWANDB_COLSTORE_COLUMN_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "common/mutex.h"
#include "colstore/compression.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"
#include "storage/simulated_disk.h"

namespace swan::colstore {

// What a Column audit should verify beyond structural integrity. Columns
// themselves do not know whether their contents are declared sorted or
// what id universe they draw from — the owning table does, and passes it
// down here.
struct ColumnAuditOptions {
  std::string label = "column";
  // Sortedness the physical design declares (e.g. the primary sort
  // component of a TripleTable, a VerticalTable subject column).
  bool expect_sorted = false;
  // Upper bound (exclusive) for every stored value — the dictionary-code
  // range check: an id >= dict size can never decode to a term.
  std::optional<uint64_t> max_valid_id;
};

// A disk-resident column of uint64 ids with an in-memory cache, the
// MonetDB BAT tail: query processing always operates on the full
// materialized array. The first access after a cache drop streams the
// whole column from disk sequentially — this is the column store's "cold"
// cost the paper measures (triple-store must read the complete triples
// table; the vertical scheme only the partitions a query touches, §4.3).
class Column {
 public:
  // `codec` controls the on-disk representation: compressed columns read
  // fewer pages on a cold load at the cost of decode CPU (§4.1's RLE /
  // delta discussion; quantified by bench/ablation_compression).
  Column(storage::BufferPool* pool, storage::SimulatedDisk* disk,
         ColumnCodec codec = ColumnCodec::kRaw)
      : pool_(pool), file_(disk), codec_(codec) {}

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  // Writes `values` to disk. May only be called once, before any Get().
  void Build(std::span<const uint64_t> values);

  // Materialized view of the column; loads from disk if not cached.
  // Thread-safe: concurrent first accesses serialize on a load mutex so
  // the column is streamed from disk exactly once. Excluded from static
  // analysis: the double-checked fast path returns cache_ without the
  // lock, published safely by the loaded_ acquire/release pair.
  const std::vector<uint64_t>& Get() const SWAN_NO_THREAD_SAFETY_ANALYSIS;

  // Drops the in-memory image (cold-run protocol). Not safe against
  // concurrent Get() — the harness only drops caches between runs.
  void DropCache() const SWAN_EXCLUDES(load_mutex_);

  bool loaded() const { return loaded_.load(std::memory_order_acquire); }
  uint64_t size() const { return size_; }
  uint64_t disk_bytes() const {
    return static_cast<uint64_t>(file_.page_count()) * storage::kPageSize;
  }
  uint32_t file_id() const { return file_.file_id(); }

  ColumnCodec codec() const { return codec_; }

  // Audit walker. At kFull, re-reads the column from disk (tolerantly:
  // checksum mismatches become findings) and verifies the declared size,
  // sortedness and id-range constraints of `options`, plus agreement
  // between the in-memory cache (if loaded) and the on-disk image.
  void AuditInto(audit::AuditLevel level, const ColumnAuditOptions& options,
                 audit::AuditReport* report) const SWAN_EXCLUDES(load_mutex_);

  // AuditInto with default options (structural checks only).
  void AuditInto(audit::AuditLevel level, audit::AuditReport* report) const {
    AuditInto(level, ColumnAuditOptions{}, report);
  }

  // Re-reads and decodes the on-disk image without touching cache_, for
  // owning tables that need the materialized values to verify cross-column
  // invariants. Returns false (with a finding added) on corrupt pages.
  bool AuditRead(const std::string& label, std::vector<uint64_t>* out,
                 audit::AuditReport* report) const;

 private:
  static void AuditValues(const std::string& label,
                          const std::vector<uint64_t>& values,
                          const ColumnAuditOptions& options,
                          audit::AuditReport* report);
  storage::BufferPool* pool_;
  storage::PagedFile file_;
  ColumnCodec codec_;
  uint64_t size_ = 0;
  uint64_t stored_bytes_ = 0;  // compressed size (codec != kRaw)
  bool built_ = false;

  // Cache state is logically not part of the column's value. loaded_ is
  // the double-checked-locking publication flag for cache_: set with
  // release order after the load completes under load_mutex_, read with
  // acquire order on the fast path. load_mutex_ outranks the buffer pool
  // and disk because the load streams pages while holding it.
  mutable Mutex load_mutex_{LockRank::kColumnLoad, "colstore.column-load"};
  mutable std::vector<uint64_t> cache_ SWAN_GUARDED_BY(load_mutex_);
  mutable std::atomic<bool> loaded_{false};
};

}  // namespace swan::colstore

#endif  // SWANDB_COLSTORE_COLUMN_H_
