#ifndef SWANDB_COLSTORE_COLUMN_H_
#define SWANDB_COLSTORE_COLUMN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "colstore/compression.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"
#include "storage/simulated_disk.h"

namespace swan::colstore {

// A disk-resident column of uint64 ids with an in-memory cache, the
// MonetDB BAT tail: query processing always operates on the full
// materialized array. The first access after a cache drop streams the
// whole column from disk sequentially — this is the column store's "cold"
// cost the paper measures (triple-store must read the complete triples
// table; the vertical scheme only the partitions a query touches, §4.3).
class Column {
 public:
  // `codec` controls the on-disk representation: compressed columns read
  // fewer pages on a cold load at the cost of decode CPU (§4.1's RLE /
  // delta discussion; quantified by bench/ablation_compression).
  Column(storage::BufferPool* pool, storage::SimulatedDisk* disk,
         ColumnCodec codec = ColumnCodec::kRaw)
      : pool_(pool), file_(disk), codec_(codec) {}

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;
  Column(Column&&) = default;

  // Writes `values` to disk. May only be called once, before any Get().
  void Build(std::span<const uint64_t> values);

  // Materialized view of the column; loads from disk if not cached.
  const std::vector<uint64_t>& Get() const;

  // Drops the in-memory image (cold-run protocol).
  void DropCache() const;

  bool loaded() const { return loaded_; }
  uint64_t size() const { return size_; }
  uint64_t disk_bytes() const {
    return static_cast<uint64_t>(file_.page_count()) * storage::kPageSize;
  }

  ColumnCodec codec() const { return codec_; }

 private:
  storage::BufferPool* pool_;
  storage::PagedFile file_;
  ColumnCodec codec_;
  uint64_t size_ = 0;
  uint64_t stored_bytes_ = 0;  // compressed size (codec != kRaw)
  bool built_ = false;

  // Cache state is logically not part of the column's value.
  mutable std::vector<uint64_t> cache_;
  mutable bool loaded_ = false;
};

}  // namespace swan::colstore

#endif  // SWANDB_COLSTORE_COLUMN_H_
