#include "colstore/triple_table.h"

#include <algorithm>

#include "common/macros.h"

namespace swan::colstore {

TripleTable::TripleTable(storage::BufferPool* pool,
                         storage::SimulatedDisk* disk, rdf::TripleOrder order,
                         ColumnCodec codec)
    : order_(order),
      subj_(std::make_unique<Column>(pool, disk, codec)),
      prop_(std::make_unique<Column>(pool, disk, codec)),
      obj_(std::make_unique<Column>(pool, disk, codec)) {}

void TripleTable::Load(std::vector<rdf::Triple> triples) {
  SWAN_CHECK_MSG(size_ == 0, "TripleTable::Load called twice");
  SWAN_CHECK_MSG(triples.size() < (1ull << 32),
                 "column store limited to 2^32 rows");
  std::sort(triples.begin(), triples.end(),
            [this](const rdf::Triple& a, const rdf::Triple& b) {
              return KeyOf(a, order_) < KeyOf(b, order_);
            });
  size_ = triples.size();

  std::vector<uint64_t> buf(triples.size());
  for (size_t i = 0; i < triples.size(); ++i) buf[i] = triples[i].subject;
  subj_->Build(buf);
  for (size_t i = 0; i < triples.size(); ++i) buf[i] = triples[i].property;
  prop_->Build(buf);
  for (size_t i = 0; i < triples.size(); ++i) buf[i] = triples[i].object;
  obj_->Build(buf);
}

const std::vector<uint64_t>& TripleTable::ComponentColumn(
    int component_index) const {
  switch (component_index) {
    case 0:
      return subjects();
    case 1:
      return properties();
    default:
      return objects();
  }
}

std::pair<uint32_t, uint32_t> TripleTable::PrimaryRange(uint64_t v) const {
  const auto comp = ComponentsOf(order_);
  return EqRangeSorted(ComponentColumn(comp[0]), v);
}

std::pair<uint32_t, uint32_t> TripleTable::PrimarySecondaryRange(
    uint64_t v1, uint64_t v2) const {
  const auto comp = ComponentsOf(order_);
  return EqRangeSorted2(ComponentColumn(comp[0]), ComponentColumn(comp[1]),
                        v1, v2);
}

void TripleTable::DropCaches() const {
  subj_->DropCache();
  prop_->DropCache();
  obj_->DropCache();
}

uint64_t TripleTable::disk_bytes() const {
  return subj_->disk_bytes() + prop_->disk_bytes() + obj_->disk_bytes();
}

}  // namespace swan::colstore
