#include "colstore/triple_table.h"

#include <algorithm>
#include <string>
#include <tuple>

#include "common/macros.h"

namespace swan::colstore {

TripleTable::TripleTable(storage::BufferPool* pool,
                         storage::SimulatedDisk* disk, rdf::TripleOrder order,
                         ColumnCodec codec)
    : order_(order),
      subj_(std::make_unique<Column>(pool, disk, codec)),
      prop_(std::make_unique<Column>(pool, disk, codec)),
      obj_(std::make_unique<Column>(pool, disk, codec)) {}

void TripleTable::Load(std::vector<rdf::Triple> triples) {
  SWAN_CHECK_MSG(size_ == 0, "TripleTable::Load called twice");
  SWAN_CHECK_MSG(triples.size() < (1ull << 32),
                 "column store limited to 2^32 rows");
  std::sort(triples.begin(), triples.end(),
            [this](const rdf::Triple& a, const rdf::Triple& b) {
              return KeyOf(a, order_) < KeyOf(b, order_);
            });
  size_ = triples.size();

  std::vector<uint64_t> buf(triples.size());
  for (size_t i = 0; i < triples.size(); ++i) buf[i] = triples[i].subject;
  subj_->Build(buf);
  for (size_t i = 0; i < triples.size(); ++i) buf[i] = triples[i].property;
  prop_->Build(buf);
  for (size_t i = 0; i < triples.size(); ++i) buf[i] = triples[i].object;
  obj_->Build(buf);
}

const std::vector<uint64_t>& TripleTable::ComponentColumn(
    int component_index) const {
  switch (component_index) {
    case 0:
      return subjects();
    case 1:
      return properties();
    default:
      return objects();
  }
}

const EncodedColumn& TripleTable::ComponentEncoded(int component_index) const {
  switch (component_index) {
    case 0:
      return encoded_subjects();
    case 1:
      return encoded_properties();
    default:
      return encoded_objects();
  }
}

std::pair<uint32_t, uint32_t> TripleTable::PrimaryRange(uint64_t v) const {
  // Binary search on the encoded view: a cold PrimaryRange probe reads the
  // compressed column but never materializes it.
  const auto comp = ComponentsOf(order_);
  return EqRangeSorted(ComponentEncoded(comp[0]), v);
}

std::pair<uint32_t, uint32_t> TripleTable::PrimarySecondaryRange(
    uint64_t v1, uint64_t v2) const {
  const auto comp = ComponentsOf(order_);
  return EqRangeSorted2(ComponentEncoded(comp[0]), ComponentEncoded(comp[1]),
                        v1, v2);
}

void TripleTable::DropCaches() const {
  subj_->DropCache();
  prop_->DropCache();
  obj_->DropCache();
}

uint64_t TripleTable::disk_bytes() const {
  return subj_->disk_bytes() + prop_->disk_bytes() + obj_->disk_bytes();
}

uint64_t TripleTable::stored_bytes() const {
  return subj_->stored_bytes() + prop_->stored_bytes() + obj_->stored_bytes();
}

uint64_t TripleTable::logical_bytes() const {
  return subj_->logical_bytes() + prop_->logical_bytes() +
         obj_->logical_bytes();
}

void TripleTable::AuditInto(audit::AuditLevel level,
                            std::optional<uint64_t> max_valid_id,
                            audit::AuditReport* report) const {
  const std::string name = "triple_table(" + rdf::ToString(order_) + ")";
  const auto comp = ComponentsOf(order_);
  const Column* cols[3] = {subj_.get(), prop_.get(), obj_.get()};
  const char* role[3] = {"subject", "property", "object"};

  // Per-column checks. The physically-first sort component is a sorted
  // column by construction; the other two are only sorted within runs, so
  // no sortedness is declared for them.
  for (int i = 0; i < 3; ++i) {
    ColumnAuditOptions opts;
    opts.label = name + "." + role[i];
    opts.expect_sorted = (comp[0] == i);
    opts.max_valid_id = max_valid_id;
    cols[i]->AuditInto(level, opts, report);
    if (cols[i]->size() != size_) {
      report->Add(audit::FindingClass::kColumn, opts.label,
                  "column has " + std::to_string(cols[i]->size()) +
                      " values, table has " + std::to_string(size_) +
                      " rows");
    }
  }
  if (level == audit::AuditLevel::kQuick || size_ == 0) return;

  // Cross-column check: rows must be lexicographically sorted by order_.
  std::vector<uint64_t> vals[3];
  for (int i = 0; i < 3; ++i) {
    if (!cols[i]->AuditRead(name + "." + role[i], &vals[i], report)) return;
    if (vals[i].size() != size_) return;  // already reported above
  }
  const std::vector<uint64_t>& c1 = vals[comp[0]];
  const std::vector<uint64_t>& c2 = vals[comp[1]];
  const std::vector<uint64_t>& c3 = vals[comp[2]];
  for (uint64_t i = 1; i < size_; ++i) {
    const auto prev = std::make_tuple(c1[i - 1], c2[i - 1], c3[i - 1]);
    const auto cur = std::make_tuple(c1[i], c2[i], c3[i]);
    if (prev > cur) {
      report->Add(audit::FindingClass::kColumn, name,
                  "rows " + std::to_string(i - 1) + " and " +
                      std::to_string(i) +
                      " violate the declared lexicographic sort order");
      break;
    }
  }
}

}  // namespace swan::colstore
