#ifndef SWANDB_COLSTORE_COMPRESSION_H_
#define SWANDB_COLSTORE_COMPRESSION_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace swan::colstore {

// Lightweight column codecs. The paper (§4.1) observes that "column-stores
// with compression (e.g., RLE or delta-compression) can achieve the same
// effect [as B+tree key-prefix compression] on the sorted property
// column": a PSO-sorted triple table effectively stops paying for its
// property column. These codecs make that observation measurable
// (bench/ablation_compression).
//
// The ids stored in columns are dense dictionary codes, so bit-packing
// (width = ceil(log2(dict size)) bits per value) applies to every column;
// dictionary+bit-packing additionally exploits low *column* cardinality
// when the values are unsorted (an object column with few distinct ids
// packs to ceil(log2(distinct)) bits plus a small palette).
enum class ColumnCodec {
  kRaw,          // 8 bytes per value
  kRle,          // (value u64, run u32) pairs — ideal for sorted low-cardinality
  kDelta,        // first value + zigzag-varint deltas — ideal for sorted ids
  kBitPack,      // fixed-width bit-packing, width = bits(max value)
  kDictBitPack,  // sorted palette of distinct values + bit-packed codes
  kAuto,         // smallest of the five
};

std::string ToString(ColumnCodec codec);

// Parses a codec name as printed by ToString ("raw", "rle", "delta",
// "bitpack", "dictbitpack", "auto"). Returns false on an unknown name.
bool CodecFromString(std::string_view name, ColumnCodec* out);

// Bits needed to represent `v` (>= 1 so that width-0 columns of zeros
// still occupy one bit per value and the packed-word math never divides
// by zero).
int BitWidthFor(uint64_t v);

// Reads packed value `i` from a fixed-width word stream. `words` must be
// padded with one zero word past the last data word so the straddling
// two-word read never runs off the end.
inline uint64_t PackedValueAt(const uint64_t* words, int width, uint64_t i) {
  const uint64_t bit = i * static_cast<uint64_t>(width);
  const uint64_t word = bit >> 6;
  const int off = static_cast<int>(bit & 63);
  uint64_t v = words[word] >> off;
  if (off + width > 64) v |= words[word + 1] << (64 - off);
  const uint64_t mask =
      width >= 64 ? ~0ull : (1ull << width) - 1;
  return v & mask;
}

// One equal-value run of an RLE-parsed column: values[start .. start +
// length) == value. Runs are emitted in position order; a sorted column
// therefore yields runs sorted by value as well.
struct RleRun {
  uint64_t value;
  uint64_t start;
  uint32_t length;
};

// The typed, still-compressed in-memory form of a CompressU64 buffer,
// parsed once after a cold load. This is what encoded execution operates
// on: kernels walk `runs` or unpack `words` directly instead of forcing a
// full raw materialization. Raw and delta buffers decode to kFlat (delta
// is a pure disk format — prefix sums have no exploitable in-memory
// structure).
struct ParsedEncoding {
  enum class Rep { kFlat, kRle, kPacked };
  Rep rep = Rep::kFlat;
  std::vector<uint64_t> flat;     // Rep::kFlat — fully decoded values
  std::vector<RleRun> runs;       // Rep::kRle
  std::vector<uint64_t> words;    // Rep::kPacked, +1 zero pad word
  int bit_width = 0;              // Rep::kPacked
  std::vector<uint64_t> palette;  // Rep::kPacked dict codec (else empty)
};

// Parses an encoded buffer into its typed representation; malformed input
// comes back as Status::Corruption.
[[nodiscard]] Status TryParseEncoding(std::span<const uint8_t> bytes,
                                      uint64_t count, ParsedEncoding* out);

// Encodes `values`. The first output byte records the codec actually used
// (kAuto resolves to a concrete one).
std::vector<uint8_t> CompressU64(std::span<const uint64_t> values,
                                 ColumnCodec codec);

// The codec a CompressU64 buffer was actually written with (its tag byte).
// An empty buffer reports kRaw.
ColumnCodec CodecOfEncoded(std::span<const uint8_t> bytes);

// Decodes a buffer produced by CompressU64; `count` must equal the
// original element count. Aborts on corrupt input (hot path).
std::vector<uint64_t> DecompressU64(std::span<const uint8_t> bytes,
                                    uint64_t count);

// Tolerant variant for the audit / TryFetch path: malformed input comes
// back as Status::Corruption instead of aborting, mirroring the page
// checksum discipline.
[[nodiscard]] Status TryDecompressU64(std::span<const uint8_t> bytes,
                                      uint64_t count,
                                      std::vector<uint64_t>* out);

}  // namespace swan::colstore

#endif  // SWANDB_COLSTORE_COMPRESSION_H_
