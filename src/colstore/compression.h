#ifndef SWANDB_COLSTORE_COMPRESSION_H_
#define SWANDB_COLSTORE_COMPRESSION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace swan::colstore {

// Lightweight column codecs. The paper (§4.1) observes that "column-stores
// with compression (e.g., RLE or delta-compression) can achieve the same
// effect [as B+tree key-prefix compression] on the sorted property
// column": a PSO-sorted triple table effectively stops paying for its
// property column. These codecs make that observation measurable
// (bench/ablation_compression).
enum class ColumnCodec {
  kRaw,    // 8 bytes per value
  kRle,    // (value u64, run u32) pairs — ideal for sorted low-cardinality
  kDelta,  // first value + zigzag-varint deltas — ideal for sorted ids
  kAuto,   // smallest of the three
};

std::string ToString(ColumnCodec codec);

// Encodes `values`. The first output byte records the codec actually used
// (kAuto resolves to a concrete one).
std::vector<uint8_t> CompressU64(std::span<const uint64_t> values,
                                 ColumnCodec codec);

// Decodes a buffer produced by CompressU64; `count` must equal the
// original element count. Aborts on corrupt input.
std::vector<uint64_t> DecompressU64(std::span<const uint8_t> bytes,
                                    uint64_t count);

}  // namespace swan::colstore

#endif  // SWANDB_COLSTORE_COMPRESSION_H_
