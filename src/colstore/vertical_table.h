#ifndef SWANDB_COLSTORE_VERTICAL_TABLE_H_
#define SWANDB_COLSTORE_VERTICAL_TABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "audit/audit.h"
#include "colstore/column.h"
#include "colstore/ops.h"
#include "rdf/triple.h"
#include "storage/buffer_pool.h"
#include "storage/simulated_disk.h"

namespace swan::colstore {

// The vertically-partitioned RDF scheme of Abadi et al.: one two-column
// (subject, object) table per distinct property, each sorted by (subject,
// object). A query touching k properties reads at most 2k columns — cheap
// when k is small, but the Barton set has 222 partitions and real RDF
// corpora thousands, which is the scalability cliff the paper probes
// (§4.4).
class VerticalTable {
 public:
  VerticalTable(storage::BufferPool* pool, storage::SimulatedDisk* disk,
                ColumnCodec codec = ColumnCodec::kRaw);

  VerticalTable(const VerticalTable&) = delete;
  VerticalTable& operator=(const VerticalTable&) = delete;

  void Load(std::span<const rdf::Triple> triples);

  // Replaces (or creates) one partition with `rows`, which must be sorted
  // (subject, object) pairs without duplicates. This is the merge step of
  // the delta-store update path: the partition's columns are rewritten.
  void ReplacePartition(uint64_t property,
                        std::span<const std::pair<uint64_t, uint64_t>> rows);

  // Distinct properties, ascending (the data-driven "logical schema").
  const std::vector<uint64_t>& properties() const { return properties_; }

  // Number of rows in a partition; 0 if the property does not exist.
  uint64_t PartitionSize(uint64_t property) const;

  bool HasPartition(uint64_t property) const {
    return partitions_.count(property) != 0;
  }

  // Column accessors; the partition must exist. Subject columns are
  // sorted; object columns are in subject order.
  const std::vector<uint64_t>& Subjects(uint64_t property) const;
  const std::vector<uint64_t>& Objects(uint64_t property) const;

  // Encoded views of the same columns: the cold load stops at the parsed
  // compressed image, kernels execute on it directly.
  const EncodedColumn& EncodedSubjects(uint64_t property) const;
  const EncodedColumn& EncodedObjects(uint64_t property) const;

  // Row range within the partition where subject == s.
  std::pair<uint32_t, uint32_t> SubjectRange(uint64_t property,
                                             uint64_t s) const;

  void DropCaches() const;
  uint64_t disk_bytes() const;
  // Exact on-disk payload bytes (encoded) vs the full-width logical image.
  uint64_t stored_bytes() const;
  uint64_t logical_bytes() const;

  // Audit walker. Verifies the property index (ascending, in one-to-one
  // correspondence with the partition map) and each partition: equal-size
  // subject/object columns, subjects sorted, and at kFull that the (s, o)
  // pairs are sorted and duplicate-free and ids are below `max_valid_id`
  // when provided.
  void AuditInto(audit::AuditLevel level, std::optional<uint64_t> max_valid_id,
                 audit::AuditReport* report) const;

 private:
  struct Partition {
    std::unique_ptr<Column> subj;
    std::unique_ptr<Column> obj;
    uint64_t rows = 0;
  };

  const Partition& Require(uint64_t property) const;

  storage::BufferPool* pool_;
  storage::SimulatedDisk* disk_;
  ColumnCodec codec_;
  std::vector<uint64_t> properties_;
  std::unordered_map<uint64_t, Partition> partitions_;
};

}  // namespace swan::colstore

#endif  // SWANDB_COLSTORE_VERTICAL_TABLE_H_
