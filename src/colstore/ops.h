#ifndef SWANDB_COLSTORE_OPS_H_
#define SWANDB_COLSTORE_OPS_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "colstore/column.h"
#include "exec/exec_context.h"

namespace swan::colstore {

// BAT-style vectorized operators. Positions are uint32 row indices into a
// column (columns are bounded to < 2^32 rows); values are dictionary ids.
// Dictionary ids are dense, which several operators exploit for O(1)
// array-indexed membership and aggregation — the column store's structural
// advantage over generic hash-based row processing.
//
// The scan/aggregate/join operators are morsel-parallel under an explicit
// exec::ExecContext: when the context's thread budget exceeds one and the
// input is large enough, they split into chunks executed across the pool
// and recombine in chunk order (selection, join) or by commutative merge
// (aggregation), so results are identical at every thread count. The
// defaulted context snapshots the globally configured width; passing
// ExecContext(1) forces the original serial loops. No operator reads
// global execution state directly.

using PositionVector = std::vector<uint32_t>;

// Positions where col[i] == value.
PositionVector SelectEq(std::span<const uint64_t> col, uint64_t value,
                        const exec::ExecContext& ctx = exec::ExecContext());

// Positions i in `sel` where col[i] == value.
PositionVector SelectEq(std::span<const uint64_t> col,
                        const PositionVector& sel, uint64_t value,
                        const exec::ExecContext& ctx = exec::ExecContext());

// Positions i in `sel` where col[i] != value.
PositionVector SelectNe(std::span<const uint64_t> col,
                        const PositionVector& sel, uint64_t value,
                        const exec::ExecContext& ctx = exec::ExecContext());

// [lo, hi) such that col[lo..hi) == value, for a sorted column.
std::pair<uint32_t, uint32_t> EqRangeSorted(std::span<const uint64_t> col,
                                            uint64_t value);

// [lo, hi) of rows where (primary, secondary) == (v1, v2), for columns
// sorted lexicographically by (primary, secondary).
std::pair<uint32_t, uint32_t> EqRangeSorted2(std::span<const uint64_t> primary,
                                             std::span<const uint64_t> secondary,
                                             uint64_t v1, uint64_t v2);

// Materializes col[sel[i]] for all i.
std::vector<uint64_t> Gather(std::span<const uint64_t> col,
                             const PositionVector& sel,
                             const exec::ExecContext& ctx = exec::ExecContext());

// Dense bitmap over dictionary ids, the column store's O(1) membership
// structure (MonetDB would use a void-headed BAT the same way). Packed
// 64 ids per word: an 800k-id universe fits in ~100 KB and stays cache
// resident while probe columns stream past it. Mark is not atomic —
// build the set before fanning out; Test-only use is safe to share
// across ParallelFor chunks.
class MarkSet {
 public:
  explicit MarkSet(uint64_t universe_size)
      : bits_((universe_size + 63) / 64, 0) {}

  void MarkAll(std::span<const uint64_t> values) {
    for (uint64_t v : values) Mark(v);
  }
  // Encoded view: an RLE run contributes one Mark regardless of its
  // length, a dictionary palette is marked wholesale (every palette entry
  // occurs by construction).
  void MarkAll(const EncodedColumn& col);
  void Mark(uint64_t v) { bits_[v >> 6] |= 1ull << (v & 63); }
  bool Test(uint64_t v) const { return (bits_[v >> 6] >> (v & 63)) & 1u; }

 private:
  std::vector<uint64_t> bits_;
};

// Positions i (of `col` or of `sel`) where col value is marked.
PositionVector SelectMarked(std::span<const uint64_t> col, const MarkSet& set,
                            const exec::ExecContext& ctx = exec::ExecContext());
PositionVector SelectMarked(std::span<const uint64_t> col,
                            const PositionVector& sel, const MarkSet& set,
                            const exec::ExecContext& ctx = exec::ExecContext());

// Dense group-by-count over dictionary ids: returns (value, count) pairs
// for every value occurring in `keys`, ordered by value.
std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    std::span<const uint64_t> keys, uint64_t universe_size,
    const exec::ExecContext& ctx = exec::ExecContext());

// As above but counting col[sel[i]].
std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    std::span<const uint64_t> col, const PositionVector& sel,
    uint64_t universe_size,
    const exec::ExecContext& ctx = exec::ExecContext());

// Group-by-count over (a, b) pairs (e.g. q3's GROUP BY prop, obj).
// Requires both id spaces < 2^32 so the pair packs into a uint64.
// Returns ((a, b), count) tuples sorted by (a, b).
struct PairCount {
  uint64_t a;
  uint64_t b;
  uint64_t count;
};
std::vector<PairCount> CountByPair(
    std::span<const uint64_t> a, std::span<const uint64_t> b,
    const exec::ExecContext& ctx = exec::ExecContext());

// All matching index pairs of two sorted columns (merge join). Handles
// duplicates on both sides (cross product per equal run) — needed for q7
// where one subject can carry several Encoding/type triples.
//
// Parallelism is *intra-operator* by key-range partitioning: the larger
// input is split into equal-size morsels whose boundaries are advanced to
// equal-run edges (no run straddles a partition), the matching key range
// of the other input is found by binary search, and the partitions join
// independently. Concatenating partition outputs in range order yields
// exactly the serial pair sequence, so a skewed key (one giant equal run)
// degrades gracefully to that run's cost instead of serializing the whole
// join. ctx.counters().merge_join_partitions records the fan-out.
std::vector<std::pair<uint32_t, uint32_t>> MergeJoin(
    std::span<const uint64_t> left, std::span<const uint64_t> right,
    const exec::ExecContext& ctx = exec::ExecContext());

// Number of entries of `values` (sorted, duplicates allowed) whose value
// occurs in `keys` (sorted, unique): the counting form of the "simple,
// fast (linear) merge join" the vertical scheme relies on. Parallelized by
// range-partitioning `values` (counts are additive across partitions).
uint64_t MergeCountMatches(std::span<const uint64_t> values,
                           std::span<const uint64_t> keys,
                           const exec::ExecContext& ctx = exec::ExecContext());

// Positions of entries of `values` (sorted, duplicates allowed) whose
// value occurs in `keys` (sorted, unique). Parallelized by
// range-partitioning `values`; partitions concatenate in range order.
PositionVector MergeSelectPositions(
    std::span<const uint64_t> values, std::span<const uint64_t> keys,
    const exec::ExecContext& ctx = exec::ExecContext());

// Intersection of two sorted unique id lists.
std::vector<uint64_t> SortedIntersect(std::span<const uint64_t> a,
                                      std::span<const uint64_t> b);

// Sorted distinct union of several id lists (unsorted inputs allowed).
std::vector<uint64_t> UnionDistinct(
    const std::vector<std::vector<uint64_t>>& lists,
    const exec::ExecContext& ctx = exec::ExecContext());

// Sorted copy with duplicates removed.
std::vector<uint64_t> SortDistinct(std::vector<uint64_t> values);

// --- Encoded execution ----------------------------------------------------
//
// Overloads that consume the still-compressed EncodedColumn view and
// decompress only at final projection:
//   - RLE reps are walked run-by-run: a run of length n contributes its n
//     rows in O(1) (selection emits the position range, aggregation adds
//     n to one counter, a merge join crosses whole runs).
//   - Bit-packed reps evaluate equality predicates in the *code* domain
//     (CodeFor maps the probe value once; rows whose code mismatches are
//     never decoded) and unpack positionally for gathers.
//   - Flat reps (raw / delta disk formats) delegate to the span kernels
//     above — one code path, zero copies.
//
// Parallel chunking matches the span kernels: RLE work splits at run
// boundaries and packed work at kMorsel (= 2^16, a multiple of 64, so
// every chunk starts on a pack-word edge); chunk outputs concatenate in
// chunk order. Results are therefore bit-identical to the span kernels at
// every thread width.

// Batch size for projection-time decompression: 4096 values (32 KB) stay
// cache-resident while amortizing per-batch dispatch.
inline constexpr uint64_t kDecodeBatch = 4096;

// Decodes [lo, hi) of `enc` in kDecodeBatch-sized chunks and invokes
// body(base, values, count), base being the global position of values[0].
// Flat columns pass their cached array through without copying. Serial —
// callers fan out per morsel and run one batch stream per chunk.
template <typename Body>
void ForEachDecodedBatch(const EncodedColumn& enc, uint64_t lo, uint64_t hi,
                         const Body& body) {
  if (lo >= hi) return;
  if (enc.rep() == EncodedColumn::Rep::kFlat) {
    body(lo, enc.flat().data() + lo, hi - lo);
    return;
  }
  std::vector<uint64_t> buf(std::min(kDecodeBatch, hi - lo));
  for (uint64_t b = lo; b < hi; b += kDecodeBatch) {
    const uint64_t e = std::min(b + kDecodeBatch, hi);
    enc.MaterializeInto(b, e, buf.data());
    body(b, buf.data(), e - b);
  }
}

// Positions where col[i] == value, without materializing col.
PositionVector SelectEq(const EncodedColumn& col, uint64_t value,
                        const exec::ExecContext& ctx = exec::ExecContext());

// Positions i in `sel` where col[i] == value.
PositionVector SelectEq(const EncodedColumn& col, const PositionVector& sel,
                        uint64_t value,
                        const exec::ExecContext& ctx = exec::ExecContext());

// [lo, hi) such that col[lo..hi) == value, for a sorted encoded column
// (binary search over runs / packed codes; never materializes).
std::pair<uint32_t, uint32_t> EqRangeSorted(const EncodedColumn& col,
                                            uint64_t value);

// [lo, hi) of rows where (primary, secondary) == (v1, v2), for encoded
// columns sorted lexicographically by (primary, secondary).
std::pair<uint32_t, uint32_t> EqRangeSorted2(const EncodedColumn& primary,
                                             const EncodedColumn& secondary,
                                             uint64_t v1, uint64_t v2);

// Materializes col[sel[i]] for all i — positional unpack; only the
// selected rows are decoded.
std::vector<uint64_t> Gather(const EncodedColumn& col,
                             const PositionVector& sel,
                             const exec::ExecContext& ctx = exec::ExecContext());

// Positions i (of `col`) where the decoded value is marked. RLE runs cost
// one membership test each.
PositionVector SelectMarked(const EncodedColumn& col, const MarkSet& set,
                            const exec::ExecContext& ctx = exec::ExecContext());

// Dense group-by-count without materializing: RLE runs add their length
// to one counter; dictionary-packed columns aggregate in code space (a
// palette-sized counter array) and decode once per distinct value.
std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    const EncodedColumn& keys, uint64_t universe_size,
    const exec::ExecContext& ctx = exec::ExecContext());

// As above but counting col[sel[i]].
std::vector<std::pair<uint64_t, uint64_t>> CountByKeyDense(
    const EncodedColumn& col, const PositionVector& sel,
    uint64_t universe_size,
    const exec::ExecContext& ctx = exec::ExecContext());

// Group-by-count over aligned (a, b) columns. Both cursors advance
// run-by-run; every overlapping (a-run, b-run) segment contributes its
// whole length in O(1). Output matches the span kernel: ((a, b), count)
// sorted by (a, b).
std::vector<PairCount> CountByPair(
    const EncodedColumn& a, const EncodedColumn& b,
    const exec::ExecContext& ctx = exec::ExecContext());

// Merge join of a materialized (sorted) left side against rows [rlo, rhi)
// of a sorted encoded right column, advancing the right side run-by-run —
// an equal run joins as one cross product without decoding its rows.
// Returned right indices are relative to rlo (matching a left side that
// was gathered from the same row range). Parallelism partitions the
// encoded side at equal-run edges, so outputs concatenate to the serial
// pair sequence at every thread width.
std::vector<std::pair<uint32_t, uint32_t>> MergeJoin(
    std::span<const uint64_t> left, const EncodedColumn& right, uint64_t rlo,
    uint64_t rhi, const exec::ExecContext& ctx = exec::ExecContext());

// Number of rows in [lo, hi) of `values` (sorted in that range) whose
// value occurs in `keys` (sorted, unique). A matching RLE run contributes
// its length in O(1): cost is O(runs + keys), not O(rows).
uint64_t MergeCountMatches(const EncodedColumn& values, uint64_t lo,
                           uint64_t hi, std::span<const uint64_t> keys,
                           const exec::ExecContext& ctx = exec::ExecContext());

// Positions (relative to lo) of rows in [lo, hi) of `values` (sorted in
// that range) whose value occurs in `keys` (sorted, unique). A matching
// run emits its position range without decoding.
PositionVector MergeSelectPositions(
    const EncodedColumn& values, uint64_t lo, uint64_t hi,
    std::span<const uint64_t> keys,
    const exec::ExecContext& ctx = exec::ExecContext());

}  // namespace swan::colstore

#endif  // SWANDB_COLSTORE_OPS_H_
