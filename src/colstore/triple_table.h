#ifndef SWANDB_COLSTORE_TRIPLE_TABLE_H_
#define SWANDB_COLSTORE_TRIPLE_TABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "audit/audit.h"
#include "colstore/column.h"
#include "colstore/ops.h"
#include "rdf/triple.h"
#include "storage/buffer_pool.h"
#include "storage/simulated_disk.h"

namespace swan::colstore {

// The column-store triple-store: one relation of three columns, physically
// sorted in a chosen TripleOrder. With PSO ordering, the property column
// is a sorted run-length-friendly column, the equivalent of the paper's
// "column-stores with compression can achieve the same effect [as key-
// prefix compression] on the sorted property column" (§4.1).
//
// Columns load lazily and independently: a query touching only the
// property and object columns never reads the subject column — this is
// what makes the column-store triple-store's cold behaviour differ from a
// row store's.
class TripleTable {
 public:
  TripleTable(storage::BufferPool* pool, storage::SimulatedDisk* disk,
              rdf::TripleOrder order, ColumnCodec codec = ColumnCodec::kRaw);

  TripleTable(const TripleTable&) = delete;
  TripleTable& operator=(const TripleTable&) = delete;

  // Sorts `triples` by `order` and builds the three columns.
  void Load(std::vector<rdf::Triple> triples);

  // Role-named accessors (each triggers a lazy load of that column only).
  const std::vector<uint64_t>& subjects() const { return subj_->Get(); }
  const std::vector<uint64_t>& properties() const { return prop_->Get(); }
  const std::vector<uint64_t>& objects() const { return obj_->Get(); }

  // Encoded views: the cold load stops here — kernels execute on the
  // compressed image and raw materialization never happens unless some
  // caller also asks for the span accessors above.
  const EncodedColumn& encoded_subjects() const { return subj_->Encoded(); }
  const EncodedColumn& encoded_properties() const { return prop_->Encoded(); }
  const EncodedColumn& encoded_objects() const { return obj_->Encoded(); }

  rdf::TripleOrder order() const { return order_; }
  uint64_t size() const { return size_; }

  // Row range where the physically-first sort component equals `v`
  // (binary search; for PSO order this is "all rows of property v").
  std::pair<uint32_t, uint32_t> PrimaryRange(uint64_t v) const;

  // Row range where the first two sort components equal (v1, v2).
  std::pair<uint32_t, uint32_t> PrimarySecondaryRange(uint64_t v1,
                                                      uint64_t v2) const;

  void DropCaches() const;
  uint64_t disk_bytes() const;
  // Exact on-disk payload bytes (encoded) vs the full-width logical image.
  uint64_t stored_bytes() const;
  uint64_t logical_bytes() const;

  // Audit walker. Verifies each column structurally, then (at kFull)
  // re-reads all three from disk and checks that the rows are sorted
  // lexicographically by `order_` and that every id is below
  // `max_valid_id` (the owning dictionary's size) when provided.
  void AuditInto(audit::AuditLevel level, std::optional<uint64_t> max_valid_id,
                 audit::AuditReport* report) const;

 private:
  const std::vector<uint64_t>& ComponentColumn(int component_index) const;
  const EncodedColumn& ComponentEncoded(int component_index) const;

  rdf::TripleOrder order_;
  uint64_t size_ = 0;
  std::unique_ptr<Column> subj_;
  std::unique_ptr<Column> prop_;
  std::unique_ptr<Column> obj_;
};

}  // namespace swan::colstore

#endif  // SWANDB_COLSTORE_TRIPLE_TABLE_H_
