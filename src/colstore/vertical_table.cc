#include "colstore/vertical_table.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/macros.h"

namespace swan::colstore {

VerticalTable::VerticalTable(storage::BufferPool* pool,
                             storage::SimulatedDisk* disk, ColumnCodec codec)
    : pool_(pool), disk_(disk), codec_(codec) {}

void VerticalTable::Load(std::span<const rdf::Triple> triples) {
  SWAN_CHECK_MSG(partitions_.empty(), "VerticalTable::Load called twice");

  // Group triples by property, then sort each group by (subject, object).
  std::unordered_map<uint64_t, std::vector<std::pair<uint64_t, uint64_t>>>
      groups;
  for (const rdf::Triple& t : triples) {
    groups[t.property].emplace_back(t.subject, t.object);
  }

  properties_.reserve(groups.size());
  for (auto& [prop, rows] : groups) {
    properties_.push_back(prop);
    std::sort(rows.begin(), rows.end());
    SWAN_CHECK_LT(rows.size(), 1ull << 32);

    Partition part;
    part.rows = rows.size();
    part.subj = std::make_unique<Column>(pool_, disk_, codec_);
    part.obj = std::make_unique<Column>(pool_, disk_, codec_);
    std::vector<uint64_t> buf(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) buf[i] = rows[i].first;
    part.subj->Build(buf);
    for (size_t i = 0; i < rows.size(); ++i) buf[i] = rows[i].second;
    part.obj->Build(buf);
    partitions_.emplace(prop, std::move(part));
  }
  std::sort(properties_.begin(), properties_.end());
}

void VerticalTable::ReplacePartition(
    uint64_t property, std::span<const std::pair<uint64_t, uint64_t>> rows) {
  SWAN_CHECK_LT(rows.size(), 1ull << 32);
  for (size_t i = 1; i < rows.size(); ++i) {
    SWAN_DCHECK(rows[i - 1] < rows[i]);
  }
  Partition part;
  part.rows = rows.size();
  part.subj = std::make_unique<Column>(pool_, disk_, codec_);
  part.obj = std::make_unique<Column>(pool_, disk_, codec_);
  std::vector<uint64_t> buf(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) buf[i] = rows[i].first;
  part.subj->Build(buf);
  for (size_t i = 0; i < rows.size(); ++i) buf[i] = rows[i].second;
  part.obj->Build(buf);

  auto it = partitions_.find(property);
  if (it == partitions_.end()) {
    partitions_.emplace(property, std::move(part));
    properties_.insert(std::lower_bound(properties_.begin(), properties_.end(),
                                        property),
                       property);
  } else {
    it->second = std::move(part);
  }
}

uint64_t VerticalTable::PartitionSize(uint64_t property) const {
  auto it = partitions_.find(property);
  return it == partitions_.end() ? 0 : it->second.rows;
}

const VerticalTable::Partition& VerticalTable::Require(
    uint64_t property) const {
  auto it = partitions_.find(property);
  SWAN_CHECK_MSG(it != partitions_.end(), "no partition for property");
  return it->second;
}

const std::vector<uint64_t>& VerticalTable::Subjects(uint64_t property) const {
  return Require(property).subj->Get();
}

const std::vector<uint64_t>& VerticalTable::Objects(uint64_t property) const {
  return Require(property).obj->Get();
}

const EncodedColumn& VerticalTable::EncodedSubjects(uint64_t property) const {
  return Require(property).subj->Encoded();
}

const EncodedColumn& VerticalTable::EncodedObjects(uint64_t property) const {
  return Require(property).obj->Encoded();
}

std::pair<uint32_t, uint32_t> VerticalTable::SubjectRange(uint64_t property,
                                                          uint64_t s) const {
  return EqRangeSorted(EncodedSubjects(property), s);
}

void VerticalTable::DropCaches() const {
  for (const auto& [prop, part] : partitions_) {
    part.subj->DropCache();
    part.obj->DropCache();
  }
}

uint64_t VerticalTable::disk_bytes() const {
  uint64_t total = 0;
  for (const auto& [prop, part] : partitions_) {
    total += part.subj->disk_bytes() + part.obj->disk_bytes();
  }
  return total;
}

uint64_t VerticalTable::stored_bytes() const {
  uint64_t total = 0;
  for (const auto& [prop, part] : partitions_) {
    total += part.subj->stored_bytes() + part.obj->stored_bytes();
  }
  return total;
}

uint64_t VerticalTable::logical_bytes() const {
  uint64_t total = 0;
  for (const auto& [prop, part] : partitions_) {
    total += part.subj->logical_bytes() + part.obj->logical_bytes();
  }
  return total;
}

void VerticalTable::AuditInto(audit::AuditLevel level,
                              std::optional<uint64_t> max_valid_id,
                              audit::AuditReport* report) const {
  // The property index and the partition map must describe the same set.
  if (properties_.size() != partitions_.size()) {
    report->Add(audit::FindingClass::kStructure, "vertical_table",
                "property index has " + std::to_string(properties_.size()) +
                    " entries, partition map has " +
                    std::to_string(partitions_.size()));
  }
  for (size_t i = 0; i < properties_.size(); ++i) {
    if (i > 0 && properties_[i - 1] >= properties_[i]) {
      report->Add(audit::FindingClass::kStructure, "vertical_table",
                  "property index not strictly ascending at entry " +
                      std::to_string(i));
    }
    if (partitions_.count(properties_[i]) == 0) {
      report->Add(audit::FindingClass::kStructure, "vertical_table",
                  "property " + std::to_string(properties_[i]) +
                      " indexed but has no partition");
    }
  }

  for (const auto& [prop, part] : partitions_) {
    const std::string name = "partition(" + std::to_string(prop) + ")";
    ColumnAuditOptions subj_opts;
    subj_opts.label = name + ".subject";
    subj_opts.expect_sorted = true;
    subj_opts.max_valid_id = max_valid_id;
    part.subj->AuditInto(level, subj_opts, report);
    ColumnAuditOptions obj_opts;
    obj_opts.label = name + ".object";
    obj_opts.max_valid_id = max_valid_id;
    part.obj->AuditInto(level, obj_opts, report);
    if (part.subj->size() != part.rows || part.obj->size() != part.rows) {
      report->Add(audit::FindingClass::kColumn, name,
                  "columns have " + std::to_string(part.subj->size()) + "/" +
                      std::to_string(part.obj->size()) +
                      " values, partition declares " +
                      std::to_string(part.rows) + " rows");
      continue;
    }
    if (level == audit::AuditLevel::kQuick) continue;

    // Cross-column check: (subject, object) pairs sorted without
    // duplicates — the contract ReplacePartition demands of its callers.
    std::vector<uint64_t> subj;
    std::vector<uint64_t> obj;
    if (!part.subj->AuditRead(name + ".subject", &subj, report)) continue;
    if (!part.obj->AuditRead(name + ".object", &obj, report)) continue;
    if (subj.size() != part.rows || obj.size() != part.rows) continue;
    for (uint64_t i = 1; i < part.rows; ++i) {
      const auto prev = std::make_pair(subj[i - 1], obj[i - 1]);
      const auto cur = std::make_pair(subj[i], obj[i]);
      if (prev >= cur) {
        report->Add(audit::FindingClass::kColumn, name,
                    "(subject, object) pairs not strictly ascending at row " +
                        std::to_string(i));
        break;
      }
    }
  }
}

}  // namespace swan::colstore
