#include "colstore/vertical_table.h"

#include <algorithm>

#include "common/macros.h"

namespace swan::colstore {

VerticalTable::VerticalTable(storage::BufferPool* pool,
                             storage::SimulatedDisk* disk, ColumnCodec codec)
    : pool_(pool), disk_(disk), codec_(codec) {}

void VerticalTable::Load(std::span<const rdf::Triple> triples) {
  SWAN_CHECK_MSG(partitions_.empty(), "VerticalTable::Load called twice");

  // Group triples by property, then sort each group by (subject, object).
  std::unordered_map<uint64_t, std::vector<std::pair<uint64_t, uint64_t>>>
      groups;
  for (const rdf::Triple& t : triples) {
    groups[t.property].emplace_back(t.subject, t.object);
  }

  properties_.reserve(groups.size());
  for (auto& [prop, rows] : groups) {
    properties_.push_back(prop);
    std::sort(rows.begin(), rows.end());
    SWAN_CHECK(rows.size() < (1ull << 32));

    Partition part;
    part.rows = rows.size();
    part.subj = std::make_unique<Column>(pool_, disk_, codec_);
    part.obj = std::make_unique<Column>(pool_, disk_, codec_);
    std::vector<uint64_t> buf(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) buf[i] = rows[i].first;
    part.subj->Build(buf);
    for (size_t i = 0; i < rows.size(); ++i) buf[i] = rows[i].second;
    part.obj->Build(buf);
    partitions_.emplace(prop, std::move(part));
  }
  std::sort(properties_.begin(), properties_.end());
}

void VerticalTable::ReplacePartition(
    uint64_t property, std::span<const std::pair<uint64_t, uint64_t>> rows) {
  SWAN_CHECK(rows.size() < (1ull << 32));
  for (size_t i = 1; i < rows.size(); ++i) {
    SWAN_DCHECK(rows[i - 1] < rows[i]);
  }
  Partition part;
  part.rows = rows.size();
  part.subj = std::make_unique<Column>(pool_, disk_, codec_);
  part.obj = std::make_unique<Column>(pool_, disk_, codec_);
  std::vector<uint64_t> buf(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) buf[i] = rows[i].first;
  part.subj->Build(buf);
  for (size_t i = 0; i < rows.size(); ++i) buf[i] = rows[i].second;
  part.obj->Build(buf);

  auto it = partitions_.find(property);
  if (it == partitions_.end()) {
    partitions_.emplace(property, std::move(part));
    properties_.insert(std::lower_bound(properties_.begin(), properties_.end(),
                                        property),
                       property);
  } else {
    it->second = std::move(part);
  }
}

uint64_t VerticalTable::PartitionSize(uint64_t property) const {
  auto it = partitions_.find(property);
  return it == partitions_.end() ? 0 : it->second.rows;
}

const VerticalTable::Partition& VerticalTable::Require(
    uint64_t property) const {
  auto it = partitions_.find(property);
  SWAN_CHECK_MSG(it != partitions_.end(), "no partition for property");
  return it->second;
}

const std::vector<uint64_t>& VerticalTable::Subjects(uint64_t property) const {
  return Require(property).subj->Get();
}

const std::vector<uint64_t>& VerticalTable::Objects(uint64_t property) const {
  return Require(property).obj->Get();
}

std::pair<uint32_t, uint32_t> VerticalTable::SubjectRange(uint64_t property,
                                                          uint64_t s) const {
  return EqRangeSorted(Subjects(property), s);
}

void VerticalTable::DropCaches() const {
  for (const auto& [prop, part] : partitions_) {
    part.subj->DropCache();
    part.obj->DropCache();
  }
}

uint64_t VerticalTable::disk_bytes() const {
  uint64_t total = 0;
  for (const auto& [prop, part] : partitions_) {
    total += part.subj->disk_bytes() + part.obj->disk_bytes();
  }
  return total;
}

}  // namespace swan::colstore
