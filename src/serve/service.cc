#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/timer.h"
#include "core/profiling.h"
#include "exec/thread_pool.h"
#include "sparql/sparql.h"

namespace swan::serve {

namespace {

// Cache key text: kind tag + canonical query spelling, so two lexical
// variants of one SPARQL query share an entry.
std::string CacheText(const Request& request) {
  if (request.kind == Request::Kind::kBench) {
    return "bench:" + core::ToString(request.bench_id);
  }
  return "sparql:" + sparql::CanonicalQueryText(request.text);
}

}  // namespace

QueryService::QueryService(core::RdfStore* store,
                           std::optional<core::QueryContext> bench_ctx,
                           ServiceOptions options)
    : store_(store),
      bench_ctx_(std::move(bench_ctx)),
      options_(options),
      telemetry_(options.telemetry),
      admission_(AdmissionOptions{options.max_queue}) {
  SWAN_CHECK(store_ != nullptr);
  SWAN_CHECK(options_.workers >= 1);
  if (options_.max_in_flight <= 0) options_.max_in_flight = options_.workers;
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<ResultCache>(CacheOptions{options_.cache_bytes},
                                           &metrics_);
    audit_hook_token_ = store_->AddAuditHook(
        [this](audit::AuditLevel level, audit::AuditReport* report) {
          cache_->AuditInto(level, report, store_->snapshot_version());
        });
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  Stop();
  if (audit_hook_token_ != 0) store_->RemoveAuditHook(audit_hook_token_);
}

Result<Session*> QueryService::OpenSession(const std::string& label,
                                           int priority, int threads) {
  MutexLock lock(&mutex_);
  if (threads <= 0) threads = options_.default_session_threads;
  Session* session =
      sessions_.Open(label, priority, threads, options_.telemetry);
  if (session == nullptr) {
    return Status::AlreadyExists("session '" + label + "' already open");
  }
  return session;
}

Session* QueryService::FindSession(const std::string& label) {
  MutexLock lock(&mutex_);
  return sessions_.Find(label);
}

Result<uint64_t> QueryService::Submit(Session* session, Request request) {
  SWAN_CHECK(session != nullptr);
  MutexLock lock(&mutex_);
  const uint64_t ticket = next_ticket_;
  const Status st = admission_.Admit(session, std::move(request), ticket);
  if (!st.ok()) {
    metrics_.GetCounter("serve.rejected")->Add(1);
    session->metrics().GetCounter("session.rejected")->Add(1);
    return st;
  }
  ++next_ticket_;
  metrics_.GetCounter("serve.submitted")->Add(1);
  session->metrics().GetCounter("session.submitted")->Add(1);
  lock.Unlock();
  work_cv_.NotifyOne();
  return ticket;
}

void QueryService::Start() {
  {
    MutexLock lock(&mutex_);
    if (started_) return;
    started_ = true;
    // Each submit-all-then-Start() batch replays independently: its
    // dispatch order must not depend on how many requests each session
    // ran in earlier batches.
    admission_.ResetFairness();
    // The trace epoch is read by executors under the turnstile, so write
    // it under turn_mutex_ too. Nesting it inside mutex_ here is the
    // service > turnstile lock order made executable (no request is in
    // flight: started_ was false, so no worker holds the turnstile).
    MutexLock turn(&turn_mutex_);
    trace_clock0_ = store_->backend().VirtualSeconds();
  }
  work_cv_.NotifyAll();
}

void QueryService::Pause() {
  MutexLock lock(&mutex_);
  started_ = false;
}

void QueryService::Drain() {
  MutexLock lock(&mutex_);
  SWAN_CHECK_MSG(started_, "Drain() before Start()");
  while (admission_.HasWork() || in_flight_ != 0) {
    drained_cv_.Wait(lock);
  }
}

void QueryService::Stop() {
  {
    MutexLock lock(&mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

std::vector<Completion> QueryService::TakeCompletions() {
  MutexLock lock(&mutex_);
  std::sort(completions_.begin(), completions_.end(),
            [](const Completion& a, const Completion& b) {
              return a.dispatch_index < b.dispatch_index;
            });
  return std::exchange(completions_, {});
}

std::vector<obs::SessionTrack> QueryService::SessionTracks() const {
  MutexLock lock(&turn_mutex_);
  std::vector<obs::SessionTrack> tracks;
  tracks.reserve(traces_.size());
  for (const TraceRecord& record : traces_) {
    tracks.push_back(obs::SessionTrack{record.label, record.session.get(),
                                       record.offset_seconds});
  }
  return tracks;
}

void QueryService::WorkerLoop() {
  for (;;) {
    Ticket ticket;
    {
      MutexLock lock(&mutex_);
      while (!stopping_ &&
             !(started_ && admission_.HasWork() &&
               in_flight_ < options_.max_in_flight)) {
        work_cv_.Wait(lock);
      }
      if (stopping_) return;
      ticket = admission_.PickNext();
      ticket.dispatch_index = dispatch_counter_++;
      // Queue depth is captured here, under the scheduler mutex: with the
      // submit-all-then-Start() protocol it is a pure function of the
      // dispatch index, so the query log stays byte-identical at any
      // worker count.
      ticket.queue_depth = admission_.queued();
      ++in_flight_;
    }

    Completion completion = Execute(std::move(ticket));

    {
      MutexLock lock(&mutex_);
      --in_flight_;
      metrics_.GetCounter("serve.completed")->Add(1);
      completions_.push_back(std::move(completion));
      if (!admission_.HasWork() && in_flight_ == 0) {
        drained_cv_.NotifyAll();
      }
    }
    // A freed in-flight slot may unblock another worker.
    work_cv_.NotifyOne();
  }
}

Completion QueryService::Execute(Ticket ticket) {
  Completion completion;
  completion.ticket = ticket.ticket;
  completion.dispatch_index = ticket.dispatch_index;
  completion.session_id = ticket.session->id();
  completion.kind = ticket.request.kind;

  // Turnstile: run only when every lower dispatch index has finished.
  // The lock is held across the whole execution — it doubles as the
  // backend mutex (column backends merge deltas on read, the buffer pool
  // is single-writer) and makes the store's state evolution a function
  // of dispatch order alone.
  MutexLock turn(&turn_mutex_);
  while (exec_turn_ != ticket.dispatch_index) turn_cv_.Wait(turn);

  // One query-log record per executed request, built under the turnstile
  // so its deterministic surface (virtual times, counters, cache state)
  // reads one consistent point of the dispatch-order state evolution.
  obs::QueryLogRecord record;
  record.seq = ticket.dispatch_index;
  record.session = ticket.session->id();
  record.kind = ToString(ticket.request.kind);
  record.backend = store_->name();
  record.queue_depth = ticket.queue_depth;
  record.vt_start = store_->backend().VirtualSeconds() - trace_clock0_;
  // The virtual clock does not advance while a request queues, so its
  // wait is the virtual time from the batch epoch (Start()) to execution.
  record.queue_wait_seconds = record.vt_start;
  std::shared_ptr<obs::TraceSession> profile_session;

  obs::MetricsRegistry& session_metrics = ticket.session->metrics();
  switch (ticket.request.kind) {
    case Request::Kind::kInsert:
    case Request::Kind::kDelete: {
      record.text = std::string(ToString(ticket.request.kind)) + " " +
                    std::to_string(ticket.request.triple.subject) + " " +
                    std::to_string(ticket.request.triple.property) + " " +
                    std::to_string(ticket.request.triple.object);
      if (const core::DistRouting* dist = store_->backend().dist()) {
        record.nodes = dist->nodes();
      }
      CpuTimer timer;
      completion.status = ticket.request.kind == Request::Kind::kInsert
                              ? store_->Insert(ticket.request.triple)
                              : store_->Delete(ticket.request.triple);
      completion.snapshot_version = store_->snapshot_version();
      if (completion.status.ok() && cache_ != nullptr) {
        cache_->InvalidateOlderThan(completion.snapshot_version);
      }
      completion.service_seconds =
          timer.ElapsedSeconds() + options_.request_overhead_seconds;
      // A write touches no simulated disk; its deterministic latency is
      // the fixed handling overhead.
      record.latency_seconds = options_.request_overhead_seconds;
      session_metrics.GetCounter("session.writes")->Add(1);
      break;
    }
    case Request::Kind::kBench:
    case Request::Kind::kSparql:
      RunQueryTicket(ticket, &completion, &record, &profile_session);
      break;
  }
  session_metrics.GetCounter("session.completed")->Add(1);
  session_metrics.GetCounter("session.rows")->Add(
      completion.result.rows.size());

  record.text_hash = obs::Fnv1a64(record.text);
  record.ok = completion.status.ok();
  if (!record.ok) record.error = completion.status.message();
  record.cache_hit = completion.cache_hit;
  record.snapshot_version = completion.snapshot_version;
  record.rows = completion.result.rows.size();
  record.vt_finish = store_->backend().VirtualSeconds() - trace_clock0_;
  record.service_seconds = completion.service_seconds;
  record.session_cache_hits =
      session_metrics.GetCounter("session.cache_hits")->value();
  record.session_cache_misses =
      session_metrics.GetCounter("session.cache_misses")->value();
  record.session_cache_evictions =
      session_metrics.GetCounter("session.cache_evictions")->value();

  // kTelemetry ranks below the turnstile, and two bundles never nest —
  // each Record locks one bundle at a time.
  ticket.session->telemetry().Record(record, profile_session.get());
  telemetry_.Record(std::move(record), profile_session.get());

  ++exec_turn_;
  turn.Unlock();
  turn_cv_.NotifyAll();
  return completion;
}

void QueryService::RunQueryTicket(const Ticket& ticket,
                                  Completion* completion,
                                  obs::QueryLogRecord* record,
                                  std::shared_ptr<obs::TraceSession>*
                                      profile_out) {
  core::Backend& backend = store_->backend();
  const uint64_t version = store_->snapshot_version();
  completion->snapshot_version = version;
  const std::string cache_text = CacheText(ticket.request);
  record->text = cache_text;

  // Scale-out node affinity: each session gathers at a fixed coordinator,
  // derived from its deterministic open index. Execution is serialized by
  // the turnstile, so moving the coordinator between queries is a
  // quiescent-point write. Single-node stores keep node 0.
  core::DistRouting* dist = backend.dist();
  const int topology_nodes = dist != nullptr ? dist->nodes() : 1;
  const int node =
      static_cast<int>((ticket.session->seq() - 1) %
                       static_cast<uint64_t>(topology_nodes));
  if (dist != nullptr) dist->SetCoordinator(node);
  record->node = node;
  record->nodes = topology_nodes;
  // The cached payload is coordinator-independent (row bags are), but the
  // cost attribution is not: key the cache per gather node so a hit
  // recorded against node n never masks another node's modeled traffic.
  const std::string cache_key =
      topology_nodes > 1 ? cache_text + " @node=" + std::to_string(node)
                         : cache_text;

  if (cache_ != nullptr) {
    std::optional<ResultPayload> hit = cache_->Get(cache_key, version);
    if (hit.has_value()) {
      completion->result = std::move(*hit);
      completion->cache_hit = true;
      completion->service_seconds = options_.request_overhead_seconds;
      // A hit never touches the backend: deterministic latency is the
      // handling overhead alone.
      record->latency_seconds = options_.request_overhead_seconds;
      ticket.session->metrics().GetCounter("session.cache_hits")->Add(1);
      return;
    }
    ticket.session->metrics().GetCounter("session.cache_misses")->Add(1);
  }

  // Profiling is always on: the fleet aggregator needs every executed
  // query's span tree, and span bookkeeping never advances the virtual
  // clock, so the modeled figures are unchanged. The Chrome-trace record
  // (one track per session) is kept only under options.trace.
  const double trace_offset = backend.VirtualSeconds() - trace_clock0_;
  auto profile = std::make_unique<core::ScopedProfile>(
      ToString(ticket.request.kind) +
          std::string(" #") + std::to_string(ticket.ticket),
      backend, ticket.session->ectx());

  const exec::OpCounters::Snapshot counters_before =
      ticket.session->ectx().counters().Snap();
  const uint64_t disk_bytes_before = backend.TotalBytesRead();
  const uint64_t disk_seeks_before = backend.TotalSeeks();
  const double net_seconds_before = backend.NetSeconds();
  const std::vector<double> lanes_before = exec::LaneCpuSnapshot();
  CpuTimer timer;
  const double io_before = backend.VirtualSeconds();

  if (ticket.request.kind == Request::Kind::kBench) {
    if (!bench_ctx_.has_value()) {
      completion->status = Status::InvalidArgument(
          "service opened without a benchmark query context");
    } else if (!backend.Supports(ticket.request.bench_id)) {
      completion->status = Status::Unimplemented(
          "backend does not support " +
          core::ToString(ticket.request.bench_id));
    } else {
      core::QueryResult result = backend.Run(
          ticket.request.bench_id, *bench_ctx_, ticket.session->ectx());
      completion->result.column_names = std::move(result.column_names);
      completion->result.rows = std::move(result.rows);
    }
  } else {
    Result<sparql::QueryOutput> output = sparql::Execute(
        backend, store_->dataset(), ticket.request.text,
        ticket.session->ectx(), &store_->stats());
    if (!output.ok()) {
      completion->status = output.status();
    } else {
      record->plan_mode = output.value().plan_note;
      completion->result.column_names = std::move(output.value().vars);
      completion->result.rows.reserve(output.value().rows.size());
      for (sparql::Row& row : output.value().rows) {
        completion->result.rows.push_back(std::move(row.ids));
      }
    }
  }

  const double user = timer.ElapsedSeconds();
  const double modeled_cpu =
      exec::ModeledCpuSeconds(lanes_before, exec::LaneCpuSnapshot(), user);
  const double io = backend.VirtualSeconds() - io_before;
  completion->service_seconds =
      modeled_cpu + io + options_.request_overhead_seconds;

  record->io_seconds = io;
  record->latency_seconds = io + options_.request_overhead_seconds;
  record->cpu_seconds = modeled_cpu;
  record->bytes_read = backend.TotalBytesRead() - disk_bytes_before;
  record->seeks = backend.TotalSeeks() - disk_seeks_before;
  const exec::OpCounters::Snapshot counters_after =
      ticket.session->ectx().counters().Snap();
  record->match_calls = counters_after.match_calls - counters_before.match_calls;
  record->morsels = counters_after.morsels - counters_before.morsels;
  record->bgp_batches = counters_after.bgp_batches - counters_before.bgp_batches;
  record->star_gathers =
      counters_after.star_gathers - counters_before.star_gathers;
  record->net_bytes = counters_after.net_bytes - counters_before.net_bytes;
  record->net_messages =
      counters_after.net_messages - counters_before.net_messages;
  record->net_seconds = backend.NetSeconds() - net_seconds_before;

  std::shared_ptr<obs::TraceSession> session =
      profile->FinishWithCpu(modeled_cpu);
  record->ops = obs::CollectEstimatedOps(session->root());
  if (options_.trace) {
    // Already under turn_mutex_ (held across the whole execution).
    traces_.push_back(
        TraceRecord{ticket.session->id(), session, trace_offset});
  }
  *profile_out = std::move(session);

  if (completion->status.ok() && cache_ != nullptr) {
    const size_t evicted =
        cache_->Put(cache_key, version, completion->result);
    if (evicted > 0) {
      ticket.session->metrics()
          .GetCounter("session.cache_evictions")
          ->Add(evicted);
    }
  }
}

Result<ScriptRunResult> RunScript(QueryService* service,
                                  const std::vector<ScriptCommand>& script) {
  SWAN_CHECK(service != nullptr);
  const dict::Dictionary& dict = service->store()->dataset().dict();
  ScriptRunResult result;

  // Enqueue-all-then-start is the replay guarantee; on a service that is
  // already running (a warm pass), pause dispatch first so this batch is
  // also fully queued before the fairness policy sees it.
  service->Pause();

  for (const ScriptCommand& cmd : script) {
    if (cmd.kind == ScriptCommand::Kind::kSession) {
      if (service->FindSession(cmd.session) != nullptr) continue;  // warm pass
      Result<Session*> opened =
          service->OpenSession(cmd.session, cmd.priority, cmd.threads);
      if (!opened.ok()) return opened.status();
      continue;
    }
    Session* session = service->FindSession(cmd.session);
    if (session == nullptr) {
      return Status::InvalidArgument("serve script: unknown session '" +
                                     cmd.session + "'");
    }
    Request request;
    switch (cmd.kind) {
      case ScriptCommand::Kind::kBench:
        request.kind = Request::Kind::kBench;
        request.bench_id = cmd.bench_id;
        break;
      case ScriptCommand::Kind::kSparql:
        request.kind = Request::Kind::kSparql;
        request.text = cmd.text;
        break;
      case ScriptCommand::Kind::kInsert:
      case ScriptCommand::Kind::kDelete: {
        request.kind = cmd.kind == ScriptCommand::Kind::kInsert
                           ? Request::Kind::kInsert
                           : Request::Kind::kDelete;
        uint64_t ids[3] = {0, 0, 0};
        for (int i = 0; i < 3; ++i) {
          const std::optional<uint64_t> id = dict.Find(cmd.terms[i]);
          if (!id.has_value()) {
            return Status::InvalidArgument(
                "serve script: term '" + cmd.terms[i] +
                "' is not in the store's dictionary");
          }
          ids[i] = *id;
        }
        request.triple = rdf::Triple{ids[0], ids[1], ids[2]};
        break;
      }
      case ScriptCommand::Kind::kSession:
        break;  // handled above
    }
    for (int r = 0; r < cmd.repeat; ++r) {
      const Result<uint64_t> ticket = service->Submit(session, request);
      if (ticket.ok()) {
        ++result.submitted;
      } else if (ticket.status().code() == StatusCode::kOverloaded) {
        ++result.rejected;
      } else {
        return ticket.status();
      }
    }
  }

  service->Start();
  service->Drain();
  result.completions = service->TakeCompletions();
  return result;
}

}  // namespace swan::serve
