#ifndef SWANDB_SERVE_ADMISSION_H_
#define SWANDB_SERVE_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "serve/request.h"
#include "serve/session.h"

namespace swan::serve {

struct AdmissionOptions {
  // Total queued (admitted, not yet dispatched) requests across all
  // sessions; one more is rejected with Status::Overloaded.
  size_t max_queue = 256;
};

// A dispatchable unit: one admitted request plus its scheduling identity.
struct Ticket {
  uint64_t ticket = 0;          // submission id, 1-based, gapless
  uint64_t dispatch_index = 0;  // assigned by the service at dispatch
  // Admitted-but-undispatched requests remaining the moment this ticket
  // was picked — captured at dispatch (under the scheduler mutex) so the
  // query log never reads admission state from under the turnstile.
  uint64_t queue_depth = 0;
  Session* session = nullptr;
  int priority = 0;  // effective: session priority + request offset
  Request request;
};

// Bounded, fairness-aware admission queue. Requests are FIFO within a
// session; across sessions the dispatch policy is a pure function of the
// queue state, so a fixed submission order yields a fixed dispatch order
// at any worker count:
//
//   1. highest effective priority at the head of a session's queue wins;
//   2. among those, the session with the fewest dispatches so far (the
//      fairness term: a client holding 100 queued requests advances its
//      count every dispatch, so single-request clients interleave
//      round-robin instead of starving behind it);
//   3. remaining ties go to the session opened earliest, then FIFO.
//
// Externally synchronized — the service calls every method under its
// scheduler mutex; unit tests drive it single-threaded.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {})
      : options_(options) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  // Queues the request, or rejects it with Status::Overloaded when the
  // queue is at capacity (the caller's backpressure signal).
  Status Admit(Session* session, Request request, uint64_t ticket);

  bool HasWork() const { return queued_ > 0; }
  size_t queued() const { return queued_; }

  // Removes and returns the next ticket under the policy above.
  // Requires HasWork().
  Ticket PickNext();

  // Cumulative dispatches of one session (the fairness count).
  uint64_t dispatched(const Session* session) const;

  // Zeroes every session's fairness count. The service calls this when a
  // paused service restarts, so each submit-all-then-Start() batch's
  // dispatch order depends only on that batch's submissions — not on how
  // many requests each session ran in earlier batches.
  void ResetFairness();

 private:
  struct Lane {
    Session* session = nullptr;
    std::deque<Ticket> fifo;
    uint64_t dispatched = 0;
  };

  Lane* LaneFor(Session* session);

  AdmissionOptions options_;
  std::vector<Lane> lanes_;  // one per session, in first-submit order
  size_t queued_ = 0;
};

}  // namespace swan::serve

#endif  // SWANDB_SERVE_ADMISSION_H_
