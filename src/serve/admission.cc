#include "serve/admission.h"

#include <utility>

#include "common/macros.h"

namespace swan::serve {

AdmissionController::Lane* AdmissionController::LaneFor(Session* session) {
  for (Lane& lane : lanes_) {
    if (lane.session == session) return &lane;
  }
  lanes_.push_back(Lane{session, {}, 0});
  return &lanes_.back();
}

Status AdmissionController::Admit(Session* session, Request request,
                                  uint64_t ticket) {
  SWAN_CHECK(session != nullptr);
  if (queued_ >= options_.max_queue) {
    return Status::Overloaded("admission queue full (" +
                              std::to_string(options_.max_queue) +
                              " requests queued)");
  }
  Ticket entry;
  entry.ticket = ticket;
  entry.session = session;
  entry.priority = session->priority() + request.priority;
  entry.request = std::move(request);
  LaneFor(session)->fifo.push_back(std::move(entry));
  ++queued_;
  return Status::OK();
}

Ticket AdmissionController::PickNext() {
  SWAN_CHECK_MSG(queued_ > 0, "PickNext on an empty admission queue");
  Lane* best = nullptr;
  for (Lane& lane : lanes_) {
    if (lane.fifo.empty()) continue;
    if (best == nullptr) {
      best = &lane;
      continue;
    }
    const Ticket& cand = lane.fifo.front();
    const Ticket& lead = best->fifo.front();
    if (cand.priority != lead.priority) {
      if (cand.priority > lead.priority) best = &lane;
      continue;
    }
    if (lane.dispatched != best->dispatched) {
      if (lane.dispatched < best->dispatched) best = &lane;
      continue;
    }
    // lanes_ is in first-submit order, not session order; compare seqs.
    if (lane.session->seq() < best->session->seq()) best = &lane;
  }
  SWAN_CHECK(best != nullptr);
  Ticket picked = std::move(best->fifo.front());
  best->fifo.pop_front();
  ++best->dispatched;
  --queued_;
  return picked;
}

void AdmissionController::ResetFairness() {
  for (Lane& lane : lanes_) lane.dispatched = 0;
}

uint64_t AdmissionController::dispatched(const Session* session) const {
  for (const Lane& lane : lanes_) {
    if (lane.session == session) return lane.dispatched;
  }
  return 0;
}

}  // namespace swan::serve
