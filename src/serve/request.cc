#include "serve/request.h"

#include <algorithm>

#include "common/macros.h"

namespace swan::serve {

const char* ToString(Request::Kind kind) {
  switch (kind) {
    case Request::Kind::kBench:
      return "bench";
    case Request::Kind::kSparql:
      return "sparql";
    case Request::Kind::kInsert:
      return "insert";
    case Request::Kind::kDelete:
      return "delete";
  }
  return "?";
}

uint64_t ResultPayload::ApproxBytes() const {
  uint64_t bytes = sizeof(ResultPayload);
  for (const std::string& name : column_names) {
    bytes += sizeof(std::string) + name.size();
  }
  for (const std::vector<uint64_t>& row : rows) {
    bytes += sizeof(std::vector<uint64_t>) + row.size() * sizeof(uint64_t);
  }
  return bytes;
}

namespace {

double NearestRank(const std::vector<double>& sorted, double quantile) {
  if (sorted.empty()) return 0.0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<size_t>(quantile * n + 0.999999);
  rank = std::min(std::max<size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

}  // namespace

LatencyStats ModelSchedule(const std::vector<Completion>& completions,
                           int servers) {
  SWAN_CHECK(servers >= 1);
  LatencyStats stats;
  stats.requests = completions.size();
  if (completions.empty()) return stats;

  // Completions sorted into dispatch order; the FCFS model assigns them
  // to servers in exactly that order.
  std::vector<const Completion*> ordered;
  ordered.reserve(completions.size());
  for (const Completion& c : completions) ordered.push_back(&c);
  std::sort(ordered.begin(), ordered.end(),
            [](const Completion* a, const Completion* b) {
              return a->dispatch_index < b->dispatch_index;
            });

  std::vector<double> free_at(static_cast<size_t>(servers), 0.0);
  std::vector<double> latencies;
  latencies.reserve(ordered.size());
  double makespan = 0.0;
  for (const Completion* c : ordered) {
    if (c->cache_hit) ++stats.cache_hits;
    // Earliest-free server; ties go to the lowest index, so the schedule
    // is a pure function of the service-time sequence.
    size_t best = 0;
    for (size_t s = 1; s < free_at.size(); ++s) {
      if (free_at[s] < free_at[best]) best = s;
    }
    const double finish = free_at[best] + c->service_seconds;
    free_at[best] = finish;
    latencies.push_back(finish);
    makespan = std::max(makespan, finish);
  }
  std::sort(latencies.begin(), latencies.end());
  stats.makespan_seconds = makespan;
  stats.throughput_per_second =
      makespan > 0.0 ? static_cast<double>(stats.requests) / makespan : 0.0;
  stats.p50_seconds = NearestRank(latencies, 0.50);
  stats.p95_seconds = NearestRank(latencies, 0.95);
  stats.p99_seconds = NearestRank(latencies, 0.99);
  return stats;
}

}  // namespace swan::serve
