#ifndef SWANDB_SERVE_REQUEST_H_
#define SWANDB_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query.h"
#include "rdf/triple.h"

namespace swan::serve {

// One client request submitted to the service through a session. The four
// kinds cover the whole public surface of the store: the fixed benchmark
// queries, the SPARQL front-end, and the write path (whose execution
// order relative to the reads is fixed by the service's turnstile, so a
// script mixing updates and queries replays deterministically).
struct Request {
  enum class Kind { kBench, kSparql, kInsert, kDelete };
  Kind kind = Kind::kBench;
  core::QueryId bench_id = core::QueryId::kQ1;  // kBench
  std::string text;                             // kSparql: the query text
  rdf::Triple triple{0, 0, 0};                  // kInsert / kDelete
  // Priority *offset* added to the owning session's priority at submit
  // time; higher effective priority dispatches first.
  int priority = 0;
};

const char* ToString(Request::Kind kind);

// The unified result payload: both bench queries (core::QueryResult) and
// SPARQL queries (sparql::QueryOutput) reduce to named columns over
// dictionary ids / aggregate counts. Comparing payloads row for row is
// the serving layer's equivalence gate, and the byte estimate is what the
// result cache charges against its budget.
struct ResultPayload {
  std::vector<std::string> column_names;
  std::vector<std::vector<uint64_t>> rows;

  uint64_t ApproxBytes() const;

  friend bool operator==(const ResultPayload&, const ResultPayload&) =
      default;
};

// The completion record of one dispatched request. dispatch_index is the
// position in the service's deterministic execution order (0-based,
// gapless); service_seconds is the modeled cost of serving the request —
// modeled critical-path CPU + simulated-disk virtual time + the fixed
// per-request handling overhead — which the latency model schedules onto
// W servers.
struct Completion {
  uint64_t ticket = 0;
  uint64_t dispatch_index = 0;
  std::string session_id;
  Request::Kind kind = Request::Kind::kBench;
  Status status = Status::OK();
  ResultPayload result;
  bool cache_hit = false;
  double service_seconds = 0.0;
  // Store snapshot version the request executed at (for writes: the
  // version *after* the mutation).
  uint64_t snapshot_version = 0;
};

// Deterministic W-server FCFS schedule model over the completions'
// modeled service times: all requests arrive at t=0 in dispatch order,
// each goes to the earliest-free server, latency = its finish time.
// Throughput is requests / makespan. The percentiles use the
// nearest-rank method over the modeled latencies.
struct LatencyStats {
  uint64_t requests = 0;
  uint64_t cache_hits = 0;
  double makespan_seconds = 0.0;
  double throughput_per_second = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

LatencyStats ModelSchedule(const std::vector<Completion>& completions,
                           int servers);

}  // namespace swan::serve

#endif  // SWANDB_SERVE_REQUEST_H_
