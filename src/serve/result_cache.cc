#include "serve/result_cache.h"

#include <utility>

#include "common/macros.h"
#include "common/mutex.h"

namespace swan::serve {

ResultCache::ResultCache(CacheOptions options, obs::MetricsRegistry* metrics)
    : options_(options) {
  SWAN_CHECK(metrics != nullptr);
  hits_ = metrics->GetCounter("serve.cache.hits");
  misses_ = metrics->GetCounter("serve.cache.misses");
  evictions_ = metrics->GetCounter("serve.cache.evictions");
  invalidations_ = metrics->GetCounter("serve.cache.invalidations");
}

std::string ResultCache::KeyOf(const std::string& text, uint64_t version) {
  return text + "@" + std::to_string(version);
}

std::optional<ResultPayload> ResultCache::Get(const std::string& text,
                                              uint64_t version) {
  MutexLock lock(&mutex_);
  const auto it = index_.find(KeyOf(text, version));
  if (it == index_.end()) {
    misses_->Add(1);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  hits_->Add(1);
  return it->second->payload;
}

size_t ResultCache::Put(const std::string& text, uint64_t version,
                        const ResultPayload& payload) {
  std::string key = KeyOf(text, version);
  const uint64_t entry_bytes = key.size() + payload.ApproxBytes();
  MutexLock lock(&mutex_);
  if (entry_bytes > options_.max_bytes) return 0;  // would evict everything
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    it->second->bytes = entry_bytes;
    it->second->payload = payload;
    bytes_ += entry_bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, version, entry_bytes, payload});
    index_.emplace(std::move(key), lru_.begin());
    bytes_ += entry_bytes;
  }
  return EvictToBudgetLocked();
}

size_t ResultCache::EvictToBudgetLocked() {
  size_t evicted = 0;
  while (bytes_ > options_.max_bytes) {
    SWAN_CHECK(!lru_.empty());
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    evictions_->Add(1);
    ++evicted;
  }
  return evicted;
}

void ResultCache::InvalidateOlderThan(uint64_t version) {
  MutexLock lock(&mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->version < version) {
      bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
      invalidations_->Add(1);
    } else {
      ++it;
    }
  }
}

size_t ResultCache::entries() const {
  MutexLock lock(&mutex_);
  return lru_.size();
}

uint64_t ResultCache::bytes() const {
  MutexLock lock(&mutex_);
  return bytes_;
}

void ResultCache::AuditInto(audit::AuditLevel level,
                            audit::AuditReport* report,
                            uint64_t current_version) const {
  (void)level;  // all cache invariants are metadata-level (kQuick)
  MutexLock lock(&mutex_);
  const std::string object = "result-cache";
  if (index_.size() != lru_.size()) {
    report->Add(audit::FindingClass::kCache, object,
                "index has " + std::to_string(index_.size()) +
                    " entries but the LRU list has " +
                    std::to_string(lru_.size()));
  }
  uint64_t recomputed = 0;
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    const auto idx = index_.find(it->key);
    if (idx == index_.end() || idx->second != it) {
      report->Add(audit::FindingClass::kCache, object,
                  "LRU entry '" + it->key + "' missing from the index or "
                  "pointing elsewhere");
    }
    const uint64_t expected = it->key.size() + it->payload.ApproxBytes();
    if (it->bytes != expected) {
      report->Add(audit::FindingClass::kCache, object,
                  "entry '" + it->key + "' charges " +
                      std::to_string(it->bytes) + " bytes but its payload "
                      "re-adds to " + std::to_string(expected));
    }
    recomputed += it->bytes;
    if (it->version < current_version) {
      report->Add(audit::FindingClass::kCache, object,
                  "stale entry '" + it->key + "': computed at snapshot " +
                      std::to_string(it->version) +
                      " but the store is at " +
                      std::to_string(current_version));
    }
  }
  if (recomputed != bytes_) {
    report->Add(audit::FindingClass::kCache, object,
                "byte accounting says " + std::to_string(bytes_) +
                    " but the entries re-add to " +
                    std::to_string(recomputed));
  }
  if (bytes_ > options_.max_bytes) {
    report->Add(audit::FindingClass::kCache, object,
                "resident bytes " + std::to_string(bytes_) +
                    " exceed the budget " +
                    std::to_string(options_.max_bytes));
  }
}

}  // namespace swan::serve
