#ifndef SWANDB_SERVE_SERVICE_H_
#define SWANDB_SERVE_SERVICE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "core/store.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/querylog.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "serve/result_cache.h"
#include "serve/script.h"
#include "serve/session.h"

namespace swan::serve {

struct ServiceOptions {
  // Dispatch width: number of worker threads, and the server count of the
  // modeled latency schedule.
  int workers = 4;
  // Dispatched-but-unfinished requests allowed at once; 0 means workers.
  int max_in_flight = 0;
  // Admission queue capacity (Status::Overloaded beyond it).
  size_t max_queue = 256;
  // Result-cache byte budget; 0 disables the cache.
  size_t cache_bytes = 8u << 20;
  // Modeled per-request handling cost (admission, cache lookup, response
  // marshaling) charged to every completion — the whole service cost of a
  // cache hit.
  double request_overhead_seconds = 1e-4;
  // Keep the per-request Chrome-trace records (SessionTracks). Profiling
  // itself is always on — every executed (non-cache-hit) query runs under
  // a core::ScopedProfile so the fleet telemetry sees its span tree; this
  // flag only controls whether the raw per-request traces are retained.
  bool trace = false;
  // ExecContext width for sessions that do not ask for one explicitly.
  int default_session_threads = 1;
  // Fleet-telemetry knobs (window width, SLO threshold, text truncation),
  // shared by the service-global bundle and every session's bundle.
  obs::TelemetryOptions telemetry;
};

// The concurrent query service: sessions submit requests, a bounded
// fairness-aware admission queue hands them to real worker threads, and
// a snapshot-keyed result cache short-circuits repeated queries.
//
// Determinism contract. Dispatch order is a pure function of the
// submission order (the admission policy never looks at the clock or the
// worker count), and execution is a *turnstile*: a dispatched ticket
// runs only when every lower dispatch index has finished, so backend
// state — delta-store merges, buffer-pool contents, snapshot versions,
// cache population — evolves through one deterministic sequence at any
// worker count. Submit everything, then Start(): the completion stream
// (rows, cache hits, snapshot versions) is bit-identical at 1, 2, or 8
// workers, which is the serving layer's equivalence gate. (Clients that
// keep submitting after Start() still get correct, serialized execution;
// only the replay guarantee needs the submit-then-start protocol.)
// Genuine cross-thread concurrency — submission, dispatch, cache and
// metrics bookkeeping — is real and TSan-checked; the *backends* are
// serialized because their reads mutate state (merge-on-read, buffer
// pool), exactly like the single-writer engines the paper measures.
//
// Latency is modeled, not wall-measured: each completion carries its
// modeled service cost (critical-path CPU + simulated-disk virtual time
// + fixed handling overhead) and ModelSchedule replays the completion
// stream onto `workers` FCFS servers for throughput and p50/p95/p99.
//
// The service registers the result cache's audit walker with the store
// (core::RdfStore::AddAuditHook), so store->Audit() also checks cache
// accounting and snapshot coherence; the hook is removed on destruction.
class QueryService {
 public:
  QueryService(core::RdfStore* store,
               std::optional<core::QueryContext> bench_ctx,
               ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Opens a session. threads == 0 uses options.default_session_threads.
  // Fails with AlreadyExists on a duplicate label.
  Result<Session*> OpenSession(const std::string& label, int priority = 0,
                               int threads = 0) SWAN_EXCLUDES(mutex_);
  Session* FindSession(const std::string& label) SWAN_EXCLUDES(mutex_);

  // Queues a request; returns its ticket id, or Status::Overloaded when
  // the admission queue is full (the backpressure signal — retry later).
  Result<uint64_t> Submit(Session* session, Request request)
      SWAN_EXCLUDES(mutex_);

  // Releases the workers. Idempotent; submissions may continue after.
  void Start() SWAN_EXCLUDES(mutex_, turn_mutex_);

  // Stops dispatching (in-flight requests finish) so a further batch can
  // be submitted under the replay guarantee and released with Start().
  // Call only while idle (after Drain); idempotent.
  void Pause() SWAN_EXCLUDES(mutex_);

  // Blocks until the queue is empty and nothing is in flight. Requires
  // Start() to have been called.
  void Drain() SWAN_EXCLUDES(mutex_);

  // Stops and joins the workers (queued-but-undispatched requests are
  // abandoned — call Drain() first for a clean shutdown). Idempotent;
  // the destructor calls it.
  void Stop() SWAN_EXCLUDES(mutex_);

  // Completion records accumulated since the last call, sorted into
  // dispatch order. Call between Drain()s to separate passes.
  std::vector<Completion> TakeCompletions() SWAN_EXCLUDES(mutex_);

  // Per-request traces (options.trace) grouped per session, offset so
  // each session's requests line up end to end — feed directly to
  // obs::ChromeTraceJsonMulti. Call only while idle (after Drain).
  std::vector<obs::SessionTrack> SessionTracks() const
      SWAN_EXCLUDES(turn_mutex_);

  obs::MetricsRegistry& metrics() { return metrics_; }
  // The service-global fleet-telemetry bundle: the structured query log
  // (one record per executed request, in dispatch order), the windowed
  // latency metrics on the virtual clock, and the cross-query profile
  // aggregator. Per-session slices live on each Session.
  obs::Telemetry& telemetry() { return telemetry_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }
  ResultCache* cache() { return cache_.get(); }
  core::RdfStore* store() { return store_; }
  const ServiceOptions& options() const { return options_; }
  const std::optional<core::QueryContext>& bench_context() const {
    return bench_ctx_;
  }

 private:
  struct TraceRecord {
    std::string label;
    std::shared_ptr<obs::TraceSession> session;
    double offset_seconds = 0.0;
  };

  void WorkerLoop() SWAN_EXCLUDES(mutex_, turn_mutex_);
  Completion Execute(Ticket ticket) SWAN_EXCLUDES(turn_mutex_);
  void RunQueryTicket(const Ticket& ticket, Completion* completion,
                      obs::QueryLogRecord* record,
                      std::shared_ptr<obs::TraceSession>* profile_out)
      SWAN_REQUIRES(turn_mutex_);

  core::RdfStore* store_;
  std::optional<core::QueryContext> bench_ctx_;
  ServiceOptions options_;
  obs::MetricsRegistry metrics_;
  obs::Telemetry telemetry_;
  std::unique_ptr<ResultCache> cache_;
  uint64_t audit_hook_token_ = 0;

  // Scheduler state (mutex_): admission queue, sessions, completions.
  // Lock order: mutex_ (kServeService) outranks turn_mutex_
  // (kServeTurnstile) — Start() nests them in exactly that direction, and
  // the rank checker aborts any code path that tries the reverse.
  mutable Mutex mutex_{LockRank::kServeService, "serve.service"};
  CondVar work_cv_;
  CondVar drained_cv_;
  SessionManager sessions_ SWAN_GUARDED_BY(mutex_);
  AdmissionController admission_ SWAN_GUARDED_BY(mutex_);
  bool started_ SWAN_GUARDED_BY(mutex_) = false;
  bool stopping_ SWAN_GUARDED_BY(mutex_) = false;
  uint64_t next_ticket_ SWAN_GUARDED_BY(mutex_) = 1;
  uint64_t dispatch_counter_ SWAN_GUARDED_BY(mutex_) = 0;
  int in_flight_ SWAN_GUARDED_BY(mutex_) = 0;
  std::vector<Completion> completions_ SWAN_GUARDED_BY(mutex_);

  // Turnstile (turn_mutex_): serializes execution in dispatch order; the
  // holder of the current turn also owns backend access and the trace
  // records. trace_clock0_ lives here (not under mutex_) because its
  // readers run under the turnstile; Start() writes it with both locks
  // held.
  mutable Mutex turn_mutex_{LockRank::kServeTurnstile, "serve.turnstile"};
  CondVar turn_cv_;
  uint64_t exec_turn_ SWAN_GUARDED_BY(turn_mutex_) = 0;
  double trace_clock0_ SWAN_GUARDED_BY(turn_mutex_) = 0.0;
  std::vector<TraceRecord> traces_ SWAN_GUARDED_BY(turn_mutex_);

  std::vector<std::thread> workers_;
};

// Replays a parsed script: opens sessions (reusing ones whose label
// already exists, so a second replay of the same script is the warm
// pass), submits every request in file order, then Start() + Drain().
// Overloaded submissions are counted, not fatal. Fails if a command
// names an unknown session, or an insert/delete term is not in the
// store's dictionary.
struct ScriptRunResult {
  std::vector<Completion> completions;  // dispatch order
  uint64_t submitted = 0;
  uint64_t rejected = 0;  // Status::Overloaded submissions
};

Result<ScriptRunResult> RunScript(QueryService* service,
                                  const std::vector<ScriptCommand>& script);

}  // namespace swan::serve

#endif  // SWANDB_SERVE_SERVICE_H_
