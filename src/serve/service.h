#ifndef SWANDB_SERVE_SERVICE_H_
#define SWANDB_SERVE_SERVICE_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/store.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/request.h"
#include "serve/result_cache.h"
#include "serve/script.h"
#include "serve/session.h"

namespace swan::serve {

struct ServiceOptions {
  // Dispatch width: number of worker threads, and the server count of the
  // modeled latency schedule.
  int workers = 4;
  // Dispatched-but-unfinished requests allowed at once; 0 means workers.
  int max_in_flight = 0;
  // Admission queue capacity (Status::Overloaded beyond it).
  size_t max_queue = 256;
  // Result-cache byte budget; 0 disables the cache.
  size_t cache_bytes = 8u << 20;
  // Modeled per-request handling cost (admission, cache lookup, response
  // marshaling) charged to every completion — the whole service cost of a
  // cache hit.
  double request_overhead_seconds = 1e-4;
  // Attach a core::ScopedProfile to every executed (non-cache-hit) query
  // so each session's requests land on their own Chrome-trace track
  // group (see SessionTracks).
  bool trace = false;
  // ExecContext width for sessions that do not ask for one explicitly.
  int default_session_threads = 1;
};

// The concurrent query service: sessions submit requests, a bounded
// fairness-aware admission queue hands them to real worker threads, and
// a snapshot-keyed result cache short-circuits repeated queries.
//
// Determinism contract. Dispatch order is a pure function of the
// submission order (the admission policy never looks at the clock or the
// worker count), and execution is a *turnstile*: a dispatched ticket
// runs only when every lower dispatch index has finished, so backend
// state — delta-store merges, buffer-pool contents, snapshot versions,
// cache population — evolves through one deterministic sequence at any
// worker count. Submit everything, then Start(): the completion stream
// (rows, cache hits, snapshot versions) is bit-identical at 1, 2, or 8
// workers, which is the serving layer's equivalence gate. (Clients that
// keep submitting after Start() still get correct, serialized execution;
// only the replay guarantee needs the submit-then-start protocol.)
// Genuine cross-thread concurrency — submission, dispatch, cache and
// metrics bookkeeping — is real and TSan-checked; the *backends* are
// serialized because their reads mutate state (merge-on-read, buffer
// pool), exactly like the single-writer engines the paper measures.
//
// Latency is modeled, not wall-measured: each completion carries its
// modeled service cost (critical-path CPU + simulated-disk virtual time
// + fixed handling overhead) and ModelSchedule replays the completion
// stream onto `workers` FCFS servers for throughput and p50/p95/p99.
//
// The service registers the result cache's audit walker with the store
// (core::RdfStore::AddAuditHook), so store->Audit() also checks cache
// accounting and snapshot coherence; the hook is removed on destruction.
class QueryService {
 public:
  QueryService(core::RdfStore* store,
               std::optional<core::QueryContext> bench_ctx,
               ServiceOptions options = {});
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Opens a session. threads == 0 uses options.default_session_threads.
  // Fails with AlreadyExists on a duplicate label.
  Result<Session*> OpenSession(const std::string& label, int priority = 0,
                               int threads = 0);
  Session* FindSession(const std::string& label);

  // Queues a request; returns its ticket id, or Status::Overloaded when
  // the admission queue is full (the backpressure signal — retry later).
  Result<uint64_t> Submit(Session* session, Request request);

  // Releases the workers. Idempotent; submissions may continue after.
  void Start();

  // Stops dispatching (in-flight requests finish) so a further batch can
  // be submitted under the replay guarantee and released with Start().
  // Call only while idle (after Drain); idempotent.
  void Pause();

  // Blocks until the queue is empty and nothing is in flight. Requires
  // Start() to have been called.
  void Drain();

  // Stops and joins the workers (queued-but-undispatched requests are
  // abandoned — call Drain() first for a clean shutdown). Idempotent;
  // the destructor calls it.
  void Stop();

  // Completion records accumulated since the last call, sorted into
  // dispatch order. Call between Drain()s to separate passes.
  std::vector<Completion> TakeCompletions();

  // Per-request traces (options.trace) grouped per session, offset so
  // each session's requests line up end to end — feed directly to
  // obs::ChromeTraceJsonMulti. Call only while idle (after Drain).
  std::vector<obs::SessionTrack> SessionTracks() const;

  obs::MetricsRegistry& metrics() { return metrics_; }
  ResultCache* cache() { return cache_.get(); }
  core::RdfStore* store() { return store_; }
  const ServiceOptions& options() const { return options_; }
  const std::optional<core::QueryContext>& bench_context() const {
    return bench_ctx_;
  }

 private:
  struct TraceRecord {
    std::string label;
    std::shared_ptr<obs::TraceSession> session;
    double offset_seconds = 0.0;
  };

  void WorkerLoop();
  Completion Execute(Ticket ticket);
  void RunQueryTicket(const Ticket& ticket, Completion* completion);

  core::RdfStore* store_;
  std::optional<core::QueryContext> bench_ctx_;
  ServiceOptions options_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<ResultCache> cache_;
  uint64_t audit_hook_token_ = 0;

  // Scheduler state (mutex_): admission queue, sessions, completions.
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable drained_cv_;
  SessionManager sessions_;
  AdmissionController admission_;
  bool started_ = false;
  bool stopping_ = false;
  uint64_t next_ticket_ = 1;
  uint64_t dispatch_counter_ = 0;
  int in_flight_ = 0;
  std::vector<Completion> completions_;

  // Turnstile (turn_mutex_): serializes execution in dispatch order; the
  // holder of the current turn also owns backend access and the trace
  // records.
  mutable std::mutex turn_mutex_;
  std::condition_variable turn_cv_;
  uint64_t exec_turn_ = 0;
  double trace_clock0_ = 0.0;
  std::vector<TraceRecord> traces_;

  std::vector<std::thread> workers_;
};

// Replays a parsed script: opens sessions (reusing ones whose label
// already exists, so a second replay of the same script is the warm
// pass), submits every request in file order, then Start() + Drain().
// Overloaded submissions are counted, not fatal. Fails if a command
// names an unknown session, or an insert/delete term is not in the
// store's dictionary.
struct ScriptRunResult {
  std::vector<Completion> completions;  // dispatch order
  uint64_t submitted = 0;
  uint64_t rejected = 0;  // Status::Overloaded submissions
};

Result<ScriptRunResult> RunScript(QueryService* service,
                                  const std::vector<ScriptCommand>& script);

}  // namespace swan::serve

#endif  // SWANDB_SERVE_SERVICE_H_
