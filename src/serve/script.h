#ifndef SWANDB_SERVE_SCRIPT_H_
#define SWANDB_SERVE_SCRIPT_H_

#include <array>
#include <istream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/query.h"

namespace swan::serve {

// A serve script is the deterministic replay format of the serving
// layer: one command per line, '#' comments, blank lines ignored.
//
//   session alice priority=2 threads=2
//   session bob
//   bench alice q1
//   bench alice repeat=3 q5
//   query bob SELECT ?s WHERE { ?s <type> <Text> } LIMIT 5
//   query bob repeat=2 SELECT ?s ?o WHERE { ?s <origin> ?o }
//   insert alice <subjA> <origin> <info:marcorg/DLC>
//   delete alice <subjA> <origin> <info:marcorg/DLC>
//
// `session` opens a client session (must precede its use); every other
// command submits one request on the named session. key=value options
// directly after the session name are parsed per command kind: sessions
// take priority= and threads=, bench/query take repeat=. Terms of
// insert/delete are dictionary spellings (quoted literals may contain
// spaces; backslash escapes are honored inside the quotes).
//
// The runner (serve::RunScript) submits every command in file order
// before starting the workers, so the dispatch order — and with it every
// result, including the interleaving of updates and queries — replays
// identically at any worker count.
struct ScriptCommand {
  enum class Kind { kSession, kBench, kSparql, kInsert, kDelete };
  Kind kind = Kind::kSession;
  std::string session;  // label; kSession defines it, the rest use it
  int priority = 0;     // kSession
  int threads = 1;      // kSession
  int repeat = 1;       // kBench / kSparql
  std::string query_name;                 // kBench, e.g. "q3*"
  core::QueryId bench_id = core::QueryId::kQ1;  // resolved from query_name
  std::string text;                       // kSparql
  std::array<std::string, 3> terms;       // kInsert / kDelete: s, p, o
};

// Parses a whole script; errors carry the 1-based line number.
Result<std::vector<ScriptCommand>> ParseScript(std::istream& in);
Result<std::vector<ScriptCommand>> ParseScript(std::string_view text);

}  // namespace swan::serve

#endif  // SWANDB_SERVE_SCRIPT_H_
