#include "serve/script.h"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace swan::serve {

namespace {

Status LineError(size_t line, const std::string& message) {
  return Status::InvalidArgument("serve script line " + std::to_string(line) +
                                 ": " + message);
}

void SkipSpace(std::string_view text, size_t* pos) {
  while (*pos < text.size() &&
         (text[*pos] == ' ' || text[*pos] == '\t' || text[*pos] == '\r')) {
    ++*pos;
  }
}

// One whitespace-delimited token. A token starting with '"' runs to the
// closing unescaped quote and then on to the next whitespace, so quoted
// dictionary literals (possibly with @lang / ^^type suffixes) survive
// with their spaces.
std::string NextToken(std::string_view text, size_t* pos) {
  SkipSpace(text, pos);
  const size_t begin = *pos;
  bool in_quote = false;
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (in_quote) {
      if (c == '\\' && *pos + 1 < text.size()) {
        ++*pos;  // skip the escaped character
      } else if (c == '"') {
        in_quote = false;
      }
    } else if (c == '"') {
      in_quote = true;
    } else if (c == ' ' || c == '\t' || c == '\r') {
      break;
    }
    ++*pos;
  }
  return std::string(text.substr(begin, *pos - begin));
}

bool ParseInt(const std::string& text, int* out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = static_cast<int>(value);
  return true;
}

// Consumes leading key=value tokens; returns the first token that is not
// an option (or "" at end of line).
Status ParseOptions(std::string_view line, size_t* pos, size_t line_no,
                    ScriptCommand* cmd, std::string* first_plain) {
  for (;;) {
    const size_t before = *pos;
    const std::string token = NextToken(line, pos);
    const size_t eq = token.find('=');
    if (token.empty() || eq == std::string::npos || token[0] == '"' ||
        token[0] == '<') {
      *first_plain = token;
      if (token.empty()) *pos = before;
      return Status::OK();
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    int parsed = 0;
    if (!ParseInt(value, &parsed)) {
      return LineError(line_no, "bad option value in '" + token + "'");
    }
    const bool is_session = cmd->kind == ScriptCommand::Kind::kSession;
    const bool is_query = cmd->kind == ScriptCommand::Kind::kBench ||
                          cmd->kind == ScriptCommand::Kind::kSparql;
    if (key == "priority" && is_session) {
      cmd->priority = parsed;
    } else if (key == "threads" && is_session) {
      if (parsed < 1) return LineError(line_no, "threads must be >= 1");
      cmd->threads = parsed;
    } else if (key == "repeat" && is_query) {
      if (parsed < 1) return LineError(line_no, "repeat must be >= 1");
      cmd->repeat = parsed;
    } else {
      return LineError(line_no, "unknown option '" + key + "' for this "
                       "command");
    }
  }
}

Status ParseBenchName(const std::string& name, size_t line_no,
                      ScriptCommand* cmd) {
  for (const core::QueryId id : core::AllQueries()) {
    if (core::ToString(id) == name) {
      cmd->query_name = name;
      cmd->bench_id = id;
      return Status::OK();
    }
  }
  return LineError(line_no, "unknown benchmark query '" + name +
                   "' (expected q1..q8 or q2*/q3*/q4*/q6*)");
}

}  // namespace

Result<std::vector<ScriptCommand>> ParseScript(std::istream& in) {
  std::vector<ScriptCommand> script;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t pos = 0;
    SkipSpace(line, &pos);
    if (pos >= line.size() || line[pos] == '#') continue;

    const std::string verb = NextToken(line, &pos);
    ScriptCommand cmd;
    if (verb == "session") {
      cmd.kind = ScriptCommand::Kind::kSession;
    } else if (verb == "bench") {
      cmd.kind = ScriptCommand::Kind::kBench;
    } else if (verb == "query") {
      cmd.kind = ScriptCommand::Kind::kSparql;
    } else if (verb == "insert") {
      cmd.kind = ScriptCommand::Kind::kInsert;
    } else if (verb == "delete") {
      cmd.kind = ScriptCommand::Kind::kDelete;
    } else {
      return LineError(line_no, "unknown command '" + verb + "'");
    }

    cmd.session = NextToken(line, &pos);
    if (cmd.session.empty()) {
      return LineError(line_no, "missing session name");
    }

    std::string first_plain;
    const Status opt =
        ParseOptions(line, &pos, line_no, &cmd, &first_plain);
    if (!opt.ok()) return opt;

    switch (cmd.kind) {
      case ScriptCommand::Kind::kSession:
        if (!first_plain.empty()) {
          return LineError(line_no, "unexpected token '" + first_plain +
                           "' after session options");
        }
        break;
      case ScriptCommand::Kind::kBench: {
        const Status st = ParseBenchName(first_plain, line_no, &cmd);
        if (!st.ok()) return st;
        SkipSpace(line, &pos);
        if (pos < line.size()) {
          return LineError(line_no, "unexpected trailing text after the "
                           "query name");
        }
        break;
      }
      case ScriptCommand::Kind::kSparql: {
        SkipSpace(line, &pos);
        cmd.text = first_plain;
        if (pos < line.size()) {
          if (!cmd.text.empty()) cmd.text += ' ';
          cmd.text += line.substr(pos);
        }
        if (cmd.text.empty()) {
          return LineError(line_no, "missing SPARQL text");
        }
        break;
      }
      case ScriptCommand::Kind::kInsert:
      case ScriptCommand::Kind::kDelete: {
        cmd.terms[0] = first_plain;
        cmd.terms[1] = NextToken(line, &pos);
        cmd.terms[2] = NextToken(line, &pos);
        SkipSpace(line, &pos);
        if (cmd.terms[0].empty() || cmd.terms[1].empty() ||
            cmd.terms[2].empty() || pos < line.size()) {
          return LineError(line_no,
                           "expected exactly three terms (subject property "
                           "object)");
        }
        break;
      }
    }
    script.push_back(std::move(cmd));
  }
  return script;
}

Result<std::vector<ScriptCommand>> ParseScript(std::string_view text) {
  std::istringstream in{std::string(text)};
  return ParseScript(in);
}

}  // namespace swan::serve
