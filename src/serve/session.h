#ifndef SWANDB_SERVE_SESSION_H_
#define SWANDB_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exec/exec_context.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace swan::serve {

// One client connection to the serving layer. A session owns
//
//   * its execution context — so each client gets its own thread budget,
//     operator counters and trace attachment point (I/O-lane isolation:
//     a narrow session cannot be widened by a neighbor, and per-query
//     counters never mix across clients);
//   * its metrics registry — submitted/completed/rejected/cache-hit/row
//     counters accumulate per client, isolated from the service-level
//     registry;
//   * its telemetry bundle — the per-client slice of the fleet query log
//     and windowed metrics, alongside the service-global bundle (the
//     registry-global serve.cache.* counters stay global; per-session
//     cache visibility rides the query-log records instead);
//   * a deterministic identity: sessions are numbered 1, 2, ... in open
//     order, so the id ("s<seq>:<label>") and every tie-break keyed on
//     the sequence number replay identically run to run.
//
// Sessions are created by the service and live until the service is
// destroyed; the scheduler state they carry (dispatch fairness counts)
// lives in the AdmissionController.
class Session {
 public:
  Session(uint64_t seq, std::string label, int priority, int threads,
          obs::TelemetryOptions telemetry = {})
      : seq_(seq),
        label_(std::move(label)),
        id_("s" + std::to_string(seq) + ":" + label_),
        priority_(priority),
        ectx_(threads),
        telemetry_(telemetry) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  uint64_t seq() const { return seq_; }
  const std::string& label() const { return label_; }
  const std::string& id() const { return id_; }
  int priority() const { return priority_; }

  const exec::ExecContext& ectx() const { return ectx_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::Telemetry& telemetry() { return telemetry_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }

 private:
  uint64_t seq_;
  std::string label_;
  std::string id_;
  int priority_;
  exec::ExecContext ectx_;
  obs::MetricsRegistry metrics_;
  obs::Telemetry telemetry_;
};

// Owns the sessions of one service, in open order. Labels are unique
// (Open returns nullptr on a duplicate — the caller turns that into an
// error). Externally synchronized: the service guards it with its own
// mutex, tests drive it single-threaded.
class SessionManager {
 public:
  Session* Open(std::string label, int priority, int threads,
                obs::TelemetryOptions telemetry = {}) {
    if (Find(label) != nullptr) return nullptr;
    const uint64_t seq = static_cast<uint64_t>(sessions_.size()) + 1;
    sessions_.push_back(std::make_unique<Session>(seq, std::move(label),
                                                  priority, threads,
                                                  telemetry));
    return sessions_.back().get();
  }

  Session* Find(std::string_view label) {
    for (const auto& session : sessions_) {
      if (session->label() == label) return session.get();
    }
    return nullptr;
  }

  const std::vector<std::unique_ptr<Session>>& sessions() const {
    return sessions_;
  }

 private:
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace swan::serve

#endif  // SWANDB_SERVE_SESSION_H_
