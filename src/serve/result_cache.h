#ifndef SWANDB_SERVE_RESULT_CACHE_H_
#define SWANDB_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "audit/audit.h"
#include "common/mutex.h"
#include "obs/metrics.h"
#include "serve/request.h"

namespace swan::serve {

struct CacheOptions {
  // Byte budget over entry footprints (key + payload estimate); the
  // least-recently-used entries are evicted to stay under it. An entry
  // larger than the whole budget is not cached at all.
  size_t max_bytes = 8u << 20;
};

// Snapshot-keyed LRU result cache. The key is the canonicalized query
// text (prefixed by its kind, e.g. "bench:q3*" or "sparql:SELECT ...")
// plus the store snapshot version the result was computed at — so a
// lookup after any write misses by construction, and the service
// additionally calls InvalidateOlderThan after every successful write to
// drop the dead entries eagerly (a result computed at version v must
// never be *stored* past version v; the audit walker checks exactly
// that).
//
// Hit/miss/eviction/invalidation counts land in the service-level
// obs::MetricsRegistry under serve.cache.*. Internally synchronized:
// sessions of one service share the cache.
class ResultCache {
 public:
  ResultCache(CacheOptions options, obs::MetricsRegistry* metrics);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // Returns the payload cached for (text, version), refreshing its LRU
  // position; nullopt on miss.
  std::optional<ResultPayload> Get(const std::string& text, uint64_t version)
      SWAN_EXCLUDES(mutex_);

  // Caches the payload under (text, version), evicting from the LRU tail
  // until the byte budget holds. Re-putting an existing key refreshes it.
  // Returns the number of entries evicted by this insertion, so the
  // caller can attribute evictions to the session whose Put caused them
  // (the serve.cache.* counters stay registry-global).
  size_t Put(const std::string& text, uint64_t version,
             const ResultPayload& payload) SWAN_EXCLUDES(mutex_);

  // Drops every entry computed before `version` — the write-path
  // coherence hook (counted under serve.cache.invalidations).
  void InvalidateOlderThan(uint64_t version) SWAN_EXCLUDES(mutex_);

  size_t entries() const SWAN_EXCLUDES(mutex_);
  uint64_t bytes() const SWAN_EXCLUDES(mutex_);

  // Audit walker (surfaced through core::RdfStore::Audit via the audit
  // hook the service registers): the byte accounting must re-add up from
  // the entries, the LRU list and the index must agree, the budget must
  // hold, and no entry may be older than `current_version`.
  void AuditInto(audit::AuditLevel level, audit::AuditReport* report,
                 uint64_t current_version) const SWAN_EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string key;  // text + '@' + version
    uint64_t version = 0;
    uint64_t bytes = 0;
    ResultPayload payload;
  };

  static std::string KeyOf(const std::string& text, uint64_t version);

  size_t EvictToBudgetLocked() SWAN_REQUIRES(mutex_);

  CacheOptions options_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* evictions_;
  obs::Counter* invalidations_;

  mutable Mutex mutex_{LockRank::kServeCache, "serve.result-cache"};
  // front = most recently used
  std::list<Entry> lru_ SWAN_GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::list<Entry>::iterator> index_
      SWAN_GUARDED_BY(mutex_);
  uint64_t bytes_ SWAN_GUARDED_BY(mutex_) = 0;
};

}  // namespace swan::serve

#endif  // SWANDB_SERVE_RESULT_CACHE_H_
