#ifndef SWANDB_SHARD_SHARDED_BACKEND_H_
#define SWANDB_SHARD_SHARDED_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "colstore/compression.h"
#include "core/backend.h"
#include "core/query.h"
#include "net/topology.h"
#include "rdf/dataset.h"
#include "rdf/triple.h"
#include "shard/placement.h"

namespace swan::shard {

struct ShardOptions {
  // Simulated node count (>= 1; 1 is the degenerate topology used as the
  // scale-out baseline — same orchestration, no network traffic).
  int nodes = 2;
  // Per-node engine: the vertical column scheme (the paper's) or the
  // column triple store in `order`.
  bool vertical = true;
  rdf::TripleOrder order = rdf::TripleOrder::kPSO;
  storage::DiskConfig disk;
  // TOTAL buffer-pool pages, split across nodes by the topology.
  size_t pool_pages = 65536;
  net::NetworkConfig network;
  colstore::ColumnCodec codec = colstore::ColumnCodec::kRaw;
  double split_factor = 2.0;
};

// The scale-out backend: N column-store partitions over a simulated
// multi-node topology, orchestrated by scatter/gather with semi-join
// filter shipping. Placement is by property (vertical partitions are the
// shards) with a subject-hash sub-split for dominant properties; every
// node owns a private disk + buffer pool inside the net::Topology, and
// all inter-node movement is charged to the NetworkModel on the shared
// virtual-clock discipline.
//
// Equivalence contract: Run and Match return the same row bags as the
// single-node backends at every node count and thread width. The
// orchestration is deterministic — node loops in node order, merges
// through ordered maps, placement a pure function of the data — so the
// serve tier's byte-identical replay guarantee survives distribution.
//
// Network accounting contract: Match charges only the result-return leg
// (owner -> coordinator, 24 bytes/triple, one message per remote part).
// The request/shipping leg — scattered bindings or a shipped semi-join
// filter — belongs to the caller's discipline: Run's orchestration
// charges it per phase, and the BGP interpreter charges it per annotated
// step (plan::AnnotateDistribution decides bindings vs semi-join from
// modeled network cost).
class ShardedBackend : public core::Backend {
 public:
  ShardedBackend(const rdf::Dataset& dataset, ShardOptions options);
  ~ShardedBackend() override;

  std::string name() const override;
  bool Supports(core::QueryId id) const override;

  using core::Backend::Run;
  using core::Backend::Match;
  core::QueryResult Run(core::QueryId id, const core::QueryContext& ctx,
                        const exec::ExecContext& ectx) override;
  std::vector<rdf::Triple> Match(const rdf::TriplePattern& pattern,
                                 const exec::ExecContext& ectx) const override;

  plan::AccessHints PlannerHints() const override;

  Status Insert(const rdf::Triple& triple) override;
  Status Delete(const rdf::Triple& triple) override;

  void DropCaches() override;

  // The coordinator node's disk (aggregate modeled cost lives in the
  // virtuals below).
  storage::SimulatedDisk* disk() override;
  const storage::SimulatedDisk* disk() const override;
  const storage::BufferPool* buffer_pool() const override;
  uint64_t disk_bytes() const override;

  core::DistRouting* dist() const override;

  double VirtualSeconds() const override;
  uint64_t TotalBytesRead() const override;
  uint64_t TotalReads() const override;
  uint64_t TotalSeeks() const override;
  std::vector<double> LaneSecondsSnapshot() const override;
  uint64_t TotalNetBytes() const override;
  uint64_t TotalNetMessages() const override;
  double NetSeconds() const override;

  audit::AuditReport Audit(audit::AuditLevel level) const override;

  const net::Topology& topology() const { return *topology_; }
  const Placement& placement() const { return placement_; }
  const ShardOptions& options() const { return options_; }
  int coordinator() const { return coordinator_; }

 private:
  class Routing;

  std::vector<int> AllNodes() const;
  // Nodes that can hold triples of `property`: its home, or all when
  // sub-split.
  std::vector<int> NodesFor(uint64_t property) const;
  // Charges a transfer on the modeled network (src == dst is free).
  void Ship(int src, int dst, uint64_t bytes, uint64_t messages,
            const exec::ExecContext& ectx) const;

  // Sorted distinct subjects s with (s, property, object) on `node`.
  std::vector<uint64_t> LocalSubjectsOf(int node, uint64_t property,
                                        uint64_t object,
                                        const exec::ExecContext& ectx) const;
  // Gathers the global subject set of (?, property, object) and charges
  // its broadcast as a semi-join filter to every consumer node.
  std::vector<uint64_t> GatherSubjectFilter(
      uint64_t property, uint64_t object, const std::vector<int>& consumers,
      const exec::ExecContext& ectx) const;

  core::QueryResult RunQ1(const core::QueryContext& ctx,
                          const exec::ExecContext& ectx) const;
  core::QueryResult RunQ2Family(core::QueryId id, const core::QueryContext& ctx,
                                const exec::ExecContext& ectx) const;
  core::QueryResult RunQ3Family(core::QueryId id, const core::QueryContext& ctx,
                                const exec::ExecContext& ectx) const;
  core::QueryResult RunQ5(const core::QueryContext& ctx,
                          const exec::ExecContext& ectx) const;
  core::QueryResult RunQ6Family(core::QueryId id, const core::QueryContext& ctx,
                                const exec::ExecContext& ectx) const;
  core::QueryResult RunQ7(const core::QueryContext& ctx,
                          const exec::ExecContext& ectx) const;
  core::QueryResult RunQ8(const core::QueryContext& ctx,
                          const exec::ExecContext& ectx) const;

  ShardOptions options_;
  const rdf::Dataset* dataset_;
  Placement placement_;
  std::unique_ptr<net::Topology> topology_;
  // One column backend per node, over the topology's borrowed storage.
  std::vector<std::unique_ptr<core::Backend>> inner_;
  std::unique_ptr<Routing> routing_;
  // Session node affinity: written by the serve tier between queries
  // (turnstile-serialized), read during Run/Match.
  int coordinator_ = 0;
  // Charges request legs for Insert/Delete, which carry no ExecContext.
  exec::ExecContext write_ectx_{1};
};

}  // namespace swan::shard

#endif  // SWANDB_SHARD_SHARDED_BACKEND_H_
