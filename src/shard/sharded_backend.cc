#include "shard/sharded_backend.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/macros.h"
#include "core/col_backends.h"
#include "obs/trace.h"

namespace swan::shard {

namespace {

// Wire-format model: 8 bytes per id (one column value), 16 per keyed
// count or id pair, 24 per triple. Messages are one per gathered part.
constexpr uint64_t kBytesPerKey = 8;
constexpr uint64_t kBytesPerPair = 16;
constexpr uint64_t kBytesPerTriple = 24;

bool UseFilter(core::QueryId id, const core::QueryContext& ctx) {
  return core::UsesPropertyFilter(id) && !core::IsStar(id) &&
         !ctx.FilterCoversAll();
}

void SortUnique(std::vector<uint64_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

// DistRouting over the backend's placement + network. Lives behind a
// unique_ptr so the const backend can hand out a usable routing surface
// (cost accounting, not query semantics).
class ShardedBackend::Routing : public core::DistRouting {
 public:
  explicit Routing(ShardedBackend* owner) : owner_(owner) {}

  int nodes() const override { return owner_->options_.nodes; }
  int HomeNode(uint64_t property) const override {
    return owner_->placement_.HomeNode(property);
  }
  double NetBandwidthBytesPerSec() const override {
    return owner_->options_.network.bandwidth_mb_per_s * 1e6;
  }
  double NetLatencySecondsPerMessage() const override {
    return owner_->options_.network.latency_ms_per_message * 1e-3;
  }
  int Coordinator() const override { return owner_->coordinator_; }
  void SetCoordinator(int node) override {
    SWAN_CHECK_MSG(node >= 0 && node < owner_->options_.nodes,
                   "coordinator out of range");
    owner_->coordinator_ = node;
  }
  void Ship(int src, int dst, uint64_t bytes, uint64_t messages,
            const exec::ExecContext& ectx) override {
    owner_->Ship(src, dst, bytes, messages, ectx);
  }

 private:
  ShardedBackend* owner_;
};

ShardedBackend::ShardedBackend(const rdf::Dataset& dataset,
                               ShardOptions options)
    : options_(options),
      dataset_(&dataset),
      placement_(dataset.triples(),
                 PlacementConfig{options.nodes, options.split_factor}) {
  SWAN_CHECK_MSG(options_.nodes >= 1, "sharded backend needs >= 1 node");
  net::TopologyConfig topo;
  topo.nodes = options_.nodes;
  topo.disk = options_.disk;
  topo.pool_pages = options_.pool_pages;
  topo.network = options_.network;
  topology_ = std::make_unique<net::Topology>(topo);

  // Split the dataset into per-node subsets (node order, stable within a
  // node: dataset order).
  std::vector<std::vector<rdf::Triple>> subsets(
      static_cast<size_t>(options_.nodes));
  for (const rdf::Triple& t : dataset.triples()) {
    subsets[static_cast<size_t>(placement_.NodeOf(t))].push_back(t);
  }
  inner_.reserve(subsets.size());
  for (int n = 0; n < options_.nodes; ++n) {
    auto& subset = subsets[static_cast<size_t>(n)];
    if (options_.vertical) {
      inner_.push_back(std::make_unique<core::ColVerticalBackend>(
          dataset, topology_->disk(n), topology_->pool(n), std::move(subset),
          options_.codec));
    } else {
      inner_.push_back(std::make_unique<core::ColTripleBackend>(
          dataset, options_.order, topology_->disk(n), topology_->pool(n),
          std::move(subset), options_.codec));
    }
  }
  routing_ = std::make_unique<Routing>(this);
}

ShardedBackend::~ShardedBackend() = default;

core::DistRouting* ShardedBackend::dist() const { return routing_.get(); }

std::string ShardedBackend::name() const {
  std::string engine = options_.vertical
                           ? std::string("vert. SO")
                           : std::string("triple ") + ToString(options_.order);
  return "Sharded " + engine + " x" + std::to_string(options_.nodes);
}

bool ShardedBackend::Supports(core::QueryId id) const {
  (void)id;
  return true;
}

plan::AccessHints ShardedBackend::PlannerHints() const {
  return inner_.front()->PlannerHints();
}

std::vector<int> ShardedBackend::AllNodes() const {
  std::vector<int> nodes(static_cast<size_t>(options_.nodes));
  for (int n = 0; n < options_.nodes; ++n) nodes[static_cast<size_t>(n)] = n;
  return nodes;
}

std::vector<int> ShardedBackend::NodesFor(uint64_t property) const {
  const int home = placement_.HomeNode(property);
  if (home >= 0) return {home};
  return AllNodes();
}

void ShardedBackend::Ship(int src, int dst, uint64_t bytes, uint64_t messages,
                          const exec::ExecContext& ectx) const {
  if (src == dst) return;
  obs::Span span(ectx.trace(), "net.ship");
  span.set_rows_in(bytes);
  topology_->network().Ship(src, dst, bytes, messages, ectx);
}

std::vector<uint64_t> ShardedBackend::LocalSubjectsOf(
    int node, uint64_t property, uint64_t object,
    const exec::ExecContext& ectx) const {
  rdf::TriplePattern pattern;
  pattern.property = property;
  pattern.object = object;
  std::vector<uint64_t> subjects;
  for (const rdf::Triple& t :
       inner_[static_cast<size_t>(node)]->Match(pattern, ectx)) {
    subjects.push_back(t.subject);
  }
  SortUnique(&subjects);
  return subjects;
}

std::vector<uint64_t> ShardedBackend::GatherSubjectFilter(
    uint64_t property, uint64_t object, const std::vector<int>& consumers,
    const exec::ExecContext& ectx) const {
  obs::Span span(ectx.trace(), "shard.semijoin_filter");
  std::vector<uint64_t> keys;
  for (int holder : NodesFor(property)) {
    std::vector<uint64_t> local =
        LocalSubjectsOf(holder, property, object, ectx);
    // Broadcast the filter from its producer to every consumer.
    for (int consumer : consumers) {
      Ship(holder, consumer, kBytesPerKey * local.size(), 1, ectx);
    }
    keys.insert(keys.end(), local.begin(), local.end());
  }
  SortUnique(&keys);
  span.set_rows_out(keys.size());
  return keys;
}

core::QueryResult ShardedBackend::Run(core::QueryId id,
                                      const core::QueryContext& ctx,
                                      const exec::ExecContext& ectx) {
  switch (core::BaseOf(id)) {
    case core::QueryId::kQ1:
      return RunQ1(ctx, ectx);
    case core::QueryId::kQ2:
      return RunQ2Family(id, ctx, ectx);
    case core::QueryId::kQ3:
    case core::QueryId::kQ4:
      return RunQ3Family(id, ctx, ectx);
    case core::QueryId::kQ5:
      return RunQ5(ctx, ectx);
    case core::QueryId::kQ6:
      return RunQ6Family(id, ctx, ectx);
    case core::QueryId::kQ7:
      return RunQ7(ctx, ectx);
    case core::QueryId::kQ8:
      return RunQ8(ctx, ectx);
    default:
      SWAN_CHECK(false);
  }
  return {};
}

// q1: per-node partial counts of <type> objects, sum-merged at the
// coordinator — the canonical partition-local aggregate (scatter tokens,
// gather small partials).
core::QueryResult ShardedBackend::RunQ1(const core::QueryContext& ctx,
                                        const exec::ExecContext& ectx) const {
  obs::Span span(ectx.trace(), "shard.q1");
  const core::Vocabulary& v = ctx.vocab();
  std::map<uint64_t, uint64_t> counts;
  for (int node : NodesFor(v.type)) {
    rdf::TriplePattern pattern;
    pattern.property = v.type;
    std::map<uint64_t, uint64_t> local;
    for (const rdf::Triple& t :
         inner_[static_cast<size_t>(node)]->Match(pattern, ectx)) {
      ++local[t.object];
    }
    Ship(node, coordinator_, kBytesPerPair * local.size(), 1, ectx);
    for (const auto& [obj, count] : local) counts[obj] += count;
  }
  core::QueryResult result;
  result.column_names = {"obj", "count"};
  for (const auto& [obj, count] : counts) result.rows.push_back({obj, count});
  span.set_rows_out(result.rows.size());
  return result;
}

// q2/q2*: ship the Text-typed subject set as a semi-join filter to every
// node, count local properties of filtered triples, sum-merge partials.
core::QueryResult ShardedBackend::RunQ2Family(
    core::QueryId id, const core::QueryContext& ctx,
    const exec::ExecContext& ectx) const {
  obs::Span span(ectx.trace(), "shard.q2");
  const core::Vocabulary& v = ctx.vocab();
  const bool filter = UseFilter(id, ctx);
  const std::vector<uint64_t> a_keys =
      GatherSubjectFilter(v.type, v.text, AllNodes(), ectx);
  const std::unordered_set<uint64_t> a(a_keys.begin(), a_keys.end());

  std::map<uint64_t, uint64_t> counts;
  for (int node = 0; node < options_.nodes; ++node) {
    std::map<uint64_t, uint64_t> local;
    for (const rdf::Triple& t :
         inner_[static_cast<size_t>(node)]->Match(rdf::TriplePattern{}, ectx)) {
      if (a.count(t.subject) == 0) continue;
      if (filter && !ctx.IsInteresting(t.property)) continue;
      ++local[t.property];
    }
    Ship(node, coordinator_, kBytesPerPair * local.size(), 1, ectx);
    for (const auto& [p, count] : local) counts[p] += count;
  }
  core::QueryResult result;
  result.column_names = {"prop", "count"};
  for (const auto& [p, count] : counts) result.rows.push_back({p, count});
  span.set_rows_out(result.rows.size());
  return result;
}

// q3/q4 (and stars): like q2 with (property, object) group keys; the
// HAVING count > 1 predicate only holds over the MERGED counts, so it is
// applied at the coordinator, never on a partial.
core::QueryResult ShardedBackend::RunQ3Family(
    core::QueryId id, const core::QueryContext& ctx,
    const exec::ExecContext& ectx) const {
  obs::Span span(ectx.trace(), "shard.q3");
  const core::Vocabulary& v = ctx.vocab();
  const bool filter = UseFilter(id, ctx);
  const bool q4 = core::BaseOf(id) == core::QueryId::kQ4;
  const std::vector<uint64_t> a_keys =
      GatherSubjectFilter(v.type, v.text, AllNodes(), ectx);
  const std::unordered_set<uint64_t> a(a_keys.begin(), a_keys.end());
  std::unordered_set<uint64_t> c;
  if (q4) {
    const std::vector<uint64_t> c_keys =
        GatherSubjectFilter(v.language, v.french, AllNodes(), ectx);
    c.insert(c_keys.begin(), c_keys.end());
  }

  std::map<std::pair<uint64_t, uint64_t>, uint64_t> counts;
  for (int node = 0; node < options_.nodes; ++node) {
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> local;
    for (const rdf::Triple& t :
         inner_[static_cast<size_t>(node)]->Match(rdf::TriplePattern{}, ectx)) {
      if (a.count(t.subject) == 0) continue;
      if (q4 && c.count(t.subject) == 0) continue;
      if (filter && !ctx.IsInteresting(t.property)) continue;
      ++local[{t.property, t.object}];
    }
    Ship(node, coordinator_, kBytesPerTriple * local.size(), 1, ectx);
    for (const auto& [group, count] : local) counts[group] += count;
  }
  core::QueryResult result;
  result.column_names = {"prop", "obj", "count"};
  for (const auto& [group, count] : counts) {
    if (count > 1) result.rows.push_back({group.first, group.second, count});
  }
  span.set_rows_out(result.rows.size());
  return result;
}

// q5: the cross-partition join. DLC-origin records bindings live on
// <records>' nodes, the type table on <type>'s — the planner-style choice
// between shipping the full bindings to the type holders and shipping a
// compact semi-join filter (distinct join keys) is made from modeled
// network cost, and the losing strategy's bytes appear nowhere.
core::QueryResult ShardedBackend::RunQ5(const core::QueryContext& ctx,
                                        const exec::ExecContext& ectx) const {
  const core::Vocabulary& v = ctx.vocab();
  const std::vector<int> rec_nodes = NodesFor(v.records);
  const std::vector<int> type_nodes = NodesFor(v.type);

  const std::vector<uint64_t> a_keys =
      GatherSubjectFilter(v.origin, v.dlc, rec_nodes, ectx);
  const std::unordered_set<uint64_t> a(a_keys.begin(), a_keys.end());

  // Bindings (b.subject, b.object) per records holder.
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> bindings(
      static_cast<size_t>(options_.nodes));
  uint64_t total_bindings = 0;
  std::vector<uint64_t> join_keys;  // distinct b.object
  for (int node : rec_nodes) {
    rdf::TriplePattern pattern;
    pattern.property = v.records;
    for (const rdf::Triple& b :
         inner_[static_cast<size_t>(node)]->Match(pattern, ectx)) {
      if (a.count(b.subject) == 0) continue;
      bindings[static_cast<size_t>(node)].emplace_back(b.subject, b.object);
      join_keys.push_back(b.object);
    }
    total_bindings += bindings[static_cast<size_t>(node)].size();
  }
  SortUnique(&join_keys);
  const std::unordered_set<uint64_t> key_set(join_keys.begin(),
                                             join_keys.end());

  // Matching (subject, type-object) pairs at the type holders.
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> matches(
      static_cast<size_t>(options_.nodes));
  uint64_t total_matches = 0;
  for (int node : type_nodes) {
    rdf::TriplePattern pattern;
    pattern.property = v.type;
    for (const rdf::Triple& t :
         inner_[static_cast<size_t>(node)]->Match(pattern, ectx)) {
      if (key_set.count(t.subject) == 0) continue;
      matches[static_cast<size_t>(node)].emplace_back(t.subject, t.object);
    }
    total_matches += matches[static_cast<size_t>(node)].size();
  }

  // Ship-mode decision on modeled cost. Bindings mode: every records
  // holder ships its full bindings to every type holder, results return
  // to the coordinator. Semi-join mode: holders ship only distinct join
  // keys, the type holders return matching pairs, and the bindings take
  // one hop straight to the coordinator for the final join.
  const double bw = options_.network.bandwidth_mb_per_s * 1e6;
  const double lat = options_.network.latency_ms_per_message * 1e-3;
  const auto model_cost = [&](uint64_t bytes, uint64_t msgs) {
    return static_cast<double>(bytes) / bw + static_cast<double>(msgs) * lat;
  };
  const uint64_t fanout = type_nodes.size();
  const double bindings_cost =
      model_cost(kBytesPerPair * total_bindings * fanout,
                 rec_nodes.size() * fanout) +
      model_cost(kBytesPerPair * total_matches, type_nodes.size());
  const double semijoin_cost =
      model_cost(kBytesPerKey * join_keys.size() * fanout,
                 rec_nodes.size() * fanout) +
      model_cost(kBytesPerPair * total_matches, type_nodes.size()) +
      model_cost(kBytesPerPair * total_bindings, rec_nodes.size());
  const bool semijoin = semijoin_cost <= bindings_cost;

  obs::Span span(ectx.trace(),
                 semijoin ? "shard.q5.semijoin" : "shard.q5.bindings");
  span.set_rows_in(total_bindings);
  for (int rn : rec_nodes) {
    const uint64_t local_bindings = bindings[static_cast<size_t>(rn)].size();
    for (int tn : type_nodes) {
      if (semijoin) {
        // The key set is global (already deduplicated across holders);
        // charge each holder its share of distinct keys.
        uint64_t local_keys = 0;
        std::unordered_set<uint64_t> seen;
        for (const auto& [s, o] : bindings[static_cast<size_t>(rn)]) {
          (void)s;
          if (seen.insert(o).second) ++local_keys;
        }
        Ship(rn, tn, kBytesPerKey * local_keys, 1, ectx);
      } else {
        Ship(rn, tn, kBytesPerPair * local_bindings, 1, ectx);
      }
    }
    if (semijoin) {
      Ship(rn, coordinator_, kBytesPerPair * local_bindings, 1, ectx);
    }
  }
  for (int tn : type_nodes) {
    Ship(tn, coordinator_, kBytesPerPair * matches[static_cast<size_t>(tn)].size(),
         1, ectx);
  }

  // Final join at the coordinator: bindings x type pairs on b.object.
  std::unordered_multimap<uint64_t, uint64_t> types;
  for (int tn : type_nodes) {
    for (const auto& [s, o] : matches[static_cast<size_t>(tn)]) {
      types.emplace(s, o);
    }
  }
  core::QueryResult result;
  result.column_names = {"subj", "obj"};
  for (int rn : rec_nodes) {
    for (const auto& [subj, obj] : bindings[static_cast<size_t>(rn)]) {
      auto [lo, hi] = types.equal_range(obj);
      for (auto it = lo; it != hi; ++it) {
        if (it->second != v.text) result.rows.push_back({subj, it->second});
      }
    }
  }
  span.set_rows_out(result.rows.size());
  return result;
}

// q6/q6*: the union set (Text-typed subjects plus subjects recording a
// Text-typed object) is assembled from two shipped filters, then counted
// like q2.
core::QueryResult ShardedBackend::RunQ6Family(
    core::QueryId id, const core::QueryContext& ctx,
    const exec::ExecContext& ectx) const {
  obs::Span span(ectx.trace(), "shard.q6");
  const core::Vocabulary& v = ctx.vocab();
  const bool filter = UseFilter(id, ctx);
  const std::vector<int> rec_nodes = NodesFor(v.records);

  // Consumers of the Text-typed set: the records holders (to test their
  // objects) and every node (final counting scan).
  const std::vector<uint64_t> a_keys =
      GatherSubjectFilter(v.type, v.text, AllNodes(), ectx);
  const std::unordered_set<uint64_t> text_typed(a_keys.begin(), a_keys.end());

  std::unordered_set<uint64_t> united = text_typed;
  for (int node : rec_nodes) {
    rdf::TriplePattern pattern;
    pattern.property = v.records;
    std::vector<uint64_t> local;
    for (const rdf::Triple& t :
         inner_[static_cast<size_t>(node)]->Match(pattern, ectx)) {
      if (text_typed.count(t.object) != 0) local.push_back(t.subject);
    }
    SortUnique(&local);
    // Broadcast the second filter leg to every counting node.
    for (int consumer = 0; consumer < options_.nodes; ++consumer) {
      Ship(node, consumer, kBytesPerKey * local.size(), 1, ectx);
    }
    united.insert(local.begin(), local.end());
  }

  std::map<uint64_t, uint64_t> counts;
  for (int node = 0; node < options_.nodes; ++node) {
    std::map<uint64_t, uint64_t> local;
    for (const rdf::Triple& t :
         inner_[static_cast<size_t>(node)]->Match(rdf::TriplePattern{}, ectx)) {
      if (united.count(t.subject) == 0) continue;
      if (filter && !ctx.IsInteresting(t.property)) continue;
      ++local[t.property];
    }
    Ship(node, coordinator_, kBytesPerPair * local.size(), 1, ectx);
    for (const auto& [p, count] : local) counts[p] += count;
  }
  core::QueryResult result;
  result.column_names = {"prop", "count"};
  for (const auto& [p, count] : counts) result.rows.push_back({p, count});
  span.set_rows_out(result.rows.size());
  return result;
}

// q7: three-way star on the subject — the Point/"end" subject filter
// ships to the <encoding> and <type> holders, whose matching pairs
// gather at the coordinator for the cross product.
core::QueryResult ShardedBackend::RunQ7(const core::QueryContext& ctx,
                                        const exec::ExecContext& ectx) const {
  obs::Span span(ectx.trace(), "shard.q7");
  const core::Vocabulary& v = ctx.vocab();
  std::vector<int> consumers = NodesFor(v.encoding);
  for (int n : NodesFor(v.type)) consumers.push_back(n);
  std::sort(consumers.begin(), consumers.end());
  consumers.erase(std::unique(consumers.begin(), consumers.end()),
                  consumers.end());

  const std::vector<uint64_t> a_keys =
      GatherSubjectFilter(v.point, v.end, consumers, ectx);
  const std::unordered_set<uint64_t> a(a_keys.begin(), a_keys.end());

  const auto gather_pairs = [&](uint64_t property) {
    std::unordered_multimap<uint64_t, uint64_t> pairs;
    for (int node : NodesFor(property)) {
      rdf::TriplePattern pattern;
      pattern.property = property;
      uint64_t local = 0;
      for (const rdf::Triple& t :
           inner_[static_cast<size_t>(node)]->Match(pattern, ectx)) {
        if (a.count(t.subject) == 0) continue;
        pairs.emplace(t.subject, t.object);
        ++local;
      }
      Ship(node, coordinator_, kBytesPerPair * local, 1, ectx);
    }
    return pairs;
  };
  const auto encodings = gather_pairs(v.encoding);
  const auto types = gather_pairs(v.type);

  core::QueryResult result;
  result.column_names = {"subj", "encoding", "type"};
  for (uint64_t s : a_keys) {
    auto [be, ee] = encodings.equal_range(s);
    auto [bt, et] = types.equal_range(s);
    for (auto ie = be; ie != ee; ++ie) {
      for (auto it = bt; it != et; ++it) {
        result.rows.push_back({s, ie->second, it->second});
      }
    }
  }
  span.set_rows_out(result.rows.size());
  return result;
}

// q8: object-object join through the <conferences> subject. The probe
// side is subject-bound (scatters to every node — property partitions
// split a subject's triples), the build side's object set broadcasts as
// a filter.
core::QueryResult ShardedBackend::RunQ8(const core::QueryContext& ctx,
                                        const exec::ExecContext& ectx) const {
  obs::Span span(ectx.trace(), "shard.q8");
  const core::Vocabulary& v = ctx.vocab();

  std::vector<uint64_t> t_objects;
  for (int node = 0; node < options_.nodes; ++node) {
    rdf::TriplePattern pattern;
    pattern.subject = v.conferences;
    std::vector<uint64_t> local;
    for (const rdf::Triple& t :
         inner_[static_cast<size_t>(node)]->Match(pattern, ectx)) {
      local.push_back(t.object);
    }
    SortUnique(&local);
    Ship(node, coordinator_, kBytesPerKey * local.size(), 1, ectx);
    t_objects.insert(t_objects.end(), local.begin(), local.end());
  }
  SortUnique(&t_objects);
  const std::unordered_set<uint64_t> object_set(t_objects.begin(),
                                                t_objects.end());
  // Broadcast the build side to the probing nodes.
  for (int node = 0; node < options_.nodes; ++node) {
    Ship(coordinator_, node, kBytesPerKey * t_objects.size(), 1, ectx);
  }

  std::vector<uint64_t> subjects;
  for (int node = 0; node < options_.nodes; ++node) {
    std::vector<uint64_t> local;
    for (const rdf::Triple& t :
         inner_[static_cast<size_t>(node)]->Match(rdf::TriplePattern{}, ectx)) {
      if (t.subject != v.conferences && object_set.count(t.object) != 0) {
        local.push_back(t.subject);
      }
    }
    SortUnique(&local);
    Ship(node, coordinator_, kBytesPerKey * local.size(), 1, ectx);
    subjects.insert(subjects.end(), local.begin(), local.end());
  }
  SortUnique(&subjects);

  core::QueryResult result;
  result.column_names = {"subj"};
  for (uint64_t s : subjects) result.rows.push_back({s});
  span.set_rows_out(result.rows.size());
  return result;
}

std::vector<rdf::Triple> ShardedBackend::Match(
    const rdf::TriplePattern& pattern, const exec::ExecContext& ectx) const {
  std::vector<int> nodes;
  if (pattern.property) {
    nodes = NodesFor(*pattern.property);
    if (nodes.size() > 1 && pattern.subject) {
      // Sub-split property with a bound subject: one node holds it.
      nodes = {placement_.SubjectNode(*pattern.subject)};
    }
  } else {
    nodes = AllNodes();
  }
  std::vector<rdf::Triple> out;
  for (int node : nodes) {
    std::vector<rdf::Triple> part =
        inner_[static_cast<size_t>(node)]->Match(pattern, ectx);
    // Result-return leg only; the request leg is the caller's (see the
    // class comment).
    Ship(node, coordinator_, kBytesPerTriple * part.size(), 1, ectx);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

Status ShardedBackend::Insert(const rdf::Triple& triple) {
  const int node = placement_.NodeOf(triple);
  Ship(coordinator_, node, kBytesPerTriple, 1, write_ectx_);
  return inner_[static_cast<size_t>(node)]->Insert(triple);
}

Status ShardedBackend::Delete(const rdf::Triple& triple) {
  const int node = placement_.NodeOf(triple);
  Ship(coordinator_, node, kBytesPerTriple, 1, write_ectx_);
  return inner_[static_cast<size_t>(node)]->Delete(triple);
}

void ShardedBackend::DropCaches() {
  for (auto& backend : inner_) backend->DropCaches();
}

storage::SimulatedDisk* ShardedBackend::disk() {
  return topology_->disk(coordinator_);
}
const storage::SimulatedDisk* ShardedBackend::disk() const {
  return topology_->disk(coordinator_);
}
const storage::BufferPool* ShardedBackend::buffer_pool() const {
  return topology_->pool(coordinator_);
}

uint64_t ShardedBackend::disk_bytes() const {
  uint64_t total = 0;
  for (const auto& backend : inner_) total += backend->disk_bytes();
  return total;
}

double ShardedBackend::VirtualSeconds() const {
  return topology_->VirtualNow();
}
uint64_t ShardedBackend::TotalBytesRead() const {
  return topology_->TotalBytesRead();
}
uint64_t ShardedBackend::TotalReads() const { return topology_->TotalReads(); }
uint64_t ShardedBackend::TotalSeeks() const { return topology_->TotalSeeks(); }
std::vector<double> ShardedBackend::LaneSecondsSnapshot() const {
  return topology_->LaneSecondsSnapshot();
}
uint64_t ShardedBackend::TotalNetBytes() const {
  return topology_->network().total_bytes();
}
uint64_t ShardedBackend::TotalNetMessages() const {
  return topology_->network().total_messages();
}
double ShardedBackend::NetSeconds() const {
  return topology_->network().seconds();
}

audit::AuditReport ShardedBackend::Audit(audit::AuditLevel level) const {
  audit::AuditReport report;
  for (const auto& backend : inner_) report.Merge(backend->Audit(level));
  return report;
}

}  // namespace swan::shard
