#ifndef SWANDB_SHARD_PLACEMENT_H_
#define SWANDB_SHARD_PLACEMENT_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "rdf/triple.h"

namespace swan::shard {

struct PlacementConfig {
  int nodes = 1;
  // A property holding more than total_triples / (split_factor * nodes)
  // triples is subject-hash sub-split across every node instead of living
  // on one: without the sub-split a dominant property (Barton's <type> is
  // ~a third of the data) pins its whole partition to one node and caps
  // scale-out at that node's disk.
  double split_factor = 2.0;
};

// Deterministic property-to-node placement: vertical partitions are the
// shards (the paper's own storage scheme doubling as the distribution
// key). Properties are placed by greedy bin-packing — sorted by triple
// count descending (id ascending on ties), each assigned to the currently
// least-loaded node — and oversized properties are sub-split by subject
// hash. The plan is a pure function of the triple multiset and the
// config, so every node count yields one placement, reproducible across
// runs and machines.
class Placement {
 public:
  Placement(std::span<const rdf::Triple> triples, PlacementConfig config);

  int nodes() const { return config_.nodes; }

  // The node owning `property`'s partition, or -1 when sub-split across
  // all nodes. Properties never seen at placement time (post-load
  // inserts of a new property id) hash to a stable node.
  int HomeNode(uint64_t property) const;

  // The node storing this triple: HomeNode when pinned, subject-hash
  // otherwise.
  int NodeOf(const rdf::Triple& triple) const;

  // Node for a (sub-split property, subject) pair.
  int SubjectNode(uint64_t subject) const {
    return static_cast<int>(HashId(subject) %
                            static_cast<uint64_t>(config_.nodes));
  }

  // Triples placed per node (for the bench's balance report).
  const std::vector<uint64_t>& node_loads() const { return loads_; }
  // Properties that were sub-split.
  const std::vector<uint64_t>& split_properties() const { return split_; }

  // splitmix64 finalizer: a stable, well-mixed id hash (std::hash on
  // integers is identity on common toolchains, which would correlate with
  // generator id assignment).
  static uint64_t HashId(uint64_t id);

 private:
  PlacementConfig config_;
  std::unordered_map<uint64_t, int> home_;  // pinned properties only
  std::vector<uint64_t> loads_;
  std::vector<uint64_t> split_;
};

}  // namespace swan::shard

#endif  // SWANDB_SHARD_PLACEMENT_H_
