#include "shard/placement.h"

#include <algorithm>
#include <map>

#include "common/macros.h"

namespace swan::shard {

uint64_t Placement::HashId(uint64_t id) {
  uint64_t z = id + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Placement::Placement(std::span<const rdf::Triple> triples,
                     PlacementConfig config)
    : config_(config) {
  SWAN_CHECK_MSG(config_.nodes >= 1, "placement needs at least one node");
  loads_.assign(static_cast<size_t>(config_.nodes), 0);

  // std::map: frequency table in ascending property-id order, so the
  // sort below breaks frequency ties deterministically by id.
  std::map<uint64_t, uint64_t> freq;
  for (const rdf::Triple& t : triples) ++freq[t.property];

  std::vector<std::pair<uint64_t, uint64_t>> props(freq.begin(), freq.end());
  std::stable_sort(props.begin(), props.end(),
                   [](const auto& a, const auto& b) {
                     if (a.second != b.second) return a.second > b.second;
                     return a.first < b.first;
                   });

  const uint64_t split_threshold =
      config_.nodes == 1
          ? ~0ull
          : static_cast<uint64_t>(
                static_cast<double>(triples.size()) /
                (config_.split_factor * static_cast<double>(config_.nodes)));

  for (const auto& [prop, count] : props) {
    if (config_.nodes > 1 && count > split_threshold) {
      split_.push_back(prop);
      continue;  // sub-split: load accounted per triple below
    }
    int best = 0;
    for (int n = 1; n < config_.nodes; ++n) {
      if (loads_[static_cast<size_t>(n)] < loads_[static_cast<size_t>(best)]) {
        best = n;
      }
    }
    home_[prop] = best;
    loads_[static_cast<size_t>(best)] += count;
  }
  std::sort(split_.begin(), split_.end());

  // Account sub-split loads exactly (subject hashes, not count / nodes).
  if (!split_.empty()) {
    for (const rdf::Triple& t : triples) {
      if (std::binary_search(split_.begin(), split_.end(), t.property)) {
        loads_[static_cast<size_t>(SubjectNode(t.subject))] += 1;
      }
    }
  }
}

int Placement::HomeNode(uint64_t property) const {
  if (config_.nodes == 1) return 0;
  if (std::binary_search(split_.begin(), split_.end(), property)) return -1;
  const auto it = home_.find(property);
  if (it != home_.end()) return it->second;
  // Unknown property (first seen via a post-load insert): stable hash.
  return static_cast<int>(HashId(property) %
                          static_cast<uint64_t>(config_.nodes));
}

int Placement::NodeOf(const rdf::Triple& triple) const {
  const int home = HomeNode(triple.property);
  return home >= 0 ? home : SubjectNode(triple.subject);
}

}  // namespace swan::shard
