#ifndef SWANDB_PLAN_DISTRIBUTED_H_
#define SWANDB_PLAN_DISTRIBUTED_H_

#include <cstdint>
#include <functional>

#include "plan/physical.h"

namespace swan::plan {

// The distributed physical layer: prices an already-ordered physical plan
// against a scale-out topology and annotates each step with where its
// property partition lives and how the probe traffic should travel
// (ship-bindings vs ship-semi-join-filter). It deliberately runs AFTER
// join ordering and never reorders a plan — the single-node cost model
// picks the order, the network model picks the shipping strategy — so an
// annotated plan produces bit-identical rows to the unannotated one.

// Everything AnnotateDistribution needs to know about the topology.
// Built by core::ExecuteBgp from the backend's DistRouting; kept as plain
// values + a callback so the plan layer stays independent of src/net.
struct DistCostModel {
  int nodes = 1;
  // Link model (matches net::NetworkConfig converted to base units).
  double bytes_per_sec = 1000.0 * 1e6;
  double seconds_per_message = 0.05 * 1e-3;
  // Owning node for a property partition; -1 = sub-split across all
  // nodes (probes fan out regardless, so shipping a filter buys nothing
  // beyond what the interpreter already does).
  std::function<int(uint64_t)> home_node;
  // Where the binding table lives between steps (the gather node).
  int coordinator = 0;
};

// Modeled wire widths, shared with the sharded backend's orchestrations
// (shard/sharded_backend.cc) so planner estimates and executed charges
// agree.
inline constexpr uint64_t kBytesPerKey = 8;
inline constexpr uint64_t kBytesPerBindingCell = 8;
inline constexpr uint64_t kBytesPerTriple = 24;
// Bindings ship in the interpreter's extension batches.
inline constexpr uint64_t kBindingsPerMessage = 16;

// Seconds to move `bytes` in `messages` messages over one link.
double ShipSeconds(const DistCostModel& model, double bytes, double messages);

// Annotates every step of `plan` in place. A no-op when model.nodes <= 1
// or model.home_node is null.
void AnnotateDistribution(PhysicalPlan* plan, const DistCostModel& model);

}  // namespace swan::plan

#endif  // SWANDB_PLAN_DISTRIBUTED_H_
