#include "plan/stats.h"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace swan::plan {

StoreStats StoreStats::Collect(const rdf::Dataset& dataset) {
  StoreStats stats;
  // Per-property frequency maps exist only during collection; the stats
  // object keeps the aggregates (distinct counts + heaviest key).
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, uint64_t>>
      subj_freq;
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, uint64_t>>
      obj_freq;
  std::unordered_set<uint64_t> subjects;
  std::unordered_set<uint64_t> objects;
  for (const rdf::Triple& t : dataset.triples()) {
    ++stats.total_triples;
    ++stats.by_property[t.property].count;
    ++subj_freq[t.property][t.subject];
    ++obj_freq[t.property][t.object];
    subjects.insert(t.subject);
    objects.insert(t.object);
  }
  stats.distinct_subjects = subjects.size();
  stats.distinct_objects = objects.size();
  for (auto& [property, ps] : stats.by_property) {
    const auto& sf = subj_freq[property];
    const auto& of = obj_freq[property];
    ps.distinct_subjects = sf.size();
    ps.distinct_objects = of.size();
    for (const auto& [key, n] : sf) {
      (void)key;
      ps.max_subject_freq = std::max(ps.max_subject_freq, n);
    }
    for (const auto& [key, n] : of) {
      (void)key;
      ps.max_object_freq = std::max(ps.max_object_freq, n);
    }
  }
  return stats;
}

double StoreStats::EstimateMatches(std::optional<uint64_t> subject,
                                   std::optional<uint64_t> property,
                                   std::optional<uint64_t> object) const {
  if (total_triples == 0) return 0.0;
  double est;
  if (property) {
    const auto it = by_property.find(*property);
    if (it == by_property.end()) return 0.0;  // property never occurs
    const PropertyStats& ps = it->second;
    est = static_cast<double>(ps.count);
    if (subject && ps.distinct_subjects > 0) {
      est /= static_cast<double>(ps.distinct_subjects);
    }
    if (object && ps.distinct_objects > 0) {
      est /= static_cast<double>(ps.distinct_objects);
    }
  } else {
    est = static_cast<double>(total_triples);
    if (subject && distinct_subjects > 0) {
      est /= static_cast<double>(distinct_subjects);
    }
    if (object && distinct_objects > 0) {
      est /= static_cast<double>(distinct_objects);
    }
  }
  return est;
}

void StoreStats::AuditInto(audit::AuditLevel level, audit::AuditReport* report,
                           const rdf::Dataset& dataset) const {
  uint64_t sum = 0;
  for (const auto& [property, ps] : by_property) {
    sum += ps.count;
    if (ps.count == 0) {
      report->Add(audit::FindingClass::kStructure, "plan.stats",
                  "property " + std::to_string(property) +
                      " recorded with zero triples");
    }
    if (ps.distinct_subjects > ps.count || ps.distinct_objects > ps.count) {
      report->Add(audit::FindingClass::kStructure, "plan.stats",
                  "property " + std::to_string(property) +
                      " has more distinct keys than triples");
    }
    if (ps.max_subject_freq > ps.count || ps.max_object_freq > ps.count) {
      report->Add(audit::FindingClass::kStructure, "plan.stats",
                  "property " + std::to_string(property) +
                      " skew maximum exceeds its cardinality");
    }
  }
  if (sum != total_triples) {
    report->Add(audit::FindingClass::kStructure, "plan.stats",
                "per-property counts sum to " + std::to_string(sum) +
                    ", total records " + std::to_string(total_triples));
  }
  if (level == audit::AuditLevel::kQuick) return;

  // Full audit: the statistics must equal a fresh collection — load-time
  // stats never drift from the dataset they were computed over (the store
  // holds a const reference; mutations go through the backend deltas and
  // are folded into a new dataset on reload).
  const StoreStats fresh = Collect(dataset);
  if (fresh.total_triples != total_triples ||
      fresh.distinct_subjects != distinct_subjects ||
      fresh.distinct_objects != distinct_objects ||
      fresh.by_property.size() != by_property.size()) {
    report->Add(audit::FindingClass::kStructure, "plan.stats",
                "stored statistics disagree with a fresh collection pass");
    return;
  }
  for (const auto& [property, ps] : fresh.by_property) {
    const auto it = by_property.find(property);
    if (it == by_property.end() || it->second.count != ps.count ||
        it->second.distinct_subjects != ps.distinct_subjects ||
        it->second.distinct_objects != ps.distinct_objects ||
        it->second.max_subject_freq != ps.max_subject_freq ||
        it->second.max_object_freq != ps.max_object_freq) {
      report->Add(audit::FindingClass::kStructure, "plan.stats",
                  "stale statistics for property " + std::to_string(property));
      return;
    }
  }
}

}  // namespace swan::plan
